(* obda — command-line front end: classify ontologies, export the paper's
   graphs, rewrite queries, and compute certain answers. *)

open Tgd_logic
open Cmdliner

let load_document path =
  match Tgd_parser.Parser.parse_file path with
  | Ok doc -> doc
  | Error e ->
    Format.eprintf "parse error: %a@." Tgd_parser.Parser.pp_error e;
    exit 2

let load_program path =
  let doc = load_document path in
  match Tgd_parser.Parser.program_of_document ~name:(Filename.basename path) doc with
  | Ok p -> (p, doc)
  | Error msg ->
    Format.eprintf "error: %s@." msg;
    exit 2

let instance_of_document (doc : Tgd_parser.Parser.document) =
  Tgd_db.Instance.of_atoms doc.Tgd_parser.Parser.facts

(* Facts from the ontology file, optionally merged with CSV data files. *)
let load_instance doc data_files =
  let inst = instance_of_document doc in
  List.iter
    (fun path ->
      match Tgd_db.Csv_io.load_file path with
      | Error msg ->
        Format.eprintf "%s: %s@." path msg;
        exit 2
      | Ok extra ->
        Tgd_db.Instance.iter_facts
          (fun (pred, t) -> ignore (Tgd_db.Instance.add_fact inst pred t))
          extra)
    data_files;
  inst

let data_arg =
  Arg.(
    value & opt_all file []
    & info [ "d"; "data" ] ~docv:"CSV"
        ~doc:"Extra facts from a CSV file (predicate,arg1,arg2,...); repeatable.")

(* ------------------------------------------------------------------ *)
(* Resource governance: flags shared by the execution commands         *)

let budget_arg =
  Arg.(
    value & opt (some string) None
    & info [ "budget" ] ~docv:"SPEC"
        ~doc:
          "Per-run resource budget as comma-separated key=value pairs, e.g. \
           $(b,chase.rounds=100,rewrite.cqs=5000,deadline=2.5). Keys: chase.rounds, chase.facts, \
           chase.triggers, rewrite.cqs, rewrite.expansions, rewrite.depth, containment.checks, \
           eval.steps, deadline (float seconds). Budget exhaustion truncates the run gracefully \
           and reports diagnostics.")

let deadline_arg =
  Arg.(
    value & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:"Wall-clock deadline per run; shorthand for deadline=... inside $(b,--budget).")

let stats_json_arg =
  Arg.(
    value & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:"Write the runs' telemetry records (counters, phase timings, peak sizes) as a JSON \
              array to FILE, or to stdout with $(b,-).")

let budget_of_flags budget deadline =
  let base =
    match budget with
    | None -> Tgd_exec.Budget.unlimited
    | Some spec -> (
      match Tgd_exec.Budget.of_string spec with
      | Ok b -> b
      | Error msg ->
        Format.eprintf "bad --budget: %s@." msg;
        exit 2)
  in
  match deadline with None -> base | Some s -> { base with Tgd_exec.Budget.deadline_s = Some s }

(* One governor per run. The containment counters are process-wide, so they
   are reset at every run boundary: telemetry from consecutive invocations
   in one process must never accumulate stale counts. *)
let fresh_governor budget =
  Tgd_logic.Containment.reset_stats ();
  Tgd_exec.Governor.create ~budget ()

let emit_stats stats_json records =
  match stats_json with
  | None -> ()
  | Some dest ->
    let payload = "[\n  " ^ String.concat ",\n  " records ^ "\n]\n" in
    if dest = "-" then print_string payload
    else begin
      let oc = open_out dest in
      output_string oc payload;
      close_out oc;
      Format.printf "wrote %s@." dest
    end

let pp_truncation d = Format.printf "  %a@." Tgd_exec.Governor.pp_diagnostics d

let record_and_emit stats_json run gov =
  emit_stats stats_json [ Tgd_exec.Governor.report_json ~run gov ]

(* ------------------------------------------------------------------ *)
(* classify                                                            *)

let classify_cmd =
  let run path verbose =
    let p, _ = load_program path in
    if verbose then print_string (Tgd_core.Explain.describe p)
    else begin
      let report = Tgd_core.Classifier.classify p in
      Tgd_core.Classifier.pp Format.std_formatter report;
      match Tgd_core.Classifier.fo_rewritable_witness report with
      | Some cls -> Format.printf "=> FO-rewritable (witness: %s)@." cls
      | None -> Format.printf "=> FO-rewritability not established by any implemented class@."
    end
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Also print dangerous-cycle witnesses.")
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Run every TGD-class membership test on an ontology file.")
    Term.(const run $ path $ verbose)

(* ------------------------------------------------------------------ *)
(* patterns                                                            *)

let patterns_cmd =
  let run path max_cqs =
    let p, _ = load_program path in
    let config = { Tgd_rewrite.Rewrite.default_config with max_cqs } in
    Format.printf "%-28s %s@." "pattern (b=bound, u=free)" "rewriting";
    List.iter
      (fun (pat, status) ->
        Format.printf "%-28s %s@."
          (Format.asprintf "%a" Tgd_core.Query_pattern.pp pat)
          (match status with
          | Tgd_core.Query_pattern.Terminates n -> Printf.sprintf "terminates (%d disjuncts)" n
          | Tgd_core.Query_pattern.Diverges why -> "diverges (" ^ why ^ ")"))
      (Tgd_core.Query_pattern.analyze_all ~config p)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let max_cqs =
    Arg.(value & opt int 2_000 & info [ "max-cqs" ] ~doc:"Rewriting budget per pattern.")
  in
  Cmd.v
    (Cmd.info "patterns"
       ~doc:
         "Per-query-pattern FO-rewritability: which atomic query shapes terminate even when the \
          whole set of TGDs is intractable.")
    Term.(const run $ path $ max_cqs)

(* ------------------------------------------------------------------ *)
(* graph                                                               *)

let graph_cmd =
  let run path kind output =
    let p, _ = load_program path in
    let dot =
      match kind with
      | "position" -> Tgd_core.Position_graph.G.to_dot ~name:p.Program.name (Tgd_core.Position_graph.build p)
      | "pnode" ->
        let r = Tgd_core.P_node_graph.build p in
        if not r.Tgd_core.P_node_graph.complete then
          Format.eprintf "warning: node budget hit; graph truncated@.";
        Tgd_core.P_node_graph.G.to_dot ~name:p.Program.name r.Tgd_core.P_node_graph.graph
      | other ->
        Format.eprintf "unknown graph kind %S (expected position or pnode)@." other;
        exit 2
    in
    match output with
    | None -> print_string dot
    | Some file ->
      let oc = open_out file in
      output_string oc dot;
      close_out oc;
      Format.printf "wrote %s@." file
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let kind =
    Arg.(value & opt string "position" & info [ "k"; "kind" ] ~doc:"Graph kind: position or pnode.")
  in
  let output = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT.dot") in
  Cmd.v
    (Cmd.info "graph" ~doc:"Export the position graph or the P-node graph in Graphviz format.")
    Term.(const run $ path $ kind $ output)

(* ------------------------------------------------------------------ *)
(* rewrite                                                             *)

let target_arg =
  Arg.(
    value & opt string "ucq"
    & info [ "target" ] ~docv:"TARGET"
        ~doc:
          "Rewriting target: $(b,ucq) (union of conjunctive queries), $(b,datalog) (shared-pattern \
           Datalog program, evaluated by semi-naive saturation), or $(b,auto) (classifier \
           dispatch, falling back to the other target when the preferred one truncates).")

let target_of_flag s =
  match Tgd_obda.Target.of_string s with
  | Ok t -> t
  | Error msg ->
    Format.eprintf "bad --target: %s@." msg;
    exit 2

let rewrite_cmd =
  let run path sql target max_cqs budget deadline stats_json =
    let p, doc = load_program path in
    if doc.Tgd_parser.Parser.queries = [] then begin
      Format.eprintf "no queries in %s (add lines like: q(X) :- person(X).)@." path;
      exit 2
    end;
    let target = target_of_flag target in
    let ucq_config = { Tgd_rewrite.Rewrite.default_config with max_cqs } in
    let b = budget_of_flags budget deadline in
    let records = ref [] in
    List.iter
      (fun q ->
        let last_gov = ref None in
        let gov () =
          let g = fresh_governor b in
          last_gov := Some g;
          g
        in
        let artifact = Tgd_obda.Target.prepare ~ucq_config ~gov target p q in
        let gov = Option.get !last_gov in
        records := Tgd_exec.Governor.report_json ~run:("rewrite:" ^ q.Cq.name) gov :: !records;
        match artifact with
        | Tgd_obda.Target.Ucq_rewriting r ->
          Format.printf "%% query %s: %d disjunct(s), %s@." q.Cq.name
            (List.length r.Tgd_rewrite.Rewrite.ucq)
            (match r.Tgd_rewrite.Rewrite.outcome with
            | Tgd_rewrite.Rewrite.Complete -> "complete rewriting"
            | Tgd_rewrite.Rewrite.Truncated d ->
              "TRUNCATED (" ^ Tgd_exec.Governor.diag_summary d ^ ")");
          if sql then
            match r.Tgd_rewrite.Rewrite.ucq with
            | [] -> Format.printf "-- empty rewriting: no SQL@."
            | ucq -> Format.printf "%s;@." (Tgd_db.Sql.of_ucq ucq)
          else begin
            Cq.pp_ucq Format.std_formatter r.Tgd_rewrite.Rewrite.ucq;
            Format.printf "@."
          end
        | Tgd_obda.Target.Datalog_rewriting r ->
          if sql then begin
            Format.eprintf "--sql is only supported with --target ucq@.";
            exit 2
          end;
          Format.printf "%% query %s: datalog program, %d pattern(s), %d rule(s), %s, %s@."
            q.Cq.name r.Tgd_rewrite.Datalog_rw.stats.Tgd_rewrite.Datalog_rw.patterns
            r.Tgd_rewrite.Datalog_rw.stats.Tgd_rewrite.Datalog_rw.rules
            (if r.Tgd_rewrite.Datalog_rw.nonrecursive then "nonrecursive" else "recursive")
            (match r.Tgd_rewrite.Datalog_rw.outcome with
            | Tgd_rewrite.Datalog_rw.Complete -> "complete rewriting"
            | Tgd_rewrite.Datalog_rw.Truncated d ->
              "TRUNCATED (" ^ Tgd_exec.Governor.diag_summary d ^ ")");
          Format.printf "%a@." Tgd_rewrite.Datalog_rw.pp r)
      doc.Tgd_parser.Parser.queries;
    emit_stats stats_json (List.rev !records)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let sql = Arg.(value & flag & info [ "sql" ] ~doc:"Print SQL instead of Datalog syntax.") in
  let max_cqs =
    Arg.(value & opt int 20_000 & info [ "max-cqs" ] ~doc:"Budget on generated CQs.")
  in
  Cmd.v
    (Cmd.info "rewrite"
       ~doc:"Compute the UCQ (or SQL) or Datalog rewriting of each query in the file.")
    Term.(
      const run $ path $ sql $ target_arg $ max_cqs $ budget_arg $ deadline_arg $ stats_json_arg)

(* ------------------------------------------------------------------ *)
(* answer                                                              *)

let eval_workers_arg =
  Arg.(
    value & opt (some int) None
    & info [ "eval-workers" ] ~docv:"N"
        ~doc:
          "Domains used by morsel-parallel query evaluation; 1 forces the sequential path. \
           Default: $(b,TGDLIB_DOMAINS) if set, else one per core (capped at 8). Answers are \
           identical to the sequential path's.")

let resolve_eval_workers = function
  | Some n when n >= 1 -> n
  | Some n ->
    Format.eprintf "bad --eval-workers: %d (must be >= 1)@." n;
    exit 2
  | None -> Tgd_exec.Pool.default_workers ()

let eval_partitions_arg =
  Arg.(
    value & opt (some int) None
    & info [ "eval-partitions" ] ~docv:"P"
        ~doc:
          "Answer partitions of the lock-free parallel merge (default: 4 per eval worker). More \
           partitions smooth skewed answer distributions at the cost of smaller per-partition \
           sorts. Ignored when --eval-workers=1.")

let resolve_eval_partitions = function
  | Some n when n >= 1 -> Some n
  | Some n ->
    Format.eprintf "bad --eval-partitions: %d (must be >= 1)@." n;
    exit 2
  | None -> None

let answer_cmd =
  let run path method_ target data_files eval_workers eval_partitions budget deadline stats_json =
    let p, doc = load_program path in
    let inst = load_instance doc data_files in
    let eval_workers = resolve_eval_workers eval_workers in
    let eval_partitions = resolve_eval_partitions eval_partitions in
    let pool =
      if eval_workers > 1 then Some (Tgd_exec.Pool.create ~workers:eval_workers ()) else None
    in
    (* The instance is fully loaded: seal it so the compiled columnar
       engine can scan it at any worker count (plus hash shards for the
       boxed fallback's morsels, when parallel). *)
    if eval_workers > 1 then Tgd_db.Instance.seal ~partitions:(eval_workers * 4) inst
    else Tgd_db.Instance.seal inst;
    Fun.protect ~finally:(fun () -> Option.iter Tgd_exec.Pool.shutdown pool) @@ fun () ->
    (* A supplied governor bypasses the chase's own round/fact defaults, so
       merge them into the budget when the spec leaves them unset. *)
    let b =
      let b = budget_of_flags budget deadline in
      {
        b with
        Tgd_exec.Budget.chase_rounds =
          (match b.Tgd_exec.Budget.chase_rounds with None -> Some 1_000 | some -> some);
        chase_facts =
          (match b.Tgd_exec.Budget.chase_facts with None -> Some 1_000_000 | some -> some);
      }
    in
    let records = ref [] in
    let record run gov = records := Tgd_exec.Governor.report_json ~run gov :: !records in
    let target = target_of_flag target in
    let answer_by_rewriting q =
      let last_gov = ref None in
      let gov () =
        let g = fresh_governor b in
        last_gov := Some g;
        g
      in
      let artifact = Tgd_obda.Target.prepare ~gov target p q in
      let gov = Option.get !last_gov in
      let answers =
        match artifact with
        | Tgd_obda.Target.Ucq_rewriting r ->
          Tgd_db.Par_eval.ucq ~gov ?pool ~workers:eval_workers ?partitions:eval_partitions inst
            r.Tgd_rewrite.Rewrite.ucq
          |> List.filter (fun t -> not (Tgd_db.Tuple.has_null t))
        | Tgd_obda.Target.Datalog_rewriting r -> Tgd_obda.Target.datalog_answers ~gov r inst
      in
      record
        (Printf.sprintf "answer.rewriting.%s:%s" (Tgd_obda.Target.artifact_kind artifact)
           q.Cq.name)
        gov;
      (answers, Tgd_obda.Target.complete artifact && Tgd_exec.Governor.stopped gov = None)
    in
    let answer_by_chase q =
      let gov = fresh_governor b in
      let r = Tgd_chase.Certain.cq ~gov ?pool ~eval_workers ?eval_partitions p inst q in
      record ("answer.chase:" ^ q.Cq.name) gov;
      (r.Tgd_chase.Certain.answers, r.Tgd_chase.Certain.exact)
    in
    let print_answers q answers exact =
      Format.printf "%s: %d certain answer(s)%s@." q.Cq.name (List.length answers)
        (if exact then "" else " [budget hit: lower bound]");
      List.iter (fun t -> Format.printf "  %a@." Tgd_db.Tuple.pp t) answers
    in
    List.iter
      (fun q ->
        match method_ with
        | "rewriting" ->
          let a, exact = answer_by_rewriting q in
          print_answers q a exact
        | "chase" ->
          let a, exact = answer_by_chase q in
          print_answers q a exact
        | _ ->
          let a1, e1 = answer_by_rewriting q in
          let a2, e2 = answer_by_chase q in
          print_answers q a1 (e1 && e2);
          if (e1 && e2)
             && not (List.length a1 = List.length a2 && List.for_all2 Tgd_db.Tuple.equal a1 a2)
          then
            Format.printf "  WARNING: rewriting (%d) and chase (%d) disagree@." (List.length a1)
              (List.length a2))
      doc.Tgd_parser.Parser.queries;
    emit_stats stats_json (List.rev !records)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let method_ =
    Arg.(value & opt string "both" & info [ "m"; "method" ] ~doc:"rewriting, chase, or both.")
  in
  Cmd.v
    (Cmd.info "answer"
       ~doc:"Compute certain answers to the queries in the file over its facts.")
    Term.(
      const run $ path $ method_ $ target_arg $ data_arg $ eval_workers_arg $ eval_partitions_arg
      $ budget_arg $ deadline_arg $ stats_json_arg)

(* ------------------------------------------------------------------ *)
(* chase                                                               *)

let chase_cmd =
  let run path max_rounds max_facts print_facts data_files budget deadline stats_json =
    let p, doc = load_program path in
    let inst = load_instance doc data_files in
    (* --max-rounds / --max-facts are defaults; an explicit --budget key wins. *)
    let b =
      let b = budget_of_flags budget deadline in
      {
        b with
        Tgd_exec.Budget.chase_rounds =
          (match b.Tgd_exec.Budget.chase_rounds with None -> Some max_rounds | some -> some);
        chase_facts =
          (match b.Tgd_exec.Budget.chase_facts with None -> Some max_facts | some -> some);
      }
    in
    let gov = fresh_governor b in
    let stats = Tgd_chase.Chase.run ~gov p inst in
    Format.printf "chase: %s after %d round(s); +%d fact(s), %d null(s), %d trigger(s) fired@."
      (match stats.Tgd_chase.Chase.outcome with
      | Tgd_chase.Chase.Terminated -> "terminated"
      | Tgd_chase.Chase.Truncated d -> "TRUNCATED (" ^ Tgd_exec.Governor.diag_summary d ^ ")")
      stats.Tgd_chase.Chase.rounds stats.Tgd_chase.Chase.new_facts stats.Tgd_chase.Chase.nulls
      stats.Tgd_chase.Chase.triggers_fired;
    (match stats.Tgd_chase.Chase.outcome with
    | Tgd_chase.Chase.Truncated d -> pp_truncation d
    | Tgd_chase.Chase.Terminated -> ());
    record_and_emit stats_json "chase" gov;
    if print_facts then Format.printf "%a@." Tgd_db.Instance.pp inst
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let max_rounds = Arg.(value & opt int 1_000 & info [ "max-rounds" ]) in
  let max_facts = Arg.(value & opt int 1_000_000 & info [ "max-facts" ]) in
  let print_facts = Arg.(value & flag & info [ "facts" ] ~doc:"Print the chased instance.") in
  Cmd.v
    (Cmd.info "chase" ~doc:"Materialize the facts of the file under its TGDs.")
    Term.(
      const run $ path $ max_rounds $ max_facts $ print_facts $ data_arg $ budget_arg
      $ deadline_arg $ stats_json_arg)

(* ------------------------------------------------------------------ *)
(* check: consistency against negative constraints                     *)

let check_cmd =
  let run path =
    let p, doc = load_program path in
    match doc.Tgd_parser.Parser.constraints with
    | [] -> Format.printf "no negative constraints in %s (add: body -> falsum.)@." path
    | ncs ->
      let inst = instance_of_document doc in
      let constraints =
        List.map (fun (name, body) -> Tgd_obda.Constraints.make ~name body) ncs
      in
      let verdict = Tgd_obda.Constraints.check p constraints inst in
      if verdict.Tgd_obda.Constraints.consistent then
        Format.printf "consistent (%d constraint(s) checked%s)@." (List.length constraints)
          (if verdict.Tgd_obda.Constraints.complete then "" else "; rewriting budget hit")
      else begin
        Format.printf "INCONSISTENT:@.";
        List.iter
          (fun viol ->
            Format.printf "  constraint %s violated through %a@."
              viol.Tgd_obda.Constraints.constraint_.Tgd_obda.Constraints.name Cq.pp
              viol.Tgd_obda.Constraints.witness)
          verdict.Tgd_obda.Constraints.violations;
        exit 1
      end
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "check" ~doc:"Check the facts against the file's negative constraints (body -> falsum).")
    Term.(const run $ path)

(* ------------------------------------------------------------------ *)
(* approx: Section-7 interval answers for intractable ontologies       *)

let approx_cmd =
  let run path =
    let p, doc = load_program path in
    if doc.Tgd_parser.Parser.queries = [] then begin
      Format.eprintf "no queries in %s@." path;
      exit 2
    end;
    let inst = instance_of_document doc in
    let subset, removed = Tgd_obda.Approximation.wr_subset p in
    Format.printf "WR subset: %d/%d rules kept" (Program.size subset) (Program.size p);
    if removed <> [] then
      Format.printf " (removed: %s)"
        (String.concat ", " (List.map (fun (r : Tgd.t) -> r.Tgd.name) removed));
    Format.printf "@.";
    List.iter
      (fun q ->
        let itv = Tgd_obda.Approximation.interval_answers p inst q in
        Format.printf "@.%s: %d certain (sound lower bound), %d possible (complete upper bound)%s@."
          q.Cq.name
          (List.length itv.Tgd_obda.Approximation.lower)
          (List.length itv.Tgd_obda.Approximation.upper)
          (if itv.Tgd_obda.Approximation.exact then " — exact" else "");
        List.iter (fun t -> Format.printf "  certain  %a@." Tgd_db.Tuple.pp t)
          itv.Tgd_obda.Approximation.lower;
        List.iter
          (fun t ->
            if not (List.exists (Tgd_db.Tuple.equal t) itv.Tgd_obda.Approximation.lower) then
              Format.printf "  possible %a@." Tgd_db.Tuple.pp t)
          itv.Tgd_obda.Approximation.upper)
      doc.Tgd_parser.Parser.queries
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "approx"
       ~doc:
         "Bracket certain answers for ontologies outside the tractable classes: a sound lower \
          bound via a WR subset and a complete upper bound via Datalog relaxation.")
    Term.(const run $ path)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)

(* Worker domains all allocate on the request path (parse, rewrite-cache
   probe, evaluation, response serialization), and in OCaml 5 every minor
   collection is a stop-the-world barrier across domains — with the 256k-word
   default minor heap, a 4-worker server spends more time synchronizing GCs
   than serving (the BENCH_serve 4-domain collapse). Scale the minor heap
   with the worker count unless the operator pinned one via OCAMLRUNPARAM. *)
let tune_minor_heap ~workers =
  let pinned =
    match Sys.getenv_opt "OCAMLRUNPARAM" with
    | None -> false
    | Some s ->
      String.split_on_char ',' s
      |> List.exists (fun kv -> String.length kv >= 2 && kv.[0] = 's' && kv.[1] = '=')
  in
  if not pinned then
    Gc.set
      {
        (Gc.get ()) with
        Gc.minor_heap_size = min (16 * 1024 * 1024) (1024 * 1024 * max 1 workers);
      }

let parse_listen_addr spec =
  match String.index_opt spec ':' with
  | None -> (
    match int_of_string_opt spec with
    | Some port when port >= 0 -> Ok (Tgd_serve.Net.Tcp ("127.0.0.1", port))
    | Some _ | None ->
      Error (Printf.sprintf "bad --listen %S (expected unix:PATH, tcp:HOST:PORT, or PORT)" spec))
  | Some i -> (
    let scheme = String.sub spec 0 i in
    let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
    match scheme with
    | "unix" -> Ok (Tgd_serve.Net.Unix_path rest)
    | "tcp" -> (
      match String.rindex_opt rest ':' with
      | None -> Error (Printf.sprintf "bad --listen %S (tcp needs HOST:PORT)" spec)
      | Some j -> (
        let host = String.sub rest 0 j in
        match int_of_string_opt (String.sub rest (j + 1) (String.length rest - j - 1)) with
        | Some port when port >= 0 -> Ok (Tgd_serve.Net.Tcp (host, port))
        | Some _ | None -> Error (Printf.sprintf "bad --listen %S (bad port)" spec)))
    | _ -> Error (Printf.sprintf "bad --listen %S (unknown scheme %S)" spec scheme))

let parse_quota spec =
  let num s =
    match float_of_string_opt s with
    | Some f when f > 0.0 -> Ok f
    | Some _ | None -> Error (Printf.sprintf "bad --quota %S (numbers must be positive)" spec)
  in
  match String.index_opt spec ':' with
  | None -> Result.map (fun rate -> (rate, None)) (num spec)
  | Some i -> (
    match num (String.sub spec 0 i) with
    | Error e -> Error e
    | Ok rate ->
      Result.map
        (fun burst -> (rate, Some burst))
        (num (String.sub spec (i + 1) (String.length spec - i - 1))))

let serve_cmd =
  let run workers queue_bound cache_capacity target eval_workers eval_partitions budget deadline
      socket listen max_clients max_inflight quota data_dir fsync checkpoint_every =
    let target = target_of_flag target in
    let base_budget =
      match (budget, deadline) with
      | None, None -> None (* keep the server's own default *)
      | _ -> Some (budget_of_flags budget deadline)
    in
    let eval_partitions = resolve_eval_partitions eval_partitions in
    let listen_addrs =
      List.map
        (fun spec ->
          match parse_listen_addr spec with
          | Ok addr -> addr
          | Error msg ->
            Format.eprintf "obda serve: %s@." msg;
            exit 1)
        listen
    in
    let rate, burst =
      match quota with
      | None -> (None, None)
      | Some spec -> (
        match parse_quota spec with
        | Ok (rate, burst) -> (Some rate, burst)
        | Error msg ->
          Format.eprintf "obda serve: %s@." msg;
          exit 1)
    in
    let resolved_workers =
      match workers with
      | Some w -> w
      | None -> Tgd_exec.Pool.default_workers ()
    in
    tune_minor_heap ~workers:resolved_workers;
    let store =
      match data_dir with
      | None -> None
      | Some dir -> (
        match Tgd_store.Store.open_dir ~fsync dir with
        | Ok store -> Some store
        | Error msg ->
          Format.eprintf "obda serve: cannot open data dir: %s@." msg;
          exit 1)
    in
    let server =
      Tgd_serve.Server.create ~cache_capacity ?base_budget ~target ~eval_workers ?eval_partitions
        ?store ~checkpoint_every ()
    in
    (match store with
    | Some s ->
      Format.eprintf "obda serve: durable store at %s (fsync %s)@." (Tgd_store.Store.dir s)
        (if fsync then "on" else "off")
    | None -> ());
    Fun.protect ~finally:(fun () -> Tgd_serve.Server.shutdown server) @@ fun () ->
    match (listen_addrs, socket) with
    | _ :: _, _ ->
      let listeners = List.map Tgd_serve.Net.listen listen_addrs in
      List.iter
        (fun l ->
          Format.eprintf "obda serve: listening on %s@."
            (Tgd_serve.Net.addr_to_string (Tgd_serve.Net.listener_addr l)))
        listeners;
      Tgd_serve.Net.serve ?workers ~queue_bound ~max_clients ?max_inflight ?rate ?burst server
        ~listeners
    | [], Some path ->
      Format.eprintf "obda serve: listening on unix socket %s@." path;
      Tgd_serve.Server.run_unix_socket ?workers ~queue_bound server ~path
    | [], None -> ignore (Tgd_serve.Server.run ?workers ~queue_bound server stdin stdout)
  in
  let workers =
    Arg.(
      value & opt (some int) None
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains executing prepare/execute requests (default: one per core).")
  in
  let queue_bound =
    Arg.(
      value & opt int 64
      & info [ "queue-bound" ] ~docv:"N"
          ~doc:
            "Admission bound on queued requests; beyond it, requests are shed with a typed \
             $(b,overloaded) response instead of queueing without limit.")
  in
  let cache_capacity =
    Arg.(
      value & opt int 1024
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"Prepared-query LRU cache capacity (canonical CQ + ontology epoch entries).")
  in
  let eval_workers =
    Arg.(
      value & opt int 1
      & info [ "eval-workers" ] ~docv:"N"
          ~doc:
            "Domains for morsel-parallel evaluation of each executed query (a dedicated pool, \
             distinct from $(b,--workers)' request pool). Default 1: parallelize many light \
             queries via $(b,--workers); raise this instead when single heavy queries dominate.")
  in
  let socket =
    Arg.(
      value & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Serve on a Unix-domain socket at PATH (connections accepted sequentially; state \
             persists across connections). Default: JSONL over stdin/stdout.")
  in
  let listen =
    Arg.(
      value & opt_all string []
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Serve many clients concurrently on ADDR — $(b,unix:PATH), $(b,tcp:HOST:PORT), or a \
             bare PORT (binds 127.0.0.1; port 0 picks one). Repeatable; all listeners share one \
             server. A single event loop multiplexes connections while requests interleave \
             through the worker pool; per-connection response order is preserved. Overrides \
             $(b,--socket).")
  in
  let max_clients =
    Arg.(
      value & opt int 1024
      & info [ "max-clients" ] ~docv:"N"
          ~doc:
            "With $(b,--listen): maximum concurrent connections. A client accepted beyond the \
             limit receives one $(b,overloaded) response line and is closed.")
  in
  let max_inflight =
    Arg.(
      value & opt (some int) None
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "With $(b,--listen): server-wide cap on admitted-but-unanswered requests; beyond it \
             requests are shed with $(b,overloaded). Default: $(b,--workers) + \
             $(b,--queue-bound).")
  in
  let quota =
    Arg.(
      value & opt (some string) None
      & info [ "quota" ] ~docv:"RATE[:BURST]"
          ~doc:
            "With $(b,--listen): per-tenant token-bucket quota — RATE requests/second refill, \
             BURST bucket size (default: RATE, min 1). A request whose tenant's bucket is empty \
             is shed with a typed $(b,quota_exceeded) response naming the retry delay. Tenants \
             are the envelope's $(b,tenant) field (default tenant otherwise). Default: no \
             quota.")
  in
  let data_dir =
    Arg.(
      value & opt (some string) None
      & info [ "data-dir" ] ~docv:"DIR"
          ~doc:
            "Durable store directory (created if missing). On startup the registry is recovered \
             from the latest snapshots plus WAL replay; afterwards every acknowledged mutation \
             is write-ahead logged, and the $(b,snapshot) op checkpoints. Default: in-memory \
             only.")
  in
  let fsync =
    Arg.(
      value & opt bool true
      & info [ "fsync" ] ~docv:"BOOL"
          ~doc:
            "Fsync each WAL append (and snapshot) before acknowledging the operation. Disable \
             only when losing the last few acked mutations on power failure is acceptable; \
             crash-consistency (torn-tail truncation) holds either way.")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 0
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "Write a fresh snapshot generation (and trim the WAL) whenever an entry's log \
             reaches N records. Default 0: checkpoint only on explicit $(b,snapshot) requests.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the concurrent query server: register ontologies and data, then prepare/execute \
          conjunctive queries over a prepared-rewriting cache, speaking a JSONL protocol \
          (register-ontology, load-csv, prepare, execute, snapshot, stats, ping, shutdown). \
          With $(b,--data-dir) the registry is durable: write-ahead logged, snapshotted, and \
          recovered on restart.")
    Term.(
      const run $ workers $ queue_bound $ cache_capacity $ target_arg $ eval_workers
      $ eval_partitions_arg $ budget_arg $ deadline_arg $ socket $ listen $ max_clients
      $ max_inflight $ quota $ data_dir $ fsync $ checkpoint_every)

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)

let fuzz_cmd =
  let run seed cases corpus replay_dir invariant no_shrink stop_after json trace dump_dir =
    let invariants =
      match invariant with
      | None -> Tgd_conformance.Invariant.all
      | Some name -> (
        match Tgd_conformance.Invariant.find name with
        | Some inv -> [ inv ]
        | None ->
          Format.eprintf "unknown invariant %S; known: %s@." name
            (String.concat ", "
               (List.map
                  (fun (i : Tgd_conformance.Invariant.t) -> i.Tgd_conformance.Invariant.name)
                  Tgd_conformance.Invariant.all));
          exit 2)
    in
    let summary =
      match replay_dir with
      | Some dir -> Tgd_conformance.Harness.replay ~invariants ~dir ()
      | None ->
        let on_case =
          if trace || dump_dir <> None then
            Some
              (fun index (c : Tgd_conformance.Case.t) ->
                if trace then
                  Format.eprintf "case %d (%s, seed %d)@." index c.Tgd_conformance.Case.label
                    c.Tgd_conformance.Case.seed;
                match dump_dir with
                | None -> ()
                | Some dir ->
                  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
                  Tgd_conformance.Case.save
                    ~path:
                      (Filename.concat dir
                         (Printf.sprintf "case-%06d-seed%d.case" index
                            c.Tgd_conformance.Case.seed))
                    c)
          else None
        in
        Tgd_conformance.Harness.run ~invariants ?corpus_dir:corpus ~shrink:(not no_shrink)
          ?stop_after ?on_case ~seed ~cases ()
    in
    if json then begin
      let open Tgd_serve.Json in
      let obj =
        Obj
          [
            ("seed", Int summary.Tgd_conformance.Harness.seed);
            ("cases", Int summary.Tgd_conformance.Harness.cases);
            ("checks", Int summary.Tgd_conformance.Harness.checks);
            ("passed", Int summary.Tgd_conformance.Harness.passed);
            ("skipped", Int summary.Tgd_conformance.Harness.skipped);
            ("failed", Int summary.Tgd_conformance.Harness.failed);
            ( "per_invariant",
              Obj
                (List.map
                   (fun (name, (p, s, f)) ->
                     (name, Obj [ ("pass", Int p); ("skip", Int s); ("fail", Int f) ]))
                   summary.Tgd_conformance.Harness.per_invariant) );
            ( "failures",
              List
                (List.map
                   (fun (f : Tgd_conformance.Harness.failure) ->
                     Obj
                       ([
                          ("invariant", String f.Tgd_conformance.Harness.invariant);
                          ("label", String f.original.Tgd_conformance.Case.label);
                          ("seed", Int f.original.Tgd_conformance.Case.seed);
                          ("message", String f.message);
                        ]
                       @
                       match f.Tgd_conformance.Harness.corpus_file with
                       | None -> []
                       | Some p -> [ ("corpus_file", String p) ]))
                   summary.Tgd_conformance.Harness.failures) );
          ]
      in
      print_endline (Tgd_serve.Json.to_string obj)
    end
    else print_string (Tgd_conformance.Harness.summary_to_string summary);
    if summary.Tgd_conformance.Harness.failed > 0 then exit 1
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N" ~doc:"Base seed of the deterministic case stream.")
  in
  let cases =
    Arg.(
      value & opt int 100
      & info [ "cases" ] ~docv:"K" ~doc:"Number of generated cases to sweep.")
  in
  let corpus =
    Arg.(
      value & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Persist shrunk failing cases as $(b,DIR/<invariant>-seed<N>.case).")
  in
  let replay_dir =
    Arg.(
      value & opt (some dir) None
      & info [ "replay" ] ~docv:"DIR"
          ~doc:"Instead of generating, replay every *.case file in DIR through the registry.")
  in
  let invariant =
    Arg.(
      value & opt (some string) None
      & info [ "invariant" ] ~docv:"NAME"
          ~doc:
            "Check a single invariant (subsumption, differential, metamorphic, serve, \
             eval-parallel, truncation, update-sequence) instead of the full registry.")
  in
  let no_shrink =
    Arg.(
      value & flag
      & info [ "no-shrink" ] ~doc:"Report failures as generated, without greedy shrinking.")
  in
  let stop_after =
    Arg.(
      value & opt (some int) None
      & info [ "stop-after" ] ~docv:"N" ~doc:"Stop the sweep after N failures.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the summary as a single JSON object.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Print each case's index, family and seed to stderr before checking it.")
  in
  let dump_dir =
    Arg.(
      value & opt (some string) None
      & info [ "dump-cases" ] ~docv:"DIR"
          ~doc:
            "Write every generated case to DIR before checking it (useful for inspecting a \
             case that hangs an invariant, with any other $(b,obda) subcommand).")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Metamorphic conformance fuzzing: sweep a seeded stream of class-biased (ontology, \
          instance, query) cases through the cross-layer invariant registry (classifier \
          subsumption, rewrite/chase differential, metamorphic transforms, serve-path \
          equivalence, eval-parallelism, truncation soundness, incremental update \
          sequences), shrinking and persisting any failure. Exits 1 if any invariant \
          fails.")
    Term.(
      const run $ seed $ cases $ corpus $ replay_dir $ invariant $ no_shrink $ stop_after $ json
      $ trace $ dump_dir)

(* ------------------------------------------------------------------ *)
(* examples                                                            *)

let examples_cmd =
  let run () =
    let show p =
      Format.printf "%% %s@.%s@." p.Program.name (Tgd_parser.Printer.program_to_string p)
    in
    show Tgd_core.Paper_examples.example1;
    show Tgd_core.Paper_examples.example2;
    show Tgd_core.Paper_examples.example3;
    show Tgd_gen.University.ontology
  in
  Cmd.v
    (Cmd.info "examples" ~doc:"Print the paper's examples and the university ontology.")
    Term.(const run $ const ())

let main =
  let info =
    Cmd.info "obda" ~version:"1.0.0"
      ~doc:"Query answering over ontologies specified via database dependencies (SIGMOD'14 reproduction)."
  in
  Cmd.group info
    [
      classify_cmd; graph_cmd; rewrite_cmd; answer_cmd; chase_cmd; check_cmd; approx_cmd;
      patterns_cmd; examples_cmd; serve_cmd; fuzz_cmd;
    ]

let () = exit (Cmd.eval main)
