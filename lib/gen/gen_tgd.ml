open Tgd_logic

type config = {
  n_predicates : int;
  max_arity : int;
  n_rules : int;
  max_body_atoms : int;
  max_head_atoms : int;
  existential_rate : float;
  constant_rate : float;
  repeat_rate : float;
  n_constants : int;
}

let default_config =
  {
    n_predicates = 6;
    max_arity = 3;
    n_rules = 8;
    max_body_atoms = 3;
    max_head_atoms = 1;
    existential_rate = 0.3;
    constant_rate = 0.0;
    repeat_rate = 0.0;
    n_constants = 3;
  }

(* A fixed predicate universe: p0..p{n-1}, arity chosen per predicate from a
   deterministic stream of the generator.

   The declared signature is explicit and first-class: every generator that
   emits atoms is closed over one signature value, so a predicate can never
   appear at two arities inside a generated workload. Before this was
   enforced, each call re-rolled the arities for the same interned symbols,
   and composing two draws (a program from one call, facts or extra rules
   from another) produced arity conflicts that only surfaced deep inside
   [Instance.relation_for] / [Instance.build_indexes] at load or eval
   time. *)
type signature = (Symbol.t * int) list

let signature rng cfg =
  List.init cfg.n_predicates (fun i ->
      (Symbol.intern (Printf.sprintf "p%d" i), 1 + Rng.int rng cfg.max_arity))

let closed_over sg p =
  List.for_all
    (fun (pred, arity) ->
      match List.assoc_opt pred sg with Some declared -> declared = arity | None -> false)
    (Program.predicates p)

let predicates ?signature:sg rng cfg =
  match sg with Some s -> Array.of_list s | None -> Array.of_list (signature rng cfg)

let var i = Term.var (Printf.sprintf "Y%d" i)

let random_rule rng cfg preds name =
  let next_var = ref 0 in
  let fresh_var () =
    incr next_var;
    var !next_var
  in
  let body_vars = ref [] in
  let body_atom () =
    let pred, arity = Rng.choose_array rng preds in
    let in_atom = ref [] in
    let args =
      List.init arity (fun _ ->
          if cfg.constant_rate > 0.0 && Rng.bool rng cfg.constant_rate then
            Term.const (Printf.sprintf "c%d" (Rng.int rng cfg.n_constants))
          else if !in_atom <> [] && Rng.bool rng cfg.repeat_rate then Rng.choose rng !in_atom
          else if !body_vars <> [] && Rng.bool rng 0.5 then Rng.choose rng !body_vars
          else begin
            let v = fresh_var () in
            body_vars := v :: !body_vars;
            v
          end)
    in
    List.iter
      (fun t -> match t with Term.Var _ -> in_atom := t :: !in_atom | Term.Const _ -> ())
      args;
    Atom.make pred args
  in
  let n_body = 1 + Rng.int rng cfg.max_body_atoms in
  let body = List.init n_body (fun _ -> body_atom ()) in
  let head_atom () =
    let pred, arity = Rng.choose_array rng preds in
    let args =
      List.init arity (fun _ ->
          if Rng.bool rng cfg.existential_rate || !body_vars = [] then fresh_var ()
          else Rng.choose rng !body_vars)
    in
    Atom.make pred args
  in
  let n_head = 1 + Rng.int rng cfg.max_head_atoms in
  let head = List.init n_head (fun _ -> head_atom ()) in
  Tgd.make ~name ~body ~head

let random_program ?(name = "random") ?signature:sg rng cfg =
  let preds = predicates ?signature:sg rng cfg in
  let rules =
    List.init cfg.n_rules (fun i -> random_rule rng cfg preds (Printf.sprintf "r%d" (i + 1)))
  in
  let p = Program.make_exn ~name rules in
  (match sg with
  | Some sg -> assert (closed_over sg p)
  | None -> ());
  p

let random_simple_program ?(name = "random_simple") ?signature:sg rng cfg =
  let cfg = { cfg with constant_rate = 0.0; repeat_rate = 0.0; max_head_atoms = 1 } in
  (* Reject rules with repeated variables inside an atom (the free generator
     can still repeat a body variable across positions of one atom through
     the body-variable pool). *)
  let preds = predicates ?signature:sg rng cfg in
  let rec simple_rule i =
    let r = random_rule rng cfg preds (Printf.sprintf "r%d" i) in
    if Tgd.is_simple r then r else simple_rule i
  in
  let rules = List.init cfg.n_rules (fun i -> simple_rule (i + 1)) in
  Program.make_exn ~name rules

let simple_linear ?(name = "linear") ?signature:sg rng ~n_rules ~n_predicates ~max_arity =
  let preds =
    match sg with
    | Some s -> Array.of_list s
    | None ->
      Array.init n_predicates (fun i ->
          (Symbol.intern (Printf.sprintf "p%d" i), 1 + Rng.int rng max_arity))
  in
  let rule i =
    let bp, ba = Rng.choose_array rng preds in
    let hp, ha = Rng.choose_array rng preds in
    let body_args = List.init ba (fun j -> var (j + 1)) in
    let head_args =
      List.init ha (fun j ->
          if Rng.bool rng 0.5 && ba > 0 then var (1 + Rng.int rng ba) else var (100 + j))
    in
    (* Enforce simplicity: distinct variables per atom. Frontier positions
       reuse body variables; the fallback vars 100+j are existential. *)
    let dedupe args =
      let seen = Hashtbl.create 8 in
      List.mapi
        (fun j t ->
          match t with
          | Term.Var v when not (Hashtbl.mem seen v) ->
            Hashtbl.add seen v ();
            t
          | Term.Var _ -> var (200 + j)
          | Term.Const _ -> t)
        args
    in
    Tgd.make ~name:(Printf.sprintf "r%d" i) ~body:[ Atom.make bp body_args ]
      ~head:[ Atom.make hp (dedupe head_args) ]
  in
  Program.make_exn ~name (List.init n_rules (fun i -> rule (i + 1)))

let simple_multilinear ?(name = "multilinear") rng ~n_rules ~n_predicates ~arity =
  let preds = Array.init n_predicates (fun i -> Symbol.intern (Printf.sprintf "m%d" i)) in
  let vars = List.init arity (fun j -> var (j + 1)) in
  let rule i =
    let n_body = 1 + Rng.int rng 3 in
    let body =
      List.init n_body (fun _ -> Atom.make (Rng.choose_array rng preds) (Rng.shuffle rng vars))
    in
    let head_pred = Rng.choose_array rng preds in
    (* Head: a subset of body variables in shuffled order, padded with
       existentials, all distinct. *)
    let head_args =
      List.mapi
        (fun j v -> if Rng.bool rng 0.7 then v else var (100 + j))
        (Rng.shuffle rng vars)
    in
    Tgd.make ~name:(Printf.sprintf "r%d" i) ~body ~head:[ Atom.make head_pred head_args ]
  in
  Program.make_exn ~name (List.init n_rules (fun i -> rule (i + 1)))

let sample_in_class ?(max_tries = 1_000) accept draw =
  let rec loop k =
    if k >= max_tries then None
    else
      let p = draw () in
      if accept p then Some p else loop (k + 1)
  in
  loop 0

let chain ?(name = "chain") ~depth =
  let rule i =
    Tgd.make
      ~name:(Printf.sprintf "c%d" i)
      ~body:[ Atom.of_strings (Printf.sprintf "r%d" i) [ var 1; var 2 ] ]
      ~head:[ Atom.of_strings (Printf.sprintf "r%d" (i + 1)) [ var 1; var 3 ] ]
  in
  Program.make_exn ~name (List.init depth (fun i -> rule i))

let wide_star ?(name = "star") ~width =
  let rule i =
    Tgd.make
      ~name:(Printf.sprintf "s%d" i)
      ~body:
        [
          Atom.of_strings "hub" [ var 1 ];
          Atom.of_strings (Printf.sprintf "spoke%d" i) [ var 1; var 2 ];
        ]
      ~head:[ Atom.of_strings (Printf.sprintf "out%d" i) [ var 2; var 3 ] ]
  in
  Program.make_exn ~name (List.init width (fun i -> rule i))
