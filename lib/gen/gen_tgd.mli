(** Random TGD workloads.

    Two kinds of generators:
    - {b constructive} per-class families (every output is a member of the
      class by construction), used for the subsumption experiment E5 and the
      scaling experiments E6/E7;
    - a {b free} generator with tunable rates, combined with
      generate-and-filter acceptance sampling for classes without an easy
      constructive shape (sticky, sticky-join). *)

open Tgd_logic

type config = {
  n_predicates : int;
  max_arity : int;
  n_rules : int;
  max_body_atoms : int;
  max_head_atoms : int;
  existential_rate : float;  (** probability that a head position is fresh *)
  constant_rate : float;  (** probability that a body position is a constant *)
  repeat_rate : float;  (** probability of reusing a variable already in the atom *)
  n_constants : int;
}

val default_config : config

type signature = (Symbol.t * int) list
(** A declared relational signature: each predicate with its single arity.
    Draw it once with {!signature} and thread it through every generator
    call of a workload — programs, extra rules, facts ({!Gen_db}) — so that
    all components agree on arities. Without a shared signature, every call
    re-rolls arities for the same interned predicate names, and composing
    two draws can use one predicate at two arities, an inconsistency that
    {!Tgd_db.Instance} only reports when the facts are loaded or evaluated. *)

val signature : Rng.t -> config -> signature
(** Declare [n_predicates] predicates [p0 .. p{n-1}] with arities drawn in
    [1 .. max_arity]. *)

val closed_over : signature -> Program.t -> bool
(** Every predicate of the program is declared, at the declared arity. *)

val random_program : ?name:string -> ?signature:signature -> Rng.t -> config -> Program.t
(** Free generator; no class guarantee. With [?signature] the result is
    guaranteed closed over it (post-condition checked). *)

val random_simple_program : ?name:string -> ?signature:signature -> Rng.t -> config -> Program.t
(** Free generator restricted to simple TGDs (no constants, no repeated
    variables, single-head). With [?signature] the result is closed over
    it. *)

val simple_linear :
  ?name:string ->
  ?signature:signature ->
  Rng.t ->
  n_rules:int ->
  n_predicates:int ->
  max_arity:int ->
  Program.t
(** Constructive: simple TGDs with a single body atom. [n_predicates] and
    [max_arity] are ignored when [?signature] is given. *)

val simple_multilinear : ?name:string -> Rng.t -> n_rules:int -> n_predicates:int -> arity:int -> Program.t
(** Constructive: every body atom contains all body variables (bodies are
    permutations of one variable tuple over same-arity predicates). *)

val sample_in_class :
  ?max_tries:int -> (Program.t -> bool) -> (unit -> Program.t) -> Program.t option
(** Acceptance sampling: draw programs until the predicate holds. *)

val chain : ?name:string -> depth:int -> Program.t
(** Deterministic family: r0(x,y) -> r1(x,z); r1(x,y) -> r2(x,z); ...
    Linear, SWR; position-graph size grows linearly with depth — used for
    the E6 scaling bench. *)

val wide_star : ?name:string -> width:int -> Program.t
(** Deterministic family: hub(x), spoke_i(x,y_i) -> hub_i(y_i), one rule per
    spoke — multi-atom bodies exercising m-edges. *)
