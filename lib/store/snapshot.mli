(** Binary snapshot codec for registry entries.

    A snapshot is the durable image of one registry entry at a quiescent
    point: its epochs, the ontology source text, the sealed instance, and
    the live chase materialization (if any). Sealed instances are written
    {e near-verbatim}: each relation's {!Tgd_db.Columnar} block — flat
    coded columns plus CSR indexes — is dumped as raw little-endian words
    together with the symbol intern table slice it references, so loading
    is a bulk read plus a single symbol-remap pass (intern ids are
    process-local), not a re-seal: values are never re-coded and row
    groupings never re-hashed. Relations without a block (uncodable
    values, never sealed) and pending copy-on-write tails fall back to
    boxed row encoding.

    The file is framed [magic | version | u32 length | body | u32 CRC-32];
    {!decode} rejects any tampered or truncated image, which is how
    recovery skips a torn half-written snapshot generation (writers avoid
    that via tmp + rename, but recovery must not trust it). *)

type materialization = {
  model : Tgd_db.Instance.t;
  floor : int;  (** null floor for the next delta application *)
  complete : bool;
}

type t = {
  epoch : int;
  delta_epoch : int;
  program_src : string;
      (** the ontology in the repository's text format; re-parsed on load *)
  instance : Tgd_db.Instance.t;
  materialization : materialization option;
}

val encode : t -> string

val decode : string -> (t, string) result
(** Rebuilds the instances. Symbol ids found in coded columns are remapped
    through the embedded intern-table slice (fresh processes intern in a
    different order); null labels are preserved verbatim, so [floor] and
    the epochs survive exactly. *)
