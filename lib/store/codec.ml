(* Binary primitives for the durable store: little-endian, fixed-width,
   length-prefixed, CRC-32 framed. Fixed 8-byte integers keep columnar
   snapshot loads a bulk read (value codes reach 2^44); the payloads are
   dominated by fact data, so varint savings would be marginal anyway. *)

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3), table-driven                                   *)

(* Slicing-by-8 in plain int arithmetic: the state fits in 32 bits, so
   boxed Int32 ops (an allocation per byte) are avoided, and eight table
   lookups per 8-byte word beat the byte-at-a-time loop ~4x — snapshot
   bodies run to tens of megabytes and the checksum must not dominate
   recovery. *)
let crc_tables =
  lazy
    (let t0 =
       Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             if !c land 1 <> 0 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
           done;
           !c)
     in
     let tabs = Array.make 8 t0 in
     for k = 1 to 7 do
       tabs.(k) <- Array.map (fun c -> t0.(c land 0xFF) lxor (c lsr 8)) tabs.(k - 1)
     done;
     tabs)

let crc32 s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Codec.crc32: substring out of bounds";
  let tabs = Lazy.force crc_tables in
  let t0 = tabs.(0) and t1 = tabs.(1) and t2 = tabs.(2) and t3 = tabs.(3) in
  let t4 = tabs.(4) and t5 = tabs.(5) and t6 = tabs.(6) and t7 = tabs.(7) in
  let c = ref 0xFFFFFFFF in
  let i = ref pos in
  let stop = pos + len in
  while !i + 8 <= stop do
    let v = String.get_int64_le s !i in
    let lo = !c lxor Int64.to_int (Int64.logand v 0xFFFF_FFFFL) in
    let hi = Int64.to_int (Int64.shift_right_logical v 32) in
    c :=
      Array.unsafe_get t7 (lo land 0xFF)
      lxor Array.unsafe_get t6 ((lo lsr 8) land 0xFF)
      lxor Array.unsafe_get t5 ((lo lsr 16) land 0xFF)
      lxor Array.unsafe_get t4 (lo lsr 24)
      lxor Array.unsafe_get t3 (hi land 0xFF)
      lxor Array.unsafe_get t2 ((hi lsr 8) land 0xFF)
      lxor Array.unsafe_get t1 ((hi lsr 16) land 0xFF)
      lxor Array.unsafe_get t0 (hi lsr 24);
    i := !i + 8
  done;
  while !i < stop do
    c :=
      Array.unsafe_get t0 ((!c lxor Char.code (String.unsafe_get s !i)) land 0xFF)
      lxor (!c lsr 8);
    incr i
  done;
  Int32.of_int (!c lxor 0xFFFFFFFF)

(* ------------------------------------------------------------------ *)
(* Writers                                                             *)

let w_u8 buf v =
  if v < 0 || v > 0xFF then invalid_arg "Codec.w_u8";
  Buffer.add_char buf (Char.chr v)

let w_u32 buf v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Codec.w_u32: out of range";
  Buffer.add_int32_le buf (Int32.of_int v)

let w_int buf v = Buffer.add_int64_le buf (Int64.of_int v)

let w_string buf s =
  w_u32 buf (String.length s);
  Buffer.add_string buf s

let w_int_array buf a =
  w_u32 buf (Array.length a);
  Array.iter (fun v -> w_int buf v) a

(* ------------------------------------------------------------------ *)
(* Readers                                                             *)

exception Corrupt of string

type reader = {
  src : string;
  mutable p : int;
}

let reader ?(pos = 0) src =
  if pos < 0 || pos > String.length src then raise (Corrupt "reader: bad start position");
  { src; p = pos }

let pos r = r.p
let remaining r = String.length r.src - r.p

let need r n what = if remaining r < n then raise (Corrupt ("truncated " ^ what))

let r_u8 r =
  need r 1 "u8";
  let v = Char.code r.src.[r.p] in
  r.p <- r.p + 1;
  v

let r_u32 r =
  need r 4 "u32";
  let v = Int32.to_int (String.get_int32_le r.src r.p) land 0xFFFFFFFF in
  r.p <- r.p + 4;
  v

let r_int r =
  need r 8 "int";
  let v64 = String.get_int64_le r.src r.p in
  let v = Int64.to_int v64 in
  if Int64.of_int v <> v64 then raise (Corrupt "int overflows the host word");
  r.p <- r.p + 8;
  v

let r_string r =
  let len = r_u32 r in
  need r len "string";
  let s = String.sub r.src r.p len in
  r.p <- r.p + len;
  s

let r_int_array r =
  let len = r_u32 r in
  (* Each element is 8 bytes: reject lengths the buffer cannot hold before
     allocating, then read with one bounds check for the whole array — these
     carry the bulk of every columnar snapshot. *)
  if len * 8 > remaining r then raise (Corrupt "truncated int array");
  let src = r.src and base = r.p in
  let a =
    Array.init len (fun i ->
        let v64 = String.get_int64_le src (base + (i lsl 3)) in
        let v = Int64.to_int v64 in
        if Int64.of_int v <> v64 then raise (Corrupt "int overflows the host word");
        v)
  in
  r.p <- base + (len lsl 3);
  a
