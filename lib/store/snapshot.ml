(* Snapshot codec: near-verbatim serialization of sealed instances.

   Columnar blocks are dumped as their raw arrays (Columnar.export /
   import), so the expensive parts of sealing — coding every value and
   grouping rows into CSR indexes — are never redone on load. What cannot
   be verbatim is the symbol space: Value.code maps constants to process-
   local intern ids, so the snapshot embeds a sparse (id, name) table of
   exactly the ids it references and the loader remaps every constant code
   through [intern name] in one linear pass (skipped entirely when every
   id re-interns to itself, the common single-tenant restart).
   Null codes are position-independent and survive untouched, which is what
   keeps materialization floors exact across recovery. *)

open Tgd_logic
module Db = Tgd_db

let magic = "TGDSNAP1"
let version = 1

type materialization = {
  model : Db.Instance.t;
  floor : int;
  complete : bool;
}

type t = {
  epoch : int;
  delta_epoch : int;
  program_src : string;
  instance : Db.Instance.t;
  materialization : materialization option;
}

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)

let kind_columnar = 0
let kind_boxed = 1

let w_boxed_value buf = function
  | Db.Value.Const c ->
    Codec.w_u8 buf 0;
    Codec.w_int buf (Symbol.hash c)
  | Db.Value.Null n ->
    Codec.w_u8 buf 1;
    Codec.w_int buf n

let w_boxed_rows buf rows =
  Codec.w_u32 buf (List.length rows);
  List.iter (fun tup -> Array.iter (w_boxed_value buf) tup) rows

(* One relation: the sealed block verbatim plus the boxed pending tail, or
   all rows boxed when no block exists. *)
let w_relation buf pred rel =
  Codec.w_int buf (Symbol.hash pred);
  Codec.w_u32 buf (Db.Relation.arity rel);
  match Db.Relation.sealed_parts rel with
  | Some block, pending ->
    Codec.w_u8 buf kind_columnar;
    let p = Db.Columnar.export block in
    Codec.w_u32 buf p.Db.Columnar.p_nrows;
    Codec.w_u32 buf (Array.length p.Db.Columnar.p_cols);
    Array.iter (fun col -> Codec.w_int_array buf col) p.Db.Columnar.p_cols;
    Codec.w_u32 buf (Array.length p.Db.Columnar.p_groups);
    Array.iteri
      (fun j pairs ->
        Codec.w_u32 buf (Array.length pairs);
        Array.iter
          (fun (code, g) ->
            Codec.w_int buf code;
            Codec.w_u32 buf g)
          pairs;
        Codec.w_int_array buf p.Db.Columnar.p_starts.(j);
        Codec.w_int_array buf p.Db.Columnar.p_rows.(j))
      p.Db.Columnar.p_groups;
    w_boxed_rows buf pending
  | None, rows ->
    Codec.w_u8 buf kind_boxed;
    w_boxed_rows buf rows

let w_instance buf inst =
  let preds = Db.Instance.predicates inst in
  Codec.w_u32 buf (List.length preds);
  List.iter
    (fun (pred, _arity) ->
      match Db.Instance.relation inst pred with
      | Some rel -> w_relation buf pred rel
      | None -> assert false)
    preds

(* The symbol-table slice: a sparse (id, name) table of exactly the intern
   ids the image references — the process may have interned millions of
   unrelated symbols, and a dense prefix would drag them all in. Columns
   are scanned without decoding (codes below null_base are symbol ids). *)
let used_symbols_of_instance inst used =
  let see_id i = if not (Hashtbl.mem used i) then Hashtbl.replace used i () in
  let see_value = function
    | Db.Value.Const c -> see_id (Symbol.hash c)
    | Db.Value.Null _ -> ()
  in
  List.iter
    (fun (pred, _) ->
      see_id (Symbol.hash pred);
      match Db.Instance.relation inst pred with
      | None -> ()
      | Some rel -> (
        match Db.Relation.sealed_parts rel with
        | Some block, pending ->
          let p = Db.Columnar.export block in
          Array.iter
            (fun col ->
              Array.iter (fun c -> if c < Db.Value.null_base then see_id c) col)
            p.Db.Columnar.p_cols;
          List.iter (fun tup -> Array.iter see_value tup) pending
        | None, rows -> List.iter (fun tup -> Array.iter see_value tup) rows))
    (Db.Instance.predicates inst);
  used

let encode t =
  let body = Buffer.create 4096 in
  Codec.w_u32 body t.epoch;
  Codec.w_u32 body t.delta_epoch;
  Codec.w_string body t.program_src;
  let used =
    let u = used_symbols_of_instance t.instance (Hashtbl.create 256) in
    match t.materialization with
    | Some mat -> used_symbols_of_instance mat.model u
    | None -> u
  in
  let ids = Hashtbl.fold (fun id () acc -> id :: acc) used [] |> List.sort compare in
  Codec.w_u32 body (List.length ids);
  List.iter
    (fun id ->
      Codec.w_int body id;
      Codec.w_string body (Symbol.name (Symbol.of_int id)))
    ids;
  w_instance body t.instance;
  (match t.materialization with
  | None -> Codec.w_u8 body 0
  | Some mat ->
    Codec.w_u8 body 1;
    Codec.w_int body mat.floor;
    Codec.w_u8 body (if mat.complete then 1 else 0);
    w_instance body mat.model);
  let body = Buffer.contents body in
  let out = Buffer.create (String.length body + 24) in
  Buffer.add_string out magic;
  Codec.w_u32 out version;
  Codec.w_u32 out (String.length body);
  Buffer.add_string out body;
  Buffer.add_int32_le out (Codec.crc32 body ~pos:0 ~len:(String.length body));
  Buffer.contents out

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)

(* remap = None: every embedded (id, name) pair interns to its own id in
   this process (the common single-tenant restart) and every code is
   already valid. Otherwise the array maps old id -> fresh intern id, with
   -1 marking ids the snapshot never declared. *)
let remap_code remap c =
  match remap with
  | None -> c
  | Some map ->
    if c >= Db.Value.null_base then c
    else if c >= 0 && c < Array.length map && map.(c) >= 0 then map.(c)
    else raise (Codec.Corrupt (Printf.sprintf "symbol code %d outside the intern slice" c))

let r_boxed_value r remap =
  match Codec.r_u8 r with
  | 0 -> Db.Value.decode (remap_code remap (Codec.r_int r))
  | 1 -> Db.Value.Null (Codec.r_int r)
  | n -> raise (Codec.Corrupt (Printf.sprintf "unknown value tag %d" n))

let r_boxed_rows r remap ~arity =
  let count = Codec.r_u32 r in
  List.init count (fun _ -> Array.init arity (fun _ -> r_boxed_value r remap))

let r_relation r remap =
  let pred_id = remap_code remap (Codec.r_int r) in
  let pred =
    match Symbol.of_int pred_id with
    | s -> s
    | exception Invalid_argument _ ->
      raise (Codec.Corrupt (Printf.sprintf "predicate id %d is not interned" pred_id))
  in
  let arity = Codec.r_u32 r in
  match Codec.r_u8 r with
  | k when k = kind_columnar ->
    let nrows = Codec.r_u32 r in
    let ncols = Codec.r_u32 r in
    if ncols <> max arity 1 then raise (Codec.Corrupt "column count does not match arity");
    let cols = Array.init ncols (fun _ -> Codec.r_int_array r) in
    Array.iter
      (fun col ->
        if Array.length col <> nrows then raise (Codec.Corrupt "column length mismatch"))
      cols;
    (* Remap constant codes in place: the arrays are snapshot-private. *)
    (match remap with
    | None -> ()
    | Some _ ->
      Array.iter
        (fun col ->
          for i = 0 to Array.length col - 1 do
            col.(i) <- remap_code remap col.(i)
          done)
        cols);
    let nidx = Codec.r_u32 r in
    if nidx <> arity then raise (Codec.Corrupt "index count does not match arity");
    let groups = Array.make nidx [||] in
    let starts = Array.make nidx [||] in
    let rows = Array.make nidx [||] in
    for j = 0 to nidx - 1 do
      let npairs = Codec.r_u32 r in
      groups.(j) <-
        Array.init npairs (fun _ ->
            let code = remap_code remap (Codec.r_int r) in
            let g = Codec.r_u32 r in
            (code, g));
      starts.(j) <- Codec.r_int_array r;
      rows.(j) <- Codec.r_int_array r
    done;
    let block =
      Db.Columnar.import
        {
          Db.Columnar.p_arity = arity;
          p_nrows = nrows;
          p_cols = cols;
          p_groups = groups;
          p_starts = starts;
          p_rows = rows;
        }
    in
    let rel = Db.Relation.of_columnar block in
    let pending = r_boxed_rows r remap ~arity in
    List.iter (fun tup -> ignore (Db.Relation.insert rel tup)) pending;
    (pred, rel)
  | k when k = kind_boxed ->
    let rel = Db.Relation.create ~arity in
    List.iter
      (fun tup -> ignore (Db.Relation.insert rel tup))
      (r_boxed_rows r remap ~arity);
    (pred, rel)
  | k -> raise (Codec.Corrupt (Printf.sprintf "unknown relation kind %d" k))

let r_instance r remap =
  let n = Codec.r_u32 r in
  let inst = Db.Instance.create () in
  for _ = 1 to n do
    let pred, rel = r_relation r remap in
    Db.Instance.install_relation inst pred rel
  done;
  inst

let decode s =
  try
    if String.length s < String.length magic + 12 then Error "snapshot too short"
    else if not (String.equal (String.sub s 0 (String.length magic)) magic) then
      Error "bad snapshot magic"
    else begin
      let r = Codec.reader ~pos:(String.length magic) s in
      let v = Codec.r_u32 r in
      if v <> version then Error (Printf.sprintf "unsupported snapshot version %d" v)
      else begin
        let body_len = Codec.r_u32 r in
        let body_pos = Codec.pos r in
        if Codec.remaining r < body_len + 4 then Error "truncated snapshot body"
        else begin
          let stored_crc = String.get_int32_le s (body_pos + body_len) in
          if Codec.crc32 s ~pos:body_pos ~len:body_len <> stored_crc then
            Error "snapshot CRC mismatch"
          else begin
            let epoch = Codec.r_u32 r in
            let delta_epoch = Codec.r_u32 r in
            let program_src = Codec.r_string r in
            let nsyms = Codec.r_u32 r in
            let pairs =
              Array.init nsyms (fun _ ->
                  let id = Codec.r_int r in
                  if id < 0 then
                    raise (Codec.Corrupt (Printf.sprintf "negative symbol id %d" id));
                  (id, Symbol.hash (Symbol.intern (Codec.r_string r))))
            in
            let identity = Array.for_all (fun (id, fresh) -> id = fresh) pairs in
            let remap =
              if identity then None
              else begin
                let max_id = Array.fold_left (fun m (id, _) -> max m id) (-1) pairs in
                let map = Array.make (max_id + 1) (-1) in
                Array.iter (fun (id, fresh) -> map.(id) <- fresh) pairs;
                Some map
              end
            in
            let instance = r_instance r remap in
            let materialization =
              match Codec.r_u8 r with
              | 0 -> None
              | 1 ->
                let floor = Codec.r_int r in
                let complete = Codec.r_u8 r = 1 in
                let model = r_instance r remap in
                Some { model; floor; complete }
              | n -> raise (Codec.Corrupt (Printf.sprintf "bad materialization tag %d" n))
            in
            if Codec.pos r <> body_pos + body_len then Error "snapshot body length mismatch"
            else Ok { epoch; delta_epoch; program_src; instance; materialization }
          end
        end
      end
    end
  with Codec.Corrupt msg -> Error ("corrupt snapshot: " ^ msg)
