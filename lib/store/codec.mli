(** Binary encoding primitives shared by the WAL and snapshot codecs.

    Everything is little-endian and length-prefixed; integers are written
    as full 8-byte words (value codes reach [2^44], see
    {!Tgd_db.Value.code}, and snapshots favor bulk-blittable fixed-width
    layouts over varint compactness). Integrity is CRC-32 (IEEE),
    table-driven, over the framed payload. *)

val crc32 : string -> pos:int -> len:int -> int32
(** CRC-32 (IEEE 802.3, reflected, init/xorout [0xFFFFFFFF]) of a
    substring. *)

(** {1 Writing} *)

val w_u8 : Buffer.t -> int -> unit
val w_u32 : Buffer.t -> int -> unit
(** Raises [Invalid_argument] outside [0, 2^32). *)

val w_int : Buffer.t -> int -> unit
(** A full OCaml [int], sign-extended through 8 bytes. *)

val w_string : Buffer.t -> string -> unit
(** [u32] byte length, then the bytes. *)

val w_int_array : Buffer.t -> int array -> unit
(** [u32] element count, then each element as {!w_int}. *)

(** {1 Reading} *)

exception Corrupt of string
(** Raised by every reader on malformed input (short reads, out-of-range
    lengths). Snapshot/WAL loaders catch it and treat the region as
    invalid. *)

type reader

val reader : ?pos:int -> string -> reader
val pos : reader -> int
val remaining : reader -> int
val r_u8 : reader -> int
val r_u32 : reader -> int
val r_int : reader -> int
val r_string : reader -> string
val r_int_array : reader -> int array
