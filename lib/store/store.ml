(* Directory layout and crash discipline of the durable store.

   Per entry NAME (percent-encoded as ESC):
     ESC.wal          the write-ahead tail since the last checkpoint
     ESC.GGGGGGGG.snap  snapshot generation G (8-digit, monotone)

   Checkpoint protocol: write ESC.(G+1).snap.tmp, fsync it, rename into
   place, fsync the directory (so the rename itself is durable), truncate
   the WAL, then unlink generations <= G. A crash at any point leaves
   either the old state (tmp ignored at recovery) or the new one (older
   generations are garbage-collected lazily); recovery always picks the
   newest generation whose CRC validates and falls back to older ones. *)

type entry_status = {
  generation : int;
  wal_records : int;
  wal_bytes : int;
}

type recovered = {
  name : string;
  snapshot : Snapshot.t option;
  generation : int;
  tail : Wal.record list;
  torn_bytes : int;
}

type entry = {
  mutable wal : Wal.t option;  (* opened lazily on first log/recover *)
  mutable gen : int;
}

type t = {
  dir : string;
  fsync : bool;
  lock : Mutex.t;
  entries : (string, entry) Hashtbl.t;  (* keyed by registry name *)
}

(* ------------------------------------------------------------------ *)
(* Name (un)escaping: filenames must not collide or contain separators. *)

let escape name =
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> Buffer.add_char buf c
      | c -> Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
    name;
  Buffer.contents buf

let unescape esc =
  let buf = Buffer.create (String.length esc) in
  let n = String.length esc in
  let i = ref 0 in
  (try
     while !i < n do
       (match esc.[!i] with
       | '%' when !i + 2 < n ->
         Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ String.sub esc (!i + 1) 2)));
         i := !i + 2
       | c -> Buffer.add_char buf c);
       incr i
     done;
     Some (Buffer.contents buf)
   with Failure _ | Invalid_argument _ -> None)

let wal_path t name = Filename.concat t.dir (escape name ^ ".wal")

let snap_path t name gen =
  Filename.concat t.dir (Printf.sprintf "%s.%08d.snap" (escape name) gen)

(* ------------------------------------------------------------------ *)

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_dir ?(fsync = true) dir =
  match
    mkdir_p dir;
    Unix.stat dir
  with
  | exception Unix.Unix_error (err, _, _) ->
    Error
      (Printf.sprintf "cannot create data directory %s: %s" dir (Unix.error_message err))
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    (* Probe writability up front so `obda serve --data-dir` fails at
       startup with a clear message, not on the first mutation. *)
    let probe = Filename.concat dir ".probe" in
    (match
       let fd = Unix.openfile probe [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
       Unix.close fd;
       Unix.unlink probe
     with
    | () -> Ok { dir; fsync; lock = Mutex.create (); entries = Hashtbl.create 8 }
    | exception Unix.Unix_error (err, _, _) ->
      Error
        (Printf.sprintf "data directory %s is not writable: %s" dir (Unix.error_message err)))
  | _ -> Error (Printf.sprintf "data directory %s exists and is not a directory" dir)

let dir t = t.dir
let fsync_enabled t = t.fsync

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let entry t name =
  match Hashtbl.find_opt t.entries name with
  | Some e -> e
  | None ->
    let e = { wal = None; gen = 0 } in
    Hashtbl.replace t.entries name e;
    e

let wal_of t name =
  let e = entry t name in
  match e.wal with
  | Some w -> w
  | None ->
    let w = Wal.open_append ~fsync:t.fsync (wal_path t name) in
    e.wal <- Some w;
    w

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Directory listing -> per-name snapshot generations. *)
let scan_dir t =
  let files = try Sys.readdir t.dir with Sys_error _ -> [||] in
  let names = Hashtbl.create 8 in
  let snaps = Hashtbl.create 8 in
  let note_name esc =
    match unescape esc with
    | Some name -> Hashtbl.replace names name ()
    | None -> ()
  in
  Array.iter
    (fun file ->
      if Filename.check_suffix file ".wal" then note_name (Filename.chop_suffix file ".wal")
      else if Filename.check_suffix file ".snap" then begin
        let stem = Filename.chop_suffix file ".snap" in
        match String.rindex_opt stem '.' with
        | None -> ()
        | Some dot -> (
          let esc = String.sub stem 0 dot in
          match int_of_string_opt (String.sub stem (dot + 1) (String.length stem - dot - 1)) with
          | None -> ()
          | Some gen -> (
            match unescape esc with
            | None -> ()
            | Some name ->
              Hashtbl.replace names name ();
              let gens = Option.value ~default:[] (Hashtbl.find_opt snaps name) in
              Hashtbl.replace snaps name (gen :: gens)))
      end)
    files;
  ( Hashtbl.fold (fun name () acc -> name :: acc) names [] |> List.sort compare,
    fun name ->
      Option.value ~default:[] (Hashtbl.find_opt snaps name)
      |> List.sort (fun a b -> compare b a) )

let recover t =
  locked t (fun () ->
      let names, gens_of = scan_dir t in
      List.map
        (fun name ->
          (* Newest decodable snapshot generation wins; corrupt or torn
             generations (e.g. a crash mid-write on a filesystem that
             reordered the rename) are skipped, not fatal. *)
          let snapshot, generation =
            let rec pick = function
              | [] -> (None, 0)
              | gen :: older -> (
                match Snapshot.decode (read_file (snap_path t name gen)) with
                | Ok snap -> (Some snap, gen)
                | Error _ | (exception Sys_error _) -> pick older)
            in
            pick (gens_of name)
          in
          let path = wal_path t name in
          let tail, valid_bytes = Wal.scan path in
          let size = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
          let e = entry t name in
          e.gen <- generation;
          (* Re-open for appending: truncates the torn tail on disk. *)
          (match e.wal with Some w -> Wal.close w | None -> ());
          e.wal <- Some (Wal.open_append ~fsync:t.fsync path);
          { name; snapshot; generation; tail; torn_bytes = max 0 (size - valid_bytes) })
        names)

(* ------------------------------------------------------------------ *)
(* Appends and checkpoints                                             *)

let log t ~name record = locked t (fun () -> Wal.append (wal_of t name) record)

let fsync_file path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ()) (fun () ->
      Unix.fsync fd)

let checkpoint t ~name snap =
  locked t (fun () ->
      let e = entry t name in
      let gen = e.gen + 1 in
      let final = snap_path t name gen in
      let tmp = final ^ ".tmp" in
      let encoded = Snapshot.encode snap in
      let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
      Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ()) (fun () ->
          let b = Bytes.unsafe_of_string encoded in
          let n = Bytes.length b in
          let written = ref 0 in
          while !written < n do
            written := !written + Unix.write fd b !written (n - !written)
          done;
          if t.fsync then Unix.fsync fd);
      Unix.rename tmp final;
      if t.fsync then (try fsync_file t.dir with Unix.Unix_error _ -> ());
      e.gen <- gen;
      (* The snapshot covers everything the log held: trim it. *)
      Wal.reset (wal_of t name);
      (* Garbage-collect older generations (best-effort). *)
      let _, gens_of = scan_dir t in
      List.iter
        (fun g -> if g < gen then try Sys.remove (snap_path t name g) with Sys_error _ -> ())
        (gens_of name);
      { generation = gen; wal_records = 0; wal_bytes = 0 })

let status t ~name =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries name with
      | None -> None
      | Some e ->
        let wal_records, wal_bytes =
          match e.wal with Some w -> (Wal.records w, Wal.bytes w) | None -> (0, 0)
        in
        Some { generation = e.gen; wal_records; wal_bytes })

let close t =
  locked t (fun () ->
      Hashtbl.iter (fun _ e -> match e.wal with Some w -> Wal.close w | None -> ()) t.entries;
      Hashtbl.reset t.entries)
