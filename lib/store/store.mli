(** The durable instance store: one directory holding, per registry entry,
    a write-ahead log ([<name>.wal]) and numbered snapshot generations
    ([<name>.<gen>.snap]).

    Lifecycle: {!open_dir} creates the directory idempotently; {!recover}
    reads the latest valid snapshot generation and the WAL tail of every
    entry (truncating torn tails) and leaves the logs open for appending;
    {!log} appends one mutation record (fsync'd before returning when
    enabled — the server acks only after this); {!checkpoint} writes the
    next snapshot generation atomically (tmp file + rename + directory
    fsync), trims the log to empty and deletes older generations.

    Entry names are percent-encoded into filenames, so any registry name
    round-trips. All operations are serialized under an internal lock —
    the serving layer drives the store from its control thread, but tests
    and benches may not. *)

type t

type entry_status = {
  generation : int;  (** latest snapshot generation; [0] when none *)
  wal_records : int;  (** records in the WAL tail *)
  wal_bytes : int;
}

type recovered = {
  name : string;
  snapshot : Snapshot.t option;
  generation : int;
  tail : Wal.record list;  (** mutations to replay on top of the snapshot *)
  torn_bytes : int;  (** bytes dropped from a torn WAL tail, [0] normally *)
}

val open_dir : ?fsync:bool -> string -> (t, string) result
(** Open (creating it, and any missing parents, if needed) a data
    directory. Idempotent; a permission or non-directory failure is a
    clear [Error], not an exception. [fsync] (default [true]) applies to
    every subsequent {!log} append and snapshot write. *)

val dir : t -> string
val fsync_enabled : t -> bool

val recover : t -> recovered list
(** Scan the directory: per entry, the newest snapshot generation that
    decodes cleanly (corrupt generations are skipped) plus the valid WAL
    prefix. Torn WAL tails are truncated on disk. Sorted by name. *)

val log : t -> name:string -> Wal.record -> int
(** Append one record to the entry's WAL (creating it on first use);
    returns the framed byte size. On stable storage when fsync is
    enabled. *)

val checkpoint : t -> name:string -> Snapshot.t -> entry_status
(** Write snapshot generation [g+1] atomically, trim the entry's WAL to
    empty, delete generations [<= g]. The returned status reflects the new
    state ([wal_records = 0]). *)

val status : t -> name:string -> entry_status option
(** [None] for a name the store has never seen. *)

val close : t -> unit
