(* Length-prefixed, CRC-framed append-only log. The frame is
   [u32 payload_len | u32 crc32(payload) | payload]; the payload is a tag
   byte plus the operation's resolved text. Validity is prefix-closed: the
   first frame that is short, overlong or fails its CRC ends the log, which
   is exactly the torn-tail semantics recovery needs. *)

type record =
  | Register of { source : string }
  | Load_csv of { csv : string }
  | Add_facts of { csv : string }
  | Materialize

let record_tag = function
  | Register _ -> "register"
  | Load_csv _ -> "load-csv"
  | Add_facts _ -> "add-facts"
  | Materialize -> "materialize"

let encode_payload record =
  let buf = Buffer.create 256 in
  (match record with
  | Register { source } ->
    Codec.w_u8 buf 1;
    Codec.w_string buf source
  | Load_csv { csv } ->
    Codec.w_u8 buf 2;
    Codec.w_string buf csv
  | Add_facts { csv } ->
    Codec.w_u8 buf 3;
    Codec.w_string buf csv
  | Materialize -> Codec.w_u8 buf 4);
  Buffer.contents buf

let decode_payload s =
  let r = Codec.reader s in
  let record =
    match Codec.r_u8 r with
    | 1 -> Register { source = Codec.r_string r }
    | 2 -> Load_csv { csv = Codec.r_string r }
    | 3 -> Add_facts { csv = Codec.r_string r }
    | 4 -> Materialize
    | n -> raise (Codec.Corrupt (Printf.sprintf "unknown WAL record tag %d" n))
  in
  if Codec.remaining r <> 0 then raise (Codec.Corrupt "trailing bytes in WAL record");
  record

let frame record =
  let payload = encode_payload record in
  let buf = Buffer.create (String.length payload + 8) in
  Codec.w_u32 buf (String.length payload);
  Buffer.add_int32_le buf (Codec.crc32 payload ~pos:0 ~len:(String.length payload));
  Buffer.add_string buf payload;
  Buffer.contents buf

(* The longest valid record prefix of raw log contents. *)
let scan_string s =
  let n = String.length s in
  let records = ref [] in
  let p = ref 0 in
  let stop = ref false in
  while not !stop do
    if n - !p < 8 then stop := true
    else begin
      let len = Int32.to_int (String.get_int32_le s !p) land 0xFFFFFFFF in
      let crc = String.get_int32_le s (!p + 4) in
      if len > n - !p - 8 then stop := true
      else if Codec.crc32 s ~pos:(!p + 8) ~len <> crc then stop := true
      else begin
        match decode_payload (String.sub s (!p + 8) len) with
        | record ->
          records := record :: !records;
          p := !p + 8 + len
        | exception Codec.Corrupt _ -> stop := true
      end
    end
  done;
  (List.rev !records, !p)

let scan path =
  match open_in_bin path with
  | exception Sys_error _ -> ([], 0)
  | ic ->
    let s =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    scan_string s

type t = {
  fd : Unix.file_descr;
  fsync : bool;
  mutable records : int;
  mutable bytes : int;
}

let open_append ?(fsync = true) path =
  let valid_records, valid_bytes = scan path in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  if size > valid_bytes then begin
    (* Torn tail: drop the partial/corrupt frame so the next append starts
       on a clean boundary. *)
    Unix.ftruncate fd valid_bytes;
    if fsync then Unix.fsync fd
  end;
  ignore (Unix.lseek fd valid_bytes Unix.SEEK_SET);
  { fd; fsync; records = List.length valid_records; bytes = valid_bytes }

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write fd b !written (n - !written)
  done

let append t record =
  let framed = frame record in
  write_all t.fd framed;
  if t.fsync then Unix.fsync t.fd;
  t.records <- t.records + 1;
  t.bytes <- t.bytes + String.length framed;
  String.length framed

let records t = t.records
let bytes t = t.bytes
let fsync_enabled t = t.fsync

let reset t =
  Unix.ftruncate t.fd 0;
  ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
  if t.fsync then Unix.fsync t.fd;
  t.records <- 0;
  t.bytes <- 0

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
