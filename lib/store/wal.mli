(** Per-entry write-ahead log.

    One log file per registry entry, holding the mutating operations
    applied since the entry's last snapshot, in order. Records are framed
    [u32 length | u32 CRC-32 | payload] and appended with an optional
    [fsync] before the server acknowledges the operation, so every acked
    mutation survives a crash. A torn tail (partial last record after a
    crash, or any corrupted frame) is detected by the length/CRC check:
    {!scan} returns the longest valid prefix and {!open_append} truncates
    the file to it before appending again — an acked record is never lost,
    an unacked one never replayed. *)

type record =
  | Register of { source : string }
      (** resolved ontology text (rules + facts) as submitted *)
  | Load_csv of { csv : string }  (** resolved CSV payload *)
  | Add_facts of { csv : string }  (** resolved CSV payload *)
  | Materialize  (** replay rebuilds the chase materialization *)

val record_tag : record -> string
(** ["register"], ["load-csv"], ["add-facts"] or ["materialize"]. *)

val scan : string -> record list * int
(** [scan path] is [(records, valid_bytes)]: the longest valid record
    prefix of the file and its byte length. A missing file scans as
    [([], 0)]. Never raises on corrupt data — the first bad frame ends the
    prefix. *)

type t

val open_append : ?fsync:bool -> string -> t
(** Open (creating if missing) a log for appending. Any torn tail beyond
    the valid prefix is truncated away first. [fsync] (default [true])
    makes every {!append} flush to stable storage before returning. *)

val append : t -> record -> int
(** Append one record; returns the framed byte size. With [fsync] enabled
    the record is on stable storage when this returns. *)

val records : t -> int
(** Valid records currently in the log (tail length). *)

val bytes : t -> int
(** Valid bytes currently in the log. *)

val fsync_enabled : t -> bool

val reset : t -> unit
(** Truncate the log to empty — the post-checkpoint trim: the snapshot now
    covers everything the log held. *)

val close : t -> unit
