type t = { start : int; mutable counter : int }

let create ?(start = 0) () = { start; counter = start }

let next g =
  g.counter <- g.counter + 1;
  Tgd_db.Value.Null g.counter

let count g = g.counter - g.start
