open Tgd_logic
open Tgd_db

type violation = {
  egd : Egd.t;
  v1 : Value.t;
  v2 : Value.t;
}

let pp_violation ppf viol =
  Format.fprintf ppf "EGD %s equates distinct constants %a and %a" viol.egd.Egd.name Value.pp
    viol.v1 Value.pp viol.v2

(* Replace every occurrence of [from_] by [to_] in the instance. *)
let substitute inst ~from_ ~to_ =
  let fresh = Instance.create () in
  Instance.iter_facts
    (fun (pred, t) ->
      let t' = Array.map (fun v -> if Value.equal v from_ then to_ else v) t in
      ignore (Instance.add_fact fresh pred t'))
    inst;
  fresh

exception Hard of violation
exception Merge of Value.t * Value.t (* from_, to_ *)

(* Find one applicable EGD step: a violation to merge or a hard failure. *)
let find_step ?gov egds inst =
  try
    List.iter
      (fun (egd : Egd.t) ->
        Eval.bindings ?gov inst egd.Egd.body (fun env ->
            let value v =
              match Symbol.Map.find_opt v env with Some value -> value | None -> assert false
            in
            let l = value egd.Egd.left and r = value egd.Egd.right in
            if not (Value.equal l r) then
              match l, r with
              | Value.Null _, _ -> raise (Merge (l, r))
              | _, Value.Null _ -> raise (Merge (r, l))
              | Value.Const _, Value.Const _ -> raise (Hard { egd; v1 = l; v2 = r })))
      egds;
    `Stable
  with
  | Merge (from_, to_) -> `Merge (from_, to_)
  | Hard v -> `Hard v

let saturate ?gov egds inst =
  let live () = match gov with None -> true | Some g -> Tgd_exec.Governor.live g in
  let rec loop inst merges =
    (* Merge-loop head: EGD saturation can cascade (each substitution may
       expose new violations), so it is governed like the chase rounds. *)
    if not (live ()) then Ok (inst, merges)
    else
      match find_step ?gov egds inst with
      | `Stable -> Ok (inst, merges)
      | `Hard v -> Error v
      | `Merge (from_, to_) ->
        Option.iter (fun g -> Tgd_exec.Governor.charge g "egd.merges") gov;
        loop (substitute inst ~from_ ~to_) (merges + 1)
  in
  loop (Instance.copy inst) 0

type outcome = {
  instance : Instance.t;
  chase : Chase.stats;
  merges : int;
  consistent : bool;
  violation : violation option;
}

let add_stats (a : Chase.stats) (b : Chase.stats) =
  {
    Chase.outcome =
      (match a.Chase.outcome with Chase.Truncated _ -> a.Chase.outcome | Chase.Terminated -> b.Chase.outcome);
    rounds = a.Chase.rounds + b.Chase.rounds;
    new_facts = a.Chase.new_facts + b.Chase.new_facts;
    nulls = a.Chase.nulls + b.Chase.nulls;
    triggers_fired = a.Chase.triggers_fired + b.Chase.triggers_fired;
  }

let run ?variant ?max_rounds ?max_facts ?gov ?(max_iterations = 20) ~tgds ~egds inst =
  let zero =
    { Chase.outcome = Chase.Terminated; rounds = 0; new_facts = 0; nulls = 0; triggers_fired = 0 }
  in
  let rec loop inst stats merges k =
    let step_stats = Chase.run ?variant ?max_rounds ?max_facts ?gov tgds inst in
    let stats = add_stats stats step_stats in
    match saturate ?gov egds inst with
    | Error v -> { instance = inst; chase = stats; merges; consistent = false; violation = Some v }
    | Ok (merged, 0) ->
      { instance = merged; chase = stats; merges; consistent = true; violation = None }
    | Ok (merged, m) ->
      if k >= max_iterations then
        { instance = merged; chase = stats; merges = merges + m; consistent = true; violation = None }
      else loop merged stats (merges + m) (k + 1)
  in
  loop (Instance.copy inst) zero 0 1

let check_consistency ?max_rounds ?max_facts ~tgds ~egds inst =
  (run ?max_rounds ?max_facts ~tgds ~egds inst).consistent
