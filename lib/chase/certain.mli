(** Certain answers by materialization: chase the data with the TGDs and
    evaluate the query, keeping only null-free answer tuples.

    This is the reference semantics [cert(q, P, D)] of Section 3 whenever
    the chase terminates; it cross-checks the rewriting engine in tests and
    benchmarks. *)

open Tgd_logic
open Tgd_db

type result = {
  answers : Tuple.t list;  (** null-free, deduplicated, sorted *)
  exact : bool;
      (** [true] iff the chase reached a fixpoint and the evaluation was not
          truncated by the governor *)
  chase : Chase.stats;
}

val ucq :
  ?variant:Chase.variant ->
  ?max_rounds:int ->
  ?max_facts:int ->
  ?gov:Tgd_exec.Governor.t ->
  ?pool:Tgd_exec.Pool.t ->
  ?eval_workers:int ->
  ?eval_partitions:int ->
  Program.t ->
  Instance.t ->
  Cq.ucq ->
  result
(** The input instance is not modified (the chase runs on a copy). When
    [exact] is false the answers are a sound under-approximation of the
    certain answers. A supplied governor spans both phases — chase
    materialization and query evaluation — so one deadline covers the whole
    certain-answer computation.

    The materialized instance is sealed after the chase, so evaluation runs
    on {!Tgd_db.Par_eval}'s compiled columnar engine at any worker count;
    [eval_workers > 1] (or a [pool]) additionally splits the leading scans
    into that many workers' morsels, and [eval_partitions] overrides the
    answer-partition count of the lock-free merge. [eval_workers] defaults
    to the [pool]'s size when only a pool is given. *)

val cq :
  ?variant:Chase.variant ->
  ?max_rounds:int ->
  ?max_facts:int ->
  ?gov:Tgd_exec.Governor.t ->
  ?pool:Tgd_exec.Pool.t ->
  ?eval_workers:int ->
  ?eval_partitions:int ->
  Program.t ->
  Instance.t ->
  Cq.t ->
  result
