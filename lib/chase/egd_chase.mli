(** Chasing with EGDs: merge equated labeled nulls, detect hard violations.

    Under the Unique Name Assumption (Section 3 of the paper), equating two
    distinct constants is a hard failure — the data is inconsistent with the
    dependencies. Equating a labeled null with anything merges the two
    values across the instance. *)

open Tgd_db

type violation = {
  egd : Egd.t;
  v1 : Value.t;
  v2 : Value.t;  (** the two distinct constants that were equated *)
}

val pp_violation : Format.formatter -> violation -> unit

val saturate :
  ?gov:Tgd_exec.Governor.t -> Egd.t list -> Instance.t -> (Instance.t * int, violation) result
(** Apply the EGDs to a fixpoint. Returns the rewritten instance (the input
    is not mutated) and the number of merges performed, or the first hard
    violation. The merge loop polls the governor at its head (merges cascade
    unboundedly in the worst case) and charges [egd.merges]; a stopped
    governor yields the instance merged so far. *)

type outcome = {
  instance : Instance.t;
  chase : Chase.stats;  (** accumulated TGD-chase statistics *)
  merges : int;
  consistent : bool;
  violation : violation option;
}

val run :
  ?variant:Chase.variant ->
  ?max_rounds:int ->
  ?max_facts:int ->
  ?gov:Tgd_exec.Governor.t ->
  ?max_iterations:int ->
  tgds:Tgd_logic.Program.t ->
  egds:Egd.t list ->
  Instance.t ->
  outcome
(** The combined chase: alternate TGD saturation and EGD merging until both
    are stable (at most [max_iterations] alternations, default 20), starting
    from a copy of the input. With [consistent = false] the [violation]
    explains the failure; answers computed over an inconsistent instance are
    meaningless. *)

val check_consistency :
  ?max_rounds:int -> ?max_facts:int -> tgds:Tgd_logic.Program.t -> egds:Egd.t list -> Instance.t -> bool
(** DL-Lite_F-style consistency: the data + TGDs violate no EGD. (For
    separable dependencies this is the only role EGDs play in query
    answering.) *)
