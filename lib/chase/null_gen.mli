(** Generator of fresh labeled nulls, one per chase run, so that chase
    results are reproducible independently of other runs in the process. *)

type t

val create : ?start:int -> unit -> t
(** A generator whose first null is [Null (start + 1)]. The default
    [start = 0] yields [Null 1, Null 2, ...]; incremental maintenance
    ({!Delta_chase}) passes the highest null id already present in the
    instance so extension stays monotone and collision-free. *)

val next : t -> Tgd_db.Value.t

val count : t -> int
(** Nulls handed out by this generator (excludes the [start] offset). *)
