(** Delta-semi-naive incremental chase maintenance.

    Given an instance that is already a (restricted) chase fixpoint for a
    program, {!apply} folds in a batch of inserted facts by firing only the
    triggers whose body joins through a delta fact — the semi-naive
    frontier discipline — extending the universal model and its null space
    monotonically instead of recomputing the chase from scratch. EGDs are
    composed the same way: violation search is seeded from the frontier and
    each merge rewrites only the touched equivalence class (the relations
    actually containing the merged value, located through column indexes),
    with rewritten facts fed back into trigger discovery.

    The result is a universal model of the accumulated data: it agrees with
    a from-scratch chase on every null-free fact and on certain answers,
    and is homomorphically equivalent to it (the from-scratch restricted
    chase may pick different nulls or avoid some, so agreement is up to
    hom-equivalence, not graph identity). The conformance harness's
    update-sequence invariant checks exactly this after every batch.

    Work is charged to the governor under the dedicated
    [chase.delta.triggers] / [chase.delta.facts] budget keys (plus the
    shared [chase.rounds] / [chase.facts]); a budget stop yields a
    {!Chase.Truncated} outcome and an instance that is a sound partial
    extension (every fact it contains is entailed). *)

open Tgd_db

type stats = {
  outcome : Chase.outcome;
      (** [Terminated] iff the delta reached a fixpoint within budget *)
  rounds : int;  (** delta-restricted chase rounds run *)
  inserted : int;  (** batch facts that were actually new to the instance *)
  derived : int;  (** facts added by trigger firing beyond the batch *)
  nulls : int;  (** fresh nulls invented (numbered above the floor) *)
  triggers_fired : int;
  merges : int;  (** EGD merges replayed against touched classes *)
  consistent : bool;  (** [false] iff a hard EGD violation surfaced *)
  violation : Egd_chase.violation option;
}

val apply :
  ?variant:Chase.variant ->
  ?max_rounds:int ->
  ?max_facts:int ->
  ?gov:Tgd_exec.Governor.t ->
  ?null_floor:int ->
  ?egds:Egd.t list ->
  Tgd_logic.Program.t ->
  Instance.t ->
  Instance.fact list ->
  stats
(** [apply program inst batch] mutates [inst], which must be a completed
    chase result for [program] (and EGD-stable when [egds] is non-empty);
    on a non-fixpoint it is still sound but may rediscover triggers the
    full chase would have fired. Fresh nulls are numbered above
    [null_floor] (default: {!Instance.max_null}[ inst], i.e. scanned) so
    the extension never collides with existing nulls — callers that keep a
    materialization alive across batches should thread the floor through
    to skip the scan. Default budgets mirror {!Chase.run}
    ([max_rounds = 1000], [max_facts = 1_000_000]); an explicit [gov]
    overrides both. *)
