(** The chase: saturate an instance with the TGDs, inventing labeled nulls
    for existential head variables.

    Both the oblivious chase (fire every trigger once) and the restricted
    a.k.a. standard chase (fire only triggers whose head is not already
    satisfied) are provided. The chase proceeds in breadth-first rounds,
    which makes it fair: every trigger is eventually considered, so when the
    run terminates the result is a universal model of [(P, D)] and certain
    answers coincide with the null-free answers over it.

    The chase need not terminate outside the weakly-acyclic classes, so the
    loop is governed: a {!Tgd_exec.Governor} is polled at the round head
    {e and} at every trigger application, and trigger/round/fact work is
    charged against its budget. When the governor stops (budget, deadline,
    or external cancellation) the run winds down cooperatively and reports
    [Truncated] with the governor's diagnostics — a sound
    under-approximation, never a hang, never an exception. *)

open Tgd_logic
open Tgd_db
open Tgd_exec

type variant =
  | Oblivious
  | Restricted

type outcome =
  | Terminated  (** fixpoint reached: the instance is a universal model *)
  | Truncated of Governor.diagnostics
      (** a budget, the deadline or cancellation stopped the run first; the
          diagnostics carry how far it got (rounds, triggers fired, facts) *)

type stats = {
  outcome : outcome;
  rounds : int;
  new_facts : int;
  nulls : int;
  triggers_fired : int;
}

val run :
  ?variant:variant ->
  ?max_rounds:int ->
  ?max_facts:int ->
  ?gov:Governor.t ->
  Program.t ->
  Instance.t ->
  stats
(** Mutates the instance. Defaults: [Restricted], [max_rounds = 1_000],
    [max_facts = 1_000_000]. When [gov] is supplied it takes over budgeting
    entirely ([max_rounds]/[max_facts] are ignored — configure the
    governor's {!Tgd_exec.Budget} instead) and the run's counters land in
    its telemetry under the [chase.*] keys, plus [eval.steps] for the
    trigger-discovery join search, which the governor also bounds. *)
