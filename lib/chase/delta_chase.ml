(* Delta-semi-naive incremental chase: extend a completed chase result by a
   batch of inserted facts without recomputing from scratch. Only triggers
   whose body touches a delta fact can be new — the same frontier discipline
   semi-naive Datalog evaluation uses — so trigger discovery seeds every
   join from the delta ([Trigger.find_new ~delta]) and never rescans the
   sealed bulk. EGD merges are replayed the same way: a violation arising
   after the batch must involve a touched fact, so the violation search is
   seeded from the frontier and each merge substitutes only inside the
   relations that actually contain the merged value (the touched
   equivalence class), feeding the rewritten facts back into the
   frontier. *)

open Tgd_logic
open Tgd_db
open Tgd_exec

type stats = {
  outcome : Chase.outcome;
  rounds : int;
  inserted : int;
  derived : int;
  nulls : int;
  triggers_fired : int;
  merges : int;
  consistent : bool;
  violation : Egd_chase.violation option;
}

module Key_table = Hashtbl.Make (struct
  type t = string * Tuple.t

  let equal (n1, t1) (n2, t2) = String.equal n1 n2 && Tuple.equal t1 t2
  let hash (n, t) = (Hashtbl.hash n * 31) + Tuple.hash t
end)

let default_governor ~max_rounds ~max_facts () =
  Governor.create
    ~budget:
      {
        Budget.unlimited with
        Budget.chase_rounds = Some max_rounds;
        chase_facts = Some max_facts;
      }
    ()

exception Hard_v of Egd_chase.violation
exception Merge_v of Value.t * Value.t (* from_, to_ *)

(* Delta-seeded EGD violation search: like [Egd_chase.find_step], but every
   join is forced through a frontier fact, so untouched equivalence classes
   are never revisited. Sound because the instance was EGD-stable before
   the batch: a fresh violation needs at least one touched fact. *)
let find_egd_step ?gov egds inst ~delta =
  try
    List.iter
      (fun (egd : Egd.t) ->
        let check env =
          let value v =
            match Symbol.Map.find_opt v env with Some value -> value | None -> assert false
          in
          let l = value egd.Egd.left and r = value egd.Egd.right in
          if not (Value.equal l r) then
            match (l, r) with
            | Value.Null _, _ -> raise (Merge_v (l, r))
            | _, Value.Null _ -> raise (Merge_v (r, l))
            | Value.Const _, Value.Const _ -> raise (Hard_v { Egd_chase.egd; v1 = l; v2 = r })
        in
        List.iteri
          (fun i (a : Atom.t) ->
            match Symbol.Table.find_opt delta a.Atom.pred with
            | None | Some [] -> ()
            | Some tuples -> Eval.bindings ?gov ~forced:(i, tuples) inst egd.Egd.body check)
          egd.Egd.body)
      egds;
    `Stable
  with
  | Merge_v (from_, to_) -> `Merge (from_, to_)
  | Hard_v v -> `Hard v

let apply ?(variant = Chase.Restricted) ?(max_rounds = 1_000) ?(max_facts = 1_000_000) ?gov
    ?null_floor ?(egds = []) program inst delta_facts =
  let gov = match gov with Some g -> g | None -> default_governor ~max_rounds ~max_facts () in
  let tele = Governor.telemetry gov in
  let floor = match null_floor with Some f -> f | None -> Instance.max_null inst in
  let gen = Null_gen.create ~start:floor () in
  let fired : unit Key_table.t = Key_table.create 256 in
  let inserted = ref 0 in
  let derived = ref 0 in
  let triggers_fired = ref 0 in
  let rounds = ref 0 in
  let merges = ref 0 in
  let skipped_work = ref false in
  let violation = ref None in
  let push_delta tbl pred t =
    let existing = Option.value ~default:[] (Symbol.Table.find_opt tbl pred) in
    Symbol.Table.replace tbl pred (t :: existing)
  in
  let fact_mem pred t =
    match Instance.relation inst pred with None -> false | Some rel -> Relation.mem rel t
  in
  (* EGD merges remove rewritten rows, so frontier tables can go stale;
     keep only the tuples the instance still contains. *)
  let filter_live tbl =
    let out = Symbol.Table.create 16 in
    Symbol.Table.iter
      (fun pred tuples ->
        match List.filter (fact_mem pred) tuples with
        | [] -> ()
        | live -> Symbol.Table.replace out pred live)
      tbl;
    out
  in
  let apply_trigger ~delta_out tr =
    let k = Trigger.key tr in
    if not (Key_table.mem fired k) then begin
      Key_table.add fired k ();
      let fire () =
        incr triggers_fired;
        Governor.charge gov Budget.key_chase_delta_triggers;
        List.iter
          (fun (pred, t) ->
            if Instance.add_fact inst pred t then begin
              incr derived;
              push_delta delta_out pred t
            end)
          (Trigger.head_facts tr gen)
      in
      match variant with
      | Chase.Oblivious -> fire ()
      | Chase.Restricted -> if not (Trigger.is_satisfied ~gov tr inst) then fire ()
    end
  in
  let tgd_round delta =
    let delta_out : Tuple.t list Symbol.Table.t = Symbol.Table.create 16 in
    let triggers = Trigger.find_new ~gov program inst ~delta:(Some delta) in
    (* Same discipline as [Chase.run]: a stop observed here means discovery
       was cut short, so an empty delta does not prove a fixpoint. *)
    if Governor.stopped gov <> None then skipped_work := true;
    List.iter
      (fun tr -> if Governor.live gov then apply_trigger ~delta_out tr else skipped_work := true)
      triggers;
    incr rounds;
    Governor.charge gov Budget.key_chase_rounds;
    Governor.gauge gov Budget.key_chase_delta_facts (!inserted + !derived);
    Governor.gauge gov Budget.key_chase_facts (Instance.cardinality inst);
    delta_out
  in
  (* Replay EGD merges against the frontier until stable; hand back the
     frontier for the next TGD round (surviving inputs plus every fact the
     merges rewrote). *)
  let egd_saturate frontier =
    if egds = [] || Symbol.Table.length frontier = 0 then frontier
    else begin
      let fresh_all : Instance.fact list ref = ref [] in
      let cur = ref frontier in
      let continue_ = ref true in
      while !continue_ && Governor.live gov && !violation = None do
        if Symbol.Table.length !cur = 0 then continue_ := false
        else
          match find_egd_step ~gov egds inst ~delta:!cur with
          | `Stable -> continue_ := false
          | `Hard v -> violation := Some v
          | `Merge (from_, to_) ->
            incr merges;
            Governor.charge gov "egd.merges";
            let fresh = Instance.substitute inst ~from_ ~to_ in
            fresh_all := fresh @ !fresh_all;
            let next = filter_live !cur in
            List.iter (fun (pred, t) -> if fact_mem pred t then push_delta next pred t) fresh;
            cur := next
      done;
      if Governor.stopped gov <> None && !violation = None && Symbol.Table.length !cur > 0 then
        skipped_work := true;
      let out = filter_live frontier in
      List.iter (fun (pred, t) -> if fact_mem pred t then push_delta out pred t) !fresh_all;
      out
    end
  in
  (* Seed the frontier with the batch itself. *)
  let delta0 : Tuple.t list Symbol.Table.t = Symbol.Table.create 16 in
  List.iter
    (fun (pred, t) ->
      if Instance.add_fact inst pred t then begin
        incr inserted;
        push_delta delta0 pred t
      end)
    delta_facts;
  Governor.gauge gov Budget.key_chase_delta_facts !inserted;
  (* The batch alone can violate an EGD — saturate before the first TGD
     round, then alternate like [Egd_chase.run] but per frontier. *)
  let delta = ref (egd_saturate delta0) in
  while Governor.live gov && !violation = None && Symbol.Table.length !delta > 0 do
    delta := egd_saturate (tgd_round !delta)
  done;
  Telemetry.gauge tele "chase.nulls" (Null_gen.count gen);
  let pending = Symbol.Table.length !delta > 0 && !violation = None in
  let outcome =
    if pending || !skipped_work then begin
      if Governor.stopped gov = None then
        Governor.stop gov
          (Governor.Limit { counter = Budget.key_chase_rounds; limit = max_rounds });
      Chase.Truncated (Option.get (Governor.diagnostics gov))
    end
    else Chase.Terminated
  in
  {
    outcome;
    rounds = !rounds;
    inserted = !inserted;
    derived = !derived;
    nulls = Null_gen.count gen;
    triggers_fired = !triggers_fired;
    merges = !merges;
    consistent = !violation = None;
    violation = !violation;
  }
