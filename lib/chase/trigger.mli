(** Chase triggers: a rule together with a homomorphism from its body into
    the current instance. *)

open Tgd_logic
open Tgd_db

type t = {
  rule : Tgd.t;
  env : Eval.env;  (** assignment of the body variables *)
}

val key : t -> string * Tuple.t
(** A hashable identity for the trigger: the rule name and the frontier
    assignment in sorted-variable order. Two triggers with equal keys fire
    the same head instantiation (up to null naming), so the oblivious chase
    fires one of them. *)

val is_satisfied : ?gov:Tgd_exec.Governor.t -> t -> Instance.t -> bool
(** Restricted-chase activity test: [true] iff the head is already satisfied,
    i.e. the frontier assignment extends to a homomorphism of the head into
    the instance. A tripped governor cuts the search short (reporting
    unsatisfied, which errs on the side of firing — sound for the chase). *)

val head_facts : t -> Null_gen.t -> (Symbol.t * Tuple.t) list
(** Instantiate the head: frontier variables from the environment,
    existential head variables by fresh nulls (one per variable, shared
    across the head atoms). *)

val find_new :
  ?gov:Tgd_exec.Governor.t ->
  Program.t ->
  Instance.t ->
  delta:Tuple.t list Symbol.Table.t option ->
  t list
(** All triggers of the program on the instance; with [delta], only triggers
    whose body uses at least one delta fact (semi-naive discovery). The
    governor bounds the join search itself ([eval.steps]): a recursive rule
    with a self-join can enumerate O(|inst|^2) candidates per round, work no
    round/fact cap sees. *)
