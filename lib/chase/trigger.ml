open Tgd_logic
open Tgd_db

type t = {
  rule : Tgd.t;
  env : Eval.env;
}

let key tr =
  let frontier = Symbol.Set.elements (Tgd.frontier tr.rule) in
  let values =
    Array.of_list
      (List.map
         (fun v ->
           match Symbol.Map.find_opt v tr.env with
           | Some value -> value
           | None -> invalid_arg "Trigger.key: unbound frontier variable")
         frontier)
  in
  (tr.rule.Tgd.name, values)

let is_satisfied ?gov tr inst =
  let frontier = Tgd.frontier tr.rule in
  let init = Symbol.Map.filter (fun v _ -> Symbol.Set.mem v frontier) tr.env in
  let found = ref false in
  (try
     Eval.bindings ?gov ~init inst tr.rule.Tgd.head (fun _ ->
         found := true;
         raise Exit)
   with Exit -> ());
  !found

let head_facts tr gen =
  let ex_vars = Tgd.existential_head_vars tr.rule in
  let nulls =
    Symbol.Set.fold (fun v acc -> Symbol.Map.add v (Null_gen.next gen) acc) ex_vars Symbol.Map.empty
  in
  let value t =
    match t with
    | Term.Const c -> Value.Const c
    | Term.Var v -> (
      match Symbol.Map.find_opt v tr.env with
      | Some value -> value
      | None -> (
        match Symbol.Map.find_opt v nulls with
        | Some value -> value
        | None -> invalid_arg "Trigger.head_facts: unbound head variable"))
  in
  List.map (fun (a : Atom.t) -> (a.Atom.pred, Array.map value a.Atom.args)) tr.rule.Tgd.head

let find_new ?gov program inst ~delta =
  let triggers = ref [] in
  let for_rule (r : Tgd.t) =
    let record env = triggers := { rule = r; env } :: !triggers in
    match delta with
    | None -> Eval.bindings ?gov inst r.Tgd.body record
    | Some delta ->
      List.iteri
        (fun i (a : Atom.t) ->
          match Symbol.Table.find_opt delta a.Atom.pred with
          | None | Some [] -> ()
          | Some tuples -> Eval.bindings ?gov ~forced:(i, tuples) inst r.Tgd.body record)
        r.Tgd.body
  in
  List.iter for_rule (Program.tgds program);
  List.rev !triggers
