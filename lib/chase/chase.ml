open Tgd_logic
open Tgd_db
open Tgd_exec

type variant =
  | Oblivious
  | Restricted

type outcome =
  | Terminated
  | Truncated of Governor.diagnostics

type stats = {
  outcome : outcome;
  rounds : int;
  new_facts : int;
  nulls : int;
  triggers_fired : int;
}

module Key_table = Hashtbl.Make (struct
  type t = string * Tuple.t

  let equal (n1, t1) (n2, t2) = String.equal n1 n2 && Tuple.equal t1 t2
  let hash (n, t) = (Hashtbl.hash n * 31) + Tuple.hash t
end)

let default_governor ~max_rounds ~max_facts () =
  Governor.create
    ~budget:
      {
        Budget.unlimited with
        Budget.chase_rounds = Some max_rounds;
        chase_facts = Some max_facts;
      }
    ()

let run ?(variant = Restricted) ?(max_rounds = 1_000) ?(max_facts = 1_000_000) ?gov program inst =
  let gov = match gov with Some g -> g | None -> default_governor ~max_rounds ~max_facts () in
  let tele = Governor.telemetry gov in
  let gen = Null_gen.create () in
  let fired : unit Key_table.t = Key_table.create 256 in
  let new_facts = ref 0 in
  let triggers_fired = ref 0 in
  let rounds = ref 0 in
  (* Set when a budget stop skipped pending triggers mid-round: the empty
     final delta then does not mean a fixpoint was reached. *)
  let skipped_work = ref false in
  let apply_trigger ~delta_out tr =
    let k = Trigger.key tr in
    if not (Key_table.mem fired k) then begin
      Key_table.add fired k ();
      let fire () =
        incr triggers_fired;
        Governor.charge gov Budget.key_chase_triggers;
        List.iter
          (fun (pred, t) ->
            if Instance.add_fact inst pred t then begin
              incr new_facts;
              let existing = Option.value ~default:[] (Symbol.Table.find_opt delta_out pred) in
              Symbol.Table.replace delta_out pred (t :: existing)
            end)
          (Trigger.head_facts tr gen)
      in
      match variant with
      | Oblivious -> fire ()
      | Restricted -> if not (Trigger.is_satisfied ~gov tr inst) then fire ()
    end
  in
  let round delta =
    let delta_out : Tuple.t list Symbol.Table.t = Symbol.Table.create 16 in
    let triggers = Trigger.find_new ~gov program inst ~delta in
    (* Budget checks sit at the trigger loop head, not just between rounds:
       a single round over a large delta can fire unboundedly many
       triggers. Discovery itself is governed too ([eval.steps]): the
       governor was live when this round began, so a stop observed here
       means [find_new] was cut short and its trigger list is partial. *)
    if Governor.stopped gov <> None then skipped_work := true;
    List.iter
      (fun tr ->
        if Governor.live gov then apply_trigger ~delta_out tr else skipped_work := true)
      triggers;
    incr rounds;
    Governor.charge gov Budget.key_chase_rounds;
    Governor.gauge gov Budget.key_chase_facts (Instance.cardinality inst);
    delta_out
  in
  let delta = ref (round None) in
  while Governor.live gov && Symbol.Table.length !delta > 0 do
    delta := round (Some !delta)
  done;
  Telemetry.gauge tele "chase.nulls" (Null_gen.count gen);
  let outcome =
    if Symbol.Table.length !delta > 0 || !skipped_work then begin
      (* The loop only exits with pending work when the governor stopped;
         make sure a reason is latched even on an exotic path. *)
      if Governor.stopped gov = None then
        Governor.stop gov
          (Governor.Limit { counter = Budget.key_chase_rounds; limit = max_rounds });
      Truncated (Option.get (Governor.diagnostics gov))
    end
    else Terminated
  in
  {
    outcome;
    rounds = !rounds;
    new_facts = !new_facts;
    nulls = Null_gen.count gen;
    triggers_fired = !triggers_fired;
  }
