open Tgd_db

type result = {
  answers : Tuple.t list;
  exact : bool;
  chase : Chase.stats;
}

let ucq ?variant ?max_rounds ?max_facts ?gov program inst disjuncts =
  let work = Instance.copy inst in
  let chase = Chase.run ?variant ?max_rounds ?max_facts ?gov program work in
  let answers = Eval.ucq ?gov work disjuncts |> List.filter (fun t -> not (Tuple.has_null t)) in
  let exact =
    (* Exact iff the chase reached a universal model AND the evaluation was
       not cut short by the governor afterwards. *)
    (match chase.Chase.outcome with Chase.Terminated -> true | Chase.Truncated _ -> false)
    && (match gov with None -> true | Some g -> Tgd_exec.Governor.stopped g = None)
  in
  { answers; exact; chase }

let cq ?variant ?max_rounds ?max_facts ?gov program inst q =
  ucq ?variant ?max_rounds ?max_facts ?gov program inst [ q ]
