open Tgd_db

type result = {
  answers : Tuple.t list;
  exact : bool;
  chase : Chase.stats;
}

let ucq ?variant ?max_rounds ?max_facts ?gov ?pool ?eval_workers ?eval_partitions program inst
    disjuncts =
  let work = Instance.copy inst in
  let chase = Chase.run ?variant ?max_rounds ?max_facts ?gov program work in
  let answers =
    let workers =
      match (eval_workers, pool) with
      | Some w, _ -> w
      | None, Some p -> Tgd_exec.Pool.size p
      | None, None -> 1
    in
    (* The chase is over: the materialized instance is now read-only, so
       seal it — building the columnar blocks the compiled evaluator scans
       (any worker count benefits), plus hash shards for the boxed engine
       when parallel. *)
    (if workers <= 1 then Instance.seal work
     else Instance.seal ~partitions:(workers * 4) work);
    Par_eval.ucq ?gov ?pool ~workers ?partitions:eval_partitions work disjuncts
    |> List.filter (fun t -> not (Tuple.has_null t))
  in
  let exact =
    (* Exact iff the chase reached a universal model AND the evaluation was
       not cut short by the governor afterwards. *)
    (match chase.Chase.outcome with Chase.Terminated -> true | Chase.Truncated _ -> false)
    && (match gov with None -> true | Some g -> Tgd_exec.Governor.stopped g = None)
  in
  { answers; exact; chase }

let cq ?variant ?max_rounds ?max_facts ?gov ?pool ?eval_workers ?eval_partitions program inst q =
  ucq ?variant ?max_rounds ?max_facts ?gov ?pool ?eval_workers ?eval_partitions program inst [ q ]
