open Tgd_db

type result = {
  answers : Tuple.t list;
  exact : bool;
  chase : Chase.stats;
}

let ucq ?variant ?max_rounds ?max_facts ?gov ?pool ?eval_workers program inst disjuncts =
  let work = Instance.copy inst in
  let chase = Chase.run ?variant ?max_rounds ?max_facts ?gov program work in
  let answers =
    let workers =
      match (eval_workers, pool) with
      | Some w, _ -> w
      | None, Some p -> Tgd_exec.Pool.size p
      | None, None -> 1
    in
    (if workers <= 1 then Eval.ucq ?gov work disjuncts
     else begin
       (* The chase is over: the materialized instance is now read-only, so
          seal it (partitioned on the worker count) for race-free parallel
          evaluation. *)
       Instance.seal ~partitions:(workers * 4) work;
       Par_eval.ucq ?gov ?pool ~workers work disjuncts
     end)
    |> List.filter (fun t -> not (Tuple.has_null t))
  in
  let exact =
    (* Exact iff the chase reached a universal model AND the evaluation was
       not cut short by the governor afterwards. *)
    (match chase.Chase.outcome with Chase.Terminated -> true | Chase.Truncated _ -> false)
    && (match gov with None -> true | Some g -> Tgd_exec.Governor.stopped g = None)
  in
  { answers; exact; chase }

let cq ?variant ?max_rounds ?max_facts ?gov ?pool ?eval_workers program inst q =
  ucq ?variant ?max_rounds ?max_facts ?gov ?pool ?eval_workers program inst [ q ]
