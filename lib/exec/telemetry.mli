(** Structured per-run telemetry: named counters, peak gauges and phase
    timings, collected by the engines while a {!Governor} supervises the
    run, and serializable as JSON.

    A record is safe to share across domains: counters and peak gauges are
    [Atomic.t] cells (adds use [fetch_and_add], peaks a CAS-max loop), so
    concurrent workers charging one sink never lose updates — totals are
    exact. The record's mutex guards only the key->cell tables and the
    float-valued phase table. {!reset} is a run-boundary operation and must
    not race with writers. *)

type t

val create : unit -> t

val reset : t -> unit
(** Clear every counter, peak and phase. Used between consecutive runs in
    one process so telemetry never accumulates stale counts. *)

(** {1 Counters} *)

val add : t -> string -> int -> int
(** [add t key n] increments counter [key] by [n] and returns the new
    value. *)

val get : t -> string -> int
(** Current value of a counter ([0] if never charged). *)

val set_counter : t -> string -> int -> unit
(** Overwrite a counter with an absolute value (used to mirror externally
    accumulated statistics into the run record). *)

(** {1 Peak gauges} *)

val gauge : t -> string -> int -> unit
(** [gauge t key v] records [v] as the new peak for [key] if it exceeds the
    stored one. *)

val peak : t -> string -> int
(** Current peak ([0] if never gauged). *)

(** {1 Phase timings} *)

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t phase f] runs [f] and adds its wall-clock duration to the
    accumulated time of [phase]. Re-entrant per phase name (durations just
    accumulate). *)

val add_span : t -> string -> float -> unit
(** Add [seconds] to a phase's accumulated time directly. *)

(** {1 Snapshots} *)

val counters : t -> (string * int) list
(** Sorted by key. *)

val peaks : t -> (string * int) list
val phases : t -> (string * float) list

val merge_into : into:t -> t -> unit
(** Fold one record into an aggregate sink: counters and phases are added,
    peaks are maxed. Used by the serving layer to accumulate per-request
    telemetry into a server-wide record; safe to call concurrently from
    several domains (the source is snapshotted first, so the two records'
    locks are never held together). *)

val to_json_fields : t -> string
(** The record's contents as the JSON fragment
    ["\"counters\": {...}, \"peaks\": {...}, \"phases\": {...}"] — spliced
    into a larger object by {!Governor.report_json}. *)

val json_string : string -> string
(** JSON string literal with escaping (shared by the CLI emitters). *)
