type t = {
  lock : Mutex.t;
  counters : (string, int) Hashtbl.t;
  peaks : (string, int) Hashtbl.t;
  phases : (string, float) Hashtbl.t;
}

let create () =
  {
    lock = Mutex.create ();
    counters = Hashtbl.create 16;
    peaks = Hashtbl.create 8;
    phases = Hashtbl.create 8;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let reset t =
  locked t (fun () ->
      Hashtbl.reset t.counters;
      Hashtbl.reset t.peaks;
      Hashtbl.reset t.phases)

let add t key n =
  locked t (fun () ->
      let v = n + Option.value ~default:0 (Hashtbl.find_opt t.counters key) in
      Hashtbl.replace t.counters key v;
      v)

let get t key = locked t (fun () -> Option.value ~default:0 (Hashtbl.find_opt t.counters key))
let set_counter t key v = locked t (fun () -> Hashtbl.replace t.counters key v)

let gauge t key v =
  locked t (fun () ->
      match Hashtbl.find_opt t.peaks key with
      | Some p when p >= v -> ()
      | _ -> Hashtbl.replace t.peaks key v)

let peak t key = locked t (fun () -> Option.value ~default:0 (Hashtbl.find_opt t.peaks key))

let add_span t key s =
  locked t (fun () ->
      let v = s +. Option.value ~default:0.0 (Hashtbl.find_opt t.phases key) in
      Hashtbl.replace t.phases key v)

let time t key f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> add_span t key (Unix.gettimeofday () -. t0)) f

let sorted tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let counters t = locked t (fun () -> sorted t.counters)
let peaks t = locked t (fun () -> sorted t.peaks)
let phases t = locked t (fun () -> sorted t.phases)

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_object fields to_value =
  "{" ^ String.concat ", " (List.map (fun (k, v) -> json_string k ^ ": " ^ to_value v) fields) ^ "}"

let to_json_fields t =
  Printf.sprintf "\"counters\": %s, \"peaks\": %s, \"phases\": %s"
    (json_object (counters t) string_of_int)
    (json_object (peaks t) string_of_int)
    (json_object (phases t) (Printf.sprintf "%.6f"))
