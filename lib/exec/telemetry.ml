(* Counters and peak gauges live in [int Atomic.t] cells so that any number
   of domains can charge one record concurrently without losing updates; the
   mutex guards only the key->cell tables (lookup/insert) and the float-
   valued phase table. The hot path is: short critical section to fetch the
   cell, then a lock-free atomic update. *)

type t = {
  lock : Mutex.t;
  counters : (string, int Atomic.t) Hashtbl.t;
  peaks : (string, int Atomic.t) Hashtbl.t;
  phases : (string, float) Hashtbl.t;
}

let create () =
  {
    lock = Mutex.create ();
    counters = Hashtbl.create 16;
    peaks = Hashtbl.create 8;
    phases = Hashtbl.create 8;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let reset t =
  locked t (fun () ->
      Hashtbl.reset t.counters;
      Hashtbl.reset t.peaks;
      Hashtbl.reset t.phases)

(* Find or create the atomic cell for a key. Writers that cached a cell
   across a concurrent [reset] would update a dropped cell; reset is a
   run-boundary operation and must not race with writers. *)
let cell t tbl key =
  locked t (fun () ->
      match Hashtbl.find_opt tbl key with
      | Some c -> c
      | None ->
        let c = Atomic.make 0 in
        Hashtbl.add tbl key c;
        c)

let add t key n = Atomic.fetch_and_add (cell t t.counters key) n + n

let get t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters key with None -> 0 | Some c -> Atomic.get c)

let set_counter t key v = Atomic.set (cell t t.counters key) v

let gauge t key v =
  let c = cell t t.peaks key in
  let rec raise_to () =
    let cur = Atomic.get c in
    if cur < v && not (Atomic.compare_and_set c cur v) then raise_to ()
  in
  raise_to ()

let peak t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.peaks key with None -> 0 | Some c -> Atomic.get c)

let add_span t key s =
  locked t (fun () ->
      let v = s +. Option.value ~default:0.0 (Hashtbl.find_opt t.phases key) in
      Hashtbl.replace t.phases key v)

let time t key f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> add_span t key (Unix.gettimeofday () -. t0)) f

let sorted xs = List.sort compare xs

let counters t =
  locked t (fun () ->
      Hashtbl.fold (fun k c acc -> (k, Atomic.get c) :: acc) t.counters [] |> sorted)

let peaks t =
  locked t (fun () ->
      Hashtbl.fold (fun k c acc -> (k, Atomic.get c) :: acc) t.peaks [] |> sorted)

let phases t =
  locked t (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.phases [] |> sorted)

let merge_into ~into t =
  (* Snapshot the source first so the two locks are never held together. *)
  let cs = counters t and ps = peaks t and hs = phases t in
  List.iter (fun (k, v) -> ignore (add into k v)) cs;
  List.iter (fun (k, v) -> gauge into k v) ps;
  List.iter (fun (k, v) -> add_span into k v) hs

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_object fields to_value =
  "{" ^ String.concat ", " (List.map (fun (k, v) -> json_string k ^ ": " ^ to_value v) fields) ^ "}"

let to_json_fields t =
  Printf.sprintf "\"counters\": %s, \"peaks\": %s, \"phases\": %s"
    (json_object (counters t) string_of_int)
    (json_object (peaks t) string_of_int)
    (json_object (phases t) (Printf.sprintf "%.6f"))
