(** A shared OCaml 5 Domain worker pool: a fixed set of worker domains
    consuming a (optionally bounded) job queue, plus a caller-participating
    batch runner for morsel-driven parallel evaluation.

    This is the execution substrate shared by the serving layer (its
    {!Tgd_serve.Scheduler} wraps a bounded pool and adds admission
    telemetry) and the parallel query evaluator ({!Tgd_db.Par_eval}
    dispatches evaluation morsels through {!run_morsels}).

    Worker survival is an invariant of the pool: a job that raises is
    contained (the exception is swallowed); submitters that need error
    accounting wrap their thunks. Jobs must do their own result
    synchronization. *)

type t

type reject =
  [ `Overloaded of int  (** queue depth at rejection time *)
  | `Closed ]

val default_workers : unit -> int
(** The default worker count: [TGDLIB_DOMAINS] when set to a positive
    integer, otherwise [Domain.recommended_domain_count ()] clamped to
    [\[1, 8\]]. Same contract as [Tgd_logic.Parallel.domain_count]. *)

val create : ?workers:int -> ?queue_bound:int -> unit -> t
(** Spawn a pool of [workers] domains (default {!default_workers}) that
    live until {!shutdown}. With [queue_bound] set, {!submit} sheds with
    [`Overloaded] once that many jobs are queued; without it the queue is
    unbounded. Raises [Invalid_argument] on a non-positive argument.

    [workers] is clamped to [Domain.recommended_domain_count ()]: worker
    domains beyond the core count add no capacity (the queue is
    work-conserving) but multiply stop-the-world minor-GC barrier cost —
    oversubscribing 4 domains onto one core collapsed serve throughput to
    ~20%. Set [TGDLIB_OVERSUBSCRIBE=1] to disable the clamp for
    experiments. *)

val size : t -> int
(** The number of worker domains actually spawned (after the core-count
    clamp) — the value to size morsel batches and partitions with. *)

val submit : t -> (unit -> unit) -> (int, reject) result
(** Enqueue a job for exactly-once execution on some worker; [Ok depth]
    reports the queue depth right after admission. *)

val queue_depth : t -> int

val drain : t -> unit
(** Block until the queue is empty and no job is running. New submissions
    are still accepted afterwards. *)

val shutdown : t -> unit
(** Stop accepting work, let already-admitted jobs finish, join the worker
    domains. Idempotent. *)

val run_morsels : t -> n:int -> (int -> unit) -> unit
(** [run_morsels t ~n f] runs [f 0 .. f (n-1)] — the morsels of one batch —
    across the pool's workers and the calling thread, and returns when all
    [n] have finished. Scheduling is dynamic (an atomic next-morsel
    counter), so uneven morsel costs balance automatically. The caller
    always participates: even on a saturated or closed pool the batch
    completes, degraded to sequential execution on the calling thread. If
    some [f i] raises, remaining morsels are skipped (each is still counted)
    and the first exception is re-raised in the caller after the batch
    settles. [f] must not block on this same pool. *)
