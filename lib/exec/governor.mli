(** The run governor: one per execution (a chase, a rewriting, a certain-
    answer computation), combining a {!Budget}, an optional external
    cancellation signal, a wall-clock deadline and a {!Telemetry} record.

    The contract with the engines is cooperative: every potentially
    unbounded loop polls {!live} at its head and charges its work through
    {!charge}/{!gauge}. The governor never raises into engine code — once a
    limit, the deadline or cancellation trips, it latches a {!stop_reason},
    {!live} starts returning [false], and the engine winds down, returning a
    typed partial result whose [Truncated] payload is {!diagnostics}. A
    stopped governor stays stopped: reuse across runs is intentional
    (shared-budget pipelines) but a fresh run wants a fresh governor. *)

type stop_reason =
  | Deadline of float  (** the configured wall-clock budget, seconds *)
  | Cancelled  (** the external cancellation callback returned [true] *)
  | Limit of {
      counter : string;  (** which budget counter tripped *)
      limit : int;
    }

val stop_reason_to_string : stop_reason -> string

type diagnostics = {
  reason : stop_reason;
  wall_s : float;  (** elapsed wall-clock when the snapshot was taken *)
  counters : (string * int) list;
  peaks : (string * int) list;
  phases : (string * float) list;
}
(** What a truncated run hands back: why it stopped and how far it got. *)

val diag_summary : diagnostics -> string
(** One-line human rendering of the stop reason, e.g.
    ["budget: chase.triggers limit 1000 reached"]. *)

val pp_diagnostics : Format.formatter -> diagnostics -> unit

type t

val create : ?budget:Budget.t -> ?cancel:(unit -> bool) -> ?telemetry:Telemetry.t -> unit -> t
(** A fresh governor. [cancel] is polled periodically from loop heads — it
    must be cheap and thread-safe. The deadline clock starts now. *)

val unlimited : unit -> t
(** [create ()]: never stops on its own, still collects telemetry. *)

val budget : t -> Budget.t
val telemetry : t -> Telemetry.t

val live : t -> bool
(** [true] while the run may continue. Polls the deadline and the
    cancellation callback at a small stride, so loop heads can call it
    unconditionally. *)

val charge : ?n:int -> t -> string -> unit
(** [charge g key] adds [n] (default 1) to counter [key] and stops the run
    if the budget's limit for [key] is reached ([value >= limit]). *)

val gauge : t -> string -> int -> unit
(** Record a peak gauge and stop the run if it exceeds the budget's limit
    ([value > limit] — a gauge at its limit is still within budget). *)

val stop : t -> stop_reason -> unit
(** Latch a stop reason (first one wins). Used by engines that enforce
    their own structural limits and by external supervisors. *)

val stopped : t -> stop_reason option

val diagnostics : t -> diagnostics option
(** [Some] iff the governor has stopped; the snapshot reflects the
    telemetry at call time, so engines may record final counts (kept /
    retired disjuncts, facts materialized) just before taking it. *)

val elapsed_s : t -> float

val report_json : ?run:string -> ?extra:(string * string) list -> t -> string
(** The full run record as one JSON object:
    [{"run": ..., "outcome": "complete" | "truncated", "reason": ...,
      "wall_s": ..., "counters": {...}, "peaks": {...}, "phases": {...}}].
    [extra] appends raw pre-rendered JSON fields (the value string is
    spliced verbatim). *)
