type stop_reason =
  | Deadline of float
  | Cancelled
  | Limit of {
      counter : string;
      limit : int;
    }

let stop_reason_to_string = function
  | Deadline s -> Printf.sprintf "deadline: %gs wall-clock budget exhausted" s
  | Cancelled -> "cancelled"
  | Limit { counter; limit } -> Printf.sprintf "budget: %s limit %d reached" counter limit

type diagnostics = {
  reason : stop_reason;
  wall_s : float;
  counters : (string * int) list;
  peaks : (string * int) list;
  phases : (string * float) list;
}

let diag_summary d = stop_reason_to_string d.reason

let pp_diagnostics ppf d =
  Format.fprintf ppf "@[<v>truncated: %s (%.3fs elapsed)" (stop_reason_to_string d.reason) d.wall_s;
  List.iter (fun (k, v) -> Format.fprintf ppf "@,  %s = %d" k v) d.counters;
  List.iter (fun (k, v) -> Format.fprintf ppf "@,  peak %s = %d" k v) d.peaks;
  Format.fprintf ppf "@]"

type t = {
  budget : Budget.t;
  cancel : (unit -> bool) option;
  telemetry : Telemetry.t;
  started : float;
  deadline_abs : float option;
  mutable stopped : stop_reason option;
  mutable polls : int;
}

let create ?(budget = Budget.unlimited) ?cancel ?telemetry () =
  let started = Unix.gettimeofday () in
  {
    budget;
    cancel;
    telemetry = (match telemetry with Some t -> t | None -> Telemetry.create ());
    started;
    deadline_abs = Option.map (fun s -> started +. s) budget.Budget.deadline_s;
    stopped = None;
    polls = 0;
  }

let unlimited () = create ()
let budget g = g.budget
let telemetry g = g.telemetry
let elapsed_s g = Unix.gettimeofday () -. g.started

let stop g reason = if g.stopped = None then g.stopped <- Some reason

(* Re-check the external stop sources. Cheap (one clock read and one
   callback), but loop heads go through [live], which strides the calls. *)
let refresh g =
  if g.stopped = None then begin
    (match g.deadline_abs with
    | Some d when Unix.gettimeofday () > d ->
      stop g (Deadline (Option.value ~default:0.0 g.budget.Budget.deadline_s))
    | _ -> ());
    match g.cancel with
    | Some f when g.stopped = None && f () -> stop g Cancelled
    | _ -> ()
  end

(* Poll stride for [live]: deadline/cancellation are re-checked every 64
   polls, so even per-tuple loops can afford the call. [charge]/[gauge]
   refresh unconditionally — they sit at coarser loop levels. *)
let poll_mask = 0x3f

let live g =
  match g.stopped with
  | Some _ -> false
  | None ->
    g.polls <- g.polls + 1;
    if g.polls land poll_mask = 0 then refresh g;
    g.stopped = None

let charge ?(n = 1) g key =
  let v = Telemetry.add g.telemetry key n in
  (match Budget.limit g.budget key with
  | Some limit when v >= limit -> stop g (Limit { counter = key; limit })
  | _ -> ());
  refresh g

let gauge g key v =
  Telemetry.gauge g.telemetry key v;
  match Budget.limit g.budget key with
  | Some limit when v > limit -> stop g (Limit { counter = key; limit })
  | _ -> ()

let stopped g = g.stopped

let diagnostics g =
  match g.stopped with
  | None -> None
  | Some reason ->
    Some
      {
        reason;
        wall_s = elapsed_s g;
        counters = Telemetry.counters g.telemetry;
        peaks = Telemetry.peaks g.telemetry;
        phases = Telemetry.phases g.telemetry;
      }

let report_json ?(run = "run") ?(extra = []) g =
  let reason =
    match g.stopped with
    | None -> "null"
    | Some r -> Telemetry.json_string (stop_reason_to_string r)
  in
  let extra_fields =
    List.map (fun (k, v) -> Printf.sprintf ", %s: %s" (Telemetry.json_string k) v) extra
  in
  Printf.sprintf "{\"run\": %s, \"outcome\": %s, \"reason\": %s, \"wall_s\": %.6f, %s%s}"
    (Telemetry.json_string run)
    (Telemetry.json_string (match g.stopped with None -> "complete" | Some _ -> "truncated"))
    reason (elapsed_s g)
    (Telemetry.to_json_fields g.telemetry)
    (String.concat "" extra_fields)
