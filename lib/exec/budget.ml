type t = {
  chase_rounds : int option;
  chase_facts : int option;
  chase_triggers : int option;
  chase_delta_triggers : int option;
  chase_delta_facts : int option;
  rewrite_cqs : int option;
  rewrite_expansions : int option;
  rewrite_depth : int option;
  rewrite_datalog_patterns : int option;
  rewrite_datalog_rules : int option;
  rewrite_datalog_facts : int option;
  containment_checks : int option;
  eval_steps : int option;
  deadline_s : float option;
}

let unlimited =
  {
    chase_rounds = None;
    chase_facts = None;
    chase_triggers = None;
    chase_delta_triggers = None;
    chase_delta_facts = None;
    rewrite_cqs = None;
    rewrite_expansions = None;
    rewrite_depth = None;
    rewrite_datalog_patterns = None;
    rewrite_datalog_rules = None;
    rewrite_datalog_facts = None;
    containment_checks = None;
    eval_steps = None;
    deadline_s = None;
  }

let key_chase_rounds = "chase.rounds"
let key_chase_facts = "chase.facts"
let key_chase_triggers = "chase.triggers"
let key_chase_delta_triggers = "chase.delta.triggers"
let key_chase_delta_facts = "chase.delta.facts"
let key_rewrite_cqs = "rewrite.cqs"
let key_rewrite_expansions = "rewrite.expansions"
let key_rewrite_depth = "rewrite.depth"
let key_rewrite_datalog_patterns = "rewrite.datalog.patterns"
let key_rewrite_datalog_rules = "rewrite.datalog.rules"
let key_rewrite_datalog_facts = "rewrite.datalog.facts"
let key_containment_checks = "containment.checks"
let key_eval_steps = "eval.steps"

let limit t key =
  if String.equal key key_chase_rounds then t.chase_rounds
  else if String.equal key key_chase_facts then t.chase_facts
  else if String.equal key key_chase_triggers then t.chase_triggers
  else if String.equal key key_chase_delta_triggers then t.chase_delta_triggers
  else if String.equal key key_chase_delta_facts then t.chase_delta_facts
  else if String.equal key key_rewrite_cqs then t.rewrite_cqs
  else if String.equal key key_rewrite_expansions then t.rewrite_expansions
  else if String.equal key key_rewrite_depth then t.rewrite_depth
  else if String.equal key key_rewrite_datalog_patterns then t.rewrite_datalog_patterns
  else if String.equal key key_rewrite_datalog_rules then t.rewrite_datalog_rules
  else if String.equal key key_rewrite_datalog_facts then t.rewrite_datalog_facts
  else if String.equal key key_containment_checks then t.containment_checks
  else if String.equal key key_eval_steps then t.eval_steps
  else None

(* Accepted spellings for each field: the canonical dotted key plus a short
   alias for the command line. *)
let set t key v =
  match key with
  | "chase.rounds" | "rounds" -> Ok { t with chase_rounds = Some v }
  | "chase.facts" | "facts" -> Ok { t with chase_facts = Some v }
  | "chase.triggers" | "triggers" -> Ok { t with chase_triggers = Some v }
  | "chase.delta.triggers" | "delta.triggers" -> Ok { t with chase_delta_triggers = Some v }
  | "chase.delta.facts" | "delta.facts" -> Ok { t with chase_delta_facts = Some v }
  | "rewrite.cqs" | "cqs" -> Ok { t with rewrite_cqs = Some v }
  | "rewrite.expansions" | "expansions" -> Ok { t with rewrite_expansions = Some v }
  | "rewrite.depth" | "depth" -> Ok { t with rewrite_depth = Some v }
  | "rewrite.datalog.patterns" | "datalog.patterns" | "patterns" ->
    Ok { t with rewrite_datalog_patterns = Some v }
  | "rewrite.datalog.rules" | "datalog.rules" -> Ok { t with rewrite_datalog_rules = Some v }
  | "rewrite.datalog.facts" | "datalog.facts" -> Ok { t with rewrite_datalog_facts = Some v }
  | "containment.checks" | "checks" -> Ok { t with containment_checks = Some v }
  | "eval.steps" | "steps" -> Ok { t with eval_steps = Some v }
  | _ -> Error (Printf.sprintf "unknown budget key %S" key)

let of_string ?(base = unlimited) spec =
  let items =
    String.split_on_char ',' spec |> List.map String.trim |> List.filter (fun s -> s <> "")
  in
  List.fold_left
    (fun acc item ->
      match acc with
      | Error _ -> acc
      | Ok t -> (
        match String.index_opt item '=' with
        | None -> Error (Printf.sprintf "budget item %S is not key=value" item)
        | Some i ->
          let key = String.trim (String.sub item 0 i) in
          let value = String.trim (String.sub item (i + 1) (String.length item - i - 1)) in
          if key = "deadline" || key = "deadline_s" then
            match float_of_string_opt value with
            | Some s when s >= 0.0 -> Ok { t with deadline_s = Some s }
            | _ -> Error (Printf.sprintf "bad deadline %S (want seconds)" value)
          else
            match int_of_string_opt value with
            | Some v when v >= 0 -> set t key v
            | _ -> Error (Printf.sprintf "bad value %S for budget key %S" value key)))
    (Ok base) items

let to_string t =
  let ints =
    [
      (key_chase_rounds, t.chase_rounds);
      (key_chase_facts, t.chase_facts);
      (key_chase_triggers, t.chase_triggers);
      (key_chase_delta_triggers, t.chase_delta_triggers);
      (key_chase_delta_facts, t.chase_delta_facts);
      (key_rewrite_cqs, t.rewrite_cqs);
      (key_rewrite_expansions, t.rewrite_expansions);
      (key_rewrite_depth, t.rewrite_depth);
      (key_rewrite_datalog_patterns, t.rewrite_datalog_patterns);
      (key_rewrite_datalog_rules, t.rewrite_datalog_rules);
      (key_rewrite_datalog_facts, t.rewrite_datalog_facts);
      (key_containment_checks, t.containment_checks);
      (key_eval_steps, t.eval_steps);
    ]
    |> List.filter_map (fun (k, v) ->
           Option.map (fun v -> Printf.sprintf "%s=%d" k v) v)
  in
  let all =
    match t.deadline_s with
    | None -> ints
    | Some s -> ints @ [ Printf.sprintf "deadline=%g" s ]
  in
  String.concat "," all

let pp ppf t =
  match to_string t with
  | "" -> Format.pp_print_string ppf "<unlimited>"
  | s -> Format.pp_print_string ppf s
