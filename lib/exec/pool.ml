(* A shared Domain worker pool: a bounded job queue consumed by a fixed set
   of domains, plus a caller-participating batch runner for morsel-driven
   parallel evaluation. Refactored out of the serving layer's scheduler so
   that both the request executor (lib/serve) and the parallel evaluator
   (lib/db) draw workers from the same abstraction. *)

(* Same environment contract as [Tgd_logic.Parallel.domain_count], duplicated
   here because the dependency arrow points the other way (tgd_logic does not
   depend on tgd_exec). *)
let env_domains () =
  match Sys.getenv_opt "TGDLIB_DOMAINS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)

let default_workers () =
  match env_domains () with
  | Some n -> n
  | None -> max 1 (min 8 (Domain.recommended_domain_count ()))

type reject =
  [ `Overloaded of int
  | `Closed ]

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  idle : Condition.t;
  queue : (unit -> unit) Queue.t;
  bound : int option;
  mutable closed : bool;
  mutable running : int;
  mutable domains : unit Domain.t list;
  size : int;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let worker t () =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.nonempty t.lock
    done;
    if Queue.is_empty t.queue then
      (* closed and drained *)
      Mutex.unlock t.lock
    else begin
      let job = Queue.pop t.queue in
      t.running <- t.running + 1;
      Mutex.unlock t.lock;
      (* A raising job must never take a worker down; error accounting is
         the submitter's business (wrap the thunk). *)
      (try job () with _ -> ());
      locked t (fun () ->
          t.running <- t.running - 1;
          if t.running = 0 && Queue.is_empty t.queue then Condition.broadcast t.idle);
      loop ()
    end
  in
  loop ()

let create ?workers ?queue_bound () =
  (match queue_bound with
  | Some b when b <= 0 -> invalid_arg "Pool.create: queue_bound must be positive"
  | _ -> ());
  let workers =
    match workers with
    | Some w when w > 0 -> w
    | Some _ -> invalid_arg "Pool.create: workers must be positive"
    | None -> default_workers ()
  in
  (* Never spawn more worker domains than the hardware can run: every
     minor collection is a stop-the-world barrier across all domains, and
     when runnable domains outnumber cores the barrier pays OS scheduling
     latency to assemble — measured as a 972 -> 207 rps collapse on the
     serve bench. Extra requested workers add nothing a core-sized pool
     can't do (the queue is work-conserving), so the request is clamped.
     TGDLIB_OVERSUBSCRIBE=1 disables the clamp for experiments. *)
  let workers =
    let oversubscribe =
      match Sys.getenv_opt "TGDLIB_OVERSUBSCRIBE" with
      | Some ("1" | "true" | "yes") -> true
      | Some _ | None -> false
    in
    if oversubscribe then workers
    else min workers (max 1 (Domain.recommended_domain_count ()))
  in
  let t =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      bound = queue_bound;
      closed = false;
      running = 0;
      domains = [];
      size = workers;
    }
  in
  t.domains <- List.init workers (fun _ -> Domain.spawn (worker t));
  t

let size t = t.size

let submit t job =
  locked t (fun () ->
      if t.closed then Error `Closed
      else
        match t.bound with
        | Some b when Queue.length t.queue >= b -> Error (`Overloaded (Queue.length t.queue))
        | _ ->
          Queue.push job t.queue;
          Condition.signal t.nonempty;
          Ok (Queue.length t.queue))

let queue_depth t = locked t (fun () -> Queue.length t.queue)

let drain t =
  locked t (fun () ->
      while not (Queue.is_empty t.queue && t.running = 0) do
        Condition.wait t.idle t.lock
      done)

let shutdown t =
  let doms =
    locked t (fun () ->
        if t.closed then []
        else begin
          t.closed <- true;
          Condition.broadcast t.nonempty;
          let doms = t.domains in
          t.domains <- [];
          doms
        end)
  in
  List.iter Domain.join doms

(* ------------------------------------------------------------------ *)
(* Morsel batches                                                      *)

let run_morsels t ~n f =
  if n > 0 then begin
    let next = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let failure : exn option Atomic.t = Atomic.make None in
    let batch_lock = Mutex.create () in
    let batch_done = Condition.create () in
    let drainer () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (if Atomic.get failure = None then
             try f i with e -> ignore (Atomic.compare_and_set failure None (Some e)));
          let d = 1 + Atomic.fetch_and_add completed 1 in
          if d = n then begin
            Mutex.lock batch_lock;
            Condition.broadcast batch_done;
            Mutex.unlock batch_lock
          end;
          loop ()
        end
      in
      loop ()
    in
    (* Enlist up to [size] helper jobs; shedding (queue full, closed) is
       harmless because the caller drains whatever the helpers do not. *)
    let helpers = min t.size (n - 1) in
    for _ = 1 to helpers do
      ignore (submit t drainer)
    done;
    drainer ();
    Mutex.lock batch_lock;
    while Atomic.get completed < n do
      Condition.wait batch_done batch_lock
    done;
    Mutex.unlock batch_lock;
    match Atomic.get failure with Some e -> raise e | None -> ()
  end
