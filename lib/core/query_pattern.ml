open Tgd_logic

type t = {
  pred : Symbol.t;
  bound : bool array;
}

let make pred bound = { pred; bound }

let pp ppf pat =
  Format.fprintf ppf "%a(%s)" Symbol.pp pat.pred
    (String.concat "," (Array.to_list (Array.map (fun b -> if b then "b" else "u") pat.bound)))

let of_query_atom (q : Cq.t) (a : Atom.t) =
  let answer_vars = Cq.answer_vars q in
  let bound =
    Array.map
      (fun t ->
        match t with
        | Term.Const _ -> true
        | Term.Var v -> Symbol.Set.mem v answer_vars)
      a.Atom.args
  in
  { pred = a.Atom.pred; bound }

let generic_query pat =
  let terms =
    Array.mapi
      (fun i b -> (b, Term.var (Printf.sprintf "%s%d" (if b then "A" else "E") i)))
      pat.bound
  in
  let args = Array.to_list (Array.map snd terms) in
  let answer = Array.to_list terms |> List.filter_map (fun (b, t) -> if b then Some t else None) in
  Cq.make ~name:"pattern" ~answer ~body:[ Atom.make pat.pred args ]

type status =
  | Terminates of int
  | Diverges of string

let analyze ?config p pat =
  let r = Tgd_rewrite.Rewrite.ucq ?config p (generic_query pat) in
  match r.Tgd_rewrite.Rewrite.outcome with
  | Tgd_rewrite.Rewrite.Complete -> Terminates (List.length r.Tgd_rewrite.Rewrite.ucq)
  | Tgd_rewrite.Rewrite.Truncated d -> Diverges (Tgd_exec.Governor.diag_summary d)

let analyze_all ?config ?(max_arity = 6) p =
  let masks arity =
    let n = 1 lsl arity in
    List.init n (fun k -> Array.init arity (fun i -> (k lsr i) land 1 = 1))
  in
  List.concat_map
    (fun (pred, arity) ->
      if arity > max_arity then []
      else List.map (fun mask -> let pat = make pred mask in (pat, analyze ?config p pat)) (masks arity))
    (Program.predicates p)
