(* Cheap sound pre-filters for CQ containment. A homomorphism from the body
   of [sub] into the (frozen) body of [sup] maps every atom to an atom with
   the same predicate and every constant to itself, so
     preds(sub) ⊆ preds(sup)  and  consts(sub) ⊆ consts(sup)
   are necessary conditions. Both sets are approximated by 63-bit Bloom
   words (one hash per symbol), and the predicate condition is additionally
   checked exactly on sorted distinct-predicate arrays. *)

type t = {
  pred_bits : int;
  const_bits : int;
  n_atoms : int;
  preds : (Symbol.t * int) array;  (* distinct predicates, sorted, with atom counts *)
}

let bit_of sym = 1 lsl (Symbol.hash sym land 0x3FFFFFFF mod 63)

let of_body body =
  let pred_bits = ref 0 and const_bits = ref 0 and n_atoms = ref 0 in
  let counts = Symbol.Table.create 8 in
  List.iter
    (fun (a : Atom.t) ->
      incr n_atoms;
      pred_bits := !pred_bits lor bit_of a.Atom.pred;
      let c = Option.value ~default:0 (Symbol.Table.find_opt counts a.Atom.pred) in
      Symbol.Table.replace counts a.Atom.pred (c + 1);
      Array.iter
        (fun t ->
          match t with
          | Term.Const c -> const_bits := !const_bits lor bit_of c
          | Term.Var _ -> ())
        a.Atom.args)
    body;
  let preds = Array.of_seq (Symbol.Table.to_seq counts) in
  Array.sort (fun (p1, _) (p2, _) -> Symbol.compare p1 p2) preds;
  { pred_bits = !pred_bits; const_bits = !const_bits; n_atoms = !n_atoms; preds }

let pred_bits fp = fp.pred_bits
let n_atoms fp = fp.n_atoms

let subset_bits b1 b2 = b1 land lnot b2 = 0

(* Every distinct predicate of [sub] occurs in [sup]: merge walk. *)
let preds_subset sub sup =
  let n1 = Array.length sub.preds and n2 = Array.length sup.preds in
  let rec go i j =
    if i >= n1 then true
    else if j >= n2 then false
    else
      let c = Symbol.compare (fst sub.preds.(i)) (fst sup.preds.(j)) in
      if c = 0 then go (i + 1) (j + 1) else if c > 0 then go i (j + 1) else false
  in
  n1 <= n2 && go 0 0

let may_map ~sub ~sup =
  subset_bits sub.pred_bits sup.pred_bits
  && subset_bits sub.const_bits sup.const_bits
  && preds_subset sub sup
