type t = {
  name : string;
  answer : Term.t list;
  body : Atom.t list;
}

type ucq = t list

let body_vars body =
  List.fold_left (fun acc a -> Symbol.Set.union acc (Atom.vars a)) Symbol.Set.empty body

let make ?(name = "q") ~answer ~body =
  if body = [] then invalid_arg "Cq.make: empty body";
  let bvars = body_vars body in
  let safe =
    List.for_all
      (fun t -> match t with Term.Const _ -> true | Term.Var v -> Symbol.Set.mem v bvars)
      answer
  in
  if not safe then invalid_arg "Cq.make: unsafe query (answer variable not in body)";
  { name; answer; body }

let arity q = List.length q.answer
let is_boolean q = q.answer = []
let vars q = body_vars q.body

let answer_vars q =
  List.fold_left
    (fun acc t -> match t with Term.Var v -> Symbol.Set.add v acc | Term.Const _ -> acc)
    Symbol.Set.empty q.answer

let existential_vars q = Symbol.Set.diff (vars q) (answer_vars q)

let constants q =
  let in_body =
    List.fold_left (fun acc a -> Symbol.Set.union acc (Atom.constants a)) Symbol.Set.empty q.body
  in
  List.fold_left
    (fun acc t -> match t with Term.Const c -> Symbol.Set.add c acc | Term.Var _ -> acc)
    in_body q.answer

let apply s q =
  {
    q with
    answer = Subst.apply_terms s q.answer;
    body = Subst.apply_atoms s q.body;
  }

let rename_with rename q =
  {
    q with
    answer = List.map rename q.answer;
    body = List.map (Atom.apply rename) q.body;
  }

let rename_apart q =
  let mapping = Symbol.Table.create 8 in
  let rename t =
    match t with
    | Term.Const _ -> t
    | Term.Var v -> (
      match Symbol.Table.find_opt mapping v with
      | Some v' -> Term.Var v'
      | None ->
        let v' = Symbol.fresh (Symbol.name v) in
        Symbol.Table.add mapping v v';
        Term.Var v')
  in
  rename_with rename q

(* The canonical variable names [V0, V1, ...], interned once and reused:
   canonicalization runs on every candidate the rewriting engine generates,
   so per-variable sprintf+intern is measurable there. *)
let canonical_pool = ref [||]

let canonical_var i =
  if i >= Array.length !canonical_pool then begin
    let n = max 64 (2 * (i + 1)) in
    let old = !canonical_pool in
    canonical_pool :=
      Array.init n (fun j ->
          if j < Array.length old then old.(j) else Symbol.intern (Printf.sprintf "V%d" j))
  end;
  !canonical_pool.(i)

let canonical q =
  let mapping = Symbol.Table.create 8 in
  let next = ref 0 in
  let rename t =
    match t with
    | Term.Const _ -> t
    | Term.Var v -> (
      match Symbol.Table.find_opt mapping v with
      | Some v' -> Term.Var v'
      | None ->
        let v' = canonical_var !next in
        incr next;
        Symbol.Table.add mapping v v';
        Term.Var v')
  in
  let q = rename_with rename q in
  { q with body = List.sort_uniq Atom.compare q.body }

let equal q1 q2 =
  List.length q1.answer = List.length q2.answer
  && List.length q1.body = List.length q2.body
  && List.for_all2 Term.equal q1.answer q2.answer
  && List.for_all2 Atom.equal q1.body q2.body

let compare q1 q2 =
  let c = List.compare Term.compare q1.answer q2.answer in
  if c <> 0 then c else List.compare Atom.compare q1.body q2.body

let pp ppf q =
  let pp_terms ppf ts =
    Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",") Term.pp ppf ts
  in
  let pp_atoms ppf atoms =
    Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") Atom.pp ppf atoms
  in
  Format.fprintf ppf "%s(%a) :- %a" q.name pp_terms q.answer pp_atoms q.body

let to_string q = Format.asprintf "%a" pp q

let pp_ucq ppf ucq =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp ppf ucq
