type t = int

(* Interning is global to the process and, since the serving layer parses and
   rewrites on worker domains concurrently, must be thread-safe. The lookup
   path is lock-free: spellings live in an open-addressing table whose slots
   are individual [Atomic.t] cells, and the table itself is published through
   an [Atomic.t], so a warm intern (the overwhelmingly common case on the
   serving path — every request re-interns the same predicate and variable
   spellings) never touches the mutex. Only a genuine miss takes the lock,
   re-probes the current table, and inserts; resize republishes a fresh
   table. A reader that raced against a resize sees the old table — which
   still answers every symbol interned before the resize correctly — and a
   stale miss simply falls through to the locked path, which probes the
   current table again.

   [name] reads stay lock-free too: entries are written into [names] before
   the slot is published with a release [Atomic.set], and a symbol value
   reaches another domain either through that slot (acquire read orders the
   array write before it) or through a synchronizing handoff (queue,
   channel), which orders the publication the same way. *)

type slot =
  | Empty
  | Used of string * int

type table = {
  mask : int;  (* capacity - 1; capacity is a power of two *)
  slots : slot Atomic.t array;
}

let make_table capacity = { mask = capacity - 1; slots = Array.init capacity (fun _ -> Atomic.make Empty) }

let lock = Mutex.create ()
let current : table Atomic.t = Atomic.make (make_table 2048)
let names = ref (Array.make 1024 "")
let count = ref 0

(* FNV-1a over the spelling: cheap, and good enough spread for linear
   probing at <= 50% load. *)
let hash_string s =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land max_int) s;
  !h

(* Probe [tbl] for [s]: [Some i] on a hit, [None] on a miss. Lock-free. *)
let probe tbl s =
  let h = hash_string s in
  let rec go i =
    match Atomic.get tbl.slots.(i land tbl.mask) with
    | Empty -> None
    | Used (k, v) -> if String.equal k s then Some v else go (i + 1)
  in
  go h

(* Insert under the lock: the caller holds [lock] and has re-probed. *)
let insert_slot tbl s v =
  let h = hash_string s in
  let rec go i =
    let cell = tbl.slots.(i land tbl.mask) in
    match Atomic.get cell with
    | Empty -> Atomic.set cell (Used (s, v))
    | Used _ -> go (i + 1)
  in
  go h

let intern_unlocked s =
  let tbl = Atomic.get current in
  match probe tbl s with
  | Some i -> i
  | None ->
    let i = !count in
    if i = Array.length !names then begin
      let bigger = Array.make (2 * i) "" in
      Array.blit !names 0 bigger 0 i;
      names := bigger
    end;
    !names.(i) <- s;
    incr count;
    (* Keep load factor <= 1/2 so probe chains stay short. *)
    let tbl =
      if 2 * (i + 1) > tbl.mask + 1 then begin
        let bigger = make_table (2 * (tbl.mask + 1)) in
        Array.iter
          (fun cell ->
            match Atomic.get cell with
            | Empty -> ()
            | Used (k, v) -> insert_slot bigger k v)
          tbl.slots;
        Atomic.set current bigger;
        bigger
      end
      else tbl
    in
    insert_slot tbl s i;
    i

let intern s =
  match probe (Atomic.get current) s with
  | Some i -> i
  | None ->
    Mutex.lock lock;
    let i = intern_unlocked s in
    Mutex.unlock lock;
    i

let name i = !names.(i)

let of_int i =
  if i < 0 || i >= !count then
    invalid_arg (Printf.sprintf "Symbol.of_int: %d is not an interned symbol" i);
  i

let fresh_counter = ref 0

let fresh base =
  Mutex.lock lock;
  let rec go () =
    incr fresh_counter;
    let s = Printf.sprintf "%s#%d" base !fresh_counter in
    if probe (Atomic.get current) s <> None then go () else intern_unlocked s
  in
  let i = go () in
  Mutex.unlock lock;
  i

let equal = Int.equal
let compare = Int.compare
let hash i = i
let pp ppf i = Format.pp_print_string ppf (name i)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
