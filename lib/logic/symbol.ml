type t = int

(* Interning is global to the process and, since the serving layer runs
   parsing and rewriting on worker domains, guarded by a mutex. [name] reads
   stay lock-free: entries are written into the array before the arrays/
   count are published, and a symbol value can only reach another domain
   through a synchronizing handoff (queue, channel), which orders the
   publication before the read. *)
let lock = Mutex.create ()
let table : (string, int) Hashtbl.t = Hashtbl.create 1024
let names = ref (Array.make 1024 "")
let count = ref 0

let intern_unlocked s =
  match Hashtbl.find_opt table s with
  | Some i -> i
  | None ->
    let i = !count in
    if i = Array.length !names then begin
      let bigger = Array.make (2 * i) "" in
      Array.blit !names 0 bigger 0 i;
      names := bigger
    end;
    !names.(i) <- s;
    incr count;
    Hashtbl.add table s i;
    i

let intern s =
  Mutex.lock lock;
  let i = intern_unlocked s in
  Mutex.unlock lock;
  i

let name i = !names.(i)

let of_int i =
  if i < 0 || i >= !count then
    invalid_arg (Printf.sprintf "Symbol.of_int: %d is not an interned symbol" i);
  i

let fresh_counter = ref 0

let fresh base =
  Mutex.lock lock;
  let rec go () =
    incr fresh_counter;
    let s = Printf.sprintf "%s#%d" base !fresh_counter in
    if Hashtbl.mem table s then go () else intern_unlocked s
  in
  let i = go () in
  Mutex.unlock lock;
  i

let equal = Int.equal
let compare = Int.compare
let hash i = i
let pp ppf i = Format.pp_print_string ppf (name i)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
