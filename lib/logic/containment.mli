(** Conjunctive-query containment via the homomorphism theorem.

    Every check runs through sound pre-filters first (arity, then the
    predicate/constant {!Fingerprint} of the would-be homomorphism source
    must map into the target's): a filtered-out pair is decided in O(1)
    without building a target index or searching. Hot paths precompute a
    {!pre} per CQ so the frozen target and fingerprint are built once. *)

val contained : Cq.t -> Cq.t -> bool
(** [contained q1 q2] holds iff [q1 <= q2], i.e. on every database the
    answers of [q1] are a subset of the answers of [q2]. Decided by searching
    for a homomorphism from [q2] into the frozen body of [q1] that maps the
    answer tuple of [q2] onto the answer tuple of [q1]. Queries of different
    arities are never contained. *)

val contained_reference : Cq.t -> Cq.t -> bool
(** The unfiltered, uncached, uncounted implementation (the original seed
    code path), kept as the semantic reference for property tests and
    ablation benchmarks. Agrees with {!contained} on every input. *)

val equivalent : Cq.t -> Cq.t -> bool

val ucq_contained : Cq.ucq -> Cq.ucq -> bool
(** [ucq_contained u1 u2]: every disjunct of [u1] is contained in some
    disjunct of [u2]. (Sound and complete for UCQ containment.) *)

(** {1 Precomputed containment state} *)

type pre
(** A CQ together with its fingerprint and frozen homomorphism target, built
    once and reused across many checks. *)

val precompute : Cq.t -> pre
val pre_cq : pre -> Cq.t
val fingerprint : pre -> Fingerprint.t

val contained_pre : pre -> pre -> bool
(** [contained_pre p1 p2] = [contained (pre_cq p1) (pre_cq p2)] without
    rebuilding fingerprints or the target index. Safe to call concurrently
    from multiple domains. *)

(** {1 Minimization} *)

val minimize_ucq : ?domains:int -> Cq.ucq -> Cq.ucq
(** Remove every disjunct that is contained in another disjunct; of two
    equivalent disjuncts the one with the smaller body survives. The result
    is equivalent to the input and identical to
    {!minimize_ucq_reference}. Large unions are minimized by a Domain pool
    ([domains] defaults to {!Parallel.domain_count}, overridable via the
    [TGDLIB_DOMAINS] environment variable); the result does not depend on
    the domain count. *)

val minimize_ucq_reference : Cq.ucq -> Cq.ucq
(** The original sequential sweep over {!contained_reference}; the semantic
    reference for tests. *)

(** {1 Observability} *)

type stats = {
  checks : int;  (** containment checks attempted *)
  pruned : int;  (** checks decided by the pre-filters alone *)
  hom_searches : int;  (** full homomorphism searches actually run *)
}

val stats : unit -> stats
(** Process-wide counters (atomic; shared across domains). Checks made via
    {!contained_reference} / {!minimize_ucq_reference} are not counted. *)

val reset_stats : unit -> unit
