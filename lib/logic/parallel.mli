(** A minimal Domain-based worker pool (OCaml 5).

    Used to parallelize embarrassingly-parallel loops (per-disjunct UCQ
    subsumption tests). Tasks must be pure up to [Atomic] side effects and
    {!Symbol} interning (whose global tables are mutex-guarded); they must
    not mutate other shared structures. *)

val domain_count : unit -> int
(** Worker count: the [TGDLIB_DOMAINS] environment variable if set to a
    positive integer, otherwise [Domain.recommended_domain_count] capped
    at 8. *)

val sequential_for : int -> (int -> unit) -> unit
(** [sequential_for n f] runs [f 0 .. f (n-1)] in the calling domain. *)

val parallel_for : ?domains:int -> n:int -> (int -> unit) -> unit
(** [parallel_for ~n f] runs [f 0 .. f (n-1)], distributing iterations over
    [domains] (default {!domain_count}) workers with a shared atomic index.
    Runs sequentially when [domains <= 1] or [n <= 1]. The first exception
    raised by a task is re-raised after all workers stop. *)
