type mapping = Term.t Symbol.Map.t

(* Besides the per-predicate buckets, atoms are indexed by every
   (predicate, position, term) triple, so a search step whose atom has a
   bound position (a constant, or a variable already mapped) scans only the
   matching bucket instead of the whole predicate. Targets are built once
   and reused across many searches (see Containment.pre). *)
type target = {
  by_pred : Atom.t list Symbol.Table.t;
  by_pred_n : int Symbol.Table.t;
  by_pos : (int, Atom.t list ref) Hashtbl.t;
  size : int;
}

(* (pred, position, term) packed into one int key: no tuple allocation and a
   single-word hash per probe. The packing need not be injective — a rare
   collision merges two buckets, which only widens the candidate list that
   [match_atom] then filters exactly. *)
let pos_key pred i t =
  (((Symbol.hash pred * 31) + i) * 0x1000193) lxor Term.hash t

let target_of_atoms atoms =
  let by_pred = Symbol.Table.create 16 in
  let by_pred_n = Symbol.Table.create 16 in
  let by_pos = Hashtbl.create 32 in
  let add a =
    let existing = Option.value ~default:[] (Symbol.Table.find_opt by_pred a.Atom.pred) in
    Symbol.Table.replace by_pred a.Atom.pred (a :: existing);
    let count = Option.value ~default:0 (Symbol.Table.find_opt by_pred_n a.Atom.pred) in
    Symbol.Table.replace by_pred_n a.Atom.pred (count + 1);
    Array.iteri
      (fun i t ->
        let key = pos_key a.Atom.pred i t in
        match Hashtbl.find_opt by_pos key with
        | Some r -> r := a :: !r
        | None -> Hashtbl.add by_pos key (ref [ a ]))
      a.Atom.args
  in
  List.iter add atoms;
  { by_pred; by_pred_n; by_pos; size = List.length atoms }

let target_size t = t.size

(* The target-independent half of the atom-ordering heuristic, computed once
   per source body and reused across searches: distinct unbound variables of
   each atom (numbered 0..nv-1), which atoms each variable occurs in, and the
   initial unbound count per atom. [is_bound] must hold exactly for the
   variables the search's [init] mapping will bind. *)
type source = {
  src_atoms : Atom.t array;
  var_ids : int list array;
  occurs : int list array;
  unbound0 : int array;
  nv : int;
  mutable order_memo : (int array * Atom.t list) list;
      (* orderings already computed for this source, keyed by the target
         weight signature they were computed under (see [order_atoms]) *)
}

let source_of_atoms ~is_bound atoms =
  let src_atoms = Array.of_list atoms in
  let n = Array.length src_atoms in
  let var_id = Symbol.Table.create 16 in
  let nv = ref 0 in
  let var_ids =
    Array.map
      (fun (a : Atom.t) ->
        let ids = ref [] in
        Array.iter
          (fun t ->
            match t with
            | Term.Const _ -> ()
            | Term.Var v ->
              if not (is_bound v) then begin
                let id =
                  match Symbol.Table.find_opt var_id v with
                  | Some id -> id
                  | None ->
                    let id = !nv in
                    incr nv;
                    Symbol.Table.add var_id v id;
                    id
                in
                if not (List.mem id !ids) then ids := id :: !ids
              end)
          a.Atom.args;
        !ids)
      src_atoms
  in
  let occurs = Array.make (max 1 !nv) [] in
  let unbound0 = Array.make n 0 in
  Array.iteri
    (fun i _ ->
      unbound0.(i) <- List.length var_ids.(i);
      List.iter (fun v -> occurs.(v) <- i :: occurs.(v)) var_ids.(i))
    src_atoms;
  { src_atoms; var_ids; occurs; unbound0; nv = !nv; order_memo = [] }

(* Match one source atom against one target atom, extending [m]. *)
let match_atom m (src : Atom.t) (tgt : Atom.t) =
  let n = Atom.arity src in
  if Atom.arity tgt <> n then None
  else
    let rec loop m i =
      if i >= n then Some m
      else
        let ti = tgt.Atom.args.(i) in
        match src.Atom.args.(i) with
        | Term.Const _ as c -> if Term.equal c ti then loop m (i + 1) else None
        | Term.Var v -> (
          match Symbol.Map.find_opt v m with
          | Some t -> if Term.equal t ti then loop m (i + 1) else None
          | None -> loop (Symbol.Map.add v ti m) (i + 1))
    in
    loop m 0

exception Found of mapping

(* Order atoms greedily into a connected, most-constrained-first sequence:
   repeatedly place the atom with the fewest still-unbound variables
   (variables bound by [init] or by already-placed atoms count as bound;
   constants always do), breaking ties towards fewer candidate target
   atoms. On chain- and tree-shaped bodies this turns the backtracking
   search into an almost linear index walk instead of a cross product. *)
let order_atoms source target =
  let n = Array.length source.src_atoms in
  if n <= 1 then Array.to_list source.src_atoms
  else begin
    let weight =
      Array.map
        (fun (a : Atom.t) ->
          Option.value ~default:0 (Symbol.Table.find_opt target.by_pred_n a.Atom.pred))
        source.src_atoms
    in
    (* The ordering is a pure function of the source data and [weight], so
       reuse it across targets with the same weight signature — a hot source
       (a kept disjunct checked against a stream of candidates) sees only a
       handful of distinct signatures. *)
    let rec lookup = function
      | [] -> None
      | (w, order) :: rest -> if w = weight then Some order else lookup rest
    in
    match lookup source.order_memo with
    | Some order -> order
    | None ->
    let unbound = Array.copy source.unbound0 in
    let placed = Array.make n false in
    let bound = Array.make (max 1 source.nv) false in
    let out = ref [] in
    for _ = 1 to n do
      let best = ref (-1) in
      for i = n - 1 downto 0 do
        if
          (not placed.(i))
          && (!best < 0
             || unbound.(i) < unbound.(!best)
             || (unbound.(i) = unbound.(!best) && weight.(i) <= weight.(!best)))
        then best := i
      done;
      let b = !best in
      placed.(b) <- true;
      List.iter
        (fun v ->
          if not bound.(v) then begin
            bound.(v) <- true;
            List.iter (fun j -> unbound.(j) <- unbound.(j) - 1) source.occurs.(v)
          end)
        source.var_ids.(b);
      out := source.src_atoms.(b) :: !out
    done;
    let order = List.rev !out in
    source.order_memo <- (weight, order) :: source.order_memo;
    order
  end

(* Candidate target atoms for [a] under mapping [m]: the smallest
   (pred, position, term) bucket over [a]'s bound positions, falling back to
   the predicate bucket when no position is bound. Every true match lies in
   all of these buckets, so restricting to one is complete. *)
let candidates_for target m (a : Atom.t) =
  let n = Array.length a.Atom.args in
  let best = ref None in
  let consider key =
    let l = match Hashtbl.find_opt target.by_pos key with Some r -> !r | None -> [] in
    match !best with
    | Some b when List.compare_lengths b l <= 0 -> ()
    | Some _ | None -> best := Some l
  in
  for i = 0 to n - 1 do
    match a.Atom.args.(i) with
    | Term.Const _ as c -> consider (pos_key a.Atom.pred i c)
    | Term.Var v -> (
      match Symbol.Map.find_opt v m with
      | Some t -> consider (pos_key a.Atom.pred i t)
      | None -> ())
  done;
  match !best with
  | Some l -> l
  | None -> Option.value ~default:[] (Symbol.Table.find_opt target.by_pred a.Atom.pred)

let search ?source ~init ~on_found atoms target =
  let source =
    match source with
    | Some s -> s
    | None -> source_of_atoms ~is_bound:(fun v -> Symbol.Map.mem v init) atoms
  in
  let atoms = order_atoms source target in
  let rec go m = function
    | [] -> on_found m
    | a :: rest ->
      let try_candidate tgt =
        match match_atom m a tgt with
        | None -> ()
        | Some m' -> go m' rest
      in
      List.iter try_candidate (candidates_for target m a)
  in
  go init atoms

let find ?source ?(init = Symbol.Map.empty) atoms target =
  try
    search ?source ~init ~on_found:(fun m -> raise (Found m)) atoms target;
    None
  with Found m -> Some m

let exists ?source ?init atoms target = Option.is_some (find ?source ?init atoms target)

let all ?(init = Symbol.Map.empty) atoms target =
  let acc = ref [] in
  search ~init ~on_found:(fun m -> acc := m :: !acc) atoms target;
  List.rev !acc

let iter ?(init = Symbol.Map.empty) f atoms target = search ~init ~on_found:f atoms target

let apply m a =
  let subst t =
    match t with
    | Term.Const _ -> t
    | Term.Var v -> Option.value ~default:t (Symbol.Map.find_opt v m)
  in
  Atom.apply subst a
