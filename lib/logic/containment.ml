(* [q1 <= q2] iff there is a homomorphism from q2 into q1 frozen, mapping the
   answer tuple of q2 onto the answer tuple of q1 position-wise.

   The NP-hard homomorphism search is guarded by sound O(1) pre-filters
   (arity, predicate/constant fingerprints — see {!Fingerprint}); callers on
   the hot path precompute a {!pre} per CQ so the frozen target index and the
   fingerprint are built once instead of per check. Global counters make the
   filter's hit rate observable. *)

(* Counters are atomic: containment checks run concurrently inside
   [minimize_ucq]'s domain pool. *)
let n_checks = Atomic.make 0
let n_pruned = Atomic.make 0
let n_hom_searches = Atomic.make 0

type stats = {
  checks : int;
  pruned : int;
  hom_searches : int;
}

let stats () =
  {
    checks = Atomic.get n_checks;
    pruned = Atomic.get n_pruned;
    hom_searches = Atomic.get n_hom_searches;
  }

let reset_stats () =
  Atomic.set n_checks 0;
  Atomic.set n_pruned 0;
  Atomic.set n_hom_searches 0

(* Seed the mapping with answer-position constraints. *)
let seed_answers a2 a1 =
  let rec seed m a2 a1 =
    match a2, a1 with
    | [], [] -> Some m
    | t2 :: rest2, t1 :: rest1 -> (
      match t2 with
      | Term.Const _ -> if Term.equal t2 t1 then seed m rest2 rest1 else None
      | Term.Var v -> (
        match Symbol.Map.find_opt v m with
        | Some t -> if Term.equal t t1 then seed m rest2 rest1 else None
        | None -> seed (Symbol.Map.add v t1 m) rest2 rest1))
    | [], _ :: _ | _ :: _, [] -> None
  in
  seed Symbol.Map.empty a2 a1

(* The full search: [q1 <= q2] given q1's frozen target. *)
let hom_contained target (q1 : Cq.t) (q2 : Cq.t) =
  Atomic.incr n_hom_searches;
  match seed_answers q2.Cq.answer q1.Cq.answer with
  | None -> false
  | Some init -> Homomorphism.exists ~init q2.Cq.body target

let contained_reference q1 q2 =
  Cq.arity q1 = Cq.arity q2
  &&
  let target = Homomorphism.target_of_atoms q1.Cq.body in
  (match seed_answers q2.Cq.answer q1.Cq.answer with
  | None -> false
  | Some init -> Homomorphism.exists ~init q2.Cq.body target)

type pre = {
  cq : Cq.t;
  arity : int;
  fp : Fingerprint.t;
  target : Homomorphism.target;
  source : Homomorphism.source;
      (* ordering data for this CQ's body as the mapped (sub) side; its
         bound variables are exactly the answer variables, which is what
         [seed_answers] binds *)
}

let precompute cq =
  let answer_vars = Cq.answer_vars cq in
  {
    cq;
    arity = Cq.arity cq;
    fp = Fingerprint.of_body cq.Cq.body;
    target = Homomorphism.target_of_atoms cq.Cq.body;
    source =
      Homomorphism.source_of_atoms
        ~is_bound:(fun v -> Symbol.Set.mem v answer_vars)
        cq.Cq.body;
  }

let pre_cq p = p.cq
let fingerprint p = p.fp

let contained_pre p1 p2 =
  Atomic.incr n_checks;
  if p1.arity <> p2.arity || not (Fingerprint.may_map ~sub:p2.fp ~sup:p1.fp) then begin
    Atomic.incr n_pruned;
    false
  end
  else begin
    Atomic.incr n_hom_searches;
    match seed_answers p2.cq.Cq.answer p1.cq.Cq.answer with
    | None -> false
    | Some init -> Homomorphism.exists ~source:p2.source ~init p2.cq.Cq.body p1.target
  end

let contained q1 q2 =
  Atomic.incr n_checks;
  if
    Cq.arity q1 <> Cq.arity q2
    || not
         (Fingerprint.may_map
            ~sub:(Fingerprint.of_body q2.Cq.body)
            ~sup:(Fingerprint.of_body q1.Cq.body))
  then begin
    Atomic.incr n_pruned;
    false
  end
  else hom_contained (Homomorphism.target_of_atoms q1.Cq.body) q1 q2

let equivalent q1 q2 = contained q1 q2 && contained q2 q1

let ucq_contained u1 u2 = List.for_all (fun q1 -> List.exists (fun q2 -> contained q1 q2) u2) u1

(* Visiting larger bodies first makes the smaller of two equivalent
   disjuncts the survivor. *)
let sort_for_minimize ucq =
  List.stable_sort
    (fun q1 q2 -> Int.compare (List.length q2.Cq.body) (List.length q1.Cq.body))
    ucq

let minimize_ucq_reference ucq =
  (* The original sequential sweep, kept as the semantic reference: [q] is
     redundant iff contained in some other disjunct that survives. *)
  let ucq = sort_for_minimize ucq in
  let rec loop kept = function
    | [] -> List.rev kept
    | q :: rest ->
      let subsumed_by q' = (not (q == q')) && contained_reference q q' in
      if List.exists subsumed_by kept || List.exists subsumed_by rest then loop kept rest
      else loop (q :: kept) rest
  in
  loop [] ucq

(* Minimum disjunct count before [minimize_ucq] spins up domains; below it
   the sequential passes win on spawn overhead alone. *)
let parallel_threshold = 64

let minimize_ucq ?domains ucq =
  match sort_for_minimize ucq with
  | [] -> []
  | [ q ] -> [ q ]
  | sorted ->
    (* Two independent passes, each embarrassingly parallel per disjunct.
       They compute exactly the reference sweep's survivor set:
       - pass 1 discards q_i iff some later q_j subsumes it (the reference's
         scan of the unprocessed suffix sees every later disjunct);
       - pass 2 discards a pass-1 survivor q_i iff some earlier pass-1
         survivor q_j subsumes it. A pass-1 survivor discarded in pass 2 is
         subsumed by an earlier kept disjunct, which by transitivity also
         subsumes q_i, so using pass-1 survival (not final survival) for the
         earlier disjuncts accepts exactly the same set. *)
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    let pres = Array.map precompute arr in
    let le i j = (not (arr.(i) == arr.(j))) && contained_pre pres.(i) pres.(j) in
    let run =
      let d = match domains with Some d -> max 1 d | None -> Parallel.domain_count () in
      if d > 1 && n >= parallel_threshold then Parallel.parallel_for ~domains:d ~n
      else Parallel.sequential_for n
    in
    let sub_later = Array.make n false in
    run (fun i ->
        let rec scan j = j < n && (le i j || scan (j + 1)) in
        sub_later.(i) <- scan (i + 1));
    let discarded = Array.make n false in
    run (fun i ->
        if not sub_later.(i) then begin
          let rec scan j = j >= 0 && ((not sub_later.(j)) && le i j || scan (j - 1)) in
          discarded.(i) <- scan (i - 1)
        end);
    let out = ref [] in
    for i = n - 1 downto 0 do
      if not (sub_later.(i) || discarded.(i)) then out := arr.(i) :: !out
    done;
    !out
