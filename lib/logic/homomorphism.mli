(** Homomorphisms from a conjunction of atoms into a set of atoms.

    The target atoms are treated as {e frozen}: their variables behave like
    constants, and a source variable may be mapped to any target term. This
    is the standard device for CQ containment and for finding chase
    triggers. The mapping is a direct (non-triangular) map from source
    variables to target terms, so source and target variable names may
    overlap without capture. *)

type mapping = Term.t Symbol.Map.t

type target
(** Target atoms indexed by predicate. *)

val target_of_atoms : Atom.t list -> target
val target_size : target -> int

type source
(** The target-independent half of the search's atom-ordering heuristic,
    computed once per source body and reusable across searches against
    different targets (see {!source_of_atoms}). *)

val source_of_atoms : is_bound:(Symbol.t -> bool) -> Atom.t list -> source
(** Precompute ordering data for a source body. [is_bound] must hold exactly
    for the variables that the search's [init] mapping will bind; passing a
    [source] whose [is_bound] disagrees with [init] degrades the atom order
    but never affects soundness or completeness. *)

val find : ?source:source -> ?init:mapping -> Atom.t list -> target -> mapping option
(** First homomorphism extending [init], if any. Source atoms with constants
    must match target constants exactly. When [source] is given it must have
    been built from the same atom list. *)

val exists : ?source:source -> ?init:mapping -> Atom.t list -> target -> bool

val all : ?init:mapping -> Atom.t list -> target -> mapping list
(** All homomorphisms (distinct mappings of the source variables). *)

val iter : ?init:mapping -> (mapping -> unit) -> Atom.t list -> target -> unit

val apply : mapping -> Atom.t -> Atom.t
(** Replace each mapped variable by its image; unmapped variables are kept. *)

