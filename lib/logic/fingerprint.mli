(** Sound O(1)/O(preds) pre-filters for CQ containment.

    A fingerprint summarizes a CQ body: a 63-bit Bloom word over its
    predicate symbols, one over its body constants, the body size, and the
    sorted array of distinct predicates with atom counts. If
    [may_map ~sub ~sup] is false there is provably no homomorphism from the
    atoms of [sub] into the atoms of [sup]; if it is true a full search is
    still required. *)

type t

val of_body : Atom.t list -> t

val may_map : sub:t -> sup:t -> bool
(** Necessary condition for a homomorphism from [sub]'s atoms into [sup]'s
    atoms: predicate and constant Bloom words are subsets, and every distinct
    predicate of [sub] occurs in [sup]. *)

val pred_bits : t -> int
(** The raw 63-bit predicate Bloom word — usable as a bucket key. *)

val subset_bits : int -> int -> bool
(** [subset_bits b1 b2]: every bit of [b1] is set in [b2]. *)

val n_atoms : t -> int
