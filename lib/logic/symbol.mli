(** Interned identifiers.

    All predicate, variable and constant names are interned into integers so
    that comparisons and hashing along the hot paths (unification, joins,
    graph construction) are O(1). Interning is global to the process and
    thread-safe: {!intern} and {!fresh} take a process-wide mutex, so worker
    domains (the serving layer's scheduler, {!Parallel} tasks) may parse and
    rewrite concurrently. *)

type t = private int

val intern : string -> t
(** [intern s] returns the unique symbol for the spelling [s]. *)

val name : t -> string
(** [name sym] is the spelling that was interned. *)

val of_int : int -> t
(** The symbol whose intern index is the given integer — the inverse of the
    [(sym :> int)] coercion, used to decode columnar value codes
    ({!Tgd_db.Value.decode}). Raises [Invalid_argument] if no symbol with
    that index has been interned. *)

val fresh : string -> t
(** [fresh base] interns a new symbol spelled [base^"#"^n] for a process-wide
    counter [n]; the result is distinct from every previously interned
    symbol. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Table : Hashtbl.S with type key = t
