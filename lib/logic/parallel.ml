(* A minimal OCaml 5 Domain-based worker pool: a parallel for-loop with
   dynamic (work-stealing-by-counter) scheduling. Tasks must not mutate
   shared state except through [Atomic] (in particular they must not call
   [Symbol.intern] / [Symbol.fresh], whose tables are not thread-safe). *)

let env_domains () =
  match Sys.getenv_opt "TGDLIB_DOMAINS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)

let domain_count () =
  match env_domains () with
  | Some n -> n
  | None -> max 1 (min 8 (Domain.recommended_domain_count ()))

let sequential_for n f =
  for i = 0 to n - 1 do
    f i
  done

let parallel_for ?domains ~n f =
  let d = min n (match domains with Some d -> max 1 d | None -> domain_count ()) in
  if d <= 1 then sequential_for n f
  else begin
    let next = Atomic.make 0 in
    let failure : exn option Atomic.t = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get failure = None then begin
          (try f i with e -> ignore (Atomic.compare_and_set failure None (Some e)));
          loop ()
        end
      in
      loop ()
    in
    let spawned = Array.init (d - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    match Atomic.get failure with Some e -> raise e | None -> ()
  end
