(** Admission control for the network front end: a server-wide in-flight
    concurrency limit plus a per-tenant token-bucket quota, both checked
    {e before} a request reaches the worker pool. Rejections are typed so
    the protocol layer can shed with [overloaded] / [quota_exceeded]
    responses instead of stalling connections.

    Shedding is accounted in the attached telemetry under
    [serve.shed.overloaded] and [serve.shed.quota]; the admitted
    concurrency high-water mark under [serve.inflight.peak]. *)

type t

type outcome =
  | Admitted  (** an in-flight slot and a token were taken; {!release} later *)
  | Overloaded of int  (** server-wide limit hit; carries the in-flight count *)
  | Quota_exceeded of float
      (** the tenant's bucket is empty; carries seconds until the next token *)

val create :
  ?now:(unit -> float) ->
  ?rate:float ->
  ?burst:float ->
  ?max_inflight:int ->
  telemetry:Tgd_exec.Telemetry.t ->
  unit ->
  t
(** [now] is the clock (default [Unix.gettimeofday]; inject a virtual clock
    to make refill deterministic in tests). [rate] is tokens/second granted
    to each tenant (default [infinity] — no quota); [burst] the bucket
    capacity (default [max 1 rate]; every tenant starts with a full
    bucket). [max_inflight] bounds concurrently admitted requests across
    all tenants (default [0] — unlimited). Raises [Invalid_argument] on a
    non-positive [rate], a [burst < 1], or a negative [max_inflight]. *)

val admit : t -> tenant:string -> outcome
(** Try to admit one request for [tenant]. On [Admitted] the caller owns an
    in-flight slot and must {!release} it when the request completes (or is
    dropped). The overload check precedes the quota check, so a saturated
    server does not drain buckets. *)

val release : t -> unit
(** Return an in-flight slot taken by a successful {!admit}. Raises
    [Invalid_argument] if nothing is in flight (slot accounting bug). *)

val inflight : t -> int
(** Currently admitted, not yet released, requests. *)

val tokens : t -> tenant:string -> float
(** The tenant's current token balance after refill at [now ()] (the full
    [burst] for a tenant never seen; [infinity] when no quota is set).
    Observability/testing helper — does not consume anything. *)
