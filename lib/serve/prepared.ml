open Tgd_logic

type artifact =
  | Ucq of {
      ucq : Cq.ucq;
      plans : Tgd_db.Plan.t list;
    }
  | Datalog of Tgd_rewrite.Datalog_rw.result

let artifact_kind = function Ucq _ -> "ucq" | Datalog _ -> "datalog"

type entry = {
  ontology : string;
  epoch : int;
  canon : Canon.t;
  artifact : artifact;
  complete : bool;
  prepare_s : float;
}

(* Intrusive doubly-linked recency list: [head] is most recent, [tail] the
   eviction candidate. Sentinel-free; empty list is two [None]s. *)
type node = {
  key : string;
  entry : entry;
  mutable prev : node option;  (* towards head / more recent *)
  mutable next : node option;  (* towards tail / less recent *)
}

type t = {
  lock : Mutex.t;
  table : (string, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  cap : int;
  telemetry : Tgd_exec.Telemetry.t;
}

let key_hits = "serve.cache.hits"
let key_misses = "serve.cache.misses"
let key_evictions = "serve.cache.evictions"

let create ?(capacity = 1024) ~telemetry () =
  if capacity <= 0 then invalid_arg "Prepared.create: capacity must be positive";
  { lock = Mutex.create (); table = Hashtbl.create 64; head = None; tail = None;
    cap = capacity; telemetry }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let cache_key ~ontology ~epoch ~canon_key =
  ontology ^ "\x00" ^ string_of_int epoch ^ "\x00" ^ canon_key

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t ~ontology ~epoch ~canon =
  let key = cache_key ~ontology ~epoch ~canon_key:canon.Canon.key in
  let hit =
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | None -> None
        | Some node ->
          unlink t node;
          push_front t node;
          Some node.entry)
  in
  ignore
    (Tgd_exec.Telemetry.add t.telemetry (match hit with Some _ -> key_hits | None -> key_misses) 1);
  hit

let add t entry =
  let key =
    cache_key ~ontology:entry.ontology ~epoch:entry.epoch ~canon_key:entry.canon.Canon.key
  in
  let evicted =
    locked t (fun () ->
        (match Hashtbl.find_opt t.table key with
        | Some old ->
          unlink t old;
          Hashtbl.remove t.table key
        | None -> ());
        let node = { key; entry; prev = None; next = None } in
        Hashtbl.add t.table key node;
        push_front t node;
        let evicted = ref 0 in
        while Hashtbl.length t.table > t.cap do
          match t.tail with
          | None -> assert false
          | Some lru ->
            unlink t lru;
            Hashtbl.remove t.table lru.key;
            incr evicted
        done;
        !evicted)
  in
  if evicted > 0 then ignore (Tgd_exec.Telemetry.add t.telemetry key_evictions evicted)

let purge t ~ontology ~keep_epoch =
  locked t (fun () ->
      let stale =
        Hashtbl.fold
          (fun _ node acc ->
            if node.entry.ontology = ontology && node.entry.epoch < keep_epoch then node :: acc
            else acc)
          t.table []
      in
      List.iter
        (fun node ->
          unlink t node;
          Hashtbl.remove t.table node.key)
        stale;
      List.length stale)

let length t = locked t (fun () -> Hashtbl.length t.table)
let capacity t = t.cap
