(* Admission control for the network front end: a server-wide in-flight
   concurrency limit plus a per-tenant token bucket. Both checks happen
   before a request reaches the worker pool, so an overloaded server sheds
   with a typed response instead of queueing without bound, and one greedy
   tenant exhausts its own bucket without starving the others.

   The clock is injected ([now]) so refill behavior is exactly testable
   under a virtual clock; production uses [Unix.gettimeofday]. *)

type outcome =
  | Admitted
  | Overloaded of int  (* in-flight count at rejection *)
  | Quota_exceeded of float  (* seconds until the bucket next yields a token *)

type bucket = {
  mutable tokens : float;
  mutable last : float;  (* clock reading of the last refill *)
}

type t = {
  lock : Mutex.t;
  now : unit -> float;
  rate : float;  (* tokens/second granted to each tenant; +inf = no quota *)
  burst : float;  (* bucket capacity *)
  max_inflight : int;  (* 0 = unlimited *)
  mutable inflight : int;
  buckets : (string, bucket) Hashtbl.t;
  telemetry : Tgd_exec.Telemetry.t;
}

let key_shed_overloaded = "serve.shed.overloaded"
let key_shed_quota = "serve.shed.quota"
let key_inflight_peak = "serve.inflight.peak"

let create ?(now = Unix.gettimeofday) ?(rate = infinity) ?burst ?(max_inflight = 0) ~telemetry
    () =
  if rate <= 0.0 then invalid_arg "Admission.create: rate must be positive";
  if max_inflight < 0 then invalid_arg "Admission.create: max_inflight must be >= 0";
  let burst =
    match burst with
    | Some b when b >= 1.0 -> b
    | Some _ -> invalid_arg "Admission.create: burst must be >= 1"
    | None -> if rate = infinity then infinity else Float.max 1.0 rate
  in
  {
    lock = Mutex.create ();
    now;
    rate;
    burst;
    max_inflight;
    inflight = 0;
    buckets = Hashtbl.create 8;
    telemetry;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let refill t b now =
  if now > b.last then begin
    b.tokens <- Float.min t.burst (b.tokens +. ((now -. b.last) *. t.rate));
    b.last <- now
  end

(* Take an in-flight slot and a token, or report why not. The overload
   check runs first: a saturated server sheds before it spends tokens, so
   quota accounting reflects work actually admitted. *)
let admit t ~tenant =
  let outcome =
    locked t (fun () ->
        if t.max_inflight > 0 && t.inflight >= t.max_inflight then Overloaded t.inflight
        else if t.rate = infinity then begin
          t.inflight <- t.inflight + 1;
          Admitted
        end
        else begin
          let b =
            match Hashtbl.find_opt t.buckets tenant with
            | Some b -> b
            | None ->
              let b = { tokens = t.burst; last = t.now () } in
              Hashtbl.add t.buckets tenant b;
              b
          in
          refill t b (t.now ());
          if b.tokens >= 1.0 then begin
            b.tokens <- b.tokens -. 1.0;
            t.inflight <- t.inflight + 1;
            Admitted
          end
          else Quota_exceeded ((1.0 -. b.tokens) /. t.rate)
        end)
  in
  (match outcome with
  | Admitted ->
    Tgd_exec.Telemetry.gauge t.telemetry key_inflight_peak (locked t (fun () -> t.inflight))
  | Overloaded _ -> ignore (Tgd_exec.Telemetry.add t.telemetry key_shed_overloaded 1)
  | Quota_exceeded _ -> ignore (Tgd_exec.Telemetry.add t.telemetry key_shed_quota 1));
  outcome

let release t =
  locked t (fun () ->
      if t.inflight <= 0 then invalid_arg "Admission.release: nothing in flight";
      t.inflight <- t.inflight - 1)

let inflight t = locked t (fun () -> t.inflight)

let tokens t ~tenant =
  locked t (fun () ->
      if t.rate = infinity then infinity
      else
        match Hashtbl.find_opt t.buckets tenant with
        | None -> t.burst
        | Some b ->
          refill t b (t.now ());
          b.tokens)
