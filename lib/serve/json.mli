(** A minimal JSON codec for the serving protocol.

    The repository deliberately carries no third-party JSON dependency; the
    wire format is small (flat request/response objects, string and number
    fields, one level of arrays), so a ~150-line recursive-descent parser
    is the whole cost. Numbers without [.], [e] or [E] parse as [Int];
    everything else numeric as [Float]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Errors carry a 0-based byte offset. Trailing whitespace is allowed,
    trailing garbage is not. *)

val to_string : t -> string
(** Compact rendering (no added whitespace), suitable for JSONL: the output
    never contains a raw newline. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing field or non-object. *)

val string_field : string -> t -> string option
val int_field : string -> t -> int option
val obj_field : string -> t -> t option
