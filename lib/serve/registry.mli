(** Named (ontology, instance) pairs with monotone epochs — the server's
    mutable root state.

    Every mutation produces a {e new} immutable entry and swaps it in under
    the registry lock; the instance inside an entry is sealed
    ({!Tgd_db.Instance.seal}) and never mutated afterwards, so any number
    of worker domains can evaluate against a snapshotted entry while the
    control loop installs a successor.

    Epochs come in two grades. The {b full epoch} bumps only on ontology
    edits ({!register}): it is the prepared-cache key component, because a
    UCQ rewriting depends on the TGDs alone. Data-only mutations
    ({!add_facts}, the CSV loaders) bump the cheap {b delta epoch}
    instead — prepared rewritings stay warm across them, the copy-on-write
    instance shares its frozen columnar blocks with the predecessor
    (re-sealing extends them, {!Tgd_db.Columnar.extend}), and a live chase
    {b materialization} is maintained incrementally by
    {!Tgd_chase.Delta_chase} instead of cold-starting.

    Both epochs are monotone per name for the lifetime of the registry —
    re-registering a name continues its sequences rather than restarting
    them, so a cache entry can never be resurrected by a drop/re-add
    cycle. *)

open Tgd_logic

type materialization = {
  model : Tgd_db.Instance.t;  (** sealed universal model of the entry *)
  floor : int;  (** null floor for the next delta application *)
  complete : bool;  (** chase reached its fixpoint within budget *)
}

type entry = {
  name : string;
  epoch : int;  (** monotone per name; bumped by ontology edits only *)
  delta_epoch : int;  (** monotone per name; bumped by every data mutation *)
  program : Program.t;
  instance : Tgd_db.Instance.t;  (** sealed: safe for concurrent readers *)
  materialization : materialization option;
      (** chase materialization kept alive across {!add_facts} *)
}

type mutation = {
  entry : entry;
  added : int;  (** batch facts that were new to the instance *)
  delta : Tgd_chase.Delta_chase.stats option;
      (** delta-apply statistics when a materialization was maintained *)
}

type t

val create : ?partitions:int -> unit -> t
(** With [partitions], every installed instance is additionally
    hash-partitioned into that many shards ({!Tgd_db.Instance.seal}) so the
    server's parallel evaluator can split scans into morsels. *)

val register : t -> name:string -> ?facts:Tgd_db.Instance.t -> Program.t -> entry
(** Install (or replace) an ontology under [name]: a full-epoch bump. The
    optional initial facts are copied, sealed and owned by the entry; any
    previous materialization is dropped (it belonged to the old program). *)

val restore :
  t ->
  name:string ->
  epoch:int ->
  delta_epoch:int ->
  ?materialization:materialization ->
  Program.t ->
  Tgd_db.Instance.t ->
  entry
(** Durable-store recovery: install an entry {e at} the given epochs
    (snapshot values) instead of bumping, adopting the instance (it is
    sealed here, not copied). The per-name epoch counters catch up to at
    least these values, so later mutations continue the pre-crash
    sequences monotonically. *)

val add_facts :
  ?gov:Tgd_exec.Governor.t ->
  t ->
  name:string ->
  Tgd_db.Instance.fact list ->
  (mutation, string) result
(** Append a batch of facts to [name]'s instance (copy-on-write; delta
    epoch bump only) and, when a materialization is alive, extend it with
    {!Tgd_chase.Delta_chase.apply} under [gov] instead of re-chasing. *)

val materialize :
  ?gov:Tgd_exec.Governor.t -> t -> name:string -> (entry * Tgd_chase.Chase.stats, string) result
(** Build (or rebuild) the chase materialization for [name]'s current
    entry. A cache fill, not a mutation: neither epoch bumps, and a racing
    data mutation wins over the model computed here. *)

val load_csv_string :
  ?gov:Tgd_exec.Governor.t -> t -> name:string -> string -> (mutation, string) result
(** Merge CSV facts into [name]'s instance through {!add_facts}. *)

val load_csv_file :
  ?gov:Tgd_exec.Governor.t -> t -> name:string -> string -> (mutation, string) result

val find : t -> string -> entry option
(** Snapshot of the current entry; stable even while mutations proceed. *)

val list : t -> (string * int * int * int * int) list
(** [(name, epoch, delta_epoch, rules, facts)] per registered ontology,
    sorted. *)
