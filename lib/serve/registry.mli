(** Named (ontology, instance) pairs with monotone epochs — the server's
    mutable root state.

    Every mutation (registering or replacing an ontology, merging CSV
    facts) produces a {e new} immutable entry with a bumped epoch and swaps
    it in under the registry lock; the instance inside an entry is sealed
    ({!Tgd_db.Instance.build_indexes}) and never mutated afterwards, so any
    number of worker domains can evaluate against a snapshotted entry while
    the control loop installs a successor. Prepared-query cache keys embed
    the epoch, so a bump invalidates every dependent cached artifact
    without any cross-structure bookkeeping.

    Epochs are monotone per name for the lifetime of the registry —
    re-registering a name continues its epoch sequence rather than
    restarting it, so a cache entry can never be resurrected by a
    drop/re-add cycle. *)

open Tgd_logic

type entry = {
  name : string;
  epoch : int;  (** monotone per name; bumped by every mutation *)
  program : Program.t;
  instance : Tgd_db.Instance.t;  (** sealed: safe for concurrent readers *)
}

type t

val create : ?partitions:int -> unit -> t
(** With [partitions], every installed instance is additionally
    hash-partitioned into that many shards ({!Tgd_db.Instance.seal}) so the
    server's parallel evaluator can split scans into morsels. *)

val register : t -> name:string -> ?facts:Tgd_db.Instance.t -> Program.t -> entry
(** Install (or replace) an ontology under [name]. The optional initial
    facts are copied, sealed and owned by the entry. *)

val load_csv_string : t -> name:string -> string -> (entry, string) result
(** Merge CSV facts into [name]'s instance (copy-on-write: readers of the
    previous entry are unaffected) and bump the epoch. *)

val load_csv_file : t -> name:string -> string -> (entry, string) result

val find : t -> string -> entry option
(** Snapshot of the current entry; stable even while mutations proceed. *)

val list : t -> (string * int * int * int) list
(** [(name, epoch, rules, facts)] per registered ontology, sorted. *)
