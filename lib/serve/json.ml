type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of int * string

let fail pos msg = raise (Parse_error (pos, msg))

let parse_exn src =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail !pos (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub src !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail !pos ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail !pos "unterminated string"
      else
        match src.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail !pos "unterminated escape"
           else
             match src.[!pos] with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'u' ->
               if !pos + 4 >= n then fail !pos "truncated \\u escape";
               let hex = String.sub src (!pos + 1) 4 in
               let code =
                 try int_of_string ("0x" ^ hex) with _ -> fail !pos "bad \\u escape"
               in
               (* UTF-8 encode the code point (surrogate pairs unsupported:
                  the protocol is ASCII-heavy; lone surrogates encode as-is). *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end;
               pos := !pos + 4
             | c -> fail !pos (Printf.sprintf "bad escape '\\%c'" c));
          advance ();
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let s = String.sub src start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail start ("bad number " ^ s)
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> fail start ("bad number " ^ s)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let parse_field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ parse_field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := parse_field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail !pos "trailing garbage";
  v

let parse src =
  match parse_exn src with
  | v -> Ok v
  | exception Parse_error (pos, msg) -> Error (Printf.sprintf "at offset %d: %s" pos msg)

let escape = Tgd_exec.Telemetry.json_string

let rec to_string = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Float f ->
    (* %.17g round-trips doubles; strip to something compact but exact. *)
    let s = Printf.sprintf "%.12g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'n' || c = 'i') s then s else s ^ ".0"
  | String s -> escape s
  | List items -> "[" ^ String.concat "," (List.map to_string items) ^ "]"
  | Obj fields ->
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> escape k ^ ":" ^ to_string v) fields)
    ^ "}"

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let string_field key j = match member key j with Some (String s) -> Some s | _ -> None
let int_field key j = match member key j with Some (Int i) -> Some i | _ -> None
let obj_field key j = member key j
