open Tgd_logic

type entry = {
  name : string;
  epoch : int;
  program : Program.t;
  instance : Tgd_db.Instance.t;
}

type t = {
  lock : Mutex.t;
  entries : (string, entry) Hashtbl.t;
  (* Highest epoch ever used per name: survives re-registration so epochs
     stay monotone over the registry's lifetime. *)
  last_epoch : (string, int) Hashtbl.t;
  partitions : int option;
}

let create ?partitions () =
  {
    lock = Mutex.create ();
    entries = Hashtbl.create 8;
    last_epoch = Hashtbl.create 8;
    partitions;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let next_epoch t name =
  let e = 1 + Option.value ~default:0 (Hashtbl.find_opt t.last_epoch name) in
  Hashtbl.replace t.last_epoch name e;
  e

let install t name program instance =
  Tgd_db.Instance.seal ?partitions:t.partitions instance;
  locked t (fun () ->
      let entry = { name; epoch = next_epoch t name; program; instance } in
      Hashtbl.replace t.entries name entry;
      entry)

let register t ~name ?facts program =
  let instance =
    match facts with
    | None -> Tgd_db.Instance.create ()
    | Some inst -> Tgd_db.Instance.copy inst
  in
  install t name program instance

let find t name = locked t (fun () -> Hashtbl.find_opt t.entries name)

let merge_csv t ~name load =
  match find t name with
  | None -> Error (Printf.sprintf "unknown ontology %S" name)
  | Some entry -> (
    match load () with
    | Error msg -> Error msg
    | Ok extra ->
      (* Copy-on-write: in-flight readers keep the old sealed instance. *)
      let merged = Tgd_db.Instance.copy entry.instance in
      Tgd_db.Instance.iter_facts
        (fun (pred, tup) -> ignore (Tgd_db.Instance.add_fact merged pred tup))
        extra;
      Ok (install t name entry.program merged))

let load_csv_string t ~name src = merge_csv t ~name (fun () -> Tgd_db.Csv_io.load_string src)
let load_csv_file t ~name path = merge_csv t ~name (fun () -> Tgd_db.Csv_io.load_file path)

let list t =
  locked t (fun () ->
      Hashtbl.fold
        (fun name e acc ->
          (name, e.epoch, Program.size e.program, Tgd_db.Instance.cardinality e.instance) :: acc)
        t.entries [])
  |> List.sort compare
