open Tgd_logic

type materialization = {
  model : Tgd_db.Instance.t;
  floor : int;
  complete : bool;
}

type entry = {
  name : string;
  epoch : int;
  delta_epoch : int;
  program : Program.t;
  instance : Tgd_db.Instance.t;
  materialization : materialization option;
}

type mutation = {
  entry : entry;
  added : int;
  delta : Tgd_chase.Delta_chase.stats option;
}

type t = {
  lock : Mutex.t;
  entries : (string, entry) Hashtbl.t;
  (* Highest epoch ever used per name: survives re-registration so epochs
     stay monotone over the registry's lifetime. *)
  last_epoch : (string, int) Hashtbl.t;
  (* Highest delta epoch per name, monotone the same way. *)
  last_delta : (string, int) Hashtbl.t;
  partitions : int option;
}

let create ?partitions () =
  {
    lock = Mutex.create ();
    entries = Hashtbl.create 8;
    last_epoch = Hashtbl.create 8;
    last_delta = Hashtbl.create 8;
    partitions;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let next_counter tbl name =
  let e = 1 + Option.value ~default:0 (Hashtbl.find_opt tbl name) in
  Hashtbl.replace tbl name e;
  e

let install t name program instance =
  Tgd_db.Instance.seal ?partitions:t.partitions instance;
  locked t (fun () ->
      let entry =
        {
          name;
          epoch = next_counter t.last_epoch name;
          delta_epoch = next_counter t.last_delta name;
          program;
          instance;
          materialization = None;
        }
      in
      Hashtbl.replace t.entries name entry;
      entry)

(* A data-only mutation: the full epoch — the prepared-cache key — stays
   put, because a rewriting depends only on the TGDs; only the delta epoch
   bumps. *)
let install_delta t (prev : entry) instance materialization =
  Tgd_db.Instance.seal ?partitions:t.partitions instance;
  (match materialization with
  | Some m -> Tgd_db.Instance.seal ?partitions:t.partitions m.model
  | None -> ());
  locked t (fun () ->
      let entry =
        { prev with delta_epoch = next_counter t.last_delta prev.name; instance; materialization }
      in
      Hashtbl.replace t.entries prev.name entry;
      entry)

let register t ~name ?facts program =
  let instance =
    match facts with
    | None -> Tgd_db.Instance.create ()
    | Some inst -> Tgd_db.Instance.copy inst
  in
  install t name program instance

let restore t ~name ~epoch ~delta_epoch ?materialization program instance =
  Tgd_db.Instance.seal ?partitions:t.partitions instance;
  (match materialization with
  | Some m -> Tgd_db.Instance.seal ?partitions:t.partitions m.model
  | None -> ());
  locked t (fun () ->
      (* Epoch counters resume at least where the snapshot left them, so a
         post-recovery register/mutation continues the pre-crash sequence
         instead of restarting it (cache keys must stay unresurrectable). *)
      let catch_up tbl v =
        if v > Option.value ~default:0 (Hashtbl.find_opt tbl name) then
          Hashtbl.replace tbl name v
      in
      catch_up t.last_epoch epoch;
      catch_up t.last_delta delta_epoch;
      let entry = { name; epoch; delta_epoch; program; instance; materialization } in
      Hashtbl.replace t.entries name entry;
      entry)

let find t name = locked t (fun () -> Hashtbl.find_opt t.entries name)

let add_facts ?gov t ~name facts =
  match find t name with
  | None -> Error (Printf.sprintf "unknown ontology %S" name)
  | Some entry ->
    (* Copy-on-write: in-flight readers keep the old sealed instance, and
       the copy shares the frozen columnar blocks, so re-sealing after the
       append extends them instead of re-encoding. *)
    let merged = Tgd_db.Instance.copy entry.instance in
    let added =
      List.filter (fun (pred, tup) -> Tgd_db.Instance.add_fact merged pred tup) facts
    in
    let materialization, delta =
      match entry.materialization with
      | None -> (None, None)
      | Some m ->
        (* The chase materialization stays alive: apply the delta to a
           copy-on-write extension of the model instead of cold-starting. *)
        let model = Tgd_db.Instance.copy m.model in
        let stats =
          Tgd_chase.Delta_chase.apply ?gov ~null_floor:m.floor entry.program model added
        in
        let complete =
          m.complete
          && stats.Tgd_chase.Delta_chase.consistent
          && stats.Tgd_chase.Delta_chase.outcome = Tgd_chase.Chase.Terminated
        in
        ( Some { model; floor = m.floor + stats.Tgd_chase.Delta_chase.nulls; complete },
          Some stats )
    in
    Ok { entry = install_delta t entry merged materialization; added = List.length added; delta }

let materialize ?gov t ~name =
  match find t name with
  | None -> Error (Printf.sprintf "unknown ontology %S" name)
  | Some entry ->
    let model = Tgd_db.Instance.copy entry.instance in
    let stats = Tgd_chase.Chase.run ?gov entry.program model in
    let m =
      {
        model;
        floor = Tgd_db.Instance.max_null model;
        complete = stats.Tgd_chase.Chase.outcome = Tgd_chase.Chase.Terminated;
      }
    in
    Tgd_db.Instance.seal ?partitions:t.partitions model;
    let entry =
      locked t (fun () ->
          (* A cache fill, not a mutation: both epochs stay put. Re-read the
             current entry under the lock so a racing mutation is not
             clobbered — if one slipped in, its materialization (or absence)
             wins and this model is dropped. *)
          match Hashtbl.find_opt t.entries name with
          | Some cur when cur.epoch = entry.epoch && cur.delta_epoch = entry.delta_epoch ->
            let e = { cur with materialization = Some m } in
            Hashtbl.replace t.entries name e;
            e
          | Some cur -> cur
          | None -> entry)
    in
    Ok (entry, stats)

let merge_csv ?gov t ~name load =
  match find t name with
  | None -> Error (Printf.sprintf "unknown ontology %S" name)
  | Some _ -> (
    match load () with
    | Error msg -> Error msg
    | Ok extra -> add_facts ?gov t ~name (Tgd_db.Instance.facts extra))

let load_csv_string ?gov t ~name src =
  merge_csv ?gov t ~name (fun () -> Tgd_db.Csv_io.load_string src)

let load_csv_file ?gov t ~name path =
  merge_csv ?gov t ~name (fun () -> Tgd_db.Csv_io.load_file path)

let list t =
  locked t (fun () ->
      Hashtbl.fold
        (fun name e acc ->
          ( name,
            e.epoch,
            e.delta_epoch,
            Program.size e.program,
            Tgd_db.Instance.cardinality e.instance )
          :: acc)
        t.entries [])
  |> List.sort compare
