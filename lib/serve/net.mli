(** The multi-client network front end.

    A single event-loop thread owns any number of Unix-domain / TCP
    listeners and a connection table with per-connection read buffers and
    incremental JSONL framing; [prepare]/[execute] requests are admitted
    through {!Admission} (per-tenant token buckets + a server-wide
    in-flight limit, shedding with typed [overloaded] /
    [quota_exceeded] responses) and executed on a shared
    {!Tgd_exec.Pool} of worker domains, so requests from different
    connections interleave. Worker domains never touch a socket: a
    finished job pushes its pre-serialized response line onto a
    completion queue and pokes a self-pipe.

    {b Ordering.} Responses on one connection are written strictly in the
    order the requests arrived on that connection; across connections
    there is no ordering. Mutations ([register-ontology], [load-csv],
    [add-facts], [materialize], [snapshot]), [stats] and [shutdown] run
    inline on the loop thread behind a fence — every in-flight pool query
    is answered first — mirroring the single-stream {!Server.run}
    semantics, including fsync-before-ack for WAL'd mutations. Queries
    arriving while a fence is pending are parked and dispatched after it;
    queries arriving after [shutdown] are shed with [overloaded].

    {b Faults.} A malformed line gets a typed [bad_request] response and
    the connection lives on (framing is line-based); a line exceeding
    [max_line] gets one [bad_request] and a connection drop (framing is
    lost); a mid-request disconnect discards the connection's pending
    responses without disturbing other connections; a half-closed
    (shutdown-for-write) client still receives every response it is owed
    before the connection closes. The loop itself never raises on
    connection-level I/O errors. *)

type addr =
  | Unix_path of string  (** a Unix-domain socket path *)
  | Tcp of string * int  (** host (name or dotted quad) and port; port [0] picks one *)

val addr_to_string : addr -> string
(** ["unix:PATH"] or ["tcp:HOST:PORT"] — the same syntax [--listen] parses. *)

type listener

val listen : ?backlog:int -> addr -> listener
(** Bind and listen. A Unix path is unlinked first if it exists; a TCP
    port of [0] binds an ephemeral port (read it back with
    {!listener_addr}). Raises [Unix.Unix_error] on bind failure. *)

val listener_addr : listener -> addr
(** The bound address, with the real port filled in. *)

val close_listener : listener -> unit
(** Close the socket (and unlink a Unix path). {!serve} does this itself
    on shutdown; call it only for listeners never passed to {!serve}. *)

val serve :
  ?workers:int ->
  ?queue_bound:int ->
  ?max_clients:int ->
  ?max_line:int ->
  ?rate:float ->
  ?burst:float ->
  ?max_inflight:int ->
  ?now:(unit -> float) ->
  Server.t ->
  listeners:listener list ->
  unit
(** Run the event loop until a [shutdown] request: accept clients on every
    listener, serve them concurrently, then flush and close everything
    (listeners included) and join the worker pool.

    [workers] (default {!Tgd_exec.Pool.default_workers}) sizes the request
    pool; [queue_bound] (default 64) plus [workers] is the default
    server-wide [max_inflight] admission limit. [max_clients] (default
    1024) bounds concurrent connections — an accept beyond it is answered
    with one [overloaded] line and closed. [max_line] (default 8 MiB)
    bounds a single request line. [rate]/[burst] enable per-tenant
    token-bucket quotas (default: no quota); a request's tenant is its
    ["tenant"] field, or ["default"]. [now] injects the quota clock for
    tests.

    Telemetry (on the server's sink): [serve.net.accepted] /
    [.rejected] / [.closed] / [.lines] / [.oversized] counters,
    [serve.net.connections.peak], and from admission
    [serve.shed.overloaded] / [serve.shed.quota] /
    [serve.inflight.peak]. *)
