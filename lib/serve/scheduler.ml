type reject =
  [ `Overloaded of int
  | `Closed ]

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  idle : Condition.t;
  queue : (unit -> unit) Queue.t;
  bound : int;
  mutable closed : bool;
  mutable running : int;
  mutable domains : unit Domain.t list;
  telemetry : Tgd_exec.Telemetry.t;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let worker t () =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.nonempty t.lock
    done;
    if Queue.is_empty t.queue then begin
      (* closed and drained *)
      Mutex.unlock t.lock;
      ()
    end
    else begin
      let job = Queue.pop t.queue in
      t.running <- t.running + 1;
      Mutex.unlock t.lock;
      (try job ()
       with _ -> ignore (Tgd_exec.Telemetry.add t.telemetry "serve.jobs.failed" 1));
      locked t (fun () ->
          t.running <- t.running - 1;
          if t.running = 0 && Queue.is_empty t.queue then Condition.broadcast t.idle);
      loop ()
    end
  in
  loop ()

let create ?workers ?(queue_bound = 64) ~telemetry () =
  if queue_bound <= 0 then invalid_arg "Scheduler.create: queue_bound must be positive";
  let workers =
    match workers with
    | Some w when w > 0 -> w
    | Some _ -> invalid_arg "Scheduler.create: workers must be positive"
    | None -> Tgd_logic.Parallel.domain_count ()
  in
  let t =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      bound = queue_bound;
      closed = false;
      running = 0;
      domains = [];
      telemetry;
    }
  in
  t.domains <- List.init workers (fun _ -> Domain.spawn (worker t));
  t

let submit t job =
  let verdict =
    locked t (fun () ->
        if t.closed then Error `Closed
        else if Queue.length t.queue >= t.bound then Error (`Overloaded (Queue.length t.queue))
        else begin
          Queue.push job t.queue;
          Condition.signal t.nonempty;
          Ok (Queue.length t.queue)
        end)
  in
  match verdict with
  | Ok depth ->
    ignore (Tgd_exec.Telemetry.add t.telemetry "serve.jobs" 1);
    Tgd_exec.Telemetry.gauge t.telemetry "serve.queue.peak" depth;
    Ok ()
  | Error `Closed -> Error `Closed
  | Error (`Overloaded d) ->
    ignore (Tgd_exec.Telemetry.add t.telemetry "serve.overloaded" 1);
    Error (`Overloaded d)

let drain t =
  locked t (fun () ->
      while not (Queue.is_empty t.queue && t.running = 0) do
        Condition.wait t.idle t.lock
      done)

let shutdown t =
  let doms =
    locked t (fun () ->
        if t.closed then []
        else begin
          t.closed <- true;
          Condition.broadcast t.nonempty;
          let doms = t.domains in
          t.domains <- [];
          doms
        end)
  in
  List.iter Domain.join doms

let queue_depth t = locked t (fun () -> Queue.length t.queue)
let workers t = locked t (fun () -> List.length t.domains)
