(* A thin admission-control wrapper over the shared Domain pool
   (Tgd_exec.Pool): the pool owns the queue and the worker domains, this
   layer owns the serving telemetry (admission, shedding, failure
   accounting). *)

type reject =
  [ `Overloaded of int
  | `Closed ]

type t = {
  pool : Tgd_exec.Pool.t;
  telemetry : Tgd_exec.Telemetry.t;
}

let create ?workers ?(queue_bound = 64) ~telemetry () =
  if queue_bound <= 0 then invalid_arg "Scheduler.create: queue_bound must be positive";
  let workers =
    match workers with
    | Some w when w > 0 -> w
    | Some _ -> invalid_arg "Scheduler.create: workers must be positive"
    | None -> Tgd_logic.Parallel.domain_count ()
  in
  { pool = Tgd_exec.Pool.create ~workers ~queue_bound (); telemetry }

let submit t job =
  (* The pool contains raising jobs but does not account for them; wrap the
     thunk so a failed request is charged before the exception is dropped. *)
  let guarded () =
    try job () with _ -> ignore (Tgd_exec.Telemetry.add t.telemetry "serve.jobs.failed" 1)
  in
  match Tgd_exec.Pool.submit t.pool guarded with
  | Ok depth ->
    ignore (Tgd_exec.Telemetry.add t.telemetry "serve.jobs" 1);
    Tgd_exec.Telemetry.gauge t.telemetry "serve.queue.peak" depth;
    Ok ()
  | Error `Closed -> Error `Closed
  | Error (`Overloaded d) ->
    ignore (Tgd_exec.Telemetry.add t.telemetry "serve.overloaded" 1);
    Error (`Overloaded d)

let drain t = Tgd_exec.Pool.drain t.pool
let shutdown t = Tgd_exec.Pool.shutdown t.pool
let queue_depth t = Tgd_exec.Pool.queue_depth t.pool
let workers t = Tgd_exec.Pool.size t.pool
