open Tgd_logic

type t = {
  cq : Cq.t;
  key : string;
  hash : int;
  exact : bool;
}

let max_exact_existentials = 8

(* Unambiguous renderings: constants are length-prefixed (a constant spelled
   "v3" can never collide with variable id 3), variables render by their
   canonical id. *)
let render_name s = string_of_int (String.length s) ^ ":" ^ s

let render_term assign t =
  match t with
  | Term.Const c -> "c" ^ render_name (Symbol.name c)
  | Term.Var v -> (
    match Symbol.Table.find_opt assign v with
    | Some id -> "v" ^ string_of_int id
    | None -> "?")

let render_atom assign (a : Atom.t) =
  "p" ^ render_name (Symbol.name a.Atom.pred) ^ "("
  ^ String.concat "," (Array.to_list (Array.map (render_term assign) a.Atom.args))
  ^ ")"

let render_body assign body =
  String.concat ";" (List.sort_uniq compare (List.map (render_atom assign) body))

(* Exhaustive lexicographic-minimum labeling of the existential variables.
   The answer variables are pre-assigned (answer-tuple order is
   significant), so only the existential order is searched: |E|! leaves,
   bounded by [max_exact_existentials]. *)
let search_exact assign next_id evars body =
  let best : (string * Symbol.t list) option ref = ref None in
  let rec go order_rev remaining =
    if Symbol.Set.is_empty remaining then begin
      let rendered = render_body assign body in
      match !best with
      | Some (b, _) when b <= rendered -> ()
      | _ -> best := Some (rendered, List.rev order_rev)
    end
    else
      Symbol.Set.iter
        (fun v ->
          Symbol.Table.replace assign v !next_id;
          incr next_id;
          go (v :: order_rev) (Symbol.Set.remove v remaining);
          decr next_id;
          Symbol.Table.remove assign v)
        remaining
  in
  go [] (Symbol.Set.of_list evars);
  match !best with
  | Some (_, order) -> order
  | None -> [] (* no existential variables *)

(* Greedy fallback beyond the exact bound: iterated color refinement, then
   repeatedly assign the next id to the unassigned variable with the least
   (occurrence profile, color). Deterministic; invariant under renaming
   except when truly tied profiles hide an asymmetry. *)
let search_greedy assign next_id evars body =
  let profile v =
    body
    |> List.filter (fun (a : Atom.t) -> Symbol.Set.mem v (Atom.vars a))
    |> List.map (fun (a : Atom.t) ->
           let args =
             Array.to_list
               (Array.map
                  (fun t ->
                    match t with
                    | Term.Var w when Symbol.equal w v -> "self"
                    | t -> render_term assign t)
                  a.Atom.args)
           in
           "p" ^ render_name (Symbol.name a.Atom.pred) ^ "(" ^ String.concat "," args ^ ")")
    |> List.sort compare |> String.concat ";"
  in
  let colors = Symbol.Table.create 16 in
  List.iter (fun v -> Symbol.Table.replace colors v (profile v)) evars;
  for _round = 1 to 3 do
    let next_colors =
      List.map
        (fun v ->
          let neighbor_colors =
            body
            |> List.filter (fun (a : Atom.t) -> Symbol.Set.mem v (Atom.vars a))
            |> List.concat_map (fun (a : Atom.t) ->
                   Symbol.Set.elements (Atom.vars a)
                   |> List.filter_map (fun w ->
                          if Symbol.equal w v then None
                          else Symbol.Table.find_opt colors w))
            |> List.sort compare
          in
          (v, Symbol.Table.find colors v ^ "|" ^ String.concat "," neighbor_colors))
        evars
    in
    List.iter (fun (v, c) -> Symbol.Table.replace colors v c) next_colors
  done;
  let remaining = ref (Symbol.Set.of_list evars) in
  let order = ref [] in
  while not (Symbol.Set.is_empty !remaining) do
    let candidates =
      Symbol.Set.elements !remaining
      |> List.map (fun v -> ((profile v, Symbol.Table.find colors v), v))
      |> List.sort compare
    in
    let _, v = List.hd candidates in
    Symbol.Table.replace assign v !next_id;
    incr next_id;
    order := v :: !order;
    remaining := Symbol.Set.remove v !remaining
  done;
  List.rev !order

let of_cq (q : Cq.t) =
  let assign = Symbol.Table.create 16 in
  let next_id = ref 0 in
  (* Answer variables first, in answer-tuple order: forced, no search. *)
  List.iter
    (fun t ->
      match t with
      | Term.Var v when not (Symbol.Table.mem assign v) ->
        Symbol.Table.replace assign v !next_id;
        incr next_id
      | _ -> ())
    q.Cq.answer;
  let evars = Symbol.Set.elements (Cq.existential_vars q) in
  let exact = List.length evars <= max_exact_existentials in
  let order =
    if exact then search_exact assign next_id evars q.Cq.body
    else search_greedy assign next_id evars q.Cq.body
  in
  (* Re-apply the winning order (search_exact backtracked it away). *)
  List.iter
    (fun v ->
      if not (Symbol.Table.mem assign v) then begin
        Symbol.Table.replace assign v !next_id;
        incr next_id
      end)
    order;
  let key =
    "a("
    ^ String.concat "," (List.map (render_term assign) q.Cq.answer)
    ^ ")|" ^ render_body assign q.Cq.body
  in
  let rename t =
    match t with
    | Term.Const _ -> t
    | Term.Var v -> Term.Var (Symbol.intern (Printf.sprintf "V%d" (Symbol.Table.find assign v)))
  in
  let body =
    List.map (Atom.apply rename) q.Cq.body |> List.sort_uniq Atom.compare
  in
  let cq = Cq.make ~name:q.Cq.name ~answer:(List.map rename q.Cq.answer) ~body in
  { cq; key; hash = Hashtbl.hash key; exact }

let equal t1 t2 = String.equal t1.key t2.key
let pp ppf t = Format.fprintf ppf "%s" t.key
