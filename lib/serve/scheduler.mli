(** A Domain-based worker pool with admission control — the serving
    layer's executor.

    Requests are enqueued as thunks into a bounded queue consumed by a
    fixed set of worker domains. When the queue is full, {!submit} rejects
    with [`Overloaded] immediately instead of queuing without bound: under
    overload the server sheds typed errors at enqueue time and keeps
    latency bounded for admitted requests, rather than stalling every
    client behind an ever-growing backlog.

    Jobs run at most once, on exactly one worker; a raising job is
    contained (the exception is swallowed after charging
    [serve.jobs.failed]) so one bad request can never take a worker down.
    Jobs must do their own response writing/synchronization.

    The queue and the worker domains themselves live in the shared
    {!Tgd_exec.Pool}; this layer adds the serving telemetry (admission,
    shedding, failure accounting) on top. *)

type t

type reject =
  [ `Overloaded of int  (** queue depth at rejection time *)
  | `Closed ]

val create : ?workers:int -> ?queue_bound:int -> telemetry:Tgd_exec.Telemetry.t -> unit -> t
(** [workers] defaults to {!Tgd_logic.Parallel.domain_count} (so it honours
    [TGDLIB_DOMAINS]); [queue_bound] to 64. The workers are spawned
    eagerly and live until {!shutdown}. *)

val submit : t -> (unit -> unit) -> (unit, reject) result
(** Enqueue a job. Charges [serve.jobs] on admission, [serve.overloaded]
    on rejection, and gauges [serve.queue.peak]. *)

val drain : t -> unit
(** Block until the queue is empty and no job is running. New submissions
    are still accepted afterwards (used by tests and the stats op to
    quiesce). *)

val shutdown : t -> unit
(** Stop accepting work, let already-admitted jobs finish, join the
    workers. Idempotent. *)

val queue_depth : t -> int
val workers : t -> int
