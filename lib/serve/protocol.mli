(** The JSONL wire protocol of [obda serve].

    One request per line on the way in, one response per line on the way
    out. Every request is a JSON object with an ["op"] field and an
    optional ["id"] (echoed verbatim in the response, so clients may
    pipeline: responses to concurrently executing requests can arrive out
    of order). Ontology/CSV payloads are passed inline (["source"]) or by
    path (["file"]).

    {v
      {"op":"register-ontology","id":1,"name":"uni","source":"person(X) -> ..."}
      {"op":"load-csv","id":2,"name":"uni","file":"data/uni.csv"}
      {"op":"add-facts","id":7,"name":"uni","source":"person,carol"}
      {"op":"materialize","id":8,"name":"uni"}
      {"op":"snapshot","id":9,"name":"uni"}
      {"op":"prepare","id":3,"ontology":"uni","query":"q(X) :- person(X)."}
      {"op":"execute","id":4,"ontology":"uni","query":"q(X) :- person(X).","budget":"deadline=0.5"}
      {"op":"execute","id":5,"ontology":"uni","query":"q(X) :- person(X).","target":"datalog"}
      {"op":"stats","id":5}
      {"op":"shutdown","id":6}
    v}

    Responses: [{"id":...,"ok":true,...}] or
    [{"id":...,"ok":false,"kind":"overloaded"|"bad_request"|"parse_error"|
    "unknown_ontology"|"internal","error":"..."}]. *)

type source =
  | Inline of string
  | File of string

type request =
  | Register_ontology of {
      name : string;
      source : source;
    }
  | Load_csv of {
      name : string;
      source : source;
    }
  | Add_facts of {
      name : string;
      source : source;
    }  (** CSV payload; a data-only mutation — delta epoch bump *)
  | Materialize of { name : string }
      (** build the chase materialization kept alive across [add-facts] *)
  | Snapshot of { name : string option }
      (** checkpoint one entry (or every entry when [name] is absent) into
          the durable store and trim its WAL; rejected with [bad_request]
          when the server runs without [--data-dir] *)
  | Prepare of {
      ontology : string;
      query : string;
      target : string option;
    }
      (** [target] selects the rewriting backend for this request —
          ["ucq"], ["datalog"] or ["auto"] — overriding the server's
          default; an unknown value is a [bad_request]. Responses carry
          the realized backend in their ["artifact"] field (also on cache
          hits, which report the kind of the stored artifact). *)
  | Execute of {
      ontology : string;
      query : string;
      budget : string option;
      target : string option;
    }  (** same [target] semantics as {!constructor:Prepare} *)
  | Stats
  | Ping
  | Shutdown

type envelope = {
  id : Json.t;  (** [Json.Null] when the client sent none *)
  tenant : string option;
      (** the ["tenant"] field, if present — the admission-control identity
          the network front end charges the request's quota token to *)
  request : request;
}

val parse : string -> (envelope, Json.t * string) result
(** Parse one request line. The error carries the request id when one could
    be recovered (so even malformed requests get an addressed response). *)

val response_ok : id:Json.t -> (string * Json.t) list -> string
(** One JSONL line (no trailing newline): [{"id":..., "ok":true, fields}]. *)

val response_error : id:Json.t -> kind:string -> string -> string
(** One JSONL line: [{"id":..., "ok":false, "kind":..., "error":...}]. *)
