(** The prepared-query store: an LRU cache from (ontology name, epoch,
    canonical CQ key) to the query's computed UCQ rewriting and compiled
    eval plans.

    Soundness of the key (see DESIGN.md "Serving layer"): a UCQ rewriting
    depends only on the ontology and the query — never on the data — so
    for a fixed ontology epoch the rewriting cached under a canonical CQ
    key answers every α-equivalent resubmission. Data and ontology updates
    bump the registry epoch, which changes the key, so stale entries can
    never be hit; {!purge} additionally frees them eagerly.

    All operations are safe from any domain (one mutex around the
    hash-table + intrusive LRU list); hit/miss/eviction counts are charged
    to the telemetry sink given at creation ([serve.cache.hits],
    [serve.cache.misses], [serve.cache.evictions]). *)

open Tgd_logic

type entry = {
  ontology : string;
  epoch : int;
  canon : Canon.t;
  ucq : Cq.ucq;  (** the UCQ rewriting of the canonical CQ *)
  complete : bool;  (** whether the rewriting reached its fixpoint *)
  plans : Tgd_db.Plan.t list;  (** one static join plan per disjunct *)
  prepare_s : float;  (** wall-clock cost of the original preparation *)
}

type t

val create : ?capacity:int -> telemetry:Tgd_exec.Telemetry.t -> unit -> t
(** [capacity] defaults to 1024 entries; it must be positive. *)

val find : t -> ontology:string -> epoch:int -> canon:Canon.t -> entry option
(** Charges [serve.cache.hits] or [serve.cache.misses], and refreshes the
    entry's recency on a hit. *)

val add : t -> entry -> unit
(** Insert (or refresh) an entry, evicting the least-recently-used one when
    over capacity (charging [serve.cache.evictions]). *)

val purge : t -> ontology:string -> keep_epoch:int -> int
(** Drop every entry of [ontology] with an epoch below [keep_epoch];
    returns how many were dropped. Purged entries are not counted as
    evictions. *)

val length : t -> int
val capacity : t -> int
