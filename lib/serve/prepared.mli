(** The prepared-query store: an LRU cache from (ontology name, epoch,
    canonical CQ key) to the query's computed rewriting artifact — a UCQ
    with compiled eval plans, or a Datalog program with its goal.

    Soundness of the key (see DESIGN.md "Serving layer"): a rewriting of
    either kind depends only on the ontology and the query — never on the
    data — so for a fixed ontology epoch the artifact cached under a
    canonical CQ key answers every α-equivalent resubmission. Data and
    ontology updates bump the registry epoch, which changes the key, so
    stale entries can never be hit; {!purge} additionally frees them
    eagerly. Both artifact kinds live under the {e same} key: a query
    re-prepared under a different target replaces the stored entry rather
    than sitting beside it (the server treats a kind mismatch as a miss).

    All operations are safe from any domain (one mutex around the
    hash-table + intrusive LRU list); hit/miss/eviction counts are charged
    to the telemetry sink given at creation ([serve.cache.hits],
    [serve.cache.misses], [serve.cache.evictions]). *)

open Tgd_logic

type artifact =
  | Ucq of {
      ucq : Cq.ucq;  (** the UCQ rewriting of the canonical CQ *)
      plans : Tgd_db.Plan.t list;  (** one static join plan per disjunct *)
    }
  | Datalog of Tgd_rewrite.Datalog_rw.result
      (** the Datalog rewriting; evaluated by saturating a copy of the
          instance and reading off the goal predicate *)

val artifact_kind : artifact -> string
(** ["ucq"] or ["datalog"] — the value of the ["artifact"] response field. *)

type entry = {
  ontology : string;
  epoch : int;
  canon : Canon.t;
  artifact : artifact;
  complete : bool;  (** whether the rewriting reached its fixpoint *)
  prepare_s : float;  (** wall-clock cost of the original preparation *)
}

type t

val create : ?capacity:int -> telemetry:Tgd_exec.Telemetry.t -> unit -> t
(** [capacity] defaults to 1024 entries; it must be positive. *)

val find : t -> ontology:string -> epoch:int -> canon:Canon.t -> entry option
(** Charges [serve.cache.hits] or [serve.cache.misses], and refreshes the
    entry's recency on a hit. *)

val add : t -> entry -> unit
(** Insert (or refresh) an entry, evicting the least-recently-used one when
    over capacity (charging [serve.cache.evictions]). *)

val purge : t -> ontology:string -> keep_epoch:int -> int
(** Drop every entry of [ontology] with an epoch below [keep_epoch];
    returns how many were dropped. Purged entries are not counted as
    evictions. *)

val length : t -> int
val capacity : t -> int
