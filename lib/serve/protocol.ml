type source =
  | Inline of string
  | File of string

type request =
  | Register_ontology of {
      name : string;
      source : source;
    }
  | Load_csv of {
      name : string;
      source : source;
    }
  | Add_facts of {
      name : string;
      source : source;
    }
  | Materialize of { name : string }
  | Snapshot of { name : string option }
  | Prepare of {
      ontology : string;
      query : string;
      target : string option;
    }
  | Execute of {
      ontology : string;
      query : string;
      budget : string option;
      target : string option;
    }
  | Stats
  | Ping
  | Shutdown

type envelope = {
  id : Json.t;
  tenant : string option;
  request : request;
}

let field_id j = Option.value ~default:Json.Null (Json.member "id" j)

let source_of j =
  match Json.string_field "source" j, Json.string_field "file" j with
  | Some s, None -> Ok (Inline s)
  | None, Some f -> Ok (File f)
  | Some _, Some _ -> Error "both \"source\" and \"file\" given"
  | None, None -> Error "missing \"source\" or \"file\""

let required name j =
  match Json.string_field name j with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing string field %S" name)

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let request_of j =
  let* op = required "op" j in
  match op with
  | "register-ontology" ->
    let* name = required "name" j in
    let* source = source_of j in
    Ok (Register_ontology { name; source })
  | "load-csv" ->
    let* name = required "name" j in
    let* source = source_of j in
    Ok (Load_csv { name; source })
  | "add-facts" ->
    let* name = required "name" j in
    let* source = source_of j in
    Ok (Add_facts { name; source })
  | "materialize" ->
    let* name = required "name" j in
    Ok (Materialize { name })
  | "snapshot" -> Ok (Snapshot { name = Json.string_field "name" j })
  | "prepare" ->
    let* ontology = required "ontology" j in
    let* query = required "query" j in
    Ok (Prepare { ontology; query; target = Json.string_field "target" j })
  | "execute" ->
    let* ontology = required "ontology" j in
    let* query = required "query" j in
    Ok
      (Execute
         {
           ontology;
           query;
           budget = Json.string_field "budget" j;
           target = Json.string_field "target" j;
         })
  | "stats" -> Ok Stats
  | "ping" -> Ok Ping
  | "shutdown" -> Ok Shutdown
  | other -> Error (Printf.sprintf "unknown op %S" other)

let parse line =
  match Json.parse line with
  | Error msg -> Error (Json.Null, "bad JSON: " ^ msg)
  | Ok j -> (
    let id = field_id j in
    match Json.member "tenant" j with
    | Some (Json.String _) | None -> (
      let tenant = Json.string_field "tenant" j in
      match request_of j with
      | Ok request -> Ok { id; tenant; request }
      | Error msg -> Error (id, msg))
    | Some _ -> Error (id, "field \"tenant\" must be a string"))

let response_ok ~id fields = Json.to_string (Json.Obj (("id", id) :: ("ok", Json.Bool true) :: fields))

let response_error ~id ~kind msg =
  Json.to_string
    (Json.Obj
       [ ("id", id); ("ok", Json.Bool false); ("kind", Json.String kind); ("error", Json.String msg) ])
