(** Variable-renaming- and atom-order-invariant canonical forms for CQs —
    the prepared-query cache key.

    {!Cq.canonical} renames in first-occurrence order, so reordering the
    body atoms changes its output; a cache keyed on it would miss
    syntactically reshuffled resubmissions of the same query. This module
    computes a canonical presentation that is invariant under both
    consistent variable renaming and body reordering: answer variables are
    named in answer-tuple order (the tuple is significant, so this is
    forced), and the existential variables are named by an exhaustive
    search for the lexicographically least rendering of the sorted body.

    Soundness for caching is unconditional: the key is a faithful rendering
    of the renamed query, so equal keys imply the two queries are identical
    up to variable renaming — in particular homomorphically equivalent —
    and their UCQ rewritings coincide up to renaming. Completeness (no
    cache miss on a reshuffled query) holds whenever the exhaustive search
    runs, i.e. up to {!max_exact_existentials} existential variables;
    beyond that a deterministic greedy labeling is used ([exact = false])
    and a pathological symmetric query may map to several keys — costing a
    duplicate cache entry, never a wrong answer. *)

open Tgd_logic

type t = private {
  cq : Cq.t;  (** the canonical presentation: renamed variables, sorted body *)
  key : string;  (** unambiguous rendering of [cq]; the cache key *)
  hash : int;  (** [Hashtbl.hash] of [key] *)
  exact : bool;  (** whether the exhaustive labeling search completed *)
}

val max_exact_existentials : int
(** Exhaustive-search bound on the number of existential variables (8). *)

val of_cq : Cq.t -> t

val equal : t -> t -> bool
(** Key equality. *)

val pp : Format.formatter -> t -> unit
