(** The long-running query server: registry + canonical prepared-query
    cache + governed scheduler behind the JSONL protocol.

    {!handle} is the synchronous request brain — it is what both the test
    suite and the worker domains call, so every behavior (cache hits,
    epoch invalidation, budget truncation) is testable in-process without
    spawning a server. {!run} is the serving loop: [prepare]/[execute]
    are admitted to a bounded {!Scheduler} and answered from worker
    domains, admission failure is shed immediately as a typed
    ["overloaded"] response, and control operations execute inline on
    the control thread — registry mutations (register, load-csv) and
    [stats] first drain in-flight queries, so an epoch bump never races
    requests admitted before it; only [ping] overtakes queued work.

    Per-request execution is governed: each request gets a fresh
    {!Tgd_exec.Governor} over the server's base budget (overridable per
    request), and its telemetry is merged into the server-wide sink after
    the run — so [stats] exposes exact aggregate counters
    ([serve.requests], [serve.cache.hits/misses/evictions],
    [rewrite.cqs], [eval.steps], ...) even under concurrency. *)

type t

val create :
  ?cache_capacity:int ->
  ?base_budget:Tgd_exec.Budget.t ->
  ?config:Tgd_rewrite.Rewrite.config ->
  ?target:Tgd_obda.Target.t ->
  ?eval_workers:int ->
  ?eval_partitions:int ->
  ?store:Tgd_store.Store.t ->
  ?checkpoint_every:int ->
  unit ->
  t
(** A fresh server state. [base_budget] (default: 8s deadline, 200k
    rewrite.cqs) bounds every request unless the request supplies its own
    [budget] spec, which is parsed on top of the base. [config] is the
    rewriting configuration; its [domains] field is forced to 1 — worker
    domains must not spawn nested pools.

    [target] (default {!Tgd_obda.Target.Ucq}) is the rewriting backend
    used when a [prepare]/[execute] request carries no ["target"] field of
    its own. The prepared cache stores whichever artifact kind a request
    produced under the same canonical key; a later request whose resolved
    target does not accept the stored kind re-prepares and replaces it
    (counted under [serve.cache.kind_misses]).

    With [store], the server is durable: creation first {e recovers} the
    registry from the store — per entry, the latest valid snapshot is
    restored at its exact epochs and the WAL tail is replayed through the
    ordinary mutation paths (incrementally, via the delta chase, when a
    materialization was snapshotted) — and afterwards every acknowledged
    register/load-csv/add-facts/materialize is appended to that entry's
    WAL {e before} its response is produced. [checkpoint_every] > 0
    additionally writes a fresh snapshot generation (and trims the log)
    whenever an entry's WAL reaches that many records; the default [0]
    checkpoints only on explicit [snapshot] requests. Recovery statistics
    land in telemetry under [serve.store.*]. {!shutdown} closes the
    store. Raises [Invalid_argument] when [checkpoint_every < 0].

    Per-request UCQ evaluation always runs on {!Tgd_db.Par_eval}'s
    compiled columnar engine (registry instances are sealed on install).
    [eval_workers] (default 1) > 1 additionally splits each query's
    leading scans into morsels over a dedicated {!Tgd_exec.Pool} of that
    many domains, and [eval_partitions] overrides the answer-partition
    count of the lock-free merge (default [4 × eval_workers]). This
    parallelizes {e one heavy query}; the request-level [workers] of
    {!run} parallelize {e many light queries} — the two pools are
    distinct, so a request worker blocking on an eval batch can never
    deadlock the admission queue. Call {!shutdown} when done to join the
    eval pool. Raises [Invalid_argument] when [eval_workers <= 0] or
    [eval_partitions < 1]. *)

val shutdown : t -> unit
(** Join the parallel-evaluation pool and close the durable store, if
    any. A sequential in-memory server has nothing to shut down. *)

val telemetry : t -> Tgd_exec.Telemetry.t
(** The server-wide aggregate sink. *)

val registry : t -> Registry.t
val cache : t -> Prepared.t

val handle : t -> Protocol.request -> ((string * Json.t) list, string * string) result
(** Process one request synchronously; [Ok fields] become the success
    response, [Error (kind, msg)] the typed error. Safe to call from any
    domain. [Shutdown] returns [Ok []] — loop termination is the caller's
    business. *)

val run :
  ?workers:int -> ?queue_bound:int -> t -> in_channel -> out_channel -> [ `Eof | `Shutdown ]
(** Serve JSONL requests from the channel until EOF or a [shutdown]
    request (the return value says which); every response is exactly one
    line, flushed. Worker count defaults to
    {!Tgd_logic.Parallel.domain_count}, queue bound to 64. Admitted
    requests always get a response before [run] returns. *)

val run_unix_socket : ?workers:int -> ?queue_bound:int -> t -> path:string -> unit
(** Bind a Unix-domain socket at [path] (unlinking a stale one), accept
    connections sequentially, and {!run} each until its EOF/shutdown; a
    [shutdown] request also stops accepting. Registry, cache and telemetry
    persist across connections. *)
