(** The long-running query server: registry + canonical prepared-query
    cache + governed scheduler behind the JSONL protocol.

    {!handle} is the synchronous request brain — it is what both the test
    suite and the worker domains call, so every behavior (cache hits,
    epoch invalidation, budget truncation) is testable in-process without
    spawning a server. {!run} is the serving loop: [prepare]/[execute]
    are admitted to a bounded {!Scheduler} and answered from worker
    domains, admission failure is shed immediately as a typed
    ["overloaded"] response, and control operations execute inline on
    the control thread — registry mutations (register, load-csv) and
    [stats] first drain in-flight queries, so an epoch bump never races
    requests admitted before it; only [ping] overtakes queued work.

    Per-request execution is governed: each request gets a fresh
    {!Tgd_exec.Governor} over the server's base budget (overridable per
    request), and its telemetry is merged into the server-wide sink after
    the run — so [stats] exposes exact aggregate counters
    ([serve.requests], [serve.cache.hits/misses/evictions],
    [rewrite.cqs], [eval.steps], ...) even under concurrency. *)

type t

val create :
  ?cache_capacity:int ->
  ?base_budget:Tgd_exec.Budget.t ->
  ?config:Tgd_rewrite.Rewrite.config ->
  unit ->
  t
(** A fresh server state. [base_budget] (default: 8s deadline, 200k
    rewrite.cqs) bounds every request unless the request supplies its own
    [budget] spec, which is parsed on top of the base. [config] is the
    rewriting configuration; its [domains] field is forced to 1 — worker
    domains must not spawn nested pools. *)

val telemetry : t -> Tgd_exec.Telemetry.t
(** The server-wide aggregate sink. *)

val registry : t -> Registry.t
val cache : t -> Prepared.t

val handle : t -> Protocol.request -> ((string * Json.t) list, string * string) result
(** Process one request synchronously; [Ok fields] become the success
    response, [Error (kind, msg)] the typed error. Safe to call from any
    domain. [Shutdown] returns [Ok []] — loop termination is the caller's
    business. *)

val run :
  ?workers:int -> ?queue_bound:int -> t -> in_channel -> out_channel -> [ `Eof | `Shutdown ]
(** Serve JSONL requests from the channel until EOF or a [shutdown]
    request (the return value says which); every response is exactly one
    line, flushed. Worker count defaults to
    {!Tgd_logic.Parallel.domain_count}, queue bound to 64. Admitted
    requests always get a response before [run] returns. *)

val run_unix_socket : ?workers:int -> ?queue_bound:int -> t -> path:string -> unit
(** Bind a Unix-domain socket at [path] (unlinking a stale one), accept
    connections sequentially, and {!run} each until its EOF/shutdown; a
    [shutdown] request also stops accepting. Registry, cache and telemetry
    persist across connections. *)
