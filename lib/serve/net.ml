(* The multi-client network front end: a select-based event loop over any
   number of Unix-domain / TCP listeners, a connection table with
   per-connection read buffers and incremental JSONL framing, and in-order
   response multiplexing per connection while requests from different
   connections interleave through the shared worker pool.

   Threading model: exactly one event-loop thread owns every connection
   and the listener sockets. Worker domains (the request pool) never touch
   a socket — a finished job pushes its pre-serialized response line onto
   the completion queue and pokes the self-pipe, and the loop writes it
   out. Mutations, stats and shutdown execute inline on the loop thread
   behind a fence (all in-flight pool queries answered first), exactly
   mirroring the single-stream [Server.run] semantics — including the
   durable-store contract: a mutation's WAL record is fsynced inside
   [Server.handle], i.e. before its response line is even queued.

   Ordering guarantee: responses on one connection are written strictly in
   the order the requests arrived on that connection (each request takes
   the next sequence slot at parse time; completed responses wait in
   [pending] until every earlier slot has been written). Across
   connections there is no ordering. *)

type addr =
  | Unix_path of string
  | Tcp of string * int

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

type listener = {
  l_fd : Unix.file_descr;
  l_addr : addr;
}

let listener_addr l = l.l_addr

let listen ?(backlog = 128) addr =
  match addr with
  | Unix_path path ->
    if Sys.file_exists path then Unix.unlink path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd backlog
     with e ->
       (try Unix.close fd with _ -> ());
       raise e);
    { l_fd = fd; l_addr = addr }
  | Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with _ -> (
        match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
        | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
        | _ -> failwith (Printf.sprintf "cannot resolve %S" host))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (inet, port));
       Unix.listen fd backlog
     with e ->
       (try Unix.close fd with _ -> ());
       raise e);
    let port =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    { l_fd = fd; l_addr = Tcp (host, port) }

let close_listener l =
  (try Unix.close l.l_fd with _ -> ());
  match l.l_addr with
  | Unix_path p -> ( try if Sys.file_exists p then Unix.unlink p with _ -> ())
  | Tcp _ -> ()

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)

type conn = {
  id : int;
  fd : Unix.file_descr;
  acc : Buffer.t;  (* partial line accumulated across reads *)
  mutable next_seq : int;  (* response slot handed to the next request *)
  mutable write_head : int;  (* the slot whose response is written next *)
  pending : (int, string) Hashtbl.t;  (* completed out-of-order responses *)
  out : Buffer.t;  (* serialized bytes not yet accepted by the socket *)
  mutable out_pos : int;
  mutable eof : bool;  (* read side done (client half-closed or EOF) *)
}

(* All slots answered and every byte flushed: nothing left to deliver. *)
let drained c =
  c.write_head = c.next_seq && Hashtbl.length c.pending = 0 && c.out_pos >= Buffer.length c.out

type t = {
  server : Server.t;
  pool : Tgd_exec.Pool.t;
  admission : Admission.t;
  telemetry : Tgd_exec.Telemetry.t;
  max_clients : int;
  max_line : int;
  conns : (int, conn) Hashtbl.t;  (* id -> conn *)
  by_fd : (Unix.file_descr, conn) Hashtbl.t;
  completions : (int * int * string) Queue.t;  (* conn id, seq, response line *)
  completions_lock : Mutex.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  (* Queries admitted to the pool and not yet drained from [completions]:
     the fence (mutations/stats/shutdown) waits for this to reach zero. *)
  mutable pool_inflight : int;
  fence : (int * int * Protocol.envelope) Queue.t;  (* ordered control ops *)
  parked : (int * int * Protocol.envelope) Queue.t;  (* queries held behind the fence *)
  mutable stopping : bool;
  scratch : Bytes.t;
}

let count t key n = ignore (Tgd_exec.Telemetry.add t.telemetry key n)

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)

(* Push whatever the socket will take right now; never blocks. *)
let try_flush t c =
  let len = Buffer.length c.out - c.out_pos in
  if len > 0 then
    match Unix.write_substring c.fd (Buffer.contents c.out) c.out_pos len with
    | n ->
      c.out_pos <- c.out_pos + n;
      if c.out_pos >= Buffer.length c.out then begin
        Buffer.clear c.out;
        c.out_pos <- 0
      end;
      true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> true
    | exception Unix.Unix_error _ ->
      (* Peer reset mid-write: the connection is dead. *)
      false
  else true

let drop_conn t c =
  Hashtbl.remove t.conns c.id;
  Hashtbl.remove t.by_fd c.fd;
  (try Unix.close c.fd with _ -> ());
  count t "serve.net.closed" 1

(* Record a completed response for its slot and advance the in-order write
   head. A response for a dropped connection is discarded (its admission
   slot was released when the completion drained). *)
let complete t ~conn_id ~seq line =
  match Hashtbl.find_opt t.conns conn_id with
  | None -> ()
  | Some c ->
    Hashtbl.replace c.pending seq line;
    let advanced = ref false in
    let continue = ref true in
    while !continue do
      match Hashtbl.find_opt c.pending c.write_head with
      | None -> continue := false
      | Some l ->
        Hashtbl.remove c.pending c.write_head;
        Buffer.add_string c.out l;
        Buffer.add_char c.out '\n';
        c.write_head <- c.write_head + 1;
        advanced := true
    done;
    if !advanced then begin
      if not (try_flush t c) then drop_conn t c
      else if c.eof && drained c then drop_conn t c
    end

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)

let wake t =
  try ignore (Unix.write_substring t.wake_w "x" 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    (* Pipe full: a wake-up byte is already pending, which is all we need. *)
    ()

let submit_query t ~conn_id ~seq (env : Protocol.envelope) =
  let tenant = Option.value ~default:"default" env.Protocol.tenant in
  match Admission.admit t.admission ~tenant with
  | Admission.Overloaded n ->
    complete t ~conn_id ~seq
      (Protocol.response_error ~id:env.Protocol.id ~kind:"overloaded"
         (Printf.sprintf "server at max in-flight (%d); retry later" n))
  | Admission.Quota_exceeded retry_s ->
    complete t ~conn_id ~seq
      (Protocol.response_error ~id:env.Protocol.id ~kind:"quota_exceeded"
         (Printf.sprintf "tenant %S out of quota; retry in %.3fs" tenant retry_s))
  | Admission.Admitted -> (
    let id = env.Protocol.id in
    let request = env.Protocol.request in
    let job () =
      let line =
        match Server.handle t.server request with
        | Ok fields -> Protocol.response_ok ~id fields
        | Error (kind, msg) -> Protocol.response_error ~id ~kind msg
        | exception e ->
          Protocol.response_error ~id ~kind:"internal"
            ("request raised: " ^ Printexc.to_string e)
      in
      Mutex.lock t.completions_lock;
      Queue.push (conn_id, seq, line) t.completions;
      Mutex.unlock t.completions_lock;
      wake t
    in
    t.pool_inflight <- t.pool_inflight + 1;
    match Tgd_exec.Pool.submit t.pool job with
    | Ok _ -> ()
    | Error reject ->
      t.pool_inflight <- t.pool_inflight - 1;
      Admission.release t.admission;
      let kind, msg =
        match reject with
        | `Overloaded depth -> ("overloaded", Printf.sprintf "queue full (%d waiting)" depth)
        | `Closed -> ("internal", "worker pool closed")
      in
      complete t ~conn_id ~seq (Protocol.response_error ~id ~kind msg))

(* Shed a parked query at shutdown: admitted-but-parked work must still be
   answered before the loop exits, and "try again elsewhere" is the honest
   answer once this process is stopping. *)
let shed_parked t =
  Queue.iter
    (fun (conn_id, seq, (env : Protocol.envelope)) ->
      count t "serve.shed.overloaded" 1;
      complete t ~conn_id ~seq
        (Protocol.response_error ~id:env.Protocol.id ~kind:"overloaded" "server stopping"))
    t.parked;
  Queue.clear t.parked

(* Run fenced control operations once no pool query is in flight, then
   release any parked queries. Mutations run inline on the loop thread:
   the WAL append + fsync inside [Server.handle] completes before the
   response line is queued, preserving fsync-before-ack per connection. *)
let run_fences t =
  while (not (Queue.is_empty t.fence)) && t.pool_inflight = 0 do
    let conn_id, seq, (env : Protocol.envelope) = Queue.pop t.fence in
    match env.Protocol.request with
    | Protocol.Shutdown ->
      t.stopping <- true;
      complete t ~conn_id ~seq
        (Protocol.response_ok ~id:env.Protocol.id [ ("stopping", Json.Bool true) ])
    | request ->
      let line =
        match Server.handle t.server request with
        | Ok fields -> Protocol.response_ok ~id:env.Protocol.id fields
        | Error (kind, msg) -> Protocol.response_error ~id:env.Protocol.id ~kind msg
        | exception e ->
          Protocol.response_error ~id:env.Protocol.id ~kind:"internal"
            ("request raised: " ^ Printexc.to_string e)
      in
      complete t ~conn_id ~seq line
  done;
  if Queue.is_empty t.fence then
    if t.stopping then shed_parked t
    else
      while not (Queue.is_empty t.parked) do
        let conn_id, seq, env = Queue.pop t.parked in
        submit_query t ~conn_id ~seq env
      done

let handle_line t c line =
  let seq = c.next_seq in
  c.next_seq <- seq + 1;
  count t "serve.net.lines" 1;
  match Protocol.parse line with
  | Error (id, msg) ->
    complete t ~conn_id:c.id ~seq (Protocol.response_error ~id ~kind:"bad_request" msg)
  | Ok env -> (
    match env.Protocol.request with
    | Protocol.Ping ->
      complete t ~conn_id:c.id ~seq
        (Protocol.response_ok ~id:env.Protocol.id [ ("pong", Json.Bool true) ])
    | Protocol.Prepare _ | Protocol.Execute _ ->
      if t.stopping then begin
        count t "serve.shed.overloaded" 1;
        complete t ~conn_id:c.id ~seq
          (Protocol.response_error ~id:env.Protocol.id ~kind:"overloaded" "server stopping")
      end
      else if not (Queue.is_empty t.fence) then Queue.push (c.id, seq, env) t.parked
      else submit_query t ~conn_id:c.id ~seq env
    | Protocol.Register_ontology _ | Protocol.Load_csv _ | Protocol.Add_facts _
    | Protocol.Materialize _ | Protocol.Snapshot _ | Protocol.Stats | Protocol.Shutdown ->
      Queue.push (c.id, seq, env) t.fence;
      run_fences t)

(* ------------------------------------------------------------------ *)
(* Reading + framing                                                   *)

(* Split the fresh chunk on newlines: the first newline completes the
   accumulated partial (if any); the trailing partial is re-accumulated.
   '\r' before the newline is tolerated. A partial exceeding [max_line] is
   a framing failure: respond once and drop the connection (there is no
   reliable way to resynchronize). Returns [false] if the conn died. *)
let feed t c chunk len =
  let alive = ref true in
  let emit line =
    if !alive then begin
      let line =
        let n = String.length line in
        if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
      in
      if String.trim line <> "" then handle_line t c line;
      (* handle_line may have dropped the conn on a write error *)
      alive := Hashtbl.mem t.conns c.id
    end
  in
  let start = ref 0 in
  (try
     for i = 0 to len - 1 do
       if Bytes.get chunk i = '\n' then begin
         if Buffer.length c.acc > 0 then begin
           Buffer.add_subbytes c.acc chunk !start (i - !start);
           let line = Buffer.contents c.acc in
           Buffer.clear c.acc;
           emit line
         end
         else emit (Bytes.sub_string chunk !start (i - !start));
         start := i + 1;
         if not !alive then raise Exit
       end
     done
   with Exit -> ());
  if !alive then begin
    if len - !start > 0 then Buffer.add_subbytes c.acc chunk !start (len - !start);
    if Buffer.length c.acc > t.max_line then begin
      count t "serve.net.oversized" 1;
      let seq = c.next_seq in
      c.next_seq <- seq + 1;
      complete t ~conn_id:c.id ~seq
        (Protocol.response_error ~id:Json.Null ~kind:"bad_request"
           (Printf.sprintf "request line exceeds %d bytes" t.max_line));
      (* Deliver the error if the socket will take it, then cut. *)
      (match Hashtbl.find_opt t.conns c.id with
      | Some c -> drop_conn t c
      | None -> ());
      alive := false
    end
  end;
  !alive

let handle_readable t c =
  match Unix.read c.fd t.scratch 0 (Bytes.length t.scratch) with
  | 0 ->
    (* EOF (or half-close): stop reading, but deliver every response the
       connection is still owed before closing. *)
    c.eof <- true;
    if drained c then drop_conn t c
  | n -> ignore (feed t c t.scratch n)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> drop_conn t c

(* ------------------------------------------------------------------ *)
(* Accept                                                              *)

let conn_ids = ref 0

let handle_accept t l =
  match Unix.accept ~cloexec:true l.l_fd with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | fd, _ ->
    Unix.set_nonblock fd;
    if Hashtbl.length t.conns >= t.max_clients then begin
      count t "serve.net.rejected" 1;
      (* Best-effort shed notice; the socket buffer of a fresh connection
         takes one small line without blocking. *)
      let line =
        Protocol.response_error ~id:Json.Null ~kind:"overloaded"
          (Printf.sprintf "server at max clients (%d)" t.max_clients)
        ^ "\n"
      in
      (try ignore (Unix.write_substring fd line 0 (String.length line)) with _ -> ());
      try Unix.close fd with _ -> ()
    end
    else begin
      incr conn_ids;
      let c =
        {
          id = !conn_ids;
          fd;
          acc = Buffer.create 256;
          next_seq = 0;
          write_head = 0;
          pending = Hashtbl.create 4;
          out = Buffer.create 256;
          out_pos = 0;
          eof = false;
        }
      in
      Hashtbl.replace t.conns c.id c;
      Hashtbl.replace t.by_fd fd c;
      count t "serve.net.accepted" 1;
      Tgd_exec.Telemetry.gauge t.telemetry "serve.net.connections.peak" (Hashtbl.length t.conns)
    end

(* ------------------------------------------------------------------ *)
(* Completion drain                                                    *)

let drain_completions t =
  (* Clear the wake pipe first so a poke arriving mid-drain re-triggers. *)
  (try
     while Unix.read t.wake_r t.scratch 0 (Bytes.length t.scratch) = Bytes.length t.scratch do
       ()
     done
   with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ());
  let continue = ref true in
  while !continue do
    Mutex.lock t.completions_lock;
    let item = if Queue.is_empty t.completions then None else Some (Queue.pop t.completions) in
    Mutex.unlock t.completions_lock;
    match item with
    | None -> continue := false
    | Some (conn_id, seq, line) ->
      t.pool_inflight <- t.pool_inflight - 1;
      Admission.release t.admission;
      complete t ~conn_id ~seq line
  done

(* ------------------------------------------------------------------ *)
(* The loop                                                            *)

let serve ?workers ?(queue_bound = 64) ?(max_clients = 1024) ?(max_line = 8 * 1024 * 1024)
    ?rate ?burst ?max_inflight ?now server ~listeners =
  if max_clients <= 0 then invalid_arg "Net.serve: max_clients must be positive";
  if max_line <= 0 then invalid_arg "Net.serve: max_line must be positive";
  let workers =
    match workers with
    | Some w when w > 0 -> w
    | Some _ -> invalid_arg "Net.serve: workers must be positive"
    | None -> Tgd_exec.Pool.default_workers ()
  in
  if queue_bound <= 0 then invalid_arg "Net.serve: queue_bound must be positive";
  let telemetry = Server.telemetry server in
  let max_inflight =
    match max_inflight with
    | Some m when m > 0 -> m
    | Some _ -> invalid_arg "Net.serve: max_inflight must be positive"
    | None -> workers + queue_bound
  in
  (* A peer that disconnects mid-response must surface as EPIPE on the
     write (handled per connection), not as a process-killing SIGPIPE. *)
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let admission = Admission.create ?now ?rate ?burst ~max_inflight ~telemetry () in
  (* The pool's own bound sits at the admission limit, so admission is the
     one place shedding decisions are made. *)
  let pool = Tgd_exec.Pool.create ~workers ~queue_bound:max_inflight () in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      server;
      pool;
      admission;
      telemetry;
      max_clients;
      max_line;
      conns = Hashtbl.create 64;
      by_fd = Hashtbl.create 64;
      completions = Queue.create ();
      completions_lock = Mutex.create ();
      wake_r;
      wake_w;
      pool_inflight = 0;
      fence = Queue.create ();
      parked = Queue.create ();
      stopping = false;
      scratch = Bytes.create 65536;
    }
  in
  let listener_fds = List.map (fun l -> l.l_fd) listeners in
  List.iter Unix.set_nonblock listener_fds;
  let finished () =
    t.stopping && t.pool_inflight = 0 && Queue.is_empty t.fence && Queue.is_empty t.parked
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter close_listener listeners;
      Hashtbl.iter
        (fun _ c ->
          ignore (try_flush t c);
          try Unix.close c.fd with _ -> ())
        t.conns;
      Hashtbl.reset t.conns;
      Hashtbl.reset t.by_fd;
      (try Unix.close t.wake_r with _ -> ());
      (try Unix.close t.wake_w with _ -> ());
      Tgd_exec.Pool.shutdown t.pool)
    (fun () ->
      while not (finished ()) do
        let reads =
          t.wake_r
          :: (if t.stopping then [] else listener_fds)
          @ Hashtbl.fold (fun _ c acc -> if c.eof then acc else c.fd :: acc) t.conns []
        in
        let writes =
          Hashtbl.fold
            (fun _ c acc -> if Buffer.length c.out > c.out_pos then c.fd :: acc else acc)
            t.conns []
        in
        match Unix.select reads writes [] 1.0 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | readable, writable, _ ->
          (* Drain finished jobs first: it may unblock the fence and it
             frees admission slots before new requests are parsed. *)
          drain_completions t;
          if not (Queue.is_empty t.fence) then run_fences t;
          List.iter
            (fun fd ->
              if List.memq fd listener_fds then
                List.iter (fun l -> if l.l_fd == fd then handle_accept t l) listeners
              else if fd != t.wake_r then
                match Hashtbl.find_opt t.by_fd fd with
                | Some c -> handle_readable t c
                | None -> ())
            readable;
          List.iter
            (fun fd ->
              match Hashtbl.find_opt t.by_fd fd with
              | Some c ->
                if not (try_flush t c) then drop_conn t c
                else if c.eof && drained c then drop_conn t c
              | None -> ())
            writable
      done;
      (* Final flush: give straggler connections a short grace window to
         take their last bytes, then cut. *)
      let deadline = Unix.gettimeofday () +. 2.0 in
      let rec flush_all () =
        let dirty =
          Hashtbl.fold
            (fun _ c acc -> if Buffer.length c.out > c.out_pos then c :: acc else acc)
            t.conns []
        in
        if dirty <> [] && Unix.gettimeofday () < deadline then begin
          let fds = List.map (fun c -> c.fd) dirty in
          (match Unix.select [] fds [] 0.1 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | _, writable, _ ->
            List.iter
              (fun fd ->
                match Hashtbl.find_opt t.by_fd fd with
                | Some c -> if not (try_flush t c) then drop_conn t c
                | None -> ())
              writable);
          flush_all ()
        end
      in
      flush_all ())
