open Tgd_logic

type t = {
  registry : Registry.t;
  cache : Prepared.t;
  telemetry : Tgd_exec.Telemetry.t;
  base_budget : Tgd_exec.Budget.t;
  config : Tgd_rewrite.Rewrite.config;
  target : Tgd_obda.Target.t;  (* default rewriting backend; per-request override *)
  eval_workers : int;
  eval_partitions : int option;
  eval_pool : Tgd_exec.Pool.t option;
  store : Tgd_store.Store.t option;
  checkpoint_every : int;  (* 0 = checkpoint only on explicit snapshot ops *)
}

let default_budget =
  {
    Tgd_exec.Budget.unlimited with
    Tgd_exec.Budget.deadline_s = Some 8.0;
    rewrite_cqs = Some 200_000;
  }

(* The state constructor; the public [create] additionally runs durable-
   store recovery (defined below the request handlers it reuses). *)
let make ?(cache_capacity = 1024) ?(base_budget = default_budget)
    ?(config = Tgd_rewrite.Rewrite.default_config) ?(target = Tgd_obda.Target.Ucq)
    ?(eval_workers = 1) ?eval_partitions ?store ?(checkpoint_every = 0) () =
  if eval_workers <= 0 then invalid_arg "Server.create: eval_workers must be positive";
  (match eval_partitions with
  | Some p when p < 1 -> invalid_arg "Server.create: eval_partitions must be positive"
  | Some _ | None -> ());
  if checkpoint_every < 0 then invalid_arg "Server.create: checkpoint_every must be >= 0";
  let telemetry = Tgd_exec.Telemetry.create () in
  {
    registry =
      (* Sealing an installed instance always builds its columnar blocks;
         a parallel server additionally hash-partitions for the boxed
         fallback's shard morsels. *)
      (if eval_workers > 1 then Registry.create ~partitions:(eval_workers * 4) ()
       else Registry.create ());
    cache = Prepared.create ~capacity:cache_capacity ~telemetry ();
    telemetry;
    base_budget;
    (* Workers must not spawn nested domain pools for UCQ minimization. *)
    config = { config with Tgd_rewrite.Rewrite.domains = Some 1 };
    target;
    eval_workers;
    eval_partitions;
    eval_pool =
      (if eval_workers > 1 then Some (Tgd_exec.Pool.create ~workers:eval_workers ()) else None);
    store;
    checkpoint_every;
  }

let shutdown t =
  Option.iter Tgd_exec.Pool.shutdown t.eval_pool;
  Option.iter Tgd_store.Store.close t.store

let telemetry t = t.telemetry
let registry t = t.registry
let cache t = t.cache

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)

let read_source = function
  | Protocol.Inline s -> Ok s
  | Protocol.File path -> (
    match open_in_bin path with
    | exception Sys_error msg -> Error msg
    | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      Ok s)

let parse_ontology ~name src =
  match Tgd_parser.Parser.parse_string ~filename:name src with
  | Error e -> Error (Format.asprintf "%a" Tgd_parser.Parser.pp_error e)
  | Ok doc -> (
    match Tgd_parser.Parser.program_of_document ~name doc with
    | Error msg -> Error msg
    | Ok program -> Ok (program, Tgd_db.Instance.of_atoms doc.Tgd_parser.Parser.facts))

(* A query request is a one-query document: "q(X) :- person(X)." *)
let parse_query src =
  match Tgd_parser.Parser.parse_string ~filename:"query" src with
  | Error e -> Error (Format.asprintf "%a" Tgd_parser.Parser.pp_error e)
  | Ok doc -> (
    match doc.Tgd_parser.Parser.queries, doc.Tgd_parser.Parser.rules with
    | [ q ], [] -> Ok q
    | [], _ -> Error "no query in request (expected: q(X) :- p(X).)"
    | _ :: _ :: _, _ -> Error "more than one query in request"
    | _, _ :: _ -> Error "rules are not allowed in a query request")

let budget_of t spec =
  match spec with
  | None -> Ok t.base_budget
  | Some spec -> Tgd_exec.Budget.of_string ~base:t.base_budget spec

(* A cached artifact satisfies the request when the target accepts its
   kind: [auto] takes whatever is stored (both kinds are sound and, when
   complete, exact), a pinned target only its own. A kind mismatch is
   handled as a miss — the fresh artifact then replaces the stored one
   under the same key. *)
let hit_serves target (prepared : Prepared.entry) =
  match target, prepared.Prepared.artifact with
  | Tgd_obda.Target.Auto, _ -> true
  | Tgd_obda.Target.Ucq, Prepared.Ucq _ -> true
  | Tgd_obda.Target.Datalog, Prepared.Datalog _ -> true
  | (Tgd_obda.Target.Ucq | Tgd_obda.Target.Datalog), _ -> false

(* Prepare = cache lookup, or rewrite + plan + insert. Returns the entry
   and whether it came from the cache. Charges the per-request governor on
   the miss path only: a warm hit never touches the rewriter. *)
let prepare_entry t (entry : Registry.entry) canon target gov_of =
  let miss =
    match
      Prepared.find t.cache ~ontology:entry.Registry.name ~epoch:entry.Registry.epoch ~canon
    with
    | Some prepared when hit_serves target prepared -> Ok (prepared, true)
    | Some _ ->
      ignore (Tgd_exec.Telemetry.add t.telemetry "serve.cache.kind_misses" 1);
      Error ()
    | None -> Error ()
  in
  match miss with
  | Ok hit -> hit
  | Error () ->
    let t0 = Unix.gettimeofday () in
    let artifact, complete =
      match
        Tgd_obda.Target.prepare ~ucq_config:t.config ~gov:gov_of target entry.Registry.program
          canon.Canon.cq
      with
      | Tgd_obda.Target.Ucq_rewriting r ->
        let complete =
          match r.Tgd_rewrite.Rewrite.outcome with
          | Tgd_rewrite.Rewrite.Complete -> true
          | Tgd_rewrite.Rewrite.Truncated _ -> false
        in
        let plans =
          List.map (Tgd_db.Plan.choose entry.Registry.instance) r.Tgd_rewrite.Rewrite.ucq
        in
        (Prepared.Ucq { ucq = r.Tgd_rewrite.Rewrite.ucq; plans }, complete)
      | Tgd_obda.Target.Datalog_rewriting r ->
        let complete =
          match r.Tgd_rewrite.Datalog_rw.outcome with
          | Tgd_rewrite.Datalog_rw.Complete -> true
          | Tgd_rewrite.Datalog_rw.Truncated _ -> false
        in
        (Prepared.Datalog r, complete)
    in
    let prepared =
      {
        Prepared.ontology = entry.Registry.name;
        epoch = entry.Registry.epoch;
        canon;
        artifact;
        complete;
        prepare_s = Unix.gettimeofday () -. t0;
      }
    in
    (* Only complete rewritings are cached: an incomplete one is sound but
       budget-dependent, and a later request with a larger budget would hit
       the truncated entry under the same key. Incomplete preparations are
       recomputed per request instead. *)
    if complete then Prepared.add t.cache prepared;
    (prepared, false)

let json_tuple tup =
  Json.List (Array.to_list (Array.map (fun v -> Json.String (Tgd_db.Value.to_string v)) tup))

let with_entry t name f =
  match Registry.find t.registry name with
  | None -> Error ("unknown_ontology", Printf.sprintf "unknown ontology %S" name)
  | Some entry -> f entry

let handle_query t ~ontology ~query ~budget ~target ~eval =
  with_entry t ontology (fun entry ->
      match parse_query query with
      | Error msg -> Error ("bad_request", msg)
      | Ok q -> (
        match budget_of t budget with
        | Error msg -> Error ("bad_request", "bad budget: " ^ msg)
        | Ok budget -> (
          match
            match target with
            | None -> Ok t.target
            | Some s -> Tgd_obda.Target.of_string s
          with
          | Error msg -> Error ("bad_request", "bad target: " ^ msg)
          | Ok target ->
            let t_req = Unix.gettimeofday () in
            let canon = Canon.of_cq q in
            let request_tele = Tgd_exec.Telemetry.create () in
            let fresh () = Tgd_exec.Governor.create ~budget ~telemetry:request_tele () in
            (* One governor spans rewrite + eval on the common single-attempt
               path; only an [auto] fallback re-arms a fresh one (the first
               attempt's stop is latched), which then also governs eval. *)
            let gov = ref (fresh ()) in
            let first = ref true in
            let gov_of () =
              if !first then begin
                first := false;
                !gov
              end
              else begin
                let g = fresh () in
                gov := g;
                g
              end
            in
            let prepared, cached = prepare_entry t entry canon target gov_of in
            let gov = !gov in
            let artifact_fields =
              match prepared.Prepared.artifact with
              | Prepared.Ucq { ucq; _ } -> [ ("disjuncts", Json.Int (List.length ucq)) ]
              | Prepared.Datalog r ->
                [
                  ("patterns", Json.Int r.Tgd_rewrite.Datalog_rw.stats.Tgd_rewrite.Datalog_rw.patterns);
                  ("rules", Json.Int r.Tgd_rewrite.Datalog_rw.stats.Tgd_rewrite.Datalog_rw.rules);
                  ("nonrecursive", Json.Bool r.Tgd_rewrite.Datalog_rw.nonrecursive);
                ]
            in
            let fields =
              [
                ("ontology", Json.String entry.Registry.name);
                ("epoch", Json.Int entry.Registry.epoch);
                ("cached", Json.Bool cached);
                ("artifact", Json.String (Prepared.artifact_kind prepared.Prepared.artifact));
                ("complete", Json.Bool prepared.Prepared.complete);
              ]
              @ artifact_fields
              @ [ ("canonical", Json.String (Cq.to_string canon.Canon.cq)) ]
            in
            let fields =
              if eval then begin
                let answers =
                  match prepared.Prepared.artifact with
                  | Prepared.Ucq { ucq; _ } ->
                    (* Registry instances are sealed on install, so this runs
                       the compiled columnar engine at any worker count. *)
                    Tgd_db.Par_eval.ucq ~gov ?pool:t.eval_pool ~workers:t.eval_workers
                      ?partitions:t.eval_partitions entry.Registry.instance ucq
                    |> List.filter (fun tup -> not (Tgd_db.Tuple.has_null tup))
                  | Prepared.Datalog r ->
                    (* Saturates a copy-on-write clone of the instance; the
                       registry's sealed columns are shared, untouched. *)
                    Tgd_obda.Target.datalog_answers ~gov r entry.Registry.instance
                in
                let exact =
                  prepared.Prepared.complete && Tgd_exec.Governor.stopped gov = None
                in
                fields
                @ [
                    ("answers", Json.List (List.map json_tuple answers));
                    ("exact", Json.Bool exact);
                  ]
              end
              else fields
            in
            let fields =
              match Tgd_exec.Governor.stopped gov with
              | None -> fields
              | Some reason ->
                fields
                @ [ ("truncated", Json.String (Tgd_exec.Governor.stop_reason_to_string reason)) ]
            in
            let fields =
              fields @ [ ("wall_s", Json.Float (Unix.gettimeofday () -. t_req)) ]
            in
            Tgd_exec.Telemetry.merge_into ~into:t.telemetry request_tele;
            ignore (Tgd_exec.Telemetry.add t.telemetry "serve.requests" 1);
            Ok fields)))

let registered_fields (entry : Registry.entry) =
  [
    ("name", Json.String entry.Registry.name);
    ("epoch", Json.Int entry.Registry.epoch);
    ("delta_epoch", Json.Int entry.Registry.delta_epoch);
    ("rules", Json.Int (Program.size entry.Registry.program));
    ("facts", Json.Int (Tgd_db.Instance.cardinality entry.Registry.instance));
  ]

(* A data-only mutation answered: count it under the serve.delta.* keys and
   surface the incremental-apply statistics when a materialization was
   maintained. *)
let delta_fields t (m : Registry.mutation) =
  ignore (Tgd_exec.Telemetry.add t.telemetry "serve.delta.batches" 1);
  ignore (Tgd_exec.Telemetry.add t.telemetry "serve.delta.facts" m.Registry.added);
  let fields = registered_fields m.Registry.entry @ [ ("added", Json.Int m.Registry.added) ] in
  match m.Registry.delta with
  | None -> fields
  | Some stats ->
    ignore
      (Tgd_exec.Telemetry.add t.telemetry "serve.delta.triggers"
         stats.Tgd_chase.Delta_chase.triggers_fired);
    ignore
      (Tgd_exec.Telemetry.add t.telemetry "serve.delta.derived"
         stats.Tgd_chase.Delta_chase.derived);
    fields
    @ [
        ("materialized", Json.Bool true);
        ("derived", Json.Int stats.Tgd_chase.Delta_chase.derived);
        ( "delta_complete",
          Json.Bool (stats.Tgd_chase.Delta_chase.outcome = Tgd_chase.Chase.Terminated) );
      ]

(* Data mutations and materialization run under the server's default
   budget too (chase.delta.* keys bound the per-batch incremental chase),
   topped with the chase engines' own safety caps when the budget leaves
   them open — an explicit governor disables the engine defaults, and a
   divergent ontology must not chase unbounded on a data path. *)
let mutation_governor t =
  let fill v ~default =
    match v with
    | None -> Some default
    | some -> some
  in
  let budget =
    {
      t.base_budget with
      Tgd_exec.Budget.chase_rounds =
        fill t.base_budget.Tgd_exec.Budget.chase_rounds ~default:1000;
      chase_facts = fill t.base_budget.Tgd_exec.Budget.chase_facts ~default:1_000_000;
    }
  in
  let request_tele = Tgd_exec.Telemetry.create () in
  (Tgd_exec.Governor.create ~budget ~telemetry:request_tele (), request_tele)

(* ------------------------------------------------------------------ *)
(* Durable store plumbing                                              *)

let snapshot_of_entry (entry : Registry.entry) =
  {
    Tgd_store.Snapshot.epoch = entry.Registry.epoch;
    delta_epoch = entry.Registry.delta_epoch;
    program_src = Tgd_parser.Printer.program_to_string entry.Registry.program;
    instance = entry.Registry.instance;
    materialization =
      Option.map
        (fun (m : Registry.materialization) ->
          {
            Tgd_store.Snapshot.model = m.Registry.model;
            floor = m.Registry.floor;
            complete = m.Registry.complete;
          })
        entry.Registry.materialization;
  }

let checkpoint_entry t store (entry : Registry.entry) =
  let status =
    Tgd_store.Store.checkpoint store ~name:entry.Registry.name (snapshot_of_entry entry)
  in
  ignore (Tgd_exec.Telemetry.add t.telemetry "serve.store.snapshots" 1);
  status

(* Redo-only logging: a record is appended only after the in-memory apply
   succeeded, and (with fsync) reaches stable storage before the op is
   acknowledged — an acked mutation survives a crash, a failed one leaves
   no trace to replay. *)
let log_record t ~name record =
  match t.store with
  | None -> ()
  | Some store -> (
    let bytes = Tgd_store.Store.log store ~name record in
    ignore (Tgd_exec.Telemetry.add t.telemetry "serve.store.wal_records" 1);
    ignore (Tgd_exec.Telemetry.add t.telemetry "serve.store.wal_bytes" bytes);
    if Tgd_store.Store.fsync_enabled store then
      ignore (Tgd_exec.Telemetry.add t.telemetry "serve.store.fsyncs" 1);
    if t.checkpoint_every > 0 then
      match Tgd_store.Store.status store ~name with
      | Some s when s.Tgd_store.Store.wal_records >= t.checkpoint_every -> (
        match Registry.find t.registry name with
        | Some entry -> ignore (checkpoint_entry t store entry)
        | None -> ())
      | Some _ | None -> ())

(* load-csv and add-facts share this path: both append facts copy-on-write
   under a delta epoch bump — the prepared cache stays warm (the full
   epoch, its key component, does not move). *)
let handle_data_mutation t ~name ~source ~record =
  let t0 = Unix.gettimeofday () in
  (* Resolve a file source up front so the WAL record is self-contained:
     replay must not depend on the path still existing. *)
  match read_source source with
  | Error msg -> Error ("bad_request", msg)
  | Ok csv -> (
    let gov, request_tele = mutation_governor t in
    match Registry.load_csv_string ~gov t.registry ~name csv with
    | Error msg ->
      if Registry.find t.registry name = None then Error ("unknown_ontology", msg)
      else Error ("bad_request", msg)
    | Ok m ->
      Tgd_exec.Telemetry.merge_into ~into:t.telemetry request_tele;
      Tgd_exec.Telemetry.add_span t.telemetry "serve.delta.apply" (Unix.gettimeofday () -. t0);
      log_record t ~name (record csv);
      Ok (delta_fields t m))

let handle t (request : Protocol.request) =
  match request with
  | Protocol.Register_ontology { name; source } -> (
    match read_source source with
    | Error msg -> Error ("bad_request", msg)
    | Ok src -> (
      match parse_ontology ~name src with
      | Error msg -> Error ("parse_error", msg)
      | Ok (program, facts) ->
        let entry = Registry.register t.registry ~name ~facts program in
        let purged = Prepared.purge t.cache ~ontology:name ~keep_epoch:entry.Registry.epoch in
        log_record t ~name (Tgd_store.Wal.Register { source = src });
        Ok (registered_fields entry @ [ ("purged", Json.Int purged) ])))
  | Protocol.Load_csv { name; source } ->
    handle_data_mutation t ~name ~source ~record:(fun csv -> Tgd_store.Wal.Load_csv { csv })
  | Protocol.Add_facts { name; source } ->
    handle_data_mutation t ~name ~source ~record:(fun csv -> Tgd_store.Wal.Add_facts { csv })
  | Protocol.Materialize { name } -> (
    let t0 = Unix.gettimeofday () in
    let gov, request_tele = mutation_governor t in
    match Registry.materialize ~gov t.registry ~name with
    | Error msg -> Error ("unknown_ontology", msg)
    | Ok (entry, stats) ->
      Tgd_exec.Telemetry.merge_into ~into:t.telemetry request_tele;
      Tgd_exec.Telemetry.add_span t.telemetry "serve.materialize" (Unix.gettimeofday () -. t0);
      log_record t ~name Tgd_store.Wal.Materialize;
      let model_facts =
        match entry.Registry.materialization with
        | Some m -> Tgd_db.Instance.cardinality m.Registry.model
        | None -> 0
      in
      Ok
        (registered_fields entry
        @ [
            ("model_facts", Json.Int model_facts);
            ( "chase_complete",
              Json.Bool (stats.Tgd_chase.Chase.outcome = Tgd_chase.Chase.Terminated) );
          ]))
  | Protocol.Snapshot { name } -> (
    match t.store with
    | None ->
      Error ("bad_request", "no durable store attached (start the server with --data-dir)")
    | Some store ->
      let checkpoint_one name =
        match Registry.find t.registry name with
        | None -> Error ("unknown_ontology", Printf.sprintf "unknown ontology %S" name)
        | Some entry ->
          let status = checkpoint_entry t store entry in
          Ok
            (Json.Obj
               [
                 ("name", Json.String name);
                 ("generation", Json.Int status.Tgd_store.Store.generation);
               ])
      in
      let names =
        match name with
        | Some n -> [ n ]
        | None -> List.map (fun (n, _, _, _, _) -> n) (Registry.list t.registry)
      in
      let rec go acc = function
        | [] -> Ok [ ("snapshots", Json.List (List.rev acc)) ]
        | n :: rest -> (
          match checkpoint_one n with
          | Ok j -> go (j :: acc) rest
          | Error e -> Error e)
      in
      go [] names)
  | Protocol.Prepare { ontology; query; target } ->
    handle_query t ~ontology ~query ~budget:None ~target ~eval:false
  | Protocol.Execute { ontology; query; budget; target } ->
    handle_query t ~ontology ~query ~budget ~target ~eval:true
  | Protocol.Stats ->
    let counters =
      Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (Tgd_exec.Telemetry.counters t.telemetry))
    in
    let peaks =
      Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (Tgd_exec.Telemetry.peaks t.telemetry))
    in
    let ontologies =
      Json.List
        (List.map
           (fun (name, epoch, delta_epoch, rules, facts) ->
             let base =
               [
                 ("name", Json.String name);
                 ("epoch", Json.Int epoch);
                 ("delta_epoch", Json.Int delta_epoch);
                 ("rules", Json.Int rules);
                 ("facts", Json.Int facts);
               ]
             in
             let store_fields =
               match t.store with
               | None -> []
               | Some store -> (
                 match Tgd_store.Store.status store ~name with
                 | None -> []
                 | Some s ->
                   [
                     ( "store",
                       Json.Obj
                         [
                           ("generation", Json.Int s.Tgd_store.Store.generation);
                           ("wal_records", Json.Int s.Tgd_store.Store.wal_records);
                           ("wal_bytes", Json.Int s.Tgd_store.Store.wal_bytes);
                         ] );
                   ])
             in
             Json.Obj (base @ store_fields))
           (Registry.list t.registry))
    in
    Ok
      [
        ("counters", counters);
        ("peaks", peaks);
        ("ontologies", ontologies);
        ( "cache",
          Json.Obj
            [
              ("size", Json.Int (Prepared.length t.cache));
              ("capacity", Json.Int (Prepared.capacity t.cache));
            ] );
        ( "store",
          match t.store with
          | None -> Json.Null
          | Some store ->
            Json.Obj
              [
                ("data_dir", Json.String (Tgd_store.Store.dir store));
                ("fsync", Json.Bool (Tgd_store.Store.fsync_enabled store));
              ] );
      ]
  | Protocol.Ping -> Ok [ ("pong", Json.Bool true) ]
  | Protocol.Shutdown -> Ok []

(* ------------------------------------------------------------------ *)
(* Construction + recovery                                             *)

(* Replay one WAL record through the ordinary registry paths (no logging:
   the record is already durable). Epoch counters advance exactly as they
   did pre-crash — the snapshot restored them and replay repeats the same
   mutation sequence — so recovered entries end on their original epochs. *)
let replay_record t ~name record =
  let gov, request_tele = mutation_governor t in
  let result =
    match record with
    | Tgd_store.Wal.Register { source } -> (
      match parse_ontology ~name source with
      | Error msg -> Error msg
      | Ok (program, facts) ->
        ignore (Registry.register t.registry ~name ~facts program);
        Ok ())
    | Tgd_store.Wal.Load_csv { csv } | Tgd_store.Wal.Add_facts { csv } ->
      Result.map ignore (Registry.load_csv_string ~gov t.registry ~name csv)
    | Tgd_store.Wal.Materialize ->
      Result.map ignore (Registry.materialize ~gov t.registry ~name)
  in
  Tgd_exec.Telemetry.merge_into ~into:t.telemetry request_tele;
  match result with
  | Ok () -> ignore (Tgd_exec.Telemetry.add t.telemetry "serve.store.replayed_records" 1)
  | Error msg ->
    ignore (Tgd_exec.Telemetry.add t.telemetry "serve.store.replay_errors" 1);
    Printf.eprintf "obda serve: WAL replay of %s for %S failed: %s\n%!"
      (Tgd_store.Wal.record_tag record) name msg

let recover_store t store =
  List.iter
    (fun (r : Tgd_store.Store.recovered) ->
      let name = r.Tgd_store.Store.name in
      (match r.Tgd_store.Store.snapshot with
      | None -> ()
      | Some snap -> (
        match parse_ontology ~name snap.Tgd_store.Snapshot.program_src with
        | Error msg ->
          ignore (Tgd_exec.Telemetry.add t.telemetry "serve.store.recovery_errors" 1);
          Printf.eprintf "obda serve: snapshot of %S unparseable, replaying WAL only: %s\n%!"
            name msg
        | Ok (program, _no_facts) ->
          (* The snapshot instance carries the data; its program text holds
             rules only, so the parse yields no facts to merge. *)
          let materialization =
            Option.map
              (fun (m : Tgd_store.Snapshot.materialization) ->
                {
                  Registry.model = m.Tgd_store.Snapshot.model;
                  floor = m.Tgd_store.Snapshot.floor;
                  complete = m.Tgd_store.Snapshot.complete;
                })
              snap.Tgd_store.Snapshot.materialization
          in
          ignore
            (Registry.restore t.registry ~name ~epoch:snap.Tgd_store.Snapshot.epoch
               ~delta_epoch:snap.Tgd_store.Snapshot.delta_epoch ?materialization program
               snap.Tgd_store.Snapshot.instance)));
      List.iter (replay_record t ~name) r.Tgd_store.Store.tail;
      if r.Tgd_store.Store.torn_bytes > 0 then
        ignore
          (Tgd_exec.Telemetry.add t.telemetry "serve.store.torn_bytes"
             r.Tgd_store.Store.torn_bytes);
      if Registry.find t.registry name <> None then
        ignore (Tgd_exec.Telemetry.add t.telemetry "serve.store.recovered_entries" 1))
    (Tgd_store.Store.recover store)

let create ?cache_capacity ?base_budget ?config ?target ?eval_workers ?eval_partitions ?store
    ?checkpoint_every () =
  let t =
    make ?cache_capacity ?base_budget ?config ?target ?eval_workers ?eval_partitions ?store
      ?checkpoint_every ()
  in
  Option.iter (recover_store t) t.store;
  t

(* ------------------------------------------------------------------ *)
(* The serving loop                                                    *)

let run ?workers ?(queue_bound = 64) t ic oc =
  let out_lock = Mutex.create () in
  let respond line =
    Mutex.lock out_lock;
    output_string oc line;
    output_char oc '\n';
    flush oc;
    Mutex.unlock out_lock
  in
  let scheduler = Scheduler.create ?workers ~queue_bound ~telemetry:t.telemetry () in
  let answer id = function
    | Ok fields -> respond (Protocol.response_ok ~id fields)
    | Error (kind, msg) -> respond (Protocol.response_error ~id ~kind msg)
  in
  Fun.protect
    ~finally:(fun () ->
      Scheduler.drain scheduler;
      Scheduler.shutdown scheduler)
    (fun () ->
      let outcome = ref `Eof in
      let stop = ref false in
      while not !stop do
        match input_line ic with
        | exception End_of_file -> stop := true
        | line when String.trim line = "" -> ()
        | line -> (
          match Protocol.parse line with
          | Error (id, msg) -> respond (Protocol.response_error ~id ~kind:"bad_request" msg)
          | Ok { Protocol.id; request } -> (
            match request with
            | Protocol.Prepare _ | Protocol.Execute _ -> (
              match Scheduler.submit scheduler (fun () -> answer id (handle t request)) with
              | Ok () -> ()
              | Error (`Overloaded depth) ->
                respond
                  (Protocol.response_error ~id ~kind:"overloaded"
                     (Printf.sprintf "queue full (%d waiting); retry later" depth))
              | Error `Closed ->
                respond (Protocol.response_error ~id ~kind:"internal" "scheduler closed"))
            | Protocol.Shutdown ->
              (* Let in-flight work answer first, then acknowledge and stop. *)
              Scheduler.drain scheduler;
              answer id (Ok [ ("stopping", Json.Bool true) ]);
              outcome := `Shutdown;
              stop := true
            | Protocol.Register_ontology _ | Protocol.Load_csv _ | Protocol.Add_facts _
            | Protocol.Materialize _ | Protocol.Snapshot _ | Protocol.Stats ->
              (* Registry mutations fence on in-flight queries — an epoch bump
                 must not race requests admitted before it — and stats waits
                 too, so its counters reflect every previously admitted
                 request. Only ping answers ahead of queued work. *)
              Scheduler.drain scheduler;
              answer id (handle t request)
            | Protocol.Ping -> answer id (handle t request)))
      done;
      !outcome)

let run_unix_socket ?workers ?queue_bound t ~path =
  if Sys.file_exists path then Unix.unlink path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with _ -> ());
      if Sys.file_exists path then Unix.unlink path)
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let stop = ref false in
      while not !stop do
        let client, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr client in
        let oc = Unix.out_channel_of_descr client in
        (* A plain EOF only ends this connection; a shutdown request stops
           the accept loop too. State persists across connections. *)
        (match run ?workers ?queue_bound t ic oc with
        | `Shutdown -> stop := true
        | `Eof -> ()
        | exception _ -> ());
        try Unix.close client with _ -> ()
      done)
