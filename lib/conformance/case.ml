open Tgd_logic

type t = {
  label : string;
  seed : int;
  program : Program.t;
  facts : Atom.t list;
  query : Cq.t;
}

let make ?(label = "handcrafted") ?(seed = 0) ~program ~facts query =
  { label; seed; program; facts; query }

let instance case = Tgd_db.Instance.of_atoms case.facts

let to_string case =
  let doc =
    {
      Tgd_parser.Parser.rules = Program.tgds case.program;
      facts = case.facts;
      queries = [ case.query ];
      constraints = [];
    }
  in
  Format.asprintf "%% tgd-conformance case v1@.%% label: %s@.%% seed: %d@.%a" case.label
    case.seed Tgd_parser.Printer.document doc

(* Metadata lives in comment lines the parser skips; scan them by hand. *)
let metadata src =
  let label = ref "corpus" and seed = ref 0 in
  String.split_on_char '\n' src
  |> List.iter (fun line ->
         let line = String.trim line in
         let prefixed p =
           if String.length line >= String.length p && String.sub line 0 (String.length p) = p
           then Some (String.trim (String.sub line (String.length p) (String.length line - String.length p)))
           else None
         in
         (match prefixed "% label:" with Some v -> label := v | None -> ());
         match prefixed "% seed:" with
         | Some v -> ( match int_of_string_opt v with Some n -> seed := n | None -> ())
         | None -> ());
  (!label, !seed)

let of_string ?(filename = "<case>") src =
  match Tgd_parser.Parser.parse_string ~filename src with
  | Error e -> Error (Format.asprintf "%a" Tgd_parser.Parser.pp_error e)
  | Ok doc -> (
    match Tgd_parser.Parser.program_of_document ~name:filename doc with
    | Error msg -> Error msg
    | Ok program -> (
      match doc.Tgd_parser.Parser.queries with
      | [ query ] ->
        let label, seed = metadata src in
        Ok { label; seed; program; facts = doc.Tgd_parser.Parser.facts; query }
      | [] -> Error "case has no query"
      | _ -> Error "case has more than one query"))

let save case ~path =
  let oc = open_out path in
  output_string oc (to_string case);
  close_out oc

let load path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let len = in_channel_length ic in
    let src = really_input_string ic len in
    close_in ic;
    of_string ~filename:(Filename.basename path) src

let pp ppf case = Format.pp_print_string ppf (to_string case)
