open Tgd_logic

type t = {
  classify : Program.t -> Tgd_core.Classifier.report;
  rewrite :
    config:Tgd_rewrite.Rewrite.config -> Program.t -> Cq.t -> Tgd_rewrite.Rewrite.result;
  rewrite_union :
    config:Tgd_rewrite.Rewrite.config -> Program.t -> Cq.ucq -> Tgd_rewrite.Rewrite.result;
  eval_ucq : Tgd_db.Instance.t -> Cq.ucq -> Tgd_db.Tuple.t list;
  eval_ucq_par :
    workers:int -> partitions:int -> Tgd_db.Instance.t -> Cq.ucq -> Tgd_db.Tuple.t list;
  certain_cq :
    max_rounds:int ->
    max_facts:int ->
    Program.t ->
    Tgd_db.Instance.t ->
    Cq.t ->
    Tgd_chase.Certain.result;
  chase_run :
    max_rounds:int -> max_facts:int -> Program.t -> Tgd_db.Instance.t -> Tgd_chase.Chase.stats;
  delta_apply :
    max_rounds:int ->
    max_facts:int ->
    Program.t ->
    Tgd_db.Instance.t ->
    Tgd_db.Instance.fact list ->
    Tgd_chase.Delta_chase.stats;
  rewrite_datalog :
    config:Tgd_rewrite.Datalog_rw.config -> Program.t -> Cq.t -> Tgd_rewrite.Datalog_rw.result;
  datalog_answers : Tgd_rewrite.Datalog_rw.result -> Tgd_db.Instance.t -> Tgd_db.Tuple.t list;
  canon_key : Cq.t -> string;
  serve_handle :
    Tgd_serve.Server.t ->
    Tgd_serve.Protocol.request ->
    ((string * Tgd_serve.Json.t) list, string * string) result;
}

(* Round and fact caps alone do not bound chase WORK: a recursive rule with
   a self-join enumerates O(facts^2) trigger candidates per round, so a
   20k-fact instance can stall for minutes below its caps. The governed
   budgets put a ceiling on trigger applications and join-search steps; when
   one is hit, Certain reports [exact = false] and Chase reports [Truncated],
   which the invariants already treat as Skip / probe data. *)
let governed ~max_rounds ~max_facts =
  let budget =
    {
      Tgd_exec.Budget.unlimited with
      Tgd_exec.Budget.chase_rounds = Some max_rounds;
      chase_facts = Some max_facts;
      chase_triggers = Some 200_000;
      eval_steps = Some 2_000_000;
    }
  in
  Tgd_exec.Governor.create ~budget ()

let real =
  {
    classify = (fun p -> Tgd_core.Classifier.classify p);
    rewrite = (fun ~config p q -> Tgd_rewrite.Rewrite.ucq ~config p q);
    rewrite_union = (fun ~config p u -> Tgd_rewrite.Rewrite.ucq_of_union ~config p u);
    eval_ucq =
      (fun inst u ->
        Tgd_db.Eval.ucq inst u |> List.filter (fun t -> not (Tgd_db.Tuple.has_null t)));
    eval_ucq_par =
      (fun ~workers ~partitions inst u ->
        Tgd_db.Instance.seal ~partitions inst;
        (* min_tuples:1 forces the morsel machinery even on fuzz-scale
           instances, which would otherwise all take the sequential
           fallback and test nothing. *)
        Tgd_db.Par_eval.ucq ~workers ~min_tuples:1 inst u
        |> List.filter (fun t -> not (Tgd_db.Tuple.has_null t)));
    certain_cq =
      (fun ~max_rounds ~max_facts p inst q ->
        Tgd_chase.Certain.cq ~gov:(governed ~max_rounds ~max_facts) p inst q);
    chase_run =
      (fun ~max_rounds ~max_facts p inst ->
        Tgd_chase.Chase.run ~gov:(governed ~max_rounds ~max_facts) p inst);
    delta_apply =
      (fun ~max_rounds ~max_facts p inst batch ->
        Tgd_chase.Delta_chase.apply ~gov:(governed ~max_rounds ~max_facts) p inst batch);
    rewrite_datalog = (fun ~config p q -> Tgd_rewrite.Datalog_rw.rewrite ~config p q);
    datalog_answers = (fun r inst -> Tgd_obda.Target.datalog_answers r inst);
    canon_key = (fun q -> (Tgd_serve.Canon.of_cq q).Tgd_serve.Canon.key);
    serve_handle = (fun server req -> Tgd_serve.Server.handle server req);
  }
