(** Seeded, class-biased case generation.

    The case stream is a pure function of [(seed, index)]: case [i] derives
    its own PRNG from the pair, so any single case can be regenerated
    without replaying the stream, and the stream is identical across
    processes, platforms and domain counts. Cases rotate through bias
    families targeting each classifier class of [lib/classes] — the class
    boundaries are exactly where implementations break — plus a free family
    exercising the unclassified wilderness. *)

type family =
  | Linear
  | Swr
  | Multilinear
  | Sticky
  | Weakly_acyclic
  | Datalog
  | Free

val families : family array
(** The rotation order of the stream. *)

val family_name : family -> string

val case : seed:int -> index:int -> Case.t
(** The [index]-th case of stream [seed]. Deterministic. *)

val update_batches : Case.t -> Tgd_logic.Atom.t list list
(** 1–8 insert batches of ground atoms, a pure function of the case's seed
    (works for corpus cases too). The update-sequence invariant applies them
    one by one, checking the incremental chase against a from-scratch one
    after every batch. *)
