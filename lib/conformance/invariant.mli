(** The registry of cross-layer conformance invariants.

    Nine invariant classes, each a metamorphic or differential statement
    the paper (or the serving architecture) promises:

    - {b subsumption}: the classifier lattice holds — linear ⊆ multilinear ⊆
      guarded, linear/multilinear ⊆ SWR on simple sets, sticky ⊆ sticky-join,
      datalog ⊆ weakly-acyclic, SWR ⊆ WR (when the WR graph completed), and a
      weakly-acyclic claim means the chase actually terminates;
    - {b differential}: on SWR-classified cases, rewrite∘evaluate equals
      chase-materialize-then-evaluate (Definition 1 made executable);
    - {b metamorphic}: answer-preserving transforms preserve answers —
      consistent variable renaming (also at the {!Tgd_serve.Canon} key level),
      body atom reordering, disjunct permutation of the rewriting, union with
      a subsumed CQ, fact duplication;
    - {b serve}: the serving path (registry + prepared cache + epochs) returns
      byte-identical JSON answers to direct rewrite∘evaluate, across cache
      misses, hits, and epoch bumps — and never serves a stale epoch;
    - {b eval-parallel}: morsel-parallel evaluation agrees byte-for-byte
      with sequential evaluation, at worker/partition counts derived from
      the case seed;
    - {b truncation}: budget-truncated runs are sound — the answers of a
      truncated rewriting and of a truncated chase are subsets of the
      complete ones;
    - {b update-sequence}: applying 1–8 fuzzed insert batches through the
      incremental chase ({!Tgd_chase.Delta_chase}) yields, after every
      batch, the same certain answers, the same null-free facts, and a
      model hom-equivalent in both directions to a from-scratch chase of
      the accumulated facts;
    - {b durability}: persisting through the WAL and/or a snapshot and
      recovering into a fresh server changes no observable — answers,
      epochs, null-free facts, materialization;
    - {b rewrite-target}: the UCQ and the shared-pattern Datalog rewriting
      backends ({!Tgd_rewrite.Rewrite} vs {!Tgd_rewrite.Datalog_rw})
      compute identical certain answers on every case where both report a
      complete artifact — no class gating, since a terminated piece
      fixpoint is complete regardless of the classifier's verdict.

    Every check consults the stack only through an {!Oracle.t}, so a fault
    injected into one oracle field must be caught by the corresponding
    invariant (the mutant acceptance tests in [test/test_conformance.ml]). *)

type outcome =
  | Pass
  | Fail of string  (** the invariant is violated; the message is the witness *)
  | Skip of string  (** the case does not qualify (budget hit, class mismatch) *)

type t = {
  name : string;
  describe : string;
  check : Oracle.t -> Case.t -> outcome;
}

val all : t list
(** The full registry, in reporting order. *)

val find : string -> t option

val outcome_to_string : outcome -> string
