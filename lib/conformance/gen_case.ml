open Tgd_logic
open Tgd_gen

type family =
  | Linear
  | Swr
  | Multilinear
  | Sticky
  | Weakly_acyclic
  | Datalog
  | Free

let families = [| Linear; Swr; Multilinear; Sticky; Weakly_acyclic; Datalog; Free |]

let family_name = function
  | Linear -> "linear"
  | Swr -> "swr"
  | Multilinear -> "multilinear"
  | Sticky -> "sticky"
  | Weakly_acyclic -> "weakly-acyclic"
  | Datalog -> "datalog"
  | Free -> "free"

(* The free-generator shape shared by the acceptance-sampled families: the
   same scale the differential oracle has exercised for thousands of seeds. *)
let free_config =
  {
    Gen_tgd.default_config with
    Gen_tgd.n_predicates = 4;
    max_arity = 2;
    n_rules = 4;
    max_body_atoms = 2;
    max_head_atoms = 1;
    existential_rate = 0.3;
  }

(* Acceptance sampling with a deterministic fallback: if no member of the
   class shows up within the budget, the last draw is used (the invariants
   classify every case themselves, so the bias label is advisory). *)
let sample rng accept =
  let last = ref None in
  let draw () =
    let p = Gen_tgd.random_simple_program rng free_config in
    last := Some p;
    p
  in
  match Gen_tgd.sample_in_class ~max_tries:60 accept draw with
  | Some p -> p
  | None -> ( match !last with Some p -> p | None -> draw ())

let program rng = function
  | Linear ->
    Gen_tgd.simple_linear rng ~n_rules:(2 + Rng.int rng 4) ~n_predicates:4 ~max_arity:2
  | Multilinear ->
    Gen_tgd.simple_multilinear rng ~n_rules:(2 + Rng.int rng 3) ~n_predicates:3 ~arity:2
  | Swr -> sample rng (fun p -> (Tgd_core.Swr.check p).Tgd_core.Swr.swr)
  | Sticky -> sample rng Tgd_classes.Sticky.sticky
  | Weakly_acyclic -> sample rng Tgd_classes.Weakly_acyclic.check
  | Datalog ->
    (* Existential rate 0 makes every head variable a frontier variable. *)
    Gen_tgd.random_simple_program rng { free_config with Gen_tgd.existential_rate = 0.0 }
  | Free ->
    (* Exercises the declared-signature path of the generator. *)
    let sg = Gen_tgd.signature rng free_config in
    Gen_tgd.random_simple_program ~signature:sg rng free_config

(* Small random CQs over the program's declared signature: 1-2 atoms drawn
   from a pool of 3 variables (collisions make joins interesting), each
   variable flipping a coin to be an answer variable. *)
let random_cq rng p =
  let preds = Program.predicates p in
  let n_atoms = 1 + Rng.int rng 2 in
  let term_of_var i = Term.var (Printf.sprintf "X%d" i) in
  let body =
    List.init n_atoms (fun _ ->
        let pred, arity = Rng.choose rng preds in
        Atom.make pred (List.init arity (fun _ -> term_of_var (Rng.int rng 3))))
  in
  let vars =
    Symbol.Set.elements
      (List.fold_left (fun acc a -> Symbol.Set.union acc (Atom.vars a)) Symbol.Set.empty body)
  in
  let answer =
    List.filter (fun _ -> Rng.bool rng 0.5) vars |> List.map (fun v -> Term.Var v)
  in
  Cq.make ~name:"q" ~answer ~body

(* Update sequences are derived from the case's own seed (through an odd
   affine transform, so the batch stream is independent of the streams that
   built the case) rather than stored in the case: corpus serialization,
   shrinking and CLI replay stay unchanged, and any case — including a
   handcrafted corpus one — has a well-defined update sequence. *)
let update_batches (case : Case.t) =
  let rng = Rng.create ((case.Case.seed * 0x41C64E6D) + 0x3039) in
  let preds = Program.predicates case.Case.program in
  if preds = [] then []
  else begin
    let n_batches = 1 + Rng.int rng 8 in
    List.init n_batches (fun _ ->
        let n_facts = 1 + Rng.int rng 4 in
        List.init n_facts (fun _ ->
            let pred, arity = Rng.choose rng preds in
            (* The constant pool overlaps Gen_db's base-instance domain so
               inserted facts join against pre-existing ones. *)
            Atom.make pred
              (List.init arity (fun _ ->
                   Term.const (Printf.sprintf "d%d" (Rng.int rng 6))))))
  end

let case ~seed ~index =
  (* SplitMix64 states separated by a large odd constant give independent
     streams; the derived value is also the case's reproduction seed. *)
  let case_seed = seed + (index * 0x5851F42D) in
  let rng = Rng.create case_seed in
  (* The family is a function of the derived seed alone, so replaying a case
     by its own seed ([--seed <case_seed> --cases 1]) regenerates it exactly.
     The stride 0x5851F42D mod 7 = 4 is coprime to 7, so consecutive indices
     still rotate through every family. *)
  let n = Array.length families in
  let family = families.(((case_seed mod n) + n) mod n) in
  let p = program rng family in
  let inst =
    Gen_db.random_instance rng p ~facts_per_predicate:(3 + Rng.int rng 3)
      ~domain_size:(3 + Rng.int rng 2)
  in
  let query = random_cq rng p in
  {
    Case.label = family_name family;
    seed = case_seed;
    program = p;
    facts = Tgd_db.Instance.to_atoms inst;
    query;
  }
