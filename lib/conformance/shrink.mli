(** Greedy structural shrinking of failing cases.

    [minimize ~reproduces case] repeatedly tries dropping one TGD, then one
    fact, then one query body atom, keeping any variant for which
    [reproduces] still returns [true], until a fixpoint. Candidate variants
    are always well-formed: rule deletion goes through {!Tgd_logic.Program.make}
    (rejecting programs that lose validity), and query shrinking preserves
    safety (every answer variable still occurs in the body) and a non-empty
    body. The result reproduces the failure whenever the input did. *)

val minimize : reproduces:(Case.t -> bool) -> Case.t -> Case.t
