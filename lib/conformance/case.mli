(** A conformance fuzz case: one (TGD set, instance, CQ) triple, with the
    metadata needed to reproduce it.

    Cases serialize to the repository's ontology text format (rules, ground
    facts, one query) prefixed by [%]-comment metadata lines, so a shrunk
    failing case checked into [test/corpus/] is read back by the standard
    parser and replayed forever after by [dune runtest] — and can also be
    inspected (or classified, rewritten, chased) by the [obda] CLI
    directly. *)

open Tgd_logic

type t = {
  label : string;  (** generator bias family (["linear"], ["free"], ...) *)
  seed : int;  (** the derived per-case seed; [0] for handcrafted cases *)
  program : Program.t;
  facts : Atom.t list;  (** ground atoms: the extensional instance *)
  query : Cq.t;
}

val make : ?label:string -> ?seed:int -> program:Program.t -> facts:Atom.t list -> Cq.t -> t

val instance : t -> Tgd_db.Instance.t
(** A fresh mutable instance holding the case's facts. *)

val to_string : t -> string
(** The corpus rendering: metadata comments, rules, facts, query. *)

val of_string : ?filename:string -> string -> (t, string) result
(** Inverse of {!to_string}; also accepts any parseable ontology document
    with exactly one query (metadata lines are optional). *)

val save : t -> path:string -> unit
val load : string -> (t, string) result

val pp : Format.formatter -> t -> unit
