open Tgd_logic

type outcome =
  | Pass
  | Fail of string
  | Skip of string

type t = {
  name : string;
  describe : string;
  check : Oracle.t -> Case.t -> outcome;
}

let outcome_to_string = function
  | Pass -> "pass"
  | Fail msg -> "FAIL: " ^ msg
  | Skip why -> "skip (" ^ why ^ ")"

(* ------------------------------------------------------------------ *)
(* Shared budgets. Same scale as the differential oracle of PR 2, which
   has agreed across thousands of seeded cases at these settings.       *)

let rewrite_config = { Tgd_rewrite.Rewrite.default_config with Tgd_rewrite.Rewrite.max_cqs = 3_000 }
let chase_rounds = 60
let chase_facts = 20_000
let termination_rounds = 300
let termination_facts = 60_000

(* The ungated invariants (metamorphic, serve, truncation) rewrite and chase
   arbitrary generated programs, including non-FO-rewritable ones whose
   rewriting saturates any budget; a tight budget keeps the sweep fast and
   budget hits degrade to skips, never wrong verdicts. The depth cap also
   bounds disjunct body width (each step adds at most one atom), which keeps
   the downstream join evaluation polynomial-ish on recursive datalog cases. *)
let bounded_rewrite_config =
  {
    Tgd_rewrite.Rewrite.default_config with
    Tgd_rewrite.Rewrite.max_cqs = 300;
    Tgd_rewrite.Rewrite.max_depth = 4;
  }

let bounded_chase_rounds = 6
let bounded_chase_facts = 4_000

(* ------------------------------------------------------------------ *)
(* Answer-list helpers (all answer lists are null-free, deduplicated and
   sorted — the Oracle.eval_ucq / Certain contracts).                   *)

let tuples_equal l1 l2 =
  List.length l1 = List.length l2 && List.for_all2 Tgd_db.Tuple.equal l1 l2

let tuples_subset small big =
  List.for_all (fun t -> List.exists (Tgd_db.Tuple.equal t) big) small

let show_tuples l =
  let shown = List.filteri (fun i _ -> i < 5) l in
  Printf.sprintf "%d tuple(s)%s" (List.length l)
    (if shown = [] then ""
     else
       ": "
       ^ String.concat " " (List.map (fun t -> Format.asprintf "%a" Tgd_db.Tuple.pp t) shown)
       ^ if List.length l > 5 then " ..." else "")

let complete (r : Tgd_rewrite.Rewrite.result) =
  match r.Tgd_rewrite.Rewrite.outcome with
  | Tgd_rewrite.Rewrite.Complete -> true
  | Tgd_rewrite.Rewrite.Truncated _ -> false

(* ------------------------------------------------------------------ *)
(* 1. Classifier subsumption lattice                                    *)

let check_subsumption (o : Oracle.t) (case : Case.t) =
  let r = o.Oracle.classify case.Case.program in
  let violations = ref [] in
  let claim cond msg = if cond then violations := msg :: !violations in
  claim (r.Tgd_core.Classifier.linear && not r.Tgd_core.Classifier.multilinear)
    "linear but not multilinear";
  claim (r.Tgd_core.Classifier.multilinear && not r.Tgd_core.Classifier.guarded)
    "multilinear but not guarded";
  claim
    (r.Tgd_core.Classifier.simple && r.Tgd_core.Classifier.linear
   && not r.Tgd_core.Classifier.swr)
    "simple linear but not SWR (Section 5 subsumption)";
  claim
    (r.Tgd_core.Classifier.simple
    && r.Tgd_core.Classifier.multilinear
    && not r.Tgd_core.Classifier.swr)
    "simple multilinear but not SWR (Section 5 subsumption)";
  claim (r.Tgd_core.Classifier.sticky && not r.Tgd_core.Classifier.sticky_join)
    "sticky but not sticky-join";
  claim (r.Tgd_core.Classifier.datalog && not r.Tgd_core.Classifier.weakly_acyclic)
    "datalog but not weakly acyclic";
  claim (r.Tgd_core.Classifier.swr && not r.Tgd_core.Classifier.simple)
    "SWR claimed on a non-simple set";
  claim
    (r.Tgd_core.Classifier.simple && r.Tgd_core.Classifier.swr
    && r.Tgd_core.Classifier.wr_established
    && not r.Tgd_core.Classifier.wr)
    "SWR but not WR (Section 6 subsumption)";
  (* A weak-acyclicity claim is a chase-termination promise; at fuzz-case
     scale the restricted chase of a genuinely WA set finishes orders of
     magnitude below this budget, so hitting it means the claim is wrong. *)
  if r.Tgd_core.Classifier.weakly_acyclic then begin
    let inst = Case.instance case in
    let stats =
      o.Oracle.chase_run ~max_rounds:termination_rounds ~max_facts:termination_facts
        case.Case.program inst
    in
    match stats.Tgd_chase.Chase.outcome with
    | Tgd_chase.Chase.Terminated -> ()
    | Tgd_chase.Chase.Truncated _ ->
      violations := "claimed weakly acyclic but the chase hit its budget" :: !violations
  end;
  match !violations with
  | [] -> Pass
  | vs -> Fail (String.concat "; " vs)

(* ------------------------------------------------------------------ *)
(* 2. Differential: rewrite∘eval ≡ chase certain answers on SWR cases   *)

let check_differential (o : Oracle.t) (case : Case.t) =
  let r = o.Oracle.classify case.Case.program in
  if not r.Tgd_core.Classifier.swr then Skip "not SWR-classified"
  else begin
    let rw = o.Oracle.rewrite ~config:rewrite_config case.Case.program case.Case.query in
    if not (complete rw) then Skip "rewriting budget hit"
    else begin
      let inst = Case.instance case in
      let via_rw = o.Oracle.eval_ucq inst rw.Tgd_rewrite.Rewrite.ucq in
      let cert =
        o.Oracle.certain_cq ~max_rounds:chase_rounds ~max_facts:chase_facts case.Case.program
          inst case.Case.query
      in
      if not cert.Tgd_chase.Certain.exact then Skip "chase budget hit"
      else if tuples_equal via_rw cert.Tgd_chase.Certain.answers then Pass
      else
        Fail
          (Printf.sprintf "rewriting gives %s but chase gives %s" (show_tuples via_rw)
             (show_tuples cert.Tgd_chase.Certain.answers))
    end
  end

(* ------------------------------------------------------------------ *)
(* 3. Metamorphic transforms                                            *)

let rename_term prefix = function
  | Term.Var v -> Term.var (prefix ^ Symbol.name v)
  | Term.Const _ as c -> c

let rename_cq prefix (q : Cq.t) =
  Cq.make ~name:q.Cq.name
    ~answer:(List.map (rename_term prefix) q.Cq.answer)
    ~body:(List.map (Atom.apply (rename_term prefix)) q.Cq.body)

(* A proper syntactic specialization: unify the two least variables. The
   image is contained in the original on every database. *)
let subsumed_variant (q : Cq.t) =
  match Symbol.Set.elements (Cq.vars q) with
  | v1 :: v2 :: _ ->
    let subst = function
      | Term.Var v when Symbol.equal v v1 -> Term.Var v2
      | t -> t
    in
    Cq.make ~name:(q.Cq.name ^ "_sub")
      ~answer:(List.map subst q.Cq.answer)
      ~body:(List.map (Atom.apply subst) q.Cq.body)
  | _ -> q (* a single-variable query: the variant is the query itself *)

let check_metamorphic (o : Oracle.t) (case : Case.t) =
  let p = case.Case.program and q = case.Case.query in
  let base = o.Oracle.rewrite ~config:bounded_rewrite_config p q in
  if not (complete base) then Skip "rewriting budget hit"
  else begin
    let inst = Case.instance case in
    let answers = o.Oracle.eval_ucq inst base.Tgd_rewrite.Rewrite.ucq in
    let failures = ref [] in
    let expect name got =
      if not (tuples_equal answers got) then
        failures :=
          Printf.sprintf "%s changed the answers (%s -> %s)" name (show_tuples answers)
            (show_tuples got)
          :: !failures
    in
    (* (a) consistent variable renaming: same canonical key, same answers. *)
    let renamed = rename_cq "R" q in
    if not (String.equal (o.Oracle.canon_key q) (o.Oracle.canon_key renamed)) then
      failures := "variable renaming changed the canonical cache key" :: !failures;
    let rw_renamed = o.Oracle.rewrite ~config:bounded_rewrite_config p renamed in
    if complete rw_renamed then
      expect "variable renaming" (o.Oracle.eval_ucq inst rw_renamed.Tgd_rewrite.Rewrite.ucq);
    (* (b) body atom reordering. *)
    let reordered =
      Cq.make ~name:q.Cq.name ~answer:q.Cq.answer ~body:(List.rev q.Cq.body)
    in
    if not (String.equal (o.Oracle.canon_key q) (o.Oracle.canon_key reordered)) then
      failures := "body reordering changed the canonical cache key" :: !failures;
    let rw_reordered = o.Oracle.rewrite ~config:bounded_rewrite_config p reordered in
    if complete rw_reordered then
      expect "body reordering" (o.Oracle.eval_ucq inst rw_reordered.Tgd_rewrite.Rewrite.ucq);
    (* (c) disjunct permutation of the rewriting. *)
    expect "disjunct permutation" (o.Oracle.eval_ucq inst (List.rev base.Tgd_rewrite.Rewrite.ucq));
    (* (d) union with a subsumed CQ. *)
    let q_sub = subsumed_variant q in
    if not (Containment.contained q_sub q) then
      failures := "containment engine rejects a syntactic specialization" :: !failures
    else begin
      let rw_union = o.Oracle.rewrite_union ~config:bounded_rewrite_config p [ q; q_sub ] in
      if complete rw_union then
        expect "union with a subsumed CQ"
          (o.Oracle.eval_ucq inst rw_union.Tgd_rewrite.Rewrite.ucq)
    end;
    (* (e) fact duplication: set semantics must absorb it. *)
    let doubled = Tgd_db.Instance.of_atoms (case.Case.facts @ case.Case.facts) in
    expect "fact duplication" (o.Oracle.eval_ucq doubled base.Tgd_rewrite.Rewrite.ucq);
    match !failures with
    | [] -> Pass
    | fs -> Fail (String.concat "; " fs)
  end

(* ------------------------------------------------------------------ *)
(* 4. Serve path vs direct evaluation                                   *)

let json_of_answers answers =
  Tgd_serve.Json.List
    (List.map
       (fun tup ->
         Tgd_serve.Json.List
           (Array.to_list
              (Array.map
                 (fun v ->
                   Tgd_serve.Json.String (Format.asprintf "%a" Tgd_db.Value.pp v))
                 tup)))
       answers)

let field name fields = List.assoc_opt name fields

let check_serve (o : Oracle.t) (case : Case.t) =
  let p = case.Case.program in
  (* The direct reference: same rewriting configuration as the server
     (single-domain minimization; identical structural limits). *)
  let config =
    { bounded_rewrite_config with Tgd_rewrite.Rewrite.domains = Some 1 }
  in
  let direct = o.Oracle.rewrite ~config p case.Case.query in
  if not (complete direct) then Skip "rewriting budget hit"
  else begin
    let inst = Case.instance case in
    let direct_json =
      Tgd_serve.Json.to_string
        (json_of_answers (o.Oracle.eval_ucq inst direct.Tgd_rewrite.Rewrite.ucq))
    in
    let server = Tgd_serve.Server.create ~config:bounded_rewrite_config () in
    let source =
      Format.asprintf "%a"
        Tgd_parser.Printer.document
        {
          Tgd_parser.Parser.rules = Program.tgds p;
          facts = case.Case.facts;
          queries = [];
          constraints = [];
        }
    in
    let query_src = Format.asprintf "%a" Tgd_parser.Printer.query case.Case.query in
    let register () =
      o.Oracle.serve_handle server
        (Tgd_serve.Protocol.Register_ontology
           { name = "fuzz"; source = Tgd_serve.Protocol.Inline source })
    in
    let execute () =
      o.Oracle.serve_handle server
        (Tgd_serve.Protocol.Execute { ontology = "fuzz"; query = query_src; budget = None; target = None })
    in
    let epoch_of fields =
      match field "epoch" fields with Some (Tgd_serve.Json.Int e) -> Some e | _ -> None
    in
    (* One run = register; execute (miss); execute (hit); re-register (epoch
       bump); execute (must miss: stale hit would serve an old epoch);
       execute (hit again). Answers must be byte-identical throughout. *)
    let ( let* ) r f = match r with Error e -> Error e | Ok v -> f v in
    let step_execute ~label ~want_cached =
      let* fields = Result.map_error snd (execute ()) in
      match (field "truncated" fields, field "complete" fields) with
      | Some _, _ -> Error "__skip_truncated"
      | _, Some (Tgd_serve.Json.Bool false) -> Error "__skip_incomplete"
      | _ -> (
        match (field "answers" fields, field "cached" fields) with
        | Some answers, Some (Tgd_serve.Json.Bool cached) ->
          let serve_json = Tgd_serve.Json.to_string answers in
          if not (String.equal serve_json direct_json) then
            Error
              (Printf.sprintf "%s: serve answers %s differ from direct %s" label serve_json
                 direct_json)
          else if cached <> want_cached then
            Error
              (Printf.sprintf "%s: expected cached=%b, got %b%s" label want_cached cached
                 (if cached then " (stale prepared entry served)"
                  else " (prepared cache missed an identical resubmission)"))
          else Ok fields
        | _ -> Error (label ^ ": response is missing answers/cached fields"))
    in
    let outcome =
      let* reg1 = Result.map_error snd (register ()) in
      let* _ = step_execute ~label:"first execute" ~want_cached:false in
      let* _ = step_execute ~label:"warm execute" ~want_cached:true in
      let* reg2 = Result.map_error snd (register ()) in
      let* () =
        match (epoch_of reg1, epoch_of reg2) with
        | Some e1, Some e2 when e2 > e1 -> Ok ()
        | Some e1, Some e2 -> Error (Printf.sprintf "epoch not monotone: %d then %d" e1 e2)
        | _ -> Error "registration response is missing the epoch"
      in
      let* _ = step_execute ~label:"post-epoch execute" ~want_cached:false in
      let* _ = step_execute ~label:"re-warmed execute" ~want_cached:true in
      Ok ()
    in
    match outcome with
    | Ok () -> Pass
    | Error "__skip_truncated" -> Skip "serve run truncated by the server budget"
    | Error "__skip_incomplete" -> Skip "serve rewriting incomplete"
    | Error msg -> Fail msg
  end

(* ------------------------------------------------------------------ *)
(* 5. Parallel evaluation equals sequential evaluation                  *)

let check_eval_parallel (o : Oracle.t) (case : Case.t) =
  let rw = o.Oracle.rewrite ~config:bounded_rewrite_config case.Case.program case.Case.query in
  if not (complete rw) then Skip "rewriting budget hit"
  else begin
    let seq = o.Oracle.eval_ucq (Case.instance case) rw.Tgd_rewrite.Rewrite.ucq in
    (* Worker and partition counts are derived from the case seed so every
       replay exercises the same configuration. *)
    let workers = 2 + (case.Case.seed land 3) in
    let partitions = 1 + ((case.Case.seed lsr 2) land 7) in
    let par =
      o.Oracle.eval_ucq_par ~workers ~partitions (Case.instance case)
        rw.Tgd_rewrite.Rewrite.ucq
    in
    if tuples_equal seq par then Pass
    else
      Fail
        (Printf.sprintf "parallel evaluation (%d workers, %d partitions) gives %s but sequential gives %s"
           workers partitions (show_tuples par) (show_tuples seq))
  end

(* ------------------------------------------------------------------ *)
(* 6. Truncation soundness                                              *)

let check_truncation (o : Oracle.t) (case : Case.t) =
  let p = case.Case.program and q = case.Case.query in
  let inst = Case.instance case in
  let failures = ref [] in
  (* Rewriting: a budget-truncated UCQ must under-approximate the complete
     one. *)
  let full = o.Oracle.rewrite ~config:bounded_rewrite_config p q in
  (if complete full then begin
     let reference = o.Oracle.eval_ucq inst full.Tgd_rewrite.Rewrite.ucq in
     let tiny =
       o.Oracle.rewrite
         ~config:{ bounded_rewrite_config with Tgd_rewrite.Rewrite.max_cqs = 1 }
         p q
     in
     let truncated_answers = o.Oracle.eval_ucq inst tiny.Tgd_rewrite.Rewrite.ucq in
     if not (tuples_subset truncated_answers reference) then
       failures :=
         Printf.sprintf "truncated rewriting answers (%s) are not a subset of complete (%s)"
           (show_tuples truncated_answers) (show_tuples reference)
         :: !failures
   end);
  (* Chase: fewer rounds can only shrink the (monotone) answer set. *)
  let small = o.Oracle.certain_cq ~max_rounds:1 ~max_facts:bounded_chase_facts p inst q in
  let big = o.Oracle.certain_cq ~max_rounds:bounded_chase_rounds ~max_facts:bounded_chase_facts p inst q in
  if not (tuples_subset small.Tgd_chase.Certain.answers big.Tgd_chase.Certain.answers) then
    failures :=
      Printf.sprintf "1-round chase answers (%s) are not a subset of %d-round answers (%s)"
        (show_tuples small.Tgd_chase.Certain.answers)
        bounded_chase_rounds
        (show_tuples big.Tgd_chase.Certain.answers)
      :: !failures;
  match !failures with
  | [] -> Pass
  | fs -> Fail (String.concat "; " fs)

(* ------------------------------------------------------------------ *)
(* 7. Update sequences: delta-incremental chase equals from-scratch     *)

let us_rounds = 30
let us_facts = 6_000

let fact_compare (p1, t1) (p2, t2) =
  let c = Symbol.compare p1 p2 in
  if c <> 0 then c else Tgd_db.Tuple.compare t1 t2

let null_free_facts inst =
  Tgd_db.Instance.facts inst
  |> List.filter (fun (_, t) -> not (Tgd_db.Tuple.has_null t))
  |> List.sort_uniq fact_compare

let facts_equal l1 l2 =
  List.length l1 = List.length l2 && List.for_all2 (fun f1 f2 -> fact_compare f1 f2 = 0) l1 l2

let fact_of_atom (a : Atom.t) = (a.Atom.pred, Array.map Tgd_db.Value.of_term a.Atom.args)

(* The incremental model need not be isomorphic to the from-scratch one
   (trigger orders differ), but both are universal models of the same
   knowledge base, so they must be hom-equivalent — and their null-free
   parts, hence all certain answers, must coincide exactly. Hom-equivalence
   in both directions is the isomorphism-type-of-the-core check: each model,
   read as a boolean CQ with nulls as variables, maps into the other. The
   hom search is exponential in the worst case, so it only runs on models
   small enough to be cheap. *)
let hom_equiv_cap = 48

let check_update_sequence (o : Oracle.t) (case : Case.t) =
  match Gen_case.update_batches case with
  | [] -> Skip "the program declares no predicates to build batches from"
  | batches -> (
    let p = case.Case.program in
    let inc = Case.instance case in
    let base = o.Oracle.chase_run ~max_rounds:us_rounds ~max_facts:us_facts p inc in
    match base.Tgd_chase.Chase.outcome with
    | Tgd_chase.Chase.Truncated _ -> Skip "base chase budget hit"
    | Tgd_chase.Chase.Terminated ->
      let exception Stop of outcome in
      let applied = ref [] in
      let step i batch =
        let label msg = Printf.sprintf "batch %d: %s" (i + 1) msg in
        applied := !applied @ batch;
        let stats =
          o.Oracle.delta_apply ~max_rounds:us_rounds ~max_facts:us_facts p inc
            (List.map fact_of_atom batch)
        in
        (match stats.Tgd_chase.Delta_chase.outcome with
        | Tgd_chase.Chase.Truncated _ -> raise (Stop (Skip "incremental chase budget hit"))
        | Tgd_chase.Chase.Terminated -> ());
        if not stats.Tgd_chase.Delta_chase.consistent then
          (* Generated cases carry no EGDs, so this is unreachable today; a
             corpus case with EGDs skips rather than comparing the
             inconsistent marker states. *)
          raise (Stop (Skip "EGD violation during the update sequence"));
        let scratch = Tgd_db.Instance.of_atoms (case.Case.facts @ !applied) in
        let s = o.Oracle.chase_run ~max_rounds:us_rounds ~max_facts:us_facts p scratch in
        (match s.Tgd_chase.Chase.outcome with
        | Tgd_chase.Chase.Truncated _ -> raise (Stop (Skip "from-scratch chase budget hit"))
        | Tgd_chase.Chase.Terminated -> ());
        (* (a) certain answers of the case query coincide. *)
        let a_inc = o.Oracle.eval_ucq inc [ case.Case.query ] in
        let a_scratch = o.Oracle.eval_ucq scratch [ case.Case.query ] in
        if not (tuples_equal a_inc a_scratch) then
          raise
            (Stop
               (Fail
                  (label
                     (Printf.sprintf "incremental certain answers %s differ from from-scratch %s"
                        (show_tuples a_inc) (show_tuples a_scratch)))));
        (* (b) the null-free parts coincide exactly. *)
        if not (facts_equal (null_free_facts inc) (null_free_facts scratch)) then
          raise
            (Stop
               (Fail (label "null-free facts of the incremental and from-scratch models differ")));
        (* (c) hom-equivalence in both directions (size-capped). *)
        let atoms_inc = Tgd_db.Instance.to_atoms inc in
        let atoms_scratch = Tgd_db.Instance.to_atoms scratch in
        if
          List.length atoms_inc <= hom_equiv_cap
          && List.length atoms_scratch <= hom_equiv_cap
        then begin
          let hom src dst = Homomorphism.exists src (Homomorphism.target_of_atoms dst) in
          if not (hom atoms_inc atoms_scratch) then
            raise (Stop (Fail (label "no homomorphism incremental -> from-scratch model")));
          if not (hom atoms_scratch atoms_inc) then
            raise (Stop (Fail (label "no homomorphism from-scratch -> incremental model")))
        end
      in
      (try
         List.iteri step batches;
         Pass
       with Stop outcome -> outcome))

(* ------------------------------------------------------------------ *)
(* 8. Durability: persist -> recover -> re-query changes nothing        *)

let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

(* One run drives a durable server through a seed-rotated mutation script
   (register, up to two insert batches, optionally materialize, with the
   explicit checkpoint placed nowhere / mid-script / at the end — so pure
   WAL replay, snapshot+tail, and pure snapshot restore all get coverage),
   then restarts on the same directory and demands the recovered server be
   observationally identical: byte-identical execute answers, equal
   epochs, equal null-free facts, and an equivalent materialization. *)
let check_durability (o : Oracle.t) (case : Case.t) =
  let p = case.Case.program in
  let source =
    Format.asprintf "%a" Tgd_parser.Printer.document
      {
        Tgd_parser.Parser.rules = Program.tgds p;
        facts = case.Case.facts;
        queries = [];
        constraints = [];
      }
  in
  let query_src = Format.asprintf "%a" Tgd_parser.Printer.query case.Case.query in
  let batches = List.filteri (fun i _ -> i < 2) (Gen_case.update_batches case) in
  let batch_csv batch = Tgd_db.Csv_io.save_string (Tgd_db.Instance.of_atoms batch) in
  let scenario = case.Case.seed mod 3 in
  let materialize = (case.Case.seed lsr 2) land 1 = 1 in
  let base_budget =
    {
      Tgd_exec.Budget.unlimited with
      Tgd_exec.Budget.chase_rounds = Some bounded_chase_rounds;
      chase_facts = Some bounded_chase_facts;
    }
  in
  let dir = Filename.temp_dir "tgd-durability" "" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let ( let* ) r f = match r with Error e -> Error e | Ok v -> f v in
  let req server r = Result.map_error snd (o.Oracle.serve_handle server r) in
  let execute server =
    let* fields =
      req server
        (Tgd_serve.Protocol.Execute { ontology = "fuzz"; query = query_src; budget = None; target = None })
    in
    match (field "truncated" fields, field "complete" fields) with
    | Some _, _ -> Error "__skip_truncated"
    | _, Some (Tgd_serve.Json.Bool false) -> Error "__skip_incomplete"
    | _ -> (
      match field "answers" fields with
      | Some answers -> Ok (Tgd_serve.Json.to_string answers)
      | None -> Error "execute response is missing answers")
  in
  let with_server f =
    match Tgd_store.Store.open_dir ~fsync:false dir with
    | Error msg -> Error ("store open failed: " ^ msg)
    | Ok store ->
      let server =
        Tgd_serve.Server.create ~config:bounded_rewrite_config ~base_budget ~store ()
      in
      Fun.protect ~finally:(fun () -> Tgd_serve.Server.shutdown server) (fun () -> f server)
  in
  let snapshot server = Result.map ignore (req server (Tgd_serve.Protocol.Snapshot { name = Some "fuzz" })) in
  let entry_of server =
    match Tgd_serve.Registry.find (Tgd_serve.Server.registry server) "fuzz" with
    | Some e -> Ok e
    | None -> Error "entry missing from the registry"
  in
  let outcome =
    (* Phase 1: build durable state. *)
    let* answers1, entry1 =
      with_server (fun server ->
          let* _ =
            req server
              (Tgd_serve.Protocol.Register_ontology
                 { name = "fuzz"; source = Tgd_serve.Protocol.Inline source })
          in
          let* () = if scenario = 2 then snapshot server else Ok () in
          let* () =
            List.fold_left
              (fun acc batch ->
                let* () = acc in
                Result.map ignore
                  (req server
                     (Tgd_serve.Protocol.Add_facts
                        { name = "fuzz"; source = Tgd_serve.Protocol.Inline (batch_csv batch) })))
              (Ok ()) batches
          in
          let* () =
            if materialize then
              Result.map ignore (req server (Tgd_serve.Protocol.Materialize { name = "fuzz" }))
            else Ok ()
          in
          let* () = if scenario = 1 then snapshot server else Ok () in
          let* answers = execute server in
          let* entry = entry_of server in
          Ok (answers, entry))
    in
    (* Phase 2: recover into a fresh server and compare observables. *)
    with_server (fun server ->
        let* answers2 = execute server in
        let* entry2 = entry_of server in
        let expect what cond = if cond then Ok () else Error (what ^ " changed across recovery") in
        let* () =
          if String.equal answers1 answers2 then Ok ()
          else
            Error
              (Printf.sprintf "answers changed across recovery: %s, then %s" answers1 answers2)
        in
        let* () = expect "epoch" (entry1.Tgd_serve.Registry.epoch = entry2.Tgd_serve.Registry.epoch) in
        let* () =
          expect "delta_epoch"
            (entry1.Tgd_serve.Registry.delta_epoch = entry2.Tgd_serve.Registry.delta_epoch)
        in
        let* () =
          expect "null-free instance facts"
            (facts_equal
               (null_free_facts entry1.Tgd_serve.Registry.instance)
               (null_free_facts entry2.Tgd_serve.Registry.instance))
        in
        match (entry1.Tgd_serve.Registry.materialization, entry2.Tgd_serve.Registry.materialization)
        with
        | None, None -> Ok ()
        | Some m1, Some m2 ->
          let* () =
            expect "materialization null floor"
              (m1.Tgd_serve.Registry.floor = m2.Tgd_serve.Registry.floor)
          in
          let* () =
            expect "materialization completeness"
              (m1.Tgd_serve.Registry.complete = m2.Tgd_serve.Registry.complete)
          in
          expect "null-free model facts"
            (facts_equal
               (null_free_facts m1.Tgd_serve.Registry.model)
               (null_free_facts m2.Tgd_serve.Registry.model))
        | Some _, None -> Error "materialization lost across recovery"
        | None, Some _ -> Error "materialization appeared from nowhere across recovery")
  in
  match outcome with
  | Ok () -> Pass
  | Error "__skip_truncated" -> Skip "serve run truncated by the server budget"
  | Error "__skip_incomplete" -> Skip "serve rewriting incomplete"
  | Error msg -> Fail msg

(* ------------------------------------------------------------------ *)
(* 9. Rewriting targets agree: UCQ backend ≡ Datalog backend            *)

(* Pattern exploration visits the same piece-step space as the UCQ
   rewriter, so the caps mirror [bounded_rewrite_config]'s scale; hitting
   one degrades to a skip. *)
let bounded_datalog_config =
  { Tgd_rewrite.Datalog_rw.max_patterns = 2_000; Tgd_rewrite.Datalog_rw.max_body_atoms = 8 }

(* Both backends implement the same piece-rewriting theory, so whenever
   both report Complete their certain answers must coincide exactly — on
   any generated case, with no class gating: completeness of the
   terminated piece fixpoint does not depend on the classifier. *)
let check_rewrite_target (o : Oracle.t) (case : Case.t) =
  let p = case.Case.program and q = case.Case.query in
  let rw = o.Oracle.rewrite ~config:bounded_rewrite_config p q in
  if not (complete rw) then Skip "UCQ rewriting budget hit"
  else begin
    let dl = o.Oracle.rewrite_datalog ~config:bounded_datalog_config p q in
    match dl.Tgd_rewrite.Datalog_rw.outcome with
    | Tgd_rewrite.Datalog_rw.Truncated _ -> Skip "Datalog rewriting budget hit"
    | Tgd_rewrite.Datalog_rw.Complete ->
      let inst = Case.instance case in
      let via_ucq = o.Oracle.eval_ucq inst rw.Tgd_rewrite.Rewrite.ucq in
      let via_datalog = o.Oracle.datalog_answers dl inst in
      if tuples_equal via_ucq via_datalog then Pass
      else
        Fail
          (Printf.sprintf "UCQ target gives %s but Datalog target gives %s"
             (show_tuples via_ucq) (show_tuples via_datalog))
  end

(* ------------------------------------------------------------------ *)

let all =
  [
    {
      name = "subsumption";
      describe = "classifier subsumption lattice (linear/multilinear/sticky/WA/SWR/WR)";
      check = check_subsumption;
    };
    {
      name = "differential";
      describe = "rewrite-then-evaluate equals chase certain answers on SWR cases";
      check = check_differential;
    };
    {
      name = "metamorphic";
      describe = "renaming / reordering / permutation / subsumed-union / duplication";
      check = check_metamorphic;
    };
    {
      name = "serve";
      describe = "serve path byte-identical to direct evaluation across epochs and cache states";
      check = check_serve;
    };
    {
      name = "eval-parallel";
      describe = "morsel-parallel evaluation agrees with sequential evaluation";
      check = check_eval_parallel;
    };
    {
      name = "truncation";
      describe = "budget-truncated rewriting and chase answers under-approximate complete runs";
      check = check_truncation;
    };
    {
      name = "update-sequence";
      describe =
        "incremental chase equals from-scratch chase (answers, null-free facts, hom-equivalence) after every insert batch";
      check = check_update_sequence;
    };
    {
      name = "durability";
      describe =
        "persist (WAL and/or snapshot) then recover leaves answers, epochs, facts and materialization unchanged";
      check = check_durability;
    };
    {
      name = "rewrite-target";
      describe =
        "UCQ and Datalog rewriting backends give identical certain answers where both complete";
      check = check_rewrite_target;
    };
  ]

let find name = List.find_opt (fun inv -> String.equal inv.name name) all
