(** The fuzzing loop: generate, check, shrink, persist, summarize.

    Everything is deterministic in [(seed, cases)]: the case stream comes
    from {!Gen_case.case}, the invariant registry runs in a fixed order, and
    the summary contains no wall-clock data — running the same seed twice
    yields byte-identical {!summary_to_string} output. *)

type failure = {
  invariant : string;
  message : string;
  original : Case.t;
  shrunk : Case.t;  (** equal to [original] when shrinking is disabled *)
  corpus_file : string option;  (** where the shrunk case was persisted *)
}

type summary = {
  seed : int;
  cases : int;
  checks : int;  (** total invariant applications, skips included *)
  passed : int;
  skipped : int;
  failed : int;
  per_invariant : (string * (int * int * int)) list;  (** name -> (pass, skip, fail) *)
  failures : failure list;
}

val check_case :
  ?oracle:Oracle.t ->
  ?invariants:Invariant.t list ->
  Case.t ->
  (string * Invariant.outcome) list
(** Apply every invariant to one case, in registry order. An exception
    escaping a check is converted into a [Fail] naming the exception, so one
    crashing layer cannot abort the sweep. *)

val run :
  ?oracle:Oracle.t ->
  ?invariants:Invariant.t list ->
  ?corpus_dir:string ->
  ?shrink:bool ->
  ?stop_after:int ->
  ?on_case:(int -> Case.t -> unit) ->
  seed:int ->
  cases:int ->
  unit ->
  summary
(** Sweep cases [0..cases-1] of stream [seed]. Each failure is shrunk (unless
    [~shrink:false]) with "still fails the same invariant" as the
    reproduction predicate, and written to [corpus_dir] when given. The sweep
    stops early once [stop_after] failures have been collected. *)

val replay :
  ?oracle:Oracle.t -> ?invariants:Invariant.t list -> dir:string -> unit -> summary
(** Run the registry over every [*.case] file in [dir] (sorted by name).
    Unreadable or unparsable files are reported as failures of the pseudo
    invariant ["corpus"]. *)

val summary_to_string : summary -> string
(** Deterministic multi-line report: per-invariant table plus one block per
    failure (label, seed, message, shrunk size, corpus file). *)
