open Tgd_logic

(* Remove the i-th element. *)
let drop_nth i l = List.filteri (fun j _ -> j <> i) l

let safe_query ~name ~answer ~body =
  if body = [] then None
  else
    let body_vars =
      List.fold_left (fun acc a -> Symbol.Set.union acc (Atom.vars a)) Symbol.Set.empty body
    in
    let safe =
      List.for_all
        (function Term.Var v -> Symbol.Set.mem v body_vars | Term.Const _ -> true)
        answer
    in
    if safe then Some (Cq.make ~name ~answer ~body) else None

(* One pass: the first single-element deletion that still reproduces, or
   [None] when the case is locally minimal. Rules first (each rule usually
   costs the most downstream work), then facts, then query atoms. *)
let step ~reproduces (case : Case.t) =
  let try_case c = if reproduces c then Some c else None in
  let rules = Program.tgds case.Case.program in
  let try_rule i =
    match Program.make ~name:case.Case.program.Program.name (drop_nth i rules) with
    | Error _ -> None
    | Ok p -> try_case { case with Case.program = p }
  in
  let try_fact i = try_case { case with Case.facts = drop_nth i case.Case.facts } in
  let try_atom i =
    match
      safe_query ~name:case.Case.query.Cq.name ~answer:case.Case.query.Cq.answer
        ~body:(drop_nth i case.Case.query.Cq.body)
    with
    | None -> None
    | Some q -> try_case { case with Case.query = q }
  in
  let rec first f n i = if i >= n then None else match f i with Some _ as r -> r | None -> first f n (i + 1) in
  match first try_rule (List.length rules) 0 with
  | Some _ as r -> r
  | None -> (
    match first try_fact (List.length case.Case.facts) 0 with
    | Some _ as r -> r
    | None -> first try_atom (List.length case.Case.query.Cq.body) 0)

let minimize ~reproduces case =
  let rec loop case fuel =
    if fuel = 0 then case
    else
      match step ~reproduces case with
      | None -> case
      | Some smaller -> loop smaller (fuel - 1)
  in
  (* The fuel bound is the total number of droppable elements — each step
     removes exactly one, so this is enough to reach any fixpoint. *)
  let budget =
    List.length (Program.tgds case.Case.program)
    + List.length case.Case.facts
    + List.length case.Case.query.Cq.body
  in
  loop case budget
