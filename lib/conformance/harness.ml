open Tgd_logic

type failure = {
  invariant : string;
  message : string;
  original : Case.t;
  shrunk : Case.t;
  corpus_file : string option;
}

type summary = {
  seed : int;
  cases : int;
  checks : int;
  passed : int;
  skipped : int;
  failed : int;
  per_invariant : (string * (int * int * int)) list;
  failures : failure list;
}

let guarded check oracle case =
  try check oracle case
  with e -> Invariant.Fail ("uncaught exception: " ^ Printexc.to_string e)

let check_case ?(oracle = Oracle.real) ?(invariants = Invariant.all) case =
  List.map
    (fun (inv : Invariant.t) -> (inv.Invariant.name, guarded inv.Invariant.check oracle case))
    invariants

(* The reproduction predicate for shrinking: the same invariant still fails
   (with any witness — chasing the exact message would block useful
   reductions). *)
let still_fails oracle (inv : Invariant.t) case =
  match guarded inv.Invariant.check oracle case with
  | Invariant.Fail _ -> true
  | Invariant.Pass | Invariant.Skip _ -> false

let case_size (c : Case.t) =
  List.length (Program.tgds c.Case.program)
  + List.length c.Case.facts
  + List.length c.Case.query.Cq.body

let persist corpus_dir (inv : Invariant.t) (case : Case.t) =
  match corpus_dir with
  | None -> None
  | Some dir ->
    (try
       if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
       let path =
         Filename.concat dir (Printf.sprintf "%s-seed%d.case" inv.Invariant.name case.Case.seed)
       in
       Case.save ~path case;
       Some path
     with _ -> None)

type counts = { mutable pass : int; mutable skip : int; mutable fail : int }

let make_tally invariants =
  List.map (fun (inv : Invariant.t) -> (inv.Invariant.name, { pass = 0; skip = 0; fail = 0 })) invariants

let tally_of tally name = List.assoc name tally

let finish ~seed ~cases ~tally ~failures =
  let per_invariant = List.map (fun (name, c) -> (name, (c.pass, c.skip, c.fail))) tally in
  let sum f = List.fold_left (fun acc (_, c) -> acc + f c) 0 tally in
  {
    seed;
    cases;
    checks = sum (fun c -> c.pass + c.skip + c.fail);
    passed = sum (fun c -> c.pass);
    skipped = sum (fun c -> c.skip);
    failed = sum (fun c -> c.fail);
    per_invariant;
    failures = List.rev failures;
  }

let run ?(oracle = Oracle.real) ?(invariants = Invariant.all) ?corpus_dir ?(shrink = true)
    ?(stop_after = max_int) ?on_case ~seed ~cases () =
  let tally = make_tally invariants in
  let failures = ref [] in
  let n_failures = ref 0 in
  let index = ref 0 in
  while !index < cases && !n_failures < stop_after do
    let case = Gen_case.case ~seed ~index:!index in
    (match on_case with Some f -> f !index case | None -> ());
    List.iter
      (fun (inv : Invariant.t) ->
        let c = tally_of tally inv.Invariant.name in
        match guarded inv.Invariant.check oracle case with
        | Invariant.Pass -> c.pass <- c.pass + 1
        | Invariant.Skip _ -> c.skip <- c.skip + 1
        | Invariant.Fail message ->
          c.fail <- c.fail + 1;
          incr n_failures;
          let shrunk =
            if shrink then Shrink.minimize ~reproduces:(still_fails oracle inv) case else case
          in
          let corpus_file = persist corpus_dir inv shrunk in
          failures :=
            { invariant = inv.Invariant.name; message; original = case; shrunk; corpus_file }
            :: !failures)
      invariants;
    incr index
  done;
  finish ~seed ~cases:!index ~tally ~failures:!failures

let replay ?(oracle = Oracle.real) ?(invariants = Invariant.all) ~dir () =
  let tally = make_tally invariants in
  let corpus_counts = { pass = 0; skip = 0; fail = 0 } in
  let failures = ref [] in
  let files =
    if Sys.file_exists dir && Sys.is_directory dir then
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".case")
      |> List.sort String.compare
    else []
  in
  List.iter
    (fun file ->
      let path = Filename.concat dir file in
      match Case.load path with
      | Error msg ->
        corpus_counts.fail <- corpus_counts.fail + 1;
        let dummy =
          Case.make ~label:("unreadable:" ^ file)
            ~program:(Program.make_exn [])
            ~facts:[]
            (Cq.make ~name:"q" ~answer:[]
               ~body:[ Atom.make (Symbol.intern "corpus_error") [] ])
        in
        failures :=
          { invariant = "corpus"; message = msg; original = dummy; shrunk = dummy; corpus_file = Some path }
          :: !failures
      | Ok case ->
        corpus_counts.pass <- corpus_counts.pass + 1;
        List.iter
          (fun (inv : Invariant.t) ->
            let c = tally_of tally inv.Invariant.name in
            match guarded inv.Invariant.check oracle case with
            | Invariant.Pass -> c.pass <- c.pass + 1
            | Invariant.Skip _ -> c.skip <- c.skip + 1
            | Invariant.Fail message ->
              c.fail <- c.fail + 1;
              failures :=
                { invariant = inv.Invariant.name; message; original = case; shrunk = case;
                  corpus_file = Some path }
                :: !failures)
          invariants)
    files;
  finish ~seed:0 ~cases:(List.length files)
    ~tally:(tally @ [ ("corpus", corpus_counts) ])
    ~failures:!failures

let summary_to_string s =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "seed %d: %d case(s), %d check(s): %d passed, %d skipped, %d FAILED\n"
       s.seed s.cases s.checks s.passed s.skipped s.failed);
  List.iter
    (fun (name, (pass, skip, fail)) ->
      Buffer.add_string b (Printf.sprintf "  %-14s pass %4d  skip %4d  fail %4d\n" name pass skip fail))
    s.per_invariant;
  List.iter
    (fun f ->
      Buffer.add_string b
        (Printf.sprintf "failure [%s] case label=%s seed=%d\n  %s\n  shrunk to %d element(s)%s\n"
           f.invariant f.original.Case.label f.original.Case.seed f.message
           (case_size f.shrunk)
           (match f.corpus_file with None -> "" | Some p -> Printf.sprintf " -> %s" p)))
    s.failures;
  Buffer.contents b
