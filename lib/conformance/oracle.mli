(** The cross-layer oracle: every pipeline the conformance invariants
    exercise, bundled as a record of functions.

    Invariants call the stack only through an oracle value, so the mutant
    tests of the acceptance harness can inject a deliberate fault into
    exactly one pipeline (a classifier that lies, an evaluator that drops a
    tuple, a chase that invents answers, a serve path that corrupts its
    response) and assert that the corresponding invariant class catches
    it. {!real} wires every field to the production implementation. *)

open Tgd_logic

type t = {
  classify : Program.t -> Tgd_core.Classifier.report;
  rewrite :
    config:Tgd_rewrite.Rewrite.config -> Program.t -> Cq.t -> Tgd_rewrite.Rewrite.result;
  rewrite_union :
    config:Tgd_rewrite.Rewrite.config -> Program.t -> Cq.ucq -> Tgd_rewrite.Rewrite.result;
  eval_ucq : Tgd_db.Instance.t -> Cq.ucq -> Tgd_db.Tuple.t list;
      (** certain-answer semantics: null-free, deduplicated, sorted *)
  eval_ucq_par :
    workers:int -> partitions:int -> Tgd_db.Instance.t -> Cq.ucq -> Tgd_db.Tuple.t list;
      (** the morsel-parallel evaluator: seals (and hash-partitions) the
          instance, then evaluates on [workers] domains with the sequential
          fallback disabled — must agree byte-for-byte with {!eval_ucq} *)
  certain_cq :
    max_rounds:int ->
    max_facts:int ->
    Program.t ->
    Tgd_db.Instance.t ->
    Cq.t ->
    Tgd_chase.Certain.result;
  chase_run :
    max_rounds:int -> max_facts:int -> Program.t -> Tgd_db.Instance.t -> Tgd_chase.Chase.stats;
  delta_apply :
    max_rounds:int ->
    max_facts:int ->
    Program.t ->
    Tgd_db.Instance.t ->
    Tgd_db.Instance.fact list ->
    Tgd_chase.Delta_chase.stats;
      (** the incremental chase: extend a previously chased [inst] {e in
          place} with an insert batch ({!Tgd_chase.Delta_chase.apply}) *)
  rewrite_datalog :
    config:Tgd_rewrite.Datalog_rw.config -> Program.t -> Cq.t -> Tgd_rewrite.Datalog_rw.result;
      (** the shared-pattern Datalog rewriting backend *)
  datalog_answers : Tgd_rewrite.Datalog_rw.result -> Tgd_db.Instance.t -> Tgd_db.Tuple.t list;
      (** saturate a copy of the instance under the Datalog rewriting and
          read off the goal's null-free answers (certain-answer semantics,
          same contract as {!eval_ucq}) *)
  canon_key : Cq.t -> string;
      (** the prepared-cache canonical key: must be invariant under
          consistent variable renaming and body reordering *)
  serve_handle :
    Tgd_serve.Server.t ->
    Tgd_serve.Protocol.request ->
    ((string * Tgd_serve.Json.t) list, string * string) result;
}

val real : t
