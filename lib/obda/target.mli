(** Rewriting-target dispatch: UCQ vs Datalog, per ontology.

    The system carries two rewriting backends — the classic UCQ rewriter
    ({!Tgd_rewrite.Rewrite}) and the shared-pattern Datalog rewriter
    ({!Tgd_rewrite.Datalog_rw}). This module is the single place that picks
    between them: the [--target] knob of [obda rewrite|answer|serve] parses
    into {!t}, [Auto] consults the classifier ({!choose}), and {!prepare}
    implements the fallback policy (an [Auto] preparation that truncates on
    its preferred backend retries the other). *)

open Tgd_logic
open Tgd_db
open Tgd_rewrite

type t =
  | Ucq  (** always rewrite into a union of conjunctive queries *)
  | Datalog  (** always rewrite into a Datalog program *)
  | Auto  (** classifier-dispatched, with truncation fallback *)

val of_string : string -> (t, string) result
(** Parses ["ucq"], ["datalog"], ["auto"]. *)

val to_string : t -> string

(** A prepared rewriting of either kind. *)
type artifact =
  | Ucq_rewriting of Rewrite.result
  | Datalog_rewriting of Datalog_rw.result

val artifact_kind : artifact -> string
(** ["ucq"] or ["datalog"] — the spelling used in serve responses. *)

val complete : artifact -> bool
(** Whether the rewriting reached its fixpoint (no truncation). *)

val choose : Tgd_core.Classifier.report -> t
(** The classifier policy behind [Auto]: existential-free (plain Datalog)
    rule sets dispatch to [Datalog] — their UCQ rewriting unfolds recursion
    into an unbounded union — and everything else starts on [Ucq]. Never
    returns [Auto]. *)

val resolve : t -> Program.t -> t
(** [resolve target program] is [target] unless it is [Auto], in which case
    the program is classified and {!choose} decides. *)

val prepare :
  ?ucq_config:Rewrite.config ->
  ?datalog_config:Datalog_rw.config ->
  gov:(unit -> Tgd_exec.Governor.t) ->
  t ->
  Program.t ->
  Cq.t ->
  artifact
(** Rewrite the query for the given target. [gov] must produce a fresh
    governor per attempt (a tripped governor stays tripped); [Auto] runs
    the {!resolve}d backend first and falls back to the other when the
    first truncates, keeping the first (sound, truncated) artifact only if
    the fallback also truncates. *)

val datalog_answers :
  ?gov:Tgd_exec.Governor.t -> Datalog_rw.result -> Instance.t -> Tuple.t list
(** Certain answers through a Datalog artifact: saturate the rewritten
    program over a copy-on-write copy of the instance
    ({!Tgd_db.Datalog.saturate} — the input instance is never mutated),
    read the goal relation back, and drop tuples containing labeled nulls.
    Deduplicated and sorted; a governed run yields a sound subset. *)

val answers : ?gov:Tgd_exec.Governor.t -> artifact -> Instance.t -> Tuple.t list
(** Certain answers through either artifact kind: {!Tgd_db.Eval.ucq} plus
    null filtering for [Ucq_rewriting], {!datalog_answers} for
    [Datalog_rewriting]. *)
