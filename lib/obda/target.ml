open Tgd_db
open Tgd_rewrite

type t =
  | Ucq
  | Datalog
  | Auto

let of_string = function
  | "ucq" -> Ok Ucq
  | "datalog" -> Ok Datalog
  | "auto" -> Ok Auto
  | s -> Error (Printf.sprintf "unknown rewriting target %S (expected ucq, datalog or auto)" s)

let to_string = function Ucq -> "ucq" | Datalog -> "datalog" | Auto -> "auto"

type artifact =
  | Ucq_rewriting of Rewrite.result
  | Datalog_rewriting of Datalog_rw.result

let artifact_kind = function Ucq_rewriting _ -> "ucq" | Datalog_rewriting _ -> "datalog"

let complete = function
  | Ucq_rewriting r -> (match r.Rewrite.outcome with Rewrite.Complete -> true | _ -> false)
  | Datalog_rewriting r -> (
    match r.Datalog_rw.outcome with Datalog_rw.Complete -> true | _ -> false)

let choose (report : Tgd_core.Classifier.report) =
  (* Existential-free rule sets are plain Datalog: the UCQ rewriter unfolds
     recursion into an unbounded union while the Datalog target captures it
     finitely, so they dispatch to Datalog. Everything else starts on the
     UCQ path — when it truncates, [prepare] falls back to Datalog. *)
  if report.Tgd_core.Classifier.datalog then Datalog else Ucq

let resolve target program =
  match target with
  | Ucq -> Ucq
  | Datalog -> Datalog
  | Auto -> choose (Tgd_core.Classifier.classify program)

let prepare ?ucq_config ?datalog_config ~gov target program q =
  let run_ucq () = Ucq_rewriting (Rewrite.ucq ?config:ucq_config ~gov:(gov ()) program q) in
  let run_datalog () =
    Datalog_rewriting (Datalog_rw.rewrite ?config:datalog_config ~gov:(gov ()) program q)
  in
  match target with
  | Ucq -> run_ucq ()
  | Datalog -> run_datalog ()
  | Auto ->
    let first, second =
      match resolve Auto program with
      | Ucq -> (run_ucq, run_datalog)
      | Datalog | Auto -> (run_datalog, run_ucq)
    in
    let a = first () in
    if complete a then a
    else
      let b = second () in
      if complete b then b else a

let null_free = List.filter (fun t -> not (Tuple.has_null t))

let datalog_answers ?gov (r : Datalog_rw.result) inst =
  let work = Instance.copy inst in
  let _stats = Datalog.saturate ?gov r.Datalog_rw.program work in
  null_free (Eval.cq ?gov work (Datalog_rw.goal_query r))

let answers ?gov artifact inst =
  match artifact with
  | Ucq_rewriting r -> null_free (Eval.ucq ?gov inst r.Rewrite.ucq)
  | Datalog_rewriting r -> datalog_answers ?gov r inst
