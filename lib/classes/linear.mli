(** Linear TGDs: exactly one body atom (Calì, Gottlob, Lukasiewicz). An
    FO-rewritable class subsumed by SWR on simple TGDs (Section 5). *)

open Tgd_logic

val rule_ok : Tgd.t -> bool
(** [rule_ok r] holds when the body of [r] is a single atom. *)

val check : Program.t -> bool
(** [check p] holds when every rule of [p] satisfies {!rule_ok}. *)
