(** Sticky and Sticky-Join TGDs (Calì, Gottlob, Pieris), via the standard
    marking procedure.

    Marking: (base) every occurrence in a rule body of a variable that does
    not occur in every head atom of that rule is marked; (propagation) if a
    variable occurs in a head atom at a position that is marked somewhere in
    some rule body, all body occurrences of that variable in its own rule
    are marked — to fixpoint.

    - {b Sticky}: no marked variable occurs more than once in a rule body
      (neither twice in one atom nor in two atoms).
    - {b Sticky-Join} (as used by the paper's Example 3): no marked variable
      occurs in two {e distinct} body atoms; repeated occurrences inside a
      single atom are allowed. This matches how the paper uses SJ ("y1
      appears in two different atoms of body(R3)") but it is an
      {b over-approximation} of CGP's full sticky-join class: e.g. the
      paper's Example 2 (not FO-rewritable, hence outside real SJ) passes
      this check through a marked variable repeated inside one atom.
      Consequently [sticky_join] is reliable for {e negative} verdicts
      (outside our class implies outside SJ) and must not be used as an
      FO-rewritability witness; {!Tgd_core.Classifier} treats it
      accordingly. *)

open Tgd_logic

type marking
(** Marked body positions, per rule. *)

val marking : Program.t -> marking
(** Run the marking procedure (base case + propagation to fixpoint) over
    the whole program. *)

val marked_positions : marking -> Tgd.t -> (int * int) list
(** [(atom_index, arg_index)] pairs (0-based) of marked body positions of a
    rule of the program. *)

val sticky : Program.t -> bool
(** No marked variable occurs more than once in any rule body. *)

val sticky_join : Program.t -> bool
(** No marked variable occurs in two distinct body atoms of a rule; see
    the over-approximation caveat above — negative verdicts only. *)
