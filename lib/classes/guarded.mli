(** Guarded TGDs: some body atom (the guard) contains every body variable.
    Not FO-rewritable in general; included for the class landscape. *)

open Tgd_logic

val rule_ok : Tgd.t -> bool
(** [rule_ok r] holds when some body atom of [r] contains every body
    variable of [r]. *)

val check : Program.t -> bool
(** [check p] holds when every rule of [p] satisfies {!rule_ok}. *)
