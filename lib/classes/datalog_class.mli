(** Plain Datalog: TGDs without existential head variables. Trivially
    chase-terminating, but not FO-rewritable in general (recursion). *)

open Tgd_logic

val rule_ok : Tgd.t -> bool
(** [rule_ok r] holds when [r] has no existential head variable — every
    head variable also occurs in the body. *)

val check : Program.t -> bool
(** [check p] holds when every rule of [p] satisfies {!rule_ok}. *)
