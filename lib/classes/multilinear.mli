(** Multi-linear TGDs (Calì, Gottlob, Pieris): every body atom is a guard,
    i.e. contains all the universally quantified (body) variables of the
    rule. FO-rewritable; subsumed by SWR on simple TGDs (Section 5). *)

open Tgd_logic

val rule_ok : Tgd.t -> bool
(** [rule_ok r] holds when every body atom of [r] contains all the body
    variables of [r] (each atom is a guard). *)

val check : Program.t -> bool
(** [check p] holds when every rule of [p] satisfies {!rule_ok}. *)
