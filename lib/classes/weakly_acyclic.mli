(** Weak acyclicity (Fagin, Kolaitis, Miller, Popa): the classic sufficient
    condition for chase termination. The position dependency graph has a
    normal edge from position (p,i) to (q,j) when a frontier variable flows
    from (p,i) in a body to (q,j) in the head, and a special edge when an
    existential head variable occurs at (q,j) in a head whose rule reads a
    frontier variable at (p,i). Weakly acyclic iff no cycle goes through a
    special edge. *)

open Tgd_logic

type edge_kind =
  | Normal  (** a frontier variable flows from the body position to the head position *)
  | Special  (** an existential variable is invented at the head position *)

val graph : Program.t -> ((Symbol.t * int) * edge_kind * (Symbol.t * int)) list
(** The position dependency graph as an edge list (positions are 1-based). *)

val check : Program.t -> bool
(** [check p] holds when no cycle of {!graph} traverses a [Special]
    edge — the Fagin–Kolaitis–Miller–Popa guarantee that the chase of any
    instance under [p] terminates. *)
