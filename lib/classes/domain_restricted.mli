(** Domain-restricted TGDs (Baget, Leclère, Mugnier, Salvat): every head
    atom contains either all of the body variables or none of them. An
    FO-rewritable class incomparable with SWR, cited by the paper as one of
    the classes WR is meant to subsume. *)

open Tgd_logic

val rule_ok : Tgd.t -> bool
(** [rule_ok r] holds when each head atom of [r] contains either all the
    body variables of [r] or none of them. *)

val check : Program.t -> bool
(** [check p] holds when every rule of [p] satisfies {!rule_ok}. *)
