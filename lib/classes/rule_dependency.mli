(** The graph of rule dependencies (GRD) of Baget, Leclère, Mugnier, Salvat.

    [R2] depends on [R1] when an application of [R1] can trigger a new
    application of [R2]; we decide this with the piece-unification test:
    some piece of [body(R2)], read as a boolean query, piece-unifies with
    the head of (a single-head fragment of) [R1]. This is the standard
    unifier-based criterion; it may over-approximate dependencies in corner
    cases, which only makes the acyclicity check conservative (it never
    wrongly declares a program acyclic). A program with an acyclic GRD is
    both chase-terminating and FO-rewritable. *)

open Tgd_logic

val depends : on:Tgd.t -> Tgd.t -> bool
(** [depends ~on:r1 r2]: can firing [r1] enable a new application of [r2]? *)

val graph : Program.t -> (string * string) list
(** Dependency edges [r1 -> r2] (by rule name) meaning [r2] depends on
    [r1]. *)

val acyclic : Program.t -> bool
(** [acyclic p] holds when {!graph} has no cycle (conservatively, given
    that {!depends} may over-approximate): the chase terminates and the
    program is FO-rewritable. *)
