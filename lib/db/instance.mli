(** A database instance: one relation per predicate. *)

open Tgd_logic

type t

type fact = Symbol.t * Tuple.t

val create : unit -> t

val copy : t -> t
(** Deep copy: relations (and their tuples' identity) are shared-nothing,
    so chasing the copy never disturbs the original. *)

val add_fact : t -> Symbol.t -> Tuple.t -> bool
(** [true] iff the fact is new. Creates the relation on first use; raises
    [Invalid_argument] if the predicate was already used with another
    arity. *)

val add_ground_atom : t -> Atom.t -> bool
(** The atom must be ground (constants only). *)

val relation : t -> Symbol.t -> Relation.t option
(** [None] when the predicate has no facts yet. *)

val predicates : t -> (Symbol.t * int) list
(** Every predicate with its arity, sorted by name. *)

val cardinality : t -> int
(** Total fact count across all relations. *)

val iter_facts : (fact -> unit) -> t -> unit
val facts : t -> fact list

val to_atoms : t -> Atom.t list
(** Every fact as an atom; nulls become variables (frozen-instance view used
    by homomorphism checks). *)

val of_atoms : Atom.t list -> t

val build_indexes : t -> unit
(** Pre-build every per-column index of every relation ("seal" the instance
    for concurrent reads): once no more facts are added, evaluation from
    any number of domains is race-free because {!Relation.lookup} no longer
    builds indexes lazily. *)

val seal : ?partitions:int -> t -> unit
(** {!build_indexes}, plus — when [partitions] is given — hash-partition
    every relation into that many shards (see {!Relation.seal}) so
    {!Par_eval} can split scans into morsels. *)

val pp : Format.formatter -> t -> unit
