(** A database instance: one relation per predicate. *)

open Tgd_logic

type t

type fact = Symbol.t * Tuple.t

val create : unit -> t

val copy : t -> t
(** Copy-on-write copy (see {!Relation.copy}): the row sets and indexes are
    structurally duplicated while frozen seal artifacts (columnar blocks,
    partitions) are shared, so mutating the copy — chasing it, appending a
    delta — never disturbs the original, and sealing the copy after an
    append extends the shared block instead of re-encoding it. *)

val add_fact : t -> Symbol.t -> Tuple.t -> bool
(** [true] iff the fact is new. Creates the relation on first use; raises
    [Invalid_argument] if the predicate was already used with another
    arity. *)

val add_ground_atom : t -> Atom.t -> bool
(** The atom must be ground (constants only). *)

val relation : t -> Symbol.t -> Relation.t option
(** [None] when the predicate has no facts yet. *)

val install_relation : t -> Symbol.t -> Relation.t -> unit
(** Adopt a whole relation under a predicate (snapshot recovery:
    {!Relation.of_columnar} blocks are installed without going through
    per-fact inserts). Replaces any existing relation for the predicate;
    raises [Invalid_argument] on an arity conflict. *)

val predicates : t -> (Symbol.t * int) list
(** Every predicate with its arity, sorted by name. *)

val cardinality : t -> int
(** Total fact count across all relations. *)

val iter_facts : (fact -> unit) -> t -> unit
val facts : t -> fact list

val to_atoms : t -> Atom.t list
(** Every fact as an atom; nulls become variables (frozen-instance view used
    by homomorphism checks). *)

val of_atoms : Atom.t list -> t

val substitute : t -> from_:Value.t -> to_:Value.t -> fact list
(** Rewrite every fact containing [from_] in place (see
    {!Relation.substitute}), replacing it with [to_]. Returns the rewritten
    facts that are new to the instance — the touched frontier an EGD delta
    replay feeds back into trigger discovery. *)

val max_null : t -> int
(** The largest labeled-null id occurring in the instance ([0] when
    null-free): the floor for a {!Tgd_chase.Null_gen} that must extend the
    null space monotonically. *)

val build_indexes : t -> unit
(** Pre-build every per-column index of every relation ("seal" the instance
    for concurrent reads): once no more facts are added, evaluation from
    any number of domains is race-free because {!Relation.lookup} no longer
    builds indexes lazily. *)

val seal : ?partitions:int -> t -> unit
(** {!build_indexes}, plus — when [partitions] is given — hash-partition
    every relation into that many shards (see {!Relation.seal}) so
    {!Par_eval} can split scans into morsels. *)

val pp : Format.formatter -> t -> unit
