(** Conjunctive-query evaluation over an instance.

    The evaluator performs an index-nested-loop join with an adaptive greedy
    plan: at every step the next atom is the one with the most bound
    positions, preferring atoms joined to the remaining ones through a
    still-unbound shared variable over isolated (cross-product) atoms, and
    breaking remaining ties towards the smaller relation. Bound positions
    are served from the per-column hash indexes of {!Relation}.

    Every entry point takes an optional {!Tgd_exec.Governor}: a governed
    evaluation charges [eval.steps] per join-search node and stops emitting
    bindings as soon as the governor trips (deadline, budget, cancellation),
    yielding the answers found so far — the caller distinguishes a complete
    from a truncated answer set by asking the governor. Without a governor
    the code path is unchanged and pays no overhead. *)

open Tgd_logic

type env = Value.t Symbol.Map.t
(** A variable assignment. *)

val bindings :
  ?gov:Tgd_exec.Governor.t ->
  ?init:env ->
  ?forced:int * Tuple.t list ->
  Instance.t ->
  Atom.t list ->
  (env -> unit) ->
  unit
(** [bindings inst atoms k] calls [k] on every assignment of the variables of
    [atoms] that makes all atoms true in [inst]. [init] pre-binds variables
    (default empty). With [~forced:(i, tuples)], the [i]-th atom (0-based, in
    list order) ranges over [tuples] instead of its full relation — the hook
    used by semi-naive Datalog evaluation. *)

val lead : Instance.t -> Atom.t list -> int * Tuple.t list
(** The planner's first choice under the empty environment: the index (in
    list order) of the atom it would evaluate first and that atom's
    candidate tuples. Exposed so {!Par_eval} can split exactly the scan the
    sequential plan would perform into morsels. Raises [Invalid_argument]
    on an empty body. *)

val answer_tuple : env -> Term.t list -> Tuple.t
(** Build the answer tuple for the given answer terms under an assignment.
    Raises [Invalid_argument] if an answer variable is unbound. *)

val cq : ?gov:Tgd_exec.Governor.t -> Instance.t -> Cq.t -> Tuple.t list
(** All answers, deduplicated and sorted. For a boolean query the answer is
    [[ [||] ]] (one empty tuple) if the body is satisfiable and [[]]
    otherwise. *)

val cq_exists : ?gov:Tgd_exec.Governor.t -> Instance.t -> Cq.t -> bool
(** Does the query have at least one answer? *)

val ucq : ?gov:Tgd_exec.Governor.t -> Instance.t -> Cq.ucq -> Tuple.t list
(** Union of the answers of the disjuncts, deduplicated and sorted. *)
