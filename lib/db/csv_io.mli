(** Loading and saving instances as CSV — the pragmatic bridge to real
    relational sources. One record per fact: the predicate name followed by
    the argument values, comma-separated. Values may be double-quoted (with
    [""] escaping a quote, and literal newlines allowed inside quotes);
    unquoted values are trimmed, quoted ones kept verbatim. Records that are
    empty or start with [#] are skipped. {!save_string} quotes exactly the
    fields that would not read back as themselves (separators, quotes,
    newlines, leading/trailing whitespace, a leading [#]), so
    write-then-read is the identity on constant-valued instances.

    {v
      takes_course,sam,db101
      emp_record,"O'Hara, Ada",cs,prof
    v} *)

open Tgd_logic

val parse_line : string -> (Symbol.t * Tuple.t) option
(** Parse a single record (no embedded newlines). [None] for blank/comment
    records. Raises [Failure] on an unterminated quote. *)

val load_string : string -> (Instance.t, string) result
(** Errors mention the offending 1-based line. *)

val load_file : string -> (Instance.t, string) result

val save_string : Instance.t -> string
(** Deterministic order (sorted facts); nulls are written as [_nK] and
    round-trip as ordinary constants — exporting a chased instance is lossy
    by design. *)

val save_file : string -> Instance.t -> unit
