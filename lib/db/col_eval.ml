(* Compiled conjunctive-query evaluation over columnar blocks.

   A CQ body is compiled once into an array of join steps against the
   sealed relations' columnar blocks: variables become numbered slots in a
   single mutable [int array] binding frame, constants become pre-computed
   value codes, and each step is a probe (CSR index range) or scan followed
   by a flat array of per-column checks. The interpreter therefore
   allocates nothing per candidate tuple — no [Symbol.Map] environments, no
   boxed tuples — and every scan walks contiguous [int array]s, which is
   what lets morsel workers run at memory bandwidth instead of fighting the
   multicore minor heap (see E18 / BENCH_parallel_eval.json).

   The planner mirrors {!Eval.bindings}'s greedy order (most bound
   positions first, joined-ahead atoms before isolated cross products,
   then the smaller relation), but resolves it statically: which variables
   are bound at step [k] depends only on the atoms chosen before [k], never
   on candidate values, so the "adaptive" order is in fact a compile-time
   constant. *)

open Tgd_logic

(* A check against one column of the step's block. The column array is
   captured directly so the inner loop does one load, not two. *)
type check =
  | Check_const of int array * int (* column codes, required code *)
  | Check_slot of int array * int (* column codes, frame slot *)
  | Bind of int array * int (* column codes, frame slot to set *)

type probe =
  | Scan
  | Probe_const of int (* column index, constant code *) * int
  | Probe_slot of int * int (* column index, frame slot *)

type step = {
  block : Columnar.t;
  probe : probe;
  checks : check array;
}

type out_arg =
  | Out_slot of int
  | Out_code of int

type t = {
  steps : step array;
  nslots : int;
  out : out_arg array;
}

type compiled =
  | Compiled of t
  | Empty (* a body atom can never match: the disjunct has no answers *)
  | Unsupported (* no columnar block / uncodable constant: use the boxed engine *)

let out_arity t = Array.length t.out

(* ------------------------------------------------------------------ *)
(* Coded answer tuples                                                 *)

(* The comparison/hash helpers below are on the per-answer hot path
   (hashtable dedup, partition sort: millions of calls per query), so they
   are written as top-level recursions with explicit arguments — an inner
   [let rec loop] capturing the arrays would allocate a closure block per
   call, which at sort time is several words *per comparison*. *)

let rec compare_from (a : int array) (b : int array) n i =
  if i >= n then 0
  else
    let c = Int.compare (Array.unsafe_get a i) (Array.unsafe_get b i) in
    if c <> 0 then c else compare_from a b n (i + 1)

let compare_codes (a : int array) (b : int array) =
  (* Arity first, then lexicographic int order — exactly [Tuple.compare]'s
     shape, and it coincides with it on the decoded tuples because
     [Value.code] is order-preserving. (Disjuncts of one union normally
     share an arity, but nothing here needs to assume it.) *)
  let n = Array.length a in
  let c = Int.compare n (Array.length b) in
  if c <> 0 then c else compare_from a b n 0

let rec hash_from (a : int array) n i h =
  if i >= n then h land max_int
  else hash_from a n (i + 1) ((h * 31) + Array.unsafe_get a i)

let hash_codes (a : int array) = hash_from a (Array.length a) 0 17

(* Flat fixed-stride rows. [Par_eval]'s partition buckets store coded
   answers back to back in one [int array] (row [r] of a stride-[s] bucket
   occupies offsets [r*s .. r*s + s - 1]): per answer that is [s] machine
   words and zero pointers, so sorting and deduplicating a
   million-answer partition is sequential memory traffic instead of a
   pointer chase through a million tiny heap blocks. *)

let rec row_cmp_from (a : int array) oa (b : int array) ob stride i =
  if i >= stride then 0
  else
    let c =
      Int.compare (Array.unsafe_get a (oa + i)) (Array.unsafe_get b (ob + i))
    in
    if c <> 0 then c else row_cmp_from a oa b ob stride (i + 1)

let compare_rows a oa b ob ~stride = row_cmp_from a oa b ob stride 0

let swap_rows (a : int array) stride i j =
  let oi = i * stride and oj = j * stride in
  for k = 0 to stride - 1 do
    let t = Array.unsafe_get a (oi + k) in
    Array.unsafe_set a (oi + k) (Array.unsafe_get a (oj + k));
    Array.unsafe_set a (oj + k) t
  done

(* Direct-call quicksort (median-of-three to the front, Hoare partition,
   swap-based insertion below 16 rows) over the rows of a flat bucket.
   [Array.sort] would need one heap block per row plus a closure call per
   comparison — at n log n comparisons per partition that indirection is
   the sort. [piv] is a caller-provided stride-sized scratch row: the
   pivot must be copied out because partition swaps move it. Bounds are
   row indices, [hi] inclusive. *)
let rec qsort_rows (a : int array) stride (piv : int array) lo hi =
  if hi - lo < 16 then
    for i = lo + 1 to hi do
      let j = ref i in
      while
        !j > lo && row_cmp_from a (!j * stride) a ((!j - 1) * stride) stride 0 < 0
      do
        swap_rows a stride !j (!j - 1);
        decr j
      done
    done
  else begin
    let mid = lo + ((hi - lo) / 2) in
    (* Sort rows lo/mid/hi among themselves, then move the median to [lo]
       where the Hoare scan expects its pivot. *)
    if row_cmp_from a (mid * stride) a (lo * stride) stride 0 < 0 then
      swap_rows a stride mid lo;
    if row_cmp_from a (hi * stride) a (mid * stride) stride 0 < 0 then begin
      swap_rows a stride hi mid;
      if row_cmp_from a (mid * stride) a (lo * stride) stride 0 < 0 then
        swap_rows a stride mid lo
    end;
    swap_rows a stride lo mid;
    Array.blit a (lo * stride) piv 0 stride;
    let i = ref (lo - 1) and j = ref (hi + 1) in
    let cut = ref (-1) in
    while !cut < 0 do
      incr i;
      while row_cmp_from a (!i * stride) piv 0 stride 0 < 0 do
        incr i
      done;
      decr j;
      while row_cmp_from piv 0 a (!j * stride) stride 0 < 0 do
        decr j
      done;
      if !i >= !j then cut := !j else swap_rows a stride !i !j
    done;
    qsort_rows a stride piv lo !cut;
    qsort_rows a stride piv (!cut + 1) hi
  end

let sort_rows (a : int array) ~stride ~rows =
  if stride > 0 && rows > 1 then qsort_rows a stride (Array.make stride 0) 0 (rows - 1)

(* Compact duplicate (adjacent, post-sort) rows in place; returns the
   unique count. Stride 0 (boolean answers) collapses to one row. *)
let uniq_rows (a : int array) ~stride ~rows =
  if rows = 0 then 0
  else begin
    let w = ref 1 in
    for r = 1 to rows - 1 do
      if row_cmp_from a (r * stride) a ((!w - 1) * stride) stride 0 <> 0 then begin
        if r <> !w then Array.blit a (r * stride) a (!w * stride) stride;
        incr w
      end
    done;
    !w
  end

let decode_row (a : int array) ~stride ~row =
  let off = row * stride in
  Array.init stride (fun i -> Value.decode a.(off + i))

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)

exception Not_compilable of compiled

let const_code c =
  match Value.code (Value.Const c) with
  | Some code -> code
  | None -> raise (Not_compilable Unsupported)

let block_of inst (a : Atom.t) =
  match Instance.relation inst a.Atom.pred with
  | None -> raise (Not_compilable Empty)
  | Some rel ->
    if Relation.arity rel <> Atom.arity a then raise (Not_compilable Empty)
    else (
      match Relation.columnar rel with
      | Some block -> block
      | None -> raise (Not_compilable Unsupported))

(* Static mirror of [Eval.bindings]'s per-step selection. *)
let plan_order tagged =
  let unbound_vars bound (a : Atom.t) =
    Array.fold_left
      (fun acc t ->
        match t with
        | Term.Var v when not (Symbol.Set.mem v bound) -> v :: acc
        | Term.Var _ | Term.Const _ -> acc)
      [] a.Atom.args
  in
  let count_bound bound (a : Atom.t) =
    Array.fold_left
      (fun acc t ->
        match t with
        | Term.Const _ -> acc + 1
        | Term.Var v -> if Symbol.Set.mem v bound then acc + 1 else acc)
      0 a.Atom.args
  in
  let rec loop bound acc remaining =
    match remaining with
    | [] -> List.rev acc
    | _ ->
      let unbound = List.map (fun (i, a, _) -> (i, unbound_vars bound a)) remaining in
      let joins_ahead i mine =
        mine <> []
        && List.exists
             (fun (j, theirs) ->
               j <> i
               && List.exists
                    (fun v -> List.exists (fun w -> Symbol.equal v w) theirs)
                    mine)
             unbound
      in
      let score (i, a, size) =
        ( count_bound bound a,
          (if joins_ahead i (List.assoc i unbound) then 1 else 0),
          -size )
      in
      let best =
        List.fold_left
          (fun best x ->
            match best with
            | None -> Some x
            | Some y -> if score x > score y then Some x else best)
          None remaining
      in
      (match best with
      | None -> assert false
      | Some ((i, a, _) as chosen) ->
        let bound = Symbol.Set.union bound (Atom.vars a) in
        loop bound (chosen :: acc) (List.filter (fun (j, _, _) -> j <> i) remaining))
  in
  loop Symbol.Set.empty [] tagged

let compile inst (q : Cq.t) =
  try
    let tagged =
      List.mapi
        (fun i a ->
          let block = block_of inst a in
          (i, a, Columnar.nrows block))
        q.Cq.body
    in
    let ordered = plan_order tagged in
    let slots : (Symbol.t, int) Hashtbl.t = Hashtbl.create 16 in
    let nslots = ref 0 in
    let slot_of v =
      match Hashtbl.find_opt slots v with
      | Some s -> Some s
      | None -> None
    in
    let new_slot v =
      let s = !nslots in
      Hashtbl.add slots v s;
      incr nslots;
      s
    in
    let steps =
      List.map
        (fun (_, (a : Atom.t), _) ->
          let block = block_of inst a in
          let n = Atom.arity a in
          (* The probe column: first position holding a constant or an
             already-bound variable — the same choice as
             [Eval.candidates]. *)
          let rec find_probe j =
            if j >= n then Scan
            else
              match a.Atom.args.(j) with
              | Term.Const c -> Probe_const (j, const_code c)
              | Term.Var v -> (
                match slot_of v with
                | Some s -> Probe_slot (j, s)
                | None -> find_probe (j + 1))
          in
          let probe = find_probe 0 in
          let probed_col = match probe with Scan -> -1 | Probe_const (j, _) | Probe_slot (j, _) -> j in
          let checks = ref [] in
          for j = 0 to n - 1 do
            let col = Columnar.col block j in
            match a.Atom.args.(j) with
            | Term.Const c -> if j <> probed_col then checks := Check_const (col, const_code c) :: !checks
            | Term.Var v -> (
              match slot_of v with
              | Some s -> if j <> probed_col then checks := Check_slot (col, s) :: !checks
              | None ->
                let s = new_slot v in
                checks := Bind (col, s) :: !checks)
          done;
          { block; probe; checks = Array.of_list (List.rev !checks) })
        ordered
    in
    let out =
      List.map
        (function
          | Term.Const c -> Out_code (const_code c)
          | Term.Var v -> (
            match slot_of v with
            | Some s -> Out_slot s
            | None -> invalid_arg "Col_eval.compile: unbound answer variable"))
        q.Cq.answer
    in
    Compiled { steps = Array.of_list steps; nslots = !nslots; out = Array.of_list out }
  with Not_compilable c -> c

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

(* Candidate rows of a step under the current frame: [(rows, start, len)]
   where the row ids are [rows.(start) ..] when [rows] is [Some _] and the
   identity range [start ..] otherwise (full scan). *)
let candidates (s : step) (frame : int array) =
  match s.probe with
  | Scan -> (None, 0, Columnar.nrows s.block)
  | Probe_const (col, code) ->
    let rows, start, len = Columnar.probe s.block ~col code in
    (Some rows, start, len)
  | Probe_slot (col, slot) ->
    let rows, start, len = Columnar.probe s.block ~col frame.(slot) in
    (Some rows, start, len)

let lead_len t =
  if Array.length t.steps = 0 then 0
  else
    let _, _, len = candidates t.steps.(0) [||] in
    len

exception Stopped

(* Poll/charge stride: batching the shared governor's atomic counter is
   what keeps many workers from serializing on it; 256 keeps the
   cancellation latency well under a millisecond of work. *)
let stride = 256

let run ?gov t ~lo ~hi ~emit =
  let frame = Array.make (max t.nslots 1) 0 in
  let steps = t.steps in
  let nsteps = Array.length steps in
  let nodes = ref 0 in
  let tick =
    match gov with
    | None -> fun () -> ()
    | Some g ->
      fun () ->
        incr nodes;
        if !nodes land (stride - 1) = 0 then begin
          Tgd_exec.Governor.charge ~n:stride g Tgd_exec.Budget.key_eval_steps;
          if not (Tgd_exec.Governor.live g) then raise Stopped
        end
  in
  let flush () =
    match gov with
    | None -> ()
    | Some g ->
      let rem = !nodes land (stride - 1) in
      if rem > 0 then Tgd_exec.Governor.charge ~n:rem g Tgd_exec.Budget.key_eval_steps
  in
  let nout = Array.length t.out in
  (* One scratch answer, refilled per match: the emit callback must copy
     what it keeps. Copying into a flat partition bucket is exactly what
     [Par_eval] does, so the per-answer heap allocation disappears. *)
  let out_buf = Array.make nout 0 in
  let emit_current () =
    for i = 0 to nout - 1 do
      out_buf.(i) <-
        (match Array.unsafe_get t.out i with Out_slot s -> frame.(s) | Out_code c -> c)
    done;
    emit out_buf
  in
  (* Top-level-style recursion with explicit arguments: an inner closure
     capturing [cs]/[r] would be allocated per candidate row. *)
  let rec checks_from (cs : check array) n r i =
    i >= n
    ||
    match Array.unsafe_get cs i with
    | Check_const (col, code) -> Array.unsafe_get col r = code && checks_from cs n r (i + 1)
    | Check_slot (col, slot) ->
      Array.unsafe_get col r = Array.unsafe_get frame slot && checks_from cs n r (i + 1)
    | Bind (col, slot) ->
      Array.unsafe_set frame slot (Array.unsafe_get col r);
      checks_from cs n r (i + 1)
  in
  let matches (s : step) r =
    let cs = s.checks in
    checks_from cs (Array.length cs) r 0
  in
  let rec at depth =
    if depth = nsteps then emit_current ()
    else begin
      let s = Array.unsafe_get steps depth in
      let rows, start, len = candidates s frame in
      let stop = start + len in
      match rows with
      | None ->
        for r = start to stop - 1 do
          if matches s r then begin
            tick ();
            at (depth + 1)
          end
        done
      | Some rows ->
        for k = start to stop - 1 do
          let r = Array.unsafe_get rows k in
          if matches s r then begin
            tick ();
            at (depth + 1)
          end
        done
    end
  in
  (try
     if nsteps = 0 then emit_current ()
     else begin
       let s = Array.unsafe_get steps 0 in
       let rows, start, _ = candidates s frame in
       let lo = start + lo and hi = start + hi in
       match rows with
       | None ->
         for r = lo to hi - 1 do
           if matches s r then begin
             tick ();
             at 1
           end
         done
       | Some rows ->
         for k = lo to hi - 1 do
           let r = Array.unsafe_get rows k in
           if matches s r then begin
             tick ();
             at 1
           end
         done
     end
   with Stopped -> ());
  flush ()
