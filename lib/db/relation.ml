module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type t = {
  arity : int;
  rows : unit Tuple.Table.t;
  indexes : Tuple.t list Vtbl.t option array; (* one optional index per column *)
}

let create ~arity =
  if arity < 0 then invalid_arg "Relation.create: negative arity";
  { arity; rows = Tuple.Table.create 64; indexes = Array.make (max arity 1) None }

let arity r = r.arity
let cardinality r = Tuple.Table.length r.rows
let mem r t = Tuple.Table.mem r.rows t

let index_insert idx t pos =
  let key = t.(pos) in
  let existing = Option.value ~default:[] (Vtbl.find_opt idx key) in
  Vtbl.replace idx key (t :: existing)

let insert r t =
  if Array.length t <> r.arity then invalid_arg "Relation.insert: arity mismatch";
  if Tuple.Table.mem r.rows t then false
  else begin
    Tuple.Table.add r.rows t ();
    Array.iteri
      (fun pos idx -> match idx with None -> () | Some idx -> index_insert idx t pos)
      r.indexes;
    true
  end

let iter f r = Tuple.Table.iter (fun t () -> f t) r.rows
let fold f r init = Tuple.Table.fold (fun t () acc -> f t acc) r.rows init
let to_list r = fold (fun t acc -> t :: acc) r []

let build_index r pos =
  let idx = Vtbl.create (max 64 (cardinality r)) in
  iter (fun t -> index_insert idx t pos) r;
  r.indexes.(pos) <- Some idx;
  idx

let build_all_indexes r =
  for pos = 0 to r.arity - 1 do
    match r.indexes.(pos) with Some _ -> () | None -> ignore (build_index r pos)
  done

let lookup r ~pos v =
  if pos < 0 || pos >= r.arity then invalid_arg "Relation.lookup: position out of range";
  let idx = match r.indexes.(pos) with Some idx -> idx | None -> build_index r pos in
  Option.value ~default:[] (Vtbl.find_opt idx v)
