module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type partition = {
  pos : int;
  shards : Tuple.t array array;
}

type t = {
  arity : int;
  rows : unit Tuple.Table.t;
  indexes : Tuple.t list Vtbl.t option array; (* one optional index per column *)
  mutable partition : partition option;
  mutable columnar : Columnar.t option;
  (* The last sealed block. [Some _] with an empty [pending] means the block
     mirrors [rows] exactly; with a non-empty [pending] the block covers a
     prefix and the next seal extends it ({!Columnar.extend}) instead of
     re-encoding everything. *)
  mutable pending : Tuple.t list;
  (* Tuples inserted since the block was built, newest first. Only grows
     while [columnar] is [Some _]. *)
  mutable columnar_failed : bool;
  (* An uncodable value was seen: stop re-attempting the encode on every
     seal. Reset by insert (the offending tuple may be gone... it is not —
     inserts only add — but the flag is cheap to keep precise per snapshot). *)
  mutable unboxed : Columnar.t option;
  (* [Some block]: the relation was adopted from a snapshot block and the
     row hashtable has not been materialized yet ([rows] is empty, [pending]
     too, [columnar = Some block]). Pure columnar readers never pay for the
     boxing; the first boxed-side consumer triggers it via [ensure_rows]. *)
}

let create ~arity =
  if arity < 0 then invalid_arg "Relation.create: negative arity";
  {
    arity;
    rows = Tuple.Table.create 64;
    indexes = Array.make (max arity 1) None;
    partition = None;
    columnar = None;
    pending = [];
    columnar_failed = false;
    unboxed = None;
  }

(* Copy-on-write duplication: the hashtable and index tables are duplicated
   (cheap structural copies — keys and the tuples themselves are shared and
   never mutated), while the frozen snapshots (columnar block, partition
   shards, pending tail) are shared outright. Either side can keep
   inserting without the other observing it. *)
let copy r =
  {
    arity = r.arity;
    rows = Tuple.Table.copy r.rows;
    indexes = Array.map (Option.map Vtbl.copy) r.indexes;
    partition = r.partition;
    columnar = r.columnar;
    pending = r.pending;
    columnar_failed = r.columnar_failed;
    unboxed = r.unboxed;
  }

let arity r = r.arity

(* Materialize the deferred row hashtable of a snapshot-adopted relation:
   decode each block row once. Idempotent; a no-op everywhere else. *)
let ensure_rows r =
  match r.unboxed with
  | None -> ()
  | Some block ->
    r.unboxed <- None;
    Columnar.iter_rows (fun t -> Tuple.Table.replace r.rows t ()) block

let cardinality r =
  match r.unboxed with
  | Some block -> Columnar.nrows block
  | None -> Tuple.Table.length r.rows

let mem r t =
  ensure_rows r;
  Tuple.Table.mem r.rows t

let index_insert idx t pos =
  let key = t.(pos) in
  let existing = Option.value ~default:[] (Vtbl.find_opt idx key) in
  Vtbl.replace idx key (t :: existing)

let insert r t =
  if Array.length t <> r.arity then invalid_arg "Relation.insert: arity mismatch";
  ensure_rows r;
  if Tuple.Table.mem r.rows t then false
  else begin
    Tuple.Table.add r.rows t ();
    Array.iteri
      (fun pos idx -> match idx with None -> () | Some idx -> index_insert idx t pos)
      r.indexes;
    (* Shards are frozen snapshots of the rows; a grown relation must not
       serve stale ones to the parallel evaluator. The columnar block is
       kept alongside a pending tail so the next seal can extend it in
       place of a full re-encode. *)
    r.partition <- None;
    (match r.columnar with
    | Some _ -> r.pending <- t :: r.pending
    | None -> r.columnar_failed <- false);
    true
  end

let iter f r =
  ensure_rows r;
  Tuple.Table.iter (fun t () -> f t) r.rows

let fold f r init =
  ensure_rows r;
  Tuple.Table.fold (fun t () acc -> f t acc) r.rows init
let to_list r = fold (fun t acc -> t :: acc) r []

let build_index r pos =
  let idx = Vtbl.create (max 64 (cardinality r)) in
  iter (fun t -> index_insert idx t pos) r;
  r.indexes.(pos) <- Some idx;
  idx

let build_all_indexes r =
  for pos = 0 to r.arity - 1 do
    match r.indexes.(pos) with Some _ -> () | None -> ignore (build_index r pos)
  done

let lookup r ~pos v =
  if pos < 0 || pos >= r.arity then invalid_arg "Relation.lookup: position out of range";
  let idx = match r.indexes.(pos) with Some idx -> idx | None -> build_index r pos in
  Option.value ~default:[] (Vtbl.find_opt idx v)

(* ------------------------------------------------------------------ *)
(* Hash partitioning                                                   *)

(* The partition position is the column with the most distinct values: its
   hash spreads the rows most evenly, so the shards — the scan units handed
   to parallel workers — stay balanced. *)
let partition_position r =
  if r.arity = 0 then 0
  else begin
    let best = ref 0 and best_distinct = ref (-1) in
    for pos = 0 to r.arity - 1 do
      let distinct =
        match r.indexes.(pos) with Some idx -> Vtbl.length idx | None -> -1
      in
      if distinct > !best_distinct then begin
        best := pos;
        best_distinct := distinct
      end
    done;
    !best
  end

let build_partition r ~parts =
  if parts <= 0 then invalid_arg "Relation.seal: partitions must be positive";
  let parts = max 1 (min parts (max 1 (cardinality r))) in
  let pos = partition_position r in
  let shard_of t =
    if r.arity = 0 then 0 else (Value.hash t.(pos) land max_int) mod parts
  in
  let counts = Array.make parts 0 in
  iter (fun t -> counts.(shard_of t) <- counts.(shard_of t) + 1) r;
  let shards = Array.init parts (fun i -> Array.make counts.(i) [||]) in
  let fill = Array.make parts 0 in
  iter
    (fun t ->
      let s = shard_of t in
      shards.(s).(fill.(s)) <- t;
      fill.(s) <- fill.(s) + 1)
    r;
  r.partition <- Some { pos; shards }

let build_columnar r =
  match r.columnar with
  | Some block when r.pending <> [] -> (
    (* Sealed-instance append path: code only the tail, blit the rest. *)
    let tail = Array.of_list (List.rev r.pending) in
    r.pending <- [];
    match Columnar.extend block tail with
    | Some block -> r.columnar <- Some block
    | None ->
      r.columnar <- None;
      r.columnar_failed <- true)
  | Some _ -> ()
  | None ->
    if not r.columnar_failed then begin
      let tuples = Array.make (cardinality r) [||] in
      let i = ref 0 in
      iter
        (fun t ->
          tuples.(!i) <- t;
          incr i)
        r;
      match Columnar.build ~arity:r.arity tuples with
      | Some block -> r.columnar <- Some block
      | None -> r.columnar_failed <- true
    end

let seal ?partitions r =
  build_columnar r;
  (* With a block covering every row, scans and joins run columnar and the
     boxed per-column indexes stay lazy (built on the first fallback
     lookup) — this is what makes adopting a snapshot block a bulk load.
     Relations without a block are served boxed and keep eager indexes. *)
  if r.columnar = None then build_all_indexes r;
  match partitions with
  | None -> ()
  | Some parts -> (
    match r.partition with
    | Some p when Array.length p.shards = max 1 (min parts (max 1 (cardinality r))) -> ()
    | Some _ | None ->
      (* partition_position picks the most selective column from the
         indexes, so build them before sharding. *)
      build_all_indexes r;
      build_partition r ~parts)

let partition r = Option.map (fun p -> (p.pos, p.shards)) r.partition

let columnar r =
  (* A block with a pending tail is stale: readers get [None] until the
     next seal extends it. *)
  match r.pending with [] -> r.columnar | _ :: _ -> None

let sealed_parts r =
  match r.columnar with
  | Some _ as block -> (block, List.rev r.pending)
  | None -> (None, to_list r)

let of_columnar block =
  let r = create ~arity:(Columnar.arity block) in
  (* Adopt the block outright: no value re-coding, no CSR re-grouping, and
     even the row hashtable stays deferred ([ensure_rows]) until a boxed
     consumer — membership, insert, iteration — actually needs it. *)
  r.columnar <- Some block;
  r.unboxed <- Some block;
  r

(* ------------------------------------------------------------------ *)
(* Value substitution (EGD merges)                                     *)

let index_remove idx t pos =
  let key = t.(pos) in
  match Vtbl.find_opt idx key with
  | None -> ()
  | Some l -> (
    match List.filter (fun u -> not (Tuple.equal u t)) l with
    | [] -> Vtbl.remove idx key
    | l' -> Vtbl.replace idx key l')

let substitute r ~from_ ~to_ =
  let affected = Tuple.Table.create 8 in
  for pos = 0 to r.arity - 1 do
    List.iter (fun t -> Tuple.Table.replace affected t ()) (lookup r ~pos from_)
  done;
  if Tuple.Table.length affected = 0 then []
  else begin
    (* Remove every affected row first, then insert the rewritten rows:
       a replacement may collide with another affected original. *)
    Tuple.Table.iter
      (fun old () ->
        Tuple.Table.remove r.rows old;
        Array.iteri
          (fun pos idx ->
            match idx with None -> () | Some idx -> index_remove idx old pos)
          r.indexes)
      affected;
    let fresh = ref [] in
    Tuple.Table.iter
      (fun old () ->
        let nw = Array.map (fun v -> if Value.equal v from_ then to_ else v) old in
        if not (Tuple.Table.mem r.rows nw) then begin
          Tuple.Table.add r.rows nw ();
          Array.iteri
            (fun pos idx ->
              match idx with None -> () | Some idx -> index_insert idx nw pos)
            r.indexes;
          fresh := nw :: !fresh
        end)
      affected;
    (* Substitution rewrites sealed rows, so the extend path is invalid:
       drop every frozen snapshot. *)
    r.partition <- None;
    r.columnar <- None;
    r.pending <- [];
    r.columnar_failed <- false;
    !fresh
  end
