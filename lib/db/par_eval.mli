(** Morsel-driven parallel evaluation of conjunctive queries and unions
    thereof.

    On a sealed instance ({!Instance.seal}) the engine runs compiled
    columnar plans ({!Col_eval}): each disjunct's leading scan is split
    into contiguous row-range morsels over the relation's {!Columnar}
    block, and answers are {e partition-owned} — every task hashes its
    coded answers into task-private flat partition buckets (one blit of
    [arity] ints per emitted match — duplicates included, bounded by the
    governor's [eval.steps] budget when one is given), a second parallel
    phase gives each of the P partitions to one worker for lock-free
    sorting, deduplication and decoding, and the sequential tail is a pure
    k-way concatenation-merge of disjoint sorted runs. No mutex is taken
    and no per-answer heap block is allocated on the answer path.

    Instances that are not sealed (or hold values outside the codable
    range, see {!Value.code}) fall back to the boxed engine: leading-atom
    morsels through {!Eval.bindings}'s [~forced] hook, per-worker
    {!Tuple.Table} answer sets merged under a mutex. Either way results
    are byte-identical to {!Eval.ucq}'s (same deduplication, same final
    sort order).

    Governance survives parallelism: all workers poll the one shared
    governor (the columnar engine charges [eval.steps] in batches, so the
    shared atomic counter is off the per-tuple path), [eval.morsels] is
    charged per dispatched task, the [eval.par.workers] peak gauge is
    recorded, and merge time accumulates in the [eval.par.merge] phase —
    all only when a governor is present; the ungoverned path takes no
    timestamps and touches no telemetry.

    The instance must not be mutated during evaluation; callers seal it
    first so index reads are race-free. *)

open Tgd_logic

val default_min_tuples : int
(** Leading-scan size below which a disjunct is evaluated sequentially
    (still columnar when sealed): 512. *)

val ucq :
  ?gov:Tgd_exec.Governor.t ->
  ?pool:Tgd_exec.Pool.t ->
  ?workers:int ->
  ?min_tuples:int ->
  ?partitions:int ->
  ?columnar:bool ->
  Instance.t ->
  Cq.ucq ->
  Tuple.t list
(** Union of the answers of the disjuncts, deduplicated and sorted — the
    parallel counterpart of {!Eval.ucq}. Worker count is [workers] if
    given, else the [pool]'s size, else {!Tgd_exec.Pool.default_workers}.
    [partitions] is the answer-partition count P of the columnar merge
    (default [4 × workers]; raises [Invalid_argument] when [< 1]); more
    partitions balance skewed answer distributions, fewer amortize the
    per-partition setup. [~columnar:false] forces the boxed engine even on
    a sealed instance (debugging and differential testing). Morsels are
    dispatched through [pool] when given (the caller participates; see
    {!Tgd_exec.Pool.run_morsels}), otherwise through short-lived domains
    ({!Tgd_logic.Parallel.parallel_for}). *)

val cq :
  ?gov:Tgd_exec.Governor.t ->
  ?pool:Tgd_exec.Pool.t ->
  ?workers:int ->
  ?min_tuples:int ->
  ?partitions:int ->
  ?columnar:bool ->
  Instance.t ->
  Cq.t ->
  Tuple.t list
(** [ucq] on a single disjunct. *)
