(** Morsel-driven parallel evaluation of conjunctive queries and unions
    thereof.

    The engine parallelizes exactly the scan the sequential planner would
    perform first ({!Eval.lead}): the leading atom's candidate tuples are
    split into morsels — the relation's hash-partition shards when the atom
    is an unconstrained scan over a relation sealed with
    {!Relation.seal}[ ~partitions], fixed-size chunks otherwise — and each
    morsel runs the remaining join on a worker through {!Eval.bindings}'s
    [~forced] hook. Per-worker answer sets are deduplicated locally and
    merged under a mutex; results are byte-identical to {!Eval.ucq}'s
    (same deduplication, same final sort).

    Governance survives parallelism: all workers poll the one shared
    governor, [eval.steps] totals stay exact (telemetry counters are
    atomic), and once the governor trips every worker winds down, yielding
    the same partial-answer contract as the sequential path. The engine
    additionally charges [eval.morsels] per dispatched morsel, records the
    [eval.par.workers] peak gauge and accumulates merge time in the
    [eval.par.merge] phase.

    The instance must not be mutated during evaluation; callers seal it
    first ({!Instance.seal}) so index reads are race-free. *)

open Tgd_logic

val default_min_tuples : int
(** Leading-scan size below which evaluation falls back to the sequential
    path (per disjunct): 512. *)

val ucq :
  ?gov:Tgd_exec.Governor.t ->
  ?pool:Tgd_exec.Pool.t ->
  ?workers:int ->
  ?min_tuples:int ->
  Instance.t ->
  Cq.ucq ->
  Tuple.t list
(** Union of the answers of the disjuncts, deduplicated and sorted — the
    parallel counterpart of {!Eval.ucq}. Worker count is [workers] if
    given, else the [pool]'s size, else {!Tgd_exec.Pool.default_workers};
    with one worker (or a leading scan under [min_tuples]) the sequential
    path runs unchanged. Morsels are dispatched through [pool] when given
    (the caller participates; see {!Tgd_exec.Pool.run_morsels}), otherwise
    through short-lived domains ({!Tgd_logic.Parallel.parallel_for}). *)

val cq :
  ?gov:Tgd_exec.Governor.t ->
  ?pool:Tgd_exec.Pool.t ->
  ?workers:int ->
  ?min_tuples:int ->
  Instance.t ->
  Cq.t ->
  Tuple.t list
(** [ucq] on a single disjunct. *)
