open Tgd_logic

type env = Value.t Symbol.Map.t

(* Try to match an atom against a tuple under [env]; return the extended
   environment on success. *)
let match_tuple env (a : Atom.t) (t : Tuple.t) =
  let n = Array.length a.Atom.args in
  if Array.length t <> n then None
  else
    let rec loop env i =
      if i >= n then Some env
      else
        match a.Atom.args.(i) with
        | Term.Const c -> if Value.equal t.(i) (Value.Const c) then loop env (i + 1) else None
        | Term.Var v -> (
          match Symbol.Map.find_opt v env with
          | Some value -> if Value.equal t.(i) value then loop env (i + 1) else None
          | None -> loop (Symbol.Map.add v t.(i) env) (i + 1))
    in
    loop env 0

(* A bound position: one whose value is fixed by the environment. *)
let bound_value env (a : Atom.t) i =
  match a.Atom.args.(i) with
  | Term.Const c -> Some (Value.Const c)
  | Term.Var v -> Symbol.Map.find_opt v env

let count_bound env a =
  let n = Atom.arity a in
  let rec loop i acc = if i >= n then acc else loop (i + 1) (acc + if Option.is_some (bound_value env a i) then 1 else 0) in
  loop 0 0

let unbound_vars env (b : Atom.t) =
  Array.fold_left
    (fun acc t ->
      match t with
      | Term.Var v when not (Symbol.Map.mem v env) -> v :: acc
      | Term.Var _ | Term.Const _ -> acc)
    [] b.Atom.args

(* Does atom [i] share a variable, still unbound under the current
   environment, with another remaining atom? An atom with no such variable
   is isolated: choosing it early turns the join into a cross product that
   multiplies all later work by its cardinality, so the planner sinks
   isolated atoms below joinable ones. [unbound] is the per-step memo of
   every remaining atom's unbound variables — computed once per planning
   step, not once per candidate pair, which kept the old selection
   quadratic in the body size at every join level. *)
let joins_ahead unbound i =
  match List.assoc_opt i unbound with
  | None | Some [] -> false
  | Some mine ->
    List.exists
      (fun (j, theirs) ->
        j <> i
        && List.exists (fun v -> List.exists (fun w -> Symbol.compare v w = 0) theirs) mine)
      unbound

let relation_size inst (a : Atom.t) =
  match Instance.relation inst a.Atom.pred with
  | None -> 0
  | Some rel -> Relation.cardinality rel

(* Candidate tuples for an atom under [env]: an index lookup on the first
   bound position if any, otherwise a full scan. *)
let candidates inst env (a : Atom.t) =
  match Instance.relation inst a.Atom.pred with
  | None -> []
  | Some rel ->
    let n = Atom.arity a in
    let rec first_bound i =
      if i >= n then None
      else match bound_value env a i with Some v -> Some (i, v) | None -> first_bound (i + 1)
    in
    (match first_bound 0 with
    | Some (pos, v) -> Relation.lookup rel ~pos v
    | None -> Relation.to_list rel)

let bindings ?gov ?(init = Symbol.Map.empty) ?forced inst atoms k =
  (* Tag atoms with their position so the forced atom can be recognised
     after reordering, and with their relation's cardinality so the
     per-step selection does not re-query the instance. *)
  let tagged = List.mapi (fun i a -> (i, a, relation_size inst a)) atoms in
  let forced_index, forced_tuples =
    match forced with Some (i, ts) -> (i, ts) | None -> (-1, [])
  in
  (* Join-search loop head: a governed evaluation stops emitting bindings
     once the governor trips (partial answers — the caller learns about the
     truncation from the governor, not from us). *)
  let live =
    match gov with
    | None -> fun () -> true
    | Some g ->
      fun () ->
        Tgd_exec.Governor.charge g Tgd_exec.Budget.key_eval_steps;
        Tgd_exec.Governor.live g
  in
  let rec go env remaining =
    if not (live ()) then ()
    else
      match remaining with
      | [] -> k env
      | _ ->
      (* Adaptive greedy choice: forced atom first, then most bound
         positions, then atoms joined to the rest through a still-unbound
         shared variable (isolated atoms cross-product, so they go last),
         then smaller relation. *)
      let unbound = List.map (fun (i, a, _) -> (i, unbound_vars env a)) remaining in
      let score (i, a, size) =
        if i = forced_index then (max_int, 0, 0)
        else
          ( count_bound env a,
            (if joins_ahead unbound i then 1 else 0),
            -size )
      in
      let best =
        List.fold_left
          (fun acc x ->
            match acc with
            | None -> Some x
            | Some y -> if score x > score y then Some x else acc)
          None remaining
      in
      (match best with
      | None -> assert false
      | Some (i, a, _) ->
        let rest = List.filter (fun (j, _, _) -> j <> i) remaining in
        let tuples = if i = forced_index then forced_tuples else candidates inst env a in
        List.iter
          (fun t -> match match_tuple env a t with None -> () | Some env' -> go env' rest)
          tuples)
  in
  go init tagged

let lead inst atoms =
  match List.mapi (fun i a -> (i, a, relation_size inst a)) atoms with
  | [] -> invalid_arg "Eval.lead: empty body"
  | first :: _ as tagged ->
    let env = Symbol.Map.empty in
    let unbound = List.map (fun (i, a, _) -> (i, unbound_vars env a)) tagged in
    let score (i, a, size) =
      ( count_bound env a,
        (if joins_ahead unbound i then 1 else 0),
        -size )
    in
    let _, best =
      List.fold_left
        (fun (s, x) y ->
          let s' = score y in
          if s' > s then (s', y) else (s, x))
        (score first, first) tagged
    in
    let i, a, _ = best in
    (i, candidates inst env a)

let answer_tuple env answer =
  let value = function
    | Term.Const c -> Value.Const c
    | Term.Var v -> (
      match Symbol.Map.find_opt v env with
      | Some value -> value
      | None -> invalid_arg "Eval.answer_tuple: unbound answer variable")
  in
  Array.of_list (List.map value answer)

let collect ?gov inst (q : Cq.t) acc =
  bindings ?gov inst q.Cq.body (fun env ->
      let t = answer_tuple env q.Cq.answer in
      if not (Tuple.Table.mem acc t) then Tuple.Table.add acc t ())

let cq ?gov inst q =
  let acc = Tuple.Table.create 64 in
  collect ?gov inst q acc;
  Tuple.Table.fold (fun t () l -> t :: l) acc [] |> List.sort Tuple.compare

exception Found

let cq_exists ?gov inst q =
  try
    bindings ?gov inst q.Cq.body (fun _ -> raise Found);
    false
  with Found -> true

let ucq ?gov inst disjuncts =
  let acc = Tuple.Table.create 64 in
  List.iter (fun q -> collect ?gov inst q acc) disjuncts;
  Tuple.Table.fold (fun t () l -> t :: l) acc [] |> List.sort Tuple.compare
