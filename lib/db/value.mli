(** Database values: constants and labeled nulls.

    Labeled nulls are the fresh witnesses invented by the chase for
    existential head variables; they never compare equal to any constant. *)

type t =
  | Const of Tgd_logic.Symbol.t
  | Null of int

val const : string -> t
val is_null : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** The same spelling {!pp} prints ([Const c] as its name, [Null n] as
    ["_n<n>"]) without the [Format] machinery — the serving layer calls
    this once per answer cell, where formatter allocation is measurable. *)

val null_base : int
(** First null code: constants code below it, nulls at or above it. *)

val code : t -> int option
(** Order-preserving integer code, the unit of columnar storage
    ({!Columnar}): constants code to their symbol intern index, nulls to
    [null_base + label]. The integer order of codes coincides with
    {!compare} and the coding is injective, so coded tuples can be hashed,
    deduplicated and sorted without decoding. [None] if the value falls
    outside the codable range (a symbol index or null label [>= null_base],
    or a negative null label) — callers then fall back to boxed tuples. *)

val decode : int -> t
(** Inverse of {!code}. Raises [Invalid_argument] on an integer no value
    codes to. *)

val of_term : Tgd_logic.Term.t -> t
(** Converts a constant; raises [Invalid_argument] on a variable. *)

val to_term : t -> Tgd_logic.Term.t
(** Constants map back to constants; nulls map to variables named ["_nK"]
    (used to re-express an instance as atoms). *)
