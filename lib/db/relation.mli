(** A mutable extensional relation: a set of tuples of a fixed arity with
    per-column hash indexes (built lazily, maintained incrementally) and an
    optional hash partition into shards, the scan units of morsel-driven
    parallel evaluation ({!Par_eval}). *)

type t

val create : arity:int -> t
val arity : t -> int
val cardinality : t -> int

val copy : t -> t
(** Copy-on-write duplicate: the row set and indexes are structurally
    copied (the tuples themselves are shared — they are never mutated),
    and the frozen seal artifacts (columnar block, partition, pending
    append tail) are shared outright. Inserting into either side leaves
    the other unchanged. *)

val insert : t -> Tuple.t -> bool
(** [true] iff the tuple was not already present. Raises [Invalid_argument]
    on an arity mismatch. *)

val mem : t -> Tuple.t -> bool
val iter : (Tuple.t -> unit) -> t -> unit
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> Tuple.t list

val lookup : t -> pos:int -> Value.t -> Tuple.t list
(** Tuples whose 0-based column [pos] holds the given value; backed by a
    hash index built on first use for that column. *)

val build_all_indexes : t -> unit
(** Force every column index to exist. After this, a relation that is no
    longer inserted into can serve {!lookup} from any number of domains
    concurrently — nothing on the read path mutates. *)

val seal : ?partitions:int -> t -> unit
(** {!build_all_indexes}, encode the {!Columnar} block, and — when
    [partitions] is given — hash-partition the rows into (at most) that many
    shards on the column with the most distinct values, so the shards come
    out balanced. Idempotent for a given shard count; raises
    [Invalid_argument] when [partitions <= 0]. The partition is a frozen
    snapshot that any later {!insert} discards; the columnar block instead
    survives inserts as a stale prefix plus a pending tail, and the next
    seal {e extends} it ({!Columnar.extend}) — only the appended tuples are
    coded, nothing is re-hashed. *)

val columnar : t -> Columnar.t option
(** The columnar block built by the last {!seal}, if it still mirrors the
    rows exactly (no insert since) and every value was codable
    ({!Value.code}). *)

val sealed_parts : t -> Columnar.t option * Tuple.t list
(** The last sealed block (even when stale) and the pending tail inserted
    since it was built, in insertion order. [(None, rows)] when the
    relation was never sealed or holds uncodable values: the snapshot codec
    then falls back to boxed row encoding. Together the block and the tail
    always cover exactly the current rows. *)

val of_columnar : Columnar.t -> t
(** Rebuild a relation from a decoded snapshot block: the block is adopted
    as the sealed columnar representation (no re-encode — the next {!seal}
    only builds the boxed per-column indexes), and the row set is populated
    by decoding each row once. *)

val substitute : t -> from_:Value.t -> to_:Value.t -> Tuple.t list
(** Rewrite, in place, every row containing [from_] (located through the
    per-column indexes) by replacing [from_] with [to_]. Returns the
    rewritten rows that are new to the relation (a rewrite may collide
    with an existing row). Discards every frozen seal artifact — rewriting
    sealed rows cannot be expressed as an append. The EGD delta path
    ({!Tgd_chase.Delta_chase}) uses this to replay merges against only the
    touched equivalence class. *)

val partition : t -> (int * Tuple.t array array) option
(** The partition column and the shards built by the last {!seal}
    [~partitions], if still valid. Every row appears in exactly one shard;
    two rows sharing the partition column's value share a shard. *)
