(** Semi-naive bottom-up evaluation of existential-free TGDs (plain Datalog
    rules). Used as the materialization baseline for programs that do not
    invent values. *)

open Tgd_logic

type stats = {
  rounds : int;
  derived : int;  (** facts added on top of the input instance *)
}

val saturate :
  ?gov:Tgd_exec.Governor.t -> ?max_rounds:int -> Program.t -> Instance.t -> stats
(** Extend the instance in place with every derivable fact. Raises
    [Invalid_argument] if some rule has an existential head variable.
    [max_rounds] (default unlimited) caps the number of semi-naive rounds;
    Datalog saturation always terminates, the cap exists for experiment
    harnesses. When [gov] is given, join search charges
    {!Tgd_exec.Budget.key_eval_steps}, the derived-fact count is gauged
    against {!Tgd_exec.Budget.key_rewrite_datalog_facts}, and the loop winds
    down at the end of the current round once the governor stops — the
    instance then holds a sound under-approximation of the fixpoint. *)
