open Tgd_logic

type t = { relations : Relation.t Symbol.Table.t }
type fact = Symbol.t * Tuple.t

let create () = { relations = Symbol.Table.create 32 }

let copy inst =
  let fresh = create () in
  Symbol.Table.iter
    (fun pred rel -> Symbol.Table.add fresh.relations pred (Relation.copy rel))
    inst.relations;
  fresh

let relation inst pred = Symbol.Table.find_opt inst.relations pred

let relation_for inst pred ~arity =
  match Symbol.Table.find_opt inst.relations pred with
  | Some rel ->
    if Relation.arity rel <> arity then
      invalid_arg
        (Printf.sprintf "Instance: predicate %s used with arities %d and %d" (Symbol.name pred)
           (Relation.arity rel) arity);
    rel
  | None ->
    let rel = Relation.create ~arity in
    Symbol.Table.add inst.relations pred rel;
    rel

let add_fact inst pred t = Relation.insert (relation_for inst pred ~arity:(Array.length t)) t

let install_relation inst pred rel =
  (match Symbol.Table.find_opt inst.relations pred with
  | Some existing when Relation.arity existing <> Relation.arity rel ->
    invalid_arg
      (Printf.sprintf "Instance.install_relation: predicate %s used with arities %d and %d"
         (Symbol.name pred) (Relation.arity existing) (Relation.arity rel))
  | Some _ | None -> ());
  Symbol.Table.replace inst.relations pred rel

let add_ground_atom inst a =
  let t = Array.map Value.of_term a.Atom.args in
  add_fact inst a.Atom.pred t

let predicates inst =
  Symbol.Table.fold (fun pred rel acc -> (pred, Relation.arity rel) :: acc) inst.relations []
  |> List.sort (fun (p1, _) (p2, _) -> Symbol.compare p1 p2)

let cardinality inst =
  Symbol.Table.fold (fun _ rel acc -> acc + Relation.cardinality rel) inst.relations 0

let iter_facts f inst =
  Symbol.Table.iter (fun pred rel -> Relation.iter (fun t -> f (pred, t)) rel) inst.relations

let facts inst =
  let acc = ref [] in
  iter_facts (fun fact -> acc := fact :: !acc) inst;
  !acc

let to_atoms inst =
  let acc = ref [] in
  iter_facts
    (fun (pred, t) -> acc := Atom.make pred (Array.to_list (Array.map Value.to_term t)) :: !acc)
    inst;
  !acc

let of_atoms atoms =
  let inst = create () in
  List.iter (fun a -> ignore (add_ground_atom inst a)) atoms;
  inst

let substitute inst ~from_ ~to_ =
  let fresh = ref [] in
  Symbol.Table.iter
    (fun pred rel ->
      List.iter
        (fun t -> fresh := (pred, t) :: !fresh)
        (Relation.substitute rel ~from_ ~to_))
    inst.relations;
  !fresh

let max_null inst =
  let best = ref 0 in
  iter_facts
    (fun (_, t) ->
      Array.iter
        (fun v -> match v with Value.Null n -> if n > !best then best := n | _ -> ())
        t)
    inst;
  !best

let build_indexes inst =
  Symbol.Table.iter (fun _ rel -> Relation.build_all_indexes rel) inst.relations

let seal ?partitions inst =
  Symbol.Table.iter (fun _ rel -> Relation.seal ?partitions rel) inst.relations

let pp ppf inst =
  let pp_fact ppf (pred, t) = Format.fprintf ppf "%a%a" Symbol.pp pred Tuple.pp t in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_fact)
    (List.sort compare (facts inst))
