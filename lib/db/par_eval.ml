(* Morsel-driven parallel UCQ evaluation.

   For each disjunct the engine takes the scan the sequential planner would
   run first ([Eval.lead]), splits it into morsels — the relation's hash
   partition shards when the atom is an unconstrained scan over a sealed
   relation, fixed-size chunks of the candidate list otherwise — and runs
   the remaining join for each morsel on a worker via [Eval.bindings]'s
   [~forced] hook. Workers deduplicate locally, then merge into a shared
   answer table under a mutex; the final sort makes the result byte-equal
   to the sequential path's. The shared governor is polled by every worker,
   so budgets and truncation semantics survive parallelism (the [eval.steps]
   total stays exact: telemetry counters are atomic). *)

open Tgd_logic

let default_min_tuples = 512

(* Aim for a few morsels per worker so the dynamic scheduler can balance
   uneven morsel costs, but keep morsels big enough to amortize dispatch. *)
let morsels_of_list ~workers tuples =
  let len = List.length tuples in
  let target = workers * 4 in
  let chunk = max 64 ((len + target - 1) / target) in
  let rec take n acc rest =
    match rest with
    | x :: rest when n > 0 -> take (n - 1) (x :: acc) rest
    | _ -> (List.rev acc, rest)
  in
  let rec go acc rest =
    match rest with
    | [] -> List.rev acc
    | _ ->
      let m, rest = take chunk [] rest in
      go (m :: acc) rest
  in
  Array.of_list (go [] tuples)

let shard_morsels inst (a : Atom.t) =
  let unconstrained =
    Array.for_all (function Term.Var _ -> true | Term.Const _ -> false) a.Atom.args
  in
  if not unconstrained then None
  else
    Option.bind (Instance.relation inst a.Atom.pred) Relation.partition
    |> Option.map (fun (_pos, shards) ->
           Array.to_list shards
           |> List.filter_map (fun s ->
                  if Array.length s = 0 then None else Some (Array.to_list s))
           |> Array.of_list)

let ucq ?gov ?pool ?workers ?(min_tuples = default_min_tuples) inst disjuncts =
  let workers =
    match (workers, pool) with
    | Some w, _ -> max 1 w
    | None, Some p -> Tgd_exec.Pool.size p
    | None, None -> Tgd_exec.Pool.default_workers ()
  in
  if workers <= 1 then Eval.ucq ?gov inst disjuncts
  else begin
    (match gov with
    | Some g -> Tgd_exec.Governor.gauge g "eval.par.workers" workers
    | None -> ());
    let acc = Tuple.Table.create 64 in
    let lock = Mutex.create () in
    let merge local =
      let t0 = Unix.gettimeofday () in
      Mutex.lock lock;
      Tuple.Table.iter
        (fun t () -> if not (Tuple.Table.mem acc t) then Tuple.Table.add acc t ())
        local;
      Mutex.unlock lock;
      match gov with
      | Some g ->
        Tgd_exec.Telemetry.add_span (Tgd_exec.Governor.telemetry g) "eval.par.merge"
          (Unix.gettimeofday () -. t0)
      | None -> ()
    in
    let run_batch n f =
      match pool with
      | Some p -> Tgd_exec.Pool.run_morsels p ~n f
      | None -> Parallel.parallel_for ~domains:workers ~n f
    in
    List.iter
      (fun (q : Cq.t) ->
        (* Disjuncts run one after another; only the morsel batch below is
           concurrent, so the sequential path may write [acc] directly. *)
        let collect_seq () =
          Eval.bindings ?gov inst q.Cq.body (fun env ->
              let t = Eval.answer_tuple env q.Cq.answer in
              if not (Tuple.Table.mem acc t) then Tuple.Table.add acc t ())
        in
        match q.Cq.body with
        | [] -> collect_seq ()
        | body ->
          let lead_idx, lead_tuples = Eval.lead inst body in
          if List.length lead_tuples < min_tuples then collect_seq ()
          else begin
            let lead_atom = List.nth body lead_idx in
            let morsels =
              match shard_morsels inst lead_atom with
              | Some shards when Array.length shards > 1 -> shards
              | Some _ | None -> morsels_of_list ~workers lead_tuples
            in
            let n = Array.length morsels in
            (match gov with
            | Some g -> Tgd_exec.Governor.charge ~n g "eval.morsels"
            | None -> ());
            run_batch n (fun m ->
                let local = Tuple.Table.create 256 in
                Eval.bindings ?gov ~forced:(lead_idx, morsels.(m)) inst body (fun env ->
                    let t = Eval.answer_tuple env q.Cq.answer in
                    if not (Tuple.Table.mem local t) then Tuple.Table.add local t ());
                merge local)
          end)
      disjuncts;
    Tuple.Table.fold (fun t () l -> t :: l) acc [] |> List.sort Tuple.compare
  end

let cq ?gov ?pool ?workers ?min_tuples inst q = ucq ?gov ?pool ?workers ?min_tuples inst [ q ]
