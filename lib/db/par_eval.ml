(* Morsel-driven parallel UCQ evaluation.

   Two engines share this entry point.

   The columnar engine (the default on sealed instances) compiles each
   disjunct with [Col_eval], splits the leading scan into contiguous
   row-range morsels, and lets every worker hash its coded answers into
   task-private partition buckets. The merge is then free of locks: a
   second parallel phase gives each of the P answer partitions to one
   worker, which deduplicates and sorts its partition alone, and the final
   k-way concatenation-merge of the (disjoint, sorted) partitions is a
   linear pass. No mutex is taken anywhere on the answer path.

   The boxed engine is the pre-columnar fallback — kept for instances that
   are not sealed or hold uncodable values: leading-atom morsels over
   [Eval.bindings]'s [~forced] hook. Its merge follows the same
   partition-owned discipline as the columnar engine — tasks hash boxed
   answers into task-private per-partition buckets, one worker per
   partition dedups and sorts, and the sorted disjoint partitions fold
   together in a linear merge — so no mutex is taken here either.

   Both engines poll the one shared governor, so budgets and truncation
   semantics survive parallelism; both return answers byte-identical to
   [Eval.ucq]'s (same deduplication, same final order). *)

open Tgd_logic

let default_min_tuples = 512

(* ------------------------------------------------------------------ *)
(* Boxed engine (fallback)                                             *)

(* Aim for a few morsels per worker so the dynamic scheduler can balance
   uneven morsel costs, but keep morsels big enough to amortize dispatch. *)
let morsels_of_list ~workers tuples =
  let len = List.length tuples in
  let target = workers * 4 in
  let chunk = max 64 ((len + target - 1) / target) in
  let rec take n acc rest =
    match rest with
    | x :: rest when n > 0 -> take (n - 1) (x :: acc) rest
    | _ -> (List.rev acc, rest)
  in
  let rec go acc rest =
    match rest with
    | [] -> List.rev acc
    | _ ->
      let m, rest = take chunk [] rest in
      go (m :: acc) rest
  in
  Array.of_list (go [] tuples)

let shard_morsels inst (a : Atom.t) =
  let unconstrained =
    Array.for_all (function Term.Var _ -> true | Term.Const _ -> false) a.Atom.args
  in
  if not unconstrained then None
  else
    Option.bind (Instance.relation inst a.Atom.pred) Relation.partition
    |> Option.map (fun (_pos, shards) ->
           Array.to_list shards
           |> List.filter_map (fun s ->
                  if Array.length s = 0 then None else Some (Array.to_list s))
           |> Array.of_list)

let run_batch ?pool ~workers n f =
  match pool with
  | Some p -> Tgd_exec.Pool.run_morsels p ~n f
  | None -> Parallel.parallel_for ~domains:workers ~n f

let boxed_ucq ?gov ?pool ~workers ~min_tuples ~partitions inst disjuncts =
  let parts_n = partitions in
  let part_of t = Tuple.hash t land max_int mod parts_n in
  (* Answers land in per-partition list buckets: the sequential paths own
     [seq_buckets], each parallel morsel owns one slot of its batch's
     bucket table, and the coordinating thread collects the slots after the
     batch — no lock is taken anywhere on the answer path. Per-task
     [Tuple.Table]s dedup within a morsel only; cross-task duplicates are
     the partition owner's job in phase 2. *)
  let seq_buckets = Array.make parts_n [] in
  let all_buckets : Tuple.t list array list ref = ref [] in
  List.iter
    (fun (q : Cq.t) ->
      let collect_seq () =
        let local = Tuple.Table.create 64 in
        Eval.bindings ?gov inst q.Cq.body (fun env ->
            let t = Eval.answer_tuple env q.Cq.answer in
            if not (Tuple.Table.mem local t) then begin
              Tuple.Table.add local t ();
              let p = part_of t in
              seq_buckets.(p) <- t :: seq_buckets.(p)
            end)
      in
      match q.Cq.body with
      | [] -> collect_seq ()
      | body ->
        let lead_idx, lead_tuples = Eval.lead inst body in
        if List.length lead_tuples < min_tuples then collect_seq ()
        else begin
          let lead_atom = List.nth body lead_idx in
          let morsels =
            match shard_morsels inst lead_atom with
            | Some shards when Array.length shards > 1 -> shards
            | Some _ | None -> morsels_of_list ~workers lead_tuples
          in
          let n = Array.length morsels in
          (match gov with
          | Some g -> Tgd_exec.Governor.charge ~n g "eval.morsels"
          | None -> ());
          let slots = Array.make n [||] in
          run_batch ?pool ~workers n (fun m ->
              let locals = Array.make parts_n [] in
              let local = Tuple.Table.create 256 in
              Eval.bindings ?gov ~forced:(lead_idx, morsels.(m)) inst body (fun env ->
                  let t = Eval.answer_tuple env q.Cq.answer in
                  if not (Tuple.Table.mem local t) then begin
                    Tuple.Table.add local t ();
                    let p = part_of t in
                    locals.(p) <- t :: locals.(p)
                  end);
              slots.(m) <- locals);
          Array.iter (fun b -> if Array.length b > 0 then all_buckets := b :: !all_buckets) slots
        end)
    disjuncts;
  (* Phase 2: partition-owned dedup + sort. Partition [p] is touched by
     exactly one worker, which merges the sequential bucket and every
     task's bucket for [p] through a private table. *)
  let merge_t0 = match gov with Some _ -> Unix.gettimeofday () | None -> 0.0 in
  let buckets = Array.of_list !all_buckets in
  let parts = Array.make parts_n [] in
  let merge_partition p =
    let table = Tuple.Table.create 64 in
    let add t = if not (Tuple.Table.mem table t) then Tuple.Table.add table t () in
    List.iter add seq_buckets.(p);
    Array.iter (fun b -> List.iter add b.(p)) buckets;
    parts.(p) <- Tuple.Table.fold (fun t () l -> t :: l) table [] |> List.sort Tuple.compare
  in
  if workers <= 1 || parts_n = 1 then
    for p = 0 to parts_n - 1 do
      merge_partition p
    done
  else run_batch ?pool ~workers parts_n merge_partition;
  (* Phase 3: equal answers hash to the same partition, so the partitions
     are disjoint and folding sorted merges reproduces
     [List.sort Tuple.compare] over the union exactly. *)
  let result = Array.fold_left (fun acc l -> List.merge Tuple.compare acc l) [] parts in
  (match gov with
  | Some g ->
    Tgd_exec.Telemetry.add_span (Tgd_exec.Governor.telemetry g) "eval.par.merge"
      (Unix.gettimeofday () -. merge_t0)
  | None -> ());
  result

(* ------------------------------------------------------------------ *)
(* Columnar engine                                                     *)

(* A grow-only flat bucket of fixed-stride coded rows; each one is owned
   by exactly one task (phase 1) or one partition worker (phase 2), so no
   locking — and no per-answer heap block: pushing an answer blits its
   codes onto the end of one [int array]. [rows] is tracked separately so
   stride-0 (boolean) answers still count. *)
type bucket = {
  mutable data : int array;
  mutable rows : int;
}

let bucket_create () = { data = [||]; rows = 0 }

let bucket_push b (src : int array) stride =
  let need = (b.rows + 1) * stride in
  if need > Array.length b.data then begin
    let bigger = Array.make (max 1024 (2 * need)) 0 in
    Array.blit b.data 0 bigger 0 (b.rows * stride);
    b.data <- bigger
  end;
  Array.blit src 0 b.data (b.rows * stride) stride;
  b.rows <- b.rows + 1

(* Phase 2's output for one partition: per answer arity (ascending — the
   leading key of [Tuple.compare]) the sorted unique coded rows, plus the
   matching decoded tuples in the same global order. The flat rows drive
   the phase-3 head comparisons; the tuples are what gets returned. *)
type part = {
  strides : int array;
  flats : int array array;
  counts : int array;
  tuples : Tuple.t array;
}

let empty_part = { strides = [||]; flats = [||]; counts = [||]; tuples = [||] }

let default_partitions ~workers = max 1 (workers * 4)

(* Every disjunct compiled, or the reason we must fall back. *)
let compile_all inst disjuncts =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | q :: rest -> (
      match Col_eval.compile inst q with
      | Col_eval.Compiled t -> go (Some t :: acc) rest
      | Col_eval.Empty -> go (None :: acc) rest
      | Col_eval.Unsupported -> None)
  in
  go [] disjuncts

let columnar_ucq ?gov ?pool ~workers ~min_tuples ~partitions plans =
  (* One [eval.steps] charge per disjunct mirrors the boxed engine's
     join-search root charge, so a 1-step budget trips either engine. *)
  (match gov with
  | Some g when plans <> [] ->
    Tgd_exec.Governor.charge ~n:(List.length plans) g Tgd_exec.Budget.key_eval_steps
  | Some _ | None -> ());
  let compiled = List.filter_map Fun.id plans in
  (* Answer arities present, ascending — [Tuple.compare]'s leading key,
     so phase 2 can emit each partition's arity groups in this order and
     be globally sorted. (Disjuncts of one union normally share an arity;
     nothing here assumes it.) *)
  let strides =
    List.sort_uniq Int.compare (List.map Col_eval.out_arity compiled) |> Array.of_list
  in
  (* Phase 1: scan morsels. Contiguous row ranges of each disjunct's
     leading scan; every task hashes each coded answer it emits into
     task-private per-partition flat buckets — a stride-sized blit, no
     allocation and no dedup probe (the partition sort makes every
     duplicate adjacent, so phase 2 dedups for free). *)
  let parts_n = partitions in
  let tasks =
    List.concat_map
      (fun plan ->
        let n0 = Col_eval.lead_len plan in
        if n0 = 0 then [ (plan, 0, 0) ]
        else if workers <= 1 || n0 < min_tuples then [ (plan, 0, n0) ]
        else begin
          let target = workers * 4 in
          let chunk = max 1024 ((n0 + target - 1) / target) in
          let rec ranges lo acc =
            if lo >= n0 then List.rev acc
            else ranges (lo + chunk) ((plan, lo, min n0 (lo + chunk)) :: acc)
          in
          ranges 0 []
        end)
      compiled
    |> Array.of_list
  in
  let ntasks = Array.length tasks in
  let buckets = Array.make ntasks [||] in
  let scan_task ti =
    let plan, lo, hi = tasks.(ti) in
    let stride = Col_eval.out_arity plan in
    let locals = Array.init parts_n (fun _ -> bucket_create ()) in
    Col_eval.run ?gov plan ~lo ~hi ~emit:(fun a ->
        bucket_push locals.(Col_eval.hash_codes a mod parts_n) a stride);
    buckets.(ti) <- locals
  in
  if ntasks > 0 then begin
    (match gov with
    | Some g -> Tgd_exec.Governor.charge ~n:ntasks g "eval.morsels"
    | None -> ());
    if workers <= 1 || ntasks = 1 then
      for ti = 0 to ntasks - 1 do
        scan_task ti
      done
    else run_batch ?pool ~workers ntasks scan_task
  end;
  (* Phase 2: partition-owned sort + dedup. Partition [p] is touched by
     exactly one worker, so the cross-task merge needs no lock: per
     arity group it concatenates the tasks' flat buckets, sorts the rows
     in place (sequential memory — the rows are bare ints), compacts
     adjacent duplicates, and only then decodes, so the sequential tail
     below touches nothing but sorted uniques. *)
  let merge_t0 = match gov with Some _ -> Unix.gettimeofday () | None -> 0.0 in
  let parts = Array.make parts_n empty_part in
  let task_strides = Array.map (fun (plan, _, _) -> Col_eval.out_arity plan) tasks in
  let merge_partition p =
    let groups = ref [] in
    Array.iter
      (fun stride ->
        let total = ref 0 in
        for ti = 0 to ntasks - 1 do
          if task_strides.(ti) = stride && Array.length buckets.(ti) > 0 then
            total := !total + buckets.(ti).(p).rows
        done;
        if !total > 0 then begin
          let flat = Array.make (!total * stride) 0 in
          let fill = ref 0 in
          for ti = 0 to ntasks - 1 do
            if task_strides.(ti) = stride && Array.length buckets.(ti) > 0 then begin
              let b = buckets.(ti).(p) in
              Array.blit b.data 0 flat !fill (b.rows * stride);
              fill := !fill + (b.rows * stride)
            end
          done;
          Col_eval.sort_rows flat ~stride ~rows:!total;
          let uniq = Col_eval.uniq_rows flat ~stride ~rows:!total in
          groups := (stride, flat, uniq) :: !groups
        end)
      strides;
    let groups = Array.of_list (List.rev !groups) in
    let nuniq = Array.fold_left (fun acc (_, _, u) -> acc + u) 0 groups in
    if nuniq > 0 then begin
      let tuples = Array.make nuniq [||] in
      let fill = ref 0 in
      Array.iter
        (fun (stride, flat, uniq) ->
          for row = 0 to uniq - 1 do
            tuples.(!fill) <- Col_eval.decode_row flat ~stride ~row;
            incr fill
          done)
        groups;
      parts.(p) <-
        {
          strides = Array.map (fun (s, _, _) -> s) groups;
          flats = Array.map (fun (_, f, _) -> f) groups;
          counts = Array.map (fun (_, _, u) -> u) groups;
          tuples;
        }
    end
  in
  if ntasks > 0 then
    if workers <= 1 || parts_n = 1 then merge_partition 0
    else run_batch ?pool ~workers parts_n merge_partition;
  (* Sequential tail: k-way merge of the (disjoint — equal answers hash
     to the same partition) sorted partitions. Heads are compared on the
     flat codes, arity first; output takes the pre-decoded tuples. *)
  let total = Array.fold_left (fun acc p -> acc + Array.length p.tuples) 0 parts in
  let result = Array.make total [||] in
  let head_g = Array.make parts_n 0 in
  let head_r = Array.make parts_n 0 in
  let head_t = Array.make parts_n 0 in
  let head_cmp p q =
    let sp = parts.(p).strides.(head_g.(p)) and sq = parts.(q).strides.(head_g.(q)) in
    let c = Int.compare sp sq in
    if c <> 0 then c
    else
      Col_eval.compare_rows
        parts.(p).flats.(head_g.(p))
        (head_r.(p) * sp)
        parts.(q).flats.(head_g.(q))
        (head_r.(q) * sp) ~stride:sp
  in
  for i = 0 to total - 1 do
    let best = ref (-1) in
    for p = 0 to parts_n - 1 do
      if head_g.(p) < Array.length parts.(p).strides then
        if !best < 0 || head_cmp p !best < 0 then best := p
    done;
    let b = !best in
    result.(i) <- parts.(b).tuples.(head_t.(b));
    head_t.(b) <- head_t.(b) + 1;
    head_r.(b) <- head_r.(b) + 1;
    if head_r.(b) = parts.(b).counts.(head_g.(b)) then begin
      head_g.(b) <- head_g.(b) + 1;
      head_r.(b) <- 0
    end
  done;
  (match gov with
  | Some g ->
    Tgd_exec.Telemetry.add_span (Tgd_exec.Governor.telemetry g) "eval.par.merge"
      (Unix.gettimeofday () -. merge_t0)
  | None -> ());
  Array.to_list result

(* ------------------------------------------------------------------ *)

let ucq ?gov ?pool ?workers ?(min_tuples = default_min_tuples) ?partitions ?(columnar = true)
    inst disjuncts =
  let workers =
    match (workers, pool) with
    | Some w, _ -> max 1 w
    | None, Some p -> Tgd_exec.Pool.size p
    | None, None -> Tgd_exec.Pool.default_workers ()
  in
  (match gov with
  | Some g when workers > 1 -> Tgd_exec.Governor.gauge g "eval.par.workers" workers
  | Some _ | None -> ());
  let partitions =
    match partitions with
    | Some p when p >= 1 -> if workers <= 1 then 1 else p
    | Some p -> invalid_arg (Printf.sprintf "Par_eval.ucq: partitions must be >= 1, got %d" p)
    | None -> if workers <= 1 then 1 else default_partitions ~workers
  in
  let columnar_plans = if columnar then compile_all inst disjuncts else None in
  match columnar_plans with
  | Some plans -> columnar_ucq ?gov ?pool ~workers ~min_tuples ~partitions plans
  | None ->
    if workers <= 1 then Eval.ucq ?gov inst disjuncts
    else boxed_ucq ?gov ?pool ~workers ~min_tuples ~partitions inst disjuncts

let cq ?gov ?pool ?workers ?min_tuples ?partitions ?columnar inst q =
  ucq ?gov ?pool ?workers ?min_tuples ?partitions ?columnar inst [ q ]
