module Symbol = Tgd_logic.Symbol
module Term = Tgd_logic.Term

type t =
  | Const of Symbol.t
  | Null of int

let const s = Const (Symbol.intern s)
let is_null = function Null _ -> true | Const _ -> false

let equal v1 v2 =
  match v1, v2 with
  | Const c1, Const c2 -> Symbol.equal c1 c2
  | Null n1, Null n2 -> Int.equal n1 n2
  | Const _, Null _ | Null _, Const _ -> false

let compare v1 v2 =
  match v1, v2 with
  | Const c1, Const c2 -> Symbol.compare c1 c2
  | Null n1, Null n2 -> Int.compare n1 n2
  | Const _, Null _ -> -1
  | Null _, Const _ -> 1

let hash = function
  | Const c -> 2 * Symbol.hash c
  | Null n -> (2 * n) + 1

let pp ppf = function
  | Const c -> Symbol.pp ppf c
  | Null n -> Format.fprintf ppf "_n%d" n

let to_string = function
  | Const c -> Symbol.name c
  | Null n -> "_n" ^ string_of_int n

(* ------------------------------------------------------------------ *)
(* Order-preserving integer code (columnar storage)                    *)

(* Constants code to their symbol id, nulls to [null_base + label]: the
   integer order of codes coincides with [compare] (all constants before
   all nulls, then by id), so coded answer tuples can be deduplicated,
   partitioned and sorted without decoding. Symbol ids are dense intern
   indices and null labels are small positive counters, so the ranges
   cannot collide in practice; [code] refuses (returns [None]) rather than
   silently aliasing if they ever would. *)
let null_base = 1 lsl 44

let code = function
  | Const c ->
    let i = (c : Symbol.t :> int) in
    if i >= 0 && i < null_base then Some i else None
  | Null n -> if n >= 0 && n < null_base then Some (null_base + n) else None

let decode i =
  if i < null_base then Const (Symbol.of_int i) else Null (i - null_base)

let of_term = function
  | Term.Const c -> Const c
  | Term.Var _ -> invalid_arg "Value.of_term: variable"

let to_term = function
  | Const c -> Term.Const c
  | Null n -> Term.Var (Symbol.intern (Printf.sprintf "_n%d" n))
