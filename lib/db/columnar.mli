(** Columnar sealed storage for a relation.

    A block holds the relation's tuples as one flat [int array] per
    attribute, each entry the order-preserving {!Value.code} of the value,
    plus a CSR index per column mapping a code to a contiguous range of row
    ids. Blocks are immutable: {!Relation.seal} builds one, any later
    insert discards it. Morsel-driven evaluation ({!Par_eval}) scans row
    ranges of these contiguous arrays instead of boxed tuple lists, and the
    compiled join machinery ({!Col_eval}) probes the CSR indexes without
    allocating. *)

type t

val build : arity:int -> Tuple.t array -> t option
(** Encode a tuple snapshot. [None] when some value has no integer code
    (see {!Value.code}) — callers keep serving the boxed representation. *)

val extend : t -> Tuple.t array -> t option
(** [extend t appended] is a new block holding [t]'s rows followed by
    [appended], without re-encoding or re-hashing the sealed prefix: old
    columns are blitted, only the appended tuples are coded, and each CSR
    index grows by its group's new row ids. The input block is untouched
    (blocks stay immutable — in-flight readers of [t] are unaffected).
    [None] when some appended value has no integer code. *)

val arity : t -> int

val nrows : t -> int
(** Number of rows; row ids are [0 .. nrows - 1]. *)

val col : t -> int -> int array
(** The coded column for an attribute, of length [nrows]. Do not mutate. *)

val probe : t -> col:int -> int -> int array * int * int
(** [probe t ~col code] is [(rows, start, len)]: the row ids whose column
    [col] holds [code] are [rows.(start) .. rows.(start + len - 1)].
    [len = 0] when the code does not occur. Do not mutate [rows]. *)

val decode_row : t -> int -> Tuple.t
(** Rebuild the boxed tuple stored at a row id. *)

val iter_rows : (Tuple.t -> unit) -> t -> unit
(** Decode every row in row-id order (testing and round-trip checks). *)

(** {1 Serialization hooks}

    The durable store ({!Tgd_store.Snapshot}) persists blocks near-verbatim:
    the flat columns and the CSR index arrays are written as they are, so a
    snapshot load is a bulk read plus one symbol-remap pass — no value
    re-coding and no index re-hashing. *)

type parts = {
  p_arity : int;
  p_nrows : int;
  p_cols : int array array;  (** [arity] coded columns of [nrows] entries *)
  p_groups : (int * int) array array;
      (** per column: (value code, group id) pairs, one per distinct code *)
  p_starts : int array array;  (** per column: CSR group offsets *)
  p_rows : int array array;  (** per column: row ids grouped by code *)
}

val export : t -> parts
(** The block's arrays, shared (not copied) — treat them as read-only. *)

val import : parts -> t
(** Rebuild a block from {!export}ed (possibly code-remapped) parts without
    re-encoding values or re-grouping rows: only the per-column code->group
    hashtables are refilled, one entry per distinct code. The arrays are
    adopted, not copied. *)
