(* Columnar sealed storage: one flat int column per attribute plus a CSR
   index (code -> contiguous row-id range) per column. Built once when a
   relation is sealed; morsel workers then scan contiguous [int array]s
   instead of chasing boxed tuples through a hashtable, which is what makes
   parallel evaluation memory-bandwidth-bound instead of
   minor-heap/cache-miss-bound. *)

type index = {
  groups : (int, int) Hashtbl.t; (* value code -> group id *)
  starts : int array; (* group id -> offset into [rows]; length ngroups+1 *)
  rows : int array; (* row ids, grouped by the column's value code *)
}

type t = {
  arity : int;
  nrows : int;
  cols : int array array; (* arity columns of nrows codes each *)
  indexes : index array;
}

let arity t = t.arity
let nrows t = t.nrows

let build_index (col : int array) =
  let n = Array.length col in
  let groups = Hashtbl.create (max 16 (n / 4)) in
  let counts = ref (Array.make 16 0) in
  let ngroups = ref 0 in
  for i = 0 to n - 1 do
    let c = Array.unsafe_get col i in
    match Hashtbl.find_opt groups c with
    | Some g -> !counts.(g) <- !counts.(g) + 1
    | None ->
      let g = !ngroups in
      if g = Array.length !counts then begin
        let bigger = Array.make (2 * g) 0 in
        Array.blit !counts 0 bigger 0 g;
        counts := bigger
      end;
      !counts.(g) <- 1;
      Hashtbl.add groups c g;
      incr ngroups
  done;
  let starts = Array.make (!ngroups + 1) 0 in
  for g = 0 to !ngroups - 1 do
    starts.(g + 1) <- starts.(g) + !counts.(g)
  done;
  let fill = Array.init !ngroups (fun g -> starts.(g)) in
  let rows = Array.make n 0 in
  for i = 0 to n - 1 do
    let g = Hashtbl.find groups (Array.unsafe_get col i) in
    rows.(fill.(g)) <- i;
    fill.(g) <- fill.(g) + 1
  done;
  { groups; starts; rows }

exception Uncodable

let build ~arity (tuples : Tuple.t array) =
  let nrows = Array.length tuples in
  let cols = Array.init (max arity 1) (fun _ -> Array.make nrows 0) in
  try
    for i = 0 to nrows - 1 do
      let t = tuples.(i) in
      for j = 0 to arity - 1 do
        match Value.code t.(j) with
        | Some c -> cols.(j).(i) <- c
        | None -> raise Uncodable
      done
    done;
    let indexes = Array.init arity (fun j -> build_index cols.(j)) in
    Some { arity; nrows; cols; indexes }
  with Uncodable -> None

let col t j = t.cols.(j)

let probe t ~col code =
  let idx = t.indexes.(col) in
  match Hashtbl.find_opt idx.groups code with
  | None -> (idx.rows, 0, 0)
  | Some g -> (idx.rows, idx.starts.(g), idx.starts.(g + 1) - idx.starts.(g))

let decode_row t i = Array.init t.arity (fun j -> Value.decode t.cols.(j).(i))

let iter_rows f t =
  for i = 0 to t.nrows - 1 do
    f (decode_row t i)
  done
