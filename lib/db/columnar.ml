(* Columnar sealed storage: one flat int column per attribute plus a CSR
   index (code -> contiguous row-id range) per column. Built once when a
   relation is sealed; morsel workers then scan contiguous [int array]s
   instead of chasing boxed tuples through a hashtable, which is what makes
   parallel evaluation memory-bandwidth-bound instead of
   minor-heap/cache-miss-bound. *)

(* The value-code -> group-id map of an index: hashed and ready, or still
   the raw (code, group) pairs of a snapshot-imported block. Hydration is
   deferred to the first probe (a recovered server may never probe some
   columns). Not a [Lazy.t]: morsel workers probe concurrently, and racing
   domains here just build identical private tables — the last field write
   wins, which is benign duplicate work instead of [Lazy.Undefined]. *)
type groups_state =
  | Built of (int, int) Hashtbl.t
  | Pairs of (int * int) array

type index = {
  mutable groups : groups_state; (* value code -> group id *)
  starts : int array; (* group id -> offset into [rows]; length ngroups+1 *)
  rows : int array; (* row ids, grouped by the column's value code *)
}

let groups_of idx =
  match idx.groups with
  | Built tbl -> tbl
  | Pairs pairs ->
    let tbl = Hashtbl.create (max 16 (Array.length pairs)) in
    Array.iter (fun (code, g) -> Hashtbl.replace tbl code g) pairs;
    idx.groups <- Built tbl;
    tbl

type t = {
  arity : int;
  nrows : int;
  cols : int array array; (* arity columns of nrows codes each *)
  indexes : index array;
}

let arity t = t.arity
let nrows t = t.nrows

let build_index (col : int array) =
  let n = Array.length col in
  let groups = Hashtbl.create (max 16 (n / 4)) in
  let counts = ref (Array.make 16 0) in
  let ngroups = ref 0 in
  for i = 0 to n - 1 do
    let c = Array.unsafe_get col i in
    match Hashtbl.find_opt groups c with
    | Some g -> !counts.(g) <- !counts.(g) + 1
    | None ->
      let g = !ngroups in
      if g = Array.length !counts then begin
        let bigger = Array.make (2 * g) 0 in
        Array.blit !counts 0 bigger 0 g;
        counts := bigger
      end;
      !counts.(g) <- 1;
      Hashtbl.add groups c g;
      incr ngroups
  done;
  let starts = Array.make (!ngroups + 1) 0 in
  for g = 0 to !ngroups - 1 do
    starts.(g + 1) <- starts.(g) + !counts.(g)
  done;
  let fill = Array.init !ngroups (fun g -> starts.(g)) in
  let rows = Array.make n 0 in
  for i = 0 to n - 1 do
    let g = Hashtbl.find groups (Array.unsafe_get col i) in
    rows.(fill.(g)) <- i;
    fill.(g) <- fill.(g) + 1
  done;
  { groups = Built groups; starts; rows }

exception Uncodable

let build ~arity (tuples : Tuple.t array) =
  let nrows = Array.length tuples in
  let cols = Array.init (max arity 1) (fun _ -> Array.make nrows 0) in
  try
    for i = 0 to nrows - 1 do
      let t = tuples.(i) in
      for j = 0 to arity - 1 do
        match Value.code t.(j) with
        | Some c -> cols.(j).(i) <- c
        | None -> raise Uncodable
      done
    done;
    let indexes = Array.init arity (fun j -> build_index cols.(j)) in
    Some { arity; nrows; cols; indexes }
  with Uncodable -> None

(* Extend a CSR index with rows [old_n ..] of the (already extended)
   column, without rehashing the sealed prefix: each group keeps its old
   segment (blitted) followed by the appended row ids. *)
let extend_index idx (col : int array) ~old_n =
  let n = Array.length col in
  let groups = Hashtbl.copy (groups_of idx) in
  let old_ngroups = Array.length idx.starts - 1 in
  let counts = ref (Array.make (old_ngroups + 16) 0) in
  let ngroups = ref old_ngroups in
  for i = old_n to n - 1 do
    let c = Array.unsafe_get col i in
    let g =
      match Hashtbl.find_opt groups c with
      | Some g -> g
      | None ->
        let g = !ngroups in
        Hashtbl.add groups c g;
        incr ngroups;
        g
    in
    if g >= Array.length !counts then begin
      let bigger = Array.make (2 * Array.length !counts) 0 in
      Array.blit !counts 0 bigger 0 (Array.length !counts);
      counts := bigger
    end;
    !counts.(g) <- !counts.(g) + 1
  done;
  let starts = Array.make (!ngroups + 1) 0 in
  for g = 0 to !ngroups - 1 do
    let old_len = if g < old_ngroups then idx.starts.(g + 1) - idx.starts.(g) else 0 in
    let new_len = if g < Array.length !counts then !counts.(g) else 0 in
    starts.(g + 1) <- starts.(g) + old_len + new_len
  done;
  let rows = Array.make n 0 in
  let fill = Array.make (max !ngroups 1) 0 in
  for g = 0 to !ngroups - 1 do
    let pos = starts.(g) in
    if g < old_ngroups then begin
      let o = idx.starts.(g) and len = idx.starts.(g + 1) - idx.starts.(g) in
      Array.blit idx.rows o rows pos len;
      fill.(g) <- pos + len
    end
    else fill.(g) <- pos
  done;
  for i = old_n to n - 1 do
    let g = Hashtbl.find groups (Array.unsafe_get col i) in
    rows.(fill.(g)) <- i;
    fill.(g) <- fill.(g) + 1
  done;
  { groups = Built groups; starts; rows }

let extend t (tuples : Tuple.t array) =
  let added = Array.length tuples in
  if added = 0 then Some t
  else begin
    let old_n = t.nrows in
    let nrows = old_n + added in
    let cols =
      Array.init
        (max t.arity 1)
        (fun j ->
          let c = Array.make nrows 0 in
          Array.blit t.cols.(j) 0 c 0 old_n;
          c)
    in
    try
      for i = 0 to added - 1 do
        let tup = tuples.(i) in
        for j = 0 to t.arity - 1 do
          match Value.code tup.(j) with
          | Some c -> cols.(j).(old_n + i) <- c
          | None -> raise Uncodable
        done
      done;
      let indexes = Array.init t.arity (fun j -> extend_index t.indexes.(j) cols.(j) ~old_n) in
      Some { arity = t.arity; nrows; cols; indexes }
    with Uncodable -> None
  end

let col t j = t.cols.(j)

let probe t ~col code =
  let idx = t.indexes.(col) in
  match Hashtbl.find_opt (groups_of idx) code with
  | None -> (idx.rows, 0, 0)
  | Some g -> (idx.rows, idx.starts.(g), idx.starts.(g + 1) - idx.starts.(g))

let decode_row t i = Array.init t.arity (fun j -> Value.decode t.cols.(j).(i))

(* ------------------------------------------------------------------ *)
(* Serialization hooks (durable snapshots)                             *)

type parts = {
  p_arity : int;
  p_nrows : int;
  p_cols : int array array;
  p_groups : (int * int) array array;
  p_starts : int array array;
  p_rows : int array array;
}

let export t =
  let pairs_of idx =
    match idx.groups with
    | Pairs pairs -> pairs
    | Built tbl ->
      let pairs = Array.make (Array.length idx.starts - 1) (0, 0) in
      Hashtbl.iter (fun code g -> pairs.(g) <- (code, g)) tbl;
      pairs
  in
  {
    p_arity = t.arity;
    p_nrows = t.nrows;
    p_cols = t.cols;
    p_groups = Array.map pairs_of t.indexes;
    p_starts = Array.map (fun idx -> idx.starts) t.indexes;
    p_rows = Array.map (fun idx -> idx.rows) t.indexes;
  }

let import p =
  let index_of j =
    { groups = Pairs p.p_groups.(j); starts = p.p_starts.(j); rows = p.p_rows.(j) }
  in
  {
    arity = p.p_arity;
    nrows = p.p_nrows;
    cols = p.p_cols;
    indexes = Array.init p.p_arity index_of;
  }

let iter_rows f t =
  for i = 0 to t.nrows - 1 do
    f (decode_row t i)
  done
