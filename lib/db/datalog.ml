open Tgd_logic

type stats = {
  rounds : int;
  derived : int;
}

let head_tuple env (a : Atom.t) =
  Array.map
    (fun t ->
      match t with
      | Term.Const c -> Value.Const c
      | Term.Var v -> (
        match Symbol.Map.find_opt v env with
        | Some value -> value
        | None -> invalid_arg "Datalog: unbound head variable"))
    a.Atom.args

let saturate ?gov ?max_rounds program inst =
  let rules = Program.tgds program in
  List.iter
    (fun r ->
      if not (Symbol.Set.is_empty (Tgd.existential_head_vars r)) then
        invalid_arg
          (Printf.sprintf "Datalog.saturate: rule %s has existential head variables" r.Tgd.name))
    rules;
  let derived = ref 0 in
  let rounds = ref 0 in
  (* delta: facts added in the previous round, grouped by predicate. *)
  let apply_rule ~delta (r : Tgd.t) ~emit =
    let fire env = List.iter (fun h -> emit h.Atom.pred (head_tuple env h)) r.Tgd.head in
    match delta with
    | None -> Eval.bindings ?gov inst r.Tgd.body fire
    | Some delta ->
      (* Semi-naive: at least one body atom must match a delta fact; run one
         pass per body-atom position forced into the delta. *)
      List.iteri
        (fun i (a : Atom.t) ->
          match Symbol.Table.find_opt delta a.Atom.pred with
          | None | Some [] -> ()
          | Some tuples -> Eval.bindings ?gov ~forced:(i, tuples) inst r.Tgd.body fire)
        r.Tgd.body
  in
  let run_round ~delta =
    let next_delta : Tuple.t list Symbol.Table.t = Symbol.Table.create 16 in
    let emit pred t =
      if Instance.add_fact inst pred t then begin
        incr derived;
        let existing = Option.value ~default:[] (Symbol.Table.find_opt next_delta pred) in
        Symbol.Table.replace next_delta pred (t :: existing)
      end
    in
    List.iter (fun r -> apply_rule ~delta r ~emit) rules;
    next_delta
  in
  let live () =
    match gov with
    | None -> true
    | Some g ->
      Tgd_exec.Governor.gauge g Tgd_exec.Budget.key_rewrite_datalog_facts !derived;
      Tgd_exec.Governor.live g
  in
  let continue_ () =
    live () && match max_rounds with None -> true | Some m -> !rounds < m
  in
  let delta = ref (run_round ~delta:None) in
  rounds := 1;
  while Symbol.Table.length !delta > 0 && continue_ () do
    delta := run_round ~delta:(Some !delta);
    incr rounds
  done;
  ignore (live ());
  { rounds = !rounds; derived = !derived }
