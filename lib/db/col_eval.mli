(** Compiled conjunctive-query evaluation over {!Columnar} blocks.

    {!compile} turns a CQ body into a fixed array of join steps against the
    sealed relations' columnar blocks: variables become numbered slots in
    one mutable [int array] binding frame, constants become pre-computed
    {!Value.code}s, and each step either probes a CSR column index or scans
    a contiguous column. The interpreter allocates nothing per candidate
    tuple, which removes the [Symbol.Map]/boxed-tuple churn that made the
    boxed engine minor-heap-bound under multiple domains.

    Answers stay coded integers end to end: {!run} refills one scratch row
    per match, {!Par_eval} copies it into flat fixed-stride partition
    buckets, and because {!Value.code} is order-preserving the
    sort/dedup/merge pipeline ({!sort_rows}, {!uniq_rows},
    {!compare_rows}) works on those flat ints and decodes
    ({!decode_row}) only the final, already-sorted answer set — yielding
    byte-identical results to {!Eval.ucq}. *)

open Tgd_logic

type t

type compiled =
  | Compiled of t
  | Empty
      (** A body atom can never match (unknown predicate or arity
          mismatch): the disjunct has no answers. *)
  | Unsupported
      (** A relation has no columnar block, or a constant is uncodable:
          evaluate this UCQ with the boxed engine instead. *)

val compile : Instance.t -> Cq.t -> compiled
(** Plan (with {!Eval.bindings}'s greedy heuristics, resolved statically)
    and compile one disjunct against a sealed instance. *)

val out_arity : t -> int

val lead_len : t -> int
(** Number of candidate rows of the leading step — the scan that
    {!Par_eval} splits into morsels. *)

val run :
  ?gov:Tgd_exec.Governor.t ->
  t ->
  lo:int ->
  hi:int ->
  emit:(int array -> unit) ->
  unit
(** Evaluate the compiled plan over the leading step's candidate rows
    [lo .. hi - 1] (a morsel; [0 .. lead_len] covers the disjunct),
    calling [emit] with the coded answer per match. The emitted array is a
    single scratch buffer refilled between matches — callers must copy
    what they keep (duplicates included: deduplication is the caller's
    partition-owned business). A governed run charges [eval.steps] per
    join node in batches and stops emitting once the governor trips, like
    the boxed engine. *)

val compare_codes : int array -> int array -> int
(** Lexicographic order on coded answers (shorter arities first); equals
    [Tuple.compare] on the decoded tuples. *)

val hash_codes : int array -> int
(** Hash of a coded answer — {!Par_eval}'s partition router. Equal
    answers hash alike, so every duplicate lands in the same partition
    and the per-partition sort puts it adjacent. *)

val compare_rows : int array -> int -> int array -> int -> stride:int -> int
(** [compare_rows a oa b ob ~stride] compares the [stride] codes at
    offset [oa] of [a] against those at [ob] of [b] — {!compare_codes}
    for rows living inside flat buckets. *)

val sort_rows : int array -> stride:int -> rows:int -> unit
(** Sort the [rows] fixed-[stride] rows of a flat bucket in place — a
    direct-call quicksort; at n log n comparisons per answer partition
    [Array.sort]'s per-row boxing and closure indirection would be the
    sort. *)

val uniq_rows : int array -> stride:int -> rows:int -> int
(** Compact duplicate adjacent rows (i.e. all duplicates, post
    {!sort_rows}) to the front in place; returns the unique row count. *)

val decode_row : int array -> stride:int -> row:int -> Tuple.t
(** Decode one bucket row back to a boxed tuple, in {!Value.code}'s
    order-preserving inverse. *)
