(** Static join plans — an inspectable rendition of the greedy policy that
    {!Eval} applies adaptively: order atoms by (most bound positions,
    smallest relation), serve each atom from a per-column index when some
    position is bound, scan otherwise. [explain] is what the [obda]
    CLI prints; the actual evaluator re-derives the choice at run time with
    live bindings, so the static plan is a faithful preview, not a separate
    execution engine. *)

open Tgd_logic

type access =
  | Scan  (** full relation scan *)
  | Index_lookup of int  (** hash-index probe on a 0-based column *)

type step = {
  atom : Atom.t;
  access : access;
  bound_vars : Symbol.Set.t;  (** variables bound before this step *)
  relation_rows : int;  (** cardinality of the atom's relation *)
}

type t = step list

val choose : Instance.t -> Cq.t -> t
(** The greedy static order for this query over this instance's current
    statistics (relation cardinalities, which columns would be bound). *)

val pp : Format.formatter -> t -> unit
(** One line per step: access path, relation size, newly bound variables. *)

val explain : Instance.t -> Cq.t -> string
(** [pp] of [choose] as a string — the [obda] CLI's plan printout. *)
