open Tgd_logic

(* Split one CSV record into fields, honouring double quotes. Each field
   carries whether it was quoted: quoted fields are taken verbatim, only
   unquoted ones are trimmed by the caller. *)
let split_fields line =
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let quoted_field = ref false in
  let n = String.length line in
  let flush_field () =
    fields := (Buffer.contents buf, !quoted_field) :: !fields;
    Buffer.clear buf;
    quoted_field := false
  in
  let rec unquoted i =
    if i >= n then flush_field ()
    else
      match line.[i] with
      | ',' ->
        flush_field ();
        unquoted (i + 1)
      | '"' when Buffer.length buf = 0 ->
        quoted_field := true;
        quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        unquoted (i + 1)
  and quoted i =
    if i >= n then failwith "unterminated quote"
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> after_quote (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  and after_quote i =
    if i >= n then flush_field ()
    else
      match line.[i] with
      | ',' ->
        flush_field ();
        unquoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        after_quote (i + 1)
  in
  unquoted 0;
  List.rev !fields

let parse_record line =
  let trimmed = String.trim line in
  if trimmed = "" || trimmed.[0] = '#' then None
  else
    match split_fields trimmed with
    | [] -> None
    | (pred, pred_quoted) :: args ->
      let field (s, quoted) = if quoted then s else String.trim s in
      let values = List.map (fun f -> Value.const (field f)) args in
      Some
        ( Symbol.intern (if pred_quoted then pred else String.trim pred),
          Array.of_list values )

let parse_line = parse_record

(* Split a source into records at newlines that fall outside double quotes,
   so quoted fields may contain literal newlines. Escaped quotes ([""])
   toggle the state twice and cancel out. Yields each record with the
   1-based line number it starts on. *)
let split_records src =
  let records = ref [] in
  let buf = Buffer.create 64 in
  let in_quotes = ref false in
  let line = ref 1 in
  let record_start = ref 1 in
  let flush () =
    records := (!record_start, Buffer.contents buf) :: !records;
    Buffer.clear buf;
    record_start := !line
  in
  String.iter
    (fun c ->
      match c with
      | '"' ->
        in_quotes := not !in_quotes;
        Buffer.add_char buf c
      | '\n' ->
        incr line;
        if !in_quotes then Buffer.add_char buf c else flush ()
      | c -> Buffer.add_char buf c)
    src;
  flush ();
  (* An unterminated quote swallows every following newline; report it at
     its own record, not as one giant final record. *)
  List.rev !records

let load_string src =
  let inst = Instance.create () in
  let rec go = function
    | [] -> Ok inst
    | (lineno, record) :: rest -> (
      match parse_record record with
      | exception Failure msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
      | None -> go rest
      | Some (pred, t) -> (
        match Instance.add_fact inst pred t with
        | _ -> go rest
        | exception Invalid_argument msg -> Error (Printf.sprintf "line %d: %s" lineno msg)))
  in
  go (split_records src)

let load_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  load_string src

(* A field must be quoted when its raw spelling would not read back as
   itself: separators and quotes, newlines (record separators), leading or
   trailing whitespace (unquoted fields are trimmed on load), or a leading
   '#' (comment marker when it lands at the start of a record). *)
let needs_quotes s =
  s <> ""
  && (String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
     || s.[0] = '#' || s.[0] = ' ' || s.[0] = '\t'
     || s.[String.length s - 1] = ' '
     || s.[String.length s - 1] = '\t')

let field_to_string s =
  if needs_quotes s then "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\"" else s

let save_string inst =
  let buf = Buffer.create 1024 in
  let rows =
    Instance.facts inst
    |> List.map (fun (pred, t) ->
           String.concat ","
             (field_to_string (Symbol.name pred)
             :: Array.to_list
                  (Array.map (fun v -> field_to_string (Format.asprintf "%a" Value.pp v)) t)))
    |> List.sort String.compare
  in
  List.iter
    (fun row ->
      Buffer.add_string buf row;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let save_file path inst =
  let oc = open_out_bin path in
  output_string oc (save_string inst);
  close_out oc
