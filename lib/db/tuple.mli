(** Database tuples: fixed-arity rows of {!Value.t}.

    A tuple is a bare value array — the representation is exposed so hot
    evaluation loops can index without a projection — but callers must
    treat tuples held by a {!Relation} as immutable: relations and their
    indexes share the arrays. *)

type t = Value.t array

val equal : t -> t -> bool
(** Pointwise {!Value.equal}; arrays of different lengths are unequal. *)

val compare : t -> t -> int
(** Lexicographic by {!Value.compare}, shorter tuples first — the total
    order used to sort answer sets deterministically. *)

val hash : t -> int
(** Combines {!Value.hash} over the components; agrees with {!equal}. *)

val pp : Format.formatter -> t -> unit
(** Prints [(v1,v2,...)]; the empty (boolean) tuple prints [()]. *)

val has_null : t -> bool
(** True iff some component is a labelled null — such tuples are filtered
    out of certain-answer sets (a null is not a certain constant). *)

module Table : Hashtbl.S with type key = t
(** Hash tables keyed by tuple value (not physical identity): the
    deduplication workhorse of {!Eval} and {!Par_eval} answer merging. *)
