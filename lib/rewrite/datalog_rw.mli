(** Polynomial-size Datalog rewriting (the Gottlob–Schwentick direction).

    The UCQ rewriter ({!Rewrite}) materializes every reachable rewriting as
    a separate disjunct, so families of subqueries that differ only in one
    local step multiply out: a depth-[n] concept hierarchy yields [n+1]
    disjuncts, and queries over non-FO-rewritable rule sets never terminate
    at all. This module emits the same rewriting closure as a {e Datalog
    program} instead: each distinct subquery {e pattern} becomes one shared
    intensional predicate, and each one-step rewriting becomes one rule, so
    common subqueries are represented once no matter how many rewriting
    paths reach them.

    {2 Construction}

    The rewriter first computes the {e affected positions} of the rule set
    (Calì–Gottlob–Kifer): the least set of predicate positions containing
    every existential head position and closed under frontier propagation.
    In any chase, labeled nulls can only appear at affected positions;
    every other position is constant-valued.

    A derived CQ is then {e decomposed}: its body atoms are grouped into
    components connected through {e null-capable} variables — open
    variables all of whose occurrences sit at affected positions. Variables
    occurring at an unaffected position are constant-valued in every chase
    match, so certain answers distribute over the components as a join on
    them, and no piece unifier can ever merge such a variable into an
    existential class (all occurrences of an existentially unified variable
    must unify into affected positions). Each component, with its shared
    and answer variables as the bound tuple, is memoized as a pattern: a
    fresh intensional predicate with a {e base rule} matching the component
    extensionally, explored breadth-first for further rewriting steps
    ({!Step}), each step emitting one rule from the decomposition of its
    result.

    The emitted program may be recursive: the least fixpoint of the rules
    equals the (possibly infinite) union of reachable rewritings, so
    queries with no finite UCQ rewriting — e.g. the paper's example 2 —
    are answered {e exactly} by semi-naive evaluation
    ({!Tgd_db.Datalog.saturate}) in polynomial data complexity. The
    {!result.nonrecursive} flag reports whether the intensional dependency
    graph is acyclic (a stratified, nonrecursive program in the
    Gottlob–Schwentick sense).

    {2 Governance}

    Pattern installation charges {!Tgd_exec.Budget.key_rewrite_datalog_patterns}
    and rule emission {!Tgd_exec.Budget.key_rewrite_datalog_rules}; the
    structural {!config} limits latch {!Tgd_exec.Governor} stops exactly
    like external budgets. Truncation is {e sound}: base rules are emitted
    when a pattern is installed, so an interrupted exploration only loses
    answers, it never invents them. *)

open Tgd_logic
open Tgd_exec

type outcome =
  | Complete  (** the exploration reached a fixpoint; the program is exact *)
  | Truncated of Governor.diagnostics
      (** a budget, deadline or structural limit stopped the exploration;
          the program is a sound under-approximation *)

type stats = {
  patterns : int;  (** intensional patterns installed *)
  rules : int;  (** rules emitted (base + step + goal) *)
  base_rules : int;  (** extensional base rules among them *)
  explored : int;  (** patterns whose step relation was expanded *)
  affected : int;  (** affected positions of the normalized rule set *)
  oversize_dropped : int;
      (** derived CQs dropped for exceeding [max_body_atoms]; non-zero
          forces a [Truncated] outcome *)
}

type result = {
  program : Program.t;
      (** the emitted Datalog program: existential-free TGDs over the input
          signature plus fresh intensional predicates *)
  goal : Symbol.t;  (** the goal predicate holding the query's answers *)
  arity : int;  (** arity of the goal predicate (the query's arity) *)
  nonrecursive : bool;
      (** whether the intensional dependency graph is acyclic *)
  outcome : outcome;
  stats : stats;
}

type config = {
  max_patterns : int;  (** structural cap on installed patterns *)
  max_body_atoms : int;  (** derived CQs above this size are dropped *)
}

val default_config : config
(** [{ max_patterns = 50_000; max_body_atoms = 64 }]. *)

val rewrite : ?config:config -> ?gov:Governor.t -> Program.t -> Cq.t -> result
(** [rewrite program q] compiles the certain-answer problem for [q] under
    [program] into a Datalog program: for every instance [I], the goal
    relation of the saturated program over [I] equals the certain answers
    of [q] — exactly when the outcome is [Complete], as a sound subset when
    [Truncated]. The input program is single-head normalized internally;
    [q] may mention predicates outside the program's signature. *)

val goal_query : result -> Cq.t
(** The trivial query [goal(x1, ..., xn)] reading the goal relation of a
    saturated instance back out through {!Tgd_db.Eval.cq} — deduplicated,
    sorted, boolean-aware. *)

val pp : Format.formatter -> result -> unit
(** Prints the goal predicate and the emitted rules. *)
