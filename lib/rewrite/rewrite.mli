(** UCQ rewriting: compute a first-order (UCQ) rewriting of a conjunctive
    query with respect to a set of TGDs, in the style of PerfectRef / PURE.

    The engine explores the rewriting space breadth-first:
    - {b rewriting steps} replace a piece of a CQ by a rule body through a
      most general piece unifier ({!Piece}), and
    - {b factorization steps} unify two unifiable body atoms of a CQ (the
      resulting CQ is a specialisation, hence sound, and enables piece
      unifiers that need merged atoms — in particular across the auxiliary
      predicates introduced by single-head normalization).

    Generated CQs are kept modulo containment: a new CQ subsumed by a kept
    one is dropped, and kept CQs subsumed by a new more general one are
    retired. On FO-rewritable inputs the exploration reaches a fixpoint and
    the result is a sound and complete UCQ rewriting; otherwise the run is
    stopped — by the config's structural limits, or by the budget, deadline
    or cancellation of a supplied {!Tgd_exec.Governor} — and the result is
    sound but possibly incomplete. Truncation is reported as typed
    diagnostics: the stop reason plus the run's counters, including the
    kept/retired disjunct split at the moment the exploration stopped. *)

open Tgd_logic

type outcome =
  | Complete  (** fixpoint reached: the UCQ is a full rewriting *)
  | Truncated of Tgd_exec.Governor.diagnostics
      (** which budget stopped the exploration, and how far it got
          (see [rewrite.kept] / [rewrite.retired] / [rewrite.minimized]
          counters) *)

type stats = {
  generated : int;  (** candidate CQs produced *)
  explored : int;  (** CQs popped from the frontier *)
  kept : int;  (** disjuncts in the final UCQ *)
  max_depth : int;  (** deepest rewriting step applied *)
  containment_checks : int;  (** containment checks attempted during this run *)
  containment_pruned : int;  (** of those, decided by the fingerprint pre-filter alone *)
  hom_searches : int;  (** full homomorphism searches actually run *)
}

type result = {
  ucq : Cq.ucq;
  outcome : outcome;
  stats : stats;
}

type config = {
  max_cqs : int;  (** budget on generated CQs (default 20_000) *)
  max_depth : int;  (** budget on rewriting depth (default 1_000) *)
  max_body_atoms : int;  (** drop candidates with larger bodies (default 64) *)
  prune_subsumed : bool;  (** containment-based pruning (default true) *)
  domains : int option;
      (** worker domains for the final UCQ minimization; [None] (default)
          resolves via {!Tgd_logic.Parallel.domain_count} (respecting the
          [TGDLIB_DOMAINS] environment variable). The result is independent
          of the domain count. *)
}

val default_config : config

val ucq : ?config:config -> ?gov:Tgd_exec.Governor.t -> Program.t -> Cq.t -> result
(** Rewrite a CQ. Multi-head rules are single-head-normalized first;
    disjuncts mentioning auxiliary predicates are removed from the final
    UCQ (they cannot match the extensional database). The input CQ is always
    a disjunct of the result.

    A supplied governor is polled at the expansion-loop head and charged
    with [rewrite.cqs] / [rewrite.expansions] / [rewrite.depth] /
    [containment.checks]; its deadline and cancellation apply. Without one,
    only the config's structural limits govern the run (as before), and
    truncation diagnostics come from an internal unlimited governor. *)

val ucq_of_union : ?config:config -> ?gov:Tgd_exec.Governor.t -> Program.t -> Cq.ucq -> result
(** Rewrite every disjunct and union the results (Definition 1 speaks of
    UCQs; a UCQ rewriting is the union of the per-CQ rewritings). The
    containment-counter stats are bracketed around the whole union — the
    final cross-disjunct minimization is attributed to this run, and the
    numbers are deltas, so consecutive invocations in one process never
    accumulate stale counts. *)

