(** One-step rewriting operations shared by the UCQ rewriter ({!Rewrite})
    and the Datalog rewriter ({!Datalog_rw}).

    Both rewriters explore the same step relation — piece-unifier rewriting
    steps plus factorizations — and differ only in what they do with each
    derived CQ: the UCQ rewriter keeps it as a disjunct, the Datalog
    rewriter decomposes it into shared intensional patterns. *)

open Tgd_logic

val factorizations : Cq.t -> Cq.t list
(** Factorizations of a CQ: for every unifiable pair of same-predicate body
    atoms, the specialisation that merges them. The merged body may contain
    duplicate atoms; callers canonicalize ({!Cq.canonical}) to dedup. *)

val index_rules : Program.t -> Tgd.t list Symbol.Table.t
(** Rules indexed by head predicate: a rule is only relevant to a CQ whose
    body mentions that predicate. Raises [Invalid_argument] unless the
    program is single-head normalized. *)

val rewrite_steps : Tgd.t list Symbol.Table.t -> Cq.t -> Cq.t list
(** Every one-step piece rewriting of the query with a relevant rule from
    the index ({!Piece.all} / {!Piece.apply}). *)
