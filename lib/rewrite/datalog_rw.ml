open Tgd_logic
open Tgd_exec

type outcome =
  | Complete
  | Truncated of Governor.diagnostics

type stats = {
  patterns : int;
  rules : int;
  base_rules : int;
  explored : int;
  affected : int;
  oversize_dropped : int;
}

type result = {
  program : Program.t;
  goal : Symbol.t;
  arity : int;
  nonrecursive : bool;
  outcome : outcome;
  stats : stats;
}

type config = {
  max_patterns : int;
  max_body_atoms : int;
}

let default_config = { max_patterns = 50_000; max_body_atoms = 64 }

let key_body_atoms = "rewrite.datalog.body_atoms"

(* Predicate positions, 0-based. *)
module Pos = struct
  type t = Symbol.t * int

  let compare (p, i) (q, j) =
    match Symbol.compare p q with 0 -> Int.compare i j | c -> c
end

module Pos_set = Set.Make (Pos)

(* The affected positions of a rule set (Cali–Gottlob–Kifer): the least set
   containing every existential head position, closed under propagation — a
   frontier variable whose body occurrences are all affected exports its
   head positions. In any chase, only affected positions can hold labeled
   nulls; every other position is constant-valued. *)
let affected_positions rules =
  let head_positions keep acc (r : Tgd.t) =
    List.fold_left
      (fun acc (h : Atom.t) ->
        let acc = ref acc in
        Array.iteri
          (fun i t ->
            match t with
            | Term.Var v when keep r v -> acc := Pos_set.add (h.Atom.pred, i) !acc
            | _ -> ())
          h.Atom.args;
        !acc)
      acc r.Tgd.head
  in
  let base =
    List.fold_left
      (head_positions (fun r v -> Symbol.Set.mem v (Tgd.existential_head_vars r)))
      Pos_set.empty rules
  in
  let body_all_affected aff (r : Tgd.t) v =
    List.for_all
      (fun (a : Atom.t) ->
        let ok = ref true in
        Array.iteri
          (fun i t ->
            match t with
            | Term.Var u when Symbol.equal u v ->
              if not (Pos_set.mem (a.Atom.pred, i) aff) then ok := false
            | _ -> ())
          a.Atom.args;
        !ok)
      r.Tgd.body
  in
  let rec fix aff =
    let aff' =
      List.fold_left
        (head_positions (fun r v -> Symbol.Set.mem v (Tgd.frontier r) && body_all_affected aff r v))
        aff rules
    in
    if Pos_set.cardinal aff' = Pos_set.cardinal aff then aff else fix aff'
  in
  fix base

(* Split a CQ body into components connected through null-capable variables:
   open variables all of whose occurrences sit at affected positions (the
   only variables a chase match may send to a labeled null). Variables
   occurring at some unaffected position are constant-valued in every chase
   match, so certain answers distribute over the components as a join on
   them — the decomposition that keeps the pattern space polynomial.

   Returns each component's atoms together with its bound variables: the
   component variables that are answer variables of the parent or shared
   with a sibling component, sorted for a deterministic intensional
   signature. *)
let decompose ~affected ~answer_vars (body : Atom.t list) =
  let atoms = Array.of_list body in
  let n = Array.length atoms in
  let all_affected : (Symbol.t, bool) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun (a : Atom.t) ->
      Array.iteri
        (fun i t ->
          match t with
          | Term.Var v ->
            let here = Pos_set.mem (a.Atom.pred, i) affected in
            let prev = Option.value ~default:true (Hashtbl.find_opt all_affected v) in
            Hashtbl.replace all_affected v (prev && here)
          | Term.Const _ -> ())
        a.Atom.args)
    atoms;
  let null_capable v =
    (not (Symbol.Set.mem v answer_vars))
    && Option.value ~default:false (Hashtbl.find_opt all_affected v)
  in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  let anchor : (Symbol.t, int) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun i (a : Atom.t) ->
      Symbol.Set.iter
        (fun v ->
          if null_capable v then
            match Hashtbl.find_opt anchor v with
            | Some j -> union i j
            | None -> Hashtbl.add anchor v i)
        (Atom.vars a))
    atoms;
  let groups : (int, Atom.t list) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  for i = n - 1 downto 0 do
    let r = find i in
    (match Hashtbl.find_opt groups r with
    | Some g -> Hashtbl.replace groups r (atoms.(i) :: g)
    | None ->
      Hashtbl.add groups r [ atoms.(i) ];
      order := r :: !order)
  done;
  let comps =
    List.map
      (fun r ->
        let atoms = Hashtbl.find groups r in
        let vars =
          List.fold_left (fun s a -> Symbol.Set.union s (Atom.vars a)) Symbol.Set.empty atoms
        in
        (atoms, vars))
      (List.rev !order)
  in
  let occurrences : (Symbol.t, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (_, vars) ->
      Symbol.Set.iter
        (fun v ->
          Hashtbl.replace occurrences v
            (1 + Option.value ~default:0 (Hashtbl.find_opt occurrences v)))
        vars)
    comps;
  List.map
    (fun (atoms, vars) ->
      let bound =
        Symbol.Set.filter
          (fun v ->
            Symbol.Set.mem v answer_vars
            || Option.value ~default:0 (Hashtbl.find_opt occurrences v) > 1)
          vars
      in
      (atoms, Symbol.Set.elements bound))
    comps

let rewrite ?(config = default_config) ?gov program0 q0 =
  let gov = match gov with Some g -> g | None -> Governor.unlimited () in
  let tele = Governor.telemetry gov in
  let program = Program.single_head_normalize program0 in
  let aux_preds =
    let original =
      List.fold_left
        (fun acc (p, _) -> Symbol.Set.add p acc)
        Symbol.Set.empty (Program.predicates program0)
    in
    List.fold_left
      (fun acc (p, _) -> if Symbol.Set.mem p original then acc else Symbol.Set.add p acc)
      Symbol.Set.empty (Program.predicates program)
  in
  let rule_index = Step.index_rules program in
  let affected = affected_positions (Program.tgds program) in
  (* Canonical pattern CQ (answer = bound variables) -> intensional symbol. *)
  let table : (Cq.t, Symbol.t) Hashtbl.t = Hashtbl.create 64 in
  let queue : (Symbol.t * Cq.t) Queue.t = Queue.create () in
  let emitted = ref [] in
  let n_rules = ref 0 in
  let n_base = ref 0 in
  let n_patterns = ref 0 in
  let explored = ref 0 in
  let dropped = ref 0 in
  let mentions_aux body =
    List.exists (fun (a : Atom.t) -> Symbol.Set.mem a.Atom.pred aux_preds) body
  in
  let emit_rule ~name ~body ~head =
    (* A step that reproduces its own pattern yields the tautology
       [p(x) :- p(x)]; skip rules whose head recurs in the body. *)
    if not (List.exists (Atom.equal head) body) then begin
      emitted := Tgd.make ~name ~body ~head:[ head ] :: !emitted;
      incr n_rules;
      Governor.charge gov Budget.key_rewrite_datalog_rules
    end
  in
  let install (sub : Cq.t) =
    let canon = Cq.canonical sub in
    match Hashtbl.find_opt table canon with
    | Some sym -> sym
    | None ->
      let sym = Symbol.fresh "__dlr" in
      Hashtbl.add table canon sym;
      incr n_patterns;
      Governor.charge gov Budget.key_rewrite_datalog_patterns;
      (* The extensional match of the pattern itself. Patterns over auxiliary
         predicates (single-head normalization artifacts) can never match
         data; their base rule is omitted. *)
      if not (mentions_aux canon.Cq.body) then begin
        incr n_base;
        emit_rule
          ~name:(Printf.sprintf "%s:base" (Symbol.name sym))
          ~body:canon.Cq.body
          ~head:(Atom.make sym canon.Cq.answer)
      end;
      Queue.add (sym, canon) queue;
      sym
  in
  (* Decompose a derived CQ into component patterns and emit
     [head_sym(answer) :- idb_C1(bound1), ..., idb_Cm(boundm)]. *)
  let emit_for ~name ~head_sym (c : Cq.t) =
    if List.length c.Cq.body > config.max_body_atoms then incr dropped
    else begin
      let comps = decompose ~affected ~answer_vars:(Cq.answer_vars c) c.Cq.body in
      let body =
        List.map
          (fun (atoms, bound) ->
            let answer = List.map (fun v -> Term.Var v) bound in
            let sym = install (Cq.make ?name:None ~answer ~body:atoms) in
            Atom.make sym answer)
          comps
      in
      emit_rule ~name ~body ~head:(Atom.make head_sym c.Cq.answer)
    end
  in
  let q0 = Cq.canonical q0 in
  let goal = Symbol.fresh "__dlr_goal" in
  emit_for ~name:(Printf.sprintf "%s:goal" (Symbol.name goal)) ~head_sym:goal q0;
  while Governor.live gov && not (Queue.is_empty queue) do
    if !n_patterns >= config.max_patterns then
      Governor.stop gov
        (Governor.Limit
           { counter = Budget.key_rewrite_datalog_patterns; limit = config.max_patterns });
    Telemetry.gauge tele "rewrite.datalog.queue" (Queue.length queue);
    if Governor.live gov then begin
      let sym, cq = Queue.pop queue in
      incr explored;
      let seen : (Cq.t, unit) Hashtbl.t = Hashtbl.create 16 in
      let consider c =
        let c = Cq.canonical c in
        if not (Hashtbl.mem seen c) then begin
          Hashtbl.add seen c ();
          emit_for ~name:(Printf.sprintf "%s:step" (Symbol.name sym)) ~head_sym:sym c
        end
      in
      List.iter consider (Step.rewrite_steps rule_index cq);
      List.iter consider (Step.factorizations cq)
    end
  done;
  (* An oversize derived CQ was dropped rather than decomposed: the program
     is still sound but may be incomplete — report it as a truncation so no
     caller mistakes the output for an exact rewriting. *)
  if !dropped > 0 && Governor.live gov then
    Governor.stop gov (Governor.Limit { counter = key_body_atoms; limit = config.max_body_atoms });
  let tgds = List.rev !emitted in
  let program = Program.make_exn ~name:"datalog-rewriting" tgds in
  (* Cycle check on the intensional dependency graph. *)
  let idb = Symbol.Table.create 64 in
  Hashtbl.iter (fun _ sym -> Symbol.Table.replace idb sym ()) table;
  Symbol.Table.replace idb goal ();
  let deps = Symbol.Table.create 64 in
  List.iter
    (fun (r : Tgd.t) ->
      let h = (List.hd r.Tgd.head).Atom.pred in
      let ds =
        List.fold_left
          (fun s (a : Atom.t) ->
            if Symbol.Table.mem idb a.Atom.pred then Symbol.Set.add a.Atom.pred s else s)
          Symbol.Set.empty r.Tgd.body
      in
      let prev = Option.value ~default:Symbol.Set.empty (Symbol.Table.find_opt deps h) in
      Symbol.Table.replace deps h (Symbol.Set.union prev ds))
    tgds;
  let state = Symbol.Table.create 64 in
  let rec has_cycle sym =
    match Symbol.Table.find_opt state sym with
    | Some 1 -> true
    | Some _ -> false
    | None ->
      Symbol.Table.replace state sym 1;
      let ds = Option.value ~default:Symbol.Set.empty (Symbol.Table.find_opt deps sym) in
      let cyclic = Symbol.Set.exists has_cycle ds in
      Symbol.Table.replace state sym 2;
      cyclic
  in
  let nonrecursive = not (Symbol.Table.fold (fun sym () acc -> acc || has_cycle sym) idb false) in
  Telemetry.set_counter tele "rewrite.datalog.patterns" !n_patterns;
  Telemetry.set_counter tele "rewrite.datalog.rules" !n_rules;
  let outcome =
    match Governor.stopped gov with
    | None -> Complete
    | Some _ -> Truncated (Option.get (Governor.diagnostics gov))
  in
  {
    program;
    goal;
    arity = Cq.arity q0;
    nonrecursive;
    outcome;
    stats =
      {
        patterns = !n_patterns;
        rules = !n_rules;
        base_rules = !n_base;
        explored = !explored;
        affected = Pos_set.cardinal affected;
        oversize_dropped = !dropped;
      };
  }

let goal_query r =
  let answer = List.init r.arity (fun _ -> Term.Var (Symbol.fresh "X")) in
  Cq.make ~name:"goal" ~answer ~body:[ Atom.make r.goal answer ]

let pp ppf r =
  Format.fprintf ppf "@[<v>goal: %a/%d%s@,%a@]" Symbol.pp r.goal r.arity
    (if r.nonrecursive then " (nonrecursive)" else " (recursive)")
    Program.pp r.program
