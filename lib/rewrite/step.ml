open Tgd_logic

let factorizations (q : Cq.t) =
  let atoms = Array.of_list q.Cq.body in
  let n = Array.length atoms in
  let acc = ref [] in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      if Symbol.equal atoms.(i).Atom.pred atoms.(j).Atom.pred then
        match Unify.mgu atoms.(i) atoms.(j) with
        | None -> ()
        | Some s ->
          (* [Cq.apply] may leave duplicate atoms in the merged body; the
             canonicalization every candidate goes through dedups them. *)
          acc := Cq.apply s q :: !acc
    done
  done;
  !acc

let index_rules program =
  let index = Symbol.Table.create 16 in
  List.iter
    (fun (r : Tgd.t) ->
      match r.Tgd.head with
      | [ h ] ->
        let existing = Option.value ~default:[] (Symbol.Table.find_opt index h.Atom.pred) in
        Symbol.Table.replace index h.Atom.pred (r :: existing)
      | _ -> invalid_arg "Rewrite: program must be single-head normalized")
    (Program.tgds program);
  index

let rewrite_steps index (q : Cq.t) =
  let preds =
    List.fold_left (fun acc (a : Atom.t) -> Symbol.Set.add a.Atom.pred acc) Symbol.Set.empty q.Cq.body
  in
  Symbol.Set.fold
    (fun pred acc ->
      match Symbol.Table.find_opt index pred with
      | None -> acc
      | Some rules ->
        List.fold_left
          (fun acc rule -> List.rev_append (List.map (fun pu -> Piece.apply q pu) (Piece.all q rule)) acc)
          acc rules)
    preds []
