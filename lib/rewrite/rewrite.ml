open Tgd_logic
open Tgd_exec

type outcome =
  | Complete
  | Truncated of Governor.diagnostics

type stats = {
  generated : int;
  explored : int;
  kept : int;
  max_depth : int;
  containment_checks : int;
  containment_pruned : int;
  hom_searches : int;
}

type result = {
  ucq : Cq.ucq;
  outcome : outcome;
  stats : stats;
}

type config = {
  max_cqs : int;
  max_depth : int;
  max_body_atoms : int;
  prune_subsumed : bool;
  domains : int option;
}

let default_config =
  { max_cqs = 20_000; max_depth = 1_000; max_body_atoms = 64; prune_subsumed = true; domains = None }

(* A kept disjunct, carrying its precomputed containment state (fingerprint
   + frozen homomorphism target, built once); [alive] is cleared when a more
   general CQ retires it. *)
type entry = {
  cq : Cq.t;
  pre : Containment.pre;
  mutable alive : bool;
}

(* One-step operations (piece rewriting steps, factorizations, the
   head-predicate rule index) live in {!Step}, shared with the Datalog
   rewriter. *)
let factorizations = Step.factorizations
let index_rules = Step.index_rules
let rewrite_steps = Step.rewrite_steps

let mentions_aux_pred aux_preds (q : Cq.t) =
  List.exists (fun (a : Atom.t) -> Symbol.Set.mem a.Atom.pred aux_preds) q.Cq.body

(* The kept set, bucketed by (answer arity, predicate-fingerprint word) so a
   candidate's subsumption scans only visit buckets whose fingerprints pass
   the subset pre-filter — impossible subsumers are never touched. *)
module Kept = struct
  (* Buckets are growable arrays scanned newest-first: a candidate generated
     at depth d+1 is most often subsumed by a recently added sibling, so the
     scan usually hits within the first few probes. *)
  type bucket = {
    mutable entries : entry array;
    mutable len : int;
  }

  type t = {
    buckets : ((int * int), bucket) Hashtbl.t;
    mutable all : entry list;  (* insertion order, newest first *)
  }

  let create () = { buckets = Hashtbl.create 64; all = [] }

  let key e = (Cq.arity e.cq, Fingerprint.pred_bits (Containment.fingerprint e.pre))

  let bucket_push b e =
    if b.len = Array.length b.entries then begin
      let bigger = Array.make (2 * b.len) e in
      Array.blit b.entries 0 bigger 0 b.len;
      b.entries <- bigger
    end;
    b.entries.(b.len) <- e;
    b.len <- b.len + 1

  let add t e =
    (match Hashtbl.find_opt t.buckets (key e) with
    | Some b -> bucket_push b e
    | None -> Hashtbl.add t.buckets (key e) { entries = Array.make 8 e; len = 1 });
    t.all <- e :: t.all

  exception Hit

  (* Does some live entry [e] with preds(e) ⊆ preds(candidate) satisfy [p]?
     (Necessary bucket condition for [candidate <= e].) *)
  let exists_possible_subsumer t ~arity ~bits p =
    try
      Hashtbl.iter
        (fun (ar, ebits) b ->
          if ar = arity && Fingerprint.subset_bits ebits bits then
            for i = b.len - 1 downto 0 do
              let e = b.entries.(i) in
              if e.alive && p e then raise Hit
            done)
        t.buckets;
      false
    with Hit -> true

  (* Visit every live entry [e] with preds(candidate) ⊆ preds(e).
     (Necessary bucket condition for [e <= candidate].) *)
  let iter_possible_subsumees t ~arity ~bits f =
    Hashtbl.iter
      (fun (ar, ebits) b ->
        if ar = arity && Fingerprint.subset_bits bits ebits then
          for i = b.len - 1 downto 0 do
            let e = b.entries.(i) in
            if e.alive then f e
          done)
      t.buckets

  (* Live CQs in insertion order. *)
  let survivors t = List.rev_map (fun e -> e.cq) (List.filter (fun e -> e.alive) t.all)

  let counts t =
    List.fold_left
      (fun (live, retired) e -> if e.alive then (live + 1, retired) else (live, retired + 1))
      (0, 0) t.all
end

let ucq ?(config = default_config) ?gov program0 q0 =
  let gov = match gov with Some g -> g | None -> Governor.unlimited () in
  let tele = Governor.telemetry gov in
  let program = Program.single_head_normalize program0 in
  let aux_preds =
    let original =
      List.fold_left
        (fun acc (p, _) -> Symbol.Set.add p acc)
        Symbol.Set.empty (Program.predicates program0)
    in
    List.fold_left
      (fun acc (p, _) -> if Symbol.Set.mem p original then acc else Symbol.Set.add p acc)
      Symbol.Set.empty (Program.predicates program)
  in
  let rule_index = index_rules program in
  let q0 = Cq.canonical q0 in
  let c0 = Containment.stats () in
  let generated = ref 1 in
  let explored = ref 0 in
  let max_depth_seen = ref 0 in
  let kept = Kept.create () in
  let seen : (Cq.t, unit) Hashtbl.t = Hashtbl.create 256 in
  let queue : (int * entry) Queue.t = Queue.create () in
  (* Mirror the process-wide containment counters into this run's governed
     budget as a delta, so [containment.checks] limits apply per run. *)
  let synced_checks = ref c0.Containment.checks in
  let sync_containment () =
    let checks = (Containment.stats ()).Containment.checks in
    if checks > !synced_checks then begin
      Governor.charge ~n:(checks - !synced_checks) gov Budget.key_containment_checks;
      synced_checks := checks
    end
  in
  (* Install a candidate: dedup by canonical form, prune by containment. *)
  let add depth c =
    let c = Cq.canonical c in
    if List.length c.Cq.body <= config.max_body_atoms && not (Hashtbl.mem seen c) then begin
      Hashtbl.add seen c ();
      incr generated;
      Governor.charge gov Budget.key_rewrite_cqs;
      let pre = Containment.precompute c in
      let arity = Cq.arity c in
      let bits = Fingerprint.pred_bits (Containment.fingerprint pre) in
      (* [c] is dropped if a kept disjunct subsumes it — unless they are
         equivalent and [c] has a strictly smaller body, in which case [c]
         replaces the bulkier form (e.g. a factorized self-join). *)
      let subsumed =
        config.prune_subsumed
        && Kept.exists_possible_subsumer kept ~arity ~bits (fun e ->
               Containment.contained_pre pre e.pre
               && not
                    (List.length c.Cq.body < List.length e.cq.Cq.body
                    && Containment.contained_pre e.pre pre))
      in
      if not subsumed then begin
        if config.prune_subsumed then
          Kept.iter_possible_subsumees kept ~arity ~bits (fun e ->
              if Containment.contained_pre e.pre pre then e.alive <- false);
        let entry = { cq = c; pre; alive = true } in
        Kept.add kept entry;
        Queue.add (depth, entry) queue
      end
    end
  in
  add 0 q0;
  (* The expansion loop is governed at its head: the config's structural
     limits latch a stop reason into the governor exactly like an external
     budget, so truncation is reported uniformly. Because the queue is
     breadth-first (depths are non-decreasing), halting at the first
     over-deep entry expands the same frontier the old drain-but-don't-
     expand loop did. *)
  while Governor.live gov && not (Queue.is_empty queue) do
    if !generated >= config.max_cqs then
      Governor.stop gov
        (Governor.Limit { counter = Budget.key_rewrite_cqs; limit = config.max_cqs });
    sync_containment ();
    Telemetry.gauge tele "rewrite.queue" (Queue.length queue);
    if Governor.live gov then begin
      let depth, entry = Queue.pop queue in
      Governor.charge gov Budget.key_rewrite_expansions;
      (* A retired disjunct's expansions are covered by its subsumer. *)
      if entry.alive then begin
        incr explored;
        if depth > !max_depth_seen then max_depth_seen := depth;
        Governor.gauge gov Budget.key_rewrite_depth depth;
        if depth >= config.max_depth then
          Governor.stop gov
            (Governor.Limit { counter = Budget.key_rewrite_depth; limit = config.max_depth })
        else begin
          List.iter (add (depth + 1)) (rewrite_steps rule_index entry.cq);
          List.iter (add (depth + 1)) (factorizations entry.cq)
        end
      end
    end
  done;
  let final =
    Kept.survivors kept
    |> List.filter (fun c -> not (mentions_aux_pred aux_preds c))
    |> Containment.minimize_ucq ?domains:config.domains
  in
  sync_containment ();
  let c1 = Containment.stats () in
  Telemetry.set_counter tele "rewrite.generated" !generated;
  Telemetry.set_counter tele "rewrite.explored" !explored;
  let outcome =
    match Governor.stopped gov with
    | None -> Complete
    | Some _ ->
      (* At truncation, record how much of the rewriting survived: the
         kept/retired split of the subsumption set plus the minimized output
         size, so the diagnostics say what the partial UCQ looks like. *)
      let live, retired = Kept.counts kept in
      Telemetry.set_counter tele "rewrite.kept" live;
      Telemetry.set_counter tele "rewrite.retired" retired;
      Telemetry.set_counter tele "rewrite.minimized" (List.length final);
      Truncated (Option.get (Governor.diagnostics gov))
  in
  {
    ucq = final;
    outcome;
    stats =
      {
        generated = !generated;
        explored = !explored;
        kept = List.length final;
        max_depth = !max_depth_seen;
        containment_checks = c1.Containment.checks - c0.Containment.checks;
        containment_pruned = c1.Containment.pruned - c0.Containment.pruned;
        hom_searches = c1.Containment.hom_searches - c0.Containment.hom_searches;
      };
  }

let ucq_of_union ?config ?gov program qs =
  (* Bracket the containment counters around the WHOLE union, not per
     disjunct: the final cross-disjunct [minimize_ucq] below also burns
     containment checks, and summing the per-result deltas used to lose
     them — consecutive runs then reported stale, non-reproducible counts.
     The per-run delta also keeps telemetry independent of whatever the
     process-wide counters accumulated before this invocation. *)
  let c0 = Containment.stats () in
  let results = List.map (ucq ?config ?gov program) qs in
  let domains = Option.bind config (fun c -> c.domains) in
  let combined = Containment.minimize_ucq ?domains (List.concat_map (fun r -> r.ucq) results) in
  let c1 = Containment.stats () in
  let outcome =
    List.fold_left
      (fun acc r -> match acc with Truncated _ -> acc | Complete -> r.outcome)
      Complete results
  in
  (* [kept] is a property of the combined union: compute it once, not per
     folded result. *)
  let kept = List.length combined in
  let stats =
    List.fold_left
      (fun acc r ->
        {
          acc with
          generated = acc.generated + r.stats.generated;
          explored = acc.explored + r.stats.explored;
          max_depth = max acc.max_depth r.stats.max_depth;
        })
      {
        generated = 0;
        explored = 0;
        kept;
        max_depth = 0;
        containment_checks = c1.Containment.checks - c0.Containment.checks;
        containment_pruned = c1.Containment.pruned - c0.Containment.pruned;
        hom_searches = c1.Containment.hom_searches - c0.Containment.hom_searches;
      }
      results
  in
  { ucq = combined; outcome; stats }
