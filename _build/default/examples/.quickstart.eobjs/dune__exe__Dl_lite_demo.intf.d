examples/dl_lite_demo.mli:
