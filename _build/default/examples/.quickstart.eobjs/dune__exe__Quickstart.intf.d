examples/quickstart.mli:
