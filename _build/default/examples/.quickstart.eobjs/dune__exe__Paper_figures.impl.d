examples/paper_figures.ml: Classifier Format List P_node_graph Paper_examples Position Position_graph Printf Swr Tgd_core Tgd_logic Tgd_rewrite Wr
