examples/quickstart.ml: Cq Fmt Format List Tgd_chase Tgd_core Tgd_db Tgd_logic Tgd_parser Tgd_rewrite
