examples/obda_pipeline.mli:
