examples/university_demo.mli:
