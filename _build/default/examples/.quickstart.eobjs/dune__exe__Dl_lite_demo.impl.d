examples/dl_lite_demo.ml: Format List Printf Tgd_core Tgd_gen Tgd_logic Tgd_parser Tgd_rewrite
