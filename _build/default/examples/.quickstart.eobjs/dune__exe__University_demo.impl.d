examples/university_demo.ml: Array Eval Format Instance List Sys Tgd_chase Tgd_core Tgd_db Tgd_gen Tgd_logic Tgd_rewrite Tuple Unix
