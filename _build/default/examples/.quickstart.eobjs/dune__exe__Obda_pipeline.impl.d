examples/obda_pipeline.ml: Approximation Atom Constraints Cq Format List Mapping Obda_system Program String Term Tgd Tgd_core Tgd_db Tgd_gen Tgd_logic Tgd_obda
