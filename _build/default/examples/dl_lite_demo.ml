(* DL-Lite_R to TGDs: the paper's motivating comparison point. Every
   translated TBox is a set of linear simple TGDs, hence SWR (Section 5's
   subsumption) — demonstrated here on a hand-written TBox and on random
   TBoxes.

   Run with: dune exec examples/dl_lite_demo.exe *)

open Tgd_gen.Dl_lite

let () =
  (* A small medical-records TBox:
     doctor [= exists treats          (every doctor treats someone)
     exists treats- [= patient        (whoever is treated is a patient)
     patient [= person
     doctor [= person
     surgeon [= doctor
     treats [= cares_for              (role hierarchy)
     exists cares_for [= caregiver *)
  let tbox =
    [
      Concept_incl (Atomic "doctor", Exists (Role "treats"));
      Concept_incl (Exists (Inv "treats"), Atomic "patient");
      Concept_incl (Atomic "patient", Atomic "person");
      Concept_incl (Atomic "doctor", Atomic "person");
      Concept_incl (Atomic "surgeon", Atomic "doctor");
      Role_incl (Role "treats", Role "cares_for");
      Concept_incl (Exists (Role "cares_for"), Atomic "caregiver");
    ]
  in
  Format.printf "== TBox ==@.";
  List.iter (fun ax -> Format.printf "  %a@." pp_axiom ax) tbox;
  let program = to_program ~name:"medical" tbox in
  Format.printf "@.== translated TGDs ==@.%s@." (Tgd_parser.Printer.program_to_string program);

  let report = Tgd_core.Classifier.classify program in
  Format.printf "linear=%b simple=%b swr=%b wr=%b@." report.Tgd_core.Classifier.linear
    report.Tgd_core.Classifier.simple report.Tgd_core.Classifier.swr
    report.Tgd_core.Classifier.wr;

  (* Query: which persons are cared for by someone? *)
  let v = Tgd_logic.Term.var in
  let q =
    Tgd_logic.Cq.make ~name:"q" ~answer:[ v "X" ]
      ~body:
        [
          Tgd_logic.Atom.of_strings "person" [ v "X" ];
          Tgd_logic.Atom.of_strings "cares_for" [ v "Y"; v "X" ];
        ]
  in
  let r = Tgd_rewrite.Rewrite.ucq program q in
  Format.printf "@.== rewriting of %s ==@.%a@." q.Tgd_logic.Cq.name Tgd_logic.Cq.pp_ucq
    r.Tgd_rewrite.Rewrite.ucq;

  (* Random TBoxes: every translation must be linear, simple and SWR. *)
  let rng = Tgd_gen.Rng.create 7 in
  let trials = 50 in
  let ok = ref 0 in
  for i = 1 to trials do
    let tbox = random_tbox rng ~n_concepts:6 ~n_roles:4 ~n_axioms:12 in
    let p = to_program ~name:(Printf.sprintf "rand%d" i) tbox in
    let rep = Tgd_core.Classifier.classify p in
    if rep.Tgd_core.Classifier.linear && rep.Tgd_core.Classifier.simple && rep.Tgd_core.Classifier.swr
    then incr ok
  done;
  Format.printf "@.random TBoxes translated to linear+simple+SWR TGDs: %d/%d@." !ok trials
