(* The full OBDA pipeline the paper's introduction describes: relational
   sources, mapping assertions relating them to the ontology vocabulary,
   the TGD ontology on top, negative constraints for consistency — and the
   paper's Section-7 approximation techniques when the TGDs fall outside
   the tractable classes.

   Run with: dune exec examples/obda_pipeline.exe *)

open Tgd_logic
open Tgd_obda

let v = Term.var
let c = Term.const
let atom p args = Atom.of_strings p args

let () =
  (* --- 1. The sources: a registrar database with its own schema. ------ *)
  let source =
    Tgd_db.Instance.of_atoms
      [
        atom "emp_record" [ c "ada"; c "cs"; c "prof" ];
        atom "emp_record" [ c "bob"; c "math"; c "lect" ];
        atom "enrollment" [ c "sam"; c "db101" ];
        atom "enrollment" [ c "lee"; c "ml202" ];
        atom "dept_record" [ c "cs"; c "uni_edi" ];
        atom "dept_record" [ c "math"; c "uni_edi" ];
      ]
  in

  (* --- 2. Mapping assertions: source schema ~> ontology vocabulary. --- *)
  let mappings =
    [
      Mapping.make ~name:"m_prof"
        ~source:[ atom "emp_record" [ v "X"; v "D"; c "prof" ] ]
        ~target:(atom "professor" [ v "X" ]);
      Mapping.make ~name:"m_lect"
        ~source:[ atom "emp_record" [ v "X"; v "D"; c "lect" ] ]
        ~target:(atom "lecturer" [ v "X" ]);
      Mapping.make ~name:"m_works"
        ~source:[ atom "emp_record" [ v "X"; v "D"; v "R" ] ]
        ~target:(atom "works_for" [ v "X"; v "D" ]);
      Mapping.make ~name:"m_dept"
        ~source:[ atom "dept_record" [ v "D"; v "U" ] ]
        ~target:(atom "department" [ v "D" ]);
      Mapping.make ~name:"m_undergrad"
        ~source:[ atom "enrollment" [ v "S"; v "C" ] ]
        ~target:(atom "undergraduate" [ v "S" ]);
      Mapping.make ~name:"m_takes"
        ~source:[ atom "enrollment" [ v "S"; v "C" ] ]
        ~target:(atom "takes_course" [ v "S"; v "C" ]);
    ]
  in
  List.iter (fun m -> Format.printf "%a@." Mapping.pp m) mappings;

  (* --- 3. The OBDA system: ontology + mappings + constraints. --------- *)
  let disjoint =
    Constraints.make ~name:"student_faculty_disjoint"
      [ atom "student" [ v "X" ]; atom "faculty" [ v "X" ] ]
  in
  let sys =
    Obda_system.make ~ontology:Tgd_gen.University.ontology ~mappings ~constraints:[ disjoint ] ()
  in

  (* --- 4. Consistency, then virtual query answering. ------------------ *)
  let verdict = Obda_system.consistent sys ~source in
  Format.printf "@.consistency: %s@."
    (if verdict.Constraints.consistent then "consistent" else "INCONSISTENT");

  let queries =
    [
      Cq.make ~name:"persons" ~answer:[ v "X" ] ~body:[ atom "person" [ v "X" ] ];
      Cq.make ~name:"memberships" ~answer:[ v "X"; v "O" ]
        ~body:[ atom "employee" [ v "X" ]; atom "works_for" [ v "X"; v "O" ] ];
      Cq.make ~name:"some_org" ~answer:[] ~body:[ atom "organization" [ v "O" ] ];
    ]
  in
  List.iter
    (fun q ->
      let a = Obda_system.answer sys ~source q in
      let materialized, _ = Obda_system.answer_materialized sys ~source q in
      Format.printf "@.query %s: %d source disjunct(s), %d answer(s)%s@." q.Cq.name
        (List.length a.Obda_system.source_ucq)
        (List.length a.Obda_system.tuples)
        (if List.length materialized = List.length a.Obda_system.tuples then
           " (matches materialization)"
         else " (MISMATCH vs materialization)");
      List.iter (fun t -> Format.printf "  %a@." Tgd_db.Tuple.pp t) a.Obda_system.tuples;
      match a.Obda_system.sql with
      | Some sql when q.Cq.name = "persons" -> Format.printf "-- SQL over the sources:@.%s;@." sql
      | Some _ | None -> ())
    queries;

  (* --- 5. Approximation on an intractable ontology (Section 7). ------- *)
  Format.printf "@.=== approximation on Example 2 (not WR, not FO-rewritable) ===@.";
  let p2 = Tgd_core.Paper_examples.example2 in
  let inst =
    Tgd_db.Instance.of_atoms
      [ atom "t" [ c "a"; c "b" ]; atom "r" [ c "u"; c "w" ]; atom "s" [ c "k"; c "k"; c "b" ] ]
  in
  let q = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "r" [ v "X"; v "Y" ] ] in
  let subset, removed = Approximation.wr_subset p2 in
  Format.printf "WR subset keeps %d/%d rules (removed: %s)@." (Program.size subset)
    (Program.size p2)
    (String.concat ", " (List.map (fun (r : Tgd.t) -> r.Tgd.name) removed));
  let itv = Approximation.interval_answers p2 inst q in
  Format.printf "lower bound (sound): %d answer(s); upper bound (complete): %d answer(s); exact: %b@."
    (List.length itv.Approximation.lower)
    (List.length itv.Approximation.upper)
    itv.Approximation.exact
