(* Quickstart: define a tiny ontology, classify it, rewrite a query, and
   compute certain answers — the whole public API in one page.

   Run with: dune exec examples/quickstart.exe *)

open Tgd_logic

let () =
  (* 1. An ontology as text. [project(P)] says P is a project; every project
     has some member; members of projects are people. *)
  let source =
    {|
      [has_member] project(P) -> member(P, M).
      [member_person] member(P, M) -> person(M).
      [lead_member] leads(X, P), project(P) -> member(P, X).

      project(apollo).
      leads(grace, apollo).
      member(apollo, alan).

      who(X) :- person(X).
    |}
  in
  let doc =
    match Tgd_parser.Parser.parse_string ~filename:"quickstart" source with
    | Ok doc -> doc
    | Error e -> Fmt.failwith "%a" Tgd_parser.Parser.pp_error e
  in
  let program =
    match Tgd_parser.Parser.program_of_document ~name:"quickstart" doc with
    | Ok p -> p
    | Error msg -> failwith msg
  in
  let query = List.hd doc.Tgd_parser.Parser.queries in

  (* 2. Classify: which tractable classes does the ontology belong to? *)
  let report = Tgd_core.Classifier.classify program in
  Format.printf "== classification ==@.%a" Tgd_core.Classifier.pp report;
  (match Tgd_core.Classifier.fo_rewritable_witness report with
  | Some w -> Format.printf "FO-rewritable thanks to: %s@." w
  | None -> Format.printf "no FO-rewritability witness@.");

  (* 3. Rewrite the query into a UCQ, and show it as SQL. *)
  let rewriting = Tgd_rewrite.Rewrite.ucq program query in
  Format.printf "@.== UCQ rewriting of %s ==@.%a@." query.Cq.name Cq.pp_ucq
    rewriting.Tgd_rewrite.Rewrite.ucq;
  Format.printf "@.== as SQL ==@.%s;@." (Tgd_db.Sql.of_ucq rewriting.Tgd_rewrite.Rewrite.ucq);

  (* 4. Evaluate the rewriting over the plain database: certain answers
     without materialization. *)
  let db = Tgd_db.Instance.of_atoms doc.Tgd_parser.Parser.facts in
  let answers =
    Tgd_db.Eval.ucq db rewriting.Tgd_rewrite.Rewrite.ucq
    |> List.filter (fun t -> not (Tgd_db.Tuple.has_null t))
  in
  Format.printf "@.== certain answers (rewriting) ==@.";
  List.iter (fun t -> Format.printf "%a@." Tgd_db.Tuple.pp t) answers;

  (* 5. Cross-check with chase-based materialization. *)
  let via_chase = Tgd_chase.Certain.cq program db query in
  Format.printf "@.== certain answers (chase) ==@.";
  List.iter (fun t -> Format.printf "%a@." Tgd_db.Tuple.pp t) via_chase.Tgd_chase.Certain.answers;
  assert (List.for_all2 Tgd_db.Tuple.equal answers via_chase.Tgd_chase.Certain.answers);
  Format.printf "@.rewriting and chase agree.@."
