(* The end-to-end OBDA scenario (experiment E8): a LUBM-style university
   ontology over a plain relational database. Certain answers are computed
   two ways — UCQ rewriting evaluated on the raw data, and chase
   materialization — and must agree; we also time both to show where the
   rewriting approach pays off.

   Run with: dune exec examples/university_demo.exe [scale] *)

open Tgd_db

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let () =
  let scale = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 500 in
  let rng = Tgd_gen.Rng.create 2014 in
  let ontology = Tgd_gen.University.ontology in
  let data = Tgd_gen.University.generate_data rng ~scale in
  Format.printf "university ontology: %d rules; database: %d facts (scale %d)@."
    (Tgd_logic.Program.size ontology) (Instance.cardinality data) scale;

  let report = Tgd_core.Classifier.classify ontology in
  Format.printf "classification: swr=%b wr=%b sticky=%b weakly_acyclic=%b@."
    report.Tgd_core.Classifier.swr report.Tgd_core.Classifier.wr
    report.Tgd_core.Classifier.sticky report.Tgd_core.Classifier.weakly_acyclic;

  (* Chase once (shared by all queries), then evaluate each query. *)
  let (chased, t_chase) =
    time (fun () ->
        let copy = Instance.copy data in
        let stats = Tgd_chase.Chase.run ontology copy in
        (copy, stats))
  in
  let chased_inst, chase_stats = chased in
  Format.printf "@.chase: +%d facts, %d nulls, %d rounds in %.3fs@."
    chase_stats.Tgd_chase.Chase.new_facts chase_stats.Tgd_chase.Chase.nulls
    chase_stats.Tgd_chase.Chase.rounds t_chase;

  Format.printf "@.%-22s %9s %9s %10s %10s %8s@." "query" "disjuncts" "answers" "t_rewrite"
    "t_eval" "t_chase_eval";
  List.iter
    (fun q ->
      let rewriting, t_rw = time (fun () -> Tgd_rewrite.Rewrite.ucq ontology q) in
      let answers_rw, t_eval =
        time (fun () ->
            Eval.ucq data rewriting.Tgd_rewrite.Rewrite.ucq
            |> List.filter (fun t -> not (Tuple.has_null t)))
      in
      let answers_chase, t_ceval =
        time (fun () -> Eval.cq chased_inst q |> List.filter (fun t -> not (Tuple.has_null t)))
      in
      let agree =
        List.length answers_rw = List.length answers_chase
        && List.for_all2 Tuple.equal answers_rw answers_chase
      in
      Format.printf "%-22s %9d %9d %9.3fs %9.3fs %7.3fs%s@." q.Tgd_logic.Cq.name
        (List.length rewriting.Tgd_rewrite.Rewrite.ucq)
        (List.length answers_rw) t_rw t_eval t_ceval
        (if agree then "" else "  DISAGREE!"))
    Tgd_gen.University.queries;
  Format.printf "@.(the chase column excludes the one-off %.3fs materialization cost)@." t_chase
