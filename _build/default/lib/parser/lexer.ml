type token =
  | Ident of string
  | Var of string
  | Quoted of string
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Comma
  | Period
  | Arrow
  | Implied_by
  | Eof

exception Error of string * int * int

type t = {
  src : string;
  filename : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of beginning of current line *)
  mutable lookahead : token option;
  mutable tok_line : int;
  mutable tok_col : int;
}

let of_string ?(filename = "<string>") src =
  { src; filename; pos = 0; line = 1; bol = 0; lookahead = None; tok_line = 1; tok_col = 1 }

let filename lx = lx.filename
let line lx = lx.tok_line
let col lx = lx.tok_col

let is_eof lx = lx.pos >= String.length lx.src
let cur lx = lx.src.[lx.pos]

let advance lx =
  if not (is_eof lx) then begin
    if cur lx = '\n' then begin
      lx.line <- lx.line + 1;
      lx.bol <- lx.pos + 1
    end;
    lx.pos <- lx.pos + 1
  end

let error lx msg = raise (Error (msg, lx.line, lx.pos - lx.bol + 1))

let rec skip_blanks lx =
  if is_eof lx then ()
  else
    match cur lx with
    | ' ' | '\t' | '\r' | '\n' ->
      advance lx;
      skip_blanks lx
    | '%' | '#' ->
      while (not (is_eof lx)) && cur lx <> '\n' do
        advance lx
      done;
      skip_blanks lx
    | _ -> ()

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '\''

let read_word lx =
  let start = lx.pos in
  while (not (is_eof lx)) && is_ident_char (cur lx) do
    advance lx
  done;
  String.sub lx.src start (lx.pos - start)

let read_quoted lx =
  advance lx;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec loop () =
    if is_eof lx then error lx "unterminated string literal"
    else
      match cur lx with
      | '"' -> advance lx
      | '\\' ->
        advance lx;
        if is_eof lx then error lx "unterminated escape"
        else begin
          Buffer.add_char buf (cur lx);
          advance lx;
          loop ()
        end
      | c ->
        Buffer.add_char buf c;
        advance lx;
        loop ()
  in
  loop ();
  Buffer.contents buf

let lex lx =
  skip_blanks lx;
  lx.tok_line <- lx.line;
  lx.tok_col <- lx.pos - lx.bol + 1;
  if is_eof lx then Eof
  else
    match cur lx with
    | '(' -> advance lx; Lparen
    | ')' -> advance lx; Rparen
    | '[' -> advance lx; Lbracket
    | ']' -> advance lx; Rbracket
    | ',' -> advance lx; Comma
    | '.' -> advance lx; Period
    | '"' -> Quoted (read_quoted lx)
    | '-' ->
      advance lx;
      if (not (is_eof lx)) && cur lx = '>' then begin
        advance lx;
        Arrow
      end
      else error lx "expected '->'"
    | ':' ->
      advance lx;
      if (not (is_eof lx)) && cur lx = '-' then begin
        advance lx;
        Implied_by
      end
      else error lx "expected ':-'"
    | c when (c >= 'A' && c <= 'Z') || c = '_' -> Var (read_word lx)
    | c when (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') -> Ident (read_word lx)
    | c -> error lx (Printf.sprintf "unexpected character %C" c)

let next lx =
  match lx.lookahead with
  | Some tok ->
    lx.lookahead <- None;
    tok
  | None -> lex lx

let peek lx =
  match lx.lookahead with
  | Some tok -> tok
  | None ->
    let tok = lex lx in
    lx.lookahead <- Some tok;
    tok
