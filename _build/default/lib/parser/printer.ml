open Tgd_logic

let atoms ppf l =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    Atom.pp ppf l

let rule ppf (r : Tgd.t) =
  Format.fprintf ppf "[%s] %a -> %a." r.Tgd.name atoms r.Tgd.body atoms r.Tgd.head

let fact ppf a = Format.fprintf ppf "%a." Atom.pp a

let query ppf (q : Cq.t) =
  let terms ppf ts =
    Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",") Term.pp ppf ts
  in
  Format.fprintf ppf "%s(%a) :- %a." q.Cq.name terms q.Cq.answer atoms q.Cq.body

let negative_constraint ppf (name, body) =
  Format.fprintf ppf "[%s] %a -> falsum." name atoms body

let document ppf (d : Parser.document) =
  List.iter (fun r -> Format.fprintf ppf "%a@." rule r) d.Parser.rules;
  List.iter (fun nc -> Format.fprintf ppf "%a@." negative_constraint nc) d.Parser.constraints;
  List.iter (fun f -> Format.fprintf ppf "%a@." fact f) d.Parser.facts;
  List.iter (fun q -> Format.fprintf ppf "%a@." query q) d.Parser.queries

let program ppf p = List.iter (fun r -> Format.fprintf ppf "%a@." rule r) (Program.tgds p)
let program_to_string p = Format.asprintf "%a" program p
