(** Pretty-printer producing text the parser reads back (round-tripping). *)

open Tgd_logic

val rule : Format.formatter -> Tgd.t -> unit
val fact : Format.formatter -> Atom.t -> unit
val query : Format.formatter -> Cq.t -> unit
val negative_constraint : Format.formatter -> string * Atom.t list -> unit
val document : Format.formatter -> Parser.document -> unit
val program : Format.formatter -> Program.t -> unit
val program_to_string : Program.t -> string
