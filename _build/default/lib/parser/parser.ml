open Tgd_logic

type document = {
  rules : Tgd.t list;
  facts : Atom.t list;
  queries : Cq.t list;
  constraints : (string * Atom.t list) list;
}

type error = {
  filename : string;
  line : int;
  col : int;
  message : string;
}

let pp_error ppf e =
  Format.fprintf ppf "%s:%d:%d: %s" e.filename e.line e.col e.message

exception Parse_failure of string

let fail msg = raise (Parse_failure msg)

let expect lx tok what =
  let got = Lexer.next lx in
  if got <> tok then fail (Printf.sprintf "expected %s" what)

let is_falsum (a : Atom.t) = String.equal (Symbol.name a.Atom.pred) "falsum" && Atom.arity a = 0

(* Classify a parsed implication: a [falsum] head makes it a constraint. *)
let rule_or_constraint ?name ~body ~head () =
  match head with
  | [ a ] when is_falsum a ->
    let name = match name with Some n -> n | None -> Printf.sprintf "nc_%d" (List.length body) in
    `Constraint (name, body)
  | _ -> `Rule (Tgd.make ?name ~body ~head)

let parse_term lx =
  match Lexer.next lx with
  | Lexer.Var v -> Term.var v
  | Lexer.Ident c -> Term.const c
  | Lexer.Quoted c -> Term.const c
  | _ -> fail "expected a term (variable or constant)"

let parse_terms lx =
  (* after '(' ; empty argument list '()' is allowed *)
  match Lexer.peek lx with
  | Lexer.Rparen ->
    ignore (Lexer.next lx);
    []
  | _ ->
    let rec loop acc =
      let t = parse_term lx in
      match Lexer.next lx with
      | Lexer.Comma -> loop (t :: acc)
      | Lexer.Rparen -> List.rev (t :: acc)
      | _ -> fail "expected ',' or ')' in argument list"
    in
    loop []

let parse_atom_with_name lx name =
  match Lexer.peek lx with
  | Lexer.Lparen ->
    ignore (Lexer.next lx);
    Atom.of_strings name (parse_terms lx)
  | _ -> Atom.of_strings name []

let parse_atom lx =
  match Lexer.next lx with
  | Lexer.Ident name -> parse_atom_with_name lx name
  | _ -> fail "expected a predicate name"

let rec parse_atoms lx acc =
  let a = parse_atom lx in
  match Lexer.peek lx with
  | Lexer.Comma ->
    ignore (Lexer.next lx);
    parse_atoms lx (a :: acc)
  | _ -> List.rev (a :: acc)

let parse_item lx =
  match Lexer.peek lx with
  | Lexer.Eof -> None
  | Lexer.Lbracket ->
    (* named rule *)
    ignore (Lexer.next lx);
    let name =
      match Lexer.next lx with
      | Lexer.Ident n | Lexer.Var n -> n
      | _ -> fail "expected a rule name after '['"
    in
    expect lx Lexer.Rbracket "']'";
    let body = parse_atoms lx [] in
    expect lx Lexer.Arrow "'->'";
    let head = parse_atoms lx [] in
    expect lx Lexer.Period "'.'";
    Some (rule_or_constraint ~name ~body ~head ())
  | _ ->
    let first = parse_atom lx in
    (match Lexer.next lx with
    | Lexer.Period ->
      (* a fact: must be ground *)
      if Symbol.Set.is_empty (Atom.vars first) then Some (`Fact first)
      else fail "facts must be ground (no variables)"
    | Lexer.Comma ->
      let rest = parse_atoms lx [] in
      expect lx Lexer.Arrow "'->'";
      let head = parse_atoms lx [] in
      expect lx Lexer.Period "'.'";
      Some (rule_or_constraint ~body:(first :: rest) ~head ())
    | Lexer.Arrow ->
      let head = parse_atoms lx [] in
      expect lx Lexer.Period "'.'";
      Some (rule_or_constraint ~body:[ first ] ~head ())
    | Lexer.Implied_by ->
      let body = parse_atoms lx [] in
      expect lx Lexer.Period "'.'";
      let name = Symbol.name first.Atom.pred in
      let answer = Atom.args first in
      (try Some (`Query (Cq.make ~name ~answer ~body))
       with Invalid_argument msg -> fail msg)
    | _ -> fail "expected '.', ',', '->' or ':-' after atom")

let parse_lexer lx =
  let rules = ref [] and facts = ref [] and queries = ref [] in
  let constraints = ref [] in
  let rec loop () =
    match parse_item lx with
    | None -> ()
    | Some (`Rule r) ->
      rules := r :: !rules;
      loop ()
    | Some (`Constraint nc) ->
      constraints := nc :: !constraints;
      loop ()
    | Some (`Fact f) ->
      facts := f :: !facts;
      loop ()
    | Some (`Query q) ->
      queries := q :: !queries;
      loop ()
  in
  try
    loop ();
    Ok
      {
        rules = List.rev !rules;
        facts = List.rev !facts;
        queries = List.rev !queries;
        constraints = List.rev !constraints;
      }
  with
  | Parse_failure message ->
    Error { filename = Lexer.filename lx; line = Lexer.line lx; col = Lexer.col lx; message }
  | Lexer.Error (message, line, col) -> Error { filename = Lexer.filename lx; line; col; message }
  | Invalid_argument message ->
    Error { filename = Lexer.filename lx; line = Lexer.line lx; col = Lexer.col lx; message }

let parse_string ?filename src = parse_lexer (Lexer.of_string ?filename src)

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse_string ~filename:path src

let program_of_document ?name doc =
  (* Check arity consistency across rules, facts and queries by encoding
     facts and query bodies as extra pseudo-rules for the signature scan. *)
  match Program.make ?name doc.rules with
  | Error _ as e -> e
  | Ok p ->
    let arities = Hashtbl.create 32 in
    List.iter (fun (pred, a) -> Hashtbl.replace arities pred a) (Program.predicates p);
    let check_atom (a : Atom.t) =
      match Hashtbl.find_opt arities a.Atom.pred with
      | None ->
        Hashtbl.replace arities a.Atom.pred (Atom.arity a);
        Ok ()
      | Some n ->
        if n = Atom.arity a then Ok ()
        else
          Error
            (Printf.sprintf "predicate %s used with arities %d and %d"
               (Symbol.name a.Atom.pred) n (Atom.arity a))
    in
    let rec check_all = function
      | [] -> Ok p
      | a :: rest -> (
        match check_atom a with Ok () -> check_all rest | Error _ as e -> e)
    in
    check_all
      (doc.facts
      @ List.concat_map (fun (q : Cq.t) -> q.Cq.body) doc.queries
      @ List.concat_map snd doc.constraints)
