lib/parser/lexer.ml: Buffer Printf String
