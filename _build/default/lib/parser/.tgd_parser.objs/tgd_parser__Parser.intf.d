lib/parser/parser.mli: Atom Cq Format Program Tgd Tgd_logic
