lib/parser/printer.mli: Atom Cq Format Parser Program Tgd Tgd_logic
