lib/parser/lexer.mli:
