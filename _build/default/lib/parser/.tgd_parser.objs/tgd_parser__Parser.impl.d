lib/parser/parser.ml: Atom Cq Format Hashtbl Lexer List Printf Program String Symbol Term Tgd Tgd_logic
