lib/parser/printer.ml: Atom Cq Format List Parser Program Term Tgd Tgd_logic
