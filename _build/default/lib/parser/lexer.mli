(** Hand-written lexer for the ontology text format.

    Conventions (Prolog-like): identifiers starting with an uppercase letter
    or [_] are variables; identifiers starting with a lowercase letter,
    double-quoted strings, and numbers are constants / predicate names.
    Comments run from [%] or [#] to the end of the line. *)

type token =
  | Ident of string  (** predicate or constant *)
  | Var of string
  | Quoted of string  (** double-quoted constant *)
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Comma
  | Period
  | Arrow  (** [->] *)
  | Implied_by  (** [:-] *)
  | Eof

type t

val of_string : ?filename:string -> string -> t
val next : t -> token
(** Consume and return the next token. Raises {!Error}. *)

val peek : t -> token
(** Look at the next token without consuming it. *)

val line : t -> int
val col : t -> int
val filename : t -> string

exception Error of string * int * int
(** message, line, column (1-based) *)
