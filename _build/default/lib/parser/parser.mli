(** Parser for the ontology text format.

    Grammar (comments with [%] or [#]):
    {v
      item   ::= rule | constraint | fact | query
      rule   ::= [ "[" NAME "]" ] atoms "->" atoms "."
      constr ::= [ "[" NAME "]" ] atoms "->" "falsum" "."
      fact   ::= atom "."                      (ground atoms only)
      query  ::= NAME [ "(" terms ")" ] ":-" atoms "."
      atom   ::= PRED [ "(" terms ")" ]
      term   ::= VARIABLE | CONSTANT | "quoted constant"
    v}

    Variables start with an uppercase letter or [_]; everything else is a
    constant or predicate name. A rule whose head is the reserved 0-ary
    atom [falsum] is a negative constraint; its body is collected in
    [constraints] (paired with the rule name). *)

open Tgd_logic

type document = {
  rules : Tgd.t list;
  facts : Atom.t list;
  queries : Cq.t list;
  constraints : (string * Atom.t list) list;  (** negative constraints: name, body *)
}

type error = {
  filename : string;
  line : int;
  col : int;
  message : string;
}

val pp_error : Format.formatter -> error -> unit

val parse_string : ?filename:string -> string -> (document, error) result
val parse_file : string -> (document, error) result

val program_of_document : ?name:string -> document -> (Program.t, string) result
(** Build a {!Program} from the rules of a document (arity consistency is
    checked across rules, facts and queries). *)
