lib/logic/symbol.ml: Array Format Hashtbl Int Map Printf Set
