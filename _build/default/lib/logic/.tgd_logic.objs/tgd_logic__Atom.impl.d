lib/logic/atom.ml: Array Format Hashtbl Int Set Symbol Term
