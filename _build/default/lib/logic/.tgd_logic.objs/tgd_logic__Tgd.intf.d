lib/logic/tgd.mli: Atom Format Symbol
