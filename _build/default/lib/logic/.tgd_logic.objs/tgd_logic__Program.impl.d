lib/logic/program.ml: Atom Format List Printf Symbol Tgd
