lib/logic/tgd.ml: Atom Format List Printf String Symbol Term
