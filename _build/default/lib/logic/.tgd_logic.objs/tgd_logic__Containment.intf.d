lib/logic/containment.mli: Cq
