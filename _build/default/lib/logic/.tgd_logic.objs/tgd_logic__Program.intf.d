lib/logic/program.mli: Format Symbol Tgd
