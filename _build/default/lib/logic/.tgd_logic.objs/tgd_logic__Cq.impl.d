lib/logic/cq.ml: Atom Format List Printf Subst Symbol Term
