lib/logic/unify.ml: Array Atom Option Subst Symbol Term
