lib/logic/subst.ml: Atom Format List Symbol Term
