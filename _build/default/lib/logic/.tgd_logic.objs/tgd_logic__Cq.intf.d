lib/logic/cq.mli: Atom Format Subst Symbol Term
