lib/logic/atom.mli: Format Set Symbol Term
