lib/logic/symbol.mli: Format Hashtbl Map Set
