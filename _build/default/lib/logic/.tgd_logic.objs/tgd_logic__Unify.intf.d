lib/logic/unify.mli: Atom Subst Term
