lib/logic/containment.ml: Cq Homomorphism Int List Symbol Term
