lib/logic/homomorphism.mli: Atom Symbol Term
