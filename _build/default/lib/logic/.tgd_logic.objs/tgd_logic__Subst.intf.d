lib/logic/subst.mli: Atom Format Symbol Term
