lib/logic/homomorphism.ml: Array Atom Int List Option Symbol Term
