let terms s t1 t2 =
  let t1 = Subst.walk s t1 and t2 = Subst.walk s t2 in
  match t1, t2 with
  | Term.Var v1, Term.Var v2 when Symbol.equal v1 v2 -> Some s
  | Term.Var v, t | t, Term.Var v -> Some (Subst.bind v t s)
  | Term.Const c1, Term.Const c2 -> if Symbol.equal c1 c2 then Some s else None

let atoms s a1 a2 =
  if (not (Symbol.equal a1.Atom.pred a2.Atom.pred)) || Atom.arity a1 <> Atom.arity a2 then None
  else
    let n = Atom.arity a1 in
    let rec loop s i =
      if i >= n then Some s
      else
        match terms s a1.Atom.args.(i) a2.Atom.args.(i) with
        | None -> None
        | Some s -> loop s (i + 1)
    in
    loop s 0

let mgu a1 a2 = atoms Subst.empty a1 a2
let unifiable a1 a2 = Option.is_some (mgu a1 a2)
