(** Substitutions: finite maps from variables to terms.

    Substitutions are kept triangular (a binding's right-hand side may itself
    be a bound variable); [walk] resolves chains. Application functions walk
    bindings to a fixpoint, so applying a substitution built by unification is
    idempotent. *)

type t

val empty : t
val is_empty : t -> bool

val bind : Symbol.t -> Term.t -> t -> t
(** [bind v t s] adds the binding [v -> t]. Raises [Invalid_argument] if [v]
    is already bound. *)

val find : Symbol.t -> t -> Term.t option

val walk : t -> Term.t -> Term.t
(** Resolve a term through the substitution until it is a constant or an
    unbound variable. *)

val apply_atom : t -> Atom.t -> Atom.t
val apply_atoms : t -> Atom.t list -> Atom.t list
val apply_terms : t -> Term.t list -> Term.t list

val of_list : (Symbol.t * Term.t) list -> t
val to_list : t -> (Symbol.t * Term.t) list

val domain : t -> Symbol.Set.t
val pp : Format.formatter -> t -> unit
