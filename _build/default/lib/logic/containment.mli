(** Conjunctive-query containment via the homomorphism theorem. *)

val contained : Cq.t -> Cq.t -> bool
(** [contained q1 q2] holds iff [q1 <= q2], i.e. on every database the
    answers of [q1] are a subset of the answers of [q2]. Decided by searching
    for a homomorphism from [q2] into the frozen body of [q1] that maps the
    answer tuple of [q2] onto the answer tuple of [q1]. Queries of different
    arities are never contained. *)

val equivalent : Cq.t -> Cq.t -> bool

val ucq_contained : Cq.ucq -> Cq.ucq -> bool
(** [ucq_contained u1 u2]: every disjunct of [u1] is contained in some
    disjunct of [u2]. (Sound and complete for UCQ containment.) *)

val minimize_ucq : Cq.ucq -> Cq.ucq
(** Remove every disjunct that is contained in another disjunct; of two
    equivalent disjuncts the one with the smaller body survives. The result
    is equivalent to the input. *)
