type t = {
  name : string;
  body : Atom.t list;
  head : Atom.t list;
}

let counter = ref 0

let make ?name ~body ~head =
  if body = [] then invalid_arg "Tgd.make: empty body";
  if head = [] then invalid_arg "Tgd.make: empty head";
  let name =
    match name with
    | Some n -> n
    | None ->
      incr counter;
      Printf.sprintf "r%d" !counter
  in
  { name; body; head }

let vars_of_atoms atoms =
  List.fold_left (fun acc a -> Symbol.Set.union acc (Atom.vars a)) Symbol.Set.empty atoms

let body_vars r = vars_of_atoms r.body
let head_vars r = vars_of_atoms r.head
let frontier r = Symbol.Set.inter (body_vars r) (head_vars r)
let existential_head_vars r = Symbol.Set.diff (head_vars r) (body_vars r)
let existential_body_vars r = Symbol.Set.diff (body_vars r) (head_vars r)

let constants r =
  List.fold_left
    (fun acc a -> Symbol.Set.union acc (Atom.constants a))
    Symbol.Set.empty (r.body @ r.head)

let is_simple r =
  (match r.head with [ _ ] -> true | [] | _ :: _ :: _ -> false)
  && Symbol.Set.is_empty (constants r)
  && not (List.exists Atom.has_repeated_var (r.body @ r.head))

let rename_apart r =
  let mapping = Symbol.Table.create 8 in
  let rename t =
    match t with
    | Term.Const _ -> t
    | Term.Var v -> (
      match Symbol.Table.find_opt mapping v with
      | Some v' -> Term.Var v'
      | None ->
        let v' = Symbol.fresh (Symbol.name v) in
        Symbol.Table.add mapping v v';
        Term.Var v')
  in
  {
    r with
    body = List.map (Atom.apply rename) r.body;
    head = List.map (Atom.apply rename) r.head;
  }

let single_head_normalize rules =
  let split r =
    match r.head with
    | [ _ ] -> [ r ]
    | head ->
      let aux = Symbol.fresh ("aux_" ^ r.name) in
      let hvars = Symbol.Set.elements (head_vars r) in
      let aux_atom = Atom.make aux (List.map (fun v -> Term.Var v) hvars) in
      let link = make ~name:(r.name ^ "_aux") ~body:r.body ~head:[ aux_atom ] in
      let projections =
        List.mapi
          (fun i h -> make ~name:(Printf.sprintf "%s_h%d" r.name (i + 1)) ~body:[ aux_atom ] ~head:[ h ])
          head
      in
      link :: projections
  in
  List.concat_map split rules

let equal r1 r2 =
  String.equal r1.name r2.name
  && List.length r1.body = List.length r2.body
  && List.length r1.head = List.length r2.head
  && List.for_all2 Atom.equal r1.body r2.body
  && List.for_all2 Atom.equal r1.head r2.head

let pp_atoms ppf atoms =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    Atom.pp ppf atoms

let pp ppf r = Format.fprintf ppf "[%s] %a -> %a" r.name pp_atoms r.body pp_atoms r.head
let to_string r = Format.asprintf "%a" pp r
