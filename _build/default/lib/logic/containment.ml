(* [q1 <= q2] iff there is a homomorphism from q2 into q1 frozen, mapping the
   answer tuple of q2 onto the answer tuple of q1 position-wise. *)
let contained q1 q2 =
  Cq.arity q1 = Cq.arity q2
  &&
  let target = Homomorphism.target_of_atoms q1.Cq.body in
  (* Seed the mapping with answer-position constraints. *)
  let rec seed m a2 a1 =
    match a2, a1 with
    | [], [] -> Some m
    | t2 :: rest2, t1 :: rest1 -> (
      match t2 with
      | Term.Const _ -> if Term.equal t2 t1 then seed m rest2 rest1 else None
      | Term.Var v -> (
        match Symbol.Map.find_opt v m with
        | Some t -> if Term.equal t t1 then seed m rest2 rest1 else None
        | None -> seed (Symbol.Map.add v t1 m) rest2 rest1))
    | [], _ :: _ | _ :: _, [] -> None
  in
  match seed Symbol.Map.empty q2.Cq.answer q1.Cq.answer with
  | None -> false
  | Some init -> Homomorphism.exists ~init q2.Cq.body target

let equivalent q1 q2 = contained q1 q2 && contained q2 q1

let ucq_contained u1 u2 = List.for_all (fun q1 -> List.exists (fun q2 -> contained q1 q2) u2) u1

let minimize_ucq ucq =
  (* Keep a disjunct only if it is not contained in a kept one nor in a later
     not-yet-discarded one: [q] is redundant iff contained in some other
     disjunct that survives. Visiting larger bodies first makes the smaller
     of two equivalent disjuncts the survivor. *)
  let ucq =
    List.stable_sort
      (fun q1 q2 -> Int.compare (List.length q2.Cq.body) (List.length q1.Cq.body))
      ucq
  in
  let rec loop kept = function
    | [] -> List.rev kept
    | q :: rest ->
      let subsumed_by q' = (not (q == q')) && contained q q' in
      if List.exists subsumed_by kept || List.exists subsumed_by rest then loop kept rest
      else loop (q :: kept) rest
  in
  loop [] ucq
