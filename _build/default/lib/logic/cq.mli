(** Conjunctive queries and unions of conjunctive queries. *)

type t = private {
  name : string;
  answer : Term.t list;  (** the tuple of answer terms, usually variables *)
  body : Atom.t list;
}

type ucq = t list
(** A union of conjunctive queries of the same arity. *)

val make : ?name:string -> answer:Term.t list -> body:Atom.t list -> t
(** Raises [Invalid_argument] on an unsafe query (an answer variable that
    does not occur in the body) or an empty body. *)

val arity : t -> int
val is_boolean : t -> bool
val vars : t -> Symbol.Set.t
val answer_vars : t -> Symbol.Set.t

val existential_vars : t -> Symbol.Set.t
(** Body variables that are not answer variables. *)

val constants : t -> Symbol.Set.t

val apply : Subst.t -> t -> t
(** Apply a substitution to answer terms and body. The result must still be
    safe (it is, for substitutions produced by unification of body atoms). *)

val rename_apart : t -> t
(** Rename every variable to a globally fresh one. *)

val canonical : t -> t
(** Rename variables to [V0, V1, ...] in first-occurrence order (answer terms
    first, then body in atom order) and sort the body atoms. Two queries that
    are equal up to consistent variable renaming and body reordering map to
    equal canonical forms whenever their first-occurrence orders agree; it is
    a cheap key for deduplication, not a full isomorphism test. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val pp_ucq : Format.formatter -> ucq -> unit
