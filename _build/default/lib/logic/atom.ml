type t = {
  pred : Symbol.t;
  args : Term.t array;
}

let make pred args = { pred; args = Array.of_list args }
let of_strings pred args = make (Symbol.intern pred) args

let arity a = Array.length a.args
let args a = Array.to_list a.args

let vars a =
  Array.fold_left
    (fun acc t -> match t with Term.Var v -> Symbol.Set.add v acc | Term.Const _ -> acc)
    Symbol.Set.empty a.args

let var_list a =
  Array.fold_right
    (fun t acc -> match t with Term.Var v -> v :: acc | Term.Const _ -> acc)
    a.args []

let constants a =
  Array.fold_left
    (fun acc t -> match t with Term.Const c -> Symbol.Set.add c acc | Term.Var _ -> acc)
    Symbol.Set.empty a.args

let has_repeated_var a =
  let seen = Hashtbl.create 8 in
  let rec loop i =
    if i >= Array.length a.args then false
    else
      match a.args.(i) with
      | Term.Const _ -> loop (i + 1)
      | Term.Var v -> if Hashtbl.mem seen v then true else (Hashtbl.add seen v (); loop (i + 1))
  in
  loop 0

let positions_of_var v a =
  let acc = ref [] in
  for i = Array.length a.args - 1 downto 0 do
    match a.args.(i) with
    | Term.Var v' when Symbol.equal v v' -> acc := (i + 1) :: !acc
    | Term.Var _ | Term.Const _ -> ()
  done;
  !acc

let apply f a = { a with args = Array.map f a.args }

let equal a1 a2 =
  Symbol.equal a1.pred a2.pred
  && Array.length a1.args = Array.length a2.args
  && Array.for_all2 Term.equal a1.args a2.args

let compare a1 a2 =
  let c = Symbol.compare a1.pred a2.pred in
  if c <> 0 then c
  else
    let c = Int.compare (Array.length a1.args) (Array.length a2.args) in
    if c <> 0 then c
    else
      let rec loop i =
        if i >= Array.length a1.args then 0
        else
          let c = Term.compare a1.args.(i) a2.args.(i) in
          if c <> 0 then c else loop (i + 1)
      in
      loop 0

let hash a = Array.fold_left (fun h t -> (h * 31) + Term.hash t) (Symbol.hash a.pred) a.args

let pp ppf a =
  if Array.length a.args = 0 then Symbol.pp ppf a.pred
  else
    Format.fprintf ppf "%a(%a)" Symbol.pp a.pred
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",") Term.pp)
      (args a)

let to_string a = Format.asprintf "%a" pp a

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
