type t = Term.t Symbol.Map.t

let empty = Symbol.Map.empty
let is_empty = Symbol.Map.is_empty

let bind v t s =
  if Symbol.Map.mem v s then invalid_arg "Subst.bind: variable already bound";
  Symbol.Map.add v t s

let find v s = Symbol.Map.find_opt v s

let rec walk s t =
  match t with
  | Term.Const _ -> t
  | Term.Var v -> (
    match Symbol.Map.find_opt v s with
    | None -> t
    | Some t' -> walk s t')

let apply_atom s a = Atom.apply (walk s) a
let apply_atoms s atoms = List.map (apply_atom s) atoms
let apply_terms s terms = List.map (walk s) terms

let of_list l = List.fold_left (fun s (v, t) -> bind v t s) empty l
let to_list s = Symbol.Map.bindings s

let domain s = Symbol.Map.fold (fun v _ acc -> Symbol.Set.add v acc) s Symbol.Set.empty

let pp ppf s =
  let pp_binding ppf (v, t) = Format.fprintf ppf "%a:=%a" Symbol.pp v Term.pp t in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_binding)
    (to_list s)
