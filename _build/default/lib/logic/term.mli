(** First-order terms.

    The logic of the paper is function-free: a term is either a variable or a
    constant. By convention (enforced by the parser, not by this module),
    variable spellings start with an uppercase letter and constants with a
    lowercase letter or a quote. *)

type t =
  | Var of Symbol.t
  | Const of Symbol.t

val var : string -> t
(** [var s] is [Var (Symbol.intern s)]. *)

val const : string -> t
(** [const s] is [Const (Symbol.intern s)]. *)

val is_var : t -> bool
val is_const : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
