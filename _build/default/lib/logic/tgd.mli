(** Tuple-generating dependencies (TGDs, a.k.a. existential rules).

    A TGD is an expression [b1, ..., bn -> h1, ..., hm] read as the
    first-order sentence [forall x. b1 /\ ... /\ bn -> exists y. h1 /\ ... /\ hm]
    where [x] are all body variables and [y] the variables occurring only in
    the head (Section 3 of the paper). *)

type t = private {
  name : string;
  body : Atom.t list;
  head : Atom.t list;
}

val make : ?name:string -> body:Atom.t list -> head:Atom.t list -> t
(** Raises [Invalid_argument] if body or head is empty. *)

val body_vars : t -> Symbol.Set.t
val head_vars : t -> Symbol.Set.t

val frontier : t -> Symbol.Set.t
(** The distinguished variables: those occurring both in the head and in the
    body. *)

val existential_head_vars : t -> Symbol.Set.t
(** Variables occurring only in the head (the value-inventing positions). *)

val existential_body_vars : t -> Symbol.Set.t
(** Variables occurring only in the body. *)

val constants : t -> Symbol.Set.t

val is_simple : t -> bool
(** Simple TGDs (Section 5): no repeated variables inside an atom, no
    constants, and a single head atom. *)

val rename_apart : t -> t
(** Rename every variable to a globally fresh one. Used before unifying a
    rule with a query. *)

val single_head_normalize : t list -> t list
(** Split every TGD with an [n>1]-atom head into [n+1] single-head TGDs
    through a fresh auxiliary predicate collecting all head variables. The
    transformation preserves certain answers for queries over the original
    signature. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
