(** Syntactic unification over function-free terms. *)

val terms : Subst.t -> Term.t -> Term.t -> Subst.t option
(** Extend a substitution so that the two terms become equal, or return
    [None] if they clash on distinct constants. *)

val atoms : Subst.t -> Atom.t -> Atom.t -> Subst.t option
(** Unify two atoms argument-wise (same predicate and arity required). *)

val mgu : Atom.t -> Atom.t -> Subst.t option
(** Most general unifier of two atoms, starting from the empty
    substitution. The two atoms are assumed to have disjoint variables when a
    standalone unifier is wanted; callers that share variables get the shared
    semantics. *)

val unifiable : Atom.t -> Atom.t -> bool
