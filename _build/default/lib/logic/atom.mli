(** Relational atoms [p(t1, ..., tn)]. *)

type t = {
  pred : Symbol.t;
  args : Term.t array;
}

val make : Symbol.t -> Term.t list -> t

val of_strings : string -> Term.t list -> t
(** [of_strings p args] interns the predicate name [p]. *)

val arity : t -> int
val args : t -> Term.t list

val vars : t -> Symbol.Set.t
(** Variables occurring in the atom. *)

val var_list : t -> Symbol.t list
(** Variables in argument order, with duplicates. *)

val constants : t -> Symbol.Set.t

val has_repeated_var : t -> bool
(** [true] iff some variable occurs in two distinct argument positions. *)

val positions_of_var : Symbol.t -> t -> int list
(** 1-based positions at which the variable occurs. *)

val apply : (Term.t -> Term.t) -> t -> t
(** Map a function over the arguments. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
