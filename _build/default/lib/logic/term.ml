type t =
  | Var of Symbol.t
  | Const of Symbol.t

let var s = Var (Symbol.intern s)
let const s = Const (Symbol.intern s)

let is_var = function Var _ -> true | Const _ -> false
let is_const = function Const _ -> true | Var _ -> false

let equal t1 t2 =
  match t1, t2 with
  | Var v1, Var v2 -> Symbol.equal v1 v2
  | Const c1, Const c2 -> Symbol.equal c1 c2
  | Var _, Const _ | Const _, Var _ -> false

let compare t1 t2 =
  match t1, t2 with
  | Var v1, Var v2 -> Symbol.compare v1 v2
  | Const c1, Const c2 -> Symbol.compare c1 c2
  | Var _, Const _ -> -1
  | Const _, Var _ -> 1

let hash = function
  | Var v -> 2 * Symbol.hash v
  | Const c -> (2 * Symbol.hash c) + 1

let pp ppf = function
  | Var v -> Symbol.pp ppf v
  | Const c -> Symbol.pp ppf c

let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
