(** A finite set of TGDs with a consistent relational signature. *)

type t = private {
  name : string;
  tgds : Tgd.t list;
}

val make : ?name:string -> Tgd.t list -> (t, string) result
(** Checks that every predicate is used with a single arity across all rules;
    returns a descriptive error otherwise. An empty rule list is allowed (it
    denotes the empty ontology). *)

val make_exn : ?name:string -> Tgd.t list -> t

val tgds : t -> Tgd.t list
val size : t -> int

val predicates : t -> (Symbol.t * int) list
(** The signature: every predicate with its arity, sorted by symbol. *)

val arity_of : t -> Symbol.t -> int option
val constants : t -> Symbol.Set.t
val max_arity : t -> int

val max_body_vars : t -> int
(** Maximum number of distinct variables in a single rule body; bounds the
    canonical-variable pool of the P-node graph. *)

val is_simple : t -> bool
(** Every TGD is simple (Section 5). *)

val rules_with_head_pred : t -> Symbol.t -> Tgd.t list
(** The rules whose head contains an atom with the given predicate. *)

val single_head_normalize : t -> t

val pp : Format.formatter -> t -> unit
