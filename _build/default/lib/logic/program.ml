type t = {
  name : string;
  tgds : Tgd.t list;
}

let signature tgds =
  let sigs = Symbol.Table.create 32 in
  let check_atom rule_name a =
    let n = Atom.arity a in
    match Symbol.Table.find_opt sigs a.Atom.pred with
    | None ->
      Symbol.Table.add sigs a.Atom.pred n;
      Ok ()
    | Some n' ->
      if n = n' then Ok ()
      else
        Error
          (Printf.sprintf "predicate %s used with arities %d and %d (rule %s)"
             (Symbol.name a.Atom.pred) n' n rule_name)
  in
  let rec check_all = function
    | [] -> Ok sigs
    | (r : Tgd.t) :: rest ->
      let rec atoms = function
        | [] -> check_all rest
        | a :: more -> (
          match check_atom r.Tgd.name a with Ok () -> atoms more | Error _ as e -> e)
      in
      atoms (r.Tgd.body @ r.Tgd.head)
  in
  check_all tgds

let make ?(name = "P") tgds =
  match signature tgds with Ok _ -> Ok { name; tgds } | Error e -> Error e

let make_exn ?name tgds =
  match make ?name tgds with Ok p -> p | Error e -> invalid_arg ("Program.make: " ^ e)

let tgds p = p.tgds
let size p = List.length p.tgds

let predicates p =
  match signature p.tgds with
  | Error _ -> assert false (* checked at construction *)
  | Ok sigs ->
    Symbol.Table.fold (fun pred arity acc -> (pred, arity) :: acc) sigs []
    |> List.sort (fun (p1, _) (p2, _) -> Symbol.compare p1 p2)

let arity_of p pred = List.assoc_opt pred (predicates p)

let constants p =
  List.fold_left (fun acc r -> Symbol.Set.union acc (Tgd.constants r)) Symbol.Set.empty p.tgds

let max_arity p = List.fold_left (fun acc (_, n) -> max acc n) 0 (predicates p)

let max_body_vars p =
  List.fold_left (fun acc r -> max acc (Symbol.Set.cardinal (Tgd.body_vars r))) 0 p.tgds

let is_simple p = List.for_all Tgd.is_simple p.tgds

let rules_with_head_pred p pred =
  List.filter (fun r -> List.exists (fun a -> Symbol.equal a.Atom.pred pred) r.Tgd.head) p.tgds

let single_head_normalize p = { p with tgds = Tgd.single_head_normalize p.tgds }

let pp ppf p =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Tgd.pp)
    p.tgds
