type mapping = Term.t Symbol.Map.t

type target = {
  by_pred : Atom.t list Symbol.Table.t;
  size : int;
}

let target_of_atoms atoms =
  let by_pred = Symbol.Table.create 16 in
  let add a =
    let existing = Option.value ~default:[] (Symbol.Table.find_opt by_pred a.Atom.pred) in
    Symbol.Table.replace by_pred a.Atom.pred (a :: existing)
  in
  List.iter add atoms;
  { by_pred; size = List.length atoms }

let target_size t = t.size

(* Match one source atom against one target atom, extending [m]. *)
let match_atom m (src : Atom.t) (tgt : Atom.t) =
  let n = Atom.arity src in
  if Atom.arity tgt <> n then None
  else
    let rec loop m i =
      if i >= n then Some m
      else
        let ti = tgt.Atom.args.(i) in
        match src.Atom.args.(i) with
        | Term.Const _ as c -> if Term.equal c ti then loop m (i + 1) else None
        | Term.Var v -> (
          match Symbol.Map.find_opt v m with
          | Some t -> if Term.equal t ti then loop m (i + 1) else None
          | None -> loop (Symbol.Map.add v ti m) (i + 1))
    in
    loop m 0

exception Found of mapping

(* Order atoms so that the most constrained (fewest candidate target atoms)
   come first; a cheap static heuristic that pays off on large targets. *)
let order_atoms atoms target =
  let weight a =
    match Symbol.Table.find_opt target.by_pred a.Atom.pred with
    | None -> 0
    | Some l -> List.length l
  in
  List.stable_sort (fun a b -> Int.compare (weight a) (weight b)) atoms

let search ~init ~on_found atoms target =
  let atoms = order_atoms atoms target in
  let rec go m = function
    | [] -> on_found m
    | a :: rest ->
      let candidates = Option.value ~default:[] (Symbol.Table.find_opt target.by_pred a.Atom.pred) in
      let try_candidate tgt =
        match match_atom m a tgt with
        | None -> ()
        | Some m' -> go m' rest
      in
      List.iter try_candidate candidates
  in
  go init atoms

let find ?(init = Symbol.Map.empty) atoms target =
  try
    search ~init ~on_found:(fun m -> raise (Found m)) atoms target;
    None
  with Found m -> Some m

let exists ?init atoms target = Option.is_some (find ?init atoms target)

let all ?(init = Symbol.Map.empty) atoms target =
  let acc = ref [] in
  search ~init ~on_found:(fun m -> acc := m :: !acc) atoms target;
  List.rev !acc

let iter ?(init = Symbol.Map.empty) f atoms target = search ~init ~on_found:f atoms target

let apply m a =
  let subst t =
    match t with
    | Term.Const _ -> t
    | Term.Var v -> Option.value ~default:t (Symbol.Map.find_opt v m)
  in
  Atom.apply subst a
