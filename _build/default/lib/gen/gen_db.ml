open Tgd_logic
open Tgd_db

let random_facts_for rng signature ~facts_per_predicate ~domain_size =
  let inst = Instance.create () in
  List.iter
    (fun (pred, arity) ->
      for _ = 1 to facts_per_predicate do
        let t =
          Array.init arity (fun _ -> Value.const (Printf.sprintf "d%d" (Rng.int rng domain_size)))
        in
        ignore (Instance.add_fact inst pred t)
      done)
    signature;
  inst

let random_instance rng p ~facts_per_predicate ~domain_size =
  let inst = random_facts_for rng (Program.predicates p) ~facts_per_predicate ~domain_size in
  (* Sprinkle the program's own constants so that constant joins in rules
     can fire. *)
  let constants = Symbol.Set.elements (Program.constants p) in
  if constants <> [] then
    List.iter
      (fun (pred, arity) ->
        for _ = 1 to max 1 (facts_per_predicate / 10) do
          let t =
            Array.init arity (fun _ ->
                if Rng.bool rng 0.5 then Value.Const (Rng.choose rng constants)
                else Value.const (Printf.sprintf "d%d" (Rng.int rng domain_size)))
          in
          ignore (Instance.add_fact inst pred t)
        done)
      (Program.predicates p);
  inst
