type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy g = { state = g.state }

(* SplitMix64 step. *)
let next64 g =
  g.state <- Int64.add g.state 0x9E3779B97F4A7C15L;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int g n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits: OCaml's native int is 63-bit, so a 63-bit logical shift
     could still land on the sign bit after [Int64.to_int]. *)
  let v = Int64.to_int (Int64.shift_right_logical (next64 g) 2) in
  v mod n

let float g =
  let v = Int64.to_float (Int64.shift_right_logical (next64 g) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool g p = float g < p

let choose g l =
  match l with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ -> List.nth l (int g (List.length l))

let choose_array g a =
  if Array.length a = 0 then invalid_arg "Rng.choose_array: empty array";
  a.(int g (Array.length a))

let shuffle g l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
