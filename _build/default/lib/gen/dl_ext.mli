(** An extended description logic beyond DL-Lite — the paper's closing
    observation for Section 6: "the class of WR TGDs allows for the
    identification of new FO-rewritable Description Logic languages".

    On top of DL-Lite_R this logic adds, on either side of an inclusion:
    - {b conjunction} on the left-hand side ([A ⊓ B ⊑ C]), translated to a
      multi-atom TGD body — immediately outside DL-Lite and outside the
      linear TGD class;
    - {b qualified existential restrictions} ([∃R.A]), translated to a
      two-atom body ([r(x,y), a(y)]) on the left or a two-atom head
      ([r(x,z), a(z)]) on the right — outside simple TGDs (multi-atom
      heads);
    - {b disjointness} ([disj B C]), translated to a negative constraint
      body rather than a TGD.

    The translation of a TBox is in general {e not} linear, simple, sticky
    or DL-Lite-expressible, yet large fractions of random TBoxes (and the
    hand-written clinic exemplar) are WR — which is exactly the modeling
    value the paper claims for the class. Unrestricted qualified-existential
    recursion ([∃R.A ⊑ A]) is EL-style and not FO-rewritable; the classifier
    correctly rejects such TBoxes, see the tests. *)

open Tgd_logic

type role =
  | Role of string
  | Inv of string

type concept =
  | Atomic of string
  | Exists of role  (** unqualified: [∃R] *)
  | Exists_in of role * string  (** qualified: [∃R.A] *)

type axiom =
  | Incl of concept list * concept
      (** [Incl (lhs, rhs)]: the conjunction of [lhs] is included in [rhs];
          [lhs] must be non-empty. *)
  | Role_incl of role * role
  | Disjoint of concept * concept

type tbox = axiom list

val to_tgds : tbox -> Tgd.t list * Atom.t list list
(** The positive axioms as TGDs and the disjointness axioms as negative-
    constraint bodies. *)

val to_program : ?name:string -> tbox -> Program.t * Atom.t list list

val clinic : tbox
(** A hand-written exemplar: a clinical-trial TBox using conjunction and
    qualified existentials. Its translation is WR (tested) but neither
    simple, linear, sticky, sticky-join nor DL-Lite-expressible. *)

val random_tbox :
  Rng.t -> n_concepts:int -> n_roles:int -> n_axioms:int -> ?allow_recursion:bool -> unit -> tbox
(** Random extended TBoxes. With [allow_recursion] (default [false]) the
    generator may produce qualified-existential recursion, which typically
    breaks FO-rewritability — useful for exercising the negative side of the
    classifier. *)

val pp_axiom : Format.formatter -> axiom -> unit
