(** Deterministic SplitMix64 PRNG. All workload generators take an explicit
    generator so that every experiment is reproducible from its seed. *)

type t

val create : int -> t
(** Seeded generator. *)

val copy : t -> t

val int : t -> int -> int
(** [int g n] is uniform in [0, n); [n] must be positive. *)

val bool : t -> float -> bool
(** [bool g p] is [true] with probability [p]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val choose : t -> 'a list -> 'a
(** Uniform element; the list must be non-empty. *)

val choose_array : t -> 'a array -> 'a
val shuffle : t -> 'a list -> 'a list
