open Tgd_logic

type role =
  | Role of string
  | Inv of string

type concept =
  | Atomic of string
  | Exists of role
  | Exists_in of role * string

type axiom =
  | Incl of concept list * concept
  | Role_incl of role * role
  | Disjoint of concept * concept

type tbox = axiom list

let x = Term.var "X"
let y = Term.var "Y"
let z = Term.var "Z"

let role_atom r subj obj =
  match r with
  | Role name -> Atom.of_strings name [ subj; obj ]
  | Inv name -> Atom.of_strings name [ obj; subj ]

(* Atoms stating that [subject] belongs to the concept; [fresh] supplies the
   witness variable for existentials. *)
let concept_atoms concept ~subject ~fresh =
  match concept with
  | Atomic a -> [ Atom.of_strings a [ subject ] ]
  | Exists r -> [ role_atom r subject fresh ]
  | Exists_in (r, a) -> [ role_atom r subject fresh; Atom.of_strings a [ fresh ] ]

let counter = ref 0

let fresh_name () =
  incr counter;
  Printf.sprintf "ext%d" !counter

let axiom_to_item ax =
  match ax with
  | Incl (lhs, rhs) ->
    if lhs = [] then invalid_arg "Dl_ext: empty left-hand side";
    (* Left conjuncts share the subject X; each gets its own witness
       variable so that distinct existentials stay distinct. *)
    let body =
      List.concat
        (List.mapi
           (fun i c -> concept_atoms c ~subject:x ~fresh:(Term.var (Printf.sprintf "Y%d" i)))
           lhs)
    in
    let head = concept_atoms rhs ~subject:x ~fresh:z in
    `Tgd (Tgd.make ~name:(fresh_name ()) ~body ~head)
  | Role_incl (r1, r2) ->
    `Tgd (Tgd.make ~name:(fresh_name ()) ~body:[ role_atom r1 x y ] ~head:[ role_atom r2 x y ])
  | Disjoint (c1, c2) ->
    let body =
      concept_atoms c1 ~subject:x ~fresh:(Term.var "Y0")
      @ concept_atoms c2 ~subject:x ~fresh:(Term.var "Y1")
    in
    `Constraint body

let to_tgds tbox =
  List.fold_right
    (fun ax (tgds, ncs) ->
      match axiom_to_item ax with
      | `Tgd r -> (r :: tgds, ncs)
      | `Constraint body -> (tgds, body :: ncs))
    tbox ([], [])

let to_program ?(name = "dl_ext") tbox =
  let tgds, ncs = to_tgds tbox in
  (Program.make_exn ~name tgds, ncs)

(* A clinical-trials TBox:
   - trial participants are patients enrolled in some trial;
   - someone who conducts a trial and holds a licence is an investigator;
   - investigators are physicians; physicians and patients are persons;
   - every trial is overseen by some board-certified reviewer;
   - patients treated by an investigator get a case file;
   - physicians are never trial participants of their own study
     (simplified: physicians and participants are disjoint). *)
let clinic =
  [
    Incl ([ Atomic "participant" ], Atomic "patient");
    Incl ([ Atomic "participant" ], Exists (Role "enrolled_in"));
    Incl ([ Exists_in (Role "enrolled_in", "trial") ], Atomic "participant");
    Incl ([ Exists_in (Role "conducts", "trial"); Atomic "licensed" ], Atomic "investigator");
    Incl ([ Atomic "investigator" ], Atomic "physician");
    Incl ([ Atomic "physician" ], Atomic "person");
    Incl ([ Atomic "patient" ], Atomic "person");
    Incl ([ Atomic "trial" ], Exists_in (Role "overseen_by", "reviewer"));
    Incl ([ Exists_in (Inv "treats", "investigator") ], Exists (Role "has_case_file"));
    Disjoint (Atomic "physician", Atomic "participant");
  ]

let random_tbox rng ~n_concepts ~n_roles ~n_axioms ?(allow_recursion = false) () =
  let concepts = List.init n_concepts (fun i -> Printf.sprintf "c%d" i) in
  let roles = List.init n_roles (fun i -> Printf.sprintf "r%d" i) in
  let random_role () =
    let r = Rng.choose rng roles in
    if Rng.bool rng 0.3 then Inv r else Role r
  in
  (* Stratify concepts to avoid qualified-existential recursion: a qualified
     existential on the left may only produce a concept strictly higher in
     the order, unless recursion is allowed. *)
  let index c =
    match List.find_index (String.equal c) concepts with Some i -> i | None -> 0
  in
  let random_concept ?(max_index = n_concepts) () =
    let candidates = List.filter (fun c -> index c < max_index) concepts in
    let candidates = if candidates = [] then concepts else candidates in
    match Rng.int rng 4 with
    | 0 -> Exists (random_role ())
    | 1 -> Exists_in (random_role (), Rng.choose rng candidates)
    | _ -> Atomic (Rng.choose rng candidates)
  in
  List.init n_axioms (fun _ ->
      match Rng.int rng 10 with
      | 0 -> Role_incl (random_role (), random_role ())
      | 1 -> Disjoint (random_concept (), random_concept ())
      | _ ->
        let n_conjuncts = 1 + Rng.int rng 2 in
        let lhs = List.init n_conjuncts (fun _ -> random_concept ()) in
        (* The RHS must sit above every qualified concept of the LHS in the
           stratification (unless recursion is allowed). *)
        let floor_ =
          if allow_recursion then 0
          else
            List.fold_left
              (fun acc c ->
                match c with
                | Exists_in (_, a) -> max acc (index a + 1)
                | Atomic a -> max acc (index a + 1)
                | Exists _ -> acc)
              0 lhs
        in
        let rhs =
          if floor_ >= n_concepts then Exists (random_role ())
          else
            match Rng.int rng 3 with
            | 0 -> Exists (random_role ())
            | 1 -> Exists_in (random_role (), List.nth concepts (floor_ + Rng.int rng (n_concepts - floor_)))
            | _ -> Atomic (List.nth concepts (floor_ + Rng.int rng (n_concepts - floor_)))
        in
        Incl (lhs, rhs))

let pp_role ppf = function
  | Role r -> Format.pp_print_string ppf r
  | Inv r -> Format.fprintf ppf "%s-" r

let pp_concept ppf = function
  | Atomic a -> Format.pp_print_string ppf a
  | Exists r -> Format.fprintf ppf "exists %a" pp_role r
  | Exists_in (r, a) -> Format.fprintf ppf "exists %a.%s" pp_role r a

let pp_axiom ppf = function
  | Incl (lhs, rhs) ->
    Format.fprintf ppf "%a [= %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ")
         pp_concept)
      lhs pp_concept rhs
  | Role_incl (r1, r2) -> Format.fprintf ppf "%a [= %a" pp_role r1 pp_role r2
  | Disjoint (c1, c2) -> Format.fprintf ppf "disjoint(%a, %a)" pp_concept c1 pp_concept c2
