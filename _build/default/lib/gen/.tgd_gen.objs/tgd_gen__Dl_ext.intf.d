lib/gen/dl_ext.mli: Atom Format Program Rng Tgd Tgd_logic
