lib/gen/dl_ext.ml: Atom Format List Printf Program Rng String Term Tgd Tgd_logic
