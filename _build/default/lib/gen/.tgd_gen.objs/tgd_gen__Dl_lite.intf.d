lib/gen/dl_lite.mli: Format Program Rng Tgd Tgd_chase Tgd_logic
