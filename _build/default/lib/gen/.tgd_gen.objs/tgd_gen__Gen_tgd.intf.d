lib/gen/gen_tgd.mli: Program Rng Tgd_logic
