lib/gen/university.ml: Array Atom Cq Instance List Printf Program Rng Symbol Term Tgd Tgd_db Tgd_logic Value
