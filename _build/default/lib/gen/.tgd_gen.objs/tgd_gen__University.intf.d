lib/gen/university.mli: Cq Instance Program Rng Tgd_db Tgd_logic
