lib/gen/rng.mli:
