lib/gen/dl_lite.ml: Atom Format List Printf Program Rng Term Tgd Tgd_chase Tgd_logic
