lib/gen/gen_db.ml: Array Instance List Printf Program Rng Symbol Tgd_db Tgd_logic Value
