lib/gen/gen_tgd.ml: Array Atom Hashtbl List Printf Program Rng Symbol Term Tgd Tgd_logic
