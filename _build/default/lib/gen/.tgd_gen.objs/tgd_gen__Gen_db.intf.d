lib/gen/gen_db.mli: Instance Program Rng Symbol Tgd_db Tgd_logic
