(** DL-Lite_R (positive inclusions) and its standard translation to linear
    TGDs — the paper's motivating comparison point: DL-Lite is
    FO-rewritable, and every translated TBox lands in the linear fragment,
    hence in SWR (Section 5). *)

open Tgd_logic

type role =
  | Role of string
  | Inv of string  (** inverse role *)

type concept =
  | Atomic of string
  | Exists of role  (** unqualified existential restriction *)

type axiom =
  | Concept_incl of concept * concept
  | Role_incl of role * role

type tbox = axiom list

val to_tgds : tbox -> Tgd.t list
(** Concepts become unary predicates, roles binary predicates. Every
    produced TGD is linear and simple. *)

val to_program : ?name:string -> tbox -> Program.t

val random_tbox : Rng.t -> n_concepts:int -> n_roles:int -> n_axioms:int -> tbox

val functionality : ?name:string -> role -> Tgd_chase.Egd.t
(** DL-Lite_F's functionality axiom [funct R] as an EGD:
    [r(x,y), r(x,z) -> y = z] (keyed on the second position for inverse
    roles). Functionality axioms are separable in DL-Lite_F: they are used
    for consistency checking ({!Tgd_chase.Egd_chase.check_consistency}), not
    during rewriting. *)

val pp_axiom : Format.formatter -> axiom -> unit
