(** A LUBM-style university ontology and data generator — the end-to-end
    OBDA scenario (experiment E8): the TGDs are FO-rewritable, so certain
    answers computed by rewriting + evaluation must coincide with chase
    materialization.

    The data generator produces only facts over the "extensional" predicates
    (enrollments, teaching assignments, memberships, role tags); all
    taxonomy predicates (person, faculty, organization, ...) are derived by
    the ontology — a query for [person] finds nothing without reasoning. *)

open Tgd_logic
open Tgd_db

val ontology : Program.t

val queries : Cq.t list
(** LUBM-flavoured test queries over the ontology vocabulary. *)

val generate_data : Rng.t -> scale:int -> Instance.t
(** Roughly [scale] students with their courses, advisors, departments;
    fact count grows linearly with [scale]. *)
