(** Random database instances over a program's signature. *)

open Tgd_logic
open Tgd_db

val random_instance :
  Rng.t -> Program.t -> facts_per_predicate:int -> domain_size:int -> Instance.t
(** Uniform random tuples over a constant domain [d0..d{domain_size-1}]
    (plus the program's own constants, which appear with small
    probability). *)

val random_facts_for :
  Rng.t -> (Symbol.t * int) list -> facts_per_predicate:int -> domain_size:int -> Instance.t
