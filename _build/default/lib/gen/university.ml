open Tgd_logic
open Tgd_db

let v = Term.var
let atom p args = Atom.of_strings p args

let rule name body head = Tgd.make ~name ~body ~head

let ontology =
  let rules =
    [
      (* Faculty taxonomy. *)
      rule "full_prof" [ atom "full_professor" [ v "X" ] ] [ atom "professor" [ v "X" ] ];
      rule "assoc_prof" [ atom "associate_professor" [ v "X" ] ] [ atom "professor" [ v "X" ] ];
      rule "prof_fac" [ atom "professor" [ v "X" ] ] [ atom "faculty" [ v "X" ] ];
      rule "lect_fac" [ atom "lecturer" [ v "X" ] ] [ atom "faculty" [ v "X" ] ];
      rule "fac_emp" [ atom "faculty" [ v "X" ] ] [ atom "employee" [ v "X" ] ];
      rule "emp_person" [ atom "employee" [ v "X" ] ] [ atom "person" [ v "X" ] ];
      (* Student taxonomy. *)
      rule "under_stud" [ atom "undergraduate" [ v "X" ] ] [ atom "student" [ v "X" ] ];
      rule "grad_stud" [ atom "graduate" [ v "X" ] ] [ atom "student" [ v "X" ] ];
      rule "stud_person" [ atom "student" [ v "X" ] ] [ atom "person" [ v "X" ] ];
      (* Organizations. *)
      rule "dept_org" [ atom "department" [ v "X" ] ] [ atom "organization" [ v "X" ] ];
      rule "univ_org" [ atom "university" [ v "X" ] ] [ atom "organization" [ v "X" ] ];
      (* Role domains and ranges. *)
      rule "teach_dom"
        [ atom "teacher_of" [ v "X"; v "Y" ] ]
        [ atom "faculty" [ v "X" ]; atom "course" [ v "Y" ] ];
      rule "takes_dom"
        [ atom "takes_course" [ v "X"; v "Y" ] ]
        [ atom "student" [ v "X" ]; atom "course" [ v "Y" ] ];
      rule "advisor_dom"
        [ atom "advisor" [ v "X"; v "Y" ] ]
        [ atom "student" [ v "X" ]; atom "faculty" [ v "Y" ] ];
      rule "works_dom"
        [ atom "works_for" [ v "X"; v "Y" ] ]
        [ atom "employee" [ v "X" ]; atom "organization" [ v "Y" ] ];
      rule "member_dom"
        [ atom "member_of" [ v "X"; v "Y" ] ]
        [ atom "person" [ v "X" ]; atom "organization" [ v "Y" ] ];
      rule "sub_org"
        [ atom "sub_organization_of" [ v "X"; v "Y" ] ]
        [ atom "organization" [ v "X" ]; atom "organization" [ v "Y" ] ];
      rule "head_works" [ atom "head_of" [ v "X"; v "Y" ] ] [ atom "works_for" [ v "X"; v "Y" ] ];
      (* Existential axioms: value invention. *)
      rule "fac_teaches" [ atom "faculty" [ v "X" ] ] [ atom "teacher_of" [ v "X"; v "C" ] ];
      rule "emp_works" [ atom "employee" [ v "X" ] ] [ atom "works_for" [ v "X"; v "O" ] ];
      rule "stud_member" [ atom "student" [ v "X" ] ] [ atom "member_of" [ v "X"; v "O" ] ];
      rule "dept_in_univ"
        [ atom "department" [ v "X" ] ]
        [ atom "sub_organization_of" [ v "X"; v "U" ] ];
      (* Research and publications. *)
      rule "group_org" [ atom "research_group" [ v "X" ] ] [ atom "organization" [ v "X" ] ];
      rule "group_in_dept"
        [ atom "research_group" [ v "X" ] ]
        [ atom "sub_organization_of" [ v "X"; v "D" ] ];
      rule "ta_dom"
        [ atom "teaching_assistant_of" [ v "X"; v "C" ] ]
        [ atom "graduate" [ v "X" ]; atom "course" [ v "C" ] ];
      rule "ra_grad" [ atom "research_assistant" [ v "X" ] ] [ atom "graduate" [ v "X" ] ];
      rule "author_dom"
        [ atom "author_of" [ v "X"; v "P" ] ]
        [ atom "person" [ v "X" ]; atom "publication" [ v "P" ] ];
      rule "degree_dom"
        [ atom "degree_from" [ v "X"; v "U" ] ]
        [ atom "person" [ v "X" ]; atom "university" [ v "U" ] ];
      rule "grad_degree" [ atom "graduate" [ v "X" ] ] [ atom "degree_from" [ v "X"; v "U" ] ];
      (* A multi-atom-body derived role: department chairs. *)
      rule "chair_def"
        [ atom "professor" [ v "X" ]; atom "head_of" [ v "X"; v "D" ]; atom "department" [ v "D" ] ]
        [ atom "chair" [ v "X" ] ];
      rule "chair_prof" [ atom "chair" [ v "X" ] ] [ atom "professor" [ v "X" ] ];
    ]
  in
  Program.make_exn ~name:"university" rules

let queries =
  [
    (* Q1: all persons. Requires the full taxonomy. *)
    Cq.make ~name:"q1_persons" ~answer:[ v "X" ] ~body:[ atom "person" [ v "X" ] ];
    (* Q2: students with the organization they are members of. *)
    Cq.make ~name:"q2_membership" ~answer:[ v "X"; v "O" ]
      ~body:[ atom "student" [ v "X" ]; atom "member_of" [ v "X"; v "O" ] ];
    (* Q3: advisor pairs where the advisor teaches some course. *)
    Cq.make ~name:"q3_advised_teaching" ~answer:[ v "S"; v "A" ]
      ~body:[ atom "advisor" [ v "S"; v "A" ]; atom "teacher_of" [ v "A"; v "C" ] ];
    (* Q4: boolean — is there a professor working for some organization? *)
    Cq.make ~name:"q4_prof_org" ~answer:[]
      ~body:[ atom "professor" [ v "X" ]; atom "works_for" [ v "X"; v "O" ] ];
    (* Q5: classmates: two students taking the same course. *)
    Cq.make ~name:"q5_classmates" ~answer:[ v "X"; v "Y" ]
      ~body:[ atom "takes_course" [ v "X"; v "C" ]; atom "takes_course" [ v "Y"; v "C" ] ];
    (* Q6: department chairs (multi-atom-body rule). *)
    Cq.make ~name:"q6_chairs" ~answer:[ v "X" ] ~body:[ atom "chair" [ v "X" ] ];
    (* Q7: graduates holding a degree from somewhere (existential axiom:
       true of every graduate, but only constants count as answers). *)
    Cq.make ~name:"q7_degrees" ~answer:[ v "X"; v "U" ]
      ~body:[ atom "graduate" [ v "X" ]; atom "degree_from" [ v "X"; v "U" ] ];
    (* Q8: authors publishing with their advisor. *)
    Cq.make ~name:"q8_coauthors" ~answer:[ v "S"; v "A" ]
      ~body:
        [
          atom "advisor" [ v "S"; v "A" ];
          atom "author_of" [ v "S"; v "P" ];
          atom "author_of" [ v "A"; v "P" ];
        ];
  ]

let generate_data rng ~scale =
  let inst = Instance.create () in
  let add pred values =
    ignore (Instance.add_fact inst (Symbol.intern pred) (Array.of_list (List.map Value.const values)))
  in
  let n_univ = max 1 (scale / 200) in
  let n_dept = max 2 (scale / 20) in
  let n_faculty = max 3 (scale / 5) in
  let n_course = max 4 (scale / 3) in
  let univ i = Printf.sprintf "univ%d" i in
  let dept i = Printf.sprintf "dept%d" i in
  let fac i = Printf.sprintf "fac%d" i in
  let course i = Printf.sprintf "course%d" i in
  let student i = Printf.sprintf "student%d" i in
  for i = 0 to n_univ - 1 do
    add "university" [ univ i ]
  done;
  for i = 0 to n_dept - 1 do
    add "department" [ dept i ];
    add "sub_organization_of" [ dept i; univ (Rng.int rng n_univ) ]
  done;
  for i = 0 to n_faculty - 1 do
    let tag =
      Rng.choose rng [ "full_professor"; "associate_professor"; "lecturer" ]
    in
    add tag [ fac i ];
    add "works_for" [ fac i; dept (Rng.int rng n_dept) ];
    (match Rng.int rng 10 with 0 -> add "head_of" [ fac i; dept (Rng.int rng n_dept) ] | _ -> ())
  done;
  for i = 0 to n_course - 1 do
    add "teacher_of" [ fac (Rng.int rng n_faculty); course i ]
  done;
  let n_group = max 1 (scale / 40) in
  let n_pub = max 2 (scale / 4) in
  let group i = Printf.sprintf "group%d" i in
  let pub i = Printf.sprintf "pub%d" i in
  for i = 0 to n_group - 1 do
    add "research_group" [ group i ]
  done;
  for i = 0 to n_pub - 1 do
    (* Faculty author; sometimes a co-author. *)
    add "author_of" [ fac (Rng.int rng n_faculty); pub i ]
  done;
  for i = 0 to scale - 1 do
    let tag = if Rng.bool rng 0.7 then "undergraduate" else "graduate" in
    add tag [ student i ];
    add "member_of" [ student i; dept (Rng.int rng n_dept) ];
    let n_courses = 1 + Rng.int rng 4 in
    for _ = 1 to n_courses do
      add "takes_course" [ student i; course (Rng.int rng n_course) ]
    done;
    if Rng.bool rng 0.4 then begin
      let adv = Rng.int rng n_faculty in
      add "advisor" [ student i; fac adv ];
      (* some advised students co-author with their advisor *)
      if Rng.bool rng 0.3 then begin
        let p = Rng.int rng n_pub in
        add "author_of" [ student i; pub p ];
        add "author_of" [ fac adv; pub p ]
      end
    end;
    if tag = "graduate" then begin
      if Rng.bool rng 0.3 then add "teaching_assistant_of" [ student i; course (Rng.int rng n_course) ];
      if Rng.bool rng 0.5 then add "degree_from" [ student i; univ (Rng.int rng n_univ) ]
    end
  done;
  inst
