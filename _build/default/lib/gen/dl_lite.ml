open Tgd_logic

type role =
  | Role of string
  | Inv of string

type concept =
  | Atomic of string
  | Exists of role

type axiom =
  | Concept_incl of concept * concept
  | Role_incl of role * role

type tbox = axiom list

let x = Term.var "X"
let y = Term.var "Y"
let z = Term.var "Z"

(* The atom r(subj, obj) of a (possibly inverse) role. *)
let role_atom r subj obj =
  match r with
  | Role name -> Atom.of_strings name [ subj; obj ]
  | Inv name -> Atom.of_strings name [ obj; subj ]

let counter = ref 0

let fresh_name () =
  incr counter;
  Printf.sprintf "ax%d" !counter

let axiom_to_tgd ax =
  let name = fresh_name () in
  match ax with
  | Concept_incl (lhs, rhs) ->
    let body =
      match lhs with
      | Atomic a -> [ Atom.of_strings a [ x ] ]
      | Exists r -> [ role_atom r x y ]
    in
    let head =
      match rhs with
      | Atomic a -> [ Atom.of_strings a [ x ] ]
      | Exists r -> [ role_atom r x z ]
    in
    Tgd.make ~name ~body ~head
  | Role_incl (r1, r2) -> Tgd.make ~name ~body:[ role_atom r1 x y ] ~head:[ role_atom r2 x y ]

let to_tgds tbox = List.map axiom_to_tgd tbox

let to_program ?(name = "dl_lite") tbox = Program.make_exn ~name (to_tgds tbox)

let random_tbox rng ~n_concepts ~n_roles ~n_axioms =
  let concept_names = List.init n_concepts (fun i -> Printf.sprintf "a%d" i) in
  let role_names = List.init n_roles (fun i -> Printf.sprintf "s%d" i) in
  let random_role () =
    let r = Rng.choose rng role_names in
    if Rng.bool rng 0.3 then Inv r else Role r
  in
  let random_concept () =
    if Rng.bool rng 0.4 && n_roles > 0 then Exists (random_role ())
    else Atomic (Rng.choose rng concept_names)
  in
  List.init n_axioms (fun _ ->
      if Rng.bool rng 0.25 && n_roles > 0 then Role_incl (random_role (), random_role ())
      else Concept_incl (random_concept (), random_concept ()))

let functionality ?name role =
  match role with
  | Role r -> Tgd_chase.Egd.functional ?name r ~arity:2 ~key:[ 1 ] ~determined:2
  | Inv r -> Tgd_chase.Egd.functional ?name r ~arity:2 ~key:[ 2 ] ~determined:1

let pp_role ppf = function
  | Role r -> Format.pp_print_string ppf r
  | Inv r -> Format.fprintf ppf "%s-" r

let pp_concept ppf = function
  | Atomic a -> Format.pp_print_string ppf a
  | Exists r -> Format.fprintf ppf "exists %a" pp_role r

let pp_axiom ppf = function
  | Concept_incl (c1, c2) -> Format.fprintf ppf "%a [= %a" pp_concept c1 pp_concept c2
  | Role_incl (r1, r2) -> Format.fprintf ppf "%a [= %a" pp_role r1 pp_role r2
