type t = {
  n : int;
  edges : (int * int) array;
  out : int list array; (* edge indices, per source vertex *)
}

let make ~n ~edges =
  Array.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Int_digraph.make: endpoint out of range")
    edges;
  let out = Array.make (max n 1) [] in
  Array.iteri (fun i (u, _) -> out.(u) <- i :: out.(u)) edges;
  (* Keep edge order deterministic: indices ascending. *)
  Array.iteri (fun u l -> out.(u) <- List.rev l) out;
  { n; edges; out }

let n_vertices g = g.n
let n_edges g = Array.length g.edges
let edge g i = g.edges.(i)
let out_edges g u = g.out.(u)

let all_edges_ok _ = true

(* Iterative Tarjan. *)
let scc ?(edge_ok = all_edges_ok) g =
  let n = g.n in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  (* Explicit DFS stack: (vertex, remaining out-edges). *)
  let visit root =
    let work = ref [ (root, g.out.(root)) ] in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    stack := root :: !stack;
    on_stack.(root) <- true;
    while !work <> [] do
      match !work with
      | [] -> ()
      | (v, rest) :: tail -> (
        match rest with
        | e :: rest' when not (edge_ok e) -> work := (v, rest') :: tail
        | e :: rest' ->
          let _, w = g.edges.(e) in
          if index.(w) = -1 then begin
            index.(w) <- !next_index;
            lowlink.(w) <- !next_index;
            incr next_index;
            stack := w :: !stack;
            on_stack.(w) <- true;
            work := (w, g.out.(w)) :: (v, rest') :: tail
          end
          else begin
            if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w);
            work := (v, rest') :: tail
          end
        | [] ->
          if lowlink.(v) = index.(v) then begin
            let rec pop () =
              match !stack with
              | [] -> assert false
              | w :: rest ->
                stack := rest;
                on_stack.(w) <- false;
                comp.(w) <- !next_comp;
                if w <> v then pop ()
            in
            pop ();
            incr next_comp
          end;
          work := tail;
          (match tail with
          | (parent, _) :: _ -> lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          | [] -> ()))
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then visit v
  done;
  (comp, !next_comp)

let scc_internal_edges ?(edge_ok = all_edges_ok) g =
  let comp, ncomp = scc ~edge_ok g in
  let internal = Array.make ncomp [] in
  Array.iteri
    (fun i (u, v) ->
      if edge_ok i && comp.(u) = comp.(v) then internal.(comp.(u)) <- i :: internal.(comp.(u)))
    g.edges;
  let acc = ref [] in
  for c = ncomp - 1 downto 0 do
    if internal.(c) <> [] then acc := (c, List.rev internal.(c)) :: !acc
  done;
  !acc

exception Done

let simple_cycles ?(limit = 10_000) ?(max_steps = 1_000_000) ?(edge_ok = all_edges_ok) g =
  let cycles = ref [] in
  let count = ref 0 in
  let steps = ref 0 in
  let on_path = Array.make g.n false in
  (* Enumerate simple cycles whose minimal vertex is [root]: DFS over
     vertices >= root only. Every simple cycle is rooted at its unique
     minimal vertex, so no duplicates arise. *)
  let rec dfs root v path =
    incr steps;
    if !steps > max_steps then raise Done;
    let explore e =
      if edge_ok e then begin
        let _, w = g.edges.(e) in
        if w = root then begin
          cycles := List.rev (e :: path) :: !cycles;
          incr count;
          if !count >= limit then raise Done
        end
        else if w > root && not (on_path.(w)) then begin
          on_path.(w) <- true;
          dfs root w (e :: path);
          on_path.(w) <- false
        end
      end
    in
    List.iter explore g.out.(v)
  in
  (try
     for root = 0 to g.n - 1 do
       on_path.(root) <- true;
       dfs root root [];
       on_path.(root) <- false
     done
   with Done -> ());
  List.rev !cycles

let reachable g src =
  let seen = Array.make g.n false in
  let rec go v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter (fun e -> go (snd g.edges.(e))) g.out.(v)
    end
  in
  go src;
  seen
