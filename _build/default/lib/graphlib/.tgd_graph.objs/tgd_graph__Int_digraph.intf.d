lib/graphlib/int_digraph.mli:
