lib/graphlib/int_digraph.ml: Array List
