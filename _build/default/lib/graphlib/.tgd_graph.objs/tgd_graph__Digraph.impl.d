lib/graphlib/digraph.ml: Array Buffer Format Hashtbl Int_digraph List Option Printf String
