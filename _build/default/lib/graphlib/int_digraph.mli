(** Directed multigraphs over integer vertices [0..n-1], and the graph
    algorithms used by the acyclicity conditions.

    Edges are identified by their index in the edge array so that callers can
    attach labels and express label constraints on cycles. *)

type t

val make : n:int -> edges:(int * int) array -> t
(** [make ~n ~edges] builds a graph with vertices [0..n-1]; each [(u, v)]
    pair is one directed edge. Parallel edges and self-loops are allowed.
    Raises [Invalid_argument] if an endpoint is out of range. *)

val n_vertices : t -> int
val n_edges : t -> int
val edge : t -> int -> int * int
val out_edges : t -> int -> int list
(** Indices of the edges leaving a vertex. *)

val scc : ?edge_ok:(int -> bool) -> t -> int array * int
(** Tarjan strongly connected components, iterative. Returns the component
    id of every vertex and the number of components. Edges for which
    [edge_ok] is false are ignored (default: all edges allowed). Component
    ids are in reverse topological order of the condensation. *)

val scc_internal_edges : ?edge_ok:(int -> bool) -> t -> (int * int list) list
(** For every strongly connected component that contains at least one cycle
    (i.e. has an internal edge), the component id together with the indices
    of the edges joining two vertices of that component. *)

val simple_cycles : ?limit:int -> ?max_steps:int -> ?edge_ok:(int -> bool) -> t -> int list list
(** Enumerate simple cycles as lists of edge indices. The enumeration stops
    after [limit] cycles (default 10_000) or [max_steps] search steps
    (default 1_000_000); it is exact when neither cap is hit. Each simple
    cycle is produced exactly once, rooted at its minimal vertex. *)

val reachable : t -> int -> bool array
(** Vertices reachable from a source (including the source itself). *)
