module type NODE = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

module type LABEL = sig
  type t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Make (N : NODE) (L : LABEL) = struct
  module Tbl = Hashtbl.Make (N)

  type edge = {
    src : N.t;
    label : L.t;
    dst : N.t;
  }

  type t = {
    ids : int Tbl.t;
    mutable node_list : N.t list; (* reversed insertion order *)
    mutable n : int;
    mutable edge_list : (int * L.t * int) list; (* reversed insertion order *)
    mutable m : int;
    seen : (int * int, L.t list) Hashtbl.t; (* labels already present per (src, dst) *)
  }

  let create () =
    { ids = Tbl.create 64; node_list = []; n = 0; edge_list = []; m = 0; seen = Hashtbl.create 64 }

  let node_id g v =
    match Tbl.find_opt g.ids v with
    | Some i -> i
    | None ->
      let i = g.n in
      Tbl.add g.ids v i;
      g.node_list <- v :: g.node_list;
      g.n <- g.n + 1;
      i

  let add_node g v = ignore (node_id g v)

  let add_edge g src label dst =
    let s = node_id g src and d = node_id g dst in
    let labels = Option.value ~default:[] (Hashtbl.find_opt g.seen (s, d)) in
    if not (List.exists (L.equal label) labels) then begin
      Hashtbl.replace g.seen (s, d) (label :: labels);
      g.edge_list <- (s, label, d) :: g.edge_list;
      g.m <- g.m + 1
    end

  let mem_node g v = Tbl.mem g.ids v
  let nodes g = List.rev g.node_list
  let n_nodes g = g.n
  let n_edges g = g.m

  let node_array g =
    match g.node_list with
    | [] -> [||]
    | first :: _ ->
      let arr = Array.make g.n first in
      List.iteri (fun i v -> arr.(g.n - 1 - i) <- v) g.node_list;
      arr

  let edge_array g = Array.of_list (List.rev g.edge_list)

  let edges g =
    let names = node_array g in
    List.rev_map (fun (s, l, d) -> { src = names.(s); label = l; dst = names.(d) }) g.edge_list

  let succ g v =
    match Tbl.find_opt g.ids v with
    | None -> []
    | Some i ->
      let names = node_array g in
      List.filter_map
        (fun (s, l, d) -> if s = i then Some (l, names.(d)) else None)
        (List.rev g.edge_list)

  let to_int_graph g =
    let earr = edge_array g in
    let ig = Int_digraph.make ~n:(max g.n 1) ~edges:(Array.map (fun (s, _, d) -> (s, d)) earr) in
    (ig, earr)

  let cyclic_scc_edge_labels_filtered ~keep g =
    let ig, earr = to_int_graph g in
    let label_of i = let _, l, _ = earr.(i) in l in
    let edge_ok i = keep (label_of i) in
    Int_digraph.scc_internal_edges ~edge_ok ig
    |> List.map (fun (_, es) -> List.map label_of es)

  let cyclic_scc_edge_labels g = cyclic_scc_edge_labels_filtered ~keep:(fun _ -> true) g

  let simple_cycles ?limit ?max_steps ?(keep = fun _ -> true) g =
    let ig, earr = to_int_graph g in
    let names = node_array g in
    let edge_ok i = keep (let _, l, _ = earr.(i) in l) in
    Int_digraph.simple_cycles ?limit ?max_steps ~edge_ok ig
    |> List.map
         (List.map (fun i ->
              let s, l, d = earr.(i) in
              { src = names.(s); label = l; dst = names.(d) }))

  let dot_escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        if c = '"' || c = '\\' then begin
          Buffer.add_char buf '\\';
          Buffer.add_char buf c
        end
        else Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let to_dot ?(name = "g") g =
    let buf = Buffer.create 1024 in
    Printf.bprintf buf "digraph \"%s\" {\n" (dot_escape name);
    Array.iteri
      (fun i v ->
        Printf.bprintf buf "  n%d [label=\"%s\"];\n" i (dot_escape (Format.asprintf "%a" N.pp v)))
      (node_array g);
    List.iter
      (fun (s, l, d) ->
        Printf.bprintf buf "  n%d -> n%d [label=\"%s\"];\n" s d
          (dot_escape (Format.asprintf "%a" L.pp l)))
      (List.rev g.edge_list);
    Buffer.add_string buf "}\n";
    Buffer.contents buf
end
