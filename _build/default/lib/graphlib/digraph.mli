(** Directed labeled multigraphs over arbitrary hashable node types.

    A thin layer over {!Int_digraph}: nodes are interned to dense integer
    ids on insertion, so all algorithms run on arrays. *)

module type NODE = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

module type LABEL = sig
  type t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Make (N : NODE) (L : LABEL) : sig
  type t

  type edge = {
    src : N.t;
    label : L.t;
    dst : N.t;
  }

  val create : unit -> t
  val add_node : t -> N.t -> unit

  val add_edge : t -> N.t -> L.t -> N.t -> unit
  (** Endpoints are added as nodes if absent. Duplicate (src, label, dst)
      triples are kept once. *)

  val mem_node : t -> N.t -> bool
  val nodes : t -> N.t list
  (** In insertion order. *)

  val edges : t -> edge list
  val succ : t -> N.t -> (L.t * N.t) list
  val n_nodes : t -> int
  val n_edges : t -> int

  val cyclic_scc_edge_labels : t -> L.t list list
  (** For every strongly connected component containing at least one edge,
      the labels of its internal edges (with duplicates, one per edge). The
      acyclicity conditions of the paper are decided on top of this: a
      "cycle containing an X-edge and a Y-edge" exists iff some component's
      label multiset mentions both. *)

  val cyclic_scc_edge_labels_filtered : keep:(L.t -> bool) -> t -> L.t list list
  (** Same, but edges whose label fails [keep] are removed from the graph
      before the component decomposition (used to forbid i-edges in cycles). *)

  val simple_cycles : ?limit:int -> ?max_steps:int -> ?keep:(L.t -> bool) -> t -> edge list list
  (** Exact simple-cycle enumeration (capped); see {!Int_digraph.simple_cycles}. *)

  val to_dot : ?name:string -> t -> string
  (** Graphviz rendering; node ids are derived from [N.pp]. *)
end
