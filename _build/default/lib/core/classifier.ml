open Tgd_logic

type report = {
  program : string;
  n_rules : int;
  simple : bool;
  datalog : bool;
  linear : bool;
  guarded : bool;
  multilinear : bool;
  sticky : bool;
  sticky_join : bool;
  weakly_acyclic : bool;
  domain_restricted : bool;
  acyclic_grd : bool;
  swr : bool;
  wr : bool;
  wr_established : bool;
}

let classify ?wr_max_nodes p =
  let swr = Swr.check p in
  let wr = Wr.check ?max_nodes:wr_max_nodes p in
  {
    program = p.Program.name;
    n_rules = Program.size p;
    simple = Program.is_simple p;
    datalog = Tgd_classes.Datalog_class.check p;
    linear = Tgd_classes.Linear.check p;
    guarded = Tgd_classes.Guarded.check p;
    multilinear = Tgd_classes.Multilinear.check p;
    sticky = Tgd_classes.Sticky.sticky p;
    sticky_join = Tgd_classes.Sticky.sticky_join p;
    weakly_acyclic = Tgd_classes.Weakly_acyclic.check p;
    domain_restricted = Tgd_classes.Domain_restricted.check p;
    acyclic_grd = Tgd_classes.Rule_dependency.acyclic p;
    swr = swr.Swr.swr;
    wr = wr.Wr.wr;
    wr_established = wr.Wr.complete;
  }

(* sticky_join is deliberately absent: our checker over-approximates the
   real sticky-join class (see Tgd_classes.Sticky), so it can only certify
   non-membership, never FO-rewritability. *)
let fo_rewritable_witness r =
  let candidates =
    [
      ("linear", r.linear);
      ("multilinear", r.multilinear);
      ("sticky", r.sticky);
      ("domain-restricted", r.domain_restricted);
      ("acyclic-grd", r.acyclic_grd);
      ("swr", r.swr);
      ("wr", r.wr);
    ]
  in
  List.find_opt snd candidates |> Option.map fst

let header =
  [
    "program"; "rules"; "simple"; "datalog"; "linear"; "guarded"; "multilinear"; "sticky";
    "sticky-join"; "weakly-acyclic"; "domain-restricted"; "acyclic-grd"; "swr"; "wr";
  ]

let yn b = if b then "yes" else "no"

let to_row r =
  [
    r.program;
    string_of_int r.n_rules;
    yn r.simple;
    yn r.datalog;
    yn r.linear;
    yn r.guarded;
    yn r.multilinear;
    yn r.sticky;
    yn r.sticky_join;
    yn r.weakly_acyclic;
    yn r.domain_restricted;
    yn r.acyclic_grd;
    yn r.swr;
    (if r.wr_established then yn r.wr else "unknown");
  ]

let pp ppf r =
  List.iter2
    (fun h v -> Format.fprintf ppf "%-18s %s@." h v)
    header (to_row r)
