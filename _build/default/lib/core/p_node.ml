open Tgd_logic

type t = {
  atom : P_atom.t;
  context : P_atom.t list;
}

(* Partial key used to order context atoms before their variables are all
   named: known terms first, unknown variables compare greatest. *)
type key_term =
  | Known of P_atom.term
  | Unknown

let key_term_compare k1 k2 =
  match k1, k2 with
  | Known t1, Known t2 -> P_atom.term_compare t1 t2
  | Known _, Unknown -> -1
  | Unknown, Known _ -> 1
  | Unknown, Unknown -> 0

let canonicalize ~sigma ~context ~tracked =
  let mapping : P_atom.term Symbol.Table.t = Symbol.Table.create 8 in
  (match tracked with None -> () | Some v -> Symbol.Table.add mapping v P_atom.Z);
  let next = ref 0 in
  let assign v =
    match Symbol.Table.find_opt mapping v with
    | Some t -> t
    | None ->
      incr next;
      let t = P_atom.X !next in
      Symbol.Table.add mapping v t;
      t
  in
  let rename_atom (a : Atom.t) : P_atom.t =
    {
      P_atom.pred = a.Atom.pred;
      args =
        Array.map
          (fun t -> match t with Term.Const c -> P_atom.C c | Term.Var v -> assign v)
          a.Atom.args;
    }
  in
  let sigma' = rename_atom sigma in
  (* Name the remaining context variables in a deterministic order: always
     process the atom whose partial key is minimal. *)
  let partial_key (a : Atom.t) =
    ( Symbol.hash a.Atom.pred,
      Atom.arity a,
      Array.to_list
        (Array.map
           (fun t ->
             match t with
             | Term.Const c -> Known (P_atom.C c)
             | Term.Var v -> (
               match Symbol.Table.find_opt mapping v with
               | Some t -> Known t
               | None -> Unknown))
           a.Atom.args) )
  in
  let key_compare (p1, n1, k1) (p2, n2, k2) =
    let c = Int.compare p1 p2 in
    if c <> 0 then c
    else
      let c = Int.compare n1 n2 in
      if c <> 0 then c else List.compare key_term_compare k1 k2
  in
  let rec process remaining acc =
    match remaining with
    | [] -> acc
    | _ ->
      let best =
        List.fold_left
          (fun best a ->
            match best with
            | None -> Some a
            | Some b -> if key_compare (partial_key a) (partial_key b) < 0 then Some a else best)
          None remaining
      in
      (match best with
      | None -> acc
      | Some a ->
        let rest = List.filter (fun a' -> not (a' == a)) remaining in
        process rest (rename_atom a :: acc))
  in
  let context' = process context [] in
  let context' = List.sort_uniq P_atom.compare context' in
  { atom = sigma'; context = context' }

let unbounded_count node =
  (* Occurrence count of each canonical variable over the whole context. *)
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (a : P_atom.t) ->
      List.iter
        (fun i -> Hashtbl.replace counts i (1 + Option.value ~default:0 (Hashtbl.find_opt counts i)))
        (P_atom.x_vars a))
    node.context;
  Array.fold_left
    (fun acc t ->
      match t with
      | P_atom.Z -> acc + 1
      | P_atom.X i -> if Option.value ~default:0 (Hashtbl.find_opt counts i) = 1 then acc + 1 else acc
      | P_atom.C _ -> acc)
    0 node.atom.P_atom.args

let equal n1 n2 = P_atom.equal n1.atom n2.atom && List.equal P_atom.equal n1.context n2.context

let compare n1 n2 =
  let c = P_atom.compare n1.atom n2.atom in
  if c <> 0 then c else List.compare P_atom.compare n1.context n2.context

let hash n = List.fold_left (fun h a -> (h * 31) + P_atom.hash a) (P_atom.hash n.atom) n.context

let pp ppf n =
  Format.fprintf ppf "<%a | %a>" P_atom.pp n.atom
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") P_atom.pp)
    n.context

let to_string n = Format.asprintf "%a" pp n

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
