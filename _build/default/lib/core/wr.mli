(** Weakly Recursive TGDs (Definition 8): a set [P] of TGDs is WR if the
    P-node graph of [P] has no cycle that contains a d-edge, an m-edge and
    an s-edge while containing no i-edge.

    As for SWR, "cycle" is decided per strongly connected component after
    removing i-edges (closed-walk reading), with an exact simple-cycle
    cross-check available. When the graph construction hits its node budget
    the verdict is reported as not established ([complete = false]) and [wr]
    is conservatively [false]. *)

open Tgd_logic

type verdict = {
  dangerous : bool;
  wr : bool;
  complete : bool;
  graph : P_node_graph.result;
}

val check : ?max_nodes:int -> Program.t -> verdict

val dangerous_cycle_in_graph : P_node_graph.G.t -> bool

val check_exact : ?limit:int -> P_node_graph.G.t -> bool option
(** Simple-cycle reading of Definition 8 by bounded enumeration:
    [Some true] if a simple i-edge-free cycle carries d, m and s; [Some
    false] if the exhaustive enumeration finds none; [None] on budget
    exhaustion. *)
