
let find_cycle cycles has_all = List.find_opt has_all cycles

let swr_witness g =
  let cycles = Position_graph.G.simple_cycles ~limit:10_000 g in
  let has_all cycle =
    List.exists (fun (e : Position_graph.G.edge) -> e.Position_graph.G.label.Position_graph.m) cycle
    && List.exists (fun (e : Position_graph.G.edge) -> e.Position_graph.G.label.Position_graph.s) cycle
  in
  find_cycle cycles has_all

let wr_witness g =
  let keep (l : P_node_graph.label) = not l.P_node_graph.i in
  let cycles = P_node_graph.G.simple_cycles ~limit:10_000 ~keep g in
  let has_all cycle =
    let has f = List.exists (fun (e : P_node_graph.G.edge) -> f e.P_node_graph.G.label) cycle in
    has (fun l -> l.P_node_graph.d) && has (fun l -> l.P_node_graph.m) && has (fun l -> l.P_node_graph.s)
  in
  find_cycle cycles has_all

let pp_position_cycle ppf cycle =
  List.iter
    (fun (e : Position_graph.G.edge) ->
      Format.fprintf ppf "    %s --[%s]--> %s@."
        (Position.to_string e.Position_graph.G.src)
        (Format.asprintf "%a" Position_graph.Label.pp e.Position_graph.G.label)
        (Position.to_string e.Position_graph.G.dst))
    cycle

let pp_pnode_cycle ppf cycle =
  List.iter
    (fun (e : P_node_graph.G.edge) ->
      Format.fprintf ppf "    %s --[%s]--> %s@."
        (P_node.to_string e.P_node_graph.G.src)
        (Format.asprintf "%a" P_node_graph.Label.pp e.P_node_graph.G.label)
        (P_node.to_string e.P_node_graph.G.dst))
    cycle

let describe ?wr_max_nodes p =
  let buf = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer buf in
  let report = Classifier.classify ?wr_max_nodes p in
  Classifier.pp ppf report;
  (match Classifier.fo_rewritable_witness report with
  | Some w -> Format.fprintf ppf "=> FO-rewritable (witness: %s)@." w
  | None -> Format.fprintf ppf "=> FO-rewritability not established by any implemented class@.");
  if report.Classifier.simple && not report.Classifier.swr then begin
    let v = Swr.check p in
    match swr_witness v.Swr.graph with
    | Some cycle ->
      Format.fprintf ppf "@.dangerous position-graph cycle (m- and s-edges):@.";
      pp_position_cycle ppf cycle
    | None -> ()
  end;
  if not report.Classifier.wr then begin
    let w = Wr.check ?max_nodes:wr_max_nodes p in
    match wr_witness w.Wr.graph.P_node_graph.graph with
    | Some cycle ->
      Format.fprintf ppf "@.dangerous P-node-graph cycle (s-, m-, d-edges; no i-edge):@.";
      pp_pnode_cycle ppf cycle
    | None -> ()
  end;
  Format.pp_print_flush ppf ();
  Buffer.contents buf
