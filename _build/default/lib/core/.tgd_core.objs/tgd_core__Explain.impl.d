lib/core/explain.ml: Buffer Classifier Format List P_node P_node_graph Position Position_graph Swr Wr
