lib/core/swr.ml: List Position_graph Program Tgd_logic
