lib/core/p_atom.ml: Array Format Int Symbol Tgd_logic
