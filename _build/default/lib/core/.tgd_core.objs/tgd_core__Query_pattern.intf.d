lib/core/query_pattern.mli: Atom Cq Format Program Symbol Tgd_logic Tgd_rewrite
