lib/core/query_pattern.ml: Array Atom Cq Format List Printf Program String Symbol Term Tgd_logic Tgd_rewrite
