lib/core/p_node.mli: Atom Format Hashtbl P_atom Symbol Tgd_logic
