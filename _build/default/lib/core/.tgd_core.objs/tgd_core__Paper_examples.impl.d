lib/core/paper_examples.ml: Atom Cq List Program Term Tgd Tgd_logic
