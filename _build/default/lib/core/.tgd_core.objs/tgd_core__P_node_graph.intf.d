lib/core/p_node_graph.mli: Format P_node Program Tgd_graph Tgd_logic
