lib/core/p_node_graph.ml: Array Atom Format List P_atom P_node Printf Program Queue String Subst Symbol Term Tgd Tgd_graph Tgd_logic Unify
