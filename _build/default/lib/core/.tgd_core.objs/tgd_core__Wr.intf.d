lib/core/wr.mli: P_node_graph Program Tgd_logic
