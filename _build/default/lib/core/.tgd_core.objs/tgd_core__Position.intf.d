lib/core/position.mli: Format Symbol Tgd_logic
