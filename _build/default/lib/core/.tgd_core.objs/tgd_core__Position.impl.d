lib/core/position.ml: Format Int Symbol Tgd_logic
