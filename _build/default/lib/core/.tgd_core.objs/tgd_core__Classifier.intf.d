lib/core/classifier.mli: Format Program Tgd_logic
