lib/core/p_node.ml: Array Atom Format Hashtbl Int List Option P_atom Symbol Term Tgd_logic
