lib/core/position_graph.mli: Format Position Program Tgd_graph Tgd_logic
