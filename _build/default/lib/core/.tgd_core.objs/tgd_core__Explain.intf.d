lib/core/explain.mli: P_node_graph Position_graph Program Tgd_logic
