lib/core/position_graph.ml: Array Atom Format Hashtbl List Position Program Queue String Symbol Term Tgd Tgd_graph Tgd_logic
