lib/core/swr.mli: Position_graph Program Tgd_logic
