lib/core/wr.ml: List P_node_graph
