lib/core/classifier.ml: Format List Option Program Swr Tgd_classes Tgd_logic Wr
