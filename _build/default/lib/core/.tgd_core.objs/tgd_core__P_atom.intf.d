lib/core/p_atom.mli: Format Symbol Tgd_logic
