lib/core/paper_examples.mli: Cq Program Tgd_logic
