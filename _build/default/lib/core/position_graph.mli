(** The position graph [AG(P)] of a set of simple TGDs (Definition 4).

    Nodes are positions; an edge from [sigma] to [sigma'] approximates one
    query-rewriting step transforming an atom abstracted by [sigma] into an
    atom abstracted by [sigma']. Edge labels record dangerous behaviours of
    the step: [m] ("missing" — some distinguished variable of the rule does
    not occur in the generated body atom) and [s] ("splitting" — an
    existential variable is spread over at least two body atoms).

    The construction follows Definition 4 verbatim for simple TGDs and is
    mildly generalized to arbitrary single-head TGDs (repeated variables and
    constants are tolerated; R-compatibility of [r[i]] still demands a
    distinguished variable at position [i] of the head). Multi-head TGDs are
    handled per head atom. The generalization exists to reproduce Figure 2,
    where the paper applies the position graph to a non-simple set to show
    why it fails there; {!Swr.check} still refuses non-simple programs. *)

open Tgd_logic

type label = {
  m : bool;
  s : bool;
}

module Label : sig
  type t = label

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module G : module type of Tgd_graph.Digraph.Make (Position) (Label)

val build : Program.t -> G.t

val edge_list : G.t -> (string * string * string) list
(** Edges as [(source, target, label)] strings, sorted — a convenient form
    for golden tests against the paper's figures. *)
