open Tgd_logic

type t =
  | Whole of Symbol.t
  | At of Symbol.t * int

let rel = function Whole r -> r | At (r, _) -> r

let equal p1 p2 =
  match p1, p2 with
  | Whole r1, Whole r2 -> Symbol.equal r1 r2
  | At (r1, i1), At (r2, i2) -> Symbol.equal r1 r2 && Int.equal i1 i2
  | Whole _, At _ | At _, Whole _ -> false

let compare p1 p2 =
  match p1, p2 with
  | Whole r1, Whole r2 -> Symbol.compare r1 r2
  | At (r1, i1), At (r2, i2) ->
    let c = Symbol.compare r1 r2 in
    if c <> 0 then c else Int.compare i1 i2
  | Whole _, At _ -> -1
  | At _, Whole _ -> 1

let hash = function
  | Whole r -> 2 * Symbol.hash r
  | At (r, i) -> (2 * ((Symbol.hash r * 31) + i)) + 1

let pp ppf = function
  | Whole r -> Format.fprintf ppf "%a[ ]" Symbol.pp r
  | At (r, i) -> Format.fprintf ppf "%a[%d]" Symbol.pp r i

let to_string p = Format.asprintf "%a" pp p
