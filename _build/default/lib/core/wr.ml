
type verdict = {
  dangerous : bool;
  wr : bool;
  complete : bool;
  graph : P_node_graph.result;
}

let dangerous_cycle_in_graph g =
  P_node_graph.G.cyclic_scc_edge_labels_filtered ~keep:(fun (l : P_node_graph.label) -> not l.i) g
  |> List.exists (fun labels ->
         List.exists (fun (l : P_node_graph.label) -> l.d) labels
         && List.exists (fun (l : P_node_graph.label) -> l.m) labels
         && List.exists (fun (l : P_node_graph.label) -> l.s) labels)

let check ?max_nodes p =
  let graph = P_node_graph.build ?max_nodes p in
  let dangerous = dangerous_cycle_in_graph graph.P_node_graph.graph in
  let complete = graph.P_node_graph.complete in
  { dangerous; wr = complete && not dangerous; complete; graph }

let check_exact ?(limit = 10_000) g =
  let keep (l : P_node_graph.label) = not l.i in
  let cycles = P_node_graph.G.simple_cycles ~limit ~keep g in
  let found =
    List.exists
      (fun cycle ->
        let has f = List.exists (fun (e : P_node_graph.G.edge) -> f e.P_node_graph.G.label) cycle in
        has (fun l -> l.P_node_graph.d)
        && has (fun l -> l.P_node_graph.m)
        && has (fun l -> l.P_node_graph.s))
      cycles
  in
  if found then Some true
  else if List.length cycles >= limit then None
  else Some false
