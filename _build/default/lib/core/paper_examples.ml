open Tgd_logic

let v name = Term.var name
let atom p args = Atom.of_strings p args

let example1 =
  let r1 =
    Tgd.make ~name:"R1"
      ~body:[ atom "s" [ v "Y1"; v "Y2"; v "Y3" ]; atom "t" [ v "Y4" ] ]
      ~head:[ atom "r" [ v "Y1"; v "Y3" ] ]
  in
  let r2 =
    Tgd.make ~name:"R2"
      ~body:[ atom "v" [ v "Y1"; v "Y2" ]; atom "q" [ v "Y2" ] ]
      ~head:[ atom "s" [ v "Y1"; v "Y3"; v "Y2" ] ]
  in
  let r3 =
    Tgd.make ~name:"R3" ~body:[ atom "r" [ v "Y1"; v "Y2" ] ] ~head:[ atom "v" [ v "Y1"; v "Y2" ] ]
  in
  Program.make_exn ~name:"example1" [ r1; r2; r3 ]

let example2 =
  let r1 =
    Tgd.make ~name:"R1"
      ~body:[ atom "t" [ v "Y1"; v "Y2" ]; atom "r" [ v "Y3"; v "Y4" ] ]
      ~head:[ atom "s" [ v "Y1"; v "Y3"; v "Y2" ] ]
  in
  let r2 =
    Tgd.make ~name:"R2"
      ~body:[ atom "s" [ v "Y1"; v "Y1"; v "Y2" ] ]
      ~head:[ atom "r" [ v "Y2"; v "Y3" ] ]
  in
  Program.make_exn ~name:"example2" [ r1; r2 ]

let example2_query =
  Cq.make ~name:"q" ~answer:[] ~body:[ atom "r" [ Term.const "a"; v "X" ] ]

let example3 =
  let r1 =
    Tgd.make ~name:"R1"
      ~body:[ atom "r" [ v "Y1"; v "Y2" ] ]
      ~head:[ atom "t" [ v "Y3"; v "Y1"; v "Y1" ] ]
  in
  let r2 =
    Tgd.make ~name:"R2"
      ~body:[ atom "s" [ v "Y1"; v "Y2"; v "Y3" ] ]
      ~head:[ atom "r" [ v "Y1"; v "Y2" ] ]
  in
  let r3 =
    Tgd.make ~name:"R3"
      ~body:[ atom "u" [ v "Y1" ]; atom "t" [ v "Y1"; v "Y1"; v "Y2" ] ]
      ~head:[ atom "s" [ v "Y1"; v "Y1"; v "Y2" ] ]
  in
  Program.make_exn ~name:"example3" [ r1; r2; r3 ]

(* Figure 1, in our rendering. Nodes: r[ ], s[ ], s[2], t[ ], t[1], v[ ],
   q[ ]. Edges (Definition 4 applied to example1):
   - from r[ ] through R1: to s[ ] (plain), s[2] (existential body var Y2),
     t[ ] and t[1] (both m: Y1, Y3 missing from t(Y4); Y4 is an existential
     body variable at t[1]);
   - from s[ ] through R2: to v[ ] (plain) and q[ ] (m: Y1 missing);
   - from v[ ] through R3: to r[ ] (plain).
   s[2] has no outgoing edges: s[2]-compatibility fails because position 2
   of head(R2) holds the existential variable Y3. *)
let figure1_edges =
  List.sort compare
    [
      ("r[ ]", "s[ ]", "");
      ("r[ ]", "s[2]", "");
      ("r[ ]", "t[ ]", "m");
      ("r[ ]", "t[1]", "m");
      ("s[ ]", "v[ ]", "");
      ("s[ ]", "q[ ]", "m");
      ("v[ ]", "r[ ]", "");
    ]

(* Figure 2 shows the positions r[ ], s[ ], t[ ], r[1], r[2], s[1], s[2],
   s[3], t[1], t[2]. *)
let figure2_node_count = 10

(* Domain-restricted (rule A's head carries all body variables, rule B's
   head carries none) with an acyclic GRD (B's fresh-existential head can
   never re-trigger A: the shared variable W would force the piece to grow
   across predicates), yet the position graph has the cycle
   a[ ] --s--> h[ ] --m--> a[ ]: not SWR. *)
let dr_agrd_not_swr =
  let ra =
    Tgd.make ~name:"A"
      ~body:[ atom "a" [ v "X"; v "W" ]; atom "b" [ v "W"; v "Y" ] ]
      ~head:[ atom "h" [ v "X"; v "W"; v "Y" ] ]
  in
  let rb =
    Tgd.make ~name:"B"
      ~body:[ atom "h" [ v "U"; v "V"; v "T" ]; atom "g" [ v "U" ] ]
      ~head:[ atom "a" [ v "Z1"; v "Z2" ] ]
  in
  Program.make_exn ~name:"dr_agrd_not_swr" [ ra; rb ]
