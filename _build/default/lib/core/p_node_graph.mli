(** The P-node graph (Section 6).

    The paper presents the P-node graph only in prose (its formal definition
    lives in an unpublished manuscript), so this module is a documented
    reconstruction, calibrated against the paper's own ground truth:
    Example 2 is classified not-WR through a cycle carrying s-, m- and
    d-edges and no i-edge (Figure 3), and Example 3 is classified WR because
    the unification of the recursive rule head is blocked by a frontier
    variable entering the existential class.

    Nodes are P-nodes ⟨sigma, Sigma⟩ ({!P_node}); each node abstracts an
    atom generated during query rewriting, together with the sibling atoms
    of the same rule application and an optional tracked existential
    variable [z]. An edge [u --R--> v] abstracts one single-atom rewriting
    step of [u.atom] with rule [R]; the step is admissible when [u.atom]
    unifies with [head(R)] such that every existential head variable's
    unification class contains no constant, no frontier variable, no second
    existential variable, and only node variables whose every occurrence in
    the node lies inside [sigma] at positions of that same class (this is
    the context-sensitive applicability the paper calls "much more
    involved").

    Edge labels:
    - [s] (splitting): a followed existential variable — the continuation of
      [z] or a fresh existential body variable of [R] — lands in at least
      two body atoms;
    - [m] (missing): some distinguished variable of [R] does not occur in
      the generated body atom;
    - [d] (decreasing): the number of unbounded arguments grows along the
      edge, i.e. the target atom has more arguments holding [z] or a
      context-wise single-occurrence variable than the source
      ("decreasing the number of bounded arguments" in the paper's
      phrasing);
    - [i] (isolated): the generated body atom shares no variable with the
      rule frontier nor with its sibling body atoms.

    Multi-head rules are single-head-normalized before the construction. *)

open Tgd_logic

type label = {
  s : bool;
  m : bool;
  d : bool;
  i : bool;
}

module Label : sig
  type t = label

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module G : module type of Tgd_graph.Digraph.Make (P_node) (Label)

type result = {
  graph : G.t;
  complete : bool;  (** [false] iff the node budget stopped the construction *)
}

val build : ?max_nodes:int -> Program.t -> result
(** Default [max_nodes] is 50_000. *)

val edge_list : G.t -> (string * string * string) list
(** Edges as [(source, target, label)] strings, sorted, for golden tests. *)
