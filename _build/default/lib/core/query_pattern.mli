(** Query patterns (Civili & Rosati, "Query patterns for existential rules",
    RR 2012 — the paper's reference [11] and its named technique for the
    cases where the whole set of TGDs is not, or cannot be shown, WR).

    Even when a set of TGDs is not FO-rewritable, many {e queries} over it
    are: whether the rewriting terminates depends on which argument
    positions of the queried atom are bound (by a constant or an answer
    variable). A pattern abstracts a single-atom query by its predicate and
    a boundness mask; the analysis rewrites the most general query of each
    pattern and records whether it saturates.

    For the paper's Example 2: the pattern [r(bound, unbound)] — matching
    the paper's own divergent query [q() :- r("a", x)] — does not
    terminate, while [r(bound, bound)] does (the existential head variable
    of R2 refuses to unify with a bound position). This module decides such
    pattern-level guarantees empirically through the rewriting engine: a
    terminating pattern certifies every single-atom query matching it,
    because constants and answer variables only ever {e restrict} piece
    applicability. *)

open Tgd_logic

type t = {
  pred : Symbol.t;
  bound : bool array;  (** per 1-based position - 1: is it bound? *)
}

val make : Symbol.t -> bool array -> t
val pp : Format.formatter -> t -> unit

val of_query_atom : Cq.t -> Atom.t -> t
(** The pattern of one body atom of a query: a position is bound if it
    holds a constant or an answer variable of the query. (Shared existential
    variables are treated as unbound — conservative.) *)

val generic_query : t -> Cq.t
(** The most general single-atom query of the pattern: bound positions get
    distinct answer variables, unbound ones distinct existential
    variables. *)

type status =
  | Terminates of int  (** size of the complete rewriting *)
  | Diverges of string  (** the budget that stopped the exploration *)

val analyze : ?config:Tgd_rewrite.Rewrite.config -> Program.t -> t -> status

val analyze_all : ?config:Tgd_rewrite.Rewrite.config -> ?max_arity:int -> Program.t -> (t * status) list
(** Every pattern of every predicate of the program (2^arity masks per
    predicate; predicates wider than [max_arity], default 6, are skipped). *)
