open Tgd_logic

type label = {
  s : bool;
  m : bool;
  d : bool;
  i : bool;
}

module Label = struct
  type t = label

  let equal = ( = )

  let pp ppf l =
    let tags =
      (if l.s then [ "s" ] else [])
      @ (if l.m then [ "m" ] else [])
      @ (if l.d then [ "d" ] else [])
      @ if l.i then [ "i" ] else []
    in
    Format.pp_print_string ppf (String.concat "," tags)
end

module G = Tgd_graph.Digraph.Make (P_node) (Label)

type result = {
  graph : G.t;
  complete : bool;
}

(* Concrete variable names for canonical node variables; rules are renamed
   apart before unification, so these fixed names cannot be captured. *)
let z_var = Term.var "_z"

let concrete_term = function
  | P_atom.Z -> z_var
  | P_atom.X i -> Term.var (Printf.sprintf "_x%d" i)
  | P_atom.C c -> Term.Const c

let concrete_atom (a : P_atom.t) = Atom.make a.P_atom.pred (Array.to_list (Array.map concrete_term a.P_atom.args))

let node_vars context_atoms =
  List.fold_left (fun acc a -> Symbol.Set.union acc (Atom.vars a)) Symbol.Set.empty context_atoms

(* Occurrence positions of [v] in the node: [`In_sigma j] (0-based) or
   [`In_context]. One instance of sigma inside the context is skipped. *)
let occurrences ~sigma_c ~ctx_c v =
  let acc = ref [] in
  Array.iteri
    (fun j t -> match t with
      | Term.Var v' when Symbol.equal v v' -> acc := `In_sigma j :: !acc
      | Term.Var _ | Term.Const _ -> ())
    sigma_c.Atom.args;
  let sigma_skipped = ref false in
  List.iter
    (fun (a : Atom.t) ->
      if (not !sigma_skipped) && Atom.equal a sigma_c then sigma_skipped := true
      else if Symbol.Set.mem v (Atom.vars a) then acc := `In_context :: !acc)
    ctx_c;
  !acc

(* Admissibility of the unifier [s] of [sigma_c] with [alpha] for rule [r]:
   validate every existential head variable's class. *)
let admissible ~sigma_c ~ctx_c (r : Tgd.t) (alpha : Atom.t) s =
  let walk_var v = Subst.walk s (Term.Var v) in
  let frontier = Tgd.frontier r in
  let ex_heads = Symbol.Set.elements (Tgd.existential_head_vars r) in
  let nvars = node_vars ctx_c in
  let class_ok y =
    let rep = walk_var y in
    match rep with
    | Term.Const _ -> false
    | Term.Var _ ->
      let in_class v = Term.equal (walk_var v) rep in
      (not (Symbol.Set.exists in_class frontier))
      && (not (List.exists (fun y' -> (not (Symbol.equal y y')) && in_class y') ex_heads))
      && Symbol.Set.for_all
           (fun v ->
             if not (in_class v) then true
             else
               (* Every occurrence of [v] must be inside sigma, at a
                  position whose head term joins the class. *)
               List.for_all
                 (function
                   | `In_context -> false
                   | `In_sigma j -> (
                     match alpha.Atom.args.(j) with
                     | Term.Const _ -> false
                     | Term.Var hv -> Term.equal (walk_var hv) rep))
                 (occurrences ~sigma_c ~ctx_c v))
           nvars
  in
  List.for_all class_ok ex_heads

(* Syntactic per-body-atom flags of rule [r]. *)
let missing_flag (r : Tgd.t) (beta : Atom.t) =
  not (Symbol.Set.subset (Tgd.frontier r) (Atom.vars beta))

let isolated_flag (r : Tgd.t) (beta : Atom.t) =
  let others =
    List.filter (fun b -> not (b == beta)) r.Tgd.body
    |> List.fold_left (fun acc b -> Symbol.Set.union acc (Atom.vars b)) Symbol.Set.empty
  in
  let bad = Symbol.Set.union (Tgd.frontier r) others in
  Symbol.Set.is_empty (Symbol.Set.inter (Atom.vars beta) bad)

(* All edges produced by applying [r] (single-head) to node [u]. Returns
   (label, target node) pairs. *)
let apply_rule u (r0 : Tgd.t) =
  let r = Tgd.rename_apart r0 in
  let alpha = match r.Tgd.head with [ a ] -> a | _ -> assert false in
  let sigma_c = concrete_atom u.P_node.atom in
  let ctx_c = List.map concrete_atom u.P_node.context in
  match Unify.mgu sigma_c alpha with
  | None -> []
  | Some s ->
    if not (admissible ~sigma_c ~ctx_c r alpha s) then []
    else begin
      let body_s = Subst.apply_atoms s r.Tgd.body in
      (* Followed variables: the continuation of z (if still free and
         unshared) and the fresh existential body variables. *)
      let continuation =
        if not (P_atom.has_z u.P_node.atom) then None
        else
          match Subst.walk s z_var with
          | Term.Const _ -> None
          | Term.Var w ->
            let shared =
              Symbol.Set.exists
                (fun v ->
                  (not (Symbol.equal v (match z_var with Term.Var z -> z | _ -> assert false)))
                  && Term.equal (Subst.walk s (Term.Var v)) (Term.Var w))
                (node_vars ctx_c)
            in
            if shared then None else Some w
      in
      let new_existentials = Symbol.Set.elements (Tgd.existential_body_vars r) in
      let followed = (match continuation with None -> [] | Some w -> [ w ]) @ new_existentials in
      let atoms_containing w =
        List.filter (fun (b : Atom.t) -> Symbol.Set.mem w (Atom.vars b)) body_s
      in
      let s_flag = List.exists (fun w -> List.length (atoms_containing w) >= 2) followed in
      let u_unbounded = P_node.unbounded_count u in
      let edges = ref [] in
      List.iter2
        (fun (beta0 : Atom.t) (beta_s : Atom.t) ->
          let m = missing_flag r beta0 in
          let i = isolated_flag r beta0 in
          let emit tracked =
            let v = P_node.canonicalize ~sigma:beta_s ~context:body_s ~tracked in
            let d = P_node.unbounded_count v > u_unbounded in
            edges := ({ s = s_flag; m; d; i }, v) :: !edges
          in
          (* Untracked abstraction of the generated atom. *)
          emit None;
          (* Tracked abstractions: one per followed variable present. *)
          List.iter
            (fun w -> if Symbol.Set.mem w (Atom.vars beta_s) then emit (Some w))
            followed)
        r.Tgd.body body_s;
      List.rev !edges
    end

let build ?(max_nodes = 50_000) p =
  let p = Program.single_head_normalize p in
  let rules = Program.tgds p in
  let g = G.create () in
  let pending = Queue.create () in
  let discovered = P_node.Tbl.create 256 in
  let complete = ref true in
  let discover node =
    if not (P_node.Tbl.mem discovered node) then begin
      if P_node.Tbl.length discovered >= max_nodes then complete := false
      else begin
        P_node.Tbl.add discovered node ();
        G.add_node g node;
        Queue.add node pending
      end
    end
  in
  (* Initial nodes: the generic all-distinct-variables atom of every head
     predicate, with itself as context and nothing tracked. *)
  List.iter
    (fun (r : Tgd.t) ->
      List.iter
        (fun (a : Atom.t) ->
          let vars = List.mapi (fun i _ -> Term.var (Printf.sprintf "_g%d" i)) (Atom.args a) in
          let generic = Atom.make a.Atom.pred vars in
          discover (P_node.canonicalize ~sigma:generic ~context:[ generic ] ~tracked:None))
        r.Tgd.head)
    rules;
  while not (Queue.is_empty pending) do
    let u = Queue.pop pending in
    List.iter
      (fun r ->
        List.iter
          (fun (label, v) ->
            discover v;
            (* Do not add edges to nodes dropped by the budget. *)
            if P_node.Tbl.mem discovered v then G.add_edge g u label v)
          (apply_rule u r))
      rules
  done;
  { graph = g; complete = !complete }

let edge_list g =
  G.edges g
  |> List.map (fun (e : G.edge) ->
         ( P_node.to_string e.G.src,
           P_node.to_string e.G.dst,
           Format.asprintf "%a" Label.pp e.G.label ))
  |> List.sort compare
