open Tgd_logic

type verdict = {
  simple : bool;
  dangerous : bool;
  swr : bool;
  graph : Position_graph.G.t;
}

let dangerous_cycle_in_graph g =
  Position_graph.G.cyclic_scc_edge_labels g
  |> List.exists (fun labels ->
         List.exists (fun (l : Position_graph.label) -> l.m) labels
         && List.exists (fun (l : Position_graph.label) -> l.s) labels)

let check p =
  let graph = Position_graph.build p in
  let simple = Program.is_simple p in
  let dangerous = dangerous_cycle_in_graph graph in
  { simple; dangerous; swr = simple && not dangerous; graph }

let check_exact ?(limit = 10_000) g =
  let cycles = Position_graph.G.simple_cycles ~limit g in
  let found =
    List.exists
      (fun cycle ->
        List.exists (fun (e : Position_graph.G.edge) -> e.Position_graph.G.label.m) cycle
        && List.exists (fun (e : Position_graph.G.edge) -> e.Position_graph.G.label.s) cycle)
      cycles
  in
  if found then Some true
  else if List.length cycles >= limit then None
  else Some false
