(** The worked examples of the paper, as ready-made programs and queries.
    They are the golden inputs of the reproduction: Figures 1-3 and the
    classification claims of Sections 5-6 are checked against them. *)

open Tgd_logic

val example1 : Program.t
(** Example 1: R1: s(y1,y2,y3), t(y4) -> r(y1,y3); R2: v(y1,y2), q(y2) ->
    s(y1,y3,y2); R3: r(y1,y2) -> v(y1,y2). Simple, SWR (Figure 1 has no
    s-edges), hence FO-rewritable. *)

val example2 : Program.t
(** Example 2: R1: t(y1,y2), r(y3,y4) -> s(y1,y3,y2); R2: s(y1,y1,y2) ->
    r(y2,y3). Not simple (repeated variable); its position graph (Figure 2)
    is acyclic — the documented failure of the position graph — but it is
    not FO-rewritable, and the P-node graph (Figure 3) detects the
    dangerous cycle: not WR. *)

val example2_query : Cq.t
(** The boolean query q() :- r("a", x) whose rewriting under Example 2
    develops an unbounded chain of existential join variables. *)

val example3 : Program.t
(** Example 3: R1: r(y1,y2) -> t(y3,y1,y1); R2: s(y1,y2,y3) -> r(y1,y2);
    R3: u(y1), t(y1,y1,y2) -> s(y1,y1,y2). In none of the prior classes
    (not simple, linear, multilinear, sticky or sticky-join), yet
    FO-rewritable; WR accepts it. *)

val figure1_edges : (string * string * string) list
(** The expected sorted edge list of Figure 1 (our rendering of positions
    and labels), produced by [Position_graph.edge_list]. *)

val figure2_node_count : int
(** Figure 2 shows 10 position nodes for Example 2. *)

val dr_agrd_not_swr : Program.t
(** A witness for Section 6's incomparability remark: a set of {e simple}
    TGDs that is domain-restricted and has an acyclic GRD, yet is not SWR
    (its position graph has a cycle carrying both an m-edge and an s-edge
    across the two rules). Together with Example 1 — which is SWR but
    neither domain-restricted nor acyclic-GRD — it shows both classes are
    incomparable with SWR. *)
