open Tgd_logic

type term =
  | Z
  | X of int
  | C of Symbol.t

type t = {
  pred : Symbol.t;
  args : term array;
}

let term_equal t1 t2 =
  match t1, t2 with
  | Z, Z -> true
  | X i, X j -> Int.equal i j
  | C c1, C c2 -> Symbol.equal c1 c2
  | (Z | X _ | C _), _ -> false

let term_compare t1 t2 =
  match t1, t2 with
  | Z, Z -> 0
  | Z, (X _ | C _) -> -1
  | X _, Z -> 1
  | X i, X j -> Int.compare i j
  | X _, C _ -> -1
  | C _, (Z | X _) -> 1
  | C c1, C c2 -> Symbol.compare c1 c2

let equal a1 a2 =
  Symbol.equal a1.pred a2.pred
  && Array.length a1.args = Array.length a2.args
  && Array.for_all2 term_equal a1.args a2.args

let compare a1 a2 =
  let c = Symbol.compare a1.pred a2.pred in
  if c <> 0 then c
  else
    let c = Int.compare (Array.length a1.args) (Array.length a2.args) in
    if c <> 0 then c
    else
      let rec loop i =
        if i >= Array.length a1.args then 0
        else
          let c = term_compare a1.args.(i) a2.args.(i) in
          if c <> 0 then c else loop (i + 1)
      in
      loop 0

let term_hash = function
  | Z -> 0
  | X i -> (2 * i) + 1
  | C c -> (2 * Symbol.hash c) + 2

let hash a = Array.fold_left (fun h t -> (h * 31) + term_hash t) (Symbol.hash a.pred) a.args

let pp_term ppf = function
  | Z -> Format.pp_print_string ppf "z"
  | X i -> Format.fprintf ppf "x%d" i
  | C c -> Symbol.pp ppf c

let pp ppf a =
  if Array.length a.args = 0 then Symbol.pp ppf a.pred
  else
    Format.fprintf ppf "%a(%a)" Symbol.pp a.pred
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",") pp_term)
      (Array.to_list a.args)

let to_string a = Format.asprintf "%a" pp a

let has_z a = Array.exists (function Z -> true | X _ | C _ -> false) a.args

let x_vars a =
  Array.fold_right (fun t acc -> match t with X i -> i :: acc | Z | C _ -> acc) a.args []
