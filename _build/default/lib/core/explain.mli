(** Witness extraction: concrete dangerous cycles from the two graphs, for
    human consumption (the [obda classify -v] output). A verdict "not SWR"
    or "not WR" is much more actionable with the actual cycle in hand. *)

open Tgd_logic

val swr_witness : Position_graph.G.t -> Position_graph.G.edge list option
(** A simple cycle containing both an m-edge and an s-edge, if the bounded
    enumeration finds one. [None] either means no dangerous simple cycle
    exists or the enumeration budget was exhausted (the SCC-based check in
    {!Swr} remains authoritative). *)

val wr_witness : P_node_graph.G.t -> P_node_graph.G.edge list option
(** A simple i-edge-free cycle containing d-, m- and s-edges, if any. *)

val describe : ?wr_max_nodes:int -> Program.t -> string
(** A multi-line report: the classifier matrix, the FO-rewritability
    witness if any, and for negative SWR/WR verdicts the dangerous cycle
    when one is found. *)
