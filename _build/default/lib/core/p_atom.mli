(** P-atoms (Definition 6): atoms over the finite canonical vocabulary used
    by the P-node graph.

    Arguments are the tracked-existential marker [z], canonical variables
    [x1, x2, ...] (first-occurrence numbering within a P-node), or constants
    of the program. The pool of canonical variables is bounded by the sum of
    arities in a node, hence finite for a fixed program — this slightly
    relaxes Definition 6's bound (max arity) so that a node's context can
    name all its variables without conflation; the graph stays finite. *)

open Tgd_logic

type term =
  | Z  (** the tracked existential variable *)
  | X of int  (** canonical variable [x_i], [i >= 1] *)
  | C of Symbol.t  (** a constant of the program *)

type t = {
  pred : Symbol.t;
  args : term array;
}

val term_equal : term -> term -> bool
val term_compare : term -> term -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val has_z : t -> bool
val x_vars : t -> int list
(** Canonical-variable indexes occurring, with duplicates, in argument
    order. *)
