(** Umbrella classifier: run every class membership test on a program and
    report the landscape the paper discusses. *)

open Tgd_logic

type report = {
  program : string;  (** program name *)
  n_rules : int;
  simple : bool;
  datalog : bool;
  linear : bool;
  guarded : bool;
  multilinear : bool;
  sticky : bool;
  sticky_join : bool;
  weakly_acyclic : bool;
  domain_restricted : bool;
  acyclic_grd : bool;
  swr : bool;
  wr : bool;
  wr_established : bool;  (** [false] iff the WR graph construction was truncated *)
}

val classify : ?wr_max_nodes:int -> Program.t -> report

val fo_rewritable_witness : report -> string option
(** The name of some class in the report that guarantees FO-rewritability
    (linear, multilinear, sticky, sticky-join, domain-restricted, acyclic
    GRD, SWR or WR), if any. *)

val pp : Format.formatter -> report -> unit

val to_row : report -> string list
(** Fixed-order textual row (matching {!header}) for tables. *)

val header : string list
