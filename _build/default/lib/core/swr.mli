(** Simply Weakly Recursive TGDs (Definition 5): a set [P] of simple TGDs is
    SWR iff the position graph [AG(P)] has no cycle containing both an
    m-edge and an s-edge. Theorem 1: every SWR set is FO-rewritable.

    "Cycle" is decided per strongly connected component (closed-walk
    reading): some SCC contains an m-edge and an s-edge among its internal
    edges. {!check_exact} decides the simple-cycle reading by bounded
    enumeration; the two agree on every program we generate (see the test
    suite) and on all the paper's examples. *)

open Tgd_logic

type verdict = {
  simple : bool;  (** is [P] a set of simple TGDs? SWR requires it *)
  dangerous : bool;  (** does a cycle with both an m- and an s-edge exist? *)
  swr : bool;  (** [simple && not dangerous] *)
  graph : Position_graph.G.t;
}

val check : Program.t -> verdict

val dangerous_cycle_in_graph : Position_graph.G.t -> bool
(** The SCC-based cycle condition alone (also used on non-simple programs to
    reproduce Figure 2's failure). *)

val check_exact : ?limit:int -> Position_graph.G.t -> bool option
(** Simple-cycle reading: [Some true] if an enumerated simple cycle carries
    both labels, [Some false] if the exhaustive enumeration finished without
    finding one, [None] if the enumeration budget was exhausted. *)
