(** Positions (Definition 2): [r[ ]] refers generically to an atom with
    predicate [r]; [r[i]] refers to the [i]-th argument position (1-based). *)

open Tgd_logic

type t =
  | Whole of Symbol.t  (** [r[ ]] *)
  | At of Symbol.t * int  (** [r[i]] *)

val rel : t -> Symbol.t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
