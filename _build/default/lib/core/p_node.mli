(** P-nodes (Definition 7): a P-atom [sigma] paired with its context
    [Sigma], the set of P-atoms produced by the same rule application
    (including [sigma] itself). The context is what makes the applicability
    test of the P-node graph sharper than the position graph's: it records
    which variables of [sigma] are shared with sibling atoms.

    Nodes are canonical: variables are renamed to [x1, x2, ...] greedily
    (first over [sigma]'s arguments, then over the context atoms in a
    deterministic minimal-first order), the tracked variable (if any) to
    [z], and the context is sorted. Equal rewriting situations therefore
    map to equal nodes, which keeps the graph finite. *)

open Tgd_logic

type t = {
  atom : P_atom.t;
  context : P_atom.t list;  (** sorted, duplicate-free, contains [atom] *)
}

val canonicalize : sigma:Atom.t -> context:Atom.t list -> tracked:Symbol.t option -> t
(** Build the canonical node for a concrete rewriting situation: [sigma] a
    concrete atom, [context] the concrete atoms generated with it (it must
    contain [sigma]), [tracked] the concrete variable marked as the tracked
    existential. *)

val unbounded_count : t -> int
(** Number of argument positions of [atom] holding [z] or a canonical
    variable occurring exactly once in the whole context — the node's
    unbounded arguments, compared along edges to detect d-edges. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Tbl : Hashtbl.S with type key = t
