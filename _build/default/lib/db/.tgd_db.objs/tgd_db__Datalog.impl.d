lib/db/datalog.ml: Array Atom Eval Instance List Option Printf Program Symbol Term Tgd Tgd_logic Tuple Value
