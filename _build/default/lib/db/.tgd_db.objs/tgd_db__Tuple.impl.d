lib/db/tuple.ml: Array Format Hashtbl Int Value
