lib/db/instance.ml: Array Atom Format List Printf Relation Symbol Tgd_logic Tuple Value
