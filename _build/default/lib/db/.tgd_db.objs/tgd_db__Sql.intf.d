lib/db/sql.mli: Cq Tgd_logic
