lib/db/instance.mli: Atom Format Relation Symbol Tgd_logic Tuple
