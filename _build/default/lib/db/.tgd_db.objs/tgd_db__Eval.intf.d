lib/db/eval.mli: Atom Cq Instance Symbol Term Tgd_logic Tuple Value
