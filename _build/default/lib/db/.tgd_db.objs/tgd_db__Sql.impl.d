lib/db/sql.ml: Array Atom Buffer Cq List Printf String Symbol Term Tgd_logic
