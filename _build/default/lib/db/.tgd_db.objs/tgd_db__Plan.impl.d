lib/db/plan.ml: Array Atom Cq Format Instance List Printf Relation Symbol Term Tgd_logic
