lib/db/eval.ml: Array Atom Cq Instance List Option Relation Symbol Term Tgd_logic Tuple Value
