lib/db/plan.mli: Atom Cq Format Instance Symbol Tgd_logic
