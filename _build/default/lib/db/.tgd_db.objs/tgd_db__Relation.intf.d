lib/db/relation.mli: Tuple Value
