lib/db/value.ml: Format Int Printf Tgd_logic
