lib/db/datalog.mli: Instance Program Tgd_logic
