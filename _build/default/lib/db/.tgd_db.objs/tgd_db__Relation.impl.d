lib/db/relation.ml: Array Hashtbl Option Tuple Value
