lib/db/tuple.mli: Format Hashtbl Value
