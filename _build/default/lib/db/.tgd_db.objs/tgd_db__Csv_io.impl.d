lib/db/csv_io.ml: Array Buffer Format Instance List Printf String Symbol Tgd_logic Value
