lib/db/value.mli: Format Tgd_logic
