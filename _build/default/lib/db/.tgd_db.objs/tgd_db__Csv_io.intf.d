lib/db/csv_io.mli: Instance Symbol Tgd_logic Tuple
