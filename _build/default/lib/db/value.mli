(** Database values: constants and labeled nulls.

    Labeled nulls are the fresh witnesses invented by the chase for
    existential head variables; they never compare equal to any constant. *)

type t =
  | Const of Tgd_logic.Symbol.t
  | Null of int

val const : string -> t
val is_null : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

val of_term : Tgd_logic.Term.t -> t
(** Converts a constant; raises [Invalid_argument] on a variable. *)

val to_term : t -> Tgd_logic.Term.t
(** Constants map back to constants; nulls map to variables named ["_nK"]
    (used to re-express an instance as atoms). *)
