(** Database tuples. *)

type t = Value.t array

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

val has_null : t -> bool

module Table : Hashtbl.S with type key = t
