open Tgd_logic

type access =
  | Scan
  | Index_lookup of int

type step = {
  atom : Atom.t;
  access : access;
  bound_vars : Symbol.Set.t;
  relation_rows : int;
}

type t = step list

let relation_rows inst (a : Atom.t) =
  match Instance.relation inst a.Atom.pred with
  | None -> 0
  | Some rel -> Relation.cardinality rel

(* A position is bound if it holds a constant or an already-bound
   variable. *)
let bound_positions bound (a : Atom.t) =
  let acc = ref [] in
  Array.iteri
    (fun i t ->
      match t with
      | Term.Const _ -> acc := i :: !acc
      | Term.Var v -> if Symbol.Set.mem v bound then acc := i :: !acc)
    a.Atom.args;
  List.rev !acc

let choose inst (q : Cq.t) =
  let rec loop bound remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
      let score a = (List.length (bound_positions bound a), -relation_rows inst a) in
      let best =
        List.fold_left
          (fun best a ->
            match best with
            | None -> Some a
            | Some b -> if score a > score b then Some a else best)
          None remaining
      in
      (match best with
      | None -> List.rev acc
      | Some a ->
        let access =
          match bound_positions bound a with [] -> Scan | pos :: _ -> Index_lookup pos
        in
        let step = { atom = a; access; bound_vars = bound; relation_rows = relation_rows inst a } in
        let bound = Symbol.Set.union bound (Atom.vars a) in
        let rest = List.filter (fun a' -> not (a' == a)) remaining in
        loop bound rest (step :: acc))
  in
  loop Symbol.Set.empty q.Cq.body []

let pp ppf plan =
  List.iteri
    (fun i s ->
      let access =
        match s.access with
        | Scan -> "scan"
        | Index_lookup pos -> Printf.sprintf "index probe on c%d" (pos + 1)
      in
      Format.fprintf ppf "%d. %a  via %s (%d rows)@." (i + 1) Atom.pp s.atom access
        s.relation_rows)
    plan

let explain inst q = Format.asprintf "%a" pp (choose inst q)
