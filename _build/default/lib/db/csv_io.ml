open Tgd_logic

(* Split one CSV record into fields, honouring double quotes. *)
let split_fields line =
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let n = String.length line in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let rec unquoted i =
    if i >= n then flush_field ()
    else
      match line.[i] with
      | ',' ->
        flush_field ();
        unquoted (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        unquoted (i + 1)
  and quoted i =
    if i >= n then failwith "unterminated quote"
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> after_quote (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  and after_quote i =
    if i >= n then flush_field ()
    else
      match line.[i] with
      | ',' ->
        flush_field ();
        unquoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        after_quote (i + 1)
  in
  unquoted 0;
  List.rev !fields

let parse_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else
    match split_fields line with
    | [] -> None
    | pred :: args ->
      let values = Array.of_list (List.map (fun s -> Value.const (String.trim s)) args) in
      Some (Symbol.intern (String.trim pred), values)

let load_string src =
  let inst = Instance.create () in
  let lines = String.split_on_char '\n' src in
  let rec go lineno = function
    | [] -> Ok inst
    | line :: rest -> (
      match parse_line line with
      | exception Failure msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
      | None -> go (lineno + 1) rest
      | Some (pred, t) -> (
        match Instance.add_fact inst pred t with
        | _ -> go (lineno + 1) rest
        | exception Invalid_argument msg -> Error (Printf.sprintf "line %d: %s" lineno msg)))
  in
  go 1 lines

let load_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  load_string src

let needs_quotes s = String.exists (fun c -> c = ',' || c = '"' || c = '\n') s

let field_to_string s =
  if needs_quotes s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let save_string inst =
  let buf = Buffer.create 1024 in
  let rows =
    Instance.facts inst
    |> List.map (fun (pred, t) ->
           String.concat ","
             (Symbol.name pred
             :: Array.to_list (Array.map (fun v -> field_to_string (Format.asprintf "%a" Value.pp v)) t)))
    |> List.sort String.compare
  in
  List.iter
    (fun row ->
      Buffer.add_string buf row;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let save_file path inst =
  let oc = open_out_bin path in
  output_string oc (save_string inst);
  close_out oc
