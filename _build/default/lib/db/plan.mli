(** Static join plans — an inspectable rendition of the greedy policy that
    {!Eval} applies adaptively: order atoms by (most bound positions,
    smallest relation), serve each atom from a per-column index when some
    position is bound, scan otherwise. [explain] is what the [obda]
    CLI prints; the actual evaluator re-derives the choice at run time with
    live bindings, so the static plan is a faithful preview, not a separate
    execution engine. *)

open Tgd_logic

type access =
  | Scan  (** full relation scan *)
  | Index_lookup of int  (** hash-index probe on a 0-based column *)

type step = {
  atom : Atom.t;
  access : access;
  bound_vars : Symbol.Set.t;  (** variables bound before this step *)
  relation_rows : int;  (** cardinality of the atom's relation *)
}

type t = step list

val choose : Instance.t -> Cq.t -> t
val pp : Format.formatter -> t -> unit
val explain : Instance.t -> Cq.t -> string
