open Tgd_logic

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '\'';
  String.iter
    (fun c ->
      if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '\'';
  Buffer.contents buf

let of_cq (q : Cq.t) =
  let buf = Buffer.create 256 in
  (* First column where each variable occurs. *)
  let first_col : string Symbol.Table.t = Symbol.Table.create 16 in
  let conditions = ref [] in
  let froms =
    List.mapi
      (fun k (a : Atom.t) ->
        let alias = Printf.sprintf "t%d" k in
        Array.iteri
          (fun i t ->
            let col = Printf.sprintf "%s.c%d" alias (i + 1) in
            match t with
            | Term.Const c -> conditions := Printf.sprintf "%s = %s" col (quote (Symbol.name c)) :: !conditions
            | Term.Var v -> (
              match Symbol.Table.find_opt first_col v with
              | Some col0 -> conditions := Printf.sprintf "%s = %s" col0 col :: !conditions
              | None -> Symbol.Table.add first_col v col))
          a.Atom.args;
        Printf.sprintf "%s AS %s" (Symbol.name a.Atom.pred) alias)
      q.Cq.body
  in
  let select_items =
    match q.Cq.answer with
    | [] -> [ "1 AS sat" ]
    | answer ->
      List.mapi
        (fun i t ->
          let expr =
            match t with
            | Term.Const c -> quote (Symbol.name c)
            | Term.Var v -> (
              match Symbol.Table.find_opt first_col v with
              | Some col -> col
              | None -> invalid_arg "Sql.of_cq: unsafe query")
          in
          Printf.sprintf "%s AS a%d" expr (i + 1))
        answer
  in
  Buffer.add_string buf "SELECT DISTINCT ";
  Buffer.add_string buf (String.concat ", " select_items);
  Buffer.add_string buf "\nFROM ";
  Buffer.add_string buf (String.concat ", " froms);
  (match List.rev !conditions with
  | [] -> ()
  | conds ->
    Buffer.add_string buf "\nWHERE ";
    Buffer.add_string buf (String.concat " AND " conds));
  Buffer.contents buf

let of_ucq = function
  | [] -> invalid_arg "Sql.of_ucq: empty UCQ"
  | disjuncts -> String.concat "\nUNION\n" (List.map of_cq disjuncts)
