(** Translation of (unions of) conjunctive queries to SQL.

    This is the "FO-rewritability in practice" endpoint of the paper: once a
    UCQ rewriting exists, certain answers are computed by an ordinary SQL
    query over the original database (Definition 1). Predicates become table
    names; column [i] of predicate [p] is named [ci]. *)

open Tgd_logic

val of_cq : Cq.t -> string
(** A [SELECT DISTINCT ... FROM ... WHERE ...] statement. Boolean queries
    produce [SELECT DISTINCT 1 AS sat ...]. *)

val of_ucq : Cq.ucq -> string
(** The disjuncts joined with [UNION]. Raises [Invalid_argument] on an empty
    UCQ (the empty union has no SQL form; handle unsatisfiable rewritings at
    the caller). *)

val quote : string -> string
(** SQL string literal with quote doubling. *)
