type t = Value.t array

let equal t1 t2 = Array.length t1 = Array.length t2 && Array.for_all2 Value.equal t1 t2

let compare t1 t2 =
  let c = Int.compare (Array.length t1) (Array.length t2) in
  if c <> 0 then c
  else
    let rec loop i =
      if i >= Array.length t1 then 0
      else
        let c = Value.compare t1.(i) t2.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let hash t = Array.fold_left (fun h v -> (h * 31) + Value.hash v) 17 t

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",") Value.pp)
    (Array.to_list t)

let has_null = Array.exists Value.is_null

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
