(** Linear TGDs: exactly one body atom (Calì, Gottlob, Lukasiewicz). An
    FO-rewritable class subsumed by SWR on simple TGDs (Section 5). *)

open Tgd_logic

val rule_ok : Tgd.t -> bool
val check : Program.t -> bool
