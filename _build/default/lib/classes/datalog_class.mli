(** Plain Datalog: TGDs without existential head variables. Trivially
    chase-terminating, but not FO-rewritable in general (recursion). *)

open Tgd_logic

val rule_ok : Tgd.t -> bool
val check : Program.t -> bool
