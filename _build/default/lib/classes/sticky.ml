open Tgd_logic

(* A body position: rule name, atom index in the body, argument index. *)
type marking = {
  marked : (string * int * int, unit) Hashtbl.t;
  (* predicate positions (pred, arg index) that are marked in some body *)
  marked_pred_pos : (Symbol.t * int, unit) Hashtbl.t;
}

let mark_var m (r : Tgd.t) v =
  let changed = ref false in
  List.iteri
    (fun ai (a : Atom.t) ->
      Array.iteri
        (fun i t ->
          match t with
          | Term.Var v' when Symbol.equal v v' ->
            let key = (r.Tgd.name, ai, i) in
            if not (Hashtbl.mem m.marked key) then begin
              Hashtbl.add m.marked key ();
              changed := true;
              let ppos = (a.Atom.pred, i) in
              if not (Hashtbl.mem m.marked_pred_pos ppos) then Hashtbl.add m.marked_pred_pos ppos ()
            end
          | Term.Var _ | Term.Const _ -> ())
        a.Atom.args)
    r.Tgd.body;
  !changed

let marking p =
  let m = { marked = Hashtbl.create 64; marked_pred_pos = Hashtbl.create 64 } in
  let rules = Program.tgds p in
  (* Base step: body variables that do not occur in every head atom. *)
  List.iter
    (fun (r : Tgd.t) ->
      let bvars = Tgd.body_vars r in
      Symbol.Set.iter
        (fun v ->
          let in_every_head = List.for_all (fun h -> Symbol.Set.mem v (Atom.vars h)) r.Tgd.head in
          if not in_every_head then ignore (mark_var m r v))
        bvars)
    rules;
  (* Propagation: a head occurrence of [v] at a marked predicate position
     marks all body occurrences of [v]. *)
  let step () =
    let changed = ref false in
    List.iter
      (fun (r : Tgd.t) ->
        List.iter
          (fun (h : Atom.t) ->
            Array.iteri
              (fun i t ->
                match t with
                | Term.Var v when Hashtbl.mem m.marked_pred_pos (h.Atom.pred, i) ->
                  if mark_var m r v then changed := true
                | Term.Var _ | Term.Const _ -> ())
              h.Atom.args)
          r.Tgd.head)
      rules;
    !changed
  in
  while step () do
    ()
  done;
  m

let marked_positions m (r : Tgd.t) =
  let acc = ref [] in
  List.iteri
    (fun ai (a : Atom.t) ->
      Array.iteri
        (fun i _ -> if Hashtbl.mem m.marked (r.Tgd.name, ai, i) then acc := (ai, i) :: !acc)
        a.Atom.args)
    r.Tgd.body;
  List.rev !acc

(* For each rule, the multiset of (atom index) occurrences of each variable
   at marked positions. *)
let marked_var_occurrences m (r : Tgd.t) =
  let occ : (int * int) list Symbol.Table.t = Symbol.Table.create 8 in
  List.iteri
    (fun ai (a : Atom.t) ->
      Array.iteri
        (fun i t ->
          match t with
          | Term.Var v when Hashtbl.mem m.marked (r.Tgd.name, ai, i) ->
            let existing = Option.value ~default:[] (Symbol.Table.find_opt occ v) in
            Symbol.Table.replace occ v ((ai, i) :: existing)
          | Term.Var _ | Term.Const _ -> ())
        a.Atom.args)
    r.Tgd.body;
  occ

(* Note: stickiness counts every occurrence of a marked variable in the
   body, marked or not — once a variable is marked, all its body
   occurrences are marked by construction of [mark_var], so using the
   marked occurrences is equivalent. *)
let sticky p =
  let m = marking p in
  List.for_all
    (fun r ->
      let occ = marked_var_occurrences m r in
      Symbol.Table.fold (fun _ positions acc -> acc && List.length positions <= 1) occ true)
    (Program.tgds p)

let sticky_join p =
  let m = marking p in
  List.for_all
    (fun r ->
      let occ = marked_var_occurrences m r in
      Symbol.Table.fold
        (fun _ positions acc ->
          let atom_indexes = List.sort_uniq Int.compare (List.map fst positions) in
          acc && List.length atom_indexes <= 1)
        occ true)
    (Program.tgds p)
