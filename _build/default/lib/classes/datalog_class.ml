open Tgd_logic

let rule_ok r = Symbol.Set.is_empty (Tgd.existential_head_vars r)
let check p = List.for_all rule_ok (Program.tgds p)
