open Tgd_logic

let rule_ok (r : Tgd.t) =
  let bvars = Tgd.body_vars r in
  List.for_all
    (fun h ->
      let hvars = Atom.vars h in
      let inter = Symbol.Set.inter bvars hvars in
      Symbol.Set.is_empty inter || Symbol.Set.subset bvars hvars)
    r.Tgd.head

let check p = List.for_all rule_ok (Program.tgds p)
