open Tgd_logic

type edge_kind =
  | Normal
  | Special

let graph p =
  let edges = ref [] in
  let add src kind dst = edges := (src, kind, dst) :: !edges in
  let for_rule (r : Tgd.t) =
    let frontier = Tgd.frontier r in
    let ex_heads = Tgd.existential_head_vars r in
    (* Body positions of each frontier variable. *)
    Symbol.Set.iter
      (fun v ->
        let body_positions =
          List.concat_map
            (fun (a : Atom.t) ->
              List.map (fun i -> (a.Atom.pred, i)) (Atom.positions_of_var v a))
            r.Tgd.body
        in
        let head_positions =
          List.concat_map
            (fun (a : Atom.t) ->
              List.map (fun i -> (a.Atom.pred, i)) (Atom.positions_of_var v a))
            r.Tgd.head
        in
        let ex_positions =
          List.concat_map
            (fun (a : Atom.t) ->
              Symbol.Set.fold
                (fun y acc ->
                  List.map (fun i -> (a.Atom.pred, i)) (Atom.positions_of_var y a) @ acc)
                ex_heads [])
            r.Tgd.head
        in
        List.iter
          (fun src ->
            List.iter (fun dst -> add src Normal dst) head_positions;
            List.iter (fun dst -> add src Special dst) ex_positions)
          body_positions)
      frontier
  in
  List.iter for_rule (Program.tgds p);
  List.rev !edges

let check p =
  let edges = graph p in
  (* Dense ids for positions. *)
  let ids = Hashtbl.create 64 in
  let n = ref 0 in
  let id pos =
    match Hashtbl.find_opt ids pos with
    | Some i -> i
    | None ->
      let i = !n in
      Hashtbl.add ids pos i;
      incr n;
      i
  in
  let earr = Array.of_list (List.map (fun (s, k, d) -> (id s, k, id d)) edges) in
  let g = Tgd_graph.Int_digraph.make ~n:(max !n 1) ~edges:(Array.map (fun (s, _, d) -> (s, d)) earr) in
  let comp, _ = Tgd_graph.Int_digraph.scc g in
  (* Weakly acyclic iff no special edge lies inside a strongly connected
     component. *)
  not (Array.exists (fun (s, k, d) -> k = Special && comp.(s) = comp.(d)) earr)
