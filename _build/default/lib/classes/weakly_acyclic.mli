(** Weak acyclicity (Fagin, Kolaitis, Miller, Popa): the classic sufficient
    condition for chase termination. The position dependency graph has a
    normal edge from position (p,i) to (q,j) when a frontier variable flows
    from (p,i) in a body to (q,j) in the head, and a special edge when an
    existential head variable occurs at (q,j) in a head whose rule reads a
    frontier variable at (p,i). Weakly acyclic iff no cycle goes through a
    special edge. *)

open Tgd_logic

type edge_kind =
  | Normal
  | Special

val graph : Program.t -> ((Symbol.t * int) * edge_kind * (Symbol.t * int)) list
(** The position dependency graph as an edge list (positions are 1-based). *)

val check : Program.t -> bool
