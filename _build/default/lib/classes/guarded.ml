open Tgd_logic

let rule_ok (r : Tgd.t) =
  let all_vars = Tgd.body_vars r in
  List.exists (fun a -> Symbol.Set.subset all_vars (Atom.vars a)) r.Tgd.body

let check p = List.for_all rule_ok (Program.tgds p)
