(** Domain-restricted TGDs (Baget, Leclère, Mugnier, Salvat): every head
    atom contains either all of the body variables or none of them. An
    FO-rewritable class incomparable with SWR, cited by the paper as one of
    the classes WR is meant to subsume. *)

open Tgd_logic

val rule_ok : Tgd.t -> bool
val check : Program.t -> bool
