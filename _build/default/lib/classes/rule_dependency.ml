open Tgd_logic

let depends ~on:(r1 : Tgd.t) (r2 : Tgd.t) =
  (* Read body(R2) as a boolean query and look for a piece unifier with any
     single-head fragment of R1. *)
  let q = Cq.make ~name:"dep" ~answer:[] ~body:r2.Tgd.body in
  let fragments = Tgd.single_head_normalize [ r1 ] in
  (* Auxiliary-predicate fragments cannot unify with body(R2): their
     predicate is fresh. Piece.all returns [] for them naturally. *)
  List.exists (fun frag -> Tgd_rewrite.Piece.all q frag <> []) fragments

let graph p =
  let rules = Program.tgds p in
  List.concat_map
    (fun r1 ->
      List.filter_map
        (fun r2 -> if depends ~on:r1 r2 then Some (r1.Tgd.name, r2.Tgd.name) else None)
        rules)
    rules

let acyclic p =
  let rules = Program.tgds p in
  let ids = Hashtbl.create 16 in
  List.iteri (fun i (r : Tgd.t) -> Hashtbl.replace ids r.Tgd.name i) rules;
  let edges =
    graph p |> List.map (fun (a, b) -> (Hashtbl.find ids a, Hashtbl.find ids b)) |> Array.of_list
  in
  let g = Tgd_graph.Int_digraph.make ~n:(max (List.length rules) 1) ~edges in
  let comp, _ = Tgd_graph.Int_digraph.scc g in
  not (Array.exists (fun (s, d) -> comp.(s) = comp.(d)) edges)
