lib/classes/sticky.ml: Array Atom Hashtbl Int List Option Program Symbol Term Tgd Tgd_logic
