lib/classes/rule_dependency.ml: Array Cq Hashtbl List Program Tgd Tgd_graph Tgd_logic Tgd_rewrite
