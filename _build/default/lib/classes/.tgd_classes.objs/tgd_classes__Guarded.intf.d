lib/classes/guarded.mli: Program Tgd Tgd_logic
