lib/classes/linear.ml: List Program Tgd Tgd_logic
