lib/classes/multilinear.ml: Atom List Program Symbol Tgd Tgd_logic
