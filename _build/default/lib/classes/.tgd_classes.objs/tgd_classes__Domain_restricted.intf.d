lib/classes/domain_restricted.mli: Program Tgd Tgd_logic
