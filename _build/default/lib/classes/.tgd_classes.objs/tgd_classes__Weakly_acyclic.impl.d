lib/classes/weakly_acyclic.ml: Array Atom Hashtbl List Program Symbol Tgd Tgd_graph Tgd_logic
