lib/classes/domain_restricted.ml: Atom List Program Symbol Tgd Tgd_logic
