lib/classes/weakly_acyclic.mli: Program Symbol Tgd_logic
