lib/classes/sticky.mli: Program Tgd Tgd_logic
