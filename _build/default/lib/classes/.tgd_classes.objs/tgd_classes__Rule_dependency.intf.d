lib/classes/rule_dependency.mli: Program Tgd Tgd_logic
