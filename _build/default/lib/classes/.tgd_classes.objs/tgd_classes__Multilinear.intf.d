lib/classes/multilinear.mli: Program Tgd Tgd_logic
