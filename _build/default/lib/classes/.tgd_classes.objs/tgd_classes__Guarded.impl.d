lib/classes/guarded.ml: Atom List Program Symbol Tgd Tgd_logic
