lib/classes/datalog_class.mli: Program Tgd Tgd_logic
