lib/classes/linear.mli: Program Tgd Tgd_logic
