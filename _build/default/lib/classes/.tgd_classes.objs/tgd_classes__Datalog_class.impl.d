lib/classes/datalog_class.ml: List Program Symbol Tgd Tgd_logic
