open Tgd_logic

let rule_ok (r : Tgd.t) = match r.Tgd.body with [ _ ] -> true | [] | _ :: _ :: _ -> false
let check p = List.for_all rule_ok (Program.tgds p)
