(** Guarded TGDs: some body atom (the guard) contains every body variable.
    Not FO-rewritable in general; included for the class landscape. *)

open Tgd_logic

val rule_ok : Tgd.t -> bool
val check : Program.t -> bool
