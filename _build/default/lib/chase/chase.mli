(** The chase: saturate an instance with the TGDs, inventing labeled nulls
    for existential head variables.

    Both the oblivious chase (fire every trigger once) and the restricted
    a.k.a. standard chase (fire only triggers whose head is not already
    satisfied) are provided. The chase proceeds in breadth-first rounds,
    which makes it fair: every trigger is eventually considered, so when the
    run terminates the result is a universal model of [(P, D)] and certain
    answers coincide with the null-free answers over it. For non-terminating
    inputs the run stops when a budget is exhausted, yielding a sound
    under-approximation. *)

open Tgd_logic
open Tgd_db

type variant =
  | Oblivious
  | Restricted

type outcome =
  | Terminated  (** fixpoint reached: the instance is a universal model *)
  | Budget_exhausted  (** a budget stopped the run first *)

type stats = {
  outcome : outcome;
  rounds : int;
  new_facts : int;
  nulls : int;
  triggers_fired : int;
}

val run :
  ?variant:variant ->
  ?max_rounds:int ->
  ?max_facts:int ->
  Program.t ->
  Instance.t ->
  stats
(** Mutates the instance. Defaults: [Restricted], [max_rounds = 1_000],
    [max_facts = 1_000_000]. *)
