(** Equality-generating dependencies (EGDs): [body -> x = y].

    EGDs complete the classical dependency picture (the paper frames TGDs as
    one half of "database dependencies"); in the DL-Lite family they appear
    as functionality axioms ([funct R] is the EGD
    [r(x,y), r(x,z) -> y = z]). The chase extended with EGDs merges the two
    equated values when at least one is a labeled null, and {e fails} when
    two distinct constants are equated (the data is inconsistent with the
    dependencies, under the paper's Unique Name Assumption).

    In DL-Lite query answering, functionality axioms are {e separable}: when
    the data is consistent they do not affect certain answers, so the
    FO-rewriting pipeline only needs EGDs for the consistency check — which
    is how {!check_consistency} is meant to be used. *)

open Tgd_logic

type t = private {
  name : string;
  body : Atom.t list;
  left : Symbol.t;  (** body variable *)
  right : Symbol.t;  (** body variable *)
}

val make : ?name:string -> body:Atom.t list -> left:Symbol.t -> right:Symbol.t -> t
(** Raises [Invalid_argument] if either side does not occur in the body. *)

val functional : ?name:string -> string -> arity:int -> key:int list -> determined:int -> t
(** The functional dependency [key -> determined] (1-based positions) on a
    predicate: two tuples agreeing on the key positions agree on the
    determined one. [functional "r" ~arity:2 ~key:[1] ~determined:2] is
    DL-Lite's [funct r]. *)

val pp : Format.formatter -> t -> unit
