open Tgd_db

type result = {
  answers : Tuple.t list;
  exact : bool;
  chase : Chase.stats;
}

let ucq ?variant ?max_rounds ?max_facts program inst disjuncts =
  let work = Instance.copy inst in
  let chase = Chase.run ?variant ?max_rounds ?max_facts program work in
  let answers = Eval.ucq work disjuncts |> List.filter (fun t -> not (Tuple.has_null t)) in
  { answers; exact = chase.Chase.outcome = Chase.Terminated; chase }

let cq ?variant ?max_rounds ?max_facts program inst q =
  ucq ?variant ?max_rounds ?max_facts program inst [ q ]
