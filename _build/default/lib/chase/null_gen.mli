(** Generator of fresh labeled nulls, one per chase run, so that chase
    results are reproducible independently of other runs in the process. *)

type t

val create : unit -> t
val next : t -> Tgd_db.Value.t
val count : t -> int
