type t = { mutable counter : int }

let create () = { counter = 0 }

let next g =
  g.counter <- g.counter + 1;
  Tgd_db.Value.Null g.counter

let count g = g.counter
