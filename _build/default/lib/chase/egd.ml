open Tgd_logic

type t = {
  name : string;
  body : Atom.t list;
  left : Symbol.t;
  right : Symbol.t;
}

let counter = ref 0

let make ?name ~body ~left ~right =
  let body_vars =
    List.fold_left (fun acc a -> Symbol.Set.union acc (Atom.vars a)) Symbol.Set.empty body
  in
  if not (Symbol.Set.mem left body_vars && Symbol.Set.mem right body_vars) then
    invalid_arg "Egd.make: equated variables must occur in the body";
  let name =
    match name with
    | Some n -> n
    | None ->
      incr counter;
      Printf.sprintf "e%d" !counter
  in
  { name; body; left; right }

let functional ?name pred ~arity ~key ~determined =
  if determined < 1 || determined > arity then invalid_arg "Egd.functional: bad determined position";
  List.iter (fun k -> if k < 1 || k > arity then invalid_arg "Egd.functional: bad key position") key;
  let var prefix i = Term.var (Printf.sprintf "%s%d" prefix i) in
  let args prefix =
    List.init arity (fun i ->
        let pos = i + 1 in
        if List.mem pos key then var "K" pos else var prefix pos)
  in
  let a1 = Atom.of_strings pred (args "L") in
  let a2 = Atom.of_strings pred (args "R") in
  let left = Symbol.intern (Printf.sprintf "L%d" determined) in
  let right = Symbol.intern (Printf.sprintf "R%d" determined) in
  make ?name ~body:[ a1; a2 ] ~left ~right

let pp ppf egd =
  let atoms ppf l =
    Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") Atom.pp ppf l
  in
  Format.fprintf ppf "[%s] %a -> %a = %a" egd.name atoms egd.body Symbol.pp egd.left Symbol.pp
    egd.right
