open Tgd_logic
open Tgd_db

type variant =
  | Oblivious
  | Restricted

type outcome =
  | Terminated
  | Budget_exhausted

type stats = {
  outcome : outcome;
  rounds : int;
  new_facts : int;
  nulls : int;
  triggers_fired : int;
}

module Key_table = Hashtbl.Make (struct
  type t = string * Tuple.t

  let equal (n1, t1) (n2, t2) = String.equal n1 n2 && Tuple.equal t1 t2
  let hash (n, t) = (Hashtbl.hash n * 31) + Tuple.hash t
end)

let run ?(variant = Restricted) ?(max_rounds = 1_000) ?(max_facts = 1_000_000) program inst =
  let gen = Null_gen.create () in
  let fired : unit Key_table.t = Key_table.create 256 in
  let new_facts = ref 0 in
  let triggers_fired = ref 0 in
  let rounds = ref 0 in
  let outcome = ref Terminated in
  let budget_ok () = Instance.cardinality inst <= max_facts && !rounds < max_rounds in
  let apply_trigger ~delta_out tr =
    let k = Trigger.key tr in
    if not (Key_table.mem fired k) then begin
      Key_table.add fired k ();
      let fire () =
        incr triggers_fired;
        List.iter
          (fun (pred, t) ->
            if Instance.add_fact inst pred t then begin
              incr new_facts;
              let existing = Option.value ~default:[] (Symbol.Table.find_opt delta_out pred) in
              Symbol.Table.replace delta_out pred (t :: existing)
            end)
          (Trigger.head_facts tr gen)
      in
      match variant with
      | Oblivious -> fire ()
      | Restricted -> if not (Trigger.is_satisfied tr inst) then fire ()
    end
  in
  let round delta =
    let delta_out : Tuple.t list Symbol.Table.t = Symbol.Table.create 16 in
    let triggers = Trigger.find_new program inst ~delta in
    List.iter (apply_trigger ~delta_out) triggers;
    delta_out
  in
  let delta = ref (round None) in
  rounds := 1;
  while Symbol.Table.length !delta > 0 && budget_ok () do
    delta := round (Some !delta);
    incr rounds
  done;
  if Symbol.Table.length !delta > 0 then outcome := Budget_exhausted;
  {
    outcome = !outcome;
    rounds = !rounds;
    new_facts = !new_facts;
    nulls = Null_gen.count gen;
    triggers_fired = !triggers_fired;
  }
