lib/chase/egd.mli: Atom Format Symbol Tgd_logic
