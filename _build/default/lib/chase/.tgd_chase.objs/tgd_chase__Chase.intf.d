lib/chase/chase.mli: Instance Program Tgd_db Tgd_logic
