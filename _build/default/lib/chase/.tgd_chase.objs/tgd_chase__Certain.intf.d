lib/chase/certain.mli: Chase Cq Instance Program Tgd_db Tgd_logic Tuple
