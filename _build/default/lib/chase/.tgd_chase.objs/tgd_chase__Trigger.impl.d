lib/chase/trigger.ml: Array Atom Eval List Null_gen Program Symbol Term Tgd Tgd_db Tgd_logic Value
