lib/chase/trigger.mli: Eval Instance Null_gen Program Symbol Tgd Tgd_db Tgd_logic Tuple
