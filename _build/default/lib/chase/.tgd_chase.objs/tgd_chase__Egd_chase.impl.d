lib/chase/egd_chase.ml: Array Chase Egd Eval Format Instance List Symbol Tgd_db Tgd_logic Value
