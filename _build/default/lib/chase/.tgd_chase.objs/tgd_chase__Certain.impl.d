lib/chase/certain.ml: Chase Eval Instance List Tgd_db Tuple
