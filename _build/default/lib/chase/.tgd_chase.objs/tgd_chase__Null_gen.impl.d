lib/chase/null_gen.ml: Tgd_db
