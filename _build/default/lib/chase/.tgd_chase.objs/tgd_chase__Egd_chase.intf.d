lib/chase/egd_chase.mli: Chase Egd Format Instance Tgd_db Tgd_logic Value
