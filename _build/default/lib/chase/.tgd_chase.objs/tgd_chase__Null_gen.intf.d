lib/chase/null_gen.mli: Tgd_db
