lib/chase/chase.ml: Hashtbl Instance List Null_gen Option String Symbol Tgd_db Tgd_logic Trigger Tuple
