lib/chase/egd.ml: Atom Format List Printf Symbol Term Tgd_logic
