open Tgd_logic

type t = {
  rule : Tgd.t;
  piece : Atom.t list;
  remainder : Atom.t list;
  subst : Subst.t;
}

module Int_set = Set.Make (Int)

let head_atom (r : Tgd.t) =
  match r.Tgd.head with
  | [ a ] -> a
  | [] | _ :: _ :: _ -> invalid_arg "Piece.all: rule must be single-head"

(* Unify every atom of the piece (given by indexes into [body]) with the
   head atom, under one substitution. *)
let unify_piece body alpha piece_ixs =
  Int_set.fold
    (fun i acc ->
      match acc with
      | None -> None
      | Some s -> Unify.atoms s (List.nth body i) alpha)
    piece_ixs (Some Subst.empty)

let all (q : Cq.t) rule0 =
  let rule = Tgd.rename_apart rule0 in
  let alpha = head_atom rule in
  let body = q.Cq.body in
  let answer_vars = Cq.answer_vars q in
  let frontier = Tgd.frontier rule in
  let ex_heads = Symbol.Set.elements (Tgd.existential_head_vars rule) in
  (* Atoms of the body containing a given variable. *)
  let atoms_with_var v =
    let acc = ref Int_set.empty in
    List.iteri (fun i a -> if Symbol.Set.mem v (Atom.vars a) then acc := Int_set.add i !acc) body;
    !acc
  in
  (* Grow a piece from a set of atom indexes; [None] when the piece unifier
     is impossible. *)
  let rec grow piece_ixs =
    match unify_piece body alpha piece_ixs with
    | None -> None
    | Some s ->
      let walk_var v = Subst.walk s (Term.Var v) in
      (* Validate every existential head variable's class; collect atoms
         that must join the piece. *)
      let rec check_ex to_add = function
        | [] -> Ok to_add
        | y :: rest ->
          let rep = walk_var y in
          (match rep with
          | Term.Const _ -> Error ()
          | Term.Var _ ->
            let bad_frontier = Symbol.Set.exists (fun f -> Term.equal (walk_var f) rep) frontier in
            let bad_answer = Symbol.Set.exists (fun a -> Term.equal (walk_var a) rep) answer_vars in
            let bad_ex =
              List.exists
                (fun y' -> (not (Symbol.equal y y')) && Term.equal (walk_var y') rep)
                ex_heads
            in
            if bad_frontier || bad_answer || bad_ex then Error ()
            else begin
              (* Query variables in the class of [y] must occur only inside
                 the piece. *)
              let qvars = Cq.vars q in
              let in_class = Symbol.Set.filter (fun v -> Term.equal (walk_var v) rep) qvars in
              let occurrences =
                Symbol.Set.fold (fun v acc -> Int_set.union acc (atoms_with_var v)) in_class
                  Int_set.empty
              in
              let outside = Int_set.diff occurrences piece_ixs in
              check_ex (Int_set.union to_add outside) rest
            end)
      in
      (match check_ex Int_set.empty ex_heads with
      | Error () -> None
      | Ok to_add ->
        if Int_set.is_empty to_add then Some (piece_ixs, s)
        else grow (Int_set.union piece_ixs to_add))
  in
  let starts =
    let acc = ref [] in
    List.iteri
      (fun i (a : Atom.t) -> if Symbol.equal a.Atom.pred alpha.Atom.pred then acc := i :: !acc)
      body;
    List.rev !acc
  in
  let seen = Hashtbl.create 8 in
  let results = ref [] in
  let consider start =
    match grow (Int_set.singleton start) with
    | None -> ()
    | Some (piece_ixs, s) ->
      let key = Int_set.elements piece_ixs in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        let piece = List.filteri (fun i _ -> Int_set.mem i piece_ixs) body in
        let remainder = List.filteri (fun i _ -> not (Int_set.mem i piece_ixs)) body in
        results := { rule; piece; remainder; subst = s } :: !results
      end
  in
  List.iter consider starts;
  List.rev !results

let apply (q : Cq.t) pu =
  let new_body = Subst.apply_atoms pu.subst (pu.remainder @ pu.rule.Tgd.body) in
  let new_answer = Subst.apply_terms pu.subst q.Cq.answer in
  Cq.make ~name:q.Cq.name ~answer:new_answer ~body:new_body
