(** Piece unifiers: the sound unification of a subset of query atoms with the
    head of a (single-head) TGD.

    A piece unifier of a CQ [q] with a rule [R : body -> alpha] is a
    non-empty subset [Q'] of [body(q)] together with a most general unifier
    [u] of every atom of [Q'] with [alpha], such that for every existential
    head variable [y] of [R], the unification class of [y]:
    - contains no constant,
    - contains no answer variable of [q],
    - contains no frontier variable of [R],
    - contains no other existential head variable of [R], and
    - contains only query variables all of whose occurrences in [body(q)]
      are inside [Q'].

    The last condition is enforced constructively: starting from a single
    atom, the piece is grown with every outside atom that shares a variable
    with an existential class, until it stabilises or fails. The resulting
    unifiers are exactly the most general single-piece unifiers rooted at
    each body atom. *)

open Tgd_logic

type t = {
  rule : Tgd.t;  (** the rule, with variables renamed apart from the query *)
  piece : Atom.t list;  (** the unified query atoms [Q'] *)
  remainder : Atom.t list;  (** [body(q) \ Q'] *)
  subst : Subst.t;  (** the most general unifier *)
}

val all : Cq.t -> Tgd.t -> t list
(** Every most general piece unifier of the query with the rule. The rule
    must be single-head; raises [Invalid_argument] otherwise. *)

val apply : Cq.t -> t -> Cq.t
(** The one-step rewriting [q[Q' := body(R)]u]: replace the piece by the rule
    body and apply the unifier everywhere, including the answer tuple. *)
