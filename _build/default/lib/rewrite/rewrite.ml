open Tgd_logic

type outcome =
  | Complete
  | Truncated of string

type stats = {
  generated : int;
  explored : int;
  kept : int;
  max_depth : int;
}

type result = {
  ucq : Cq.ucq;
  outcome : outcome;
  stats : stats;
}

type config = {
  max_cqs : int;
  max_depth : int;
  max_body_atoms : int;
  prune_subsumed : bool;
}

let default_config = { max_cqs = 20_000; max_depth = 1_000; max_body_atoms = 64; prune_subsumed = true }

(* A kept disjunct; [alive] is cleared when a more general CQ retires it. *)
type entry = {
  cq : Cq.t;
  mutable alive : bool;
}

(* Factorizations of [q]: for every unifiable pair of body atoms, the
   specialisation that merges them. *)
let factorizations (q : Cq.t) =
  let atoms = Array.of_list q.Cq.body in
  let n = Array.length atoms in
  let acc = ref [] in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      if Symbol.equal atoms.(i).Atom.pred atoms.(j).Atom.pred then
        match Unify.mgu atoms.(i) atoms.(j) with
        | None -> ()
        | Some s ->
          let body = List.sort_uniq Atom.compare (Subst.apply_atoms s q.Cq.body) in
          let answer = Subst.apply_terms s q.Cq.answer in
          acc := Cq.make ~name:q.Cq.name ~answer ~body :: !acc
    done
  done;
  !acc

(* Rules indexed by head predicate: a rule is only relevant to a CQ whose
   body mentions that predicate. *)
let index_rules program =
  let index = Symbol.Table.create 16 in
  List.iter
    (fun (r : Tgd.t) ->
      match r.Tgd.head with
      | [ h ] ->
        let existing = Option.value ~default:[] (Symbol.Table.find_opt index h.Atom.pred) in
        Symbol.Table.replace index h.Atom.pred (r :: existing)
      | _ -> invalid_arg "Rewrite: program must be single-head normalized")
    (Program.tgds program);
  index

let rewrite_steps index (q : Cq.t) =
  let preds =
    List.fold_left (fun acc (a : Atom.t) -> Symbol.Set.add a.Atom.pred acc) Symbol.Set.empty q.Cq.body
  in
  Symbol.Set.fold
    (fun pred acc ->
      match Symbol.Table.find_opt index pred with
      | None -> acc
      | Some rules ->
        List.fold_left
          (fun acc rule -> List.rev_append (List.map (fun pu -> Piece.apply q pu) (Piece.all q rule)) acc)
          acc rules)
    preds []

let mentions_aux_pred aux_preds (q : Cq.t) =
  List.exists (fun (a : Atom.t) -> Symbol.Set.mem a.Atom.pred aux_preds) q.Cq.body

let ucq ?(config = default_config) program0 q0 =
  let program = Program.single_head_normalize program0 in
  let aux_preds =
    let original =
      List.fold_left
        (fun acc (p, _) -> Symbol.Set.add p acc)
        Symbol.Set.empty (Program.predicates program0)
    in
    List.fold_left
      (fun acc (p, _) -> if Symbol.Set.mem p original then acc else Symbol.Set.add p acc)
      Symbol.Set.empty (Program.predicates program)
  in
  let rule_index = index_rules program in
  let q0 = Cq.canonical q0 in
  let generated = ref 1 in
  let explored = ref 0 in
  let max_depth_seen = ref 0 in
  let kept : entry list ref = ref [] in
  let seen : (Cq.t, unit) Hashtbl.t = Hashtbl.create 256 in
  let queue : (int * Cq.t) Queue.t = Queue.create () in
  let outcome = ref Complete in
  let stop reason = outcome := Truncated reason in
  (* Install a candidate: dedup by canonical form, prune by containment. *)
  let add depth c =
    let c = Cq.canonical c in
    if List.length c.Cq.body <= config.max_body_atoms && not (Hashtbl.mem seen c) then begin
      Hashtbl.add seen c ();
      incr generated;
      (* [c] is dropped if a kept disjunct subsumes it — unless they are
         equivalent and [c] has a strictly smaller body, in which case [c]
         replaces the bulkier form (e.g. a factorized self-join). *)
      let subsumed =
        config.prune_subsumed
        && List.exists
             (fun e ->
               e.alive
               && Containment.contained c e.cq
               && not
                    (List.length c.Cq.body < List.length e.cq.Cq.body
                    && Containment.contained e.cq c))
             !kept
      in
      if not subsumed then begin
        if config.prune_subsumed then
          List.iter (fun e -> if e.alive && Containment.contained e.cq c then e.alive <- false) !kept;
        kept := { cq = c; alive = true } :: !kept;
        Queue.add (depth, c) queue
      end
    end
  in
  add 0 q0;
  (try
     while not (Queue.is_empty queue) do
       if !generated >= config.max_cqs then begin
         stop (Printf.sprintf "budget: %d CQs generated" config.max_cqs);
         raise Exit
       end;
       let depth, q = Queue.pop queue in
       (* A retired disjunct's expansions are covered by its subsumer. *)
       let still_alive =
         (not config.prune_subsumed)
         || List.exists (fun e -> e.alive && Cq.equal e.cq q) !kept
       in
       if still_alive then begin
         incr explored;
         if depth > !max_depth_seen then max_depth_seen := depth;
         if depth >= config.max_depth then stop (Printf.sprintf "budget: depth %d" config.max_depth)
         else begin
           List.iter (add (depth + 1)) (rewrite_steps rule_index q);
           List.iter (add (depth + 1)) (factorizations q)
         end
       end
     done
   with Exit -> ());
  let final =
    List.rev_map (fun e -> e.cq) (List.filter (fun e -> e.alive) !kept)
    |> List.filter (fun c -> not (mentions_aux_pred aux_preds c))
  in
  let final = Containment.minimize_ucq final in
  {
    ucq = final;
    outcome = !outcome;
    stats =
      { generated = !generated; explored = !explored; kept = List.length final; max_depth = !max_depth_seen };
  }

let ucq_of_union ?config program qs =
  let results = List.map (ucq ?config program) qs in
  let combined = Containment.minimize_ucq (List.concat_map (fun r -> r.ucq) results) in
  let outcome =
    List.fold_left
      (fun acc r -> match acc with Truncated _ -> acc | Complete -> r.outcome)
      Complete results
  in
  let stats =
    List.fold_left
      (fun acc r ->
        {
          generated = acc.generated + r.stats.generated;
          explored = acc.explored + r.stats.explored;
          kept = List.length combined;
          max_depth = max acc.max_depth r.stats.max_depth;
        })
      { generated = 0; explored = 0; kept = List.length combined; max_depth = 0 }
      results
  in
  { ucq = combined; outcome; stats }
