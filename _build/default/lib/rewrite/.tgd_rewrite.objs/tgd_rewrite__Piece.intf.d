lib/rewrite/piece.mli: Atom Cq Subst Tgd Tgd_logic
