lib/rewrite/rewrite.ml: Array Atom Containment Cq Hashtbl List Option Piece Printf Program Queue Subst Symbol Tgd Tgd_logic Unify
