lib/rewrite/piece.ml: Atom Cq Hashtbl Int List Set Subst Symbol Term Tgd Tgd_logic Unify
