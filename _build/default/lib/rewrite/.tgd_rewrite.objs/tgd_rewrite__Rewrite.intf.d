lib/rewrite/rewrite.mli: Cq Program Tgd_logic
