lib/obda/constraints.mli: Atom Cq Format Instance Program Tgd_db Tgd_logic Tgd_rewrite
