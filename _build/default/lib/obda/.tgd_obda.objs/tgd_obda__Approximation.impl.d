lib/obda/approximation.ml: Atom Datalog Eval Instance List Printf Program Symbol Term Tgd Tgd_core Tgd_db Tgd_logic Tgd_rewrite Tuple
