lib/obda/obda_system.ml: Constraints Cq Eval Instance List Mapping Program Sql Tgd_chase Tgd_db Tgd_logic Tgd_rewrite Tuple Unfold
