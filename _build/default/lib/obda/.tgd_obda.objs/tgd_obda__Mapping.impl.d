lib/obda/mapping.ml: Array Atom Eval Format Instance List Printf Symbol Term Tgd_db Tgd_logic Value
