lib/obda/mapping.mli: Atom Format Instance Symbol Tgd_db Tgd_logic
