lib/obda/constraints.ml: Atom Cq Eval Format List Printf Tgd_db Tgd_logic Tgd_rewrite
