lib/obda/unfold.ml: Atom Containment Cq List Mapping Subst Tgd_logic Unify
