lib/obda/obda_system.mli: Constraints Cq Instance Mapping Program Tgd_db Tgd_logic Tgd_rewrite Tuple
