lib/obda/unfold.mli: Cq Mapping Tgd_logic
