lib/obda/approximation.mli: Cq Instance Program Tgd Tgd_db Tgd_logic Tgd_rewrite Tuple
