(** Mapping unfolding: translate a UCQ over the ontology schema into a UCQ
    over the source schema by replacing each ontology atom with the source
    query of a matching mapping (every combination of mapping choices yields
    one disjunct). Together with {!Tgd_rewrite.Rewrite}, this completes the
    classical OBDA pipeline: ontology rewriting, then mapping unfolding,
    then SQL over the sources. *)

open Tgd_logic

val cq : Mapping.t list -> Cq.t -> Cq.ucq
(** All unfoldings of one CQ. A disjunct is produced for every way of
    covering every body atom by a mapping whose target unifies with it;
    atoms with no matching mapping kill the candidate (the result may be
    empty). *)

val ucq : ?minimize:bool -> Mapping.t list -> Cq.ucq -> Cq.ucq
(** Union of the unfoldings of each disjunct, minimized by containment by
    default. *)
