(** Negative constraints (denial constraints): [body -> falsum].

    DL-Lite and OBDA systems pair positive inclusions (our TGDs) with
    negative ones (disjointness); query answering is meaningful only over
    consistent data. Consistency reduces to boolean query answering: the
    data violates [body -> falsum] iff the certain answer to the boolean CQ
    [() :- body] is yes, which we decide by FO-rewriting the body and
    evaluating over the raw instance. *)

open Tgd_logic
open Tgd_db

type t = private {
  name : string;
  body : Atom.t list;
}

val make : ?name:string -> Atom.t list -> t
(** Raises [Invalid_argument] on an empty body. *)

val to_boolean_cq : t -> Cq.t

type violation = {
  constraint_ : t;
  witness : Cq.t;  (** the rewritten disjunct that matched the data *)
}

type verdict = {
  consistent : bool;
  violations : violation list;
  complete : bool;  (** [false] if some constraint rewriting was truncated *)
}

val check :
  ?config:Tgd_rewrite.Rewrite.config -> Program.t -> t list -> Instance.t -> verdict
(** Rewrite every constraint body under the TGDs and evaluate over the
    instance. When [complete] is [false] the verdict "consistent" is only a
    failure to find a violation within the rewriting budget. *)

val pp : Format.formatter -> t -> unit
