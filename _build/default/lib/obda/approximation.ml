open Tgd_logic
open Tgd_db

let is_wr ?max_nodes p = (Tgd_core.Wr.check ?max_nodes p).Tgd_core.Wr.wr

let wr_subset ?max_nodes p =
  if is_wr ?max_nodes p then (p, [])
  else
    let keep, removed =
      List.fold_left
        (fun (keep, removed) r ->
          let candidate = Program.make_exn ~name:p.Program.name (List.rev (r :: keep)) in
          if is_wr ?max_nodes candidate then (r :: keep, removed) else (keep, r :: removed))
        ([], []) (Program.tgds p)
    in
    (Program.make_exn ~name:(p.Program.name ^ "_wr") (List.rev keep), List.rev removed)

let datalog_relaxation p =
  let relax (r : Tgd.t) =
    let ex = Tgd.existential_head_vars r in
    let subst v =
      if Symbol.Set.mem v ex then
        Term.Const (Symbol.intern (Printf.sprintf "sk_%s_%s" r.Tgd.name (Symbol.name v)))
      else Term.Var v
    in
    let apply = Atom.apply (fun t -> match t with Term.Var v -> subst v | Term.Const _ -> t) in
    Tgd.make ~name:r.Tgd.name ~body:r.Tgd.body ~head:(List.map apply r.Tgd.head)
  in
  Program.make_exn ~name:(p.Program.name ^ "_relaxed") (List.map relax (Program.tgds p))

type interval = {
  lower : Tuple.t list;
  upper : Tuple.t list;
  exact : bool;
  removed_rules : string list;
}

let null_free = List.filter (fun t -> not (Tuple.has_null t))

let interval_answers ?max_nodes ?config p inst q =
  let subset, removed = wr_subset ?max_nodes p in
  (* Lower bound: exact certain answers under the sound subset. Even if the
     rewriting truncates (it should not on a WR subset, but the budget is a
     budget) the evaluated disjuncts are sound. *)
  let lower_rewriting = Tgd_rewrite.Rewrite.ucq ?config subset q in
  let lower = null_free (Eval.ucq inst lower_rewriting.Tgd_rewrite.Rewrite.ucq) in
  (* Upper bound: Datalog saturation of the constant-Skolemized program. *)
  let relaxed = datalog_relaxation p in
  let work = Instance.copy inst in
  let _ = Datalog.saturate relaxed work in
  let upper = null_free (Eval.cq work q) in
  let exact =
    List.length lower = List.length upper && List.for_all2 Tuple.equal lower upper
  in
  { lower; upper; exact; removed_rules = List.map (fun (r : Tgd.t) -> r.Tgd.name) removed }
