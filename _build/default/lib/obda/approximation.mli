(** Approximate query answering for sets of TGDs that are not (or cannot be
    shown to be) WR — the research direction of the paper's Section 7: "one
    future research direction is thus to explore this setting and to define
    approximation techniques".

    Two complementary approximations bracket the certain answers:

    - a {b sound lower bound}: greedily keep a maximal subset [P'] of the
      rules such that [P'] stays WR (or, optionally, satisfies any other
      FO-rewritability witness). Since [P' ⊆ P], every certain answer under
      [P'] is one under [P], and [P'] being FO-rewritable it is computed
      exactly by rewriting;
    - a {b complete upper bound}: replace every existential head variable by
      a fresh constant shared by all applications of its rule (a constant
      Skolemization). The relaxed program is plain Datalog, saturation
      terminates, and every certain answer of [(P, D)] is an answer of the
      relaxation (merging witnesses only adds homomorphisms).

    When the two bounds coincide the certain answers are known exactly even
    though [P] itself was intractable for the classifier. *)

open Tgd_logic
open Tgd_db

val wr_subset : ?max_nodes:int -> Program.t -> Program.t * Tgd.t list
(** [wr_subset p] returns [(p', removed)] where [p'] keeps a maximal prefix-
    greedy subset of the rules with [Wr.check] accepting it, and [removed]
    lists the rules dropped. If [p] is already WR, [removed] is empty. *)

val datalog_relaxation : Program.t -> Program.t
(** The constant-Skolemized program: each existential head variable [z] of a
    rule [r] becomes the constant ["sk_r_z"]. The result has no existential
    variables. *)

type interval = {
  lower : Tuple.t list;  (** certain answers under the WR subset (sound) *)
  upper : Tuple.t list;  (** answers under the relaxation (complete) *)
  exact : bool;  (** [lower = upper]: the certain answers are known exactly *)
  removed_rules : string list;  (** rules dropped for the lower bound *)
}

val interval_answers :
  ?max_nodes:int -> ?config:Tgd_rewrite.Rewrite.config -> Program.t -> Instance.t -> Cq.t -> interval
(** Bracket [cert(q, P, D)]. The lower bound is computed by rewriting over
    the WR subset (falling back to bounded rewriting of the full program if
    even the subset rewriting truncates, still sound); the upper bound by
    Datalog saturation of the relaxation. *)
