(** GAV mapping assertions: the layer the paper places between the ontology
    and the data sources ("an additional layer of information between the
    ontology and the data sources is needed as a way of relating the two
    layers through mapping assertions", Section 1).

    A mapping assertion [m : phi(x) ~> p(x)] pairs a conjunctive query
    [phi] over the {e source} schema with a single atom over the
    {e ontology} schema; evaluating [phi] over the source database and
    instantiating the target atom populates the ontology's virtual ABox. *)

open Tgd_logic
open Tgd_db

type t = private {
  name : string;
  source : Atom.t list;  (** body over the source schema *)
  target : Atom.t;  (** atom over the ontology schema *)
}

val make : ?name:string -> source:Atom.t list -> target:Atom.t -> t
(** Raises [Invalid_argument] if the source is empty or the target mentions
    a variable that does not occur in the source (unsafe mapping). *)

val target_pred : t -> Symbol.t

val for_pred : t list -> Symbol.t -> t list
(** Mappings whose target has the given predicate. *)

val materialize : t list -> Instance.t -> Instance.t
(** The virtual ABox, materialized: evaluate every mapping's source query
    over the source instance and collect the instantiated target atoms into
    a fresh instance over the ontology schema. *)

val rename_apart : t -> t
val pp : Format.formatter -> t -> unit
