(** The complete OBDA system of the paper's introduction: an ontology (TGDs)
    on top of relational sources, linked by mapping assertions, with
    negative constraints for consistency.

    Query answering runs the classical virtual pipeline:
    + FO-rewrite the user query against the ontology ({!Tgd_rewrite.Rewrite});
    + unfold the rewriting through the mappings ({!Unfold});
    + evaluate the resulting UCQ (or its SQL form) directly on the sources.

    No ABox is ever materialized on this path; {!answer_materialized} runs
    the opposite strategy (materialize the virtual ABox, chase it) and is
    used as a cross-check and a baseline. *)

open Tgd_logic
open Tgd_db

type t = private {
  ontology : Program.t;
  mappings : Mapping.t list;
  constraints : Constraints.t list;
}

val make : ontology:Program.t -> ?mappings:Mapping.t list -> ?constraints:Constraints.t list -> unit -> t

type answer = {
  tuples : Tuple.t list;  (** certain answers, null-free, sorted *)
  source_ucq : Cq.ucq;  (** the final UCQ over the source schema *)
  sql : string option;  (** its SQL form, [None] if the UCQ is empty *)
  rewriting_complete : bool;
}

val answer : ?config:Tgd_rewrite.Rewrite.config -> t -> source:Instance.t -> Cq.t -> answer
(** Virtual approach: rewrite, unfold, evaluate on the sources. Without
    mappings the ontology schema is assumed to be the source schema
    (identity mappings). *)

val answer_materialized :
  ?max_rounds:int -> ?max_facts:int -> t -> source:Instance.t -> Cq.t -> Tuple.t list * bool
(** Materialization approach: build the ABox through the mappings, chase it
    with the ontology, evaluate. Returns the answers and whether the chase
    reached a fixpoint. *)

val consistent :
  ?config:Tgd_rewrite.Rewrite.config -> t -> source:Instance.t -> Constraints.verdict
(** Check the negative constraints against the virtual ABox (rewriting +
    unfolding of each constraint body). *)
