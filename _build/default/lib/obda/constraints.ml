open Tgd_logic
open Tgd_db

type t = {
  name : string;
  body : Atom.t list;
}

let counter = ref 0

let make ?name body =
  if body = [] then invalid_arg "Constraints.make: empty body";
  let name =
    match name with
    | Some n -> n
    | None ->
      incr counter;
      Printf.sprintf "nc%d" !counter
  in
  { name; body }

let to_boolean_cq nc = Cq.make ~name:nc.name ~answer:[] ~body:nc.body

type violation = {
  constraint_ : t;
  witness : Cq.t;
}

type verdict = {
  consistent : bool;
  violations : violation list;
  complete : bool;
}

let check ?config program constraints inst =
  let complete = ref true in
  let violations =
    List.concat_map
      (fun nc ->
        let r = Tgd_rewrite.Rewrite.ucq ?config program (to_boolean_cq nc) in
        (match r.Tgd_rewrite.Rewrite.outcome with
        | Tgd_rewrite.Rewrite.Complete -> ()
        | Tgd_rewrite.Rewrite.Truncated _ -> complete := false);
        List.filter_map
          (fun disjunct ->
            if Eval.cq_exists inst disjunct then Some { constraint_ = nc; witness = disjunct }
            else None)
          r.Tgd_rewrite.Rewrite.ucq)
      constraints
  in
  { consistent = violations = []; violations; complete = !complete }

let pp ppf nc =
  let atoms ppf l =
    Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") Atom.pp ppf l
  in
  Format.fprintf ppf "[%s] %a -> falsum" nc.name atoms nc.body
