open Tgd_logic
open Tgd_db

type t = {
  ontology : Program.t;
  mappings : Mapping.t list;
  constraints : Constraints.t list;
}

let make ~ontology ?(mappings = []) ?(constraints = []) () = { ontology; mappings; constraints }

type answer = {
  tuples : Tuple.t list;
  source_ucq : Cq.ucq;
  sql : string option;
  rewriting_complete : bool;
}

let null_free = List.filter (fun t -> not (Tuple.has_null t))

let unfold_if_mapped sys ucq =
  match sys.mappings with [] -> ucq | mappings -> Unfold.ucq mappings ucq

let answer ?config sys ~source q =
  let r = Tgd_rewrite.Rewrite.ucq ?config sys.ontology q in
  let source_ucq = unfold_if_mapped sys r.Tgd_rewrite.Rewrite.ucq in
  let tuples = null_free (Eval.ucq source source_ucq) in
  let sql = match source_ucq with [] -> None | ucq -> Some (Sql.of_ucq ucq) in
  {
    tuples;
    source_ucq;
    sql;
    rewriting_complete =
      (match r.Tgd_rewrite.Rewrite.outcome with
      | Tgd_rewrite.Rewrite.Complete -> true
      | Tgd_rewrite.Rewrite.Truncated _ -> false);
  }

let answer_materialized ?max_rounds ?max_facts sys ~source q =
  let abox =
    match sys.mappings with
    | [] -> Instance.copy source
    | mappings -> Mapping.materialize mappings source
  in
  let stats = Tgd_chase.Chase.run ?max_rounds ?max_facts sys.ontology abox in
  let answers = null_free (Eval.cq abox q) in
  (answers, stats.Tgd_chase.Chase.outcome = Tgd_chase.Chase.Terminated)

let consistent ?config sys ~source =
  (* Rewrite each constraint body over the ontology, unfold through the
     mappings, and look for a match on the sources. *)
  let complete = ref true in
  let violations =
    List.concat_map
      (fun nc ->
        let r = Tgd_rewrite.Rewrite.ucq ?config sys.ontology (Constraints.to_boolean_cq nc) in
        (match r.Tgd_rewrite.Rewrite.outcome with
        | Tgd_rewrite.Rewrite.Complete -> ()
        | Tgd_rewrite.Rewrite.Truncated _ -> complete := false);
        let unfolded = unfold_if_mapped sys r.Tgd_rewrite.Rewrite.ucq in
        List.filter_map
          (fun disjunct ->
            if Eval.cq_exists source disjunct then
              Some { Constraints.constraint_ = nc; witness = disjunct }
            else None)
          unfolded)
      sys.constraints
  in
  {
    Constraints.consistent = violations = [];
    violations;
    complete = !complete;
  }
