open Tgd_logic

(* Unfold the atoms of [q] left to right, threading the substitution built
   by the successive target unifications. *)
let cq mappings (q : Cq.t) =
  let results = ref [] in
  let rec go subst acc_atoms remaining =
    match remaining with
    | [] ->
      let body = Subst.apply_atoms subst (List.rev acc_atoms) in
      let answer = Subst.apply_terms subst q.Cq.answer in
      results := Cq.make ~name:q.Cq.name ~answer ~body :: !results
    | (a : Atom.t) :: rest ->
      let candidates = Mapping.for_pred mappings a.Atom.pred in
      List.iter
        (fun m ->
          let m = Mapping.rename_apart m in
          match Unify.atoms subst (Subst.apply_atom subst a) m.Mapping.target with
          | None -> ()
          | Some subst' -> go subst' (List.rev_append m.Mapping.source acc_atoms) rest)
        candidates
  in
  go Subst.empty [] q.Cq.body;
  List.rev_map Cq.canonical !results |> List.sort_uniq Cq.compare

let ucq ?(minimize = true) mappings disjuncts =
  let unfolded = List.concat_map (cq mappings) disjuncts |> List.sort_uniq Cq.compare in
  if minimize then Containment.minimize_ucq unfolded else unfolded
