open Tgd_logic
open Tgd_db

type t = {
  name : string;
  source : Atom.t list;
  target : Atom.t;
}

let counter = ref 0

let make ?name ~source ~target =
  if source = [] then invalid_arg "Mapping.make: empty source query";
  let source_vars =
    List.fold_left (fun acc a -> Symbol.Set.union acc (Atom.vars a)) Symbol.Set.empty source
  in
  if not (Symbol.Set.subset (Atom.vars target) source_vars) then
    invalid_arg "Mapping.make: unsafe mapping (target variable not in source)";
  let name =
    match name with
    | Some n -> n
    | None ->
      incr counter;
      Printf.sprintf "m%d" !counter
  in
  { name; source; target }

let target_pred m = m.target.Atom.pred

let for_pred mappings pred =
  List.filter (fun m -> Symbol.equal (target_pred m) pred) mappings

let materialize mappings source_db =
  let abox = Instance.create () in
  List.iter
    (fun m ->
      Eval.bindings source_db m.source (fun env ->
          let t =
            Array.map
              (fun term ->
                match term with
                | Term.Const c -> Value.Const c
                | Term.Var v -> (
                  match Symbol.Map.find_opt v env with
                  | Some value -> value
                  | None -> assert false (* safety checked at make *)))
              m.target.Atom.args
          in
          ignore (Instance.add_fact abox m.target.Atom.pred t)))
    mappings;
  abox

let rename_apart m =
  let table = Symbol.Table.create 8 in
  let rename t =
    match t with
    | Term.Const _ -> t
    | Term.Var v -> (
      match Symbol.Table.find_opt table v with
      | Some v' -> Term.Var v'
      | None ->
        let v' = Symbol.fresh (Symbol.name v) in
        Symbol.Table.add table v v';
        Term.Var v')
  in
  { m with source = List.map (Atom.apply rename) m.source; target = Atom.apply rename m.target }

let pp ppf m =
  let atoms ppf l =
    Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") Atom.pp ppf l
  in
  Format.fprintf ppf "[%s] %a ~> %a" m.name atoms m.source Atom.pp m.target
