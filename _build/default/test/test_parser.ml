(* Unit tests for the lexer, parser, and printer (round-tripping). *)

open Tgd_logic
module P = Tgd_parser.Parser

let parse_ok src =
  match P.parse_string src with
  | Ok doc -> doc
  | Error e -> Alcotest.fail (Format.asprintf "unexpected parse error: %a" P.pp_error e)

let parse_err src =
  match P.parse_string src with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> e

(* ------------------------------------------------------------------ *)

let test_parse_rule () =
  let doc = parse_ok "[R1] s(Y1,Y2,Y3), t(Y4) -> r(Y1,Y3)." in
  match doc.P.rules with
  | [ r ] ->
    Alcotest.(check string) "name" "R1" r.Tgd.name;
    Alcotest.(check int) "body atoms" 2 (List.length r.Tgd.body);
    Alcotest.(check int) "head atoms" 1 (List.length r.Tgd.head)
  | _ -> Alcotest.fail "expected one rule"

let test_parse_anonymous_rule () =
  let doc = parse_ok "p(X) -> q(X, Z)." in
  match doc.P.rules with
  | [ r ] -> Alcotest.(check bool) "generated name" true (String.length r.Tgd.name > 0)
  | _ -> Alcotest.fail "expected one rule"

let test_parse_multi_head () =
  let doc = parse_ok "emp(X) -> works(X, D), dept(D)." in
  match doc.P.rules with
  | [ r ] -> Alcotest.(check int) "two head atoms" 2 (List.length r.Tgd.head)
  | _ -> Alcotest.fail "expected one rule"

let test_parse_fact () =
  let doc = parse_ok "edge(a, b). flag." in
  Alcotest.(check int) "two facts" 2 (List.length doc.P.facts);
  Alcotest.(check int) "no rules" 0 (List.length doc.P.rules)

let test_parse_non_ground_fact_rejected () =
  let e = parse_err "edge(a, X)." in
  Alcotest.(check bool) "message mentions ground" true
    (String.length e.P.message > 0)

let test_parse_query () =
  let doc = parse_ok "q(X, Y) :- edge(X, Z), edge(Z, Y)." in
  match doc.P.queries with
  | [ q ] ->
    Alcotest.(check string) "name" "q" q.Cq.name;
    Alcotest.(check int) "arity" 2 (Cq.arity q);
    Alcotest.(check int) "body" 2 (List.length q.Cq.body)
  | _ -> Alcotest.fail "expected one query"

let test_parse_boolean_query () =
  let doc = parse_ok "q() :- edge(X, Y)." in
  match doc.P.queries with
  | [ q ] -> Alcotest.(check bool) "boolean" true (Cq.is_boolean q)
  | _ -> Alcotest.fail "expected one query"

let test_parse_unsafe_query_rejected () =
  let e = parse_err "q(X, W) :- edge(X, Y)." in
  Alcotest.(check bool) "unsafe reported" true (String.length e.P.message > 0)

let test_parse_quoted_and_comments () =
  let doc =
    parse_ok
      {|
        % a comment
        name("Alan Turing", alan).  # trailing comment
        p("with \"escape\"").
      |}
  in
  Alcotest.(check int) "two facts" 2 (List.length doc.P.facts);
  match doc.P.facts with
  | [ f1; f2 ] ->
    Alcotest.(check string) "quoted constant" "Alan Turing"
      (match f1.Atom.args.(0) with Term.Const c -> Symbol.name c | Term.Var _ -> "?");
    Alcotest.(check string) "escape" "with \"escape\""
      (match f2.Atom.args.(0) with Term.Const c -> Symbol.name c | Term.Var _ -> "?")
  | _ -> Alcotest.fail "expected two facts"

let test_parse_underscore_vars () =
  let doc = parse_ok "p(_x, Y) -> q(Y)." in
  match doc.P.rules with
  | [ r ] -> Alcotest.(check int) "underscore is a variable" 2 (Symbol.Set.cardinal (Tgd.body_vars r))
  | _ -> Alcotest.fail "expected one rule"

let test_parse_error_position () =
  let e = parse_err "p(a).\nq(b) ->" in
  Alcotest.(check int) "error on line 2" 2 e.P.line

let test_parse_numbers_as_constants () =
  let doc = parse_ok "age(alan, 41)." in
  match doc.P.facts with
  | [ f ] ->
    Alcotest.(check bool) "number is a constant" true (Term.is_const f.Atom.args.(1))
  | _ -> Alcotest.fail "expected one fact"

let test_parse_constraint () =
  let doc = parse_ok "[disj] student(X), faculty(X) -> falsum." in
  Alcotest.(check int) "no rules" 0 (List.length doc.P.rules);
  (match doc.P.constraints with
  | [ (name, body) ] ->
    Alcotest.(check string) "name" "disj" name;
    Alcotest.(check int) "body atoms" 2 (List.length body)
  | _ -> Alcotest.fail "expected one constraint");
  (* Anonymous constraints work too. *)
  let doc2 = parse_ok "p(X), q(X) -> falsum." in
  Alcotest.(check int) "anonymous constraint" 1 (List.length doc2.P.constraints)

let test_constraint_roundtrip () =
  let doc = parse_ok "[disj] student(X), faculty(X) -> falsum." in
  let text = Format.asprintf "%a" Tgd_parser.Printer.document doc in
  let doc' = parse_ok text in
  Alcotest.(check int) "round-trips" 1 (List.length doc'.P.constraints)

let test_falsum_with_args_is_a_rule () =
  (* Only the 0-ary [falsum] is reserved; falsum(X) is an ordinary head. *)
  let doc = parse_ok "p(X) -> falsum(X)." in
  Alcotest.(check int) "ordinary rule" 1 (List.length doc.P.rules);
  Alcotest.(check int) "no constraint" 0 (List.length doc.P.constraints)

let test_program_of_document () =
  let doc = parse_ok "p(X) -> q(X). p(a). q2(Y) :- q(Y)." in
  match P.program_of_document doc with
  | Ok p -> Alcotest.(check int) "one rule" 1 (Program.size p)
  | Error e -> Alcotest.fail e

let test_program_of_document_arity_clash () =
  let doc = parse_ok "p(X) -> q(X). p(a, b)." in
  match P.program_of_document doc with
  | Ok _ -> Alcotest.fail "arity clash across rule and fact accepted"
  | Error _ -> ()

let test_roundtrip_paper_examples () =
  List.iter
    (fun p ->
      let text = Tgd_parser.Printer.program_to_string p in
      let doc = parse_ok text in
      match P.program_of_document ~name:p.Program.name doc with
      | Error e -> Alcotest.fail e
      | Ok p' ->
        Alcotest.(check int) "same rule count" (Program.size p) (Program.size p');
        List.iter2
          (fun (r : Tgd.t) (r' : Tgd.t) ->
            Alcotest.(check string) "same rendering" (Tgd.to_string r) (Tgd.to_string r'))
          (Program.tgds p) (Program.tgds p'))
    [
      Tgd_core.Paper_examples.example1;
      Tgd_core.Paper_examples.example2;
      Tgd_core.Paper_examples.example3;
      Tgd_gen.University.ontology;
    ]

let test_roundtrip_queries () =
  let q =
    Cq.make ~name:"q" ~answer:[ Term.var "X" ]
      ~body:[ Atom.of_strings "p" [ Term.var "X"; Term.const "a" ] ]
  in
  let text = Format.asprintf "%a" Tgd_parser.Printer.query q in
  let doc = parse_ok text in
  match doc.P.queries with
  | [ q' ] -> Alcotest.(check string) "round-trips" (Cq.to_string q) (Cq.to_string q')
  | _ -> Alcotest.fail "expected one query"

let test_lexer_error_char () =
  let e = parse_err "p(a) & q(b)." in
  Alcotest.(check bool) "unexpected char reported" true (String.length e.P.message > 0)

let test_empty_input () =
  let doc = parse_ok "  % nothing here\n" in
  Alcotest.(check int) "no items" 0
    (List.length doc.P.rules + List.length doc.P.facts + List.length doc.P.queries)

let () =
  Alcotest.run "parser"
    [
      ( "parse",
        [
          Alcotest.test_case "named rule" `Quick test_parse_rule;
          Alcotest.test_case "anonymous rule" `Quick test_parse_anonymous_rule;
          Alcotest.test_case "multi-head rule" `Quick test_parse_multi_head;
          Alcotest.test_case "facts" `Quick test_parse_fact;
          Alcotest.test_case "non-ground fact rejected" `Quick test_parse_non_ground_fact_rejected;
          Alcotest.test_case "query" `Quick test_parse_query;
          Alcotest.test_case "boolean query" `Quick test_parse_boolean_query;
          Alcotest.test_case "unsafe query rejected" `Quick test_parse_unsafe_query_rejected;
          Alcotest.test_case "quoted constants and comments" `Quick test_parse_quoted_and_comments;
          Alcotest.test_case "underscore variables" `Quick test_parse_underscore_vars;
          Alcotest.test_case "error position" `Quick test_parse_error_position;
          Alcotest.test_case "numbers" `Quick test_parse_numbers_as_constants;
          Alcotest.test_case "lexer error" `Quick test_lexer_error_char;
          Alcotest.test_case "empty input" `Quick test_empty_input;
          Alcotest.test_case "negative constraints" `Quick test_parse_constraint;
          Alcotest.test_case "constraint roundtrip" `Quick test_constraint_roundtrip;
          Alcotest.test_case "falsum with args is a rule" `Quick test_falsum_with_args_is_a_rule;
        ] );
      ( "document",
        [
          Alcotest.test_case "program_of_document" `Quick test_program_of_document;
          Alcotest.test_case "cross-item arity clash" `Quick test_program_of_document_arity_clash;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "paper examples" `Quick test_roundtrip_paper_examples;
          Alcotest.test_case "queries" `Quick test_roundtrip_queries;
        ] );
    ]
