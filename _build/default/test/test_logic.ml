(* Unit tests for the logic substrate: symbols, terms, atoms, substitutions,
   unification, TGDs, CQs, homomorphisms, containment, programs. *)

open Tgd_logic

let v = Term.var
let c = Term.const
let atom p args = Atom.of_strings p args

(* ------------------------------------------------------------------ *)
(* Symbol *)

let test_symbol_interning () =
  let a1 = Symbol.intern "hello" in
  let a2 = Symbol.intern "hello" in
  let b = Symbol.intern "world" in
  Alcotest.(check bool) "same string, same symbol" true (Symbol.equal a1 a2);
  Alcotest.(check bool) "different strings differ" false (Symbol.equal a1 b);
  Alcotest.(check string) "name round-trips" "hello" (Symbol.name a1)

let test_symbol_fresh () =
  let base = Symbol.intern "f" in
  let f1 = Symbol.fresh "f" in
  let f2 = Symbol.fresh "f" in
  Alcotest.(check bool) "fresh differs from base" false (Symbol.equal base f1);
  Alcotest.(check bool) "fresh symbols differ" false (Symbol.equal f1 f2)

let test_symbol_fresh_avoids_collision () =
  (* Pre-intern the spelling the next fresh would use; fresh must skip it. *)
  let f = Symbol.fresh "collide" in
  let name = Symbol.name f in
  let _ = Symbol.intern name in
  let f2 = Symbol.fresh "collide" in
  Alcotest.(check bool) "skips interned spelling" false (String.equal name (Symbol.name f2))

(* ------------------------------------------------------------------ *)
(* Term *)

let test_term_kinds () =
  Alcotest.(check bool) "var is var" true (Term.is_var (v "X"));
  Alcotest.(check bool) "const is const" true (Term.is_const (c "a"));
  Alcotest.(check bool) "var and const differ" false (Term.equal (v "x") (c "x"))

let test_term_ordering () =
  Alcotest.(check bool) "vars before consts" true (Term.compare (v "A") (c "a") < 0);
  Alcotest.(check int) "equal terms compare 0" 0 (Term.compare (c "a") (c "a"))

(* ------------------------------------------------------------------ *)
(* Atom *)

let test_atom_vars () =
  let a = atom "p" [ v "X"; c "k"; v "Y"; v "X" ] in
  Alcotest.(check int) "arity" 4 (Atom.arity a);
  Alcotest.(check int) "distinct vars" 2 (Symbol.Set.cardinal (Atom.vars a));
  Alcotest.(check int) "constants" 1 (Symbol.Set.cardinal (Atom.constants a));
  Alcotest.(check (list string)) "var list keeps duplicates" [ "X"; "Y"; "X" ]
    (List.map Symbol.name (Atom.var_list a))

let test_atom_repeated () =
  Alcotest.(check bool) "repeated detected" true
    (Atom.has_repeated_var (atom "p" [ v "X"; v "X" ]));
  Alcotest.(check bool) "distinct ok" false (Atom.has_repeated_var (atom "p" [ v "X"; v "Y" ]));
  Alcotest.(check bool) "constants don't count" false
    (Atom.has_repeated_var (atom "p" [ c "a"; c "a" ]))

let test_atom_positions () =
  let a = atom "p" [ v "X"; v "Y"; v "X" ] in
  Alcotest.(check (list int)) "positions of X" [ 1; 3 ]
    (Atom.positions_of_var (Symbol.intern "X") a);
  Alcotest.(check (list int)) "positions of absent var" []
    (Atom.positions_of_var (Symbol.intern "Z") a)

let test_atom_zero_arity () =
  let a = atom "flag" [] in
  Alcotest.(check int) "arity 0" 0 (Atom.arity a);
  Alcotest.(check string) "prints bare" "flag" (Atom.to_string a)

(* ------------------------------------------------------------------ *)
(* Subst / Unify *)

let test_subst_walk_chains () =
  let s =
    Subst.empty
    |> Subst.bind (Symbol.intern "X") (v "Y")
    |> Subst.bind (Symbol.intern "Y") (c "a")
  in
  Alcotest.(check bool) "walk resolves chain" true (Term.equal (Subst.walk s (v "X")) (c "a"))

let test_subst_double_bind_rejected () =
  let s = Subst.bind (Symbol.intern "X") (c "a") Subst.empty in
  Alcotest.check_raises "rebinding raises" (Invalid_argument "Subst.bind: variable already bound")
    (fun () -> ignore (Subst.bind (Symbol.intern "X") (c "b") s))

let test_mgu_basic () =
  let a1 = atom "p" [ v "X"; c "a" ] in
  let a2 = atom "p" [ c "b"; v "Y" ] in
  match Unify.mgu a1 a2 with
  | None -> Alcotest.fail "expected unifier"
  | Some s ->
    Alcotest.(check bool) "X -> b" true (Term.equal (Subst.walk s (v "X")) (c "b"));
    Alcotest.(check bool) "Y -> a" true (Term.equal (Subst.walk s (v "Y")) (c "a"))

let test_mgu_clash () =
  Alcotest.(check bool) "constant clash" false
    (Unify.unifiable (atom "p" [ c "a" ]) (atom "p" [ c "b" ]));
  Alcotest.(check bool) "predicate mismatch" false
    (Unify.unifiable (atom "p" [ v "X" ]) (atom "q" [ v "X" ]));
  Alcotest.(check bool) "arity mismatch" false
    (Unify.unifiable (atom "p" [ v "X" ]) (atom "p" [ v "X"; v "Y" ]))

let test_mgu_repeated_var () =
  (* p(X,X) with p(a,Y): X~a, X~Y => Y~a. *)
  let a1 = atom "p" [ v "X"; v "X" ] in
  let a2 = atom "p" [ c "a"; v "Y" ] in
  match Unify.mgu a1 a2 with
  | None -> Alcotest.fail "expected unifier"
  | Some s -> Alcotest.(check bool) "Y -> a" true (Term.equal (Subst.walk s (v "Y")) (c "a"))

let test_mgu_repeated_clash () =
  (* p(X,X) with p(a,b) cannot unify. *)
  Alcotest.(check bool) "transitive clash" false
    (Unify.unifiable (atom "p" [ v "X"; v "X" ]) (atom "p" [ c "a"; c "b" ]))

let test_mgu_application_makes_equal () =
  let a1 = atom "p" [ v "X"; v "Y"; v "X" ] in
  let a2 = atom "p" [ v "U"; c "k"; v "V" ] in
  match Unify.mgu a1 a2 with
  | None -> Alcotest.fail "expected unifier"
  | Some s ->
    Alcotest.(check bool) "images equal" true
      (Atom.equal (Subst.apply_atom s a1) (Subst.apply_atom s a2))

(* ------------------------------------------------------------------ *)
(* Tgd *)

let mk_tgd name body head = Tgd.make ~name ~body ~head

let test_tgd_variable_classes () =
  (* body: p(X,Y), head: q(X,Z) — frontier {X}, ex body {Y}, ex head {Z}. *)
  let r = mk_tgd "r" [ atom "p" [ v "X"; v "Y" ] ] [ atom "q" [ v "X"; v "Z" ] ] in
  let names set = List.map Symbol.name (Symbol.Set.elements set) in
  Alcotest.(check (list string)) "frontier" [ "X" ] (names (Tgd.frontier r));
  Alcotest.(check (list string)) "existential body" [ "Y" ] (names (Tgd.existential_body_vars r));
  Alcotest.(check (list string)) "existential head" [ "Z" ] (names (Tgd.existential_head_vars r))

let test_tgd_simple () =
  let ok = mk_tgd "ok" [ atom "p" [ v "X"; v "Y" ] ] [ atom "q" [ v "X"; v "Z" ] ] in
  Alcotest.(check bool) "simple" true (Tgd.is_simple ok);
  let rep = mk_tgd "rep" [ atom "p" [ v "X"; v "X" ] ] [ atom "q" [ v "X" ] ] in
  Alcotest.(check bool) "repeated var not simple" false (Tgd.is_simple rep);
  let con = mk_tgd "con" [ atom "p" [ c "a" ] ] [ atom "q" [ v "Z" ] ] in
  Alcotest.(check bool) "constant not simple" false (Tgd.is_simple con);
  let multi = mk_tgd "multi" [ atom "p" [ v "X" ] ] [ atom "q" [ v "X" ]; atom "s" [ v "X" ] ] in
  Alcotest.(check bool) "multi-head not simple" false (Tgd.is_simple multi)

let test_tgd_empty_rejected () =
  Alcotest.check_raises "empty body" (Invalid_argument "Tgd.make: empty body") (fun () ->
      ignore (Tgd.make ~name:"x" ~body:[] ~head:[ atom "p" [ c "a" ] ]));
  Alcotest.check_raises "empty head" (Invalid_argument "Tgd.make: empty head") (fun () ->
      ignore (Tgd.make ~name:"x" ~body:[ atom "p" [ c "a" ] ] ~head:[]))

let test_tgd_rename_apart () =
  let r = mk_tgd "r" [ atom "p" [ v "X"; v "Y" ] ] [ atom "q" [ v "X"; v "Z" ] ] in
  let r' = Tgd.rename_apart r in
  let all_vars t = Symbol.Set.union (Tgd.body_vars t) (Tgd.head_vars t) in
  Alcotest.(check bool) "disjoint variables" true
    (Symbol.Set.is_empty (Symbol.Set.inter (all_vars r) (all_vars r')));
  (* Structure preserved: frontier sizes match. *)
  Alcotest.(check int) "frontier size preserved" 1 (Symbol.Set.cardinal (Tgd.frontier r'))

let test_single_head_normalize () =
  let r =
    mk_tgd "r" [ atom "p" [ v "X" ] ] [ atom "q" [ v "X"; v "Z" ]; atom "s" [ v "Z" ] ]
  in
  let rules = Tgd.single_head_normalize [ r ] in
  Alcotest.(check int) "one aux + two projections" 3 (List.length rules);
  List.iter
    (fun (r : Tgd.t) ->
      Alcotest.(check int) "single head each" 1 (List.length r.Tgd.head))
    rules;
  (* Single-head rules pass through untouched. *)
  let plain = mk_tgd "plain" [ atom "p" [ v "X" ] ] [ atom "q" [ v "X" ] ] in
  Alcotest.(check int) "no change" 1 (List.length (Tgd.single_head_normalize [ plain ]))

(* ------------------------------------------------------------------ *)
(* Cq *)

let test_cq_safety () =
  Alcotest.check_raises "unsafe query rejected"
    (Invalid_argument "Cq.make: unsafe query (answer variable not in body)") (fun () ->
      ignore (Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "p" [ v "Y" ] ]));
  (* Constant answers are allowed. *)
  let q = Cq.make ~name:"q" ~answer:[ c "a" ] ~body:[ atom "p" [ v "Y" ] ] in
  Alcotest.(check int) "arity" 1 (Cq.arity q)

let test_cq_var_classes () =
  let q = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "p" [ v "X"; v "Y" ] ] in
  Alcotest.(check int) "answer vars" 1 (Symbol.Set.cardinal (Cq.answer_vars q));
  Alcotest.(check int) "existential vars" 1 (Symbol.Set.cardinal (Cq.existential_vars q));
  Alcotest.(check bool) "not boolean" false (Cq.is_boolean q)

let test_cq_canonical () =
  let q1 =
    Cq.make ~name:"q" ~answer:[ v "A" ]
      ~body:[ atom "p" [ v "A"; v "B" ]; atom "r" [ v "B" ] ]
  in
  let q2 =
    Cq.make ~name:"q" ~answer:[ v "U" ]
      ~body:[ atom "p" [ v "U"; v "W" ]; atom "r" [ v "W" ] ]
  in
  Alcotest.(check bool) "renamed queries share canonical form" true
    (Cq.equal (Cq.canonical q1) (Cq.canonical q2))

let test_cq_canonical_dedups_atoms () =
  let q = Cq.make ~name:"q" ~answer:[] ~body:[ atom "p" [ v "X" ]; atom "p" [ v "X" ] ] in
  Alcotest.(check int) "duplicate atoms merged" 1 (List.length (Cq.canonical q).Cq.body)

(* ------------------------------------------------------------------ *)
(* Homomorphism *)

let test_hom_found () =
  let target = Homomorphism.target_of_atoms [ atom "p" [ c "a"; c "b" ]; atom "p" [ c "b"; c "c" ] ] in
  Alcotest.(check bool) "path of length 2" true
    (Homomorphism.exists [ atom "p" [ v "X"; v "Y" ]; atom "p" [ v "Y"; v "Z" ] ] target);
  Alcotest.(check bool) "no 3-cycle" false
    (Homomorphism.exists
       [ atom "p" [ v "X"; v "Y" ]; atom "p" [ v "Y"; v "Z" ]; atom "p" [ v "Z"; v "X" ] ]
       target)

let test_hom_respects_constants () =
  let target = Homomorphism.target_of_atoms [ atom "p" [ c "a" ] ] in
  Alcotest.(check bool) "constant matches" true (Homomorphism.exists [ atom "p" [ c "a" ] ] target);
  Alcotest.(check bool) "constant mismatch" false (Homomorphism.exists [ atom "p" [ c "b" ] ] target)

let test_hom_init () =
  let target = Homomorphism.target_of_atoms [ atom "p" [ c "a" ]; atom "p" [ c "b" ] ] in
  let init = Symbol.Map.singleton (Symbol.intern "X") (c "a") in
  let homs = Homomorphism.all ~init [ atom "p" [ v "X" ] ] target in
  Alcotest.(check int) "pinned variable" 1 (List.length homs)

let test_hom_all_count () =
  let target = Homomorphism.target_of_atoms [ atom "p" [ c "a" ]; atom "p" [ c "b" ] ] in
  let homs = Homomorphism.all [ atom "p" [ v "X" ]; atom "p" [ v "Y" ] ] target in
  Alcotest.(check int) "2x2 assignments" 4 (List.length homs)

let test_hom_frozen_vars () =
  (* Target variables behave like constants: q(X) can map onto the frozen
     variable W, but the constant a cannot. *)
  let target = Homomorphism.target_of_atoms [ atom "p" [ v "W" ] ] in
  Alcotest.(check bool) "var onto frozen var" true (Homomorphism.exists [ atom "p" [ v "X" ] ] target);
  Alcotest.(check bool) "const does not match frozen var" false
    (Homomorphism.exists [ atom "p" [ c "a" ] ] target)

(* ------------------------------------------------------------------ *)
(* Containment *)

let test_containment_reflexive () =
  let q = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "p" [ v "X"; v "Y" ] ] in
  Alcotest.(check bool) "q <= q" true (Containment.contained q q)

let test_containment_specialization () =
  let general = Cq.make ~name:"g" ~answer:[ v "X" ] ~body:[ atom "p" [ v "X"; v "Y" ] ] in
  let special = Cq.make ~name:"s" ~answer:[ v "X" ] ~body:[ atom "p" [ v "X"; c "a" ] ] in
  Alcotest.(check bool) "special <= general" true (Containment.contained special general);
  Alcotest.(check bool) "general not <= special" false (Containment.contained general special)

let test_containment_extra_atom () =
  let q1 =
    Cq.make ~name:"q1" ~answer:[ v "X" ]
      ~body:[ atom "p" [ v "X"; v "Y" ]; atom "r" [ v "Y" ] ]
  in
  let q2 = Cq.make ~name:"q2" ~answer:[ v "X" ] ~body:[ atom "p" [ v "X"; v "Y" ] ] in
  Alcotest.(check bool) "more atoms <= fewer" true (Containment.contained q1 q2);
  Alcotest.(check bool) "fewer not <= more" false (Containment.contained q2 q1)

let test_containment_answer_positions () =
  (* Same bodies, swapped answers: not contained. *)
  let q1 =
    Cq.make ~name:"q1" ~answer:[ v "X"; v "Y" ] ~body:[ atom "p" [ v "X"; v "Y" ] ]
  in
  let q2 =
    Cq.make ~name:"q2" ~answer:[ v "Y"; v "X" ] ~body:[ atom "p" [ v "X"; v "Y" ] ]
  in
  Alcotest.(check bool) "swapped answers" false (Containment.contained q1 q2)

let test_containment_arity_mismatch () =
  let q1 = Cq.make ~name:"q1" ~answer:[ v "X" ] ~body:[ atom "p" [ v "X"; v "Y" ] ] in
  let q0 = Cq.make ~name:"q0" ~answer:[] ~body:[ atom "p" [ v "X"; v "Y" ] ] in
  Alcotest.(check bool) "different arities" false (Containment.contained q1 q0)

let test_minimize_ucq () =
  let general = Cq.make ~name:"g" ~answer:[ v "X" ] ~body:[ atom "p" [ v "X"; v "Y" ] ] in
  let special = Cq.make ~name:"s" ~answer:[ v "X" ] ~body:[ atom "p" [ v "X"; c "a" ] ] in
  let other = Cq.make ~name:"o" ~answer:[ v "X" ] ~body:[ atom "r" [ v "X" ] ] in
  let minimized = Containment.minimize_ucq [ special; general; other ] in
  Alcotest.(check int) "redundant disjunct removed" 2 (List.length minimized);
  Alcotest.(check bool) "general kept" true (List.exists (fun q -> q == general) minimized)

let test_minimize_ucq_equivalent_pair () =
  (* Two equivalent disjuncts: exactly one survives. *)
  let q1 = Cq.make ~name:"q1" ~answer:[ v "X" ] ~body:[ atom "p" [ v "X"; v "Y" ] ] in
  let q2 =
    Cq.make ~name:"q2" ~answer:[ v "U" ]
      ~body:[ atom "p" [ v "U"; v "W" ]; atom "p" [ v "U"; v "T" ] ]
  in
  Alcotest.(check int) "one of two equivalents" 1
    (List.length (Containment.minimize_ucq [ q1; q2 ]))

(* ------------------------------------------------------------------ *)
(* Program *)

let test_program_arity_check () =
  let r1 = mk_tgd "r1" [ atom "p" [ v "X" ] ] [ atom "q" [ v "X" ] ] in
  let r2 = mk_tgd "r2" [ atom "p" [ v "X"; v "Y" ] ] [ atom "q" [ v "X" ] ] in
  (match Program.make [ r1; r2 ] with
  | Ok _ -> Alcotest.fail "inconsistent arity accepted"
  | Error msg -> Alcotest.(check bool) "mentions predicate" true (String.length msg > 0));
  match Program.make [ r1 ] with
  | Ok p ->
    Alcotest.(check int) "signature size" 2 (List.length (Program.predicates p));
    Alcotest.(check (option int)) "arity lookup" (Some 1) (Program.arity_of p (Symbol.intern "p"))
  | Error e -> Alcotest.fail e

let test_program_stats () =
  let p = Tgd_core.Paper_examples.example1 in
  Alcotest.(check int) "rules" 3 (Program.size p);
  Alcotest.(check int) "max arity" 3 (Program.max_arity p);
  Alcotest.(check bool) "simple" true (Program.is_simple p);
  Alcotest.(check int) "rules with head pred r" 1
    (List.length (Program.rules_with_head_pred p (Symbol.intern "r")))

let test_program_constants () =
  let r = mk_tgd "r" [ atom "p" [ c "a"; v "X" ] ] [ atom "q" [ v "X"; c "b" ] ] in
  let p = Program.make_exn [ r ] in
  Alcotest.(check int) "two constants" 2 (Symbol.Set.cardinal (Program.constants p))

let () =
  Alcotest.run "logic"
    [
      ( "symbol",
        [
          Alcotest.test_case "interning" `Quick test_symbol_interning;
          Alcotest.test_case "fresh" `Quick test_symbol_fresh;
          Alcotest.test_case "fresh avoids collisions" `Quick test_symbol_fresh_avoids_collision;
        ] );
      ( "term",
        [
          Alcotest.test_case "kinds" `Quick test_term_kinds;
          Alcotest.test_case "ordering" `Quick test_term_ordering;
        ] );
      ( "atom",
        [
          Alcotest.test_case "vars and constants" `Quick test_atom_vars;
          Alcotest.test_case "repeated variables" `Quick test_atom_repeated;
          Alcotest.test_case "positions" `Quick test_atom_positions;
          Alcotest.test_case "zero arity" `Quick test_atom_zero_arity;
        ] );
      ( "unify",
        [
          Alcotest.test_case "walk chains" `Quick test_subst_walk_chains;
          Alcotest.test_case "double bind rejected" `Quick test_subst_double_bind_rejected;
          Alcotest.test_case "basic mgu" `Quick test_mgu_basic;
          Alcotest.test_case "clashes" `Quick test_mgu_clash;
          Alcotest.test_case "repeated variable" `Quick test_mgu_repeated_var;
          Alcotest.test_case "repeated clash" `Quick test_mgu_repeated_clash;
          Alcotest.test_case "application makes equal" `Quick test_mgu_application_makes_equal;
        ] );
      ( "tgd",
        [
          Alcotest.test_case "variable classes" `Quick test_tgd_variable_classes;
          Alcotest.test_case "simplicity" `Quick test_tgd_simple;
          Alcotest.test_case "empty rejected" `Quick test_tgd_empty_rejected;
          Alcotest.test_case "rename apart" `Quick test_tgd_rename_apart;
          Alcotest.test_case "single-head normalization" `Quick test_single_head_normalize;
        ] );
      ( "cq",
        [
          Alcotest.test_case "safety" `Quick test_cq_safety;
          Alcotest.test_case "variable classes" `Quick test_cq_var_classes;
          Alcotest.test_case "canonical form" `Quick test_cq_canonical;
          Alcotest.test_case "canonical dedups atoms" `Quick test_cq_canonical_dedups_atoms;
        ] );
      ( "homomorphism",
        [
          Alcotest.test_case "found / not found" `Quick test_hom_found;
          Alcotest.test_case "constants" `Quick test_hom_respects_constants;
          Alcotest.test_case "initial mapping" `Quick test_hom_init;
          Alcotest.test_case "all homomorphisms" `Quick test_hom_all_count;
          Alcotest.test_case "frozen variables" `Quick test_hom_frozen_vars;
        ] );
      ( "containment",
        [
          Alcotest.test_case "reflexive" `Quick test_containment_reflexive;
          Alcotest.test_case "specialization" `Quick test_containment_specialization;
          Alcotest.test_case "extra atom" `Quick test_containment_extra_atom;
          Alcotest.test_case "answer positions" `Quick test_containment_answer_positions;
          Alcotest.test_case "arity mismatch" `Quick test_containment_arity_mismatch;
          Alcotest.test_case "minimize ucq" `Quick test_minimize_ucq;
          Alcotest.test_case "minimize equivalent pair" `Quick test_minimize_ucq_equivalent_pair;
        ] );
      ( "program",
        [
          Alcotest.test_case "arity check" `Quick test_program_arity_check;
          Alcotest.test_case "stats" `Quick test_program_stats;
          Alcotest.test_case "constants" `Quick test_program_constants;
        ] );
    ]
