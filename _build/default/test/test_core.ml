(* Tests for the paper's contribution: position graph, SWR, P-atoms,
   P-nodes, P-node graph, WR, and the umbrella classifier — including the
   golden figures from the paper. *)

open Tgd_logic
open Tgd_core

let v = Term.var
let c = Term.const
let atom p args = Atom.of_strings p args
let tgd name body head = Tgd.make ~name ~body ~head
let prog rules = Program.make_exn rules

let ex1 = Paper_examples.example1
let ex2 = Paper_examples.example2
let ex3 = Paper_examples.example3

(* ------------------------------------------------------------------ *)
(* Position / Position graph *)

let test_position_printing () =
  Alcotest.(check string) "whole" "r[ ]" (Position.to_string (Position.Whole (Symbol.intern "r")));
  Alcotest.(check string) "indexed" "r[2]" (Position.to_string (Position.At (Symbol.intern "r", 2)))

let test_figure1_golden () =
  let g = Position_graph.build ex1 in
  Alcotest.(check int) "7 nodes" 7 (Position_graph.G.n_nodes g);
  Alcotest.(check (list (triple string string string))) "figure 1 edges"
    Paper_examples.figure1_edges (Position_graph.edge_list g)

let test_figure1_s2_dead_end () =
  (* s[2] has no outgoing edges: head(R2)[2] is the existential Y3, so
     R-compatibility fails (Definition 3(ii)). *)
  let g = Position_graph.build ex1 in
  Alcotest.(check int) "s[2] dead end" 0
    (List.length (Position_graph.G.succ g (Position.At (Symbol.intern "s", 2))))

let test_figure2_nodes () =
  let g = Position_graph.build ex2 in
  Alcotest.(check int) "10 positions as in Figure 2" Paper_examples.figure2_node_count
    (Position_graph.G.n_nodes g)

let test_figure2_no_dangerous_cycle () =
  (* The documented failure: no m+s cycle, yet Example 2 is not
     FO-rewritable. *)
  let g = Position_graph.build ex2 in
  Alcotest.(check bool) "no dangerous cycle" false (Swr.dangerous_cycle_in_graph g);
  (* In fact Example 2's position graph has no s-edge at all. *)
  Alcotest.(check bool) "no s-edges" true
    (List.for_all
       (fun (e : Position_graph.G.edge) -> not e.Position_graph.G.label.Position_graph.s)
       (Position_graph.G.edges g))

let test_position_graph_s_edges () =
  (* An existential body variable occurring in two body atoms generates
     s-labels (Definition 4, point 2). *)
  let p =
    prog
      [
        tgd "r" [ atom "a" [ v "X"; v "W" ]; atom "b" [ v "W"; v "Y" ] ] [ atom "h" [ v "X"; v "Y" ] ];
      ]
  in
  let g = Position_graph.build p in
  Alcotest.(check bool) "s-edges present" true
    (List.exists
       (fun (e : Position_graph.G.edge) -> e.Position_graph.G.label.Position_graph.s)
       (Position_graph.G.edges g))

let test_swr_verdicts () =
  let v1 = Swr.check ex1 in
  Alcotest.(check bool) "example1 simple" true v1.Swr.simple;
  Alcotest.(check bool) "example1 swr" true v1.Swr.swr;
  let v2 = Swr.check ex2 in
  Alcotest.(check bool) "example2 not simple" false v2.Swr.simple;
  Alcotest.(check bool) "example2 not swr" false v2.Swr.swr;
  let v3 = Swr.check ex3 in
  Alcotest.(check bool) "example3 not swr (not simple)" false v3.Swr.swr

let test_swr_dangerous_mixed_cycle () =
  (* A cycle carrying both m and s labels: h(X,Y) <- a(X,W), b(W,Y) with
     both body predicates fed back from h. *)
  let p =
    prog
      [
        tgd "r1"
          [ atom "a" [ v "X"; v "W" ]; atom "b" [ v "W"; v "Y" ] ]
          [ atom "h" [ v "X"; v "Y" ] ];
        tgd "r2" [ atom "h" [ v "X"; v "Y" ] ] [ atom "a" [ v "X"; v "Y" ] ];
      ]
  in
  let verdict = Swr.check p in
  Alcotest.(check bool) "simple" true verdict.Swr.simple;
  Alcotest.(check bool) "dangerous" true verdict.Swr.dangerous;
  Alcotest.(check bool) "not swr" false verdict.Swr.swr

let test_swr_exact_agrees_on_examples () =
  List.iter
    (fun p ->
      let verdict = Swr.check p in
      match Swr.check_exact verdict.Swr.graph with
      | Some exact -> Alcotest.(check bool) "scc and simple-cycle agree" verdict.Swr.dangerous exact
      | None -> Alcotest.fail "enumeration budget hit on a tiny example")
    [ ex1; ex2; ex3 ]

let test_position_graph_empty_program () =
  let g = Position_graph.build (Program.make_exn ~name:"empty" []) in
  Alcotest.(check int) "no nodes" 0 (Position_graph.G.n_nodes g)

(* ------------------------------------------------------------------ *)
(* P-atoms and P-nodes *)

let test_p_atom_ordering () =
  Alcotest.(check bool) "z smallest" true P_atom.(term_compare Z (X 1) < 0);
  Alcotest.(check bool) "x before const" true
    P_atom.(term_compare (X 2) (C (Symbol.intern "a")) < 0)

let test_p_node_canonical_renaming () =
  (* The same situation up to variable names canonicalizes identically. *)
  let sigma1 = atom "p" [ v "A"; v "B"; v "A" ] in
  let sigma2 = atom "p" [ v "U"; v "W"; v "U" ] in
  let n1 = P_node.canonicalize ~sigma:sigma1 ~context:[ sigma1 ] ~tracked:None in
  let n2 = P_node.canonicalize ~sigma:sigma2 ~context:[ sigma2 ] ~tracked:None in
  Alcotest.(check bool) "equal nodes" true (P_node.equal n1 n2);
  Alcotest.(check string) "rendering" "<p(x1,x2,x1) | p(x1,x2,x1)>" (P_node.to_string n1)

let test_p_node_tracked () =
  let sigma = atom "p" [ v "A"; v "B" ] in
  let n = P_node.canonicalize ~sigma ~context:[ sigma ] ~tracked:(Some (Symbol.intern "B")) in
  Alcotest.(check string) "z marks tracked" "<p(x1,z) | p(x1,z)>" (P_node.to_string n)

let test_p_node_context_ordering_stable () =
  (* Context atoms given in different orders yield the same node. *)
  let sigma = atom "p" [ v "A" ] in
  let c1 = atom "q" [ v "A"; v "B" ] in
  let c2 = atom "r" [ v "B"; v "C" ] in
  let n1 = P_node.canonicalize ~sigma ~context:[ sigma; c1; c2 ] ~tracked:None in
  let n2 = P_node.canonicalize ~sigma ~context:[ c2; sigma; c1 ] ~tracked:None in
  Alcotest.(check bool) "order independent" true (P_node.equal n1 n2)

let test_p_node_unbounded_count () =
  (* <p(z, x1, x2) | p(z,x1,x2), q(x1)>: z unbounded, x1 shared (bounded),
     x2 single occurrence (unbounded) => 2. *)
  let sigma = atom "p" [ v "T"; v "A"; v "B" ] in
  let ctx = [ sigma; atom "q" [ v "A" ] ] in
  let n = P_node.canonicalize ~sigma ~context:ctx ~tracked:(Some (Symbol.intern "T")) in
  Alcotest.(check int) "unbounded args" 2 (P_node.unbounded_count n);
  (* Constants are bounded. *)
  let sigma2 = atom "p" [ c "k"; v "A"; v "A" ] in
  let n2 = P_node.canonicalize ~sigma:sigma2 ~context:[ sigma2 ] ~tracked:None in
  Alcotest.(check int) "constant and repeated var bounded" 0 (P_node.unbounded_count n2)

(* ------------------------------------------------------------------ *)
(* P-node graph / WR *)

let test_wr_example1 () =
  let w = Wr.check ex1 in
  Alcotest.(check bool) "complete" true w.Wr.complete;
  Alcotest.(check bool) "example1 wr" true w.Wr.wr

let test_wr_example2 () =
  let w = Wr.check ex2 in
  Alcotest.(check bool) "dangerous cycle found (Figure 3)" true w.Wr.dangerous;
  Alcotest.(check bool) "not wr" false w.Wr.wr

let test_wr_example3 () =
  let w = Wr.check ex3 in
  Alcotest.(check bool) "wr despite being outside all prior classes" true w.Wr.wr

let test_figure3_key_node_present () =
  (* Figure 3 features the P-atom s(z,z,x1): the repeated fresh existential
     introduced by R2's body. *)
  let w = Wr.check ex2 in
  let g = w.Wr.graph.P_node_graph.graph in
  let has_szz =
    List.exists
      (fun (n : P_node.t) -> P_atom.to_string n.P_node.atom = "s(z,z,x1)")
      (P_node_graph.G.nodes g)
  in
  Alcotest.(check bool) "s(z,z,x1) node" true has_szz

let test_figure3_cycle_labels () =
  (* The dangerous cycle of Example 2 carries s, m and d and no i. *)
  let w = Wr.check ex2 in
  let g = w.Wr.graph.P_node_graph.graph in
  match Wr.check_exact g with
  | Some b -> Alcotest.(check bool) "simple-cycle reading agrees" true b
  | None -> Alcotest.fail "enumeration budget hit"

let test_wr_exact_agrees_on_examples () =
  List.iter
    (fun p ->
      let w = Wr.check p in
      match Wr.check_exact w.Wr.graph.P_node_graph.graph with
      | Some exact -> Alcotest.(check bool) "readings agree" w.Wr.dangerous exact
      | None -> Alcotest.fail "budget hit")
    [ ex1; ex2; ex3 ]

let test_wr_budget_truncation () =
  let w = Wr.check ~max_nodes:2 ex2 in
  Alcotest.(check bool) "not complete" false w.Wr.complete;
  Alcotest.(check bool) "conservatively not wr" false w.Wr.wr

let test_wr_swr_agree_on_simple_corpora () =
  (* On simple TGDs, WR should accept whatever SWR accepts (WR is the
     generalization). *)
  let rng = Tgd_gen.Rng.create 123 in
  let agree = ref 0 and total = ref 0 in
  for i = 0 to 24 do
    let p =
      Tgd_gen.Gen_tgd.random_simple_program ~name:(Printf.sprintf "s%d" i) rng
        { Tgd_gen.Gen_tgd.default_config with n_rules = 4; n_predicates = 4; max_body_atoms = 2 }
    in
    let s = Swr.check p in
    let w = Wr.check ~max_nodes:5_000 p in
    if w.Wr.complete then begin
      incr total;
      if s.Swr.swr then begin
        if w.Wr.wr then incr agree
      end
      else incr agree (* SWR rejecting while WR accepts is fine: WR is larger *)
    end
  done;
  Alcotest.(check bool) "ran on a reasonable corpus" true (!total >= 15);
  Alcotest.(check int) "WR never rejects an SWR set" !total !agree

let test_multi_head_wr () =
  (* WR normalizes multi-head rules; a harmless hierarchy stays WR. *)
  let p =
    prog
      [
        tgd "mh" [ atom "emp" [ v "X" ] ]
          [ atom "works" [ v "X"; v "D" ]; atom "dept" [ v "D" ] ];
      ]
  in
  let w = Wr.check p in
  Alcotest.(check bool) "multi-head hierarchy wr" true w.Wr.wr

(* ------------------------------------------------------------------ *)
(* Explain *)

let test_explain_wr_witness_example2 () =
  let w = Wr.check ex2 in
  match Explain.wr_witness w.Wr.graph.P_node_graph.graph with
  | None -> Alcotest.fail "expected a dangerous-cycle witness"
  | Some cycle ->
    let has f = List.exists (fun (e : P_node_graph.G.edge) -> f e.P_node_graph.G.label) cycle in
    Alcotest.(check bool) "has s" true (has (fun l -> l.P_node_graph.s));
    Alcotest.(check bool) "has m" true (has (fun l -> l.P_node_graph.m));
    Alcotest.(check bool) "has d" true (has (fun l -> l.P_node_graph.d));
    Alcotest.(check bool) "no i" true (not (has (fun l -> l.P_node_graph.i)))

let test_explain_no_witness_on_wr () =
  let w = Wr.check ex3 in
  Alcotest.(check bool) "no dangerous cycle in example3" true
    (Explain.wr_witness w.Wr.graph.P_node_graph.graph = None)

let test_explain_swr_witness () =
  (* The mixed m+s cycle program from the SWR tests. *)
  let p =
    prog
      [
        tgd "r1"
          [ atom "a" [ v "X"; v "W" ]; atom "b" [ v "W"; v "Y" ] ]
          [ atom "h" [ v "X"; v "Y" ] ];
        tgd "r2" [ atom "h" [ v "X"; v "Y" ] ] [ atom "a" [ v "X"; v "Y" ] ];
      ]
  in
  let verdict = Swr.check p in
  Alcotest.(check bool) "witness found" true (Explain.swr_witness verdict.Swr.graph <> None)

let test_explain_describe () =
  let text = Explain.describe ex2 in
  Alcotest.(check bool) "mentions the cycle" true
    (String.length text > 200
    &&
    let rec contains i =
      i + 9 <= String.length text && (String.sub text i 9 = "dangerous" || contains (i + 1))
    in
    contains 0)

(* ------------------------------------------------------------------ *)
(* Query patterns *)

let test_pattern_example2_bound_free () =
  (* The paper's divergent query q() :- r("a", x) has pattern r(b,u). *)
  let pat = Query_pattern.of_query_atom Paper_examples.example2_query
      (List.hd Paper_examples.example2_query.Cq.body) in
  Alcotest.(check string) "pattern rendering" "r(b,u)"
    (Format.asprintf "%a" Query_pattern.pp pat);
  let config = { Tgd_rewrite.Rewrite.default_config with max_cqs = 500 } in
  (match Query_pattern.analyze ~config ex2 pat with
  | Query_pattern.Diverges _ -> ()
  | Query_pattern.Terminates _ -> Alcotest.fail "r(b,u) should diverge");
  (* ... while r(b,b) terminates: the existential head variable of R2
     refuses the bound position. *)
  match Query_pattern.analyze ~config ex2 (Query_pattern.make (Symbol.intern "r") [| true; true |]) with
  | Query_pattern.Terminates _ -> ()
  | Query_pattern.Diverges _ -> Alcotest.fail "r(b,b) should terminate"

let test_pattern_generic_query_shape () =
  let pat = Query_pattern.make (Symbol.intern "p") [| true; false; true |] in
  let q = Query_pattern.generic_query pat in
  Alcotest.(check int) "two answer variables" 2 (Cq.arity q);
  Alcotest.(check int) "one existential" 1 (Symbol.Set.cardinal (Cq.existential_vars q))

let test_pattern_analyze_all_on_wr_program () =
  (* On an FO-rewritable program every pattern terminates. *)
  let config = { Tgd_rewrite.Rewrite.default_config with max_cqs = 2_000 } in
  List.iter
    (fun (pat, status) ->
      match status with
      | Query_pattern.Terminates _ -> ()
      | Query_pattern.Diverges why ->
        Alcotest.fail
          (Format.asprintf "pattern %a diverged on example3: %s" Query_pattern.pp pat why))
    (Query_pattern.analyze_all ~config ex3)

let test_pattern_of_query_atom_constants () =
  let q =
    Cq.make ~name:"q" ~answer:[ v "X" ]
      ~body:[ atom "p" [ v "X"; c "k"; v "Z" ] ]
  in
  let pat = Query_pattern.of_query_atom q (List.hd q.Cq.body) in
  Alcotest.(check string) "constants and answer vars bound" "p(b,b,u)"
    (Format.asprintf "%a" Query_pattern.pp pat)

(* ------------------------------------------------------------------ *)
(* Classifier *)

let test_classifier_example_matrix () =
  let r1 = Classifier.classify ex1 in
  Alcotest.(check bool) "ex1 swr" true r1.Classifier.swr;
  Alcotest.(check bool) "ex1 wr" true r1.Classifier.wr;
  let r2 = Classifier.classify ex2 in
  Alcotest.(check bool) "ex2 not wr" false r2.Classifier.wr;
  (* R1's body t(Y1,Y2), r(Y3,Y4) has no guard atom. *)
  Alcotest.(check bool) "ex2 not guarded" false r2.Classifier.guarded;
  let r3 = Classifier.classify ex3 in
  (* Example 3 escapes every class named by the paper; the GRD happens to be
     acyclic (R1 can never trigger R3 — the same blocking the paper
     describes), so both acyclic-grd and wr witness FO-rewritability. *)
  Alcotest.(check bool) "ex3 has an FO witness" true
    (Classifier.fo_rewritable_witness r3 <> None);
  Alcotest.(check bool) "ex3 wr" true r3.Classifier.wr;
  Alcotest.(check bool) "ex3 acyclic grd" true r3.Classifier.acyclic_grd;
  Alcotest.(check bool) "ex2: no FO witness" true (Classifier.fo_rewritable_witness r2 = None)

let test_classifier_rows () =
  let r = Classifier.classify ex1 in
  Alcotest.(check int) "row width matches header" (List.length Classifier.header)
    (List.length (Classifier.to_row r))

let test_incomparability_witnesses () =
  (* Section 6: domain-restricted and acyclic-GRD are incomparable with
     SWR. Direction 1: Example 1 is SWR but in neither class. *)
  let r1 = Classifier.classify ex1 in
  Alcotest.(check bool) "ex1 swr" true r1.Classifier.swr;
  Alcotest.(check bool) "ex1 not domain-restricted" false r1.Classifier.domain_restricted;
  Alcotest.(check bool) "ex1 not acyclic-grd" false r1.Classifier.acyclic_grd;
  (* Direction 2: the crafted witness is simple, in both classes, not SWR. *)
  let r2 = Classifier.classify Paper_examples.dr_agrd_not_swr in
  Alcotest.(check bool) "witness simple" true r2.Classifier.simple;
  Alcotest.(check bool) "witness domain-restricted" true r2.Classifier.domain_restricted;
  Alcotest.(check bool) "witness acyclic-grd" true r2.Classifier.acyclic_grd;
  Alcotest.(check bool) "witness not swr" false r2.Classifier.swr

let test_classifier_university () =
  let r = Classifier.classify Tgd_gen.University.ontology in
  Alcotest.(check bool) "university wr" true r.Classifier.wr;
  Alcotest.(check bool) "university weakly acyclic" true r.Classifier.weakly_acyclic;
  Alcotest.(check bool) "not simple (multi-head rules)" false r.Classifier.simple

let () =
  Alcotest.run "core"
    [
      ( "position graph",
        [
          Alcotest.test_case "position printing" `Quick test_position_printing;
          Alcotest.test_case "figure 1 golden" `Quick test_figure1_golden;
          Alcotest.test_case "figure 1 s[2] dead end" `Quick test_figure1_s2_dead_end;
          Alcotest.test_case "figure 2 nodes" `Quick test_figure2_nodes;
          Alcotest.test_case "figure 2 no dangerous cycle" `Quick test_figure2_no_dangerous_cycle;
          Alcotest.test_case "s-edge generation" `Quick test_position_graph_s_edges;
          Alcotest.test_case "empty program" `Quick test_position_graph_empty_program;
        ] );
      ( "swr",
        [
          Alcotest.test_case "verdicts on the examples" `Quick test_swr_verdicts;
          Alcotest.test_case "mixed m+s cycle" `Quick test_swr_dangerous_mixed_cycle;
          Alcotest.test_case "exact reading agrees" `Quick test_swr_exact_agrees_on_examples;
        ] );
      ( "p-node",
        [
          Alcotest.test_case "p-atom ordering" `Quick test_p_atom_ordering;
          Alcotest.test_case "canonical renaming" `Quick test_p_node_canonical_renaming;
          Alcotest.test_case "tracked variable" `Quick test_p_node_tracked;
          Alcotest.test_case "context order independence" `Quick test_p_node_context_ordering_stable;
          Alcotest.test_case "unbounded count" `Quick test_p_node_unbounded_count;
        ] );
      ( "wr",
        [
          Alcotest.test_case "example 1" `Quick test_wr_example1;
          Alcotest.test_case "example 2 (figure 3)" `Quick test_wr_example2;
          Alcotest.test_case "example 3" `Quick test_wr_example3;
          Alcotest.test_case "figure 3 key node" `Quick test_figure3_key_node_present;
          Alcotest.test_case "figure 3 cycle labels" `Quick test_figure3_cycle_labels;
          Alcotest.test_case "exact reading agrees" `Quick test_wr_exact_agrees_on_examples;
          Alcotest.test_case "budget truncation" `Quick test_wr_budget_truncation;
          Alcotest.test_case "wr extends swr on simple corpora" `Quick
            test_wr_swr_agree_on_simple_corpora;
          Alcotest.test_case "multi-head" `Quick test_multi_head_wr;
        ] );
      ( "explain",
        [
          Alcotest.test_case "wr witness on example2" `Quick test_explain_wr_witness_example2;
          Alcotest.test_case "no witness on example3" `Quick test_explain_no_witness_on_wr;
          Alcotest.test_case "swr witness" `Quick test_explain_swr_witness;
          Alcotest.test_case "describe" `Quick test_explain_describe;
        ] );
      ( "query patterns",
        [
          Alcotest.test_case "example2 bound/free split" `Quick test_pattern_example2_bound_free;
          Alcotest.test_case "generic query shape" `Quick test_pattern_generic_query_shape;
          Alcotest.test_case "all terminate on wr program" `Quick
            test_pattern_analyze_all_on_wr_program;
          Alcotest.test_case "constants are bound" `Quick test_pattern_of_query_atom_constants;
        ] );
      ( "classifier",
        [
          Alcotest.test_case "example matrix" `Quick test_classifier_example_matrix;
          Alcotest.test_case "row shape" `Quick test_classifier_rows;
          Alcotest.test_case "incomparability witnesses" `Quick test_incomparability_witnesses;
          Alcotest.test_case "university" `Quick test_classifier_university;
        ] );
    ]
