(* Unit tests for the baseline TGD class checkers. *)

open Tgd_logic
open Tgd_classes

let v = Term.var
let c = Term.const
let atom p args = Atom.of_strings p args
let tgd name body head = Tgd.make ~name ~body ~head
let prog rules = Program.make_exn rules

let ex1 = Tgd_core.Paper_examples.example1
let ex2 = Tgd_core.Paper_examples.example2
let ex3 = Tgd_core.Paper_examples.example3

(* ------------------------------------------------------------------ *)
(* Datalog / Linear / Guarded / Multilinear *)

let test_datalog () =
  Alcotest.(check bool) "tc is datalog" true
    (Datalog_class.check
       (prog [ tgd "r" [ atom "e" [ v "X"; v "Y" ] ] [ atom "p" [ v "X"; v "Y" ] ] ]));
  Alcotest.(check bool) "example1 has existentials" false (Datalog_class.check ex1)

let test_linear () =
  Alcotest.(check bool) "single body atom" true
    (Linear.check (prog [ tgd "r" [ atom "p" [ v "X" ] ] [ atom "q" [ v "X"; v "Z" ] ] ]));
  Alcotest.(check bool) "example1 not linear (R1 has 2 body atoms)" false (Linear.check ex1);
  Alcotest.(check bool) "example3 not linear (R3)" false (Linear.check ex3)

let test_guarded () =
  let guarded_rule =
    tgd "g" [ atom "big" [ v "X"; v "Y"; v "Z" ]; atom "p" [ v "X"; v "Y" ] ] [ atom "q" [ v "Z" ] ]
  in
  Alcotest.(check bool) "guard present" true (Guarded.check (prog [ guarded_rule ]));
  let unguarded =
    tgd "u" [ atom "p" [ v "X"; v "Y" ]; atom "p" [ v "Y"; v "Z" ] ] [ atom "q" [ v "X" ] ]
  in
  Alcotest.(check bool) "no guard" false (Guarded.check (prog [ unguarded ]));
  Alcotest.(check bool) "linear implies guarded" true
    (Guarded.check (prog [ tgd "l" [ atom "p" [ v "X"; v "Y" ] ] [ atom "q" [ v "X" ] ] ]))

let test_multilinear () =
  (* Every body atom contains all body variables. *)
  let ml =
    tgd "m" [ atom "p" [ v "X"; v "Y" ]; atom "r" [ v "Y"; v "X" ] ] [ atom "q" [ v "X" ] ]
  in
  Alcotest.(check bool) "permuted atoms" true (Multilinear.check (prog [ ml ]));
  (* The paper's justification: u(Y1) in Example 3's R3 misses Y2. *)
  Alcotest.(check bool) "example3 not multilinear" false (Multilinear.check ex3);
  Alcotest.(check bool) "example1 not multilinear" false (Multilinear.check ex1)

let test_class_inclusions () =
  (* Structural: linear => multilinear => guarded, on random programs. *)
  let rng = Tgd_gen.Rng.create 11 in
  for i = 0 to 30 do
    let p =
      Tgd_gen.Gen_tgd.random_program ~name:(Printf.sprintf "p%d" i) rng
        { Tgd_gen.Gen_tgd.default_config with n_rules = 5 }
    in
    if Linear.check p then
      Alcotest.(check bool) "linear => multilinear" true (Multilinear.check p);
    if Multilinear.check p then Alcotest.(check bool) "multilinear => guarded" true (Guarded.check p)
  done

(* ------------------------------------------------------------------ *)
(* Sticky / Sticky-Join *)

let test_sticky_paper_example3 () =
  (* The paper: Example 3 is neither sticky (Y1 twice in one atom) nor
     sticky-join (Y1 in two body atoms of R3). *)
  Alcotest.(check bool) "not sticky" false (Sticky.sticky ex3);
  Alcotest.(check bool) "not sticky-join" false (Sticky.sticky_join ex3)

let test_sticky_example1 () =
  (* Example 1: joins only through variables that survive into heads along
     non-marked positions; the standard marking leaves every join variable
     unmarked, so the set is sticky. *)
  Alcotest.(check bool) "example1 sticky" true (Sticky.sticky ex1);
  Alcotest.(check bool) "sticky implies sticky-join" true (Sticky.sticky_join ex1)

let test_sticky_marking_propagation () =
  (* R1: r(X,Y) -> t(Y): X marked (not in head).
     R2: s(X,Y) -> r(X,Y): nothing marked at base, and no head variable of
     R2 lands in a marked position (r[1] is marked through R1's X)... X of
     R2 occurs in head r at position 1 which IS marked, so X gets marked in
     body(R2) at s[1]. A rule joining on such a variable twice breaks
     stickiness. *)
  let r1 = tgd "r1" [ atom "r" [ v "X"; v "Y" ] ] [ atom "t" [ v "Y" ] ] in
  let r2 = tgd "r2" [ atom "s" [ v "X"; v "Y" ] ] [ atom "r" [ v "X"; v "Y" ] ] in
  let r3 =
    tgd "r3" [ atom "u" [ v "X" ]; atom "w" [ v "X" ] ] [ atom "s" [ v "X"; v "Z" ] ]
  in
  (* X in r3 occurs in head s at position 1; s[1] is marked via r2; X is in
     two body atoms => not sticky-join, not sticky. *)
  let p = prog [ r1; r2; r3 ] in
  Alcotest.(check bool) "propagated marking breaks sticky" false (Sticky.sticky p);
  Alcotest.(check bool) "and sticky-join" false (Sticky.sticky_join p);
  (* Without r1 the position is unmarked and the join is harmless. *)
  let p' = prog [ r2; r3 ] in
  Alcotest.(check bool) "no marking, sticky" true (Sticky.sticky p')

let test_sticky_join_weaker_than_sticky () =
  (* Repeated marked variable inside ONE atom: sticky fails, sticky-join
     holds. *)
  let r = tgd "r" [ atom "p" [ v "X"; v "X" ] ] [ atom "q" [ v "Z" ] ] in
  let p = prog [ r ] in
  Alcotest.(check bool) "not sticky" false (Sticky.sticky p);
  Alcotest.(check bool) "but sticky-join" true (Sticky.sticky_join p)

let test_marked_positions_report () =
  let r1 = tgd "r1" [ atom "r" [ v "X"; v "Y" ] ] [ atom "t" [ v "Y" ] ] in
  let p = prog [ r1 ] in
  let m = Sticky.marking p in
  Alcotest.(check (list (pair int int))) "X marked at (0,0)" [ (0, 0) ]
    (Sticky.marked_positions m r1)

(* ------------------------------------------------------------------ *)
(* Weak acyclicity *)

let test_weakly_acyclic_positive () =
  (* A simple hierarchy chases finitely. *)
  Alcotest.(check bool) "university is weakly acyclic" true
    (Weakly_acyclic.check Tgd_gen.University.ontology)

let test_weakly_acyclic_negative () =
  (* p(X) -> r(X,Y); r(X,Y) -> p(Y): special edge in a cycle. *)
  let p =
    prog
      [
        tgd "r1" [ atom "p" [ v "X" ] ] [ atom "r" [ v "X"; v "Y" ] ];
        tgd "r2" [ atom "r" [ v "X"; v "Y" ] ] [ atom "p" [ v "Y" ] ];
      ]
  in
  Alcotest.(check bool) "not weakly acyclic" false (Weakly_acyclic.check p)

let test_weakly_acyclic_datalog_cycles_ok () =
  (* Recursion without existentials is weakly acyclic. *)
  let p =
    prog
      [
        tgd "tc" [ atom "e" [ v "X"; v "Y" ]; atom "p" [ v "Y"; v "Z" ] ]
          [ atom "p" [ v "X"; v "Z" ] ];
        tgd "base" [ atom "e" [ v "X"; v "Y" ] ] [ atom "p" [ v "X"; v "Y" ] ];
      ]
  in
  Alcotest.(check bool) "datalog recursion fine" true (Weakly_acyclic.check p)

let test_weakly_acyclic_graph_edges () =
  let p = prog [ tgd "r" [ atom "p" [ v "X" ] ] [ atom "q" [ v "X"; v "Z" ] ] ] in
  let edges = Weakly_acyclic.graph p in
  let normals = List.filter (fun (_, k, _) -> k = Weakly_acyclic.Normal) edges in
  let specials = List.filter (fun (_, k, _) -> k = Weakly_acyclic.Special) edges in
  Alcotest.(check int) "one normal edge (p1 -> q1)" 1 (List.length normals);
  Alcotest.(check int) "one special edge (p1 -> q2)" 1 (List.length specials)

(* ------------------------------------------------------------------ *)
(* Domain-restricted *)

let test_domain_restricted () =
  (* Head contains all body variables. *)
  let all_vars =
    tgd "a" [ atom "p" [ v "X"; v "Y" ] ] [ atom "q" [ v "X"; v "Y"; v "Z" ] ]
  in
  Alcotest.(check bool) "all body vars in head" true (Domain_restricted.check (prog [ all_vars ]));
  (* Head contains none of the body variables. *)
  let no_vars = tgd "n" [ atom "p" [ v "X"; v "Y" ] ] [ atom "q" [ v "Z"; v "W" ] ] in
  Alcotest.(check bool) "no body vars in head" true (Domain_restricted.check (prog [ no_vars ]));
  (* Head contains a strict non-empty subset: rejected. *)
  let some_vars = tgd "s" [ atom "p" [ v "X"; v "Y" ] ] [ atom "q" [ v "X"; v "Z" ] ] in
  Alcotest.(check bool) "partial head rejected" false (Domain_restricted.check (prog [ some_vars ]))

(* ------------------------------------------------------------------ *)
(* Graph of rule dependencies *)

let test_grd_dependency () =
  let r1 = tgd "r1" [ atom "a" [ v "X" ] ] [ atom "b" [ v "X" ] ] in
  let r2 = tgd "r2" [ atom "b" [ v "X" ] ] [ atom "c" [ v "X" ] ] in
  Alcotest.(check bool) "r2 depends on r1" true (Rule_dependency.depends ~on:r1 r2);
  Alcotest.(check bool) "r1 does not depend on r2" false (Rule_dependency.depends ~on:r2 r1)

let test_grd_acyclic () =
  let r1 = tgd "r1" [ atom "a" [ v "X" ] ] [ atom "b" [ v "X" ] ] in
  let r2 = tgd "r2" [ atom "b" [ v "X" ] ] [ atom "c" [ v "X" ] ] in
  Alcotest.(check bool) "chain acyclic" true (Rule_dependency.acyclic (prog [ r1; r2 ]));
  let r3 = tgd "r3" [ atom "c" [ v "X" ] ] [ atom "a" [ v "X" ] ] in
  Alcotest.(check bool) "closing the loop" false (Rule_dependency.acyclic (prog [ r1; r2; r3 ]))

let test_grd_existential_blocks_dependency () =
  (* r1: a(X) -> b(X,Z) with Z existential; r2: b(X,X) -> c(X). The atom
     b(X,X) forces the existential position to equal the frontier one, so
     r1 cannot trigger r2. *)
  let r1 = tgd "r1" [ atom "a" [ v "X" ] ] [ atom "b" [ v "X"; v "Z" ] ] in
  let r2 = tgd "r2" [ atom "b" [ v "X"; v "X" ] ] [ atom "c" [ v "X" ] ] in
  Alcotest.(check bool) "blocked by repeated variable" false (Rule_dependency.depends ~on:r1 r2)

let test_grd_example2_cyclic () =
  Alcotest.(check bool) "example2 has cyclic GRD" false (Rule_dependency.acyclic ex2)

let () =
  Alcotest.run "classes"
    [
      ( "shape classes",
        [
          Alcotest.test_case "datalog" `Quick test_datalog;
          Alcotest.test_case "linear" `Quick test_linear;
          Alcotest.test_case "guarded" `Quick test_guarded;
          Alcotest.test_case "multilinear" `Quick test_multilinear;
          Alcotest.test_case "inclusions" `Quick test_class_inclusions;
        ] );
      ( "sticky",
        [
          Alcotest.test_case "paper example 3" `Quick test_sticky_paper_example3;
          Alcotest.test_case "paper example 1" `Quick test_sticky_example1;
          Alcotest.test_case "marking propagation" `Quick test_sticky_marking_propagation;
          Alcotest.test_case "sticky-join weaker" `Quick test_sticky_join_weaker_than_sticky;
          Alcotest.test_case "marked positions" `Quick test_marked_positions_report;
        ] );
      ( "weak acyclicity",
        [
          Alcotest.test_case "positive" `Quick test_weakly_acyclic_positive;
          Alcotest.test_case "negative" `Quick test_weakly_acyclic_negative;
          Alcotest.test_case "datalog recursion" `Quick test_weakly_acyclic_datalog_cycles_ok;
          Alcotest.test_case "graph edges" `Quick test_weakly_acyclic_graph_edges;
        ] );
      ( "domain-restricted",
        [ Alcotest.test_case "all-or-none" `Quick test_domain_restricted ] );
      ( "rule dependencies",
        [
          Alcotest.test_case "dependency" `Quick test_grd_dependency;
          Alcotest.test_case "acyclicity" `Quick test_grd_acyclic;
          Alcotest.test_case "existential blocking" `Quick test_grd_existential_blocks_dependency;
          Alcotest.test_case "example2 cyclic" `Quick test_grd_example2_cyclic;
        ] );
    ]
