test/test_db.ml: Alcotest Array Atom Cq Csv_io Datalog Eval Instance List Plan Printf Program Relation Sql String Symbol Term Tgd Tgd_db Tgd_logic Tuple Value
