test/test_gen.ml: Alcotest Array Atom Dl_ext Dl_lite Format Gen_db Gen_tgd List Printf Program Rng Symbol Term Tgd Tgd_classes Tgd_core Tgd_db Tgd_gen Tgd_logic Tgd_obda Tgd_rewrite University
