test/test_integration.ml: Alcotest Atom Cq Eval Format Instance List Printf Program Sql String Symbol Term Tgd_chase Tgd_classes Tgd_core Tgd_db Tgd_gen Tgd_logic Tgd_parser Tgd_rewrite Tuple
