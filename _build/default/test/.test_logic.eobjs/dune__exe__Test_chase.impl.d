test/test_chase.ml: Alcotest Array Atom Certain Chase Cq Egd Egd_chase Eval Instance List Null_gen Printf Program Symbol Term Tgd Tgd_chase Tgd_db Tgd_gen Tgd_logic Trigger Value
