test/test_logic.ml: Alcotest Atom Containment Cq Homomorphism List Program String Subst Symbol Term Tgd Tgd_core Tgd_logic Unify
