test/test_rewrite.ml: Alcotest Atom Containment Cq List Piece Printf Program Rewrite String Symbol Term Tgd Tgd_core Tgd_gen Tgd_logic Tgd_rewrite
