test/test_graph.ml: Alcotest Array Format Hashtbl List Printf String Tgd_graph
