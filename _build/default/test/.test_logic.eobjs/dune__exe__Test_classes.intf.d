test/test_classes.mli:
