test/test_parser.ml: Alcotest Array Atom Cq Format List Program String Symbol Term Tgd Tgd_core Tgd_gen Tgd_logic Tgd_parser
