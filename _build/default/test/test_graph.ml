(* Unit tests for the graph substrate: SCC decomposition, label-constrained
   cycle detection, simple-cycle enumeration, DOT export. *)

module IG = Tgd_graph.Int_digraph

let mk n edges = IG.make ~n ~edges:(Array.of_list edges)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1)) in
  nn = 0 || loop 0

(* ------------------------------------------------------------------ *)
(* Int_digraph *)

let test_make_validates () =
  Alcotest.check_raises "endpoint out of range"
    (Invalid_argument "Int_digraph.make: endpoint out of range") (fun () ->
      ignore (mk 2 [ (0, 5) ]))

let test_scc_dag () =
  (* 0 -> 1 -> 2: three singleton components. *)
  let g = mk 3 [ (0, 1); (1, 2) ] in
  let comp, n = IG.scc g in
  Alcotest.(check int) "three components" 3 n;
  Alcotest.(check bool) "all distinct" true (comp.(0) <> comp.(1) && comp.(1) <> comp.(2))

let test_scc_cycle () =
  (* 0 -> 1 -> 2 -> 0 plus a tail 2 -> 3. *)
  let g = mk 4 [ (0, 1); (1, 2); (2, 0); (2, 3) ] in
  let comp, n = IG.scc g in
  Alcotest.(check int) "two components" 2 n;
  Alcotest.(check bool) "cycle together" true (comp.(0) = comp.(1) && comp.(1) = comp.(2));
  Alcotest.(check bool) "tail separate" true (comp.(3) <> comp.(0))

let test_scc_two_cycles () =
  (* Two disjoint 2-cycles. *)
  let g = mk 4 [ (0, 1); (1, 0); (2, 3); (3, 2) ] in
  let _, n = IG.scc g in
  Alcotest.(check int) "two components" 2 n

let test_scc_reverse_topological () =
  (* Tarjan emits components in reverse topological order: the sink
     component gets the smaller id. *)
  let g = mk 2 [ (0, 1) ] in
  let comp, _ = IG.scc g in
  Alcotest.(check bool) "sink first" true (comp.(1) < comp.(0))

let test_scc_edge_filter () =
  (* The cycle 0 <-> 1 disappears when edge 1 (1 -> 0) is filtered out. *)
  let g = mk 2 [ (0, 1); (1, 0) ] in
  let comp, n = IG.scc ~edge_ok:(fun e -> e <> 1) g in
  Alcotest.(check int) "cycle broken" 2 n;
  Alcotest.(check bool) "split" true (comp.(0) <> comp.(1))

let test_scc_internal_edges () =
  let g = mk 4 [ (0, 1); (1, 0); (1, 2); (2, 3) ] in
  match IG.scc_internal_edges g with
  | [ (_, edges) ] ->
    Alcotest.(check (list int)) "the two cycle edges" [ 0; 1 ] (List.sort compare edges)
  | other -> Alcotest.fail (Printf.sprintf "expected one cyclic component, got %d" (List.length other))

let test_scc_self_loop () =
  let g = mk 2 [ (0, 0); (0, 1) ] in
  match IG.scc_internal_edges g with
  | [ (_, [ 0 ]) ] -> ()
  | _ -> Alcotest.fail "self loop should be the only internal edge"

let test_simple_cycles_triangle () =
  (* A directed triangle has exactly one simple cycle. *)
  let g = mk 3 [ (0, 1); (1, 2); (2, 0) ] in
  Alcotest.(check int) "one cycle" 1 (List.length (IG.simple_cycles g))

let test_simple_cycles_k3 () =
  (* Complete digraph on 3 vertices: 3 two-cycles and 2 three-cycles. *)
  let edges = [ (0, 1); (1, 0); (0, 2); (2, 0); (1, 2); (2, 1) ] in
  let g = mk 3 edges in
  Alcotest.(check int) "five cycles" 5 (List.length (IG.simple_cycles g))

let test_simple_cycles_edge_identity () =
  (* Parallel edges produce distinct cycles. *)
  let g = mk 2 [ (0, 1); (0, 1); (1, 0) ] in
  Alcotest.(check int) "two cycles through parallel edges" 2 (List.length (IG.simple_cycles g))

let test_simple_cycles_valid () =
  (* Every returned edge list is a closed chained walk over distinct
     vertices. *)
  let g = mk 4 [ (0, 1); (1, 2); (2, 0); (1, 3); (3, 1); (2, 2) ] in
  let cycles = IG.simple_cycles g in
  Alcotest.(check bool) "non-empty" true (cycles <> []);
  List.iter
    (fun cycle ->
      let pairs = List.map (IG.edge g) cycle in
      let srcs = List.map fst pairs in
      (* each edge's destination is the next edge's source, cyclically *)
      let rec chained = function
        | (_, d) :: ((s, _) :: _ as rest) ->
          Alcotest.(check int) "chained" s d;
          chained rest
        | [ (_, d) ] -> Alcotest.(check int) "closes" (List.hd srcs) d
        | [] -> ()
      in
      chained pairs;
      Alcotest.(check int) "distinct vertices" (List.length srcs)
        (List.length (List.sort_uniq compare srcs)))
    cycles

let test_simple_cycles_limit () =
  let edges = [ (0, 1); (1, 0); (0, 2); (2, 0); (1, 2); (2, 1) ] in
  let g = mk 3 edges in
  Alcotest.(check int) "limit respected" 2 (List.length (IG.simple_cycles ~limit:2 g))

let test_reachable () =
  let g = mk 4 [ (0, 1); (1, 2) ] in
  let r = IG.reachable g 0 in
  Alcotest.(check bool) "source" true r.(0);
  Alcotest.(check bool) "transitive" true r.(2);
  Alcotest.(check bool) "not backwards" false (IG.reachable g 2).(0)

(* ------------------------------------------------------------------ *)
(* Digraph functor *)

module N = struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
  let pp = Format.pp_print_string
end

module L = struct
  type t = string

  let equal = String.equal
  let pp = Format.pp_print_string
end

module G = Tgd_graph.Digraph.Make (N) (L)

let test_digraph_dedup () =
  let g = G.create () in
  G.add_edge g "a" "x" "b";
  G.add_edge g "a" "x" "b";
  G.add_edge g "a" "y" "b";
  Alcotest.(check int) "two nodes" 2 (G.n_nodes g);
  Alcotest.(check int) "parallel labels kept, duplicates dropped" 2 (G.n_edges g)

let test_digraph_nodes_in_insertion_order () =
  let g = G.create () in
  G.add_node g "z";
  G.add_edge g "a" "l" "m";
  Alcotest.(check (list string)) "order" [ "z"; "a"; "m" ] (G.nodes g)

let test_digraph_succ () =
  let g = G.create () in
  G.add_edge g "a" "x" "b";
  G.add_edge g "a" "y" "c";
  G.add_edge g "b" "z" "c";
  Alcotest.(check int) "two successors" 2 (List.length (G.succ g "a"));
  Alcotest.(check int) "no successors" 0 (List.length (G.succ g "c"))

let test_digraph_scc_labels () =
  let g = G.create () in
  G.add_edge g "a" "m" "b";
  G.add_edge g "b" "s" "a";
  G.add_edge g "b" "x" "c";
  (match G.cyclic_scc_edge_labels g with
  | [ labels ] ->
    Alcotest.(check (list string)) "labels of cyclic component" [ "m"; "s" ]
      (List.sort compare labels)
  | other -> Alcotest.fail (Printf.sprintf "expected 1 cyclic scc, got %d" (List.length other)));
  (* Filtering out the s-edge breaks the cycle. *)
  Alcotest.(check int) "filter breaks the cycle" 0
    (List.length (G.cyclic_scc_edge_labels_filtered ~keep:(fun l -> l <> "s") g))

let test_digraph_simple_cycles () =
  let g = G.create () in
  G.add_edge g "a" "m" "b";
  G.add_edge g "b" "s" "a";
  match G.simple_cycles g with
  | [ [ e1; e2 ] ] ->
    Alcotest.(check (list string)) "labels along the cycle" [ "m"; "s" ]
      (List.sort compare [ e1.G.label; e2.G.label ])
  | _ -> Alcotest.fail "expected exactly one 2-cycle"

let test_digraph_dot () =
  let g = G.create () in
  G.add_edge g "a" "lbl" "b";
  let dot = G.to_dot ~name:"t" g in
  Alcotest.(check bool) "mentions node label" true (contains dot "label=\"a\"");
  Alcotest.(check bool) "mentions edge label" true (contains dot "label=\"lbl\"")

let test_digraph_dot_escaping () =
  let g = G.create () in
  G.add_edge g "a\"b" "l" "c";
  Alcotest.(check bool) "quotes escaped" true (contains (G.to_dot g) "a\\\"b")

let test_digraph_empty () =
  let g = G.create () in
  Alcotest.(check int) "no nodes" 0 (G.n_nodes g);
  Alcotest.(check int) "no cyclic sccs" 0 (List.length (G.cyclic_scc_edge_labels g));
  Alcotest.(check bool) "dot of empty graph" true (String.length (G.to_dot g) > 0)

let () =
  Alcotest.run "graph"
    [
      ( "int_digraph",
        [
          Alcotest.test_case "make validates" `Quick test_make_validates;
          Alcotest.test_case "scc of dag" `Quick test_scc_dag;
          Alcotest.test_case "scc of cycle" `Quick test_scc_cycle;
          Alcotest.test_case "scc two cycles" `Quick test_scc_two_cycles;
          Alcotest.test_case "scc reverse topological" `Quick test_scc_reverse_topological;
          Alcotest.test_case "scc edge filter" `Quick test_scc_edge_filter;
          Alcotest.test_case "scc internal edges" `Quick test_scc_internal_edges;
          Alcotest.test_case "self loop" `Quick test_scc_self_loop;
          Alcotest.test_case "triangle cycle" `Quick test_simple_cycles_triangle;
          Alcotest.test_case "k3 cycles" `Quick test_simple_cycles_k3;
          Alcotest.test_case "parallel edges" `Quick test_simple_cycles_edge_identity;
          Alcotest.test_case "cycles are valid" `Quick test_simple_cycles_valid;
          Alcotest.test_case "cycle limit" `Quick test_simple_cycles_limit;
          Alcotest.test_case "reachable" `Quick test_reachable;
        ] );
      ( "digraph",
        [
          Alcotest.test_case "edge dedup" `Quick test_digraph_dedup;
          Alcotest.test_case "node order" `Quick test_digraph_nodes_in_insertion_order;
          Alcotest.test_case "succ" `Quick test_digraph_succ;
          Alcotest.test_case "scc labels" `Quick test_digraph_scc_labels;
          Alcotest.test_case "simple cycles" `Quick test_digraph_simple_cycles;
          Alcotest.test_case "dot export" `Quick test_digraph_dot;
          Alcotest.test_case "dot escaping" `Quick test_digraph_dot_escaping;
          Alcotest.test_case "empty graph" `Quick test_digraph_empty;
        ] );
    ]
