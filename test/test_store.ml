(* Tests of the durable store (lib/store): codec framing, WAL torn-tail
   robustness (a fuzzed cut or byte flip never loses an acked record and
   never resurrects an unacked one), snapshot round-trips including labeled
   nulls and post-seal pending tails, the checkpoint/recover protocol, and
   a cross-process recovery through the real obda binary — the one path
   where symbol intern orders genuinely differ and the decoder's remap pass
   must do real work. *)

open Tgd_store

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let with_tmp_file f =
  let path = Filename.temp_file "tgd_store" ".bin" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

let with_tmp_dir f =
  let dir = Filename.temp_dir "tgd_store" "" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Generators *)

(* Payload strings exercise the full byte range: CSV with commas and
   newlines, NUL bytes, high bytes. *)
let gen_payload = QCheck.Gen.(string_size (int_bound 60) ~gen:(map Char.chr (int_bound 255)))

let gen_record =
  QCheck.Gen.(
    frequency
      [
        (2, map (fun source -> Wal.Register { source }) gen_payload);
        (3, map (fun csv -> Wal.Load_csv { csv }) gen_payload);
        (3, map (fun csv -> Wal.Add_facts { csv }) gen_payload);
        (1, return Wal.Materialize);
      ])

let show_record r =
  match r with
  | Wal.Register { source } -> Printf.sprintf "Register %S" source
  | Wal.Load_csv { csv } -> Printf.sprintf "Load_csv %S" csv
  | Wal.Add_facts { csv } -> Printf.sprintf "Add_facts %S" csv
  | Wal.Materialize -> "Materialize"

let show_records rs = String.concat "; " (List.map show_record rs)

(* Instances over a small fixed signature; [nulls] admits labeled nulls
   (the chase's fresh witnesses) alongside constants. *)
let signature = [ ("sp", 2); ("sq", 1); ("sr", 3) ]

let gen_value ~nulls =
  QCheck.Gen.(
    frequency
      ([ (4, map (fun i -> Tgd_db.Value.const (Printf.sprintf "c%d" i)) (int_bound 20)) ]
      @ if nulls then [ (1, map (fun i -> Tgd_db.Value.Null i) (int_bound 30)) ] else []))

let gen_fact ~nulls =
  QCheck.Gen.(
    oneofl signature >>= fun (name, arity) ->
    array_repeat arity (gen_value ~nulls) >>= fun tup ->
    return (Tgd_logic.Symbol.intern name, tup))

(* [base] facts are inserted before the seal (they land in the columnar
   block); [tail] facts after it (they land in the pending list) — both
   snapshot paths get exercised. *)
let instance_of ~base ~tail =
  let inst = Tgd_db.Instance.create () in
  List.iter (fun (p, t) -> ignore (Tgd_db.Instance.add_fact inst p t)) base;
  Tgd_db.Instance.seal inst;
  List.iter (fun (p, t) -> ignore (Tgd_db.Instance.add_fact inst p t)) tail;
  inst

let gen_instance ~nulls =
  QCheck.Gen.(
    list_size (int_bound 30) (gen_fact ~nulls) >>= fun base ->
    list_size (int_bound 10) (gen_fact ~nulls) >>= fun tail ->
    return (instance_of ~base ~tail))

let gen_snapshot =
  QCheck.Gen.(
    int_bound 1000 >>= fun epoch ->
    int_bound 1000 >>= fun delta_epoch ->
    gen_payload >>= fun program_src ->
    gen_instance ~nulls:false >>= fun instance ->
    bool >>= fun with_model ->
    (if not with_model then return None
     else
       gen_instance ~nulls:true >>= fun model ->
       int_bound 5 >>= fun slack ->
       bool >>= fun complete ->
       return
         (Some
            {
              Snapshot.model;
              floor = Tgd_db.Instance.max_null model + slack;
              complete;
            }))
    >>= fun materialization ->
    return { Snapshot.epoch; delta_epoch; program_src; instance; materialization })

let fact_compare (p1, t1) (p2, t2) =
  let c = Tgd_logic.Symbol.compare p1 p2 in
  if c <> 0 then c else Tgd_db.Tuple.compare t1 t2

let norm_facts inst = List.sort fact_compare (Tgd_db.Instance.facts inst)

let facts_equal i1 i2 =
  let f1 = norm_facts i1 and f2 = norm_facts i2 in
  List.length f1 = List.length f2
  && List.for_all2 (fun a b -> fact_compare a b = 0) f1 f2

let show_snapshot (s : Snapshot.t) =
  Printf.sprintf "epoch=%d delta=%d src=%S facts=%d mat=%s" s.Snapshot.epoch s.Snapshot.delta_epoch
    s.Snapshot.program_src
    (Tgd_db.Instance.cardinality s.Snapshot.instance)
    (match s.Snapshot.materialization with
    | None -> "none"
    | Some m ->
      Printf.sprintf "{facts=%d; floor=%d; complete=%b}"
        (Tgd_db.Instance.cardinality m.Snapshot.model)
        m.Snapshot.floor m.Snapshot.complete)

(* ------------------------------------------------------------------ *)
(* Snapshot codec properties *)

let prop_snapshot_roundtrip =
  QCheck.Test.make ~count:200 ~name:"snapshot decode∘encode is the identity"
    (QCheck.make ~print:show_snapshot gen_snapshot)
    (fun s ->
      match Snapshot.decode (Snapshot.encode s) with
      | Error msg -> QCheck.Test.fail_reportf "decode failed: %s" msg
      | Ok s' ->
        s'.Snapshot.epoch = s.Snapshot.epoch
        && s'.Snapshot.delta_epoch = s.Snapshot.delta_epoch
        && String.equal s'.Snapshot.program_src s.Snapshot.program_src
        && facts_equal s'.Snapshot.instance s.Snapshot.instance
        && Tgd_db.Instance.max_null s'.Snapshot.instance
           = Tgd_db.Instance.max_null s.Snapshot.instance
        &&
        (match (s.Snapshot.materialization, s'.Snapshot.materialization) with
        | None, None -> true
        | Some m, Some m' ->
          m'.Snapshot.floor = m.Snapshot.floor
          && m'.Snapshot.complete = m.Snapshot.complete
          && facts_equal m'.Snapshot.model m.Snapshot.model
        | _ -> false))

let prop_snapshot_rejects_corruption =
  QCheck.Test.make ~count:300 ~name:"snapshot decode rejects any byte flip or truncation"
    (QCheck.make
       ~print:(fun (s, pos, delta) -> Printf.sprintf "%s / pos=%d delta=%d" (show_snapshot s) pos delta)
       QCheck.Gen.(triple gen_snapshot (int_bound 10_000) (int_range 1 255)))
    (fun (s, pos, delta) ->
      let encoded = Snapshot.encode s in
      let n = String.length encoded in
      (* A strict prefix must be rejected (torn write)... *)
      let truncated = String.sub encoded 0 (pos mod n) in
      (match Snapshot.decode truncated with
      | Ok _ -> QCheck.Test.fail_report "a truncated snapshot decoded"
      | Error _ -> ());
      (* ... and so must any single corrupted byte (CRC). *)
      let b = Bytes.of_string encoded in
      let i = pos mod n in
      Bytes.set b i (Char.chr ((Char.code (Bytes.get b i) + delta) land 0xFF));
      match Snapshot.decode (Bytes.to_string b) with
      | Ok _ -> QCheck.Test.fail_reportf "a snapshot with byte %d flipped decoded" i
      | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* WAL properties *)

(* Append all records, then cut the file at an arbitrary byte: exactly the
   records whose frames fit inside the cut survive a scan — an acked-then-
   synced record is never lost, a torn one never replayed. *)
let prop_wal_torn_tail =
  QCheck.Test.make ~count:300 ~name:"wal scan after a cut keeps exactly the complete frames"
    (QCheck.make
       ~print:(fun (rs, cut) -> Printf.sprintf "[%s] cut=%d" (show_records rs) cut)
       QCheck.Gen.(pair (list_size (int_bound 12) gen_record) (int_bound 10_000)))
    (fun (records, cut_seed) ->
      with_tmp_file (fun path ->
          Sys.remove path;
          let w = Wal.open_append ~fsync:false path in
          let sizes = List.map (Wal.append w) records in
          Wal.close w;
          let ends =
            List.rev (snd (List.fold_left (fun (off, acc) s -> (off + s, (off + s) :: acc)) (0, []) sizes))
          in
          let data = read_file path in
          let cut = cut_seed mod (String.length data + 1) in
          write_file path (String.sub data 0 cut);
          let scanned, valid = Wal.scan path in
          let expected = List.filteri (fun i _ -> List.nth ends i <= cut) records in
          let expected_bytes = List.fold_left (fun acc e -> if e <= cut then max acc e else acc) 0 ends in
          if scanned <> expected then
            QCheck.Test.fail_reportf "scan kept [%s], wanted [%s]" (show_records scanned)
              (show_records expected)
          else if valid <> expected_bytes then
            QCheck.Test.fail_reportf "valid bytes %d, wanted %d" valid expected_bytes
          else begin
            (* Re-opening truncates the torn tail and appends cleanly. *)
            let w = Wal.open_append ~fsync:false path in
            let fresh = Wal.Add_facts { csv = "fresh,1" } in
            ignore (Wal.append w fresh);
            Wal.close w;
            let rescanned, _ = Wal.scan path in
            rescanned = expected @ [ fresh ]
          end))

let prop_wal_corrupt_byte =
  QCheck.Test.make ~count:300 ~name:"wal scan after a byte flip yields a prefix of the log"
    (QCheck.make
       ~print:(fun (rs, pos, delta) ->
         Printf.sprintf "[%s] pos=%d delta=%d" (show_records rs) pos delta)
       QCheck.Gen.(
         triple (list_size (int_range 1 12) gen_record) (int_bound 10_000) (int_range 1 255)))
    (fun (records, pos_seed, delta) ->
      with_tmp_file (fun path ->
          Sys.remove path;
          let w = Wal.open_append ~fsync:false path in
          let sizes = List.map (Wal.append w) records in
          Wal.close w;
          let ends =
            List.rev (snd (List.fold_left (fun (off, acc) s -> (off + s, (off + s) :: acc)) (0, []) sizes))
          in
          let data = read_file path in
          let pos = pos_seed mod String.length data in
          let b = Bytes.of_string data in
          Bytes.set b pos (Char.chr ((Char.code (Bytes.get b pos) + delta) land 0xFF));
          write_file path (Bytes.to_string b);
          let scanned, _ = Wal.scan path in
          let rec is_prefix xs ys =
            match (xs, ys) with
            | [], _ -> true
            | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
            | _ :: _, [] -> false
          in
          let untouched = List.length (List.filter (fun e -> e <= pos) ends) in
          if not (is_prefix scanned records) then
            QCheck.Test.fail_reportf "scan is not a prefix: [%s]" (show_records scanned)
          else if List.length scanned < untouched then
            QCheck.Test.fail_reportf
              "flip at byte %d lost %d record(s) whose frames precede it" pos
              (untouched - List.length scanned)
          else true))

(* ------------------------------------------------------------------ *)
(* Store lifecycle *)

let test_open_dir_idempotent () =
  with_tmp_dir (fun dir ->
      let nested = Filename.concat (Filename.concat dir "a") "b" in
      (match Store.open_dir ~fsync:false nested with
      | Error msg -> Alcotest.failf "first open failed: %s" msg
      | Ok s -> Store.close s);
      (match Store.open_dir ~fsync:false nested with
      | Error msg -> Alcotest.failf "second open failed: %s" msg
      | Ok s -> Store.close s);
      Alcotest.(check bool) "directory exists" true (Sys.is_directory nested);
      rm_rf nested;
      rm_rf (Filename.concat dir "a"))

let test_open_dir_clear_error () =
  with_tmp_file (fun file ->
      (* A path under a regular file can never become a directory: the
         error must be a clear [Error], not an exception. *)
      match Store.open_dir ~fsync:false (Filename.concat file "sub") with
      | Ok _ -> Alcotest.fail "open_dir under a regular file succeeded"
      | Error msg -> Alcotest.(check bool) "message mentions the path" true (msg <> ""))

let sample_snapshot ?(epoch = 3) () =
  let inst = instance_of ~base:[ (Tgd_logic.Symbol.intern "sp", [| Tgd_db.Value.const "a"; Tgd_db.Value.const "b" |]) ] ~tail:[] in
  { Snapshot.epoch; delta_epoch = epoch + 1; program_src = "sp(X,Y) -> sq(X)."; instance = inst; materialization = None }

let test_checkpoint_and_recover () =
  with_tmp_dir (fun dir ->
      let name = "a b/c%20" in
      (* odd characters: the escaping must round-trip the name *)
      let store = Result.get_ok (Store.open_dir ~fsync:false dir) in
      ignore (Store.log store ~name (Wal.Register { source = "r1" }));
      ignore (Store.log store ~name (Wal.Load_csv { csv = "c1" }));
      let st = Store.checkpoint store ~name (sample_snapshot ()) in
      Alcotest.(check int) "generation 1" 1 st.Store.generation;
      Alcotest.(check int) "wal trimmed" 0 st.Store.wal_records;
      ignore (Store.log store ~name (Wal.Add_facts { csv = "c2" }));
      Store.close store;
      let store = Result.get_ok (Store.open_dir ~fsync:false dir) in
      (match Store.recover store with
      | [ r ] ->
        Alcotest.(check string) "name round-trips" name r.Store.name;
        Alcotest.(check int) "generation" 1 r.Store.generation;
        Alcotest.(check int) "torn bytes" 0 r.Store.torn_bytes;
        Alcotest.(check bool) "snapshot present" true (r.Store.snapshot <> None);
        (match r.Store.snapshot with
        | Some s -> Alcotest.(check int) "epoch" 3 s.Snapshot.epoch
        | None -> ());
        Alcotest.(check bool) "tail is the post-checkpoint record" true
          (r.Store.tail = [ Wal.Add_facts { csv = "c2" } ])
      | rs -> Alcotest.failf "expected 1 recovered entry, got %d" (List.length rs));
      (* A second checkpoint bumps the generation and GCs the old one. *)
      let st2 = Store.checkpoint store ~name (sample_snapshot ~epoch:4 ()) in
      Alcotest.(check int) "generation 2" 2 st2.Store.generation;
      let snaps =
        Array.to_list (Sys.readdir dir) |> List.filter (fun f -> Filename.check_suffix f ".snap")
      in
      Alcotest.(check int) "one generation on disk" 1 (List.length snaps);
      Store.close store)

let test_recover_skips_corrupt_generation () =
  with_tmp_dir (fun dir ->
      let store = Result.get_ok (Store.open_dir ~fsync:false dir) in
      ignore (Store.checkpoint store ~name:"e" (sample_snapshot ()));
      Store.close store;
      (* Fake a torn newer generation: recovery must fall back to gen 1. *)
      write_file (Filename.concat dir "e.00000002.snap") "garbage, not a snapshot";
      let store = Result.get_ok (Store.open_dir ~fsync:false dir) in
      (match Store.recover store with
      | [ r ] ->
        Alcotest.(check int) "fell back to generation 1" 1 r.Store.generation;
        Alcotest.(check bool) "snapshot decoded" true (r.Store.snapshot <> None)
      | rs -> Alcotest.failf "expected 1 recovered entry, got %d" (List.length rs));
      Store.close store)

(* ------------------------------------------------------------------ *)
(* Cross-process recovery through the real binary: the serve subprocess
   interns symbols in its own order, so decoding its snapshot here forces
   the codec's non-identity remap path. *)

let obda =
  let candidates = [ "../bin/obda.exe"; "_build/default/bin/obda.exe"; "bin/obda.exe" ] in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> "../bin/obda.exe"

let test_cross_process_recovery () =
  with_tmp_dir (fun dir ->
      let script = Filename.temp_file "tgd_store" ".jsonl" in
      write_file script
        (String.concat "\n"
           [
             {|{"op":"register-ontology","id":1,"name":"remap","source":"rmp(X) -> rmq(X). rmp(remap_a). rmp(remap_b)."}|};
             {|{"op":"snapshot","id":2,"name":"remap"}|};
             {|{"op":"add-facts","id":3,"name":"remap","source":"rmp,remap_c"}|};
             {|{"op":"shutdown","id":4}|};
           ]);
      let code =
        Sys.command
          (Printf.sprintf "%s serve --workers 1 --data-dir %s < %s > /dev/null 2>&1" obda
             (Filename.quote dir) (Filename.quote script))
      in
      Sys.remove script;
      Alcotest.(check int) "serve exited cleanly" 0 code;
      (* Shift this process's intern table so the subprocess's symbol ids
         cannot line up with ours — the decode below must really remap. *)
      for i = 0 to 499 do
        ignore (Tgd_logic.Symbol.intern (Printf.sprintf "shift_%d" i))
      done;
      let store = Result.get_ok (Store.open_dir ~fsync:false dir) in
      (match Store.recover store with
      | [ r ] -> (
        Alcotest.(check string) "name" "remap" r.Store.name;
        Alcotest.(check bool) "tail holds the post-snapshot add-facts" true
          (match r.Store.tail with [ Wal.Add_facts _ ] -> true | _ -> false);
        match r.Store.snapshot with
        | None -> Alcotest.fail "no decodable snapshot"
        | Some s ->
          let shown =
            norm_facts s.Snapshot.instance
            |> List.map (fun (p, t) ->
                   Printf.sprintf "%s(%s)" (Tgd_logic.Symbol.name p)
                     (String.concat ","
                        (Array.to_list
                           (Array.map (fun v -> Format.asprintf "%a" Tgd_db.Value.pp v) t))))
          in
          Alcotest.(check (list string)) "facts survive the intern remap"
            [ "rmp(remap_a)"; "rmp(remap_b)" ] shown)
      | rs -> Alcotest.failf "expected 1 recovered entry, got %d" (List.length rs));
      Store.close store)

(* ------------------------------------------------------------------ *)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "store"
    [
      ( "snapshot",
        [ qc prop_snapshot_roundtrip; qc prop_snapshot_rejects_corruption ] );
      ("wal", [ qc prop_wal_torn_tail; qc prop_wal_corrupt_byte ]);
      ( "store",
        [
          Alcotest.test_case "open_dir is idempotent and creates parents" `Quick
            test_open_dir_idempotent;
          Alcotest.test_case "open_dir fails clearly on an impossible path" `Quick
            test_open_dir_clear_error;
          Alcotest.test_case "checkpoint/recover round-trip with WAL tail" `Quick
            test_checkpoint_and_recover;
          Alcotest.test_case "recovery falls back past a corrupt generation" `Quick
            test_recover_skips_corrupt_generation;
        ] );
      ( "cross-process",
        [ Alcotest.test_case "recover a snapshot written by obda serve" `Quick
            test_cross_process_recovery ] );
    ]
