(* Unit and property tests for the Datalog rewriting target: affected
   positions, pattern decomposition, exactness on workloads the UCQ
   rewriter cannot finish, truncation soundness, and a differential
   datalog ≡ ucq property on random SWR cases. *)

open Tgd_logic
open Tgd_db
open Tgd_rewrite

let v = Term.var
let c = Term.const
let atom p args = Atom.of_strings p args

let is_complete = function Datalog_rw.Complete -> true | Datalog_rw.Truncated _ -> false

let datalog_answers = Tgd_obda.Target.datalog_answers

let ucq_answers p q inst =
  let r = Rewrite.ucq p q in
  match r.Rewrite.outcome with
  | Rewrite.Truncated _ -> Alcotest.fail "ucq rewriting unexpectedly truncated"
  | Rewrite.Complete ->
    Eval.ucq inst r.Rewrite.ucq |> List.filter (fun t -> not (Tuple.has_null t))

let tuples_equal l1 l2 = List.length l1 = List.length l2 && List.for_all2 Tuple.equal l1 l2

(* A depth-[n] concept hierarchy a_1 <= a_2 <= ... <= a_n. *)
let hierarchy n =
  let rules =
    List.init (n - 1) (fun i ->
        Tgd.make
          ~name:(Printf.sprintf "h%d" i)
          ~body:[ atom (Printf.sprintf "a%d" (i + 1)) [ v "X" ] ]
          ~head:[ atom (Printf.sprintf "a%d" (i + 2)) [ v "X" ] ])
  in
  Program.make_exn ~name:"hierarchy" rules

(* ------------------------------------------------------------------ *)

let test_deep_hierarchy () =
  let n = 60 in
  let p = hierarchy n in
  let q =
    Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom (Printf.sprintf "a%d" n) [ v "X" ] ]
  in
  let r = Datalog_rw.rewrite p q in
  Alcotest.(check bool) "complete" true (is_complete r.Datalog_rw.outcome);
  Alcotest.(check bool) "nonrecursive" true r.Datalog_rw.nonrecursive;
  (* One pattern per level: linear, not exponential, and no 60-disjunct
     union. *)
  Alcotest.(check bool) "pattern count linear" true (r.Datalog_rw.stats.Datalog_rw.patterns <= n + 1);
  let inst = Instance.of_atoms [ atom "a1" [ c "alice" ]; atom "a30" [ c "bob" ] ] in
  let got = datalog_answers r inst in
  let expected = ucq_answers p q inst in
  Alcotest.(check bool) "answers match ucq" true (tuples_equal got expected);
  Alcotest.(check int) "two answers" 2 (List.length got)

let test_example2_exact () =
  (* The paper's example 2 is not FO-rewritable: the UCQ rewriter diverges
     (test_rewrite asserts truncation). The Datalog target closes the
     recursion into a finite — recursive — program and answers exactly. *)
  let p = Tgd_core.Paper_examples.example2 in
  let q = Tgd_core.Paper_examples.example2_query in
  let r = Datalog_rw.rewrite p q in
  Alcotest.(check bool) "complete" true (is_complete r.Datalog_rw.outcome);
  Alcotest.(check bool) "recursive" false r.Datalog_rw.nonrecursive;
  Alcotest.(check bool) "few patterns" true (r.Datalog_rw.stats.Datalog_rw.patterns <= 16);
  (* t(c,a), r(c,d) |= q: R1 gives s(c,c,a), R2 gives r(a,_). *)
  let yes = Instance.of_atoms [ atom "t" [ c "c"; c "a" ]; atom "r" [ c "c"; c "d" ] ] in
  Alcotest.(check int) "entailed" 1 (List.length (datalog_answers r yes));
  (* Two derivation levels deep: r(d,e) -> s(d,d,c) -> r(c,_) -> s(c,c,a)
     -> r(a,_). *)
  let deep =
    Instance.of_atoms
      [ atom "t" [ c "c"; c "a" ]; atom "t" [ c "d"; c "c" ]; atom "r" [ c "d"; c "e" ] ]
  in
  Alcotest.(check int) "entailed transitively" 1 (List.length (datalog_answers r deep));
  let no = Instance.of_atoms [ atom "t" [ c "c"; c "a" ] ] in
  Alcotest.(check int) "not entailed" 0 (List.length (datalog_answers r no))

let test_example2_vs_chase () =
  (* Cross-check the Datalog target against chase-then-evaluate on data
     where the chase terminates. *)
  let p = Tgd_core.Paper_examples.example2 in
  let q = Tgd_core.Paper_examples.example2_query in
  let r = Datalog_rw.rewrite p q in
  let check_inst atoms =
    let inst = Instance.of_atoms atoms in
    let via_dl = datalog_answers r inst in
    let via_chase = Tgd_chase.Certain.cq ~max_rounds:60 ~max_facts:20_000 p inst q in
    Alcotest.(check bool) "chase exact" true via_chase.Tgd_chase.Certain.exact;
    Alcotest.(check bool) "datalog = chase" true
      (tuples_equal via_dl via_chase.Tgd_chase.Certain.answers)
  in
  check_inst [ atom "t" [ c "c"; c "a" ]; atom "r" [ c "c"; c "d" ] ];
  check_inst [ atom "t" [ c "c"; c "a" ]; atom "t" [ c "d"; c "c" ]; atom "r" [ c "d"; c "e" ] ];
  check_inst [ atom "s" [ c "u"; c "u"; c "a" ] ];
  check_inst [ atom "s" [ c "u"; c "v"; c "a" ]; atom "t" [ c "w"; c "a" ] ]

let test_affected_decomposition_shares () =
  (* r(X,Y1), r(X,Y2) with Y1, Y2 null-capable but X bound: the two atoms
     share only the constant-valued X, so they decompose into the SAME
     pattern — the sharing that keeps the program polynomial. *)
  let rules =
    [
      Tgd.make ~name:"mk" ~body:[ atom "p" [ v "X" ] ] ~head:[ atom "r" [ v "X"; v "Y" ] ];
    ]
  in
  let p = Program.make_exn ~name:"share" rules in
  let q =
    Cq.make ~name:"q" ~answer:[ v "X" ]
      ~body:[ atom "r" [ v "X"; v "Y1" ] ; atom "r" [ v "X"; v "Y2" ] ]
  in
  let r = Datalog_rw.rewrite p q in
  Alcotest.(check bool) "complete" true (is_complete r.Datalog_rw.outcome);
  (* Both body atoms collapse onto one r(X,_) pattern (plus its p(X)
     descendant). *)
  Alcotest.(check bool) "patterns shared" true (r.Datalog_rw.stats.Datalog_rw.patterns <= 3);
  let inst = Instance.of_atoms [ atom "p" [ c "a" ]; atom "r" [ c "b"; c "w" ] ] in
  let got = datalog_answers r inst in
  let expected = ucq_answers p q inst in
  Alcotest.(check bool) "answers match ucq" true (tuples_equal got expected);
  Alcotest.(check int) "two answers" 2 (List.length got)

let test_truncation_soundness () =
  let n = 40 in
  let p = hierarchy n in
  let q =
    Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom (Printf.sprintf "a%d" n) [ v "X" ] ]
  in
  let full = Datalog_rw.rewrite p q in
  Alcotest.(check bool) "full run complete" true (is_complete full.Datalog_rw.outcome);
  let inst =
    Instance.of_atoms [ atom "a1" [ c "deep" ]; atom (Printf.sprintf "a%d" n) [ c "top" ] ]
  in
  let full_answers = datalog_answers full inst in
  Alcotest.(check int) "full finds both" 2 (List.length full_answers);
  (* A tight pattern budget stops the exploration early; the truncated
     program must under-approximate, never invent. *)
  let budget =
    match Tgd_exec.Budget.of_string "rewrite.datalog.patterns=3" with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  let gov = Tgd_exec.Governor.create ~budget () in
  let tight = Datalog_rw.rewrite ~gov p q in
  Alcotest.(check bool) "truncated" false (is_complete tight.Datalog_rw.outcome);
  let tight_answers = datalog_answers tight inst in
  Alcotest.(check bool) "sound subset" true
    (List.for_all (fun t -> List.exists (Tuple.equal t) full_answers) tight_answers);
  Alcotest.(check bool) "shallow answer kept" true
    (List.exists (fun t -> not (Tuple.has_null t)) tight_answers
    || tight_answers = []);
  (* The structural config cap reports the same way. *)
  let capped = Datalog_rw.rewrite ~config:{ Datalog_rw.default_config with max_patterns = 2 } p q in
  Alcotest.(check bool) "config cap truncates" false (is_complete capped.Datalog_rw.outcome)

let test_saturate_fact_budget () =
  (* The rewrite.datalog.facts gauge winds saturation down between rounds. *)
  let n = 30 in
  let p = hierarchy n in
  let q =
    Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom (Printf.sprintf "a%d" n) [ v "X" ] ]
  in
  let r = Datalog_rw.rewrite p q in
  let inst = Instance.of_atoms [ atom "a1" [ c "alice" ] ] in
  let budget =
    match Tgd_exec.Budget.of_string "rewrite.datalog.facts=5" with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  let gov = Tgd_exec.Governor.create ~budget () in
  let partial = datalog_answers ~gov r inst in
  Alcotest.(check bool) "governor tripped" true (Tgd_exec.Governor.stopped gov <> None);
  let full = datalog_answers r inst in
  Alcotest.(check bool) "partial is subset" true
    (List.for_all (fun t -> List.exists (Tuple.equal t) full) partial)

(* ------------------------------------------------------------------ *)
(* Differential property: datalog ≡ ucq wherever both complete, on the
   same random SWR population the chase-vs-rewrite oracle uses. *)

let seed =
  match Sys.getenv_opt "TGDLIB_DIFF_SEED" with Some s -> int_of_string s | None -> 20140614

let n_cases =
  match Sys.getenv_opt "TGDLIB_DLRW_CASES" with Some s -> int_of_string s | None -> 150

let gen_config =
  {
    Tgd_gen.Gen_tgd.default_config with
    Tgd_gen.Gen_tgd.n_predicates = 4;
    max_arity = 2;
    n_rules = 4;
    max_body_atoms = 2;
    max_head_atoms = 1;
    existential_rate = 0.3;
  }

let random_swr_program rng =
  Tgd_gen.Gen_tgd.sample_in_class ~max_tries:200
    (fun p -> (Tgd_core.Swr.check p).Tgd_core.Swr.swr)
    (fun () -> Tgd_gen.Gen_tgd.random_simple_program rng gen_config)

let random_cq rng p =
  let preds = Program.predicates p in
  let n_atoms = 1 + Tgd_gen.Rng.int rng 2 in
  let term_of_var i = Term.var (Printf.sprintf "X%d" i) in
  let body =
    List.init n_atoms (fun _ ->
        let pred, arity = Tgd_gen.Rng.choose rng preds in
        Atom.make pred (List.init arity (fun _ -> term_of_var (Tgd_gen.Rng.int rng 3))))
  in
  let vars =
    Symbol.Set.elements
      (List.fold_left (fun acc a -> Symbol.Set.union acc (Atom.vars a)) Symbol.Set.empty body)
  in
  let answer =
    List.filter (fun _ -> Tgd_gen.Rng.bool rng 0.5) vars |> List.map (fun x -> Term.Var x)
  in
  Cq.make ~name:"q" ~answer ~body

let test_differential_vs_ucq () =
  let rng = Tgd_gen.Rng.create seed in
  let compared = ref 0 in
  let nonempty = ref 0 in
  let skipped = ref 0 in
  let attempts = ref 0 in
  let max_attempts = 100 * n_cases in
  let ucq_config = { Rewrite.default_config with max_cqs = 3_000 } in
  while !compared < n_cases && !attempts < max_attempts do
    incr attempts;
    match random_swr_program rng with
    | None -> incr skipped
    | Some p ->
      if Program.predicates p = [] then incr skipped
      else begin
        let inst =
          Tgd_gen.Gen_db.random_instance rng p ~facts_per_predicate:5 ~domain_size:4
        in
        let q = random_cq rng p in
        let u = Rewrite.ucq ~config:ucq_config p q in
        let d = Datalog_rw.rewrite p q in
        match (u.Rewrite.outcome, d.Datalog_rw.outcome) with
        | Rewrite.Complete, Datalog_rw.Complete ->
          let via_ucq =
            Eval.ucq inst u.Rewrite.ucq |> List.filter (fun t -> not (Tuple.has_null t))
          in
          let via_dl = datalog_answers d inst in
          if tuples_equal via_ucq via_dl then begin
            incr compared;
            if via_ucq <> [] then incr nonempty
          end
          else begin
            let buf = Buffer.create 512 in
            let fmt = Format.formatter_of_buffer buf in
            Format.fprintf fmt "ucq and datalog targets disagree:@.-- program:@.%s"
              (Tgd_parser.Printer.program_to_string p);
            Format.fprintf fmt "-- query: %a@." Cq.pp q;
            Format.fprintf fmt "-- facts:@.";
            List.iter (fun a -> Format.fprintf fmt "  %a.@." Atom.pp a) (Instance.to_atoms inst);
            Format.fprintf fmt "-- via ucq (%d):" (List.length via_ucq);
            List.iter (fun t -> Format.fprintf fmt " %a" Tuple.pp t) via_ucq;
            Format.fprintf fmt "@.-- via datalog (%d):" (List.length via_dl);
            List.iter (fun t -> Format.fprintf fmt " %a" Tuple.pp t) via_dl;
            Format.pp_print_flush fmt ();
            Alcotest.fail (Buffer.contents buf)
          end
        | _ -> incr skipped
      end
  done;
  Printf.printf "datalog-vs-ucq: %d cases compared (%d non-empty), %d skipped, seed %d\n"
    !compared !nonempty !skipped seed;
  if !compared < n_cases then
    Alcotest.failf "only %d/%d cases compared after %d attempts" !compared n_cases !attempts;
  if !nonempty * 5 < n_cases then
    Alcotest.failf "only %d/%d compared cases had non-empty answers — generator too weak"
      !nonempty !compared

let () =
  Alcotest.run "datalog_rw"
    [
      ( "rewrite",
        [
          Alcotest.test_case "deep hierarchy exact + nonrecursive" `Quick test_deep_hierarchy;
          Alcotest.test_case "example 2 exact (recursive)" `Quick test_example2_exact;
          Alcotest.test_case "example 2 vs chase" `Quick test_example2_vs_chase;
          Alcotest.test_case "decomposition shares patterns" `Quick
            test_affected_decomposition_shares;
          Alcotest.test_case "truncation is sound" `Quick test_truncation_soundness;
          Alcotest.test_case "saturation fact budget" `Quick test_saturate_fact_budget;
        ] );
      ( "differential",
        [
          Alcotest.test_case
            (Printf.sprintf "%d random SWR cases: datalog = ucq (seed %d)" n_cases seed)
            `Slow test_differential_vs_ucq;
        ] );
    ]
