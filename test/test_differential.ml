(* Differential oracle: on random SWR ontologies with random data and random
   conjunctive queries, the two certain-answer pipelines must agree —

     rewrite-then-evaluate   (Rewrite.ucq + Eval.ucq over the raw data)
     chase-then-evaluate     (Certain.cq: materialize, evaluate, drop nulls)

   SWR guarantees FO-rewritability (the rewriting terminates), but NOT chase
   termination, so a case only counts when the rewriting is Complete AND the
   chase reached a fixpoint; the harness draws cases until [n_cases] have
   been compared. Seeded (override with TGDLIB_DIFF_SEED / TGDLIB_DIFF_CASES)
   and shrinking: a disagreement is minimized by dropping rules, then facts,
   to a fixed point before reporting. *)

open Tgd_logic
open Tgd_db

let seed =
  match Sys.getenv_opt "TGDLIB_DIFF_SEED" with Some s -> int_of_string s | None -> 20140614

let n_cases =
  match Sys.getenv_opt "TGDLIB_DIFF_CASES" with Some s -> int_of_string s | None -> 200

let gen_config =
  {
    Tgd_gen.Gen_tgd.default_config with
    Tgd_gen.Gen_tgd.n_predicates = 4;
    max_arity = 2;
    n_rules = 4;
    max_body_atoms = 2;
    max_head_atoms = 1;
    existential_rate = 0.3;
  }

let random_swr_program rng =
  Tgd_gen.Gen_tgd.sample_in_class ~max_tries:200
    (fun p -> (Tgd_core.Swr.check p).Tgd_core.Swr.swr)
    (fun () -> Tgd_gen.Gen_tgd.random_simple_program rng gen_config)

(* Small random CQs over the program's signature: 1-2 atoms, 3 variables
   (collisions make joins interesting), each variable flipping a coin to be
   an answer variable. *)
let random_cq rng p =
  let preds = Program.predicates p in
  let n_atoms = 1 + Tgd_gen.Rng.int rng 2 in
  let term_of_var i = Term.var (Printf.sprintf "X%d" i) in
  let body =
    List.init n_atoms (fun _ ->
        let pred, arity = Tgd_gen.Rng.choose rng preds in
        Atom.make pred (List.init arity (fun _ -> term_of_var (Tgd_gen.Rng.int rng 3))))
  in
  let vars =
    Symbol.Set.elements
      (List.fold_left (fun acc a -> Symbol.Set.union acc (Atom.vars a)) Symbol.Set.empty body)
  in
  let answer =
    List.filter (fun _ -> Tgd_gen.Rng.bool rng 0.5) vars |> List.map (fun v -> Term.Var v)
  in
  Cq.make ~name:"q" ~answer ~body

(* ------------------------------------------------------------------ *)
(* The two pipelines. [None] = budget hit, the case does not count.    *)

let rewrite_config = { Tgd_rewrite.Rewrite.default_config with max_cqs = 3_000 }

let certain_by_rewriting p inst q =
  let r = Tgd_rewrite.Rewrite.ucq ~config:rewrite_config p q in
  match r.Tgd_rewrite.Rewrite.outcome with
  | Tgd_rewrite.Rewrite.Truncated _ -> None
  | Tgd_rewrite.Rewrite.Complete ->
    Some
      (Eval.ucq inst r.Tgd_rewrite.Rewrite.ucq
      |> List.filter (fun t -> not (Tuple.has_null t)))

let certain_by_chase p inst q =
  let r = Tgd_chase.Certain.cq ~max_rounds:60 ~max_facts:20_000 p inst q in
  if r.Tgd_chase.Certain.exact then Some r.Tgd_chase.Certain.answers else None

let tuples_equal l1 l2 = List.length l1 = List.length l2 && List.for_all2 Tuple.equal l1 l2

(* Both lists are deduplicated and sorted (Eval.ucq / Certain contracts). *)
let disagreement p facts q =
  let inst = Instance.of_atoms facts in
  match (certain_by_rewriting p inst q, certain_by_chase p inst q) with
  | Some via_rw, Some via_chase ->
    if tuples_equal via_rw via_chase then `Agree (List.length via_rw)
    else `Disagree (via_rw, via_chase)
  | _ -> `Skip

(* ------------------------------------------------------------------ *)
(* Shrinking: greedily drop rules, then facts, while the disagreement
   persists. Deterministic, so the minimal case is reproducible.       *)

let drop_nth n l = List.filteri (fun i _ -> i <> n) l

let shrink p facts q =
  let disagrees p facts =
    match disagreement p facts q with `Disagree _ -> true | `Agree _ | `Skip -> false
  in
  let rec drop_rules p =
    let tgds = Program.tgds p in
    let try_without i =
      match Program.make ~name:p.Program.name (drop_nth i tgds) with
      | Ok p' when disagrees p' facts -> Some p'
      | Ok _ | Error _ -> None
    in
    match List.find_map try_without (List.init (List.length tgds) Fun.id) with
    | Some p' -> drop_rules p'
    | None -> p
  in
  let p = drop_rules p in
  let rec drop_facts facts =
    let try_without i =
      let facts' = drop_nth i facts in
      if disagrees p facts' then Some facts' else None
    in
    match List.find_map try_without (List.init (List.length facts) Fun.id) with
    | Some facts' -> drop_facts facts'
    | None -> facts
  in
  (p, drop_facts facts)

let report_failure p facts q via_rw via_chase =
  let buf = Buffer.create 512 in
  let fmt = Format.formatter_of_buffer buf in
  Format.fprintf fmt "rewriting and chase disagree (shrunk witness):@.";
  Format.fprintf fmt "-- program:@.%s" (Tgd_parser.Printer.program_to_string p);
  Format.fprintf fmt "-- facts:@.";
  List.iter (fun a -> Format.fprintf fmt "  %a.@." Atom.pp a) facts;
  Format.fprintf fmt "-- query: %a@." Cq.pp q;
  Format.fprintf fmt "-- via rewriting (%d):" (List.length via_rw);
  List.iter (fun t -> Format.fprintf fmt " %a" Tuple.pp t) via_rw;
  Format.fprintf fmt "@.-- via chase (%d):" (List.length via_chase);
  List.iter (fun t -> Format.fprintf fmt " %a" Tuple.pp t) via_chase;
  Format.fprintf fmt "@.";
  Format.pp_print_flush fmt ();
  Alcotest.fail (Buffer.contents buf)

(* ------------------------------------------------------------------ *)

let test_differential () =
  let rng = Tgd_gen.Rng.create seed in
  let compared = ref 0 in
  let nonempty = ref 0 in
  let skipped = ref 0 in
  let attempts = ref 0 in
  let max_attempts = 100 * n_cases in
  while !compared < n_cases && !attempts < max_attempts do
    incr attempts;
    match random_swr_program rng with
    | None -> incr skipped
    | Some p ->
      if Program.predicates p = [] then incr skipped
      else begin
        let inst =
          Tgd_gen.Gen_db.random_instance rng p ~facts_per_predicate:5 ~domain_size:4
        in
        let facts = Instance.to_atoms inst in
        let q = random_cq rng p in
        match disagreement p facts q with
        | `Agree n ->
          incr compared;
          if n > 0 then incr nonempty
        | `Skip -> incr skipped
        | `Disagree _ ->
          let p', facts' = shrink p facts q in
          (match disagreement p' facts' q with
          | `Disagree (via_rw, via_chase) -> report_failure p' facts' q via_rw via_chase
          | `Agree _ | `Skip ->
            (* The shrunk endpoint must still disagree by construction. *)
            Alcotest.fail "shrinking lost the disagreement (shrinker bug)")
      end
  done;
  Printf.printf "differential: %d cases compared (%d with non-empty answers), %d skipped, seed %d\n"
    !compared !nonempty !skipped seed;
  if !compared < n_cases then
    Alcotest.failf "only %d/%d cases compared after %d attempts (%d skipped)" !compared n_cases
      !attempts !skipped;
  (* Guard against a vacuous suite: a healthy generator produces plenty of
     cases whose certain answers are non-empty. *)
  if !nonempty * 5 < n_cases then
    Alcotest.failf "only %d/%d compared cases had non-empty answers — generator too weak"
      !nonempty !compared

let () =
  Alcotest.run "differential"
    [
      ( "chase-vs-rewrite",
        [
          Alcotest.test_case
            (Printf.sprintf "%d random SWR cases agree (seed %d)" n_cases seed)
            `Slow test_differential;
        ] );
    ]
