(* Property-based tests (qcheck) on the core data structures and invariants:
   unification, containment, evaluation vs homomorphisms, chase vs datalog,
   SCC vs reachability, canonicalization invariance. *)

open Tgd_logic

let v = Term.var
let c = Term.const

(* ------------------------------------------------------------------ *)
(* Generators *)

(* A small fixed signature so that random atoms collide often enough to
   make unification and joins interesting: p/2, q/1, r/3. *)
let signature = [ ("p", 2); ("q", 1); ("r", 3) ]

let gen_pred = QCheck.Gen.oneofl signature

let gen_var = QCheck.Gen.map (fun i -> v (Printf.sprintf "X%d" i)) (QCheck.Gen.int_bound 4)
let gen_const = QCheck.Gen.map (fun i -> c (Printf.sprintf "c%d" i)) (QCheck.Gen.int_bound 3)

let gen_term = QCheck.Gen.frequency [ (3, gen_var); (1, gen_const) ]

let gen_atom =
  QCheck.Gen.(
    gen_pred >>= fun (name, arity) ->
    list_repeat arity gen_term >>= fun args -> return (Atom.of_strings name args))

let gen_ground_atom =
  QCheck.Gen.(
    gen_pred >>= fun (name, arity) ->
    list_repeat arity gen_const >>= fun args -> return (Atom.of_strings name args))

let gen_body = QCheck.Gen.(int_range 1 4 >>= fun n -> list_repeat n gen_atom)

let gen_cq =
  QCheck.Gen.(
    gen_body >>= fun body ->
    let vars = Symbol.Set.elements (List.fold_left (fun acc a -> Symbol.Set.union acc (Atom.vars a)) Symbol.Set.empty body) in
    (if vars = [] then return []
     else
       int_bound (min 2 (List.length vars - 1)) >>= fun k ->
       return (List.filteri (fun i _ -> i <= k) vars))
    >>= fun answer_vars -> return (Cq.make ~name:"q" ~answer:(List.map (fun x -> Term.Var x) answer_vars) ~body))

let gen_instance_atoms = QCheck.Gen.(int_range 5 30 >>= fun n -> list_repeat n gen_ground_atom)

let arb_atom = QCheck.make ~print:Atom.to_string gen_atom
let arb_atom_pair = QCheck.make ~print:(fun (a, b) -> Atom.to_string a ^ " ~ " ^ Atom.to_string b) QCheck.Gen.(pair gen_atom gen_atom)
let arb_cq = QCheck.make ~print:Cq.to_string gen_cq
let arb_cq_pair =
  QCheck.make
    ~print:(fun (a, b) -> Cq.to_string a ^ " vs " ^ Cq.to_string b)
    QCheck.Gen.(pair gen_cq gen_cq)

(* ------------------------------------------------------------------ *)
(* Unification properties *)

let prop_mgu_unifies =
  QCheck.Test.make ~name:"mgu application makes atoms equal" ~count:500 arb_atom_pair
    (fun (a1, a2) ->
      match Unify.mgu a1 a2 with
      | None -> QCheck.assume_fail ()
      | Some s -> Atom.equal (Subst.apply_atom s a1) (Subst.apply_atom s a2))

let prop_unifiable_symmetric =
  QCheck.Test.make ~name:"unifiability is symmetric" ~count:500 arb_atom_pair (fun (a1, a2) ->
      Unify.unifiable a1 a2 = Unify.unifiable a2 a1)

let prop_mgu_idempotent =
  QCheck.Test.make ~name:"mgu application is idempotent" ~count:500 arb_atom_pair
    (fun (a1, a2) ->
      match Unify.mgu a1 a2 with
      | None -> QCheck.assume_fail ()
      | Some s ->
        let once = Subst.apply_atom s a1 in
        Atom.equal once (Subst.apply_atom s once))

let prop_self_unifiable =
  QCheck.Test.make ~name:"every atom unifies with itself" ~count:200 arb_atom (fun a ->
      Unify.unifiable a a)

(* ------------------------------------------------------------------ *)
(* Containment properties *)

let prop_containment_reflexive =
  QCheck.Test.make ~name:"containment is reflexive" ~count:200 arb_cq (fun q ->
      Containment.contained q q)

let prop_containment_transitive_witness =
  QCheck.Test.make ~name:"containment is transitive" ~count:200
    (QCheck.make QCheck.Gen.(triple gen_cq gen_cq gen_cq))
    (fun (q1, q2, q3) ->
      if Containment.contained q1 q2 && Containment.contained q2 q3 then
        Containment.contained q1 q3
      else QCheck.assume_fail ())

let prop_canonical_equivalent =
  QCheck.Test.make ~name:"canonical form is equivalent to the query" ~count:200 arb_cq (fun q ->
      Containment.equivalent q (Cq.canonical q))

let prop_extra_atom_contained =
  QCheck.Test.make ~name:"adding a body atom specialises" ~count:200
    (QCheck.make QCheck.Gen.(pair gen_cq gen_atom))
    (fun (q, extra) ->
      let q' = Cq.make ~name:"q'" ~answer:q.Cq.answer ~body:(extra :: q.Cq.body) in
      Containment.contained q' q)

let prop_contained_matches_reference =
  (* The filtered/cached engine must agree with the seed implementation. *)
  QCheck.Test.make ~name:"filtered containment agrees with reference" ~count:1000 arb_cq_pair
    (fun (q1, q2) ->
      Containment.contained q1 q2 = Containment.contained_reference q1 q2
      &&
      let p1 = Containment.precompute q1 and p2 = Containment.precompute q2 in
      Containment.contained_pre p1 p2 = Containment.contained_reference q1 q2)

let prop_minimize_matches_reference =
  QCheck.Test.make ~name:"minimize_ucq equals the reference sweep" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 1 8) gen_cq))
    (fun ucq ->
      let ar = Cq.arity (List.hd ucq) in
      let ucq = List.filter (fun q -> Cq.arity q = ar) ucq in
      let m = Containment.minimize_ucq ucq in
      let r = Containment.minimize_ucq_reference ucq in
      List.length m = List.length r && List.for_all2 Cq.equal m r)

let prop_minimize_preserves =
  QCheck.Test.make ~name:"minimize_ucq preserves UCQ semantics" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_range 1 5) gen_cq))
    (fun ucq ->
      (* All queries in the union must share an arity for this to be a UCQ;
         restrict to the arity of the first. *)
      let ar = Cq.arity (List.hd ucq) in
      let ucq = List.filter (fun q -> Cq.arity q = ar) ucq in
      let m = Containment.minimize_ucq ucq in
      Containment.ucq_contained m ucq && Containment.ucq_contained ucq m)

(* ------------------------------------------------------------------ *)
(* Evaluation vs homomorphism cross-validation *)

let prop_eval_matches_homomorphisms =
  QCheck.Test.make ~name:"Eval.cq agrees with the homomorphism search" ~count:100
    (QCheck.make QCheck.Gen.(pair gen_cq gen_instance_atoms))
    (fun (q, facts) ->
      let inst = Tgd_db.Instance.of_atoms facts in
      let via_eval = Tgd_db.Eval.cq inst q in
      (* Independent implementation: enumerate homomorphisms over the atom
         list and build answer tuples. *)
      let target = Homomorphism.target_of_atoms facts in
      let module TT = Tgd_db.Tuple.Table in
      let acc = TT.create 16 in
      Homomorphism.iter
        (fun m ->
          let tuple =
            Array.of_list
              (List.map
                 (fun t ->
                   match t with
                   | Term.Const cst -> Tgd_db.Value.Const cst
                   | Term.Var var -> (
                     match Symbol.Map.find_opt var m with
                     | Some (Term.Const cst) -> Tgd_db.Value.Const cst
                     | Some (Term.Var _) | None -> failwith "non-ground image"))
                 q.Cq.answer)
          in
          if not (TT.mem acc tuple) then TT.add acc tuple ())
        q.Cq.body target;
      let via_hom = TT.fold (fun t () l -> t :: l) acc [] |> List.sort Tgd_db.Tuple.compare in
      List.length via_eval = List.length via_hom
      && List.for_all2 Tgd_db.Tuple.equal via_eval via_hom)

(* ------------------------------------------------------------------ *)
(* Chase vs Datalog on existential-free programs *)

let gen_datalog_rule =
  QCheck.Gen.(
    gen_body >>= fun body ->
    let vars =
      Symbol.Set.elements
        (List.fold_left (fun acc a -> Symbol.Set.union acc (Atom.vars a)) Symbol.Set.empty body)
    in
    gen_pred >>= fun (name, arity) ->
    (* head arguments drawn from body variables (or constants if none) *)
    list_repeat arity (if vars = [] then gen_const else QCheck.Gen.map (fun i -> Term.Var (List.nth vars (i mod List.length vars))) (int_bound 10))
    >>= fun args -> return (Tgd.make ?name:None ~body ~head:[ Atom.of_strings name args ]))

let gen_datalog_program =
  QCheck.Gen.(
    int_range 1 4 >>= fun n ->
    list_repeat n gen_datalog_rule >>= fun rules -> return (Program.make_exn rules))

let prop_chase_equals_datalog =
  QCheck.Test.make ~name:"restricted chase = datalog saturation (no existentials)" ~count:60
    (QCheck.make QCheck.Gen.(pair gen_datalog_program gen_instance_atoms))
    (fun (p, facts) ->
      let i1 = Tgd_db.Instance.of_atoms facts in
      let i2 = Tgd_db.Instance.of_atoms facts in
      let stats = Tgd_chase.Chase.run ~max_rounds:100 ~max_facts:50_000 p i1 in
      let _ = Tgd_db.Datalog.saturate ~max_rounds:100 p i2 in
      stats.Tgd_chase.Chase.outcome = Tgd_chase.Chase.Terminated
      && Tgd_db.Instance.cardinality i1 = Tgd_db.Instance.cardinality i2
      && List.for_all
           (fun (pred, t) ->
             match Tgd_db.Instance.relation i2 pred with
             | None -> false
             | Some rel -> Tgd_db.Relation.mem rel t)
           (Tgd_db.Instance.facts i1))

(* ------------------------------------------------------------------ *)
(* Graph properties *)

let gen_graph =
  QCheck.Gen.(
    int_range 1 8 >>= fun n ->
    list_size (int_range 0 16) (pair (int_bound (n - 1)) (int_bound (n - 1))) >>= fun edges ->
    return (n, edges))

let prop_scc_is_mutual_reachability =
  QCheck.Test.make ~name:"same SCC iff mutually reachable" ~count:200
    (QCheck.make
       ~print:(fun (n, e) ->
         Printf.sprintf "n=%d edges=%s" n
           (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) e)))
       gen_graph)
    (fun (n, edges) ->
      let g = Tgd_graph.Int_digraph.make ~n ~edges:(Array.of_list edges) in
      let comp, _ = Tgd_graph.Int_digraph.scc g in
      let reach = Array.init n (fun i -> Tgd_graph.Int_digraph.reachable g i) in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let mutual = reach.(i).(j) && reach.(j).(i) in
          if (comp.(i) = comp.(j)) <> mutual then ok := false
        done
      done;
      !ok)

let prop_simple_cycles_within_scc =
  QCheck.Test.make ~name:"every simple cycle stays inside one SCC" ~count:200
    (QCheck.make gen_graph)
    (fun (n, edges) ->
      let g = Tgd_graph.Int_digraph.make ~n ~edges:(Array.of_list edges) in
      let comp, _ = Tgd_graph.Int_digraph.scc g in
      Tgd_graph.Int_digraph.simple_cycles ~limit:500 g
      |> List.for_all (fun cycle ->
             List.for_all
               (fun e ->
                 let s, d = Tgd_graph.Int_digraph.edge g e in
                 comp.(s) = comp.(d))
               cycle))

(* ------------------------------------------------------------------ *)
(* P-node canonicalization invariance *)

let prop_p_node_renaming_invariant =
  QCheck.Test.make ~name:"P-node canonical form is renaming-invariant" ~count:200
    (QCheck.make QCheck.Gen.(pair gen_atom (int_bound 1000)))
    (fun (sigma, salt) ->
      (* Rename all variables through a salted injective map. *)
      let rename t =
        match t with
        | Term.Const _ -> t
        | Term.Var x -> Term.var (Printf.sprintf "R%d_%s" salt (Symbol.name x))
      in
      let sigma' = Atom.apply rename sigma in
      let n1 = Tgd_core.P_node.canonicalize ~sigma ~context:[ sigma ] ~tracked:None in
      let n2 = Tgd_core.P_node.canonicalize ~sigma:sigma' ~context:[ sigma' ] ~tracked:None in
      Tgd_core.P_node.equal n1 n2)

(* ------------------------------------------------------------------ *)
(* Parser robustness and round-tripping *)

let prop_parser_never_crashes =
  QCheck.Test.make ~name:"parser returns Ok/Error, never raises" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_range 0 80))
    (fun s ->
      match Tgd_parser.Parser.parse_string s with Ok _ | Error _ -> true)

let prop_parser_structured_noise =
  (* Noise built from the grammar's own token shapes finds deeper paths than
     raw bytes. *)
  let token =
    QCheck.Gen.oneofl
      [ "p"; "q1"; "X"; "Y2"; "_w"; "("; ")"; "["; "]"; ","; "."; "->"; ":-"; "\"lit\"";
        "falsum"; "%c\n"; " " ]
  in
  let gen = QCheck.Gen.(map (String.concat "") (list_size (int_range 0 25) token)) in
  QCheck.Test.make ~name:"parser survives token soup" ~count:500
    (QCheck.make ~print:(fun s -> s) gen)
    (fun s -> match Tgd_parser.Parser.parse_string s with Ok _ | Error _ -> true)

let prop_program_roundtrip =
  (* Any generated simple program survives print -> parse with the same
     rendering. *)
  QCheck.Test.make ~name:"program print/parse round-trip" ~count:60
    (QCheck.make QCheck.Gen.(int_range 0 10_000))
    (fun seed ->
      let rng = Tgd_gen.Rng.create seed in
      let p =
        Tgd_gen.Gen_tgd.random_program ~name:"rt" rng
          { Tgd_gen.Gen_tgd.default_config with n_rules = 4; constant_rate = 0.2 }
      in
      let text = Tgd_parser.Printer.program_to_string p in
      match Tgd_parser.Parser.parse_string text with
      | Error _ -> false
      | Ok doc -> (
        match Tgd_parser.Parser.program_of_document ~name:"rt" doc with
        | Error _ -> false
        | Ok p' -> String.equal text (Tgd_parser.Printer.program_to_string p')))

(* ------------------------------------------------------------------ *)
(* OBDA: unfolding vs materialization *)

let prop_unfold_equals_materialize =
  (* For random single-atom-source mappings and random source data,
     evaluating the unfolded query equals querying the materialized ABox. *)
  QCheck.Test.make ~name:"mapping unfolding = ABox materialization" ~count:60
    (QCheck.make QCheck.Gen.(int_range 0 10_000))
    (fun seed ->
      let rng = Tgd_gen.Rng.create seed in
      (* source schema: s0/2, s1/3; ontology schema: o0/1, o1/2 *)
      let src_pred = [ ("s0", 2); ("s1", 3) ] in
      let tgt_pred = [ ("o0", 1); ("o1", 2) ] in
      let var i = Term.var (Printf.sprintf "V%d" i) in
      let random_mapping k =
        let sname, sarity = List.nth src_pred (Tgd_gen.Rng.int rng 2) in
        let tname, tarity = List.nth tgt_pred (Tgd_gen.Rng.int rng 2) in
        let source = [ Atom.of_strings sname (List.init sarity var) ] in
        (* target arguments are randomly chosen source variables *)
        let target = Atom.of_strings tname (List.init tarity (fun _ -> var (Tgd_gen.Rng.int rng sarity))) in
        Tgd_obda.Mapping.make ~name:(Printf.sprintf "pm%d" k) ~source ~target
      in
      let mappings = List.init 4 random_mapping in
      let source_db =
        let inst = Tgd_db.Instance.create () in
        for _ = 1 to 20 do
          let sname, sarity = List.nth src_pred (Tgd_gen.Rng.int rng 2) in
          let t =
            Array.init sarity (fun _ -> Tgd_db.Value.const (Printf.sprintf "d%d" (Tgd_gen.Rng.int rng 5)))
          in
          ignore (Tgd_db.Instance.add_fact inst (Symbol.intern sname) t)
        done;
        inst
      in
      let abox = Tgd_obda.Mapping.materialize mappings source_db in
      let queries =
        [
          Cq.make ~name:"p1" ~answer:[ var 0 ] ~body:[ Atom.of_strings "o0" [ var 0 ] ];
          Cq.make ~name:"p2" ~answer:[ var 0 ]
            ~body:[ Atom.of_strings "o1" [ var 0; var 1 ] ];
          Cq.make ~name:"p3" ~answer:[ var 0 ]
            ~body:[ Atom.of_strings "o0" [ var 0 ]; Atom.of_strings "o1" [ var 0; var 1 ] ];
        ]
      in
      List.for_all
        (fun q ->
          let via_unfold = Tgd_db.Eval.ucq source_db (Tgd_obda.Unfold.cq mappings q) in
          let via_abox = Tgd_db.Eval.cq abox q in
          List.length via_unfold = List.length via_abox
          && List.for_all2 Tgd_db.Tuple.equal via_unfold via_abox)
        queries)

(* ------------------------------------------------------------------ *)
(* Rewriting determinism across domain counts *)

let canonical_set ucq = List.sort Cq.compare (List.map Cq.canonical ucq)

let equal_canonical_sets u1 u2 =
  let s1 = canonical_set u1 and s2 = canonical_set u2 in
  List.length s1 = List.length s2 && List.for_all2 Cq.equal s1 s2

let test_rewrite_domain_determinism () =
  (* The UCQ produced by the rewriting engine must not depend on how many
     domains minimize the kept set. *)
  let cases =
    List.map (fun q -> (Tgd_gen.University.ontology, q)) Tgd_gen.University.queries
    @ [
        ( Tgd_core.Paper_examples.example1,
          Cq.make ~name:"q" ~answer:[ v "X" ]
            ~body:[ Atom.of_strings "r" [ v "X"; v "Y" ] ] );
        ( Tgd_core.Paper_examples.example3,
          Cq.make ~name:"q" ~answer:[ v "X" ]
            ~body:[ Atom.of_strings "s" [ v "X"; v "Y"; v "Z" ] ] );
      ]
  in
  List.iter
    (fun (p, q) ->
      let run d =
        let config = { Tgd_rewrite.Rewrite.default_config with domains = Some d } in
        (Tgd_rewrite.Rewrite.ucq ~config p q).Tgd_rewrite.Rewrite.ucq
      in
      let sequential = run 1 and parallel = run 4 in
      Alcotest.(check bool)
        (Printf.sprintf "domains=1 and domains=4 agree on %s" q.Cq.name)
        true
        (equal_canonical_sets sequential parallel))
    cases

(* ------------------------------------------------------------------ *)
(* Rng properties *)

let prop_rng_bounds =
  QCheck.Test.make ~name:"Rng.int within bounds" ~count:500
    QCheck.(pair (int_range 1 1_000_000) small_int)
    (fun (bound, seed) ->
      let g = Tgd_gen.Rng.create seed in
      let x = Tgd_gen.Rng.int g bound in
      x >= 0 && x < bound)

let () =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  Alcotest.run "properties"
    [
      ( "unification",
        List.map to_alcotest
          [ prop_mgu_unifies; prop_unifiable_symmetric; prop_mgu_idempotent; prop_self_unifiable ]
      );
      ( "containment",
        List.map to_alcotest
          [
            prop_containment_reflexive;
            prop_containment_transitive_witness;
            prop_canonical_equivalent;
            prop_extra_atom_contained;
            prop_contained_matches_reference;
            prop_minimize_matches_reference;
            prop_minimize_preserves;
          ] );
      ( "rewrite-determinism",
        [ Alcotest.test_case "domains=1 vs domains=4" `Quick test_rewrite_domain_determinism ] );
      ("evaluation", List.map to_alcotest [ prop_eval_matches_homomorphisms ]);
      ("chase", List.map to_alcotest [ prop_chase_equals_datalog ]);
      ( "graphs",
        List.map to_alcotest [ prop_scc_is_mutual_reachability; prop_simple_cycles_within_scc ] );
      ("p-node", List.map to_alcotest [ prop_p_node_renaming_invariant ]);
      ( "parser",
        List.map to_alcotest
          [ prop_parser_never_crashes; prop_parser_structured_noise; prop_program_roundtrip ] );
      ("obda", List.map to_alcotest [ prop_unfold_equals_materialize ]);
      ("rng", List.map to_alcotest [ prop_rng_bounds ]);
    ]
