(* Tests for the OBDA layer: mapping assertions, unfolding, negative
   constraints, approximation, and the end-to-end system. *)

open Tgd_logic
open Tgd_db
open Tgd_obda

let v = Term.var
let c = Term.const
let atom p args = Atom.of_strings p args
let tuples_equal l1 l2 = List.length l1 = List.length l2 && List.for_all2 Tuple.equal l1 l2

(* A registrar source schema:
     emp_record(id, dept, role)      role in {prof, lect}
     enrollment(student, course)
   mapped to the ontology vocabulary of the university ontology. *)
let mappings =
  [
    Mapping.make ~name:"m_prof"
      ~source:[ atom "emp_record" [ v "X"; v "D"; c "prof" ] ]
      ~target:(atom "professor" [ v "X" ]);
    Mapping.make ~name:"m_lect"
      ~source:[ atom "emp_record" [ v "X"; v "D"; c "lect" ] ]
      ~target:(atom "lecturer" [ v "X" ]);
    Mapping.make ~name:"m_works"
      ~source:[ atom "emp_record" [ v "X"; v "D"; v "R" ] ]
      ~target:(atom "works_for" [ v "X"; v "D" ]);
    Mapping.make ~name:"m_takes"
      ~source:[ atom "enrollment" [ v "S"; v "C" ] ]
      ~target:(atom "takes_course" [ v "S"; v "C" ]);
    Mapping.make ~name:"m_student"
      ~source:[ atom "enrollment" [ v "S"; v "C" ] ]
      ~target:(atom "undergraduate" [ v "S" ]);
  ]

let source_db () =
  Instance.of_atoms
    [
      atom "emp_record" [ c "ada"; c "cs"; c "prof" ];
      atom "emp_record" [ c "bob"; c "math"; c "lect" ];
      atom "emp_record" [ c "eve"; c "cs"; c "lect" ];
      atom "enrollment" [ c "sam"; c "db101" ];
      atom "enrollment" [ c "lee"; c "db101" ];
    ]

(* ------------------------------------------------------------------ *)
(* Mapping *)

let test_mapping_validation () =
  Alcotest.check_raises "unsafe mapping"
    (Invalid_argument "Mapping.make: unsafe mapping (target variable not in source)") (fun () ->
      ignore (Mapping.make ?name:None ~source:[ atom "t" [ v "X" ] ] ~target:(atom "p" [ v "Y" ])));
  Alcotest.check_raises "empty source" (Invalid_argument "Mapping.make: empty source query")
    (fun () -> ignore (Mapping.make ?name:None ~source:[] ~target:(atom "p" [ c "a" ])))

let test_mapping_materialize () =
  let abox = Mapping.materialize mappings (source_db ()) in
  let count pred =
    match Instance.relation abox (Symbol.intern pred) with
    | None -> 0
    | Some rel -> Relation.cardinality rel
  in
  Alcotest.(check int) "professors" 1 (count "professor");
  Alcotest.(check int) "lecturers" 2 (count "lecturer");
  Alcotest.(check int) "works_for" 3 (count "works_for");
  Alcotest.(check int) "takes_course" 2 (count "takes_course");
  Alcotest.(check int) "undergraduates" 2 (count "undergraduate")

let test_mapping_for_pred () =
  Alcotest.(check int) "one professor mapping" 1
    (List.length (Mapping.for_pred mappings (Symbol.intern "professor")));
  Alcotest.(check int) "none for person" 0
    (List.length (Mapping.for_pred mappings (Symbol.intern "person")))

(* ------------------------------------------------------------------ *)
(* Unfold *)

let test_unfold_single_atom () =
  let q = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "professor" [ v "X" ] ] in
  match Unfold.cq mappings q with
  | [ u ] ->
    Alcotest.(check int) "source body" 1 (List.length u.Cq.body);
    Alcotest.(check string) "source predicate" "emp_record"
      (Symbol.name (List.hd u.Cq.body).Atom.pred)
  | other -> Alcotest.fail (Printf.sprintf "expected 1 unfolding, got %d" (List.length other))

let test_unfold_unmapped_atom_dies () =
  let q = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "person" [ v "X" ] ] in
  Alcotest.(check int) "no unfolding" 0 (List.length (Unfold.cq mappings q))

let test_unfold_join_threading () =
  (* takes_course(X,C), takes_course(Y,C): the shared course variable must
     link the two enrollment atoms. *)
  let q =
    Cq.make ~name:"q" ~answer:[ v "X"; v "Y" ]
      ~body:[ atom "takes_course" [ v "X"; v "C" ]; atom "takes_course" [ v "Y"; v "C" ] ]
  in
  match Unfold.cq mappings q with
  | [ u ] ->
    let vars =
      List.fold_left (fun acc a -> Symbol.Set.union acc (Atom.vars a)) Symbol.Set.empty u.Cq.body
    in
    (* two students + one shared course variable *)
    Alcotest.(check int) "three variables" 3 (Symbol.Set.cardinal vars)
  | other -> Alcotest.fail (Printf.sprintf "expected 1 unfolding, got %d" (List.length other))

let test_unfold_equals_materialization () =
  (* Evaluating the unfolded query on the source equals evaluating the
     original query on the materialized ABox. *)
  let src = source_db () in
  let abox = Mapping.materialize mappings src in
  let queries =
    [
      Cq.make ~name:"u1" ~answer:[ v "X" ] ~body:[ atom "lecturer" [ v "X" ] ];
      Cq.make ~name:"u2" ~answer:[ v "X"; v "D" ] ~body:[ atom "works_for" [ v "X"; v "D" ] ];
      Cq.make ~name:"u3" ~answer:[ v "S" ]
        ~body:[ atom "undergraduate" [ v "S" ]; atom "takes_course" [ v "S"; v "C" ] ];
    ]
  in
  List.iter
    (fun q ->
      let via_unfold = Eval.ucq src (Unfold.cq mappings q) in
      let via_abox = Eval.cq abox q in
      Alcotest.(check bool) (q.Cq.name ^ " agreement") true (tuples_equal via_unfold via_abox))
    queries

let test_unfold_multiple_choices () =
  (* Two mappings target undergraduate-like predicates: a query over
     [student] is not mapped, but a query over works_for has one mapping and
     over lecturer one; a UCQ mixes them. *)
  let u =
    Unfold.ucq mappings
      [
        Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "lecturer" [ v "X" ] ];
        Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "professor" [ v "X" ] ];
      ]
  in
  Alcotest.(check int) "two disjuncts" 2 (List.length u)

(* ------------------------------------------------------------------ *)
(* Constraints *)

let disjoint_student_faculty = Constraints.make ~name:"disj" [ atom "student" [ v "X" ]; atom "faculty" [ v "X" ] ]

let test_constraints_consistent () =
  let data =
    Instance.of_atoms [ atom "undergraduate" [ c "sam" ]; atom "lecturer" [ c "ada" ] ]
  in
  let verdict =
    Constraints.check Tgd_gen.University.ontology [ disjoint_student_faculty ] data
  in
  Alcotest.(check bool) "consistent" true verdict.Constraints.consistent;
  Alcotest.(check bool) "complete" true verdict.Constraints.complete

let test_constraints_violation_through_hierarchy () =
  (* ada is both an undergraduate and a full professor; the violation is
     only visible through the taxonomy (undergraduate -> student,
     full_professor -> professor -> faculty): it requires rewriting the
     constraint body. *)
  let data =
    Instance.of_atoms [ atom "undergraduate" [ c "ada" ]; atom "full_professor" [ c "ada" ] ]
  in
  let verdict =
    Constraints.check Tgd_gen.University.ontology [ disjoint_student_faculty ] data
  in
  Alcotest.(check bool) "inconsistent" false verdict.Constraints.consistent;
  Alcotest.(check bool) "names the constraint" true
    (List.exists
       (fun viol -> viol.Constraints.constraint_.Constraints.name = "disj")
       verdict.Constraints.violations)

let test_constraints_empty_body_rejected () =
  Alcotest.check_raises "empty body" (Invalid_argument "Constraints.make: empty body") (fun () ->
      ignore (Constraints.make []))

(* ------------------------------------------------------------------ *)
(* Approximation *)

let test_wr_subset_identity_on_wr () =
  let p, removed = Approximation.wr_subset Tgd_core.Paper_examples.example3 in
  Alcotest.(check int) "nothing removed" 0 (List.length removed);
  Alcotest.(check int) "same size" 3 (Program.size p)

let test_wr_subset_on_example2 () =
  let p, removed = Approximation.wr_subset Tgd_core.Paper_examples.example2 in
  Alcotest.(check bool) "some rule removed" true (removed <> []);
  Alcotest.(check bool) "subset is wr" true (Tgd_core.Wr.check p).Tgd_core.Wr.wr

let test_datalog_relaxation_shape () =
  let relaxed = Approximation.datalog_relaxation Tgd_core.Paper_examples.example2 in
  List.iter
    (fun (r : Tgd.t) ->
      Alcotest.(check int) "no existential heads" 0
        (Symbol.Set.cardinal (Tgd.existential_head_vars r)))
    (Program.tgds relaxed)

let test_interval_brackets_example2 () =
  let p = Tgd_core.Paper_examples.example2 in
  let inst =
    Instance.of_atoms
      [
        atom "t" [ c "a"; c "b" ];
        atom "r" [ c "u"; c "w" ];
        atom "s" [ c "k"; c "k"; c "b" ];
      ]
  in
  let q = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "r" [ v "X"; v "Y" ] ] in
  let itv = Approximation.interval_answers p inst q in
  (* lower must be a subset of upper *)
  Alcotest.(check bool) "lower <= upper" true
    (List.for_all (fun t -> List.exists (Tuple.equal t) itv.Approximation.upper)
       itv.Approximation.lower);
  (* reference: bounded chase answers sit between lower and upper *)
  let reference = Tgd_chase.Certain.cq ~max_rounds:20 p inst q in
  Alcotest.(check bool) "lower <= chase" true
    (List.for_all
       (fun t -> List.exists (Tuple.equal t) reference.Tgd_chase.Certain.answers)
       itv.Approximation.lower);
  Alcotest.(check bool) "chase <= upper" true
    (List.for_all
       (fun t -> List.exists (Tuple.equal t) itv.Approximation.upper)
       reference.Tgd_chase.Certain.answers)

let test_interval_exact_when_datalog () =
  (* On a plain Datalog program both bounds coincide with the exact
     answers. *)
  let p =
    Program.make_exn
      [
        Tgd.make ~name:"r1" ~body:[ atom "e" [ v "X"; v "Y" ] ] ~head:[ atom "p" [ v "X"; v "Y" ] ];
      ]
  in
  let inst = Instance.of_atoms [ atom "e" [ c "a"; c "b" ] ] in
  let q = Cq.make ~name:"q" ~answer:[ v "X"; v "Y" ] ~body:[ atom "p" [ v "X"; v "Y" ] ] in
  let itv = Approximation.interval_answers p inst q in
  Alcotest.(check bool) "exact" true itv.Approximation.exact;
  Alcotest.(check int) "one answer" 1 (List.length itv.Approximation.lower)

(* ------------------------------------------------------------------ *)
(* Obda_system *)

let system () =
  Obda_system.make ~ontology:Tgd_gen.University.ontology ~mappings
    ~constraints:[ disjoint_student_faculty ] ()

let test_system_answer_vs_materialized () =
  let sys = system () in
  let src = source_db () in
  let queries =
    [
      Cq.make ~name:"persons" ~answer:[ v "X" ] ~body:[ atom "person" [ v "X" ] ];
      Cq.make ~name:"faculty" ~answer:[ v "X" ] ~body:[ atom "faculty" [ v "X" ] ];
      Cq.make ~name:"works" ~answer:[ v "X"; v "D" ] ~body:[ atom "works_for" [ v "X"; v "D" ] ];
      Cq.make ~name:"org" ~answer:[] ~body:[ atom "organization" [ v "O" ] ];
    ]
  in
  List.iter
    (fun q ->
      let virt = Obda_system.answer sys ~source:src q in
      let materialized, exact = Obda_system.answer_materialized sys ~source:src q in
      Alcotest.(check bool) (q.Cq.name ^ ": rewriting complete") true virt.Obda_system.rewriting_complete;
      Alcotest.(check bool) (q.Cq.name ^ ": chase exact") true exact;
      Alcotest.(check bool)
        (Printf.sprintf "%s: virtual (%d) = materialized (%d)" q.Cq.name
           (List.length virt.Obda_system.tuples) (List.length materialized))
        true
        (tuples_equal virt.Obda_system.tuples materialized))
    queries

let test_system_answers_content () =
  let sys = system () in
  let src = source_db () in
  let q = Cq.make ~name:"persons" ~answer:[ v "X" ] ~body:[ atom "person" [ v "X" ] ] in
  let a = Obda_system.answer sys ~source:src q in
  (* ada, bob, eve (employees) + sam, lee (students) *)
  Alcotest.(check int) "five persons" 5 (List.length a.Obda_system.tuples);
  Alcotest.(check bool) "has sql" true (a.Obda_system.sql <> None)

let test_system_sql_over_source_schema () =
  let sys = system () in
  let src = source_db () in
  let q = Cq.make ~name:"f" ~answer:[ v "X" ] ~body:[ atom "faculty" [ v "X" ] ] in
  let a = Obda_system.answer sys ~source:src q in
  List.iter
    (fun (d : Cq.t) ->
      List.iter
        (fun (at : Atom.t) ->
          let name = Symbol.name at.Atom.pred in
          Alcotest.(check bool) ("source predicate " ^ name) true
            (name = "emp_record" || name = "enrollment"))
        d.Cq.body)
    a.Obda_system.source_ucq

let test_system_consistency () =
  let sys = system () in
  let ok = Obda_system.consistent sys ~source:(source_db ()) in
  Alcotest.(check bool) "clean registrar is consistent" true ok.Constraints.consistent;
  (* Add a lecturer who is also enrolled: inconsistent through mappings and
     the taxonomy. *)
  let bad = source_db () in
  ignore
    (Instance.add_fact bad (Symbol.intern "enrollment")
       [| Value.const "eve"; Value.const "db101" |]);
  let verdict = Obda_system.consistent sys ~source:bad in
  Alcotest.(check bool) "moonlighting lecturer detected" false verdict.Constraints.consistent

let test_system_without_mappings () =
  (* Identity behaviour: no mappings means the source speaks the ontology
     schema already. *)
  let sys = Obda_system.make ~ontology:Tgd_gen.University.ontology () in
  let data = Instance.of_atoms [ atom "undergraduate" [ c "sam" ] ] in
  let q = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "person" [ v "X" ] ] in
  let a = Obda_system.answer sys ~source:data q in
  Alcotest.(check int) "sam is a person" 1 (List.length a.Obda_system.tuples)

(* ------------------------------------------------------------------ *)
(* Property tests: randomized mappings, programs and databases under a
   fixed seed. Each property states a semantic equivalence the OBDA layer
   promises, mirroring the conformance harness's oracle style. *)

module Rng = Tgd_gen.Rng

let source_schema = [ ("s0", 2); ("s1", 3); ("s2", 1) ]
let onto_schema = [ ("o0", 1); ("o1", 2); ("o2", 2) ]

let random_source_body rng =
  List.init
    (1 + Rng.int rng 2)
    (fun _ ->
      let name, arity = Rng.choose rng source_schema in
      atom name (List.init arity (fun _ -> v (Printf.sprintf "V%d" (Rng.int rng 4)))))

(* A safe GAV mapping: the target's variables are drawn from the source
   body's variables (constants fill target positions otherwise). *)
let random_mapping rng i =
  let source = random_source_body rng in
  let vars =
    Symbol.Set.elements
      (List.fold_left (fun acc a -> Symbol.Set.union acc (Atom.vars a)) Symbol.Set.empty source)
  in
  let name, arity = Rng.choose rng onto_schema in
  let target =
    Atom.make (Symbol.intern name)
      (List.init arity (fun _ ->
           if vars <> [] && Rng.bool rng 0.8 then Term.Var (Rng.choose rng vars)
           else c (Printf.sprintf "k%d" (Rng.int rng 3))))
  in
  Mapping.make ~name:(Printf.sprintf "m%d" i) ~source ~target

let random_source_db rng =
  Instance.of_atoms
    (List.concat_map
       (fun (name, arity) ->
         List.init
           (2 + Rng.int rng 4)
           (fun _ ->
             atom name (List.init arity (fun _ -> c (Printf.sprintf "d%d" (Rng.int rng 4))))))
       source_schema)

let random_onto_cq rng =
  let body =
    List.init
      (1 + Rng.int rng 2)
      (fun _ ->
        let name, arity = Rng.choose rng onto_schema in
        atom name (List.init arity (fun _ -> v (Printf.sprintf "X%d" (Rng.int rng 3)))))
  in
  let vars =
    Symbol.Set.elements
      (List.fold_left (fun acc a -> Symbol.Set.union acc (Atom.vars a)) Symbol.Set.empty body)
  in
  let answer = List.filter (fun _ -> Rng.bool rng 0.5) vars |> List.map (fun x -> Term.Var x) in
  Cq.make ~name:"q" ~answer ~body

(* Unfolding a query to the source schema and evaluating there must agree
   with materializing the virtual ABox and evaluating the query over it. *)
let test_prop_unfold_vs_materialize () =
  let rng = Rng.create 2014 in
  for i = 0 to 99 do
    let mappings = List.init (2 + Rng.int rng 4) (random_mapping rng) in
    let db = random_source_db rng in
    let q = random_onto_cq rng in
    let unfolded = Unfold.ucq mappings [ q ] in
    let via_unfold = Eval.ucq db unfolded in
    let via_abox = Eval.cq (Mapping.materialize mappings db) q in
    if not (tuples_equal via_unfold via_abox) then
      Alcotest.fail
        (Printf.sprintf "iteration %d: unfold gives %d tuple(s), materialization %d for %s" i
           (List.length via_unfold) (List.length via_abox) (Cq.to_string q))
  done

(* The sound side of the approximation: the kept subset really is WR, it
   never grows, and kept + removed is a partition of the input rules. *)
let test_prop_wr_subset_classified () =
  let rng = Rng.create 7 in
  let cfg =
    {
      Tgd_gen.Gen_tgd.default_config with
      Tgd_gen.Gen_tgd.n_predicates = 4;
      max_arity = 2;
      n_rules = 4;
      max_body_atoms = 2;
      max_head_atoms = 1;
      existential_rate = 0.4;
    }
  in
  for i = 0 to 39 do
    let p = Tgd_gen.Gen_tgd.random_simple_program rng cfg in
    let kept, removed = Approximation.wr_subset p in
    let verdict = Tgd_core.Wr.check kept in
    if not verdict.Tgd_core.Wr.wr then
      Alcotest.fail (Printf.sprintf "iteration %d: wr_subset kept a non-WR program" i);
    Alcotest.(check int)
      (Printf.sprintf "iteration %d: partition" i)
      (Program.size p)
      (Program.size kept + List.length removed)
  done

(* The complete side: the relaxation is existential-free (plain Datalog)
   and the classifier recognises it as such. *)
let test_prop_datalog_relaxation_classified () =
  let rng = Rng.create 8 in
  let cfg =
    {
      Tgd_gen.Gen_tgd.default_config with
      Tgd_gen.Gen_tgd.n_predicates = 4;
      max_arity = 2;
      n_rules = 4;
      max_body_atoms = 2;
      max_head_atoms = 1;
      existential_rate = 0.5;
    }
  in
  for i = 0 to 39 do
    let p = Tgd_gen.Gen_tgd.random_simple_program rng cfg in
    let relaxed = Approximation.datalog_relaxation p in
    List.iter
      (fun r ->
        if not (Symbol.Set.is_empty (Tgd.existential_head_vars r)) then
          Alcotest.fail
            (Printf.sprintf "iteration %d: rule %s keeps an existential" i r.Tgd.name))
      (Program.tgds relaxed);
    let report = Tgd_core.Classifier.classify relaxed in
    if not report.Tgd_core.Classifier.datalog then
      Alcotest.fail (Printf.sprintf "iteration %d: relaxation not classified datalog" i);
    if not report.Tgd_core.Classifier.weakly_acyclic then
      Alcotest.fail (Printf.sprintf "iteration %d: relaxation not weakly acyclic" i)
  done

(* The interval really brackets: lower ⊆ upper on arbitrary inputs. *)
let test_prop_interval_ordered () =
  let rng = Rng.create 9 in
  let cfg =
    {
      Tgd_gen.Gen_tgd.default_config with
      Tgd_gen.Gen_tgd.n_predicates = 3;
      max_arity = 2;
      n_rules = 3;
      max_body_atoms = 2;
      max_head_atoms = 1;
      existential_rate = 0.4;
    }
  in
  for i = 0 to 29 do
    let p = Tgd_gen.Gen_tgd.random_simple_program rng cfg in
    let inst =
      Tgd_gen.Gen_db.random_instance rng p ~facts_per_predicate:3 ~domain_size:3
    in
    let preds = Program.predicates p in
    let pred, arity = Rng.choose rng preds in
    let q =
      Cq.make ~name:"q"
        ~answer:[ Term.Var (Symbol.intern "X0") ]
        ~body:
          [
            Atom.make pred
              (List.init arity (fun j -> v (Printf.sprintf "X%d" (if j = 0 then 0 else Rng.int rng 2))));
          ]
    in
    let interval = Approximation.interval_answers p inst q in
    let subset small big =
      List.for_all (fun t -> List.exists (Tuple.equal t) big) small
    in
    if not (subset interval.Approximation.lower interval.Approximation.upper) then
      Alcotest.fail (Printf.sprintf "iteration %d: lower not within upper" i);
    if interval.Approximation.exact && not (tuples_equal interval.Approximation.lower interval.Approximation.upper)
    then Alcotest.fail (Printf.sprintf "iteration %d: exact but bounds differ" i)
  done

let () =
  Alcotest.run "obda"
    [
      ( "mapping",
        [
          Alcotest.test_case "validation" `Quick test_mapping_validation;
          Alcotest.test_case "materialize" `Quick test_mapping_materialize;
          Alcotest.test_case "for_pred" `Quick test_mapping_for_pred;
        ] );
      ( "unfold",
        [
          Alcotest.test_case "single atom" `Quick test_unfold_single_atom;
          Alcotest.test_case "unmapped atom" `Quick test_unfold_unmapped_atom_dies;
          Alcotest.test_case "join threading" `Quick test_unfold_join_threading;
          Alcotest.test_case "equals materialization" `Quick test_unfold_equals_materialization;
          Alcotest.test_case "multiple choices" `Quick test_unfold_multiple_choices;
        ] );
      ( "constraints",
        [
          Alcotest.test_case "consistent data" `Quick test_constraints_consistent;
          Alcotest.test_case "violation through hierarchy" `Quick
            test_constraints_violation_through_hierarchy;
          Alcotest.test_case "empty body rejected" `Quick test_constraints_empty_body_rejected;
        ] );
      ( "approximation",
        [
          Alcotest.test_case "identity on wr" `Quick test_wr_subset_identity_on_wr;
          Alcotest.test_case "subset of example2" `Quick test_wr_subset_on_example2;
          Alcotest.test_case "relaxation is datalog" `Quick test_datalog_relaxation_shape;
          Alcotest.test_case "interval brackets" `Quick test_interval_brackets_example2;
          Alcotest.test_case "exact on datalog" `Quick test_interval_exact_when_datalog;
        ] );
      ( "system",
        [
          Alcotest.test_case "virtual = materialized" `Quick test_system_answer_vs_materialized;
          Alcotest.test_case "answer content" `Quick test_system_answers_content;
          Alcotest.test_case "sql over source schema" `Quick test_system_sql_over_source_schema;
          Alcotest.test_case "consistency end-to-end" `Quick test_system_consistency;
          Alcotest.test_case "no mappings" `Quick test_system_without_mappings;
        ] );
      ( "properties",
        [
          Alcotest.test_case "unfold = materialize-then-evaluate" `Quick
            test_prop_unfold_vs_materialize;
          Alcotest.test_case "wr_subset output is WR" `Quick test_prop_wr_subset_classified;
          Alcotest.test_case "relaxation is classified datalog" `Quick
            test_prop_datalog_relaxation_classified;
          Alcotest.test_case "interval bounds ordered" `Quick test_prop_interval_ordered;
        ] );
    ]
