(* The serving subsystem: canonical CQ forms, the prepared-query LRU,
   the bounded scheduler, domain-safe telemetry, and the server brain
   (warm-cache behavior, epoch invalidation, concurrent execution), plus
   an end-to-end JSONL smoke of the real `obda serve` binary. *)

open Tgd_logic
module Json = Tgd_serve.Json
module Canon = Tgd_serve.Canon
module Prepared = Tgd_serve.Prepared
module Scheduler = Tgd_serve.Scheduler
module Protocol = Tgd_serve.Protocol
module Server = Tgd_serve.Server
module Telemetry = Tgd_exec.Telemetry

let v = Term.var
let c = Term.const

(* ------------------------------------------------------------------ *)
(* JSON codec *)

let test_json_roundtrip () =
  let src = {|{"a":[1,-2.5,"xé\n",true,null],"b":{"c":"","d":[[]]}}|} in
  match Json.parse src with
  | Error msg -> Alcotest.fail ("parse failed: " ^ msg)
  | Ok j -> (
    let printed = Json.to_string j in
    Alcotest.(check bool) "no raw newline" false (String.contains printed '\n');
    match Json.parse printed with
    | Error msg -> Alcotest.fail ("reparse failed: " ^ msg)
    | Ok j2 -> Alcotest.(check string) "print is stable" printed (Json.to_string j2))

let test_json_errors () =
  let bad = [ "{"; "[1,]"; "{\"a\":}"; "1 2"; "\"unterminated"; "nul" ] in
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" s)
      | Error _ -> ())
    bad

(* ------------------------------------------------------------------ *)
(* Canonical forms: deterministic cases *)

let canon_key cq = (Canon.of_cq cq).Canon.key

let test_canon_alpha_equal () =
  let q1 =
    Cq.make ~name:"q" ~answer:[ v "X" ]
      ~body:[ Atom.of_strings "p" [ v "X"; v "Y" ]; Atom.of_strings "p" [ v "Y"; v "Z" ] ]
  in
  let q2 =
    Cq.make ~name:"other" ~answer:[ v "A" ]
      ~body:[ Atom.of_strings "p" [ v "B"; v "C" ]; Atom.of_strings "p" [ v "A"; v "B" ] ]
  in
  Alcotest.(check string) "renamed + reordered same key" (canon_key q1) (canon_key q2);
  Alcotest.(check bool) "exact" true (Canon.of_cq q1).Canon.exact

let test_canon_distinguishes () =
  let p x y = Atom.of_strings "p" [ x; y ] in
  let q_xy = Cq.make ~name:"q" ~answer:[ v "X"; v "Y" ] ~body:[ p (v "X") (v "Y") ] in
  let q_yx = Cq.make ~name:"q" ~answer:[ v "X"; v "Y" ] ~body:[ p (v "Y") (v "X") ] in
  Alcotest.(check bool) "answer order matters" false (canon_key q_xy = canon_key q_yx);
  let q_const = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ p (v "X") (c "c3") ] in
  let q_var = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ p (v "X") (v "Y") ] in
  Alcotest.(check bool) "constants are not variables" false (canon_key q_const = canon_key q_var)

(* ------------------------------------------------------------------ *)
(* Canonical forms: properties. The generator keeps the variable pool at
   five, well under {!Canon.max_exact_existentials}, so the exhaustive
   labeling always applies and invariance is guaranteed, not best-effort. *)

let signature = [ ("p", 2); ("q", 1); ("r", 3) ]
let gen_pred = QCheck.Gen.oneofl signature
let gen_var = QCheck.Gen.map (fun i -> v (Printf.sprintf "X%d" i)) (QCheck.Gen.int_bound 4)
let gen_const = QCheck.Gen.map (fun i -> c (Printf.sprintf "c%d" i)) (QCheck.Gen.int_bound 3)
let gen_term = QCheck.Gen.frequency [ (3, gen_var); (1, gen_const) ]

let gen_atom =
  QCheck.Gen.(
    gen_pred >>= fun (name, arity) ->
    list_repeat arity gen_term >>= fun args -> return (Atom.of_strings name args))

let gen_cq =
  QCheck.Gen.(
    int_range 1 4 >>= fun n ->
    list_repeat n gen_atom >>= fun body ->
    let vars =
      Symbol.Set.elements
        (List.fold_left (fun acc a -> Symbol.Set.union acc (Atom.vars a)) Symbol.Set.empty body)
    in
    (if vars = [] then return []
     else
       int_bound (min 2 (List.length vars - 1)) >>= fun k ->
       return (List.filteri (fun i _ -> i <= k) vars))
    >>= fun answer_vars ->
    return (Cq.make ~name:"q" ~answer:(List.map (fun x -> Term.Var x) answer_vars) ~body))

let arb_cq_seeded =
  QCheck.make
    ~print:(fun (cq, seed) -> Printf.sprintf "%s [seed %d]" (Cq.to_string cq) seed)
    QCheck.Gen.(pair gen_cq (int_bound 1_000_000))

(* An injective renaming to fresh variable names plus a seed-driven shuffle
   of the body: the canonical key must not move. *)
let scramble seed cq =
  let rng = Random.State.make [| seed |] in
  let vars =
    Symbol.Set.elements
      (List.fold_left (fun acc a -> Symbol.Set.union acc (Atom.vars a)) Symbol.Set.empty
         cq.Cq.body)
  in
  let renaming =
    Subst.of_list
      (List.mapi
         (fun i x -> (x, v (Printf.sprintf "Z%d_%d" (Random.State.int rng 1000) i)))
         vars)
  in
  let body =
    List.map (fun a -> (Random.State.bits rng, Subst.apply_atom renaming a)) cq.Cq.body
    |> List.sort compare |> List.map snd
  in
  Cq.make ~name:"scrambled" ~answer:(Subst.apply_terms renaming cq.Cq.answer) ~body

let prop_canon_invariant =
  QCheck.Test.make ~name:"canon key invariant under renaming + reordering" ~count:400
    arb_cq_seeded (fun (cq, seed) ->
      let cq' = scramble seed cq in
      canon_key cq = canon_key cq')

let prop_canon_equivalent =
  QCheck.Test.make ~name:"canonical form is homomorphically equivalent to the query" ~count:400
    arb_cq_seeded (fun (cq, seed) ->
      let canon = Canon.of_cq cq in
      Containment.equivalent cq canon.Canon.cq
      && Containment.equivalent cq (scramble seed cq))

let prop_canon_collision_sound =
  QCheck.Test.make ~name:"equal keys imply containment-equivalent queries" ~count:600
    (QCheck.make
       ~print:(fun (a, b) -> Cq.to_string a ^ " vs " ^ Cq.to_string b)
       QCheck.Gen.(pair gen_cq gen_cq))
    (fun (cq1, cq2) ->
      List.length cq1.Cq.answer <> List.length cq2.Cq.answer
      || canon_key cq1 <> canon_key cq2
      || Containment.equivalent cq1 cq2)

(* ------------------------------------------------------------------ *)
(* Telemetry under domains: counters must be exact, not approximate. *)

let test_telemetry_domain_stress () =
  let t = Telemetry.create () in
  let per_domain = 100_000 in
  let domains =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              ignore (Telemetry.add t "stress.count" 1);
              Telemetry.gauge t "stress.peak" ((d * per_domain) + i)
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "exact total over 4 domains" (4 * per_domain)
    (Telemetry.get t "stress.count");
  Alcotest.(check int) "exact peak" (4 * per_domain) (Telemetry.peak t "stress.peak")

let test_telemetry_merge () =
  let a = Telemetry.create () and b = Telemetry.create () in
  ignore (Telemetry.add a "x" 3);
  Telemetry.gauge a "g" 7;
  ignore (Telemetry.add b "x" 4);
  ignore (Telemetry.add b "y" 1);
  Telemetry.gauge b "g" 5;
  Telemetry.add_span b "phase" 0.25;
  Telemetry.merge_into ~into:a b;
  Alcotest.(check int) "summed counter" 7 (Telemetry.get a "x");
  Alcotest.(check int) "new counter" 1 (Telemetry.get a "y");
  Alcotest.(check int) "peak is max" 7 (Telemetry.peak a "g");
  Alcotest.(check bool) "phase carried" true (List.mem_assoc "phase" (Telemetry.phases a))

(* ------------------------------------------------------------------ *)
(* Prepared-query LRU *)

let mk_entry tel_ignored ~ontology ~epoch pred =
  ignore tel_ignored;
  let cq = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ Atom.of_strings pred [ v "X" ] ] in
  let canon = Canon.of_cq cq in
  {
    Prepared.ontology;
    epoch;
    canon;
    artifact = Prepared.Ucq { ucq = [ canon.Canon.cq ]; plans = [] };
    complete = true;
    prepare_s = 0.0;
  }

let test_prepared_lru () =
  let tel = Telemetry.create () in
  let cache = Prepared.create ~capacity:2 ~telemetry:tel () in
  let e1 = mk_entry tel ~ontology:"o" ~epoch:1 "p1"
  and e2 = mk_entry tel ~ontology:"o" ~epoch:1 "p2"
  and e3 = mk_entry tel ~ontology:"o" ~epoch:1 "p3" in
  Prepared.add cache e1;
  Prepared.add cache e2;
  (* touch e1 so that e2 is the LRU victim *)
  Alcotest.(check bool) "e1 hit" true
    (Prepared.find cache ~ontology:"o" ~epoch:1 ~canon:e1.Prepared.canon <> None);
  Prepared.add cache e3;
  Alcotest.(check int) "capacity held" 2 (Prepared.length cache);
  Alcotest.(check bool) "LRU victim evicted" true
    (Prepared.find cache ~ontology:"o" ~epoch:1 ~canon:e2.Prepared.canon = None);
  Alcotest.(check bool) "recent survivor" true
    (Prepared.find cache ~ontology:"o" ~epoch:1 ~canon:e1.Prepared.canon <> None);
  Alcotest.(check bool) "new entry present" true
    (Prepared.find cache ~ontology:"o" ~epoch:1 ~canon:e3.Prepared.canon <> None);
  Alcotest.(check int) "evictions" 1 (Telemetry.get tel "serve.cache.evictions");
  Alcotest.(check int) "hits" 3 (Telemetry.get tel "serve.cache.hits");
  Alcotest.(check int) "misses" 1 (Telemetry.get tel "serve.cache.misses")

let test_prepared_purge () =
  let tel = Telemetry.create () in
  let cache = Prepared.create ~capacity:8 ~telemetry:tel () in
  Prepared.add cache (mk_entry tel ~ontology:"o" ~epoch:1 "p1");
  Prepared.add cache (mk_entry tel ~ontology:"o" ~epoch:2 "p1");
  Prepared.add cache (mk_entry tel ~ontology:"other" ~epoch:1 "p1");
  Alcotest.(check int) "one stale entry dropped" 1 (Prepared.purge cache ~ontology:"o" ~keep_epoch:2);
  Alcotest.(check int) "others kept" 2 (Prepared.length cache);
  Alcotest.(check int) "purges are not evictions" 0 (Telemetry.get tel "serve.cache.evictions")

(* ------------------------------------------------------------------ *)
(* Scheduler: bounded admission with typed shedding *)

let test_scheduler_overload () =
  let tel = Telemetry.create () in
  let s = Scheduler.create ~workers:1 ~queue_bound:2 ~telemetry:tel () in
  let started = Atomic.make false and release = Atomic.make false in
  let block () =
    Atomic.set started true;
    while not (Atomic.get release) do
      Domain.cpu_relax ()
    done
  in
  (match Scheduler.submit s block with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "blocking job rejected");
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  (* The single worker is pinned: the next queue_bound submissions queue,
     request N+1 must shed with the typed rejection. *)
  let ran = Atomic.make 0 in
  let job () = ignore (Atomic.fetch_and_add ran 1) in
  (match Scheduler.submit s job with Ok () -> () | Error _ -> Alcotest.fail "queued job 1 rejected");
  (match Scheduler.submit s job with Ok () -> () | Error _ -> Alcotest.fail "queued job 2 rejected");
  (match Scheduler.submit s job with
  | Error (`Overloaded depth) -> Alcotest.(check int) "depth at rejection" 2 depth
  | Ok () -> Alcotest.fail "request over the bound was admitted"
  | Error `Closed -> Alcotest.fail "scheduler closed");
  Atomic.set release true;
  Scheduler.drain s;
  Alcotest.(check int) "admitted jobs all ran" 2 (Atomic.get ran);
  Alcotest.(check int) "shed count" 1 (Telemetry.get tel "serve.overloaded");
  Scheduler.shutdown s;
  (match Scheduler.submit s job with
  | Error `Closed -> ()
  | _ -> Alcotest.fail "submit after shutdown must be Closed")

(* ------------------------------------------------------------------ *)
(* Server brain: warm cache, epoch invalidation, concurrency *)

let uni_src = "professor(X) -> person(X). advises(X,Y) -> professor(X)."

let ok_fields = function
  | Ok fields -> fields
  | Error (kind, msg) -> Alcotest.fail (Printf.sprintf "request failed: %s: %s" kind msg)

let answers fields =
  match List.assoc_opt "answers" fields with
  | Some (Json.List rows) ->
    List.map
      (function
        | Json.List cells ->
          List.map (function Json.String s -> s | j -> Json.to_string j) cells
        | j -> [ Json.to_string j ])
      rows
    |> List.sort compare
  | _ -> Alcotest.fail "no answers field"

let bool_field name fields =
  match List.assoc_opt name fields with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.fail (Printf.sprintf "no boolean %S field" name)

let boot_server ?cache_capacity csv =
  let srv = Server.create ?cache_capacity () in
  ignore
    (ok_fields
       (Server.handle srv (Protocol.Register_ontology { name = "uni"; source = Protocol.Inline uni_src })));
  ignore
    (ok_fields (Server.handle srv (Protocol.Load_csv { name = "uni"; source = Protocol.Inline csv })));
  srv

let execute srv query =
  ok_fields (Server.handle srv (Protocol.Execute { ontology = "uni"; query; budget = None; target = None }))

let test_server_warm_cache () =
  let srv = boot_server "professor,alice\nprofessor,bob" in
  let tel = Server.telemetry srv in
  let r1 = execute srv "q(X) :- person(X)." in
  Alcotest.(check bool) "first run is a miss" false (bool_field "cached" r1);
  Alcotest.(check int) "one miss" 1 (Telemetry.get tel "serve.cache.misses");
  let cqs_after_cold = Telemetry.get tel "rewrite.cqs" in
  Alcotest.(check bool) "cold run did rewrite" true (cqs_after_cold > 0);
  (* α-renamed resubmission: must hit the cache and skip rewriting. *)
  let r2 = execute srv "q(W) :- person(W)." in
  Alcotest.(check bool) "renamed rerun is cached" true (bool_field "cached" r2);
  Alcotest.(check int) "one hit" 1 (Telemetry.get tel "serve.cache.hits");
  Alcotest.(check int) "warm run skipped rewriting" cqs_after_cold (Telemetry.get tel "rewrite.cqs");
  Alcotest.(check (list (list string))) "same answers" (answers r1) (answers r2);
  Alcotest.(check (list (list string))) "ontology answers" [ [ "alice" ]; [ "bob" ] ] (answers r1)

(* A data-only mutation bumps the delta epoch but not the full epoch: the
   prepared rewriting survives (0 rewrites on the next execute), yet the
   answers come from the new instance — cached plans are never stale,
   because a rewriting depends on the TGDs alone. *)
let test_server_data_delta_keeps_cache_warm () =
  let srv = boot_server "professor,alice" in
  let tel = Server.telemetry srv in
  let r1 = execute srv "q(X) :- person(X)." in
  Alcotest.(check (list (list string))) "initial answers" [ [ "alice" ] ] (answers r1);
  Alcotest.(check int) "entry cached" 1 (Prepared.length (Server.cache srv));
  let cqs_after_cold = Telemetry.get tel "rewrite.cqs" in
  let batches_before = Telemetry.get tel "serve.delta.batches" in
  let mut =
    ok_fields
      (Server.handle srv
         (Protocol.Add_facts { name = "uni"; source = Protocol.Inline "advises,carol,dan" }))
  in
  (match List.assoc_opt "delta_epoch" mut with
  | Some (Json.Int d) -> Alcotest.(check bool) "delta epoch bumped" true (d > 1)
  | _ -> Alcotest.fail "add-facts response carries no delta_epoch");
  Alcotest.(check int) "prepared entry survives the data delta" 1
    (Prepared.length (Server.cache srv));
  let r2 = execute srv "q(Y) :- person(Y)." in
  Alcotest.(check bool) "post-delta run is a cache hit" true (bool_field "cached" r2);
  Alcotest.(check int) "0 rewrites after add-facts" cqs_after_cold
    (Telemetry.get tel "rewrite.cqs");
  Alcotest.(check (list (list string))) "no stale answers" [ [ "alice" ]; [ "carol" ] ] (answers r2);
  Alcotest.(check int) "delta batch counted" (batches_before + 1)
    (Telemetry.get tel "serve.delta.batches")

(* An ontology edit is a full-epoch bump: stale prepared entries are purged
   eagerly and the next execute re-prepares. *)
let test_server_ontology_edit_invalidates () =
  let srv = boot_server "professor,alice" in
  let r1 = execute srv "q(X) :- person(X)." in
  Alcotest.(check bool) "cold run is a miss" false (bool_field "cached" r1);
  let r2 = execute srv "q(W) :- person(W)." in
  Alcotest.(check bool) "resubmission hits" true (bool_field "cached" r2);
  ignore
    (ok_fields
       (Server.handle srv
          (Protocol.Register_ontology { name = "uni"; source = Protocol.Inline uni_src })));
  Alcotest.(check int) "stale entries purged on re-register" 0
    (Prepared.length (Server.cache srv));
  ignore
    (ok_fields
       (Server.handle srv
          (Protocol.Load_csv { name = "uni"; source = Protocol.Inline "professor,alice" })));
  let r3 = execute srv "q(X) :- person(X)." in
  Alcotest.(check bool) "post-edit run is a fresh preparation" false (bool_field "cached" r3);
  Alcotest.(check (list (list string))) "answers after the edit" [ [ "alice" ] ] (answers r3)

(* A materialization built by the materialize op stays alive across
   add-facts: the response reports the incremental statistics instead of a
   cold re-chase. *)
let test_server_materialize_delta () =
  let srv = boot_server "professor,alice" in
  let m = ok_fields (Server.handle srv (Protocol.Materialize { name = "uni" })) in
  Alcotest.(check bool) "chase completed" true (bool_field "chase_complete" m);
  (match List.assoc_opt "model_facts" m with
  | Some (Json.Int n) -> Alcotest.(check bool) "model holds the closure" true (n >= 2)
  | _ -> Alcotest.fail "materialize response carries no model_facts");
  let mut =
    ok_fields
      (Server.handle srv
         (Protocol.Add_facts { name = "uni"; source = Protocol.Inline "advises,carol,dan" }))
  in
  Alcotest.(check bool) "delta maintained the materialization" true
    (bool_field "materialized" mut);
  Alcotest.(check bool) "delta apply completed" true (bool_field "delta_complete" mut);
  (match List.assoc_opt "derived" mut with
  | Some (Json.Int d) ->
    (* advises(carol,dan) derives professor(carol) and person(carol). *)
    Alcotest.(check int) "derived facts" 2 d
  | _ -> Alcotest.fail "add-facts response carries no derived count");
  let tel = Server.telemetry srv in
  Alcotest.(check int) "derived counted under serve.delta.derived" 2
    (Telemetry.get tel "serve.delta.derived")

let test_server_concurrent_execute () =
  let srv = boot_server "professor,alice\nadvises,bob,carol" in
  let expected = [ [ "alice" ]; [ "bob" ] ] in
  let errors = Atomic.make 0 in
  let per_domain = 25 in
  let domains =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              let var = Printf.sprintf "V%d_%d" d i in
              let q = Printf.sprintf "q(%s) :- person(%s)." var var in
              match Server.handle srv (Protocol.Execute { ontology = "uni"; query = q; budget = None; target = None }) with
              | Ok fields when answers fields = expected -> ()
              | _ -> ignore (Atomic.fetch_and_add errors 1)
            done))
  in
  Array.iter Domain.join domains;
  let tel = Server.telemetry srv in
  Alcotest.(check int) "no corrupted responses" 0 (Atomic.get errors);
  Alcotest.(check int) "every request accounted" (4 * per_domain)
    (Telemetry.get tel "serve.requests");
  Alcotest.(check int) "every lookup accounted" (4 * per_domain)
    (Telemetry.get tel "serve.cache.hits" + Telemetry.get tel "serve.cache.misses")

(* No stale answers under concurrent load across BOTH bump kinds: after a
   data delta (add-facts) or an ontology edit (re-register), every execute
   from every domain must see exactly the current fact set — never a
   snapshot from before the mutation quiesced. *)
let test_server_no_stale_across_bumps () =
  let srv = boot_server "professor,p0" in
  let errors = Atomic.make 0 in
  let expected = ref [ [ "p0" ] ] in
  let verify_round round =
    let domains =
      Array.init 4 (fun d ->
          Domain.spawn (fun () ->
              for i = 1 to 5 do
                let var = Printf.sprintf "V%d_%d_%d" round d i in
                let q = Printf.sprintf "q(%s) :- person(%s)." var var in
                match
                  Server.handle srv
                    (Protocol.Execute { ontology = "uni"; query = q; budget = None; target = None })
                with
                | Ok fields when answers fields = !expected -> ()
                | _ -> ignore (Atomic.fetch_and_add errors 1)
              done))
    in
    Array.iter Domain.join domains
  in
  verify_round 0;
  (* Data-delta bumps. *)
  for i = 1 to 3 do
    ignore
      (ok_fields
         (Server.handle srv
            (Protocol.Add_facts
               { name = "uni"; source = Protocol.Inline (Printf.sprintf "professor,p%d" i) })));
    expected := List.sort compare (List.init (i + 1) (fun j -> [ Printf.sprintf "p%d" j ]));
    verify_round i
  done;
  (* A full bump mid-stream: re-register (which resets the instance) and
     reload the accumulated facts; answers must reflect the reload, not a
     prepared entry from the old epoch. *)
  ignore
    (ok_fields
       (Server.handle srv
          (Protocol.Register_ontology { name = "uni"; source = Protocol.Inline uni_src })));
  let csv = String.concat "\n" (List.init 4 (fun j -> Printf.sprintf "professor,p%d" j)) in
  ignore
    (ok_fields
       (Server.handle srv (Protocol.Load_csv { name = "uni"; source = Protocol.Inline csv })));
  verify_round 4;
  Alcotest.(check int) "no stale or corrupted responses" 0 (Atomic.get errors)

let test_server_errors () =
  let srv = Server.create () in
  (match Server.handle srv (Protocol.Execute { ontology = "ghost"; query = "q(X) :- p(X)."; budget = None; target = None }) with
  | Error ("unknown_ontology", _) -> ()
  | _ -> Alcotest.fail "expected unknown_ontology");
  ignore
    (ok_fields
       (Server.handle srv
          (Protocol.Register_ontology { name = "uni"; source = Protocol.Inline uni_src })));
  (match Server.handle srv (Protocol.Execute { ontology = "uni"; query = "not a query"; budget = None; target = None }) with
  | Error ("bad_request", _) -> ()
  | _ -> Alcotest.fail "expected bad_request on an unparsable query");
  match Protocol.parse {|{"id":42,"op":"execute","ontology":"uni"}|} with
  | Error (Json.Int 42, _) -> ()
  | _ -> Alcotest.fail "protocol error must carry the request id"

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1)) in
  nn = 0 || loop 0

(* Protocol-level fault injection: every abused line must come back as a
   typed error that recovers the request id whenever one is present. *)
let test_protocol_fault_injection () =
  let expect_error ?id what line =
    match Protocol.parse line with
    | Error (got_id, msg) ->
      Alcotest.(check bool) (what ^ ": non-empty message") true (String.length msg > 0);
      (match id with
      | Some i -> (
        match got_id with
        | Json.Int j -> Alcotest.(check int) (what ^ ": id recovered") i j
        | _ -> Alcotest.fail (what ^ ": expected recovered id"))
      | None -> ())
    | Ok _ -> Alcotest.fail (what ^ ": expected a parse error")
  in
  expect_error "empty object" "{}";
  expect_error "not json" "complete garbage";
  expect_error "binary garbage" "\x00\x01\xfe\xff{\x80}";
  expect_error "truncated json" {|{"op":"execute","ontology|};
  expect_error "non-object json" {|[1,2,3]|};
  expect_error "missing op" ~id:9 {|{"id":9,"ontology":"uni"}|};
  expect_error "unknown op" ~id:10 {|{"id":10,"op":"frobnicate"}|};
  expect_error "op not a string" ~id:11 {|{"id":11,"op":17}|};
  expect_error "missing required field" ~id:12 {|{"id":12,"op":"execute","query":"q(X) :- p(X)."}|};
  expect_error "tenant must be a string" ~id:13
    {|{"id":13,"op":"ping","tenant":{"org":"acme"}}|};
  (* A well-typed tenant rides along on any request. *)
  match Protocol.parse {|{"id":14,"op":"ping","tenant":"acme"}|} with
  | Ok { Protocol.tenant = Some "acme"; _ } -> ()
  | Ok _ -> Alcotest.fail "tenant field lost"
  | Error (_, msg) -> Alcotest.fail ("tenant parse failed: " ^ msg)

(* The single-stream serving loop survives a hostile stream: malformed
   JSON, binary garbage and half-finished requests interleaved with real
   work — one typed response per line, then a clean [`Eof], and the server
   state is still live afterwards. *)
let test_server_run_fault_stream () =
  let srv = Server.create () in
  let script =
    [
      {|{"id":1,"op":"register-ontology","name":"uni","source":"professor(X) -> person(X). professor(ada)."}|};
      "not json at all";
      "\x00\x01\xfe\xffbinary\x00";
      {|{"op":|};
      {|{"id":2,"op":"execute","ontology":"uni","query":"q(X) :- person(X)."}|};
      {|{"id":3,"op":"execute","ontology":"uni","query":"syntactically broken"}|};
      {|{"id":4,"op":"ping"}|};
    ]
  in
  let in_path = Filename.temp_file "serve_faults_in" ".jsonl" in
  let out_path = Filename.temp_file "serve_faults_out" ".jsonl" in
  let oc = open_out in_path in
  List.iter (fun l -> output_string oc (l ^ "\n")) script;
  close_out oc;
  let ic = open_in in_path and oc = open_out out_path in
  let outcome = Server.run ~workers:1 srv ic oc in
  close_in ic;
  close_out oc;
  Alcotest.(check bool) "stream ends in Eof, not a crash" true (outcome = `Eof);
  let ic = open_in out_path in
  let n = in_channel_length ic in
  let output = really_input_string ic n in
  close_in ic;
  Sys.remove in_path;
  Sys.remove out_path;
  let lines = String.split_on_char '\n' (String.trim output) in
  Alcotest.(check int) "one response per line, even the garbage ones" (List.length script)
    (List.length lines);
  Alcotest.(check bool) "garbage answered with typed errors" true
    (contains output {|"kind":"bad_request"|});
  Alcotest.(check bool) "real work still served" true (contains output {|[["ada"]]|});
  Alcotest.(check bool) "broken query typed, not fatal" true
    (contains output {|"id":3,"ok":false|});
  Alcotest.(check bool) "trailing ping answered" true (contains output {|"pong":true|});
  (* The server survived the stream. *)
  match
    Server.handle srv (Protocol.Execute { ontology = "uni"; query = "q(X) :- person(X)."; budget = None; target = None })
  with
  | Ok _ -> ()
  | Error (kind, msg) -> Alcotest.fail ("server wedged after fault stream: " ^ kind ^ ": " ^ msg)

(* ------------------------------------------------------------------ *)
(* End-to-end: the real binary over stdin/stdout JSONL *)

let obda =
  let candidates = [ "../bin/obda.exe"; "_build/default/bin/obda.exe"; "bin/obda.exe" ] in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> "../bin/obda.exe"

let test_cli_serve_smoke () =
  let script = Filename.temp_file "serve_in" ".jsonl" in
  let out = Filename.temp_file "serve_out" ".jsonl" in
  let oc = open_out script in
  output_string oc
    ({|{"op":"ping","id":1}
{"op":"register-ontology","id":2,"name":"uni","source":"professor(X) -> person(X)."}
{"op":"load-csv","id":3,"name":"uni","source":"professor,ada"}
{"op":"prepare","id":4,"ontology":"uni","query":"q(X) :- person(X)."}
{"op":"execute","id":5,"ontology":"uni","query":"q(Y) :- person(Y)."}
{"op":"stats","id":6}
{"op":"nonsense","id":7}
{"op":"shutdown","id":8}
|}
    : string);
  close_out oc;
  let code = Sys.command (Printf.sprintf "%s serve --workers 1 < %s > %s 2>/dev/null" obda script out) in
  let ic = open_in out in
  let len = in_channel_length ic in
  let output = really_input_string ic len in
  close_in ic;
  Sys.remove script;
  Sys.remove out;
  Alcotest.(check int) "exit 0" 0 code;
  let lines = String.split_on_char '\n' (String.trim output) in
  Alcotest.(check int) "one response per request" 8 (List.length lines);
  Alcotest.(check bool) "pong" true (contains output {|"pong":true|});
  Alcotest.(check bool) "answers served" true (contains output {|"answers":[["ada"]]|});
  Alcotest.(check bool) "prepared entry reused" true (contains output {|"cached":true|});
  Alcotest.(check bool) "unknown op rejected" true (contains output {|"kind":"bad_request"|});
  Alcotest.(check bool) "clean stop" true (contains output {|"stopping":true|})

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "serve"
    [
      ("json", [
        Alcotest.test_case "round trip" `Quick test_json_roundtrip;
        Alcotest.test_case "malformed inputs" `Quick test_json_errors;
      ]);
      ("canon", [
        Alcotest.test_case "alpha-equivalent queries share a key" `Quick test_canon_alpha_equal;
        Alcotest.test_case "inequivalent queries are distinguished" `Quick test_canon_distinguishes;
      ]);
      qsuite "canon-props" [ prop_canon_invariant; prop_canon_equivalent; prop_canon_collision_sound ];
      ("telemetry", [
        Alcotest.test_case "4-domain exact totals" `Quick test_telemetry_domain_stress;
        Alcotest.test_case "merge_into" `Quick test_telemetry_merge;
      ]);
      ("prepared", [
        Alcotest.test_case "LRU eviction and counters" `Quick test_prepared_lru;
        Alcotest.test_case "epoch purge" `Quick test_prepared_purge;
      ]);
      ("scheduler", [
        Alcotest.test_case "bounded admission sheds typed overload" `Quick test_scheduler_overload;
      ]);
      ("server", [
        Alcotest.test_case "warm cache skips rewriting" `Quick test_server_warm_cache;
        Alcotest.test_case "data delta keeps the cache warm" `Quick
          test_server_data_delta_keeps_cache_warm;
        Alcotest.test_case "ontology edit invalidates prepared entries" `Quick
          test_server_ontology_edit_invalidates;
        Alcotest.test_case "materialization maintained across add-facts" `Quick
          test_server_materialize_delta;
        Alcotest.test_case "concurrent executes stay consistent" `Quick test_server_concurrent_execute;
        Alcotest.test_case "no stale answers across delta and full bumps" `Quick
          test_server_no_stale_across_bumps;
        Alcotest.test_case "typed errors" `Quick test_server_errors;
      ]);
      ("faults", [
        Alcotest.test_case "protocol fault injection" `Quick test_protocol_fault_injection;
        Alcotest.test_case "serving loop survives a hostile stream" `Quick
          test_server_run_fault_stream;
      ]);
      ("cli", [ Alcotest.test_case "obda serve JSONL smoke" `Quick test_cli_serve_smoke ]);
    ]
