(* The conformance harness's own acceptance tests: corpus replay, the
   fixed-seed sweep that PR CI runs, determinism of the case stream and the
   summary, case round-tripping — and one injected mutant per invariant
   class, proving the registry actually catches the faults it claims to. *)

open Tgd_logic
open Tgd_conformance

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( try int_of_string (String.trim s) with _ -> default)
  | None -> default

(* ------------------------------------------------------------------ *)
(* Corpus replay: the checked-in shrunk cases must stay green.          *)

let test_corpus_replay () =
  let summary = Harness.replay ~dir:"corpus" () in
  Alcotest.(check bool) "corpus directory found" true (summary.Harness.cases > 0);
  if summary.Harness.failed > 0 then
    Alcotest.fail (Harness.summary_to_string summary)

(* ------------------------------------------------------------------ *)
(* The fixed-seed sweep (PR CI scale; nightly raises the env vars).     *)

let test_fixed_seed_sweep () =
  let seed = getenv_int "TGDLIB_FUZZ_SEED" 2014 in
  let cases = getenv_int "TGDLIB_FUZZ_CASES" 100 in
  let summary = Harness.run ~seed ~cases () in
  if summary.Harness.failed > 0 then Alcotest.fail (Harness.summary_to_string summary);
  Alcotest.(check int) "every case swept" cases summary.Harness.cases;
  Alcotest.(check int) "nine checks per case" (cases * 9) summary.Harness.checks

(* ------------------------------------------------------------------ *)
(* Determinism                                                          *)

let test_stream_determinism () =
  for index = 0 to 13 do
    let c1 = Gen_case.case ~seed:77 ~index and c2 = Gen_case.case ~seed:77 ~index in
    Alcotest.(check string)
      (Printf.sprintf "case %d reproducible" index)
      (Case.to_string c1) (Case.to_string c2)
  done;
  (* Different seeds diverge somewhere in a short prefix. *)
  let differs =
    List.exists
      (fun index ->
        Case.to_string (Gen_case.case ~seed:1 ~index)
        <> Case.to_string (Gen_case.case ~seed:2 ~index))
      [ 0; 1; 2; 3; 4 ]
  in
  Alcotest.(check bool) "seeds matter" true differs

let test_summary_determinism () =
  let run () = Harness.summary_to_string (Harness.run ~seed:31 ~cases:21 ()) in
  Alcotest.(check string) "same seed, same report" (run ()) (run ())

let test_family_rotation () =
  (* Any 7 consecutive indices cover every family (the seed stride is
     coprime to the family count), and a case replayed by its OWN seed at
     index 0 regenerates identically — label included. *)
  let labels =
    List.init (Array.length Gen_case.families) (fun i ->
        (Gen_case.case ~seed:5 ~index:i).Case.label)
  in
  Array.iter
    (fun family ->
      let name = Gen_case.family_name family in
      Alcotest.(check bool) (name ^ " appears") true (List.mem name labels))
    Gen_case.families;
  let c = Gen_case.case ~seed:5 ~index:3 in
  let replayed = Gen_case.case ~seed:c.Case.seed ~index:0 in
  Alcotest.(check string) "replay by case seed" (Case.to_string c) (Case.to_string replayed)

(* ------------------------------------------------------------------ *)
(* Case round-trip through the ontology text format                     *)

let test_case_roundtrip () =
  for index = 0 to 6 do
    let c = Gen_case.case ~seed:11 ~index in
    match Case.of_string (Case.to_string c) with
    | Error msg -> Alcotest.fail ("round-trip parse failed: " ^ msg)
    | Ok c' ->
      Alcotest.(check string) "label survives" c.Case.label c'.Case.label;
      Alcotest.(check int) "seed survives" c.Case.seed c'.Case.seed;
      Alcotest.(check string) "text fixpoint" (Case.to_string c) (Case.to_string c')
  done

(* ------------------------------------------------------------------ *)
(* Mutant acceptance: each invariant class catches its injected fault.  *)

let expect_caught ~name ~invariant ~cases mutant =
  let inv =
    match Invariant.find invariant with
    | Some inv -> inv
    | None -> Alcotest.fail ("unknown invariant " ^ invariant)
  in
  let summary =
    Harness.run ~oracle:mutant ~invariants:[ inv ] ~shrink:false ~stop_after:1 ~seed:2014
      ~cases ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s mutant caught by %s within %d cases" name invariant cases)
    true
    (summary.Harness.failed > 0)

(* A classifier that claims datalog membership without weak acyclicity:
   breaks the lattice on every case. *)
let test_mutant_subsumption () =
  let mutant =
    {
      Oracle.real with
      Oracle.classify =
        (fun p ->
          let r = Tgd_core.Classifier.classify p in
          { r with Tgd_core.Classifier.datalog = true; weakly_acyclic = false });
    }
  in
  expect_caught ~name:"lattice" ~invariant:"subsumption" ~cases:3 mutant

(* An evaluator that silently drops the last answer tuple: the SWR
   differential sees rewrite∘eval disagree with the chase. *)
let test_mutant_differential () =
  let mutant =
    {
      Oracle.real with
      Oracle.eval_ucq =
        (fun inst u ->
          match List.rev (Oracle.real.Oracle.eval_ucq inst u) with
          | [] -> []
          | _ :: rest -> List.rev rest);
    }
  in
  expect_caught ~name:"dropped-tuple" ~invariant:"differential" ~cases:60 mutant

(* A parallel evaluator that drops the first answer tuple: the eval-parallel
   invariant sees it disagree with the sequential path. *)
let test_mutant_eval_parallel () =
  let mutant =
    {
      Oracle.real with
      Oracle.eval_ucq_par =
        (fun ~workers ~partitions inst u ->
          match Oracle.real.Oracle.eval_ucq_par ~workers ~partitions inst u with
          | [] -> []
          | _ :: rest -> rest);
    }
  in
  expect_caught ~name:"dropped-tuple-parallel" ~invariant:"eval-parallel" ~cases:40 mutant

(* A cache key that is NOT invariant under variable renaming: prepared
   entries would miss (or collide) across alpha-equivalent queries. *)
let test_mutant_metamorphic () =
  let mutant = { Oracle.real with Oracle.canon_key = (fun q -> Cq.to_string q) } in
  expect_caught ~name:"raw-text-key" ~invariant:"metamorphic" ~cases:3 mutant

(* A serve path that appends a phantom row to every answer set: the
   byte-comparison against direct evaluation must notice. *)
let test_mutant_serve () =
  let corrupt = function
    | Tgd_serve.Json.List rows ->
      Tgd_serve.Json.List (rows @ [ Tgd_serve.Json.List [ Tgd_serve.Json.String "bogus" ] ])
    | v -> v
  in
  let mutant =
    {
      Oracle.real with
      Oracle.serve_handle =
        (fun srv req ->
          match Oracle.real.Oracle.serve_handle srv req with
          | Ok fields ->
            Ok
              (List.map
                 (fun (k, v) -> if String.equal k "answers" then (k, corrupt v) else (k, v))
                 fields)
          | Error _ as e -> e);
    }
  in
  expect_caught ~name:"phantom-row" ~invariant:"serve" ~cases:8 mutant

(* A chase that invents an answer when truncated hard: truncated answers
   are no longer a subset of the complete ones. *)
let test_mutant_truncation () =
  let mutant =
    {
      Oracle.real with
      Oracle.certain_cq =
        (fun ~max_rounds ~max_facts p inst q ->
          let r = Oracle.real.Oracle.certain_cq ~max_rounds ~max_facts p inst q in
          if max_rounds <= 1 then
            {
              r with
              Tgd_chase.Certain.answers =
                Array.make (Cq.arity q) (Tgd_db.Value.const "bogus")
                :: r.Tgd_chase.Certain.answers;
            }
          else r);
    }
  in
  expect_caught ~name:"invented-answer" ~invariant:"truncation" ~cases:3 mutant

(* An incremental chase that inserts the batch but skips every delta-joined
   trigger (the classic semi-naive bug: forgetting that old facts can join
   new ones): the incremental model misses derived facts the from-scratch
   chase has, and the update-sequence invariant sees the null-free parts
   disagree. *)
let test_mutant_delta_skip () =
  let mutant =
    {
      Oracle.real with
      Oracle.delta_apply =
        (fun ~max_rounds:_ ~max_facts:_ _p inst batch ->
          let inserted =
            List.fold_left
              (fun n (pred, t) -> if Tgd_db.Instance.add_fact inst pred t then n + 1 else n)
              0 batch
          in
          {
            Tgd_chase.Delta_chase.outcome = Tgd_chase.Chase.Terminated;
            rounds = 0;
            inserted;
            derived = 0;
            nulls = 0;
            triggers_fired = 0;
            merges = 0;
            consistent = true;
            violation = None;
          });
    }
  in
  expect_caught ~name:"skipped-delta-triggers" ~invariant:"update-sequence" ~cases:40 mutant

(* An incremental chase that leaves one equivalence class stale, as a buggy
   EGD replay would: after the real delta application, one constant is
   knocked back to a fresh null everywhere it occurs. The null-free parts of
   the two models can no longer coincide. *)
let test_mutant_delta_stale_class () =
  let mutant =
    {
      Oracle.real with
      Oracle.delta_apply =
        (fun ~max_rounds ~max_facts p inst batch ->
          let stats = Oracle.real.Oracle.delta_apply ~max_rounds ~max_facts p inst batch in
          let some_const =
            List.find_map
              (fun (_, t) ->
                Array.find_opt (function Tgd_db.Value.Const _ -> true | _ -> false) t)
              (Tgd_db.Instance.facts inst)
          in
          (match some_const with
          | Some c ->
            let stale = Tgd_db.Value.Null (Tgd_db.Instance.max_null inst + 1) in
            ignore (Tgd_db.Instance.substitute inst ~from_:c ~to_:stale)
          | None -> ());
          stats);
    }
  in
  expect_caught ~name:"stale-egd-class" ~invariant:"update-sequence" ~cases:10 mutant

(* A Datalog backend whose saturation misses answers (it drops the last
   goal tuple): the rewrite-target differential sees the two backends
   disagree. *)
let test_mutant_rewrite_target () =
  let mutant =
    {
      Oracle.real with
      Oracle.datalog_answers =
        (fun r inst ->
          match List.rev (Oracle.real.Oracle.datalog_answers r inst) with
          | [] -> []
          | _ :: rest -> List.rev rest);
    }
  in
  expect_caught ~name:"dropped-goal-tuple" ~invariant:"rewrite-target" ~cases:40 mutant

(* ------------------------------------------------------------------ *)
(* Shrinking: a failing case reduces to a minimal reproducer that still
   fails, never grows, and lands in the corpus directory when asked.    *)

let test_shrink_minimizes () =
  let mutant = { Oracle.real with Oracle.canon_key = (fun q -> Cq.to_string q) } in
  let inv = Option.get (Invariant.find "metamorphic") in
  let summary =
    Harness.run ~oracle:mutant ~invariants:[ inv ] ~stop_after:1 ~seed:2014 ~cases:3 ()
  in
  match summary.Harness.failures with
  | [] -> Alcotest.fail "expected the canon-key mutant to fail"
  | f :: _ ->
    let size (c : Case.t) =
      List.length (Program.tgds c.Case.program)
      + List.length c.Case.facts
      + List.length c.Case.query.Cq.body
    in
    Alcotest.(check bool) "shrunk no larger" true (size f.Harness.shrunk <= size f.Harness.original);
    (* The canon-key fault is query-shaped: rules and facts shrink away. *)
    Alcotest.(check int) "rules dropped" 0 (List.length (Program.tgds f.Harness.shrunk.Case.program));
    Alcotest.(check int) "facts dropped" 0 (List.length f.Harness.shrunk.Case.facts);
    (match inv.Invariant.check mutant f.Harness.shrunk with
    | Invariant.Fail _ -> ()
    | o ->
      Alcotest.fail ("shrunk case no longer fails: " ^ Invariant.outcome_to_string o))

let test_failure_persisted () =
  let mutant = { Oracle.real with Oracle.canon_key = (fun q -> Cq.to_string q) } in
  let inv = Option.get (Invariant.find "metamorphic") in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "tgd_conformance_corpus_test" in
  let summary =
    Harness.run ~oracle:mutant ~invariants:[ inv ] ~corpus_dir:dir ~stop_after:1 ~seed:2014
      ~cases:3 ()
  in
  match summary.Harness.failures with
  | { Harness.corpus_file = Some path; _ } :: _ ->
    (match Case.load path with
    | Ok c ->
      Sys.remove path;
      (match inv.Invariant.check mutant c with
      | Invariant.Fail _ -> ()
      | o -> Alcotest.fail ("persisted case no longer fails: " ^ Invariant.outcome_to_string o))
    | Error msg -> Alcotest.fail ("persisted case unreadable: " ^ msg))
  | _ -> Alcotest.fail "expected a persisted failure"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "conformance"
    [
      ( "corpus",
        [
          Alcotest.test_case "replay checked-in cases" `Quick test_corpus_replay;
          Alcotest.test_case "case text round-trip" `Quick test_case_roundtrip;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "fixed-seed sweep is green" `Slow test_fixed_seed_sweep;
          Alcotest.test_case "case stream determinism" `Quick test_stream_determinism;
          Alcotest.test_case "summary determinism" `Quick test_summary_determinism;
          Alcotest.test_case "family rotation" `Quick test_family_rotation;
        ] );
      ( "mutants",
        [
          Alcotest.test_case "subsumption catches lattice fault" `Quick test_mutant_subsumption;
          Alcotest.test_case "differential catches dropped tuple" `Quick test_mutant_differential;
          Alcotest.test_case "eval-parallel catches dropped tuple" `Quick
            test_mutant_eval_parallel;
          Alcotest.test_case "metamorphic catches non-canonical key" `Quick
            test_mutant_metamorphic;
          Alcotest.test_case "serve catches phantom row" `Quick test_mutant_serve;
          Alcotest.test_case "truncation catches invented answer" `Quick test_mutant_truncation;
          Alcotest.test_case "update-sequence catches skipped delta triggers" `Quick
            test_mutant_delta_skip;
          Alcotest.test_case "update-sequence catches a stale EGD class" `Quick
            test_mutant_delta_stale_class;
          Alcotest.test_case "rewrite-target catches a lossy Datalog backend" `Quick
            test_mutant_rewrite_target;
        ] );
      ( "shrinking",
        [
          Alcotest.test_case "greedy shrink reaches a minimal reproducer" `Quick
            test_shrink_minimizes;
          Alcotest.test_case "failures persist to the corpus directory" `Quick
            test_failure_persisted;
        ] );
    ]
