(* Integration tests across the whole stack:
   - rewriting + evaluation vs chase materialization (Definition 1 in action);
   - the subsumption claims of Section 5 (experiment E5, small scale);
   - CLI-level file processing through the parser. *)

open Tgd_logic
open Tgd_db

let v = Term.var
let atom p args = Atom.of_strings p args

let tuples_equal l1 l2 = List.length l1 = List.length l2 && List.for_all2 Tuple.equal l1 l2

let certain_by_rewriting p inst q =
  let r = Tgd_rewrite.Rewrite.ucq p q in
  match r.Tgd_rewrite.Rewrite.outcome with
  | Tgd_rewrite.Rewrite.Truncated d -> Error (Tgd_exec.Governor.diag_summary d)
  | Tgd_rewrite.Rewrite.Complete ->
    Ok (Eval.ucq inst r.Tgd_rewrite.Rewrite.ucq |> List.filter (fun t -> not (Tuple.has_null t)))

let check_agreement name p inst q =
  match certain_by_rewriting p inst q with
  | Error why -> Alcotest.fail (name ^ ": rewriting truncated: " ^ why)
  | Ok via_rw ->
    let via_chase = Tgd_chase.Certain.cq p inst q in
    Alcotest.(check bool) (name ^ ": chase exact") true via_chase.Tgd_chase.Certain.exact;
    Alcotest.(check bool)
      (Printf.sprintf "%s: rewriting (%d) = chase (%d)" name (List.length via_rw)
         (List.length via_chase.Tgd_chase.Certain.answers))
      true
      (tuples_equal via_rw via_chase.Tgd_chase.Certain.answers)

(* ------------------------------------------------------------------ *)
(* Definition 1 in action *)

let test_university_agreement () =
  let rng = Tgd_gen.Rng.create 77 in
  let data = Tgd_gen.University.generate_data rng ~scale:120 in
  List.iter
    (fun q -> check_agreement q.Cq.name Tgd_gen.University.ontology data q)
    Tgd_gen.University.queries

let test_example1_agreement_random_data () =
  let rng = Tgd_gen.Rng.create 78 in
  let p = Tgd_core.Paper_examples.example1 in
  let q = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "r" [ v "X"; v "Y" ] ] in
  for _ = 1 to 10 do
    let inst = Tgd_gen.Gen_db.random_instance rng p ~facts_per_predicate:30 ~domain_size:8 in
    check_agreement "example1" p inst q
  done

let test_example3_agreement_random_data () =
  let rng = Tgd_gen.Rng.create 79 in
  let p = Tgd_core.Paper_examples.example3 in
  for _ = 1 to 10 do
    let inst = Tgd_gen.Gen_db.random_instance rng p ~facts_per_predicate:15 ~domain_size:5 in
    List.iter
      (fun (pred, arity) ->
        let vars = List.init arity (fun i -> v (Printf.sprintf "X%d" i)) in
        let q = Cq.make ~name:"q" ~answer:vars ~body:[ Atom.make pred vars ] in
        (* Example 3's chase does not terminate in general (t -> r -> s -> t
           with fresh nulls), so compare against a deep bounded chase: for
           FO-rewritable sets the certain answers stabilise at small depth. *)
        match certain_by_rewriting p inst q with
        | Error why -> Alcotest.fail ("rewriting truncated: " ^ why)
        | Ok via_rw ->
          let via_chase = Tgd_chase.Certain.cq ~max_rounds:12 p inst q in
          Alcotest.(check bool)
            (Printf.sprintf "%s agreement" (Symbol.name pred))
            true
            (tuples_equal via_rw via_chase.Tgd_chase.Certain.answers))
      (Program.predicates p)
  done

let test_random_linear_agreement () =
  (* Linear simple programs are FO-rewritable; rewriting and chase must
     agree on random data. *)
  let rng = Tgd_gen.Rng.create 80 in
  for i = 1 to 15 do
    let p =
      Tgd_gen.Gen_tgd.simple_linear ~name:(Printf.sprintf "lin%d" i) rng ~n_rules:5 ~n_predicates:4
        ~max_arity:3
    in
    let inst = Tgd_gen.Gen_db.random_instance rng p ~facts_per_predicate:10 ~domain_size:6 in
    List.iter
      (fun (pred, arity) ->
        let vars = List.init arity (fun k -> v (Printf.sprintf "X%d" k)) in
        let q = Cq.make ~name:"q" ~answer:vars ~body:[ Atom.make pred vars ] in
        match certain_by_rewriting p inst q with
        | Error why -> Alcotest.fail ("rewriting truncated on linear program: " ^ why)
        | Ok via_rw ->
          let via_chase = Tgd_chase.Certain.cq ~max_rounds:15 ~max_facts:20_000 p inst q in
          Alcotest.(check bool)
            (Printf.sprintf "lin%d/%s" i (Symbol.name pred))
            true
            (tuples_equal via_rw via_chase.Tgd_chase.Certain.answers))
      (Program.predicates p)
  done

let test_sql_rendering_of_rewriting () =
  (* The SQL view of a rewriting mentions only extensional predicates. *)
  let q = Cq.make ~name:"q" ~answer:[ v "X" ] ~body:[ atom "person" [ v "X" ] ] in
  let r = Tgd_rewrite.Rewrite.ucq Tgd_gen.University.ontology q in
  let sql = Sql.of_ucq r.Tgd_rewrite.Rewrite.ucq in
  Alcotest.(check bool) "non-trivial SQL" true (String.length sql > 100)

(* ------------------------------------------------------------------ *)
(* E5: subsumption (Section 5), small scale *)

let subsumption_corpus checker generator n =
  let count = ref 0 and swr_count = ref 0 in
  for i = 1 to n do
    match generator i with
    | None -> ()
    | Some p ->
      if checker p then begin
        incr count;
        if (Tgd_core.Swr.check p).Tgd_core.Swr.swr then incr swr_count
      end
  done;
  (!count, !swr_count)

let test_swr_subsumes_linear () =
  let rng = Tgd_gen.Rng.create 81 in
  let gen i =
    Some (Tgd_gen.Gen_tgd.simple_linear ~name:(Printf.sprintf "l%d" i) rng ~n_rules:6 ~n_predicates:4 ~max_arity:3)
  in
  let total, swr = subsumption_corpus Tgd_classes.Linear.check gen 30 in
  Alcotest.(check bool) "corpus non-trivial" true (total >= 25);
  Alcotest.(check int) "every linear set is SWR" total swr

let test_swr_subsumes_multilinear () =
  let rng = Tgd_gen.Rng.create 82 in
  let gen i =
    Some (Tgd_gen.Gen_tgd.simple_multilinear ~name:(Printf.sprintf "m%d" i) rng ~n_rules:4 ~n_predicates:3 ~arity:3)
  in
  let total, swr = subsumption_corpus Tgd_classes.Multilinear.check gen 30 in
  Alcotest.(check bool) "corpus non-trivial" true (total >= 25);
  Alcotest.(check int) "every multilinear set is SWR" total swr

let test_swr_subsumes_sticky () =
  let rng = Tgd_gen.Rng.create 83 in
  let gen _ =
    Tgd_gen.Gen_tgd.sample_in_class
      (fun p -> Tgd_classes.Sticky.sticky p)
      (fun () ->
        Tgd_gen.Gen_tgd.random_simple_program rng
          { Tgd_gen.Gen_tgd.default_config with n_rules = 4; n_predicates = 4; max_body_atoms = 2 })
  in
  let total, swr = subsumption_corpus Tgd_classes.Sticky.sticky gen 30 in
  Alcotest.(check bool) "corpus non-trivial" true (total >= 20);
  Alcotest.(check int) "every sticky simple set is SWR" total swr

let test_swr_subsumes_sticky_join () =
  let rng = Tgd_gen.Rng.create 84 in
  let gen _ =
    Tgd_gen.Gen_tgd.sample_in_class
      (fun p -> Tgd_classes.Sticky.sticky_join p)
      (fun () ->
        Tgd_gen.Gen_tgd.random_simple_program rng
          { Tgd_gen.Gen_tgd.default_config with n_rules = 4; n_predicates = 4; max_body_atoms = 2 })
  in
  let total, swr = subsumption_corpus Tgd_classes.Sticky.sticky_join gen 30 in
  Alcotest.(check bool) "corpus non-trivial" true (total >= 20);
  Alcotest.(check int) "every sticky-join simple set is SWR" total swr

(* ------------------------------------------------------------------ *)
(* File-level pipeline *)

let test_file_pipeline () =
  let source =
    {|
      [has_member] project(P) -> member(P, M).
      [member_person] member(P, M) -> person(M).
      project(apollo).
      member(apollo, alan).
      q(X) :- person(X).
    |}
  in
  match Tgd_parser.Parser.parse_string source with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Tgd_parser.Parser.pp_error e)
  | Ok doc -> (
    match Tgd_parser.Parser.program_of_document doc with
    | Error e -> Alcotest.fail e
    | Ok p ->
      let inst = Instance.of_atoms doc.Tgd_parser.Parser.facts in
      let q = List.hd doc.Tgd_parser.Parser.queries in
      check_agreement "file pipeline" p inst q)

let () =
  Alcotest.run "integration"
    [
      ( "rewriting = chase",
        [
          Alcotest.test_case "university queries" `Quick test_university_agreement;
          Alcotest.test_case "example1 random data" `Quick test_example1_agreement_random_data;
          Alcotest.test_case "example3 random data" `Quick test_example3_agreement_random_data;
          Alcotest.test_case "random linear programs" `Quick test_random_linear_agreement;
          Alcotest.test_case "sql rendering" `Quick test_sql_rendering_of_rewriting;
        ] );
      ( "subsumption (E5)",
        [
          Alcotest.test_case "linear in swr" `Quick test_swr_subsumes_linear;
          Alcotest.test_case "multilinear in swr" `Quick test_swr_subsumes_multilinear;
          Alcotest.test_case "sticky in swr" `Quick test_swr_subsumes_sticky;
          Alcotest.test_case "sticky-join in swr" `Quick test_swr_subsumes_sticky_join;
        ] );
      ("pipeline", [ Alcotest.test_case "text to answers" `Quick test_file_pipeline ]);
    ]
