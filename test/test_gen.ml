(* Unit tests for the workload generators. *)

open Tgd_logic
open Tgd_gen

let test_rng_deterministic () =
  let g1 = Rng.create 99 and g2 = Rng.create 99 in
  let seq g = List.init 50 (fun _ -> Rng.int g 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (seq g1) (seq g2)

let test_rng_bounds () =
  let g = Rng.create 5 in
  for _ = 1 to 10_000 do
    let n = 1 + Rng.int g 100 in
    let x = Rng.int g n in
    if x < 0 || x >= n then Alcotest.fail (Printf.sprintf "out of bounds: %d of %d" x n)
  done

let test_rng_float_range () =
  let g = Rng.create 6 in
  for _ = 1 to 1_000 do
    let f = Rng.float g in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

let test_rng_copy_independent () =
  let g = Rng.create 1 in
  let _ = Rng.int g 10 in
  let g' = Rng.copy g in
  Alcotest.(check int) "copies continue identically" (Rng.int g 1000) (Rng.int g' 1000)

let test_rng_shuffle_permutation () =
  let g = Rng.create 2 in
  let l = [ 1; 2; 3; 4; 5; 6 ] in
  let s = Rng.shuffle g l in
  Alcotest.(check (list int)) "same multiset" l (List.sort compare s)

let test_random_program_well_formed () =
  let g = Rng.create 3 in
  for i = 0 to 20 do
    let p = Gen_tgd.random_program ~name:(Printf.sprintf "p%d" i) g Gen_tgd.default_config in
    Alcotest.(check int) "rule count" Gen_tgd.default_config.Gen_tgd.n_rules (Program.size p)
  done

let test_random_simple_program_is_simple () =
  let g = Rng.create 4 in
  for i = 0 to 20 do
    let p = Gen_tgd.random_simple_program ~name:(Printf.sprintf "s%d" i) g Gen_tgd.default_config in
    Alcotest.(check bool) "simple" true (Program.is_simple p)
  done

let test_constructive_linear () =
  let g = Rng.create 5 in
  for i = 0 to 20 do
    let p =
      Gen_tgd.simple_linear ~name:(Printf.sprintf "l%d" i) g ~n_rules:6 ~n_predicates:4 ~max_arity:3
    in
    Alcotest.(check bool) "linear" true (Tgd_classes.Linear.check p);
    Alcotest.(check bool) "simple" true (Program.is_simple p)
  done

let test_constructive_multilinear () =
  let g = Rng.create 6 in
  for i = 0 to 20 do
    let p =
      Gen_tgd.simple_multilinear ~name:(Printf.sprintf "m%d" i) g ~n_rules:5 ~n_predicates:4 ~arity:3
    in
    Alcotest.(check bool) "multilinear" true (Tgd_classes.Multilinear.check p);
    Alcotest.(check bool) "simple" true (Program.is_simple p)
  done

let test_sample_in_class () =
  let g = Rng.create 7 in
  let draw () =
    Gen_tgd.random_simple_program g
      { Gen_tgd.default_config with n_rules = 3; max_body_atoms = 2 }
  in
  (match Gen_tgd.sample_in_class (fun p -> Tgd_classes.Sticky.sticky p) draw with
  | Some p -> Alcotest.(check bool) "sampled program is sticky" true (Tgd_classes.Sticky.sticky p)
  | None -> Alcotest.fail "no sticky program found in 1000 tries");
  match Gen_tgd.sample_in_class ~max_tries:3 (fun _ -> false) draw with
  | Some _ -> Alcotest.fail "impossible predicate satisfied"
  | None -> ()

let test_chain_family () =
  let p = Gen_tgd.chain ?name:None ~depth:10 in
  Alcotest.(check int) "ten rules" 10 (Program.size p);
  Alcotest.(check bool) "linear" true (Tgd_classes.Linear.check p);
  let verdict = Tgd_core.Swr.check p in
  Alcotest.(check bool) "chains are swr" true verdict.Tgd_core.Swr.swr

let test_star_family () =
  let p = Gen_tgd.wide_star ?name:None ~width:8 in
  Alcotest.(check int) "eight rules" 8 (Program.size p);
  Alcotest.(check bool) "swr" true (Tgd_core.Swr.check p).Tgd_core.Swr.swr

let test_dl_lite_translation_shape () =
  let axioms =
    Dl_lite.
      [
        Concept_incl (Atomic "a", Exists (Role "r"));
        Concept_incl (Exists (Inv "r"), Atomic "b");
        Role_incl (Role "r", Inv "s");
      ]
  in
  let p = Dl_lite.to_program axioms in
  Alcotest.(check int) "one tgd per axiom" 3 (Program.size p);
  Alcotest.(check bool) "linear" true (Tgd_classes.Linear.check p);
  Alcotest.(check bool) "simple" true (Program.is_simple p);
  (* a [= exists r produces an existential head variable. *)
  let r1 = List.hd (Program.tgds p) in
  Alcotest.(check int) "existential created" 1
    (Symbol.Set.cardinal (Tgd.existential_head_vars r1))

let test_dl_lite_inverse_direction () =
  (* exists r- [= b must read the SECOND position of r. *)
  let p = Dl_lite.to_program [ Dl_lite.Concept_incl (Exists (Dl_lite.Inv "r"), Atomic "b") ] in
  match Program.tgds p with
  | [ r ] -> (
    match r.Tgd.body, r.Tgd.head with
    | [ body ], [ head ] ->
      let subject = body.Atom.args.(1) in
      Alcotest.(check bool) "head var is body's 2nd arg" true
        (Term.equal (head.Atom.args.(0)) subject)
    | _ -> Alcotest.fail "unexpected shape")
  | _ -> Alcotest.fail "expected one rule"

let test_dl_lite_random_always_swr () =
  let g = Rng.create 8 in
  for _ = 1 to 20 do
    let tbox = Dl_lite.random_tbox g ~n_concepts:5 ~n_roles:3 ~n_axioms:10 in
    let p = Dl_lite.to_program tbox in
    Alcotest.(check bool) "random tbox swr" true (Tgd_core.Swr.check p).Tgd_core.Swr.swr
  done

let test_dl_ext_clinic_classification () =
  let p, ncs = Dl_ext.to_program Dl_ext.clinic in
  Alcotest.(check int) "one disjointness constraint" 1 (List.length ncs);
  let r = Tgd_core.Classifier.classify p in
  Alcotest.(check bool) "not linear (conjunctions)" false r.Tgd_core.Classifier.linear;
  Alcotest.(check bool) "not simple (multi-atom heads)" false r.Tgd_core.Classifier.simple;
  Alcotest.(check bool) "not sticky" false r.Tgd_core.Classifier.sticky;
  Alcotest.(check bool) "wr" true r.Tgd_core.Classifier.wr

let test_dl_ext_clinic_rewritable () =
  (* FO-rewritability in action: every atomic pattern terminates. *)
  let p, _ = Dl_ext.to_program Dl_ext.clinic in
  let cfg = { Tgd_rewrite.Rewrite.default_config with max_cqs = 3_000 } in
  List.iter
    (fun (pat, status) ->
      match status with
      | Tgd_core.Query_pattern.Terminates _ -> ()
      | Tgd_core.Query_pattern.Diverges why ->
        Alcotest.fail (Format.asprintf "%a diverged: %s" Tgd_core.Query_pattern.pp pat why))
    (Tgd_core.Query_pattern.analyze_all ~config:cfg ~max_arity:2 p)

let test_dl_ext_el_recursion_rejected () =
  let p, _ =
    Dl_ext.to_program [ Dl_ext.Incl ([ Dl_ext.Exists_in (Dl_ext.Role "r", "a") ], Dl_ext.Atomic "a") ]
  in
  Alcotest.(check bool) "EL recursion not wr" false (Tgd_core.Wr.check p).Tgd_core.Wr.wr

let test_dl_ext_disjoint_constraint_works () =
  let p, ncs = Dl_ext.to_program Dl_ext.clinic in
  let constraints = List.map (fun body -> Tgd_obda.Constraints.make body) ncs in
  (* alice is licensed and conducts a trial (physician via investigator) and
     is also enrolled in a trial (participant): violates the disjointness. *)
  let cst s = Term.const s in
  let inst =
    Tgd_db.Instance.of_atoms
      [
        Atom.of_strings "conducts" [ cst "alice"; cst "t1" ];
        Atom.of_strings "trial" [ cst "t1" ];
        Atom.of_strings "licensed" [ cst "alice" ];
        Atom.of_strings "enrolled_in" [ cst "alice"; cst "t1" ];
      ]
  in
  let verdict = Tgd_obda.Constraints.check p constraints inst in
  Alcotest.(check bool) "moonlighting investigator detected" false verdict.Tgd_obda.Constraints.consistent

let test_dl_ext_random_stratified_generation () =
  let g = Rng.create 33 in
  for _ = 1 to 10 do
    let tbox = Dl_ext.random_tbox g ~n_concepts:5 ~n_roles:3 ~n_axioms:8 () in
    let p, _ = Dl_ext.to_program tbox in
    (* Translation is well-formed and the classifier runs. *)
    Alcotest.(check bool) "program non-empty or constraints-only" true (Program.size p >= 0);
    ignore (Tgd_core.Swr.check p)
  done

let test_university_data_extensional_only () =
  (* The generator must not emit facts for derived predicates. *)
  let g = Rng.create 9 in
  let data = University.generate_data g ~scale:50 in
  let derived = [ "person"; "student"; "faculty"; "employee"; "organization"; "course"; "chair"; "publication" ] in
  List.iter
    (fun name ->
      match Tgd_db.Instance.relation data (Symbol.intern name) with
      | None -> ()
      | Some rel ->
        Alcotest.(check int) (name ^ " not materialized") 0 (Tgd_db.Relation.cardinality rel))
    derived

let test_university_data_scales () =
  let g = Rng.create 10 in
  let small = Tgd_db.Instance.cardinality (University.generate_data g ~scale:50) in
  let g = Rng.create 10 in
  let large = Tgd_db.Instance.cardinality (University.generate_data g ~scale:500) in
  Alcotest.(check bool) "grows with scale" true (large > 4 * small)

let test_random_instance_signature () =
  let g = Rng.create 11 in
  let p = Tgd_core.Paper_examples.example1 in
  let inst = Gen_db.random_instance g p ~facts_per_predicate:20 ~domain_size:10 in
  List.iter
    (fun (pred, arity) ->
      match Tgd_db.Instance.relation inst pred with
      | None -> Alcotest.fail ("missing relation " ^ Symbol.name pred)
      | Some rel ->
        Alcotest.(check int) "arity matches signature" arity (Tgd_db.Relation.arity rel);
        Alcotest.(check bool) "populated" true (Tgd_db.Relation.cardinality rel > 0))
    (Program.predicates p)

(* Regression: generated TGD sets must be closed over a declared signature.
   Before the fix, every generator call re-rolled arities for the same
   interned predicate names ([p0], [p1], ...), so composing two draws — a
   program from one call, facts generated against another call's arities —
   could use one predicate at two arities, and the conflict only surfaced
   inside [Instance.relation_for] when the facts were loaded (or at
   [build_indexes]/eval time). With a shared [Gen_tgd.signature] the
   composition is closed by construction. *)
let test_signature_closure_regression () =
  let g = Rng.create 20260805 in
  let cfg = { Gen_tgd.default_config with n_predicates = 6; max_arity = 3; n_rules = 5 } in
  let sg = Gen_tgd.signature g cfg in
  (* Facts drawn once against the declared signature... *)
  let shared = Gen_db.random_facts_for g sg ~facts_per_predicate:3 ~domain_size:4 in
  for i = 0 to 30 do
    (* ...must load against every program generated over that signature. *)
    let p = Gen_tgd.random_program ~name:(Printf.sprintf "sg%d" i) ~signature:sg g cfg in
    Alcotest.(check bool) "closed over declared signature" true (Gen_tgd.closed_over sg p);
    let inst = Gen_db.random_instance g p ~facts_per_predicate:2 ~domain_size:4 in
    (* Merging the shared facts into the program's instance must never hit
       an arity conflict (this is what blew up before the fix). *)
    Tgd_db.Instance.iter_facts
      (fun (pred, t) -> ignore (Tgd_db.Instance.add_fact inst pred t))
      shared;
    Tgd_db.Instance.build_indexes inst;
    (* Simple and linear draws share the same closure guarantee. *)
    let ps = Gen_tgd.random_simple_program ~signature:sg g cfg in
    Alcotest.(check bool) "simple draw closed" true (Gen_tgd.closed_over sg ps);
    let pl = Gen_tgd.simple_linear ~signature:sg g ~n_rules:4 ~n_predicates:6 ~max_arity:3 in
    Alcotest.(check bool) "linear draw closed" true (Gen_tgd.closed_over sg pl)
  done;
  (* Witness that the hazard is real without a shared signature: two
     independent draws are each internally consistent but may disagree on
     an arity, which [closed_over] detects against the other's signature. *)
  let independent_disagreement =
    List.exists
      (fun seed ->
        let ga = Rng.create seed and gb = Rng.create (seed + 1000) in
        let pa = Gen_tgd.random_program ga cfg in
        let sgb = Gen_tgd.signature gb cfg in
        not (Gen_tgd.closed_over sgb pa))
      (List.init 20 (fun i -> 100 + i))
  in
  Alcotest.(check bool) "unshared draws can disagree on arities" true independent_disagreement

let () =
  Alcotest.run "gen"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutation;
        ] );
      ( "tgd generators",
        [
          Alcotest.test_case "random programs well-formed" `Quick test_random_program_well_formed;
          Alcotest.test_case "simple generator" `Quick test_random_simple_program_is_simple;
          Alcotest.test_case "constructive linear" `Quick test_constructive_linear;
          Alcotest.test_case "constructive multilinear" `Quick test_constructive_multilinear;
          Alcotest.test_case "acceptance sampling" `Quick test_sample_in_class;
          Alcotest.test_case "chain family" `Quick test_chain_family;
          Alcotest.test_case "star family" `Quick test_star_family;
          Alcotest.test_case "signature closure regression" `Quick
            test_signature_closure_regression;
        ] );
      ( "dl-lite",
        [
          Alcotest.test_case "translation shape" `Quick test_dl_lite_translation_shape;
          Alcotest.test_case "inverse roles" `Quick test_dl_lite_inverse_direction;
          Alcotest.test_case "random tboxes swr" `Quick test_dl_lite_random_always_swr;
        ] );
      ( "dl-ext",
        [
          Alcotest.test_case "clinic classification" `Quick test_dl_ext_clinic_classification;
          Alcotest.test_case "clinic rewritable" `Quick test_dl_ext_clinic_rewritable;
          Alcotest.test_case "EL recursion rejected" `Quick test_dl_ext_el_recursion_rejected;
          Alcotest.test_case "disjointness constraint" `Quick test_dl_ext_disjoint_constraint_works;
          Alcotest.test_case "stratified generation" `Quick test_dl_ext_random_stratified_generation;
        ] );
      ( "data generators",
        [
          Alcotest.test_case "university extensional only" `Quick
            test_university_data_extensional_only;
          Alcotest.test_case "university scales" `Quick test_university_data_scales;
          Alcotest.test_case "random instance signature" `Quick test_random_instance_signature;
        ] );
    ]
