(* Unit tests for the chase engine: triggers, oblivious vs restricted,
   termination, budgets, certain answers. *)

open Tgd_logic
open Tgd_db
open Tgd_chase

let v = Term.var
let c = Term.const
let atom p args = Atom.of_strings p args
let tuple l = Array.of_list (List.map Value.const l)

let person_project =
  Program.make_exn ~name:"pp"
    [
      Tgd.make ~name:"has_member" ~body:[ atom "project" [ v "P" ] ]
        ~head:[ atom "member" [ v "P"; v "M" ] ];
      Tgd.make ~name:"member_person" ~body:[ atom "member" [ v "P"; v "M" ] ]
        ~head:[ atom "person" [ v "M" ] ];
    ]

(* ------------------------------------------------------------------ *)
(* Trigger *)

let test_trigger_discovery () =
  let inst = Instance.of_atoms [ atom "project" [ c "apollo" ]; atom "project" [ c "gemini" ] ] in
  let triggers = Trigger.find_new person_project inst ~delta:None in
  Alcotest.(check int) "one per project" 2 (List.length triggers)

let test_trigger_satisfaction () =
  let inst =
    Instance.of_atoms [ atom "project" [ c "apollo" ]; atom "member" [ c "apollo"; c "alan" ] ]
  in
  let triggers = Trigger.find_new person_project inst ~delta:None in
  let has_member_trigger =
    List.find (fun tr -> tr.Trigger.rule.Tgd.name = "has_member") triggers
  in
  Alcotest.(check bool) "head already satisfied" true
    (Trigger.is_satisfied has_member_trigger inst)

let test_trigger_head_facts_share_nulls () =
  let r =
    Tgd.make ~name:"r" ~body:[ atom "p" [ v "X" ] ]
      ~head:[ atom "q" [ v "X"; v "Z" ]; atom "s" [ v "Z" ] ]
  in
  let program = Program.make_exn [ r ] in
  let inst = Instance.of_atoms [ atom "p" [ c "a" ] ] in
  match Trigger.find_new program inst ~delta:None with
  | [ tr ] ->
    let gen = Null_gen.create () in
    (match Trigger.head_facts tr gen with
    | [ (_, t1); (_, t2) ] ->
      Alcotest.(check bool) "same null in both head atoms" true (Value.equal t1.(1) t2.(0));
      Alcotest.(check bool) "null is a null" true (Value.is_null t1.(1))
    | _ -> Alcotest.fail "expected two head facts")
  | _ -> Alcotest.fail "expected one trigger"

let test_trigger_delta_restriction () =
  let inst = Instance.of_atoms [ atom "project" [ c "apollo" ]; atom "project" [ c "gemini" ] ] in
  let delta = Symbol.Table.create 4 in
  Symbol.Table.add delta (Symbol.intern "project") [ tuple [ "apollo" ] ];
  let triggers = Trigger.find_new person_project inst ~delta:(Some delta) in
  Alcotest.(check int) "only the delta project" 1 (List.length triggers)

(* ------------------------------------------------------------------ *)
(* Chase *)

let test_restricted_no_new_null_when_satisfied () =
  let inst =
    Instance.of_atoms [ atom "project" [ c "apollo" ]; atom "member" [ c "apollo"; c "alan" ] ]
  in
  let stats = Chase.run person_project inst in
  Alcotest.(check bool) "terminated" true (stats.Chase.outcome = Chase.Terminated);
  Alcotest.(check int) "no null invented" 0 stats.Chase.nulls;
  (* person(alan) was derived. *)
  let q = Cq.make ~name:"q" ~answer:[] ~body:[ atom "person" [ c "alan" ] ] in
  Alcotest.(check bool) "person derived" true (Eval.cq_exists inst q)

let test_restricted_invents_when_needed () =
  let inst = Instance.of_atoms [ atom "project" [ c "apollo" ] ] in
  let stats = Chase.run person_project inst in
  Alcotest.(check int) "one null" 1 stats.Chase.nulls;
  Alcotest.(check int) "member + person" 2 stats.Chase.new_facts

let test_oblivious_fires_more () =
  let inst =
    Instance.of_atoms [ atom "project" [ c "apollo" ]; atom "member" [ c "apollo"; c "alan" ] ]
  in
  let stats = Chase.run ~variant:Chase.Oblivious person_project inst in
  (* Oblivious fires has_member even though satisfied: invents a null. *)
  Alcotest.(check bool) "null invented" true (stats.Chase.nulls >= 1)

let test_chase_budget () =
  (* Non-terminating: p(X) -> r(X,Y); r(X,Y) -> p(Y). *)
  let p =
    Program.make_exn
      [
        Tgd.make ~name:"r1" ~body:[ atom "p" [ v "X" ] ] ~head:[ atom "r" [ v "X"; v "Y" ] ];
        Tgd.make ~name:"r2" ~body:[ atom "r" [ v "X"; v "Y" ] ] ~head:[ atom "p" [ v "Y" ] ];
      ]
  in
  let inst = Instance.of_atoms [ atom "p" [ c "a" ] ] in
  let stats = Chase.run ~max_rounds:10 p inst in
  Alcotest.(check bool) "budget exhausted" true
    (match stats.Chase.outcome with Chase.Truncated _ -> true | Chase.Terminated -> false);
  Alcotest.(check bool) "progress was made" true (stats.Chase.new_facts > 5)

let test_chase_weakly_acyclic_terminates () =
  let rng = Tgd_gen.Rng.create 3 in
  let data = Tgd_gen.University.generate_data rng ~scale:50 in
  let stats = Chase.run Tgd_gen.University.ontology data in
  Alcotest.(check bool) "terminates" true (stats.Chase.outcome = Chase.Terminated)

let test_chase_models_program () =
  (* After a terminated chase, no active trigger remains. *)
  let inst = Instance.of_atoms [ atom "project" [ c "apollo" ]; atom "project" [ c "x" ] ] in
  let _ = Chase.run person_project inst in
  let triggers = Trigger.find_new person_project inst ~delta:None in
  List.iter
    (fun tr -> Alcotest.(check bool) "trigger satisfied" true (Trigger.is_satisfied tr inst))
    triggers

let test_chase_multi_head () =
  let p =
    Program.make_exn
      [
        Tgd.make ~name:"mh" ~body:[ atom "a" [ v "X" ] ]
          ~head:[ atom "b" [ v "X"; v "Z" ]; atom "c" [ v "Z" ] ];
      ]
  in
  let inst = Instance.of_atoms [ atom "a" [ c "k" ] ] in
  let stats = Chase.run p inst in
  Alcotest.(check int) "both head atoms" 2 stats.Chase.new_facts;
  let q =
    Cq.make ~name:"q" ~answer:[] ~body:[ atom "b" [ c "k"; v "Z" ]; atom "c" [ v "Z" ] ]
  in
  Alcotest.(check bool) "joined on the same null" true (Eval.cq_exists inst q)

(* ------------------------------------------------------------------ *)
(* EGDs *)

let funct_r = Egd.functional "r" ~arity:2 ~key:[ 1 ] ~determined:2

let test_egd_make_validation () =
  Alcotest.check_raises "variables must occur"
    (Invalid_argument "Egd.make: equated variables must occur in the body") (fun () ->
      ignore
        (Egd.make ?name:None ~body:[ atom "p" [ v "X" ] ] ~left:(Symbol.intern "X")
           ~right:(Symbol.intern "Q")))

let test_egd_functional_shape () =
  Alcotest.(check int) "two body atoms" 2 (List.length funct_r.Egd.body);
  Alcotest.check_raises "bad position" (Invalid_argument "Egd.functional: bad determined position")
    (fun () -> ignore (Egd.functional "r" ~arity:2 ~key:[ 1 ] ~determined:5))

let test_egd_satisfied () =
  let inst = Instance.of_atoms [ atom "r" [ c "a"; c "b" ]; atom "r" [ c "x"; c "b" ] ] in
  match Egd_chase.saturate [ funct_r ] inst with
  | Ok (_, merges) -> Alcotest.(check int) "no merges needed" 0 merges
  | Error _ -> Alcotest.fail "spurious violation"

let test_egd_hard_violation () =
  let inst = Instance.of_atoms [ atom "r" [ c "a"; c "b" ]; atom "r" [ c "a"; c "d" ] ] in
  match Egd_chase.saturate [ funct_r ] inst with
  | Ok _ -> Alcotest.fail "expected a violation: r(a,b), r(a,d) with funct r"
  | Error viol ->
    Alcotest.(check bool) "both constants reported" true
      (Value.is_null viol.Egd_chase.v1 = false && Value.is_null viol.Egd_chase.v2 = false)

let test_egd_merges_nulls () =
  let inst = Instance.create () in
  ignore (Instance.add_fact inst (Symbol.intern "r") [| Value.const "a"; Value.const "b" |]);
  ignore (Instance.add_fact inst (Symbol.intern "r") [| Value.const "a"; Value.Null 1 |]);
  ignore (Instance.add_fact inst (Symbol.intern "q") [| Value.Null 1 |]);
  match Egd_chase.saturate [ funct_r ] inst with
  | Error _ -> Alcotest.fail "null merge must not fail"
  | Ok (merged, merges) ->
    Alcotest.(check int) "one merge" 1 merges;
    (* The null was identified with b everywhere: q(b) now holds and the two
       r-facts collapsed into one. *)
    let q = Cq.make ~name:"q" ~answer:[] ~body:[ atom "q" [ c "b" ] ] in
    Alcotest.(check bool) "null renamed in q" true (Eval.cq_exists merged q);
    Alcotest.(check int) "r collapsed" 2 (Instance.cardinality merged)

let test_egd_combined_chase () =
  (* person(X) -> has_mother(X, M) plus functionality of has_mother: the
     invented mother merges with a known one. *)
  let tgds =
    Program.make_exn
      [
        Tgd.make ~name:"mother" ~body:[ atom "person" [ v "X" ] ]
          ~head:[ atom "has_mother" [ v "X"; v "M" ] ];
      ]
  in
  let funct_mother = Egd.functional "has_mother" ~arity:2 ~key:[ 1 ] ~determined:2 in
  let inst =
    Instance.of_atoms [ atom "person" [ c "ada" ]; atom "has_mother" [ c "ada"; c "ida" ] ]
  in
  let outcome = Egd_chase.run ~tgds ~egds:[ funct_mother ] inst in
  Alcotest.(check bool) "consistent" true outcome.Egd_chase.consistent;
  (* Either the restricted chase never invented a witness, or the EGD merged
     it with ida; in both cases exactly one mother and no null remains. *)
  let q = Cq.make ~name:"q" ~answer:[ v "M" ] ~body:[ atom "has_mother" [ c "ada"; v "M" ] ] in
  (match Eval.cq outcome.Egd_chase.instance q with
  | [ t ] -> Alcotest.(check bool) "the known mother" true (Value.equal t.(0) (Value.const "ida"))
  | other -> Alcotest.fail (Printf.sprintf "expected 1 mother, got %d" (List.length other)));
  Alcotest.(check bool) "input untouched" true (Instance.cardinality inst = 2)

let test_egd_dl_lite_f_consistency () =
  (* DL-Lite_F: funct(advises-): a student with two advisors is fine for
     funct(advises) keyed on the advisor... keyed on the student it is a
     violation. *)
  let funct_inv = Tgd_gen.Dl_lite.functionality (Tgd_gen.Dl_lite.Inv "advises") in
  let tgds = Program.make_exn ~name:"empty" [] in
  let ok = Instance.of_atoms [ atom "advises" [ c "prof1"; c "sam" ]; atom "advises" [ c "prof1"; c "lee" ] ] in
  Alcotest.(check bool) "one advisor each: consistent" true
    (Egd_chase.check_consistency ~tgds ~egds:[ funct_inv ] ok);
  let bad = Instance.of_atoms [ atom "advises" [ c "prof1"; c "sam" ]; atom "advises" [ c "prof2"; c "sam" ] ] in
  Alcotest.(check bool) "two advisors for sam: inconsistent" false
    (Egd_chase.check_consistency ~tgds ~egds:[ funct_inv ] bad)

(* ------------------------------------------------------------------ *)
(* Certain *)

let test_certain_excludes_nulls () =
  let inst = Instance.of_atoms [ atom "project" [ c "apollo" ] ] in
  let members =
    Cq.make ~name:"m" ~answer:[ v "M" ] ~body:[ atom "member" [ v "P"; v "M" ] ]
  in
  let r = Certain.cq person_project inst members in
  Alcotest.(check bool) "exact" true r.Certain.exact;
  Alcotest.(check int) "the invented member is not certain" 0 (List.length r.Certain.answers)

let test_certain_boolean_with_nulls () =
  (* Boolean queries can be certain even through nulls. *)
  let inst = Instance.of_atoms [ atom "project" [ c "apollo" ] ] in
  let somebody = Cq.make ~name:"q" ~answer:[] ~body:[ atom "person" [ v "X" ] ] in
  let r = Certain.cq person_project inst somebody in
  Alcotest.(check int) "boolean certain answer" 1 (List.length r.Certain.answers)

let test_certain_input_untouched () =
  let inst = Instance.of_atoms [ atom "project" [ c "apollo" ] ] in
  let q = Cq.make ~name:"q" ~answer:[] ~body:[ atom "person" [ v "X" ] ] in
  let _ = Certain.cq person_project inst q in
  Alcotest.(check int) "input instance unchanged" 1 (Instance.cardinality inst)

let test_certain_inexact_flag () =
  let p =
    Program.make_exn
      [
        Tgd.make ~name:"r1" ~body:[ atom "p" [ v "X" ] ] ~head:[ atom "r" [ v "X"; v "Y" ] ];
        Tgd.make ~name:"r2" ~body:[ atom "r" [ v "X"; v "Y" ] ] ~head:[ atom "p" [ v "Y" ] ];
      ]
  in
  let inst = Instance.of_atoms [ atom "p" [ c "a" ] ] in
  let q = Cq.make ~name:"q" ~answer:[] ~body:[ atom "p" [ c "a" ] ] in
  let r = Certain.cq ~max_rounds:5 p inst q in
  Alcotest.(check bool) "flagged inexact" false r.Certain.exact;
  Alcotest.(check int) "still sound" 1 (List.length r.Certain.answers)

let () =
  Alcotest.run "chase"
    [
      ( "trigger",
        [
          Alcotest.test_case "discovery" `Quick test_trigger_discovery;
          Alcotest.test_case "satisfaction" `Quick test_trigger_satisfaction;
          Alcotest.test_case "head facts share nulls" `Quick test_trigger_head_facts_share_nulls;
          Alcotest.test_case "delta restriction" `Quick test_trigger_delta_restriction;
        ] );
      ( "chase",
        [
          Alcotest.test_case "restricted skips satisfied" `Quick
            test_restricted_no_new_null_when_satisfied;
          Alcotest.test_case "restricted invents" `Quick test_restricted_invents_when_needed;
          Alcotest.test_case "oblivious fires more" `Quick test_oblivious_fires_more;
          Alcotest.test_case "budget" `Quick test_chase_budget;
          Alcotest.test_case "weakly acyclic terminates" `Quick test_chase_weakly_acyclic_terminates;
          Alcotest.test_case "result models program" `Quick test_chase_models_program;
          Alcotest.test_case "multi-head nulls" `Quick test_chase_multi_head;
        ] );
      ( "egd",
        [
          Alcotest.test_case "validation" `Quick test_egd_make_validation;
          Alcotest.test_case "functional shape" `Quick test_egd_functional_shape;
          Alcotest.test_case "satisfied" `Quick test_egd_satisfied;
          Alcotest.test_case "hard violation" `Quick test_egd_hard_violation;
          Alcotest.test_case "null merging" `Quick test_egd_merges_nulls;
          Alcotest.test_case "combined chase" `Quick test_egd_combined_chase;
          Alcotest.test_case "dl-lite_f consistency" `Quick test_egd_dl_lite_f_consistency;
        ] );
      ( "certain",
        [
          Alcotest.test_case "nulls excluded" `Quick test_certain_excludes_nulls;
          Alcotest.test_case "boolean through nulls" `Quick test_certain_boolean_with_nulls;
          Alcotest.test_case "input untouched" `Quick test_certain_input_untouched;
          Alcotest.test_case "inexact flag" `Quick test_certain_inexact_flag;
        ] );
    ]
