(* Property tests for the delta-semi-naive incremental chase (Delta_chase):
   incremental maintenance must agree with a from-scratch chase on every
   null-free fact (hence on certain answers), an empty delta must be a
   no-op, batches may be split or fused freely, and budget truncation must
   degrade soundly. Plus the boxed parallel evaluator's partition-owned
   merge on the unsealed/pending fallback path. *)

open Tgd_logic
open Tgd_gen

let rounds = 50
let facts_cap = 10_000

(* ------------------------------------------------------------------ *)
(* Generators: seeded Tgd_gen programs, instances and insert batches.   *)

let free_config =
  {
    Gen_tgd.default_config with
    Gen_tgd.n_predicates = 4;
    max_arity = 2;
    n_rules = 4;
    max_body_atoms = 2;
    max_head_atoms = 1;
    existential_rate = 0.3;
  }

let datalog_program rng =
  Gen_tgd.random_simple_program rng { free_config with Gen_tgd.existential_rate = 0.0 }

(* Rotate through the families the incremental chase is specified for:
   simple linear (SWR), datalog (weakly acyclic), and the free generator
   with existentials (whose WA members dominate at this scale; non-WA draws
   are filtered by the termination assumption below). *)
let program_of_seed rng seed =
  match abs seed mod 3 with
  | 0 -> Gen_tgd.simple_linear rng ~n_rules:(2 + Rng.int rng 4) ~n_predicates:4 ~max_arity:2
  | 1 -> datalog_program rng
  | _ -> Gen_tgd.random_simple_program rng free_config

let base_instance rng p =
  Gen_db.random_instance rng p ~facts_per_predicate:(3 + Rng.int rng 3)
    ~domain_size:(3 + Rng.int rng 2)

let random_batch rng p ~size =
  let preds = Program.predicates p in
  if preds = [] then []
  else
    List.init size (fun _ ->
        let pred, arity = Rng.choose rng preds in
        ( pred,
          Array.init arity (fun _ ->
              Tgd_db.Value.const (Printf.sprintf "d%d" (Rng.int rng 6))) ))

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000)

(* ------------------------------------------------------------------ *)
(* Helpers *)

let fact_compare (p1, t1) (p2, t2) =
  let c = Symbol.compare p1 p2 in
  if c <> 0 then c else Tgd_db.Tuple.compare t1 t2

let all_facts inst = List.sort_uniq fact_compare (Tgd_db.Instance.facts inst)

let null_free inst =
  Tgd_db.Instance.facts inst
  |> List.filter (fun (_, t) -> not (Tgd_db.Tuple.has_null t))
  |> List.sort_uniq fact_compare

let facts_equal l1 l2 =
  List.length l1 = List.length l2 && List.for_all2 (fun a b -> fact_compare a b = 0) l1 l2

let facts_subset small big = List.for_all (fun f -> List.exists (fun g -> fact_compare f g = 0) big) small

let terminated = function Tgd_chase.Chase.Terminated -> true | Tgd_chase.Chase.Truncated _ -> false

(* Chase the base, then delta-apply the batch; in parallel chase base+batch
   from scratch. Returns [None] when any leg hit its budget (the property
   is then vacuous — qcheck assume). *)
let run_both p base batch =
  let inc = base in
  let s0 = Tgd_chase.Chase.run ~max_rounds:rounds ~max_facts:facts_cap p inc in
  if not (terminated s0.Tgd_chase.Chase.outcome) then None
  else begin
    let scratch = Tgd_db.Instance.copy inc in
    List.iter (fun (pred, t) -> ignore (Tgd_db.Instance.add_fact scratch pred t)) batch;
    let d = Tgd_chase.Delta_chase.apply ~max_rounds:rounds ~max_facts:facts_cap p inc batch in
    let s1 = Tgd_chase.Chase.run ~max_rounds:rounds ~max_facts:facts_cap p scratch in
    if terminated d.Tgd_chase.Delta_chase.outcome && terminated s1.Tgd_chase.Chase.outcome then
      Some (d, inc, scratch)
    else None
  end

(* ------------------------------------------------------------------ *)
(* 1. Incremental equals from-scratch.                                  *)

(* Datalog invents no nulls, so the two models must coincide exactly —
   not just up to hom-equivalence. *)
let prop_datalog_exact =
  QCheck.Test.make ~name:"datalog: delta-apply equals from-scratch chase exactly" ~count:150
    arb_seed (fun seed ->
      let rng = Rng.create seed in
      let p = datalog_program rng in
      let base = base_instance rng p in
      let batch = random_batch rng p ~size:(1 + Rng.int rng 5) in
      match run_both p base batch with
      | None -> QCheck.assume_fail ()
      | Some (_, inc, scratch) -> facts_equal (all_facts inc) (all_facts scratch))

let prop_null_free_agree =
  QCheck.Test.make ~name:"SWR/WA/free: delta-apply agrees with from-scratch on null-free facts"
    ~count:150 arb_seed (fun seed ->
      let rng = Rng.create seed in
      let p = program_of_seed rng seed in
      let base = base_instance rng p in
      let batch = random_batch rng p ~size:(1 + Rng.int rng 5) in
      match run_both p base batch with
      | None -> QCheck.assume_fail ()
      | Some (_, inc, scratch) -> facts_equal (null_free inc) (null_free scratch))

(* ------------------------------------------------------------------ *)
(* 2. Empty delta is the identity.                                      *)

let prop_empty_delta =
  QCheck.Test.make ~name:"empty delta is a no-op" ~count:100 arb_seed (fun seed ->
      let rng = Rng.create seed in
      let p = program_of_seed rng seed in
      let base = base_instance rng p in
      let s0 = Tgd_chase.Chase.run ~max_rounds:rounds ~max_facts:facts_cap p base in
      QCheck.assume (terminated s0.Tgd_chase.Chase.outcome);
      let before = all_facts base in
      let d = Tgd_chase.Delta_chase.apply p base [] in
      terminated d.Tgd_chase.Delta_chase.outcome
      && d.Tgd_chase.Delta_chase.inserted = 0
      && d.Tgd_chase.Delta_chase.derived = 0
      && d.Tgd_chase.Delta_chase.nulls = 0
      && facts_equal before (all_facts base))

(* ------------------------------------------------------------------ *)
(* 3. Batch splitting commutes (up to the null-free part).              *)

let prop_batch_split =
  QCheck.Test.make ~name:"one batch vs the same batch split in two: same null-free facts"
    ~count:100 arb_seed (fun seed ->
      let rng = Rng.create seed in
      let p = program_of_seed rng seed in
      let base = base_instance rng p in
      let batch = random_batch rng p ~size:(2 + Rng.int rng 6) in
      let s0 = Tgd_chase.Chase.run ~max_rounds:rounds ~max_facts:facts_cap p base in
      QCheck.assume (terminated s0.Tgd_chase.Chase.outcome);
      let fused = Tgd_db.Instance.copy base in
      let split = Tgd_db.Instance.copy base in
      let k = List.length batch / 2 in
      let first = List.filteri (fun i _ -> i < k) batch in
      let second = List.filteri (fun i _ -> i >= k) batch in
      let df = Tgd_chase.Delta_chase.apply ~max_rounds:rounds ~max_facts:facts_cap p fused batch in
      let d1 = Tgd_chase.Delta_chase.apply ~max_rounds:rounds ~max_facts:facts_cap p split first in
      let d2 = Tgd_chase.Delta_chase.apply ~max_rounds:rounds ~max_facts:facts_cap p split second in
      QCheck.assume
        (terminated df.Tgd_chase.Delta_chase.outcome
        && terminated d1.Tgd_chase.Delta_chase.outcome
        && terminated d2.Tgd_chase.Delta_chase.outcome);
      facts_equal (null_free fused) (null_free split))

(* ------------------------------------------------------------------ *)
(* 4. Truncation under tight budgets is sound and honestly flagged.     *)

let tight_gov limit =
  let budget =
    {
      Tgd_exec.Budget.unlimited with
      Tgd_exec.Budget.chase_delta_triggers = Some limit;
      chase_rounds = Some rounds;
      chase_facts = Some facts_cap;
    }
  in
  Tgd_exec.Governor.create ~budget ()

let prop_truncation_sound =
  QCheck.Test.make
    ~name:"tight chase.delta.triggers budget: Truncated flag agrees with the unbudgeted run"
    ~count:100
    QCheck.(pair arb_seed (int_range 0 6))
    (fun (seed, limit) ->
      let rng = Rng.create seed in
      let p = program_of_seed rng seed in
      let base = base_instance rng p in
      let batch = random_batch rng p ~size:(1 + Rng.int rng 5) in
      let s0 = Tgd_chase.Chase.run ~max_rounds:rounds ~max_facts:facts_cap p base in
      QCheck.assume (terminated s0.Tgd_chase.Chase.outcome);
      let tight = Tgd_db.Instance.copy base in
      let free = Tgd_db.Instance.copy base in
      let dt = Tgd_chase.Delta_chase.apply ~gov:(tight_gov limit) p tight batch in
      let df = Tgd_chase.Delta_chase.apply ~max_rounds:rounds ~max_facts:facts_cap p free batch in
      QCheck.assume (terminated df.Tgd_chase.Delta_chase.outcome);
      (* Soundness: whatever the budget allowed is entailed, so the tight
         run's null-free facts embed in the complete run's. Honesty: a
         Terminated claim under a tight budget must mean it really got
         everything. *)
      facts_subset (null_free tight) (null_free free)
      &&
      if terminated dt.Tgd_chase.Delta_chase.outcome then
        facts_equal (null_free tight) (null_free free)
      else true)

(* ------------------------------------------------------------------ *)
(* 5. Boxed parallel evaluation (unsealed / pending-append fallback)    *)
(*    agrees with sequential evaluation.                                *)

let random_cq rng p =
  let preds = Program.predicates p in
  let n_atoms = 1 + Rng.int rng 2 in
  let term_of_var i = Term.var (Printf.sprintf "X%d" i) in
  let body =
    List.init n_atoms (fun _ ->
        let pred, arity = Rng.choose rng preds in
        Atom.make pred (List.init arity (fun _ -> term_of_var (Rng.int rng 3))))
  in
  let vars =
    Symbol.Set.elements
      (List.fold_left (fun acc a -> Symbol.Set.union acc (Atom.vars a)) Symbol.Set.empty body)
  in
  let answer = List.filter (fun _ -> Rng.bool rng 0.5) vars |> List.map (fun v -> Term.Var v) in
  Cq.make ~name:"q" ~answer ~body

let tuples_equal l1 l2 =
  List.length l1 = List.length l2 && List.for_all2 Tgd_db.Tuple.equal l1 l2

let prop_boxed_par_unsealed =
  QCheck.Test.make
    ~name:"boxed parallel UCQ on an unsealed instance equals sequential evaluation" ~count:80
    arb_seed (fun seed ->
      let rng = Rng.create seed in
      let p = program_of_seed rng seed in
      QCheck.assume (Program.predicates p <> []);
      let inst = base_instance rng p in
      let ucq = List.init (1 + Rng.int rng 2) (fun _ -> random_cq rng p) in
      let seq = Tgd_db.Eval.ucq inst ucq in
      let workers = 2 + Rng.int rng 2 in
      let partitions = 1 + Rng.int rng 7 in
      (* columnar:false forces the boxed engine even though the instance
         could be sealed; min_tuples:1 forces the morsel machinery. *)
      let par =
        Tgd_db.Par_eval.ucq ~columnar:false ~workers ~min_tuples:1 ~partitions inst ucq
      in
      tuples_equal seq par)

let prop_boxed_par_pending =
  QCheck.Test.make
    ~name:"parallel UCQ after a post-seal append (pending tuples) equals sequential" ~count:80
    arb_seed (fun seed ->
      let rng = Rng.create seed in
      let p = program_of_seed rng seed in
      QCheck.assume (Program.predicates p <> []);
      let inst = base_instance rng p in
      Tgd_db.Instance.seal ~partitions:4 inst;
      (* Appending after seal parks tuples in the relations' pending lists:
         the columnar view goes stale, compilation reports Unsupported, and
         the dispatcher must fall back to the boxed engine — on exactly the
         state the delta chase leaves behind between re-seals. *)
      List.iter
        (fun (pred, t) -> ignore (Tgd_db.Instance.add_fact inst pred t))
        (random_batch rng p ~size:(1 + Rng.int rng 5));
      let ucq = List.init (1 + Rng.int rng 2) (fun _ -> random_cq rng p) in
      let seq = Tgd_db.Eval.ucq inst ucq in
      let par = Tgd_db.Par_eval.ucq ~workers:3 ~min_tuples:1 ~partitions:5 inst ucq in
      tuples_equal seq par)

(* ------------------------------------------------------------------ *)

let () =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  Alcotest.run "delta_chase"
    [
      ("incremental-vs-scratch", List.map to_alcotest [ prop_datalog_exact; prop_null_free_agree ]);
      ("empty-delta", List.map to_alcotest [ prop_empty_delta ]);
      ("batch-split", List.map to_alcotest [ prop_batch_split ]);
      ("truncation", List.map to_alcotest [ prop_truncation_sound ]);
      ( "boxed-parallel",
        List.map to_alcotest [ prop_boxed_par_unsealed; prop_boxed_par_pending ] );
    ]
